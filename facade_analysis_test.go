package ddt

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeAnalyzeBugAndTree(t *testing.T) {
	img, err := CorpusDriver("rtl8029", false)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(img, DefaultConfig())
	rep, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spec := &DeviceSpec{
		Device: "rtl8029",
		Registers: map[string]RegisterRange{
			"hw_port_0x7": {Name: "ISR", Min: 0, Max: 0x7F},
		},
		InterruptEnableWrite: "hw_port_0xf",
	}
	var traces []*Trace
	raceMalfunction := false
	for _, b := range rep.Bugs {
		v := AnalyzeBug(b, spec)
		if b.Class == "race condition" && v.RequiresMalfunction {
			raceMalfunction = true
		}
		traces = append(traces, sess.TraceBug(b))
	}
	if !raceMalfunction {
		t.Error("the init race must be classified hardware-malfunction-only (§5.1)")
	}
	tree := BuildExecTree(traces)
	if tree.Paths != len(rep.Bugs) || len(tree.Leaves()) != len(rep.Bugs) {
		t.Errorf("tree paths=%d leaves=%d, want %d", tree.Paths, len(tree.Leaves()), len(rep.Bugs))
	}
	if !strings.Contains(tree.Render(), "DriverEntry") {
		t.Error("tree render missing the shared prefix")
	}
}
