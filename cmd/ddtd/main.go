// Command ddtd is the distributed campaign manager: the single durable
// owner of a fleet's corpus, crash database, merged coverage, and trend
// series. Workers (ddtfuzz -manager <addr>) lease campaigns from it over
// the HTTP/JSON RPC protocol (docs/protocol.md) and it serves status pages
// and reproducers at /status, /corpus, /crashes, /crash/<id>, /trends.
//
// Serve mode (the default):
//
//	ddtd -state ./fleet -campaigns campaigns.json -listen :8634
//
// One-shot ingest modes (apply, flush the state directory, exit) — how the
// nightly workflow posts its results into a manager state directory instead
// of diffing raw artifacts:
//
//	ddtd -state ./fleet -ingest-fuzz report.json      # ddtfuzz -json output
//	ddtd -state ./fleet -ingest-bench bench.txt       # go test -bench output
//	ddtd -state ./fleet -import ./corpus -import-driver rtl8029
//
// Flags:
//
//	-state dir        state directory (created if missing; required)
//	-listen addr      HTTP listen address (default :8634)
//	-campaigns file   campaign config JSON ({"campaigns":[...]}; none = a
//	                  pure status/ingest server that hands out no work)
//	-lease-ttl d      lease expiry without a worker heartbeat (default 30s)
//	-flush-every d    periodic index flush (default 5s)
//	-exit-when-done   exit 0 once every campaign slot completes (CI mode)
//	-timeout d        shut down gracefully after this long (0 = run until
//	                  signaled; uniform campaign flag name)
//	-ingest-fuzz f    one-shot: merge a ddtfuzz JSON report (repeatable)
//	-ingest-bench f   one-shot: append go-bench output to the bench trend
//	-import dir       one-shot: import a seed-*.json corpus directory
//	-import-driver d  driver the imported corpus belongs to
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/fuzz"
	"repro/internal/manager"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	stateDir := flag.String("state", "", "state directory (required)")
	listen := flag.String("listen", ":8634", "HTTP listen address")
	campaignsFile := flag.String("campaigns", "", "campaign config JSON file")
	leaseTTL := flag.Duration("lease-ttl", manager.DefaultLeaseTTL, "lease expiry without a heartbeat")
	flushEvery := flag.Duration("flush-every", 5*time.Second, "periodic state index flush")
	exitWhenDone := flag.Bool("exit-when-done", false, "exit once every campaign slot completes")
	cf := campaign.RegisterFlags(flag.CommandLine, campaign.FlagTimeout)
	var ingestFuzz multiFlag
	flag.Var(&ingestFuzz, "ingest-fuzz", "one-shot: merge a ddtfuzz JSON report (repeatable)")
	ingestBench := flag.String("ingest-bench", "", "one-shot: append go-bench output to the bench trend")
	importDir := flag.String("import", "", "one-shot: import a seed-*.json corpus directory")
	importDriver := flag.String("import-driver", "", "driver the imported corpus belongs to")
	flag.Parse()

	if *stateDir == "" {
		fatal(errors.New("-state is required"))
	}
	state, err := manager.OpenState(*stateDir)
	if err != nil {
		fatal(err)
	}

	if len(ingestFuzz) > 0 || *ingestBench != "" || *importDir != "" {
		if err := oneShot(state, ingestFuzz, *ingestBench, *importDir, *importDriver); err != nil {
			fatal(err)
		}
		if err := state.Flush(); err != nil {
			fatal(err)
		}
		return
	}

	var cfg manager.Config
	if *campaignsFile != "" {
		b, err := os.ReadFile(*campaignsFile)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(b, &cfg); err != nil {
			fatal(fmt.Errorf("campaign config %s: %w", *campaignsFile, err))
		}
	}
	sched, err := manager.NewScheduler(cfg, *leaseTTL)
	if err != nil {
		fatal(err)
	}
	m := manager.NewManager(state, sched)

	ctx, cancel := manager.ShutdownContext(context.Background())
	defer cancel()
	// The uniform -timeout bound: the daemon drains exactly like a SIGINT
	// when it expires.
	if cf.Timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, cf.Timeout)
		defer tcancel()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: m.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("ddtd: serving on %s (state %s, %d campaign(s))\n",
		ln.Addr(), *stateDir, len(cfg.Campaigns))

	// Periodic index flush; the heavy artifacts are write-through already.
	go func() {
		t := time.NewTicker(*flushEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := state.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, "ddtd: flush:", err)
				}
			}
		}
	}()

	if *exitWhenDone {
		go func() {
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if sched.Done() {
						cancel()
						return
					}
				}
			}
		}()
	}

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop handing out work (in-flight heartbeats answer
	// Stop so workers wind down and send their final reports through the
	// draining server), then flush the state indexes.
	fmt.Println("ddtd: shutting down")
	sched.Stop()
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	_ = srv.Shutdown(shCtx)
	if err := state.Flush(); err != nil {
		fatal(err)
	}
}

// oneShot applies the ingest/import flags against the opened state.
func oneShot(state *manager.State, fuzzReports []string, benchFile, importDir, importDriver string) error {
	for _, fn := range fuzzReports {
		b, err := os.ReadFile(fn)
		if err != nil {
			return err
		}
		var rep fuzz.Report
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("fuzz report %s: %w", fn, err)
		}
		if err := state.IngestFuzzReport(&rep, "nightly"); err != nil {
			return fmt.Errorf("fuzz report %s: %w", fn, err)
		}
		fmt.Printf("ddtd: ingested %s (%s: %d crash(es), %d/%d blocks)\n",
			fn, rep.Driver, len(rep.Crashes), rep.BlocksCovered, rep.BlocksStatic)
	}
	if benchFile != "" {
		b, err := os.ReadFile(benchFile)
		if err != nil {
			return err
		}
		n := state.IngestBenchOutput(string(b))
		fmt.Printf("ddtd: ingested %d bench point(s) from %s\n", n, benchFile)
	}
	if importDir != "" {
		if importDriver == "" {
			return errors.New("-import requires -import-driver")
		}
		n, err := state.ImportCorpusDir(importDriver, importDir)
		if err != nil {
			return err
		}
		fmt.Printf("ddtd: imported %d corpus entr(ies) from %s\n", n, importDir)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddtd:", err)
	os.Exit(2)
}
