// Command ddtbench regenerates every table and figure of the paper's
// evaluation section as text.
//
// Usage:
//
//	ddtbench            run everything
//	ddtbench -table1    driver characteristics (Table 1)
//	ddtbench -table2    bug discovery (Table 2)
//	ddtbench -fig2      relative coverage vs time (Figure 2)
//	ddtbench -fig3      absolute coverage vs time (Figure 3)
//	ddtbench -dv        Driver Verifier baseline (§5.1)
//	ddtbench -sdv       SDV comparison (§5.1)
//	ddtbench -ablation  annotation ablation (§5.1)
//	ddtbench -fuzz      fuzzer throughput + fuzz/symbolic/hybrid coverage
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/fuzz"
)

func main() {
	t1 := flag.Bool("table1", false, "Table 1: driver characteristics")
	t2 := flag.Bool("table2", false, "Table 2: bugs discovered")
	f2 := flag.Bool("fig2", false, "Figure 2: relative coverage vs time")
	f3 := flag.Bool("fig3", false, "Figure 3: absolute coverage vs time")
	dv := flag.Bool("dv", false, "Driver Verifier baseline")
	sdvF := flag.Bool("sdv", false, "SDV comparison")
	abl := flag.Bool("ablation", false, "annotation ablation")
	fz := flag.Bool("fuzz", false, "fuzzer throughput and mode comparison")
	par := flag.Bool("parallel", false, "parallel exploration scaling and solver-cache stats")
	pipe := flag.Bool("pipeline", false, "cross-phase pipelined exploration: barriered vs pipelined wall clock and per-phase concurrency")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected sections to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	// -pipeline is this command's report-section selector, so only the
	// non-conflicting subset of the uniform campaign flag surface registers.
	cf := campaign.RegisterFlags(flag.CommandLine, campaign.FlagWorkers|campaign.FlagSeed|campaign.FlagTimeout)
	flag.Parse()

	// Profile wiring matches ddtfuzz: CPU profile brackets the run,
	// heap profile snapshots retained memory at exit.
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(pf))
		defer pf.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	all := !*t1 && !*t2 && !*f2 && !*f3 && !*dv && !*sdvF && !*abl && !*fz && !*par && !*pipe

	if all || *t1 {
		infos, err := experiments.Table1()
		check(err)
		fmt.Println("== Table 1: characteristics of the evaluation drivers ==")
		fmt.Print(experiments.FormatTable1(infos))
		fmt.Println()
	}
	if all || *t2 {
		rows, err := experiments.Table2()
		check(err)
		fmt.Println("== Table 2: previously unknown bugs discovered by DDT ==")
		fmt.Print(experiments.FormatTable2(rows))
		for _, r := range rows {
			status := "MATCHES Table 2"
			if !r.Matches() {
				status = "MISMATCH vs Table 2"
			}
			fmt.Printf("  %-18s %d bug(s) in %v  [%s]\n",
				r.Driver, len(r.Report.Bugs), r.Elapsed.Round(1e6), status)
		}
		fmt.Println()
	}
	var covRuns []experiments.CoverageRun
	if all || *f2 || *f3 {
		var err error
		covRuns, err = experiments.Coverage()
		check(err)
	}
	if all || *f2 {
		fmt.Println("== Figure 2 ==")
		fmt.Print(experiments.FormatCoverage(covRuns, true))
		fmt.Println()
	}
	if all || *f3 {
		fmt.Println("== Figure 3 ==")
		fmt.Print(experiments.FormatCoverage(covRuns, false))
		fmt.Println()
	}
	if all || *dv {
		res, err := experiments.DriverVerifier()
		check(err)
		fmt.Println("== Driver Verifier baseline (concrete stress; paper: finds 0 of 14) ==")
		for _, r := range res {
			fmt.Printf("  %-18s %d bug(s) found\n", r.Driver, r.BugsSeen)
		}
		fmt.Println()
	}
	if all || *sdvF {
		cmp, err := experiments.RunSDVComparison()
		check(err)
		fmt.Println("== SDV comparison (§5.1) ==")
		fmt.Print(cmp.Format())
		fmt.Println()
	}
	if all || *abl {
		rows, err := experiments.Ablation()
		check(err)
		fmt.Println("== Annotation ablation (§5.1) ==")
		fmt.Print(experiments.FormatAblation(rows))
		fmt.Println()
	}
	if all || *fz {
		check(fuzzSection(cf.Seed, cf.Timeout))
	}
	if all || *par {
		check(parallelSection(cf.Workers))
	}
	if all || *pipe {
		check(pipelineSection(cf.Workers))
	}
}

// pipelineSection compares barriered and cross-phase pipelined exploration
// at the same worker count: wall clock, bug count, and — the point of the
// exercise — the per-phase concurrency ledger. A non-zero peak in-flight
// for a phase while its predecessor was still exiting paths is the barrier
// removal made visible.
func pipelineSection(flagWorkers int) error {
	fmt.Println("== Cross-phase pipelined exploration ==")
	fmt.Printf("  host CPUs: %d\n", runtime.NumCPU())
	w := flagWorkers
	if w < 2 {
		w = 4
	}
	for _, driver := range []string{"rtl8029", "amd-pcnet"} {
		for _, pipelined := range []bool{false, true} {
			img, err := corpus.Build(driver, corpus.Buggy)
			if err != nil {
				return err
			}
			opts := core.DefaultOptions()
			opts.Workers = w
			opts.Pipeline = pipelined
			eng := core.NewEngine(img, opts)
			start := time.Now()
			rep, err := eng.TestDriver(context.Background())
			if err != nil {
				return err
			}
			mode := "barriered"
			if pipelined {
				mode = "pipelined"
			}
			fmt.Printf("  %-10s workers=%d %-9s elapsed=%-12v bugs=%d paths=%d\n",
				driver, w, mode, time.Since(start).Round(time.Microsecond),
				len(rep.Bugs), rep.PathsExplored)
			if pipelined {
				fmt.Println("    phase                exited  succ  promoted  peak-inflight  peak-queued")
				for _, p := range rep.Phases {
					fmt.Printf("    %-20s %6d %5d %9d %14d %12d\n",
						p.Name, p.Exited, p.Succeeded, p.Promoted, p.PeakInFlight, p.PeakQueued)
				}
			}
		}
	}
	return nil
}

// parallelSection measures the concurrent symbolic frontier: wall clock and
// shared-solver-cache behaviour of full rtl8029 sessions at increasing
// worker counts. On a multi-core host the elapsed column is the scaling
// curve; everywhere, the cache columns show how many queries the shared
// cache answered for the whole worker fleet.
func parallelSection(flagWorkers int) error {
	fmt.Println("== Parallel symbolic exploration (rtl8029) ==")
	fmt.Printf("  host CPUs: %d\n", runtime.NumCPU())
	counts := []int{1, 2, 4}
	if flagWorkers > 1 && flagWorkers != 2 && flagWorkers != 4 {
		counts = append(counts, flagWorkers)
	}
	for _, w := range counts {
		img, err := corpus.Build("rtl8029", corpus.Buggy)
		if err != nil {
			return err
		}
		opts := core.DefaultOptions()
		opts.Workers = w
		eng := core.NewEngine(img, opts)
		start := time.Now()
		rep, err := eng.TestDriver(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("  workers=%d  elapsed=%-12v bugs=%d paths=%-4d queries=%-5d cache hits=%d evictions=%d\n",
			w, time.Since(start).Round(time.Microsecond), len(rep.Bugs), rep.PathsExplored,
			rep.SolverQueries, rep.SolverCacheHits, rep.SolverCacheEvictions)
	}
	return nil
}

// fuzzSection reports the concolic fuzzing subsystem's two headline
// numbers: concrete execution throughput (vs one symbolic session) and the
// coverage of fuzz / symbolic / hybrid exploration under equal budgets.
func fuzzSection(seed int64, timeout time.Duration) error {
	fmt.Println("== Concolic fuzzing: throughput and mode comparison ==")
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		return err
	}
	fcfg := fuzz.DefaultConfig()
	fcfg.Workers = 4
	fcfg.MaxExecs = 10_000
	fcfg.Seed = seed
	fcfg.Duration = timeout
	frep, err := fuzz.New(img, fcfg).Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("  rtl8029: %d execs at %.0f execs/sec (%d workers), %d/%d blocks, %d deduped crash(es)\n",
		frep.Execs, frep.ExecsPerSec, frep.Workers,
		frep.BlocksCovered, frep.BlocksStatic, len(frep.Crashes))

	pcnet, err := corpus.Build("amd-pcnet", corpus.Buggy)
	if err != nil {
		return err
	}
	hcfg := fuzz.DefaultConfig()
	hcfg.Workers = 2
	hcfg.MaxExecs = 2_000
	hcfg.Seed = seed
	hcfg.Duration = timeout
	pf, err := fuzz.New(pcnet, hcfg).Run(context.Background())
	if err != nil {
		return err
	}
	eng := core.NewEngine(pcnet, core.DefaultOptions())
	ps, err := eng.TestDriver(context.Background())
	if err != nil {
		return err
	}
	ph, err := fuzz.Hybrid(context.Background(), pcnet, hcfg, core.DefaultOptions(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("  amd-pcnet coverage (of %d static blocks): fuzz %d, symbolic %d, hybrid %d\n",
		pf.BlocksStatic, pf.BlocksCovered, ps.BlocksCovered, ph.Fuzz.BlocksCovered)
	fmt.Printf("  amd-pcnet bug keys: fuzz %d, symbolic %d, hybrid %d\n",
		len(pf.Crashes), len(ps.Bugs), ph.TotalBugKeys())
	return nil
}

// writeHeapProfile snapshots the live heap (after a forced GC, so the
// profile reflects retained objects rather than garbage awaiting collection)
// into a pprof file.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	check(err)
	defer f.Close()
	runtime.GC()
	check(pprof.WriteHeapProfile(f))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddtbench:", err)
		os.Exit(2)
	}
}
