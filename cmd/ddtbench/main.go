// Command ddtbench regenerates every table and figure of the paper's
// evaluation section as text.
//
// Usage:
//
//	ddtbench            run everything
//	ddtbench -table1    driver characteristics (Table 1)
//	ddtbench -table2    bug discovery (Table 2)
//	ddtbench -fig2      relative coverage vs time (Figure 2)
//	ddtbench -fig3      absolute coverage vs time (Figure 3)
//	ddtbench -dv        Driver Verifier baseline (§5.1)
//	ddtbench -sdv       SDV comparison (§5.1)
//	ddtbench -ablation  annotation ablation (§5.1)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	t1 := flag.Bool("table1", false, "Table 1: driver characteristics")
	t2 := flag.Bool("table2", false, "Table 2: bugs discovered")
	f2 := flag.Bool("fig2", false, "Figure 2: relative coverage vs time")
	f3 := flag.Bool("fig3", false, "Figure 3: absolute coverage vs time")
	dv := flag.Bool("dv", false, "Driver Verifier baseline")
	sdvF := flag.Bool("sdv", false, "SDV comparison")
	abl := flag.Bool("ablation", false, "annotation ablation")
	flag.Parse()

	all := !*t1 && !*t2 && !*f2 && !*f3 && !*dv && !*sdvF && !*abl

	if all || *t1 {
		infos, err := experiments.Table1()
		check(err)
		fmt.Println("== Table 1: characteristics of the evaluation drivers ==")
		fmt.Print(experiments.FormatTable1(infos))
		fmt.Println()
	}
	if all || *t2 {
		rows, err := experiments.Table2()
		check(err)
		fmt.Println("== Table 2: previously unknown bugs discovered by DDT ==")
		fmt.Print(experiments.FormatTable2(rows))
		for _, r := range rows {
			status := "MATCHES Table 2"
			if !r.Matches() {
				status = "MISMATCH vs Table 2"
			}
			fmt.Printf("  %-18s %d bug(s) in %v  [%s]\n",
				r.Driver, len(r.Report.Bugs), r.Elapsed.Round(1e6), status)
		}
		fmt.Println()
	}
	var covRuns []experiments.CoverageRun
	if all || *f2 || *f3 {
		var err error
		covRuns, err = experiments.Coverage()
		check(err)
	}
	if all || *f2 {
		fmt.Println("== Figure 2 ==")
		fmt.Print(experiments.FormatCoverage(covRuns, true))
		fmt.Println()
	}
	if all || *f3 {
		fmt.Println("== Figure 3 ==")
		fmt.Print(experiments.FormatCoverage(covRuns, false))
		fmt.Println()
	}
	if all || *dv {
		res, err := experiments.DriverVerifier()
		check(err)
		fmt.Println("== Driver Verifier baseline (concrete stress; paper: finds 0 of 14) ==")
		for _, r := range res {
			fmt.Printf("  %-18s %d bug(s) found\n", r.Driver, r.BugsSeen)
		}
		fmt.Println()
	}
	if all || *sdvF {
		cmp, err := experiments.RunSDVComparison()
		check(err)
		fmt.Println("== SDV comparison (§5.1) ==")
		fmt.Print(cmp.Format())
		fmt.Println()
	}
	if all || *abl {
		rows, err := experiments.Ablation()
		check(err)
		fmt.Println("== Annotation ablation (§5.1) ==")
		fmt.Print(experiments.FormatAblation(rows))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddtbench:", err)
		os.Exit(2)
	}
}
