// Command ddtrace inspects and replays executable DDT traces (§3.5): the
// self-contained evidence files the tester writes per bug.
//
// Usage:
//
//	ddtrace bug.ddtrace                     print the post-processed summary
//	ddtrace -replay driver.dxe bug.ddtrace  re-execute and verify the bug
//	ddtrace -replay-corpus rtl8029 bug.ddtrace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/binimg"
	"repro/internal/trace"
)

func main() {
	replayImg := flag.String("replay", "", "driver .dxe to replay the trace against")
	replayCorpus := flag.String("replay-corpus", "", "in-tree driver to replay against")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: ddtrace [-replay driver.dxe] bug.ddtrace"))
	}
	f, err := trace.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Print(f.Summary())

	var img *ddt.Image
	switch {
	case *replayImg != "":
		b, err := os.ReadFile(*replayImg)
		if err != nil {
			fatal(err)
		}
		img, err = binimg.Parse(b)
		if err != nil {
			fatal(err)
		}
	case *replayCorpus != "":
		img, err = ddt.CorpusDriver(*replayCorpus, false)
		if err != nil {
			fatal(err)
		}
	default:
		return
	}
	res, err := trace.Replay(f, img)
	if err != nil {
		fatal(err)
	}
	fmt.Println("replay:", res)
	if !res.Reproduced {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddtrace:", err)
	os.Exit(2)
}
