// Command ddtfuzz runs the coverage-guided concolic fuzzer against a d32
// driver binary: the same driver images and workload phases as ddt, but
// fully concrete — device reads, registry values, packet bytes, fork
// decisions, and interrupt timings come from mutated replayable feeds, at
// orders of magnitude more executions per second than symbolic exploration.
//
// Usage:
//
//	ddtfuzz -driver rtl8029 -workers 4 -execs 20000
//	ddtfuzz [flags] driver.dxe
//
// Flags:
//
//	-driver name   fuzz an in-tree evaluation driver instead of a file
//	-fixed         use the corrected corpus variant
//	-workers n     parallel fuzzing workers (default 1: deterministic)
//	-execs n       execution budget (default 20000; 0 = unbounded, needs
//	               -timeout)
//	-timeout d     wall-clock budget, e.g. 30s (0 = none); -time is a
//	               deprecated alias
//	-seed n        base RNG seed (deterministic per worker)
//	-pipeline      with -hybrid, dissolve workload phase barriers in the
//	               symbolic engine passes
//	-persist       persistent-mode executors: snapshot the initialized boot
//	               state per boot prefix and resume later executions from it
//	               (bit-identical results, multi-x execs/sec; the report
//	               shows the cold-vs-warm split)
//	-dict          mine a dictionary of instruction immediates (OID
//	               constants, magic values) from the driver image and enable
//	               dictionary-splice mutations
//	-corpus dir    load/persist corpus seeds and crash reproducers here
//	-hybrid        run the two-way concolic loop (engine seeds fuzzer,
//	               top feeds are lifted back into symbolic states)
//	-engine-workers n  parallel symbolic workers for hybrid engine passes
//	-json file     write the report as JSON ("-" for stdout)
//	-cpuprofile f  write a pprof CPU profile of the campaign to f
//	-expect        compare found classes against the driver's Table 2 set
//	-manager url   attach to a ddtd campaign manager as a fleet worker:
//	               lease campaigns, sync corpus deltas both ways, report
//	               crashes and coverage (most local flags are ignored — the
//	               lease carries the campaign parameters)
//	-name s        worker name reported to the manager (default host-pid)
//	-oneshot       with -manager: exit after the first completed lease (CI)
//
// SIGINT/SIGTERM shut down gracefully: a local campaign stops, flushes its
// corpus and crash reproducers, and prints its report; a manager-attached
// worker additionally sends its final report before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/binimg"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/manager"
)

func main() {
	driver := flag.String("driver", "", "fuzz an in-tree evaluation driver")
	fixed := flag.Bool("fixed", false, "use the corrected corpus variant")
	cf := campaign.RegisterFlags(flag.CommandLine, campaign.FlagsAll)
	engineWorkers := flag.Int("engine-workers", 1, "parallel symbolic workers for the hybrid loop's engine passes")
	execs := flag.Uint64("execs", 20_000, "execution budget (0 = unbounded, needs -timeout)")
	persist := flag.Bool("persist", false, "persistent-mode executors (snapshot/resume initialized boot states)")
	dict := flag.Bool("dict", false, "mine an immediate dictionary from the driver image for splice mutations")
	corpusDir := flag.String("corpus", "", "corpus directory (seeds in, corpus+crashes out)")
	hybrid := flag.Bool("hybrid", false, "run the hybrid concolic loop")
	jsonOut := flag.String("json", "", "write JSON report to file (\"-\" for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at campaign exit to this file")
	expect := flag.Bool("expect", false, "compare against the driver's expected Table 2 bug classes")
	managerURL := flag.String("manager", "", "attach to a ddtd campaign manager at this base URL")
	name := flag.String("name", "", "worker name reported to the manager (default host-pid)")
	oneShot := flag.Bool("oneshot", false, "with -manager: exit after the first completed lease")
	campaign.DeprecatedAlias(flag.CommandLine, "time", "timeout")
	flag.Parse()

	if *managerURL != "" {
		runManaged(*managerURL, *name, cf.Workers, *oneShot)
		return
	}

	if *execs == 0 && cf.Timeout == 0 {
		fatal(fmt.Errorf("-execs 0 (unbounded) requires a -timeout budget"))
	}

	img, err := loadImage(*driver, *fixed, flag.Args())
	if err != nil {
		fatal(err)
	}

	cfg := fuzz.DefaultConfig()
	cfg.Options = cf.Options()
	cfg.MaxExecs = *execs
	cfg.Persist = *persist
	cfg.Dict = *dict
	cfg.CorpusDir = *corpusDir

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer pf.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	var rep *fuzz.Report
	foundClasses := make(map[string]int) // union across modes, for -expect
	if *hybrid {
		eopts := core.DefaultOptions()
		eopts.Workers = *engineWorkers
		eopts.Pipeline = cf.Pipeline
		h, err := fuzz.Hybrid(context.Background(), img, cfg, eopts, 2)
		if err != nil && h == nil {
			fatal(err)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddtfuzz: warning:", err)
		}
		fmt.Printf("hybrid: symbolic pass found %d bug(s); %d feed(s) lifted back, %d extra bug(s)\n",
			len(h.Symbolic.Bugs), h.Lifted, len(h.LiftedBugs))
		rep = h.Fuzz
		for _, b := range h.Symbolic.Bugs {
			foundClasses[b.Class]++
		}
		for _, b := range h.LiftedBugs {
			foundClasses[b.Class]++
		}
	} else {
		f := fuzz.New(img, cfg)
		// Graceful shutdown: the first SIGINT/SIGTERM stops the campaign, so
		// Run returns normally — flushing the corpus directory and printing
		// the report for whatever was found before the signal.
		ctx, cancel := manager.ShutdownContext(context.Background())
		rep, err = f.Run(ctx)
		cancel()
		if err != nil && rep == nil {
			fatal(err)
		}
		if err != nil {
			// A post-campaign failure (e.g. corpus dir unwritable) must not
			// discard the completed report and its crash reproducers.
			fmt.Fprintln(os.Stderr, "ddtfuzz: warning:", err)
		}
	}
	fmt.Print(rep)

	if *expect && *driver != "" {
		want, err := ddt.ExpectedBugs(*driver)
		if err != nil {
			fatal(err)
		}
		found := foundClasses
		for c, n := range rep.CountByClass() {
			found[c] += n
		}
		wantSet := make(map[string]int)
		for _, c := range want {
			wantSet[c]++
		}
		fmt.Printf("expected Table 2 classes for %s:\n", *driver)
		hits := 0
		for c, n := range wantSet {
			got := found[c]
			mark := "MISS"
			if got > 0 {
				mark = "hit"
				hits++
			}
			fmt.Printf("  %-20s want %d  found %d  [%s]\n", c, n, got, mark)
		}
		fmt.Printf("  %d/%d expected classes reproduced\n", hits, len(wantSet))
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			fmt.Println(string(b))
		} else if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

// runManaged attaches this process to a ddtd campaign manager as a fleet
// worker: campaigns come from leases, not local flags. SIGINT/SIGTERM stops
// the in-flight campaign and sends its final report before returning.
func runManaged(url, name string, procs int, oneShot bool) {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, cancel := manager.ShutdownContext(context.Background())
	defer cancel()
	err := manager.RunWorker(ctx, manager.WorkerConfig{
		Manager: url,
		Name:    name,
		Procs:   procs,
		OneShot: oneShot,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ddtfuzz: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
}

func loadImage(driver string, fixed bool, args []string) (*binimg.Image, error) {
	switch {
	case driver != "":
		return ddt.CorpusDriver(driver, fixed)
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		return ddt.LoadDriver(b)
	default:
		return nil, fmt.Errorf("pass -driver name or one driver binary path (see ddt -list)")
	}
}

// writeHeapProfile snapshots the live heap (after a forced GC, so the
// profile reflects retained objects rather than garbage awaiting collection)
// into a pprof file.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddtfuzz:", err)
	os.Exit(2)
}
