// Command ddt tests a closed-source d32 driver binary (.dxe) for undesired
// behaviours — the paper's "Test Now button" (§1). It prints the bug report
// and optionally writes an executable trace per bug.
//
// Usage:
//
//	ddt [flags] driver.dxe
//	ddt [flags] -corpus rtl8029
//
// Flags:
//
//	-corpus name     test an in-tree evaluation driver instead of a file
//	-fixed           use the corrected corpus variant
//	-no-annotations  disable the NDIS/WDM interface annotations (§5.1 ablation)
//	-no-interrupts   disable symbolic interrupt injection
//	-scenario name   workload scenario: "linear" forces the classic straight-line
//	                 phase plan, "pnp" the PnP/power scenario graph (suspend/
//	                 resume, surprise removal, IRP cancellation); the default
//	                 picks per driver class (storage: pnp, others: linear)
//	-workers n       parallel campaign workers (1 = sequential, deterministic)
//	-pipeline        with -workers > 1, explore across workload phases without
//	                 barriers (prints per-phase concurrency stats)
//	-seed n          campaign random seed (uniform across commands)
//	-timeout d       campaign wall-clock bound (0 = none)
//	-expect          with -corpus, compare the found bug classes against the
//	                 driver's expected Table 2 set; exit 0 on an exact match
//	                 (even though bugs were found), 3 on any regression —
//	                 the nightly CI job's known-bug-set gate
//	-traces dir      write one executable .ddtrace file per bug into dir
//	-v               also print per-bug solved inputs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"repro"
	"repro/internal/campaign"
)

func main() {
	corpusName := flag.String("corpus", "", "test an in-tree evaluation driver (see -list)")
	list := flag.Bool("list", false, "list the in-tree evaluation drivers and exit")
	fixed := flag.Bool("fixed", false, "use the corrected corpus variant")
	noAnnot := flag.Bool("no-annotations", false, "disable interface annotations")
	noIntr := flag.Bool("no-interrupts", false, "disable symbolic interrupts")
	scenario := flag.String("scenario", "", `workload scenario: "linear" or "pnp" (default: per driver class)`)
	cf := campaign.RegisterFlags(flag.CommandLine, campaign.FlagsAll)
	expect := flag.Bool("expect", false, "with -corpus, exit 3 unless the found bug classes exactly match the driver's expected set")
	traceDir := flag.String("traces", "", "directory to write executable traces into")
	verbose := flag.Bool("v", false, "print solved inputs per bug")
	flag.Parse()

	if *list {
		for _, n := range ddt.CorpusNames() {
			fmt.Println(n)
		}
		return
	}

	img, err := loadImage(*corpusName, *fixed, flag.Args())
	if err != nil {
		fatal(err)
	}

	cfg := ddt.DefaultConfig()
	cfg.Options = cf.Options()
	cfg.Annotations = !*noAnnot
	cfg.SymbolicInterrupts = !*noIntr
	switch *scenario {
	case "", "linear", "pnp":
		cfg.Scenario = *scenario
	default:
		fatal(fmt.Errorf("-scenario must be \"linear\" or \"pnp\", got %q", *scenario))
	}

	sess := ddt.NewSession(img, cfg)
	rep, err := sess.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)

	for i, b := range rep.Bugs {
		if *verbose {
			fmt.Printf("\nbug %d inputs:\n%s", i+1, b.Inputs())
		}
		if *traceDir != "" {
			tr := sess.TraceBug(b)
			path := filepath.Join(*traceDir, fmt.Sprintf("%s-bug%02d.ddtrace", img.Name, i+1))
			if err := tr.Save(path); err != nil {
				fatal(fmt.Errorf("writing trace: %w", err))
			}
			fmt.Printf("trace for bug %d written to %s\n", i+1, path)
		}
	}
	if *expect {
		if *corpusName == "" {
			fatal(fmt.Errorf("-expect requires -corpus"))
		}
		want, err := ddt.ExpectedBugs(*corpusName)
		if err != nil {
			fatal(err)
		}
		got := make([]string, 0, len(rep.Bugs))
		for _, b := range rep.Bugs {
			got = append(got, b.Class)
		}
		sort.Strings(want)
		sort.Strings(got)
		if slices.Equal(want, got) {
			fmt.Printf("known-bug set intact: %d expected class(es) found, no extras\n", len(want))
			return
		}
		fmt.Printf("known-bug set REGRESSED:\n  expected %v\n  found    %v\n", want, got)
		os.Exit(3)
	}
	if len(rep.Bugs) > 0 {
		os.Exit(1)
	}
}

func loadImage(corpusName string, fixed bool, args []string) (*ddt.Image, error) {
	if corpusName != "" {
		return ddt.CorpusDriver(corpusName, fixed)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: ddt [flags] driver.dxe (or -corpus name; -list to enumerate)")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return ddt.LoadDriver(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddt:", err)
	os.Exit(2)
}
