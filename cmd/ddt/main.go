// Command ddt tests a closed-source d32 driver binary (.dxe) for undesired
// behaviours — the paper's "Test Now button" (§1). It prints the bug report
// and optionally writes an executable trace per bug.
//
// Usage:
//
//	ddt [flags] driver.dxe
//	ddt [flags] -corpus rtl8029
//
// Flags:
//
//	-corpus name     test an in-tree evaluation driver instead of a file
//	-fixed           use the corrected corpus variant
//	-no-annotations  disable the NDIS/WDM interface annotations (§5.1 ablation)
//	-no-interrupts   disable symbolic interrupt injection
//	-workers n       parallel exploration workers (1 = sequential, deterministic)
//	-traces dir      write one executable .ddtrace file per bug into dir
//	-v               also print per-bug solved inputs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	corpusName := flag.String("corpus", "", "test an in-tree evaluation driver (see -list)")
	list := flag.Bool("list", false, "list the in-tree evaluation drivers and exit")
	fixed := flag.Bool("fixed", false, "use the corrected corpus variant")
	noAnnot := flag.Bool("no-annotations", false, "disable interface annotations")
	noIntr := flag.Bool("no-interrupts", false, "disable symbolic interrupts")
	workers := flag.Int("workers", 1, "parallel exploration workers (1 = sequential, deterministic)")
	traceDir := flag.String("traces", "", "directory to write executable traces into")
	verbose := flag.Bool("v", false, "print solved inputs per bug")
	flag.Parse()

	if *list {
		for _, n := range ddt.CorpusNames() {
			fmt.Println(n)
		}
		return
	}

	img, err := loadImage(*corpusName, *fixed, flag.Args())
	if err != nil {
		fatal(err)
	}

	cfg := ddt.DefaultConfig()
	cfg.Annotations = !*noAnnot
	cfg.SymbolicInterrupts = !*noIntr
	cfg.Workers = *workers

	sess := ddt.NewSession(img, cfg)
	rep, err := sess.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)

	for i, b := range rep.Bugs {
		if *verbose {
			fmt.Printf("\nbug %d inputs:\n%s", i+1, b.Inputs())
		}
		if *traceDir != "" {
			tr := sess.TraceBug(b)
			path := filepath.Join(*traceDir, fmt.Sprintf("%s-bug%02d.ddtrace", img.Name, i+1))
			if err := tr.Save(path); err != nil {
				fatal(fmt.Errorf("writing trace: %w", err))
			}
			fmt.Printf("trace for bug %d written to %s\n", i+1, path)
		}
	}
	if len(rep.Bugs) > 0 {
		os.Exit(1)
	}
}

func loadImage(corpusName string, fixed bool, args []string) (*ddt.Image, error) {
	if corpusName != "" {
		return ddt.CorpusDriver(corpusName, fixed)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: ddt [flags] driver.dxe (or -corpus name; -list to enumerate)")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return ddt.LoadDriver(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddt:", err)
	os.Exit(2)
}
