// Command ddtasm assembles d32 driver source into a closed DXE binary —
// the stand-in for the vendor's build toolchain. It can also disassemble
// and characterize existing binaries.
//
// Usage:
//
//	ddtasm -o driver.dxe driver.s     assemble
//	ddtasm -d driver.dxe              disassemble
//	ddtasm -info driver.dxe           print the Table 1 characterization
//	ddtasm -corpus rtl8029 -o out.dxe emit an evaluation driver binary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/asm"
	"repro/internal/binimg"
)

func main() {
	out := flag.String("o", "", "output .dxe path")
	dis := flag.Bool("d", false, "disassemble instead of assembling")
	info := flag.Bool("info", false, "print static characterization")
	corpusName := flag.String("corpus", "", "emit an in-tree evaluation driver")
	fixed := flag.Bool("fixed", false, "use the corrected corpus variant")
	flag.Parse()

	switch {
	case *corpusName != "":
		img, err := ddt.CorpusDriver(*corpusName, *fixed)
		if err != nil {
			fatal(err)
		}
		emit(img, *out, *dis, *info)
	case *dis || *info:
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("need a .dxe file"))
		}
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		img, err := binimg.Parse(b)
		if err != nil {
			fatal(err)
		}
		emit(img, "", *dis, *info)
	default:
		if flag.NArg() != 1 || *out == "" {
			fatal(fmt.Errorf("usage: ddtasm -o driver.dxe driver.s"))
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		img, err := asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		emit(img, *out, false, true)
	}
}

func emit(img *binimg.Image, out string, dis, info bool) {
	if out != "" {
		if err := os.WriteFile(out, img.Marshal(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, len(img.Marshal()))
	}
	if dis {
		fmt.Print(binimg.Disassemble(img))
	}
	if info {
		i := binimg.Analyze(img)
		fmt.Printf("driver        %s\n", i.Name)
		fmt.Printf("file size     %d bytes\n", i.FileSize)
		fmt.Printf("code segment  %d bytes (%d instructions)\n", i.CodeSize, i.NumInstructions)
		fmt.Printf("data+bss      %d bytes\n", i.DataSize)
		fmt.Printf("functions     %d\n", i.NumFunctions)
		fmt.Printf("basic blocks  %d\n", i.NumBasicBlocks)
		fmt.Printf("kernel calls  %d distinct imports\n", i.KernelImports)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddtasm:", err)
	os.Exit(2)
}
