// Command benchgate is the CI benchmark regression gate: it parses two
// `go test -bench` outputs (merge base and PR head), compares the median
// of selected benchmark metrics, writes a machine-readable BENCH_PR.json
// artifact, and exits non-zero when any tracked metric regressed beyond
// the threshold.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt -out BENCH_PR.json \
//	    -threshold 0.20 \
//	    -bench 'BenchmarkExploreParallelSpeedup:ms/seq-session' \
//	    -bench 'BenchmarkExploreParallelSpeedup:ms/4worker-session' \
//	    -bench BenchmarkFuzzExecsPerSec
//
// A tracked entry is "Name" (gates the benchmark's ns/op) or "Name:unit"
// (gates a b.ReportMetric unit, e.g. a per-session wall clock). Gating a
// per-session metric instead of raw ns/op keeps the gate honest when a PR
// changes how many sessions one benchmark iteration runs — total-iteration
// time then shifts by construction while the per-session cost, the thing
// the gate protects, is still comparable. Lower must be better for every
// tracked metric.
//
// With `-benchmem` in the bench invocation, B/op and allocs/op appear as
// ordinary value/unit columns and can be gated the same way
// ("Name:allocs/op") — the CI gate tracks allocation counts on the
// hot-path benchmarks so an alloc-count regression fails even when extra
// garbage hasn't (yet) shown up in wall clock.
//
// A leading "?" marks a target as optional-on-base: a benchmark the PR
// itself introduces has no merge-base samples, and without the marker the
// missing-side rule would fail the introducing PR's own gate. An optional
// target missing from the BASE output is reported and skipped; missing
// from the HEAD output it still fails — a benchmark that existed on head
// and silently vanished must not pass.
//
// benchstat remains the human-readable comparison in the CI log; the gate
// decision is made here so it needs no external tooling and stays testable
// (see main_test.go: the gate demonstrably fails on an injected slowdown).
// Medians over `-count` runs make the verdict robust to one noisy run;
// with 6 runs per side, a single outlier cannot flip it.
//
// Exit codes: 0 pass, 1 regression (or a tracked metric missing from one
// side — a silently vanished benchmark must not pass the gate), 2 usage/IO
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// target is one tracked benchmark metric.
type target struct {
	Name string
	Unit string // "ns/op" when the -bench entry has no :unit suffix
	// Optional marks a "?"-prefixed entry: tolerated missing from the base
	// output (a benchmark this PR introduces), never from the head output.
	Optional bool
}

func parseTarget(v string) target {
	var t target
	if strings.HasPrefix(v, "?") {
		t.Optional = true
		v = v[1:]
	}
	if i := strings.IndexByte(v, ':'); i > 0 {
		t.Name, t.Unit = v[:i], v[i+1:]
	} else {
		t.Name, t.Unit = v, "ns/op"
	}
	return t
}

// benchList collects repeated -bench flags.
type benchList []target

func (b *benchList) String() string {
	parts := make([]string, len(*b))
	for i, t := range *b {
		parts[i] = t.Name + ":" + t.Unit
		if t.Optional {
			parts[i] = "?" + parts[i]
		}
	}
	return strings.Join(parts, ",")
}

func (b *benchList) Set(v string) error {
	*b = append(*b, parseTarget(v))
	return nil
}

// parseBench extracts every value/unit sample per benchmark name (the -N
// GOMAXPROCS suffix stripped) from `go test -bench` output. Multiple
// samples per name come from -count.
func parseBench(out string) map[string]map[string][]float64 {
	samples := make(map[string]map[string][]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields: name, iterations, then value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a value/unit tail (e.g. a log line)
			}
			if samples[name] == nil {
				samples[name] = make(map[string][]float64)
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	return samples
}

// median returns the middle sample (mean of the middle two for even n).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Result is one tracked metric's verdict in BENCH_PR.json.
type Result struct {
	Name       string  `json:"name"`
	Unit       string  `json:"unit"`
	Base       float64 `json:"base"`
	Head       float64 `json:"head"`
	BaseRuns   int     `json:"base_runs"`
	HeadRuns   int     `json:"head_runs"`
	Delta      float64 `json:"delta"` // (head-base)/base; positive = slower
	Regression bool    `json:"regression"`
	Missing    bool    `json:"missing"` // absent from base or head output
	// Skipped: an optional ("?") target absent from the base output — the
	// benchmark is new in this PR and rides until the base catches up.
	Skipped bool `json:"skipped,omitempty"`
}

// Summary is the BENCH_PR.json artifact.
type Summary struct {
	Threshold float64  `json:"threshold"`
	Pass      bool     `json:"pass"`
	Results   []Result `json:"results"`
}

// gate compares the tracked metrics across the two outputs. A tracked
// metric missing on either side fails the gate, except an optional ("?")
// target missing only from the base, which is skipped.
func gate(baseOut, headOut string, targets []target, threshold float64) Summary {
	base := parseBench(baseOut)
	head := parseBench(headOut)
	s := Summary{Threshold: threshold, Pass: true}
	for _, tg := range targets {
		r := Result{Name: tg.Name, Unit: tg.Unit}
		bs, hs := base[tg.Name][tg.Unit], head[tg.Name][tg.Unit]
		r.BaseRuns, r.HeadRuns = len(bs), len(hs)
		if tg.Optional && len(bs) == 0 && len(hs) > 0 {
			r.Skipped = true
		} else if len(bs) == 0 || len(hs) == 0 {
			r.Missing = true
			s.Pass = false
		} else {
			r.Base = median(bs)
			r.Head = median(hs)
			r.Delta = (r.Head - r.Base) / r.Base
			r.Regression = r.Delta > threshold
			if r.Regression {
				s.Pass = false
			}
		}
		s.Results = append(s.Results, r)
	}
	return s
}

func main() {
	basePath := flag.String("base", "", "bench output of the merge base")
	headPath := flag.String("head", "", "bench output of the PR head")
	outPath := flag.String("out", "BENCH_PR.json", "JSON verdict artifact path")
	threshold := flag.Float64("threshold", 0.20, "fail when head is slower than base by more than this fraction")
	var benches benchList
	flag.Var(&benches, "bench", "metric to track, as Name or Name:unit (repeatable; default unit ns/op)")
	flag.Parse()

	if *basePath == "" || *headPath == "" || len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -base, -head, and at least one -bench are required")
		os.Exit(2)
	}
	baseOut, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	headOut, err := os.ReadFile(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	s := gate(string(baseOut), string(headOut), benches, *threshold)
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	for _, r := range s.Results {
		label := r.Name + " [" + r.Unit + "]"
		switch {
		case r.Skipped:
			fmt.Printf("%-60s new in this PR (no base samples), skipped\n", label)
		case r.Missing:
			fmt.Printf("%-60s MISSING (base %d run(s), head %d run(s))\n", label, r.BaseRuns, r.HeadRuns)
		default:
			verdict := "ok"
			if r.Regression {
				verdict = fmt.Sprintf("REGRESSION (> %+.0f%%)", 100**threshold)
			}
			fmt.Printf("%-60s base %.1f  head %.1f  delta %+.1f%%  %s\n",
				label, r.Base, r.Head, 100*r.Delta, verdict)
		}
	}
	if !s.Pass {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}
