package main

import (
	"fmt"
	"strings"
	"testing"
)

// benchOut fabricates `go test -bench -count=len(samples)` output for one
// benchmark, mixing in the extra per-session metrics our real benchmarks
// report. Each per-session metric is ns/op scaled down, so unit-based
// assertions can distinguish the columns.
func benchOut(name string, samples ...float64) string {
	var sb strings.Builder
	sb.WriteString("goos: linux\ngoarch: amd64\npkg: repro\n")
	for _, ns := range samples {
		fmt.Fprintf(&sb,
			"%s-8 \t       3\t%8.0f ns/op\t      %.1f ms/seq-session\t      %.1f ms/4worker-session\t         1.068 speedup@4workers-pipelined\n",
			name, ns, ns/10, ns/20)
	}
	sb.WriteString("--- BENCH: " + name + "\n    bench_test.go:1: GOMAXPROCS=4: log line\nPASS\nok  \trepro\t12.3s\n")
	return sb.String()
}

func targets(specs ...string) []target {
	out := make([]target, len(specs))
	for i, s := range specs {
		out[i] = parseTarget(s)
	}
	return out
}

func TestParseBenchStripsSuffixAndCollectsCounts(t *testing.T) {
	out := benchOut("BenchmarkFuzzExecsPerSec", 100, 110, 90)
	got := parseBench(out)
	s := got["BenchmarkFuzzExecsPerSec"]["ns/op"]
	if len(s) != 3 {
		t.Fatalf("parsed %v, want 3 ns/op samples under the unsuffixed name", got)
	}
	if s[0] != 100 || s[1] != 110 || s[2] != 90 {
		t.Fatalf("samples = %v", s)
	}
}

func TestParseBenchCollectsReportMetricUnits(t *testing.T) {
	out := benchOut("BenchmarkExploreParallelSpeedup", 2000)
	got := parseBench(out)["BenchmarkExploreParallelSpeedup"]
	if len(got["ms/seq-session"]) != 1 || got["ms/seq-session"][0] != 200 {
		t.Fatalf("ms/seq-session samples = %v", got["ms/seq-session"])
	}
	if len(got["ms/4worker-session"]) != 1 || got["ms/4worker-session"][0] != 100 {
		t.Fatalf("ms/4worker-session samples = %v", got["ms/4worker-session"])
	}
}

func TestParseTargetDefaultsToNsOp(t *testing.T) {
	if tg := parseTarget("BenchmarkFuzzExecsPerSec"); tg.Unit != "ns/op" {
		t.Fatalf("default unit = %q", tg.Unit)
	}
	tg := parseTarget("BenchmarkExploreParallelSpeedup:ms/4worker-session")
	if tg.Name != "BenchmarkExploreParallelSpeedup" || tg.Unit != "ms/4worker-session" {
		t.Fatalf("parsed target = %+v", tg)
	}
}

func TestMedianIsRobustToOneOutlier(t *testing.T) {
	if m := median([]float64{100, 5000, 102, 98, 101, 99}); m > 110 {
		t.Fatalf("median %v swung on a single outlier", m)
	}
	if m := median([]float64{1, 3}); m != 2 {
		t.Fatalf("even-count median = %v, want 2", m)
	}
}

// TestGatePassesWithinNoise: a few-percent wobble must not fail the gate.
func TestGatePassesWithinNoise(t *testing.T) {
	base := benchOut("BenchmarkExploreParallelSpeedup", 1000, 1010, 990, 1005, 995, 1000)
	head := benchOut("BenchmarkExploreParallelSpeedup", 1050, 1040, 1060, 1055, 1045, 1050) // +5%
	s := gate(base, head, targets("BenchmarkExploreParallelSpeedup"), 0.20)
	if !s.Pass {
		t.Fatalf("gate failed on a 5%% wobble: %+v", s.Results)
	}
}

// TestGateFailsOnInjectedSlowdown is the acceptance check for the CI bench
// gate: inject a slowdown past the 20% threshold into the head output and
// the gate must fail.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	base := benchOut("BenchmarkExploreParallelSpeedup", 1000, 1010, 990, 1005, 995, 1000)
	head := benchOut("BenchmarkExploreParallelSpeedup", 1250, 1240, 1260, 1245, 1255, 1250) // +25%
	s := gate(base, head, targets("BenchmarkExploreParallelSpeedup:ms/seq-session"), 0.20)
	if s.Pass {
		t.Fatal("gate passed a 25% wall-clock regression")
	}
	r := s.Results[0]
	if !r.Regression || r.Delta < 0.20 {
		t.Fatalf("result %+v, want regression with delta ~0.25", r)
	}
}

// TestGatePerSessionMetricSurvivesShapeChange: the reason the CI gate
// tracks per-session metrics rather than raw ns/op — when a PR adds more
// sessions to one benchmark iteration, total-iteration ns/op inflates by
// construction while the per-session wall clock stays comparable. The
// per-session gate must pass; a raw ns/op gate over the same outputs
// would (wrongly) fail.
func TestGatePerSessionMetricSurvivesShapeChange(t *testing.T) {
	base := "BenchmarkExploreParallelSpeedup-8 \t 3\t 3000 ns/op\t 100.0 ms/seq-session\n"
	head := "BenchmarkExploreParallelSpeedup-8 \t 3\t 5000 ns/op\t 101.0 ms/seq-session\n" // 2 extra sessions/iter
	s := gate(base, head, targets("BenchmarkExploreParallelSpeedup:ms/seq-session"), 0.20)
	if !s.Pass {
		t.Fatalf("per-session gate failed on a shape change: %+v", s.Results)
	}
	if raw := gate(base, head, targets("BenchmarkExploreParallelSpeedup"), 0.20); raw.Pass {
		t.Fatal("raw ns/op gate unexpectedly survived the shape change (test premise broken)")
	}
}

// benchMemOut fabricates `go test -bench -benchmem` output: the standard
// ns/op column followed by the B/op and allocs/op columns -benchmem adds.
func benchMemOut(name string, ns, allocs float64, runs int) string {
	var sb strings.Builder
	sb.WriteString("goos: linux\ngoarch: amd64\npkg: repro\n")
	for i := 0; i < runs; i++ {
		fmt.Fprintf(&sb, "%s-8 \t       3\t%8.0f ns/op\t    %.0f B/op\t      %.0f allocs/op\n",
			name, ns, allocs*48, allocs)
	}
	sb.WriteString("PASS\nok  \trepro\t12.3s\n")
	return sb.String()
}

// TestGateFailsOnInjectedAllocRegression: with -benchmem columns present,
// an allocs/op target gates allocation counts — inject a +30% alloc
// regression with unchanged wall clock and the alloc gate must fail while
// the ns/op gate over the same outputs still passes.
func TestGateFailsOnInjectedAllocRegression(t *testing.T) {
	base := benchMemOut("BenchmarkFuzzExecsPerSec", 1000, 100, 6)
	head := benchMemOut("BenchmarkFuzzExecsPerSec", 1000, 130, 6)
	s := gate(base, head, targets("BenchmarkFuzzExecsPerSec:allocs/op"), 0.20)
	if s.Pass {
		t.Fatal("gate passed a 30% allocs/op regression")
	}
	r := s.Results[0]
	if !r.Regression || r.Unit != "allocs/op" || r.Base != 100 || r.Head != 130 {
		t.Fatalf("result %+v, want allocs/op regression 100 -> 130", r)
	}
	if ns := gate(base, head, targets("BenchmarkFuzzExecsPerSec"), 0.20); !ns.Pass {
		t.Fatalf("ns/op gate failed with unchanged wall clock: %+v", ns.Results)
	}
}

// TestGateThresholdIsExclusive: exactly-at-threshold is not a regression
// (the gate fires on > 20%, not >= 20%).
func TestGateThresholdIsExclusive(t *testing.T) {
	base := benchOut("BenchmarkFuzzExecsPerSec", 1000)
	head := benchOut("BenchmarkFuzzExecsPerSec", 1200) // exactly +20%
	s := gate(base, head, targets("BenchmarkFuzzExecsPerSec"), 0.20)
	if !s.Pass {
		t.Fatalf("gate failed at exactly the threshold: %+v", s.Results[0])
	}
}

// TestGateFailsOnMissingBenchmark: a tracked metric that vanished from the
// head output (renamed, deleted, compile-gated away) must fail — a missing
// measurement is not a passing one.
func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := benchOut("BenchmarkExploreParallelSpeedup", 1000)
	head := benchOut("BenchmarkSomethingElse", 1000)
	s := gate(base, head, targets("BenchmarkExploreParallelSpeedup"), 0.20)
	if s.Pass {
		t.Fatal("gate passed with the tracked benchmark missing from head")
	}
	if !s.Results[0].Missing {
		t.Fatalf("result %+v, want Missing", s.Results[0])
	}
}

// TestGateTracksMultipleBenchmarks: one regressing metric fails the whole
// gate even when the others improve.
func TestGateTracksMultipleBenchmarks(t *testing.T) {
	base := benchOut("BenchmarkExploreParallelSpeedup", 1000) +
		benchOut("BenchmarkFuzzExecsPerSec", 2000)
	head := benchOut("BenchmarkExploreParallelSpeedup", 900) + // faster
		benchOut("BenchmarkFuzzExecsPerSec", 2600) // +30%
	s := gate(base, head,
		targets("BenchmarkExploreParallelSpeedup:ms/4worker-session", "BenchmarkFuzzExecsPerSec"), 0.20)
	if s.Pass {
		t.Fatal("gate passed despite BenchmarkFuzzExecsPerSec regressing 30%")
	}
	if s.Results[0].Regression {
		t.Errorf("improvement flagged as regression: %+v", s.Results[0])
	}
	if !s.Results[1].Regression {
		t.Errorf("regression not flagged: %+v", s.Results[1])
	}
}

// TestParseTargetOptionalMarker: a leading "?" marks the target optional
// and is stripped from the name.
func TestParseTargetOptionalMarker(t *testing.T) {
	tg := parseTarget("?BenchmarkFuzzPersistentVsColdStart/rtl8029:ms/persist-campaign")
	if !tg.Optional || tg.Name != "BenchmarkFuzzPersistentVsColdStart/rtl8029" || tg.Unit != "ms/persist-campaign" {
		t.Fatalf("parsed %+v", tg)
	}
	if tg := parseTarget("BenchmarkFuzzExecsPerSec"); tg.Optional {
		t.Fatal("unmarked target parsed as optional")
	}
}

// TestGateOptionalTargetSkippedWhenNewInPR: an optional target absent from
// the merge base (the PR introduces the benchmark) is skipped, not failed —
// while a required target in the same run still gates.
func TestGateOptionalTargetSkippedWhenNewInPR(t *testing.T) {
	base := benchOut("BenchmarkFuzzExecsPerSec", 2000)
	head := benchOut("BenchmarkFuzzExecsPerSec", 2100) +
		benchOut("BenchmarkFuzzPersistentVsColdStart", 900)
	s := gate(base, head,
		targets("BenchmarkFuzzExecsPerSec", "?BenchmarkFuzzPersistentVsColdStart"), 0.20)
	if !s.Pass {
		t.Fatalf("gate failed on a PR-introduced optional benchmark: %+v", s.Results)
	}
	if !s.Results[1].Skipped || s.Results[1].Missing {
		t.Fatalf("optional result %+v, want Skipped", s.Results[1])
	}
}

// TestGateOptionalTargetStillGatesWhenPresentOnBothSides: once the base
// has samples, an optional target regresses the gate like any other.
func TestGateOptionalTargetStillGatesWhenPresentOnBothSides(t *testing.T) {
	base := benchOut("BenchmarkFuzzPersistentVsColdStart", 1000)
	head := benchOut("BenchmarkFuzzPersistentVsColdStart", 1500)
	s := gate(base, head, targets("?BenchmarkFuzzPersistentVsColdStart"), 0.20)
	if s.Pass || !s.Results[0].Regression {
		t.Fatalf("optional target with base samples did not gate: %+v", s.Results[0])
	}
}

// TestGateOptionalTargetMissingFromHeadFails: optional only tolerates a
// missing BASE — a benchmark that vanished from head must still fail.
func TestGateOptionalTargetMissingFromHeadFails(t *testing.T) {
	base := benchOut("BenchmarkFuzzPersistentVsColdStart", 1000)
	head := benchOut("BenchmarkSomethingElse", 1000)
	s := gate(base, head, targets("?BenchmarkFuzzPersistentVsColdStart"), 0.20)
	if s.Pass || !s.Results[0].Missing {
		t.Fatalf("optional target missing from head passed: %+v", s.Results[0])
	}
}
