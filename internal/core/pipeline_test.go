package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/vm"
)

// TestPipelinedFindsSameBugs: the acceptance contract of the cross-phase
// pipeline — workers=4 with Pipeline must find exactly the bug set the
// sequential engine finds on the golden drivers. Path count and order are
// schedule-dependent; the bug set is not. (Runs under -race in CI: this is
// also the pipelined engine's race regression test.)
func TestPipelinedFindsSameBugs(t *testing.T) {
	for driver, want := range seedGolden {
		opts := DefaultOptions()
		opts.Workers = 4
		opts.Pipeline = true
		rep := runDDT(t, driver, corpus.Buggy, opts)

		if got := sortedBugKeys(rep); !reflect.DeepEqual(got, want.bugs) {
			t.Errorf("%s pipelined: bug set %v, sequential found %v", driver, got, want.bugs)
		}
		if !rep.Pipelined {
			t.Errorf("%s: report not marked pipelined", driver)
		}
		if rep.Workers != 4 {
			t.Errorf("%s: report workers = %d, want 4", driver, rep.Workers)
		}
	}
}

// TestPipelinedFixedVariantIsClean: zero false positives must survive the
// barrier removal — the corrected variants report nothing.
func TestPipelinedFixedVariantIsClean(t *testing.T) {
	for _, driver := range []string{"rtl8029", "amd-pcnet"} {
		opts := DefaultOptions()
		opts.Workers = 4
		opts.Pipeline = true
		rep := runDDT(t, driver, corpus.Fixed, opts)
		if len(rep.Bugs) != 0 {
			t.Errorf("fixed %s pipelined reported %d bug(s): %v",
				driver, len(rep.Bugs), sortedBugKeys(rep))
		}
	}
}

// TestPipelineIgnoredSequentially: Pipeline with Workers<=1 must stay
// bit-identical to the golden sequential engine — the determinism contract
// says only a real worker pool may dissolve the barriers.
func TestPipelineIgnoredSequentially(t *testing.T) {
	want := seedGolden["amd-pcnet"]
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Pipeline = true
	rep := runDDT(t, "amd-pcnet", corpus.Buggy, opts)
	if got := sortedBugKeys(rep); !reflect.DeepEqual(got, want.bugs) {
		t.Errorf("bug set %v, want %v", got, want.bugs)
	}
	if rep.PathsExplored != want.paths || rep.Instructions != want.instr ||
		rep.StatesForked != want.forks || rep.SolverQueries != want.queries {
		t.Errorf("paths/instr/forks/queries = %d/%d/%d/%d, seed %d/%d/%d/%d",
			rep.PathsExplored, rep.Instructions, rep.StatesForked, rep.SolverQueries,
			want.paths, want.instr, want.forks, want.queries)
	}
	if rep.Pipelined {
		t.Error("sequential run marked pipelined")
	}
}

// TestPipelinedPhaseOrdering asserts the per-path phase-order invariant the
// pipeline must preserve: no state is ever invoked into phase k unless its
// base completed an EARLIER phase successfully (transitively rooting at
// DriverEntry). The engine's test hooks fire under the coordinator lock:
// testOnPathDone when a path retires, testOnSeed when a base is invoked
// into a phase — so a seed whose base has no earlier successful completion
// on record is a barrier-removal ordering bug. One sanctioned exception:
// a drain phase (DPC fixpoint) re-seeds its own successes while they still
// carry pending DPCs, so phase == completed-phase is legal there and only
// there. Runs over both a linear plan (rtl8029) and the storage scenario
// graph (promise-ultra133), where seeds route along graph edges.
func TestPipelinedPhaseOrdering(t *testing.T) {
	for _, driver := range []string{"rtl8029", "promise-ultra133"} {
		t.Run(driver, func(t *testing.T) {
			img, err := corpus.Build(driver, corpus.Buggy)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Workers = 4
			opts.Pipeline = true
			e := NewEngine(img, opts)
			plan := e.phasePlan()
			drain := func(phase int) bool {
				return phase >= 0 && phase < len(plan) && plan[phase].drain
			}

			type completion struct {
				phase   int
				success bool
			}
			var mu sync.Mutex
			completed := make(map[uint64]completion)
			seeds := 0
			var violations []string

			e.testOnPathDone = func(s *vm.State, phase int, success bool) {
				mu.Lock()
				defer mu.Unlock()
				completed[s.ID] = completion{phase: phase, success: success}
			}
			e.testOnSeed = func(base *vm.State, phase int) {
				mu.Lock()
				defer mu.Unlock()
				seeds++
				if phase == 0 {
					// DriverEntry is seeded from the boot state, which never ran.
					return
				}
				c, ok := completed[base.ID]
				switch {
				case !ok:
					violations = append(violations,
						base.String()+" entered a phase without completing any")
				case !c.success:
					violations = append(violations,
						base.String()+" promoted from a failed path")
				case c.phase == phase && drain(phase):
					// DPC fixpoint re-entry: legal.
				case c.phase >= phase:
					violations = append(violations,
						base.String()+" moved backwards or re-entered its phase")
				}
			}

			rep, err := e.TestDriver(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range violations {
				t.Errorf("phase-ordering violation: %s", v)
			}
			if seeds < 2 {
				t.Fatalf("only %d seed(s) observed — the pipeline never promoted", seeds)
			}
			if len(rep.Bugs) == 0 {
				t.Error("instrumented run found no bugs")
			}
		})
	}
}

// TestPipelinedStorageScenario: the scenario graph survives barrier
// removal — pipelined workers=4 finds exactly the storage driver's two
// planted bugs (the multi-DPC drain crash and the surprise-removal race),
// and the corrected variant stays clean. Runs under -race in CI, which
// makes this the graph seeding/drain re-entry race regression test.
func TestPipelinedStorageScenario(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Pipeline = true
	rep := runDDT(t, "promise-ultra133", corpus.Buggy, opts)
	want := []string{"kernel crash", "memory corruption"}
	if got := storageBugClasses(t, rep); !reflect.DeepEqual(got, want) {
		t.Errorf("pipelined bug classes = %v, want %v\n%s", got, want, rep)
	}
	if !rep.Pipelined {
		t.Error("report not marked pipelined")
	}

	fixed := runDDT(t, "promise-ultra133", corpus.Fixed, opts)
	if len(fixed.Bugs) != 0 {
		t.Errorf("fixed promise-ultra133 pipelined reported %d bug(s): %v",
			len(fixed.Bugs), sortedBugKeys(fixed))
	}
}

// TestPipelinedReportsPhaseStats: the per-(entry, phase) ledger must
// surface in the report, in workload order, with sane concurrency gauges.
func TestPipelinedReportsPhaseStats(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Pipeline = true
	rep := runDDT(t, "rtl8029", corpus.Buggy, opts)

	if len(rep.Phases) == 0 {
		t.Fatal("no per-phase stats in the pipelined report")
	}
	if rep.Phases[0].Name != "DriverEntry" {
		t.Errorf("first phase = %q, want DriverEntry", rep.Phases[0].Name)
	}
	totalExited := 0
	for _, p := range rep.Phases {
		totalExited += p.Exited
		if p.Promoted > opts.KeepStates {
			t.Errorf("phase %s promoted %d > KeepStates %d", p.Name, p.Promoted, opts.KeepStates)
		}
		if p.Exited > opts.MaxPathsPerEntry+opts.Workers {
			t.Errorf("phase %s exited %d beyond budget %d (+%d overshoot)",
				p.Name, p.Exited, opts.MaxPathsPerEntry, opts.Workers)
		}
		if p.Succeeded > 0 && p.PeakInFlight == 0 {
			t.Errorf("phase %s succeeded %d paths with zero peak in-flight", p.Name, p.Succeeded)
		}
	}
	if totalExited != rep.PathsExplored {
		t.Errorf("phase ledger exited %d != report paths %d", totalExited, rep.PathsExplored)
	}
}

// TestPipelinedStopAtFirstBug: the early-exit policy must cut the whole
// pipeline, not just one phase.
func TestPipelinedStopAtFirstBug(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Pipeline = true
	opts.StopAtFirstBug = true
	rep := runDDT(t, "rtl8029", corpus.Buggy, opts)
	if len(rep.Bugs) == 0 {
		t.Fatal("no bug found with StopAtFirstBug")
	}
}
