package core

import (
	"context"
	"testing"

	"repro/internal/corpus"
)

func runDDT(t *testing.T, driver string, v corpus.Variant, opts Options) *Report {
	t.Helper()
	img, err := corpus.Build(driver, v)
	if err != nil {
		t.Fatalf("build %s: %v", driver, err)
	}
	e := NewEngine(img, opts)
	rep, err := e.TestDriver(context.Background())
	if err != nil {
		t.Fatalf("test %s: %v", driver, err)
	}
	return rep
}

func classSet(rep *Report) map[string]int {
	return rep.CountByClass()
}

func TestRTL8029FindsAllFiveBugs(t *testing.T) {
	rep := runDDT(t, "rtl8029", corpus.Buggy, DefaultOptions())
	got := classSet(rep)
	t.Logf("rtl8029 buggy report:\n%s", rep)
	for _, b := range rep.Bugs {
		t.Logf("  %s", b.Describe())
	}
	want := map[string]int{
		"resource leak":      1,
		"memory corruption":  1,
		"race condition":     1,
		"segmentation fault": 2,
	}
	for class, n := range want {
		if got[class] < n {
			t.Errorf("class %q: found %d, want >= %d", class, got[class], n)
		}
	}
	if len(rep.Bugs) != 5 {
		t.Errorf("total bugs = %d, want exactly 5 (Table 2)", len(rep.Bugs))
	}
}

func TestRTL8029FixedIsClean(t *testing.T) {
	rep := runDDT(t, "rtl8029", corpus.Fixed, DefaultOptions())
	if len(rep.Bugs) != 0 {
		for _, b := range rep.Bugs {
			t.Errorf("false positive: %s", b.Describe())
		}
	}
}

func TestRTL8029CoverageReasonable(t *testing.T) {
	rep := runDDT(t, "rtl8029", corpus.Buggy, DefaultOptions())
	if rep.RelativeCoverage() < 0.3 {
		t.Errorf("coverage = %.0f%%, want >= 30%%", 100*rep.RelativeCoverage())
	}
	if len(rep.CoverageSeries) == 0 {
		t.Error("no coverage series recorded")
	}
}
