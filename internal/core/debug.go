package core

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// phaseDebug is the DDT_DEBUG_PHASES reporter. All per-phase timing and
// gauge lines go through one process-wide mutex, so output from parallel
// workers — or from several engines running at once (benchmarks, the
// hybrid loop) — never interleaves mid-line. The pre-pipeline engine
// printed straight from the explore path, which garbled lines under
// workers>1; routing through here is the fix, and the pipelined mode's
// per-phase in-flight/queued gauges ride the same channel.
type phaseDebug struct {
	mu sync.Mutex
	w  io.Writer
}

var dbgPhases = &phaseDebug{w: os.Stdout}

// enabled reports whether DDT_DEBUG_PHASES output is on. Checked per call
// so tests can toggle the environment.
func (d *phaseDebug) enabled() bool {
	return os.Getenv("DDT_DEBUG_PHASES") != ""
}

// printf emits one whole line under the reporter's lock.
func (d *phaseDebug) printf(format string, args ...any) {
	if !d.enabled() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	fmt.Fprintf(d.w, format, args...)
}

// phaseGauge is one phase's live pipeline occupancy, snapshotted under the
// pipeline coordinator's lock.
type phaseGauge struct {
	Name     string
	Queued   int // states waiting in the frontier
	InFlight int // states being stepped plus seeds being expanded
	Exited   int // completed paths so far
}

// gauges renders a per-phase in-flight/queued snapshot as a single line,
// e.g. "  gauges: Initialize q=3 run=2 done=17 | Send q=1 run=1 done=0".
func (d *phaseDebug) gauges(prefix string, rows []phaseGauge) {
	if !d.enabled() {
		return
	}
	parts := make([]string, 0, len(rows))
	for _, g := range rows {
		if g.Queued == 0 && g.InFlight == 0 && g.Exited == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s q=%d run=%d done=%d", g.Name, g.Queued, g.InFlight, g.Exited))
	}
	if len(parts) == 0 {
		parts = append(parts, "(idle)")
	}
	d.printf("  %s gauges: %s\n", prefix, strings.Join(parts, " | "))
}

// workerPaths renders the per-worker retired-path distribution.
func (d *phaseDebug) workerPaths(perWorker []int) {
	d.printf("  per-worker paths: %v\n", perWorker)
}
