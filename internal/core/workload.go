package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// The workload generator is our Device Path Exerciser (§4.3): it invokes
// each registered entry point the way the OS would — load, initialize,
// exercise the data path (one packet / one playback, §5.2), query and set
// driver information with symbolic OIDs, drain DPCs, deliver interrupts,
// halt — and lets symbolic execution fan out from each invocation.

// pipelined reports whether this engine explores cross-phase (no workload
// phase barriers): Options.Pipeline with a real worker pool.
func (e *Engine) pipelined() bool {
	return e.Opts.Pipeline && e.Opts.Workers > 1
}

// TestDriver runs the complete workload against the image and returns the
// bug report. This is the top-level "Test Now button" (§1). ctx cancels
// the session mid-run; Opts.Duration, when set, bounds its wall-clock time.
func (e *Engine) TestDriver(ctx context.Context) (*Report, error) {
	if e.Opts.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.Opts.Duration)
		defer cancel()
	}
	if e.pipelined() {
		return e.testDriverPipelined(ctx)
	}
	boot := e.NewBootState()

	// Phase: DriverEntry — the load-time entry named in the binary header.
	entry := e.M.ForkState(boot)
	e.K.Invoke(entry, "DriverEntry", e.Img.Entry)
	e.Sched.Push(entry)
	res := e.Explore(ctx, "DriverEntry")
	if len(res.Succeeded) == 0 {
		// A driver whose load entry always fails or crashes: report what
		// we found.
		return e.Report(), nil
	}
	bases := res.Succeeded

	switch e.Img.Device.Class {
	case binimg.ClassNetwork:
		bases = e.networkWorkload(ctx, bases)
	case binimg.ClassAudio:
		bases = e.audioWorkload(ctx, bases)
	case binimg.ClassStorage:
		// Storage drivers run the scenario graph (PnP/power/surprise
		// removal); the plan is shared with the pipelined explorer.
		bases = e.runGraph(ctx, e.phasePlan(), bases)
	default:
		// No class-specific data path: still exercise halt if registered.
	}
	_ = bases
	return e.Report(), nil
}

// phase runs one entry phase across all base states. It returns the new
// bases (successful outcomes) and whether any invocation succeeded; when
// none did, the old bases are returned so the caller can decide whether the
// remaining workload still makes sense.
//
// NOTE: the workload below exists in a second, data-driven form in
// pipeline.go (phasePlan) for the barrier-free explorer. Any phase added,
// reordered, or re-argumented here must be mirrored there — see the
// phasePlan comment for why the two cannot share one definition.
func (e *Engine) phase(ctx context.Context, bases []*vm.State, name string, pcOf func(ks *kernel.KState) uint32,
	argsOf func(s *vm.State) []*expr.Expr, prep func(s *vm.State)) ([]*vm.State, bool) {

	any := false
	for _, base := range bases {
		ks := kernel.Of(base)
		pc := pcOf(ks)
		if pc == 0 {
			continue
		}
		any = true
		st := e.M.ForkState(base)
		if prep != nil {
			prep(st)
		}
		var args []*expr.Expr
		if argsOf != nil {
			args = argsOf(st)
		}
		e.K.InvokeSym(st, name, pc, args...)
		e.Sched.Push(st)

		if e.Opts.SymbolicInterrupts && kernel.Of(st).ISRRegistered && name != "ISR" && e.intrBudgetLeft(base) {
			alt := e.M.ForkState(base)
			if prep != nil {
				prep(alt)
			}
			var altArgs []*expr.Expr
			if argsOf != nil {
				altArgs = argsOf(alt)
			}
			e.K.InvokeSym(alt, name, pc, altArgs...)
			chargeIntr(alt)
			e.Sched.Push(alt)
		}
	}
	if !any {
		return bases, false
	}
	res := e.Explore(ctx, name)
	if len(res.Succeeded) == 0 {
		return bases, false
	}
	// Prefer carrying forward states with queued DPCs — they hold the
	// continuations (timer callbacks) the DPC-drain phase must exercise —
	// then cap at the configured fan-out.
	sort.SliceStable(res.Succeeded, func(i, j int) bool {
		return len(kernel.Of(res.Succeeded[i]).PendingDPCs) > len(kernel.Of(res.Succeeded[j]).PendingDPCs)
	})
	if len(res.Succeeded) > e.Opts.KeepStates {
		res.Succeeded = res.Succeeded[:e.Opts.KeepStates]
	}
	// Normalize carried state: phases must not leak DPC/IRQL context.
	for _, s := range res.Succeeded {
		ks := kernel.Of(s)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
	}
	return res.Succeeded, true
}

// adapterHandle is the opaque per-adapter context the kernel hands to
// network entry points.
const adapterHandle uint32 = 0x7000_0001

func (e *Engine) networkWorkload(ctx context.Context, bases []*vm.State) []*vm.State {
	mp := func(ks *kernel.KState) *kernel.MiniportChars {
		if ks.Miniport == nil {
			return &kernel.MiniportChars{}
		}
		return ks.Miniport
	}

	// Initialize. Interrupt registration happens inside; the boundary hook
	// begins injecting as soon as the ISR is registered — this is the
	// window where the RTL8029 init race lives.
	bases, initialized := e.phase(ctx, bases, "Initialize",
		func(ks *kernel.KState) uint32 { return mp(ks).InitializePC },
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		nil)
	if !initialized {
		// The OS only exercises the data path — and eventually Halt — on
		// an adapter that initialized successfully.
		return bases
	}

	// Send one packet with symbolic contents and symbolic (bounded) length.
	bases, _ = e.phase(ctx, bases, "Send",
		func(ks *kernel.KState) uint32 { return mp(ks).SendPC },
		func(s *vm.State) []*expr.Expr {
			pkt := e.makeSymbolicPacket(s)
			return []*expr.Expr{expr.Const(adapterHandle), expr.Const(pkt)}
		},
		nil)

	// QueryInformation / SetInformation with a fully symbolic OID — the
	// unexpected-OID crashes of Table 2 need exactly this. Symbolic entry
	// arguments are concrete-to-symbolic conversion hints (§3.4): in
	// default, annotation-free mode "driver entry point arguments are not
	// touched" and a representative concrete OID is used instead.
	infoArgs := func(concreteOID uint32) func(s *vm.State) []*expr.Expr {
		return func(s *vm.State) []*expr.Expr {
			var oid *expr.Expr
			if e.Opts.Annotations {
				oid = e.K.FreshSymbol(s, "oid", expr.OriginArgument)
			} else {
				oid = expr.Const(concreteOID)
			}
			buf := e.makeInfoBuffer(s)
			return []*expr.Expr{expr.Const(adapterHandle), oid, expr.Const(buf), expr.Const(64)}
		}
	}
	bases, _ = e.phase(ctx, bases, "QueryInformation",
		func(ks *kernel.KState) uint32 { return mp(ks).QueryInfoPC },
		infoArgs(kernel.OIDGenSupportedList), nil)
	bases, _ = e.phase(ctx, bases, "SetInformation",
		func(ks *kernel.KState) uint32 { return mp(ks).SetInfoPC },
		infoArgs(kernel.OIDGenCurrentPacketFil), nil)

	// Direct ISR delivery (device interrupt while otherwise idle).
	bases, _ = e.phase(ctx, bases, "ISR",
		func(ks *kernel.KState) uint32 {
			if ks.ISRRegistered {
				return ks.ISRPC
			}
			return 0
		},
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		func(s *vm.State) { kernel.Of(s).IRQL = kernel.DeviceLevel })

	// Drain queued DPCs (timer callbacks) at DISPATCH_LEVEL.
	bases = e.drainDPCs(ctx, bases)

	// Halt: everything must be released afterwards.
	bases, _ = e.phase(ctx, bases, "Halt",
		func(ks *kernel.KState) uint32 { return mp(ks).HaltPC },
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		nil)
	return bases
}

func (e *Engine) audioWorkload(ctx context.Context, bases []*vm.State) []*vm.State {
	au := func(ks *kernel.KState) *kernel.AudioChars {
		if ks.Audio == nil {
			return &kernel.AudioChars{}
		}
		return ks.Audio
	}

	bases, initialized := e.phase(ctx, bases, "Initialize",
		func(ks *kernel.KState) uint32 { return au(ks).InitializePC },
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		nil)
	if !initialized {
		return bases
	}

	// Play a small sound: the paper's audio workload (§5.2).
	bases, _ = e.phase(ctx, bases, "Play",
		func(ks *kernel.KState) uint32 { return au(ks).PlayPC },
		func(s *vm.State) []*expr.Expr {
			buf := e.makeAudioBuffer(s)
			return []*expr.Expr{expr.Const(adapterHandle), expr.Const(buf), expr.Const(256)}
		},
		nil)

	bases, _ = e.phase(ctx, bases, "ISR",
		func(ks *kernel.KState) uint32 {
			if ks.ISRRegistered {
				return ks.ISRPC
			}
			return 0
		},
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		func(s *vm.State) { kernel.Of(s).IRQL = kernel.DeviceLevel })

	bases = e.drainDPCs(ctx, bases)

	bases, _ = e.phase(ctx, bases, "Stop",
		func(ks *kernel.KState) uint32 { return au(ks).StopPC },
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		nil)

	bases, _ = e.phase(ctx, bases, "Halt",
		func(ks *kernel.KState) uint32 { return au(ks).HaltPC },
		func(s *vm.State) []*expr.Expr { return []*expr.Expr{expr.Const(adapterHandle)} },
		nil)
	return bases
}

// maxDPCRounds bounds the DPC-drain fixpoint: a DPC body may itself queue
// another DPC, and an unbounded drain would never terminate on such a
// driver. Eight rounds comfortably covers every corpus driver while still
// converging when a callback re-queues itself.
const maxDPCRounds = 8

// drainDPCs dispatches pending timer/DPC callbacks at DISPATCH_LEVEL with
// the DPC flag set (where the Intel Pro/100 spinlock bug manifests). A
// driver may hold several queued DPCs — a timer callback plus KDPCs the
// ISR inserted — so the drain runs to a fixpoint: each round pops one DPC
// per state and explores it, until no carried state has work left. States
// whose queue is already empty ride through a round unchanged.
func (e *Engine) drainDPCs(ctx context.Context, bases []*vm.State) []*vm.State {
	for round := 0; round < maxDPCRounds; round++ {
		var out []*vm.State
		ran := false
		for _, base := range bases {
			if len(kernel.Of(base).PendingDPCs) == 0 {
				out = append(out, base)
				continue
			}
			ran = true
			st := e.M.ForkState(base)
			sks := kernel.Of(st)
			dpc := sks.TakeDPC()
			sks.IRQL = kernel.DispatchLevel
			sks.InDpc = true
			e.K.InvokeSym(st, "DPC:"+dpc.Label, dpc.FuncPC, expr.Const(dpc.Ctx))
			e.Sched.Push(st)
		}
		if !ran {
			return bases
		}
		res := e.Explore(ctx, "DPC")
		for _, s := range res.Succeeded {
			ks := kernel.Of(s)
			ks.InDpc = false
			ks.IRQL = kernel.PassiveLevel
			out = append(out, s)
		}
		if len(out) == 0 {
			return bases
		}
		bases = out
	}
	return bases
}

// runGraph executes a scenario graph — a phasePlan whose specs may carry
// successor edges — under the barriered explorer. Edges only point forward
// (phasePlan builds them that way), so plan index order is a topological
// order and a single in-order sweep visits every node after all of its
// predecessors. Node 0 (DriverEntry) has already run; bases are its
// successes, routed along node 0's edges. The return value collects the
// graph's leaves: states that completed a terminal node (or stalled at a
// failed gate).
func (e *Engine) runGraph(ctx context.Context, plan []phaseSpec, bases []*vm.State) []*vm.State {
	in := make([][]*vm.State, len(plan))
	leaves := e.routeGraph(plan, 0, bases, in)
	for i := 1; i < len(plan); i++ {
		if len(in[i]) == 0 {
			continue
		}
		out, ok := e.runGraphNode(ctx, plan[i], i, in[i])
		if !ok && plan[i].gate {
			// Gate with zero successes: this subtree of the scenario ends
			// (the linear loop's "!initialized" early return). Its inputs
			// are the subtree's final states.
			leaves = append(leaves, in[i]...)
			continue
		}
		// Zero-success non-gate nodes return their inputs unchanged (the
		// linear loop's pass-through), so routing out is always right.
		leaves = append(leaves, e.routeGraph(plan, i, out, in)...)
	}
	return leaves
}

// routeGraph sends the states leaving node i along its outgoing edges,
// appending them to each matching target's input list. nil succs is linear
// fallthrough to i+1; a state matching no edge (or leaving the last node)
// is a leaf and is returned.
func (e *Engine) routeGraph(plan []phaseSpec, i int, out []*vm.State, in [][]*vm.State) []*vm.State {
	sp := plan[i]
	if sp.succs == nil {
		if i+1 < len(plan) {
			in[i+1] = append(in[i+1], out...)
			return nil
		}
		return out
	}
	var leaves []*vm.State
	for _, s := range out {
		routed := false
		for _, edge := range sp.succs {
			if edge.when == nil || edge.when(e, s) {
				in[edge.to] = append(in[edge.to], s)
				routed = true
			}
		}
		if !routed {
			leaves = append(leaves, s)
		}
	}
	return leaves
}

// runGraphNode runs one scenario-graph node over its input states,
// mirroring Engine.phase's explore/sort/cap/normalize sequence but driving
// the invocation through the node's phaseSpec (so the barriered and
// pipelined walkers exercise identical invocations). Drain nodes delegate
// to the DPC fixpoint.
func (e *Engine) runGraphNode(ctx context.Context, sp phaseSpec, idx int, bases []*vm.State) ([]*vm.State, bool) {
	if sp.drain {
		return e.drainDPCs(ctx, bases), true
	}
	any := false
	for _, base := range bases {
		for _, st := range sp.invoke(e, base, idx) {
			any = true
			e.Sched.Push(st)
		}
	}
	if !any {
		return bases, false
	}
	res := e.Explore(ctx, sp.name)
	if len(res.Succeeded) == 0 {
		return bases, false
	}
	sort.SliceStable(res.Succeeded, func(i, j int) bool {
		return len(kernel.Of(res.Succeeded[i]).PendingDPCs) > len(kernel.Of(res.Succeeded[j]).PendingDPCs)
	})
	if len(res.Succeeded) > e.Opts.KeepStates {
		res.Succeeded = res.Succeeded[:e.Opts.KeepStates]
	}
	for _, s := range res.Succeeded {
		ks := kernel.Of(s)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
	}
	return res.Succeeded, true
}

// makeSymbolicPacket builds the one-packet Send workload: a packet header
// { dataPtr, length } plus a payload whose leading bytes are symbolic. The
// length is symbolic but constrained to the buffer size — the soundness
// requirement §7 contrasts with RevNIC ("constrained not to be greater
// than the original, to avoid buffer overflows").
func (e *Engine) makeSymbolicPacket(s *vm.State) uint32 {
	ks := kernel.Of(s)
	const payload = 64
	addr, err := ks.HeapAlloc(8+payload, "sendpkt", "packet", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr) // kernel-owned: the driver must not free it
	data := addr + 8
	s.Mem.Write(addr, 4, expr.Const(data))
	if e.Opts.Annotations {
		length := e.K.FreshSymbol(s, "packet_len", expr.OriginPacket)
		s.AddConstraint(expr.UGe(length, expr.Const(14)))
		s.AddConstraint(expr.ULe(length, expr.Const(payload)))
		s.Mem.Write(addr+4, 4, length)
		for i := uint32(0); i < 16; i++ {
			b := e.K.FreshSymbol(s, fmt.Sprintf("packet_byte_%d", i), expr.OriginPacket)
			s.Mem.Write(data+i, 1, b)
		}
	} else {
		s.Mem.Write(addr+4, 4, expr.Const(42))
		for i := uint32(0); i < 16; i++ {
			s.Mem.Write(data+i, 1, expr.Const(uint32(0x40+i)))
		}
	}
	for i := uint32(16); i < payload; i++ {
		s.Mem.Write(data+i, 1, expr.Const(0))
	}
	return addr
}

// makeInfoBuffer allocates the kernel-owned information buffer passed to
// Query/SetInformation.
func (e *Engine) makeInfoBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(64, "infobuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	return addr
}

// makeStorageBuffer allocates a 128-byte block-I/O buffer whose leading
// bytes are symbolic. The fuzzer's storage workload mirrors this
// positionally (symbol k here is feed word k there) — keep the two in sync.
func (e *Engine) makeStorageBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(128, "blkbuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	if e.Opts.Annotations {
		for i := uint32(0); i < 8; i++ {
			b := e.K.FreshSymbol(s, fmt.Sprintf("blk_byte_%d", i), expr.OriginPacket)
			s.Mem.Write(addr+i, 1, b)
		}
	} else {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, expr.Const(i*9&0xFF))
		}
	}
	return addr
}

// makeAudioBuffer allocates a playback buffer with symbolic leading
// samples.
func (e *Engine) makeAudioBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(256, "audiobuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	if e.Opts.Annotations {
		for i := uint32(0); i < 8; i++ {
			b := e.K.FreshSymbol(s, fmt.Sprintf("sample_%d", i), expr.OriginPacket)
			s.Mem.Write(addr+i, 1, b)
		}
	} else {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, expr.Const(i*17&0xFF))
		}
	}
	return addr
}
