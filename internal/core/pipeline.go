package core

import (
	"context"

	"repro/internal/binimg"
	"repro/internal/campaign"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
	"repro/internal/workq"
)

// The pipelined explorer dissolves the workload phase barriers. The
// barriered engine (TestDriver's default path) drains EVERY phase-k path
// before ANY phase-k+1 path starts, so workers idle while the slowest
// Initialize path finishes. Nothing in the paper requires that global
// ordering — only that each individual path respects the phase order — so
// here one persistent worker pool runs over a phase-aware frontier: a path
// that completes phase k immediately seeds its successor invocation into
// phase k+1 (capped at KeepStates promotions per phase), and the scheduler
// weights earlier phases so spare workers pick up later-phase work exactly
// where the barrier used to stall.
//
// The moving parts:
//
//   - phaseSpec reifies the workload (workload.go's imperative phase chain)
//     as data: per phase, an applicability test and an invocation builder.
//   - pipeSeed is a phase-transition work item ("invoke base into phase j"),
//     carried by a workq.Queue — the engine-side consumer the workq package
//     was generalized for: promotions land on the completing worker's own
//     shard (locality), idle workers steal.
//   - pipeLedger is the per-(entry, phase) campaign.Ledger replacing the
//     barriered engine's per-Explore bounds: exited paths are budgeted per
//     phase (MaxPathsPerEntry each), promotions per phase (KeepStates).
//   - pipeRun is the campaign.Frontier policy: workers prefer seeds, then
//     frontier states; the campaign.Runner owns the pool, and the run ends
//     when every phase has drained.
//
// Per-path soundness is unchanged: a state only ever reaches phase k+1 by
// being forked from a base that completed an earlier phase successfully
// (promotion), or by the fallback below. Zero-success fallback: the
// barriered loop passes a phase's input bases through unchanged when no
// invocation succeeds; here, when a non-gate phase drains with zero
// successes, its input bases are re-seeded into the next applicable phase.
// Gate phases (DriverEntry, Initialize) keep their stronger semantics: no
// success means the rest of the workload is not exercised.

// phaseSpec describes one workload phase to the pipelined explorer.
type phaseSpec struct {
	name string
	// gate phases stop the workload when they produce no success.
	gate bool
	// applicable reports whether this phase applies to a base state (the
	// entry point is registered / a DPC is pending).
	applicable func(e *Engine, base *vm.State) bool
	// invoke forks base into this phase's invocation state(s) — including
	// the interrupt-at-entry sibling where the barriered phase loop makes
	// one — tagging each with the phase index. It does not push them.
	invoke func(e *Engine, base *vm.State, phase int) []*vm.State
}

// stdPhase builds the standard phase shape shared by every entry point:
// fork the base, prep, invoke with args, plus the symbolic-interrupt
// sibling when an ISR is registered (mirroring Engine.phase).
func stdPhase(name string, gate bool, pcOf func(*kernel.KState) uint32,
	argsOf func(*Engine, *vm.State) []*expr.Expr, prep func(*vm.State)) phaseSpec {

	mk := func(e *Engine, base *vm.State, phase int, pc uint32) *vm.State {
		st := e.M.ForkState(base)
		st.Phase = phase
		if prep != nil {
			prep(st)
		}
		var args []*expr.Expr
		if argsOf != nil {
			args = argsOf(e, st)
		}
		e.K.InvokeSym(st, name, pc, args...)
		return st
	}
	return phaseSpec{
		name: name,
		gate: gate,
		applicable: func(e *Engine, base *vm.State) bool {
			return pcOf(kernel.Of(base)) != 0
		},
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			pc := pcOf(kernel.Of(base))
			if pc == 0 {
				return nil
			}
			st := mk(e, base, phase, pc)
			out := []*vm.State{st}
			if e.Opts.SymbolicInterrupts && kernel.Of(st).ISRRegistered && name != "ISR" {
				alt := mk(e, base, phase, pc)
				if alt.Meta == nil {
					alt.Meta = make(map[string]uint64)
				}
				alt.Meta[metaIntrCount] = 1
				alt.Meta[metaInjectISR] = 1
				out = append(out, alt)
			}
			return out
		},
	}
}

// dpcPhase drains one pending timer/DPC callback at DISPATCH_LEVEL
// (mirroring Engine.drainDPCs; no interrupt sibling there either).
func dpcPhase() phaseSpec {
	return phaseSpec{
		name: "DPC",
		applicable: func(e *Engine, base *vm.State) bool {
			return len(kernel.Of(base).PendingDPCs) > 0
		},
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			ks := kernel.Of(base)
			if len(ks.PendingDPCs) == 0 {
				return nil
			}
			dpc := ks.PendingDPCs[0]
			st := e.M.ForkState(base)
			st.Phase = phase
			sks := kernel.Of(st)
			sks.PendingDPCs = sks.PendingDPCs[1:]
			sks.IRQL = kernel.DispatchLevel
			sks.InDpc = true
			e.K.InvokeSym(st, "DPC:"+dpc.Label, dpc.FuncPC, expr.Const(dpc.Ctx))
			return []*vm.State{st}
		},
	}
}

// isrPhase delivers a direct device interrupt while otherwise idle.
func isrPhase() phaseSpec {
	return stdPhase("ISR", false,
		func(ks *kernel.KState) uint32 {
			if ks.ISRRegistered {
				return ks.ISRPC
			}
			return 0
		},
		func(e *Engine, s *vm.State) []*expr.Expr {
			return []*expr.Expr{expr.Const(adapterHandle)}
		},
		func(s *vm.State) { kernel.Of(s).IRQL = kernel.DeviceLevel })
}

// phasePlan reifies the driver class's workload as an ordered phase list.
// Phase 0 is always DriverEntry.
//
// This is deliberately a second expression of the workload in workload.go
// (networkWorkload/audioWorkload): the barriered loop's exact push order
// is pinned bit-for-bit by the sequential golden values, and its DPC drain
// mixes pass-through bases with DPC successes in a way a phase-level loop
// expresses but a per-base pipeline handles structurally — so neither side
// can consume the other's form without changing pinned semantics. The two
// MUST be kept in sync: a phase added, reordered, or re-argumented in one
// file must change the other, and TestPipelinedFindsSameBugs is the tripwire.
func (e *Engine) phasePlan() []phaseSpec {
	plan := []phaseSpec{{
		name:       "DriverEntry",
		gate:       true,
		applicable: func(*Engine, *vm.State) bool { return true },
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			st := e.M.ForkState(base)
			st.Phase = phase
			e.K.Invoke(st, "DriverEntry", e.Img.Entry)
			return []*vm.State{st}
		},
	}}

	handleArg := func(*Engine, *vm.State) []*expr.Expr {
		return []*expr.Expr{expr.Const(adapterHandle)}
	}

	switch e.Img.Device.Class {
	case binimg.ClassNetwork:
		mp := func(ks *kernel.KState) *kernel.MiniportChars {
			if ks.Miniport == nil {
				return &kernel.MiniportChars{}
			}
			return ks.Miniport
		}
		infoArgs := func(concreteOID uint32) func(*Engine, *vm.State) []*expr.Expr {
			return func(e *Engine, s *vm.State) []*expr.Expr {
				var oid *expr.Expr
				if e.Opts.Annotations {
					oid = e.K.FreshSymbol(s, "oid", expr.OriginArgument)
				} else {
					oid = expr.Const(concreteOID)
				}
				buf := e.makeInfoBuffer(s)
				return []*expr.Expr{expr.Const(adapterHandle), oid, expr.Const(buf), expr.Const(64)}
			}
		}
		plan = append(plan,
			stdPhase("Initialize", true,
				func(ks *kernel.KState) uint32 { return mp(ks).InitializePC },
				handleArg, nil),
			stdPhase("Send", false,
				func(ks *kernel.KState) uint32 { return mp(ks).SendPC },
				func(e *Engine, s *vm.State) []*expr.Expr {
					pkt := e.makeSymbolicPacket(s)
					return []*expr.Expr{expr.Const(adapterHandle), expr.Const(pkt)}
				}, nil),
			stdPhase("QueryInformation", false,
				func(ks *kernel.KState) uint32 { return mp(ks).QueryInfoPC },
				infoArgs(kernel.OIDGenSupportedList), nil),
			stdPhase("SetInformation", false,
				func(ks *kernel.KState) uint32 { return mp(ks).SetInfoPC },
				infoArgs(kernel.OIDGenCurrentPacketFil), nil),
			isrPhase(),
			dpcPhase(),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return mp(ks).HaltPC },
				handleArg, nil),
		)
	case binimg.ClassAudio:
		au := func(ks *kernel.KState) *kernel.AudioChars {
			if ks.Audio == nil {
				return &kernel.AudioChars{}
			}
			return ks.Audio
		}
		plan = append(plan,
			stdPhase("Initialize", true,
				func(ks *kernel.KState) uint32 { return au(ks).InitializePC },
				handleArg, nil),
			stdPhase("Play", false,
				func(ks *kernel.KState) uint32 { return au(ks).PlayPC },
				func(e *Engine, s *vm.State) []*expr.Expr {
					buf := e.makeAudioBuffer(s)
					return []*expr.Expr{expr.Const(adapterHandle), expr.Const(buf), expr.Const(256)}
				}, nil),
			isrPhase(),
			dpcPhase(),
			stdPhase("Stop", false,
				func(ks *kernel.KState) uint32 { return au(ks).StopPC },
				handleArg, nil),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return au(ks).HaltPC },
				handleArg, nil),
		)
	}
	return plan
}

// pipeSeed is one phase-transition work item: invoke base into phase.
type pipeSeed struct {
	base  *vm.State
	phase int
}

// pipeLedger is one phase's campaign budget ledger plus the pipeline's own
// phase bookkeeping, all guarded by the runner's coordinator lock.
type pipeLedger struct {
	campaign.Ledger
	spec phaseSpec

	// bases are this phase's input states, kept for the zero-success
	// fallback (bounded: promotions into a phase are KeepStates-capped).
	bases []*vm.State
}

// pipeItem is one unit of pipelined work: either a seed to expand or a
// frontier state to run. The executor fills the output half (out / res)
// and Retire folds it into the ledgers.
type pipeItem struct {
	seed *pipeSeed
	st   *vm.State

	out []*vm.State // invocation states produced by a seed expansion
	res PhaseResult // path result produced by running st
}

// pipeRun is the pipelined explorer's campaign.Frontier: the phase-aware
// work-selection policy over one campaign.Runner-owned worker pool.
type pipeRun struct {
	e       *Engine
	r       *campaign.Runner[*pipeItem]
	phases  []*pipeLedger
	ledgers []*campaign.Ledger // the campaign view of phases, same order
	seeds   *workq.Queue[pipeSeed]
	ectxs   []*vm.ExecContext
	// perPaths counts retired paths per worker (seeds excluded) for the
	// debug reporter; slot w is only touched by worker w.
	perPaths []int
}

// testDriverPipelined is TestDriver without phase barriers: one persistent
// campaign.Runner pool over the phase-aware frontier, from DriverEntry to
// Halt.
func (e *Engine) testDriverPipelined(ctx context.Context) (*Report, error) {
	if e.Opts.Heuristic == nil {
		// Phase-weighted pick over the mixed-phase frontier.
		e.Sched.SetHeuristic(exerciser.NewPhaseMinBlockCount(e.Sched.Counts()))
	}
	p := &pipeRun{e: e, seeds: workq.New[pipeSeed](e.Opts.Workers)}
	for _, sp := range e.phasePlan() {
		l := &pipeLedger{spec: sp}
		l.Name = sp.name
		p.phases = append(p.phases, l)
		p.ledgers = append(p.ledgers, &l.Ledger)
	}
	p.ectxs = make([]*vm.ExecContext, e.Opts.Workers)
	for w := range p.ectxs {
		p.ectxs[w] = e.M.NewContext(solver.NewWithCache(e.cache))
	}
	p.perPaths = make([]int, e.Opts.Workers)
	p.r = campaign.NewRunner[*pipeItem](
		campaign.Options{Workers: e.Opts.Workers, StopAtFirstBug: e.Opts.StopAtFirstBug},
		p, p.exec)
	p.r.BindFindings(e.findings)
	e.pipe = p

	p.enqueueSeed(0, e.NewBootState(), 0)
	p.r.Run(ctx)
	e.pipe = nil

	e.mu.Lock()
	for _, c := range p.ectxs {
		e.workerQueries += c.Solver.Stats.Queries
	}
	e.mu.Unlock()
	dbgPhases.workerPaths(p.perPaths)

	// A StopAtFirstBug (or canceled) stop can leave frontier states behind;
	// abandon them exactly as the barriered engine abandons an over-budget
	// frontier.
	for {
		st := e.Sched.Pop()
		if st == nil {
			break
		}
		st.Status = vm.StatusKilled
	}

	e.mu.Lock()
	for _, l := range p.phases {
		e.phaseStats = append(e.phaseStats, PhaseStat{
			Name:         l.spec.name,
			Exited:       l.Exited,
			Succeeded:    l.Succeeded,
			Promoted:     l.Promoted,
			SeedsIn:      l.SeedsIn,
			PeakInFlight: l.PeakInFlight,
			PeakQueued:   l.PeakQueued,
		})
	}
	e.mu.Unlock()
	return e.Report(), nil
}

// exec runs one work item outside the coordinator lock: expand a seed into
// its invocation states, or step a frontier state to completion.
func (p *pipeRun) exec(w int, it *pipeItem) {
	switch {
	case it.seed != nil:
		it.out = p.phases[it.seed.phase].spec.invoke(p.e, it.seed.base, it.seed.phase)
	case it.st != nil:
		p.e.runPath(p.ectxs[w], it.st, p.phases[it.st.Phase].spec.name, &it.res)
		p.perPaths[w]++
	}
}

// Next hands the worker its next work item: seeds first (they create work
// and are shard-local), then frontier states. Called under the runner's
// coordinator lock.
func (p *pipeRun) Next(w int) (*pipeItem, campaign.Verdict) {
	if s, ok := p.seeds.Pop(w); ok {
		l := p.phases[s.phase]
		l.PendingSeeds--
		l.Expanding++
		return &pipeItem{seed: &s}, campaign.Dispatch
	}
	for {
		st := p.e.Sched.Pop()
		if st == nil {
			break
		}
		l := p.phases[st.Phase]
		l.Queued--
		if l.Exited >= p.e.Opts.MaxPathsPerEntry {
			// Per-(entry, phase) path budget exhausted: abandon the rest
			// of this phase's frontier (coverage loss, never
			// unsoundness) — the barriered engine's post-Explore kill.
			st.Status = vm.StatusKilled
			continue
		}
		l.BeginFlight()
		return &pipeItem{st: st}, campaign.Dispatch
	}
	return nil, campaign.Drained
}

// Retire folds one completed item into the ledgers. Called under the
// runner's coordinator lock.
func (p *pipeRun) Retire(w int, it *pipeItem) {
	switch {
	case it.seed != nil:
		p.seedExpanded(w, it.seed.phase, it.out)
	case it.st != nil:
		p.pathDone(w, it.st, &it.res)
	}
}

// Idle is consulted when the frontier is drained and nothing is in flight:
// advance the drain cascade (which may fire a zero-success fallback) and
// end the campaign once every phase is done. Called under the runner's
// coordinator lock.
func (p *pipeRun) Idle(w int) bool {
	p.reap(w)
	return campaign.AllDone(p.ledgers)
}

// enqueueSeed queues "invoke base into phase" on the worker's own workq
// shard and records base as a fallback input of that phase. Caller holds
// the coordinator lock (or the pool has not started yet).
func (p *pipeRun) enqueueSeed(w int, base *vm.State, phase int) {
	l := p.phases[phase]
	l.SeedsIn++
	l.PendingSeeds++
	l.bases = append(l.bases, base)
	if h := p.e.testOnSeed; h != nil {
		h(base, phase)
	}
	p.seeds.Push(w, pipeSeed{base: base, phase: phase})
}

// seedOnward promotes base past fromPhase into the next phase that applies
// to it, if any. Non-applicable phases are skipped — except gates: a gate
// phase that does not apply (e.g. a network driver that never registered
// an Initialize handler) ends the workload for this base, exactly as the
// barriered loop's "!initialized" early return refuses to exercise the
// data path on an uninitialized adapter. Caller holds the coordinator lock.
func (p *pipeRun) seedOnward(w int, base *vm.State, fromPhase int) {
	for j := fromPhase + 1; j < len(p.phases); j++ {
		if p.phases[j].spec.applicable(p.e, base) {
			p.enqueueSeed(w, base, j)
			return
		}
		if p.phases[j].spec.gate {
			return
		}
	}
}

// seedExpanded pushes a seed's invocation states into the frontier and
// retires the expansion. Caller holds the coordinator lock.
func (p *pipeRun) seedExpanded(w, phase int, states []*vm.State) {
	l := p.phases[phase]
	l.Expanding--
	for _, st := range states {
		if p.e.Sched.Push(st) {
			l.AddQueued(1)
		}
	}
	p.reap(w)
}

// pushForked accounts a mid-path fork landing in the frontier (called via
// Engine.pushState from a worker's runPath, outside the coordinator lock).
func (p *pipeRun) pushForked(n *vm.State) {
	p.r.Locked(func() {
		if p.e.Sched.Push(n) {
			p.phases[n.Phase].AddQueued(1)
		}
	})
}

// pathDone retires one explored path: budget accounting, promotion of a
// success into the next phase (KeepStates-capped, on the completing
// worker's shard), and the drain cascade. Caller holds the coordinator
// lock.
func (p *pipeRun) pathDone(w int, st *vm.State, res *PhaseResult) {
	l := p.phases[st.Phase]
	l.InFlight--
	l.Exited += res.Exited
	// The completed state is the tail of runPath's depth-first descent —
	// a fork descendant of st in the same phase — not necessarily st.
	done := st
	success := len(res.Succeeded) > 0
	if success {
		done = res.Succeeded[0]
		l.Succeeded++
	}
	if h := p.e.testOnPathDone; h != nil {
		h(done, st.Phase, success)
	}
	if success && l.Promoted < p.e.Opts.KeepStates {
		l.Promoted++
		// Promoted bases must not leak DPC/IRQL context into the next
		// phase (the barriered loop normalizes carried states the same way).
		ks := kernel.Of(done)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
		p.seedOnward(w, done, st.Phase)
	}
	p.reap(w)
}

// reap advances the drain cascade: phases complete strictly in order
// (promotion only flows forward), so walk from the front and mark every
// already-done-prefixed phase with no remaining activity as done. A
// non-gate phase that drains with zero successes passes its input bases
// through to the next applicable phase — the barriered loop's fallback.
// Caller holds the coordinator lock.
func (p *pipeRun) reap(w int) {
	for i, l := range p.phases {
		if l.Done {
			continue
		}
		if l.Activity() > 0 {
			// Not drained; later phases can still be seeded by this one.
			return
		}
		l.Done = true
		dbgPhases.printf("pipeline phase %-20s drained: exited=%-4d succ=%-3d promoted=%d\n",
			l.spec.name, l.Exited, l.Succeeded, l.Promoted)
		dbgPhases.gauges("pipeline", p.gaugeRows())
		if !l.spec.gate && l.SeedsIn > 0 && l.Succeeded == 0 {
			for _, b := range l.bases {
				p.seedOnward(w, b, i)
			}
		}
		// Gate with zero successes: nothing seeds onward; the remaining
		// phases drain empty through this same cascade.
	}
}

// gaugeRows snapshots the per-phase occupancy for the debug reporter.
// Caller holds the coordinator lock.
func (p *pipeRun) gaugeRows() []phaseGauge {
	rows := make([]phaseGauge, 0, len(p.phases))
	for _, l := range p.phases {
		rows = append(rows, phaseGauge{
			Name:     l.spec.name,
			Queued:   l.Queued + l.PendingSeeds,
			InFlight: l.InFlight + l.Expanding,
			Exited:   l.Exited,
		})
	}
	return rows
}
