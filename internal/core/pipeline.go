package core

import (
	"sync"

	"repro/internal/binimg"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
	"repro/internal/workq"
)

// The pipelined explorer dissolves the workload phase barriers. The
// barriered engine (TestDriver's default path) drains EVERY phase-k path
// before ANY phase-k+1 path starts, so workers idle while the slowest
// Initialize path finishes. Nothing in the paper requires that global
// ordering — only that each individual path respects the phase order — so
// here one persistent worker pool runs over a phase-aware frontier: a path
// that completes phase k immediately seeds its successor invocation into
// phase k+1 (capped at KeepStates promotions per phase), and the scheduler
// weights earlier phases so spare workers pick up later-phase work exactly
// where the barrier used to stall.
//
// The moving parts:
//
//   - phaseSpec reifies the workload (workload.go's imperative phase chain)
//     as data: per phase, an applicability test and an invocation builder.
//   - pipeSeed is a phase-transition work item ("invoke base into phase j"),
//     carried by a workq.Queue — the engine-side consumer the workq package
//     was generalized for: promotions land on the completing worker's own
//     shard (locality), idle workers steal.
//   - pipeLedger is the per-(entry, phase) budget ledger replacing the
//     barriered engine's per-Explore bounds: exited paths are budgeted per
//     phase (MaxPathsPerEntry each), promotions per phase (KeepStates).
//   - pipeRun is the condvar-coordinated pool: workers prefer seeds, then
//     frontier states; the run ends when every phase has drained.
//
// Per-path soundness is unchanged: a state only ever reaches phase k+1 by
// being forked from a base that completed an earlier phase successfully
// (promotion), or by the fallback below. Zero-success fallback: the
// barriered loop passes a phase's input bases through unchanged when no
// invocation succeeds; here, when a non-gate phase drains with zero
// successes, its input bases are re-seeded into the next applicable phase.
// Gate phases (DriverEntry, Initialize) keep their stronger semantics: no
// success means the rest of the workload is not exercised.

// phaseSpec describes one workload phase to the pipelined explorer.
type phaseSpec struct {
	name string
	// gate phases stop the workload when they produce no success.
	gate bool
	// applicable reports whether this phase applies to a base state (the
	// entry point is registered / a DPC is pending).
	applicable func(e *Engine, base *vm.State) bool
	// invoke forks base into this phase's invocation state(s) — including
	// the interrupt-at-entry sibling where the barriered phase loop makes
	// one — tagging each with the phase index. It does not push them.
	invoke func(e *Engine, base *vm.State, phase int) []*vm.State
}

// stdPhase builds the standard phase shape shared by every entry point:
// fork the base, prep, invoke with args, plus the symbolic-interrupt
// sibling when an ISR is registered (mirroring Engine.phase).
func stdPhase(name string, gate bool, pcOf func(*kernel.KState) uint32,
	argsOf func(*Engine, *vm.State) []*expr.Expr, prep func(*vm.State)) phaseSpec {

	mk := func(e *Engine, base *vm.State, phase int, pc uint32) *vm.State {
		st := e.M.ForkState(base)
		st.Phase = phase
		if prep != nil {
			prep(st)
		}
		var args []*expr.Expr
		if argsOf != nil {
			args = argsOf(e, st)
		}
		e.K.InvokeSym(st, name, pc, args...)
		return st
	}
	return phaseSpec{
		name: name,
		gate: gate,
		applicable: func(e *Engine, base *vm.State) bool {
			return pcOf(kernel.Of(base)) != 0
		},
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			pc := pcOf(kernel.Of(base))
			if pc == 0 {
				return nil
			}
			st := mk(e, base, phase, pc)
			out := []*vm.State{st}
			if e.Opts.SymbolicInterrupts && kernel.Of(st).ISRRegistered && name != "ISR" {
				alt := mk(e, base, phase, pc)
				if alt.Meta == nil {
					alt.Meta = make(map[string]uint64)
				}
				alt.Meta[metaIntrCount] = 1
				alt.Meta[metaInjectISR] = 1
				out = append(out, alt)
			}
			return out
		},
	}
}

// dpcPhase drains one pending timer/DPC callback at DISPATCH_LEVEL
// (mirroring Engine.drainDPCs; no interrupt sibling there either).
func dpcPhase() phaseSpec {
	return phaseSpec{
		name: "DPC",
		applicable: func(e *Engine, base *vm.State) bool {
			return len(kernel.Of(base).PendingDPCs) > 0
		},
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			ks := kernel.Of(base)
			if len(ks.PendingDPCs) == 0 {
				return nil
			}
			dpc := ks.PendingDPCs[0]
			st := e.M.ForkState(base)
			st.Phase = phase
			sks := kernel.Of(st)
			sks.PendingDPCs = sks.PendingDPCs[1:]
			sks.IRQL = kernel.DispatchLevel
			sks.InDpc = true
			e.K.InvokeSym(st, "DPC:"+dpc.Label, dpc.FuncPC, expr.Const(dpc.Ctx))
			return []*vm.State{st}
		},
	}
}

// isrPhase delivers a direct device interrupt while otherwise idle.
func isrPhase() phaseSpec {
	return stdPhase("ISR", false,
		func(ks *kernel.KState) uint32 {
			if ks.ISRRegistered {
				return ks.ISRPC
			}
			return 0
		},
		func(e *Engine, s *vm.State) []*expr.Expr {
			return []*expr.Expr{expr.Const(adapterHandle)}
		},
		func(s *vm.State) { kernel.Of(s).IRQL = kernel.DeviceLevel })
}

// phasePlan reifies the driver class's workload as an ordered phase list.
// Phase 0 is always DriverEntry.
//
// This is deliberately a second expression of the workload in workload.go
// (networkWorkload/audioWorkload): the barriered loop's exact push order
// is pinned bit-for-bit by the sequential golden values, and its DPC drain
// mixes pass-through bases with DPC successes in a way a phase-level loop
// expresses but a per-base pipeline handles structurally — so neither side
// can consume the other's form without changing pinned semantics. The two
// MUST be kept in sync: a phase added, reordered, or re-argumented in one
// file must change the other, and TestPipelinedFindsSameBugs is the tripwire.
func (e *Engine) phasePlan() []phaseSpec {
	plan := []phaseSpec{{
		name: "DriverEntry",
		gate: true,
		applicable: func(*Engine, *vm.State) bool { return true },
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			st := e.M.ForkState(base)
			st.Phase = phase
			e.K.Invoke(st, "DriverEntry", e.Img.Entry)
			return []*vm.State{st}
		},
	}}

	handleArg := func(*Engine, *vm.State) []*expr.Expr {
		return []*expr.Expr{expr.Const(adapterHandle)}
	}

	switch e.Img.Device.Class {
	case binimg.ClassNetwork:
		mp := func(ks *kernel.KState) *kernel.MiniportChars {
			if ks.Miniport == nil {
				return &kernel.MiniportChars{}
			}
			return ks.Miniport
		}
		infoArgs := func(concreteOID uint32) func(*Engine, *vm.State) []*expr.Expr {
			return func(e *Engine, s *vm.State) []*expr.Expr {
				var oid *expr.Expr
				if e.Opts.Annotations {
					oid = e.K.FreshSymbol(s, "oid", expr.OriginArgument)
				} else {
					oid = expr.Const(concreteOID)
				}
				buf := e.makeInfoBuffer(s)
				return []*expr.Expr{expr.Const(adapterHandle), oid, expr.Const(buf), expr.Const(64)}
			}
		}
		plan = append(plan,
			stdPhase("Initialize", true,
				func(ks *kernel.KState) uint32 { return mp(ks).InitializePC },
				handleArg, nil),
			stdPhase("Send", false,
				func(ks *kernel.KState) uint32 { return mp(ks).SendPC },
				func(e *Engine, s *vm.State) []*expr.Expr {
					pkt := e.makeSymbolicPacket(s)
					return []*expr.Expr{expr.Const(adapterHandle), expr.Const(pkt)}
				}, nil),
			stdPhase("QueryInformation", false,
				func(ks *kernel.KState) uint32 { return mp(ks).QueryInfoPC },
				infoArgs(kernel.OIDGenSupportedList), nil),
			stdPhase("SetInformation", false,
				func(ks *kernel.KState) uint32 { return mp(ks).SetInfoPC },
				infoArgs(kernel.OIDGenCurrentPacketFil), nil),
			isrPhase(),
			dpcPhase(),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return mp(ks).HaltPC },
				handleArg, nil),
		)
	case binimg.ClassAudio:
		au := func(ks *kernel.KState) *kernel.AudioChars {
			if ks.Audio == nil {
				return &kernel.AudioChars{}
			}
			return ks.Audio
		}
		plan = append(plan,
			stdPhase("Initialize", true,
				func(ks *kernel.KState) uint32 { return au(ks).InitializePC },
				handleArg, nil),
			stdPhase("Play", false,
				func(ks *kernel.KState) uint32 { return au(ks).PlayPC },
				func(e *Engine, s *vm.State) []*expr.Expr {
					buf := e.makeAudioBuffer(s)
					return []*expr.Expr{expr.Const(adapterHandle), expr.Const(buf), expr.Const(256)}
				}, nil),
			isrPhase(),
			dpcPhase(),
			stdPhase("Stop", false,
				func(ks *kernel.KState) uint32 { return au(ks).StopPC },
				handleArg, nil),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return au(ks).HaltPC },
				handleArg, nil),
		)
	}
	return plan
}

// pipeSeed is one phase-transition work item: invoke base into phase.
type pipeSeed struct {
	base  *vm.State
	phase int
}

// pipeLedger is one phase's budget ledger and occupancy accounting, all
// guarded by pipeRun.mu.
type pipeLedger struct {
	spec phaseSpec

	seedsIn      int // bases invoked (or queued to be invoked) into this phase
	pendingSeeds int // seeds waiting in the workq
	expanding    int // seeds currently being expanded into invocation states
	queued       int // states waiting in the frontier
	inflight     int // states currently being stepped
	exited       int // completed paths (per-phase MaxPathsPerEntry budget)
	succeeded    int // paths that exited with StatusSuccess
	promoted     int // successes seeded onward (per-phase KeepStates budget)
	peakInFlight int
	peakQueued   int

	// bases are this phase's input states, kept for the zero-success
	// fallback (bounded: promotions into a phase are KeepStates-capped).
	bases []*vm.State
	done  bool
}

// activity counts everything that can still produce work for this phase.
func (l *pipeLedger) activity() int {
	return l.pendingSeeds + l.expanding + l.queued + l.inflight
}

// pipeRun coordinates the persistent worker pool of one pipelined session.
type pipeRun struct {
	e       *Engine
	mu      sync.Mutex
	cond    *sync.Cond
	phases  []*pipeLedger
	seeds   *workq.Queue[pipeSeed]
	stopped bool
}

// testDriverPipelined is TestDriver without phase barriers: one persistent
// worker pool over the phase-aware frontier, from DriverEntry to Halt.
func (e *Engine) testDriverPipelined() (*Report, error) {
	if e.Opts.Heuristic == nil {
		// Phase-weighted pick over the mixed-phase frontier.
		e.Sched.SetHeuristic(exerciser.NewPhaseMinBlockCount(e.Sched.Counts()))
	}
	p := &pipeRun{e: e, seeds: workq.New[pipeSeed](e.Opts.Workers)}
	p.cond = sync.NewCond(&p.mu)
	for _, sp := range e.phasePlan() {
		p.phases = append(p.phases, &pipeLedger{spec: sp})
	}
	e.pipe = p

	boot := e.NewBootState()
	p.mu.Lock()
	p.enqueueSeed(0, boot, 0)
	p.mu.Unlock()

	var wg sync.WaitGroup
	perWorker := make([]int, e.Opts.Workers)
	for w := 0; w < e.Opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := e.M.NewContext(solver.NewWithCache(e.cache))
			p.worker(w, ctx, &perWorker[w])
			e.mu.Lock()
			e.workerQueries += ctx.Solver.Stats.Queries
			e.mu.Unlock()
		}(w)
	}
	wg.Wait()
	e.pipe = nil
	dbgPhases.workerPaths(perWorker)

	// A StopAtFirstBug stop can leave frontier states behind; abandon them
	// exactly as the barriered engine abandons an over-budget frontier.
	for {
		st := e.Sched.Pop()
		if st == nil {
			break
		}
		st.Status = vm.StatusKilled
	}

	e.mu.Lock()
	for _, l := range p.phases {
		e.phaseStats = append(e.phaseStats, PhaseStat{
			Name:         l.spec.name,
			Exited:       l.exited,
			Succeeded:    l.succeeded,
			Promoted:     l.promoted,
			SeedsIn:      l.seedsIn,
			PeakInFlight: l.peakInFlight,
			PeakQueued:   l.peakQueued,
		})
	}
	e.mu.Unlock()
	return e.Report(), nil
}

// worker is one pool member's loop: seeds first (they create work and are
// shard-local), then frontier states, until the run drains or stops.
func (p *pipeRun) worker(w int, ctx *vm.ExecContext, retired *int) {
	for {
		seed, st := p.next(w)
		switch {
		case seed != nil:
			// Fork + invoke outside the coordinator lock; only the push and
			// ledger update re-enter it.
			states := p.phases[seed.phase].spec.invoke(p.e, seed.base, seed.phase)
			p.seedExpanded(w, seed.phase, states)
		case st != nil:
			var res PhaseResult
			p.e.runPath(ctx, st, p.phases[st.Phase].spec.name, &res)
			*retired++
			p.pathDone(w, st, &res)
		default:
			return
		}
	}
}

// next hands the worker its next work item: a seed to expand, a frontier
// state to run, or (nil, nil) when the session is over. Blocks while other
// workers may still produce work.
func (p *pipeRun) next(w int) (*pipeSeed, *vm.State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return nil, nil
		}
		if p.e.Opts.StopAtFirstBug && p.e.bugCount() > 0 {
			p.stop()
			return nil, nil
		}
		if s, ok := p.seeds.Pop(w); ok {
			l := p.phases[s.phase]
			l.pendingSeeds--
			l.expanding++
			return &s, nil
		}
		for {
			st := p.e.Sched.Pop()
			if st == nil {
				break
			}
			l := p.phases[st.Phase]
			l.queued--
			if l.exited >= p.e.Opts.MaxPathsPerEntry {
				// Per-(entry, phase) path budget exhausted: abandon the rest
				// of this phase's frontier (coverage loss, never
				// unsoundness) — the barriered engine's post-Explore kill.
				st.Status = vm.StatusKilled
				continue
			}
			l.inflight++
			if l.inflight > l.peakInFlight {
				l.peakInFlight = l.inflight
			}
			return nil, st
		}
		if p.totalActivity() == 0 {
			p.reap(w)
			if p.allDone() {
				p.stop()
				return nil, nil
			}
			// reap fired a fallback: new seeds exist, grab one.
			continue
		}
		p.cond.Wait()
	}
}

// stop ends the run and releases every blocked worker. Caller holds mu.
func (p *pipeRun) stop() {
	p.stopped = true
	p.cond.Broadcast()
}

// totalActivity sums the live work across phases. Caller holds mu.
func (p *pipeRun) totalActivity() int {
	n := 0
	for _, l := range p.phases {
		n += l.activity()
	}
	return n
}

// allDone reports whether every phase has drained. Caller holds mu.
func (p *pipeRun) allDone() bool {
	for _, l := range p.phases {
		if !l.done {
			return false
		}
	}
	return true
}

// enqueueSeed queues "invoke base into phase" on the worker's own workq
// shard and records base as a fallback input of that phase. Caller holds mu.
func (p *pipeRun) enqueueSeed(w int, base *vm.State, phase int) {
	l := p.phases[phase]
	l.seedsIn++
	l.pendingSeeds++
	l.bases = append(l.bases, base)
	if h := p.e.testOnSeed; h != nil {
		h(base, phase)
	}
	p.seeds.Push(w, pipeSeed{base: base, phase: phase})
	p.cond.Broadcast()
}

// seedOnward promotes base past fromPhase into the next phase that applies
// to it, if any. Non-applicable phases are skipped — except gates: a gate
// phase that does not apply (e.g. a network driver that never registered
// an Initialize handler) ends the workload for this base, exactly as the
// barriered loop's "!initialized" early return refuses to exercise the
// data path on an uninitialized adapter. Caller holds mu.
func (p *pipeRun) seedOnward(w int, base *vm.State, fromPhase int) {
	for j := fromPhase + 1; j < len(p.phases); j++ {
		if p.phases[j].spec.applicable(p.e, base) {
			p.enqueueSeed(w, base, j)
			return
		}
		if p.phases[j].spec.gate {
			return
		}
	}
}

// seedExpanded pushes a seed's invocation states into the frontier and
// retires the expansion.
func (p *pipeRun) seedExpanded(w, phase int, states []*vm.State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.phases[phase]
	l.expanding--
	for _, st := range states {
		if p.e.Sched.Push(st) {
			l.queued++
			if l.queued > l.peakQueued {
				l.peakQueued = l.queued
			}
		}
	}
	p.reap(w)
	p.cond.Broadcast()
}

// pushForked accounts a mid-path fork landing in the frontier (called via
// Engine.pushState from a worker's runPath).
func (p *pipeRun) pushForked(n *vm.State) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.e.Sched.Push(n) {
		l := p.phases[n.Phase]
		l.queued++
		if l.queued > l.peakQueued {
			l.peakQueued = l.queued
		}
	}
	p.cond.Broadcast()
}

// pathDone retires one explored path: budget accounting, promotion of a
// success into the next phase (KeepStates-capped, on the completing
// worker's shard), and the drain cascade.
func (p *pipeRun) pathDone(w int, st *vm.State, res *PhaseResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.phases[st.Phase]
	l.inflight--
	l.exited += res.Exited
	// The completed state is the tail of runPath's depth-first descent —
	// a fork descendant of st in the same phase — not necessarily st.
	done := st
	success := len(res.Succeeded) > 0
	if success {
		done = res.Succeeded[0]
		l.succeeded++
	}
	if h := p.e.testOnPathDone; h != nil {
		h(done, st.Phase, success)
	}
	if success && l.promoted < p.e.Opts.KeepStates {
		l.promoted++
		// Promoted bases must not leak DPC/IRQL context into the next
		// phase (the barriered loop normalizes carried states the same way).
		ks := kernel.Of(done)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
		p.seedOnward(w, done, st.Phase)
	}
	p.reap(w)
	p.cond.Broadcast()
}

// reap advances the drain cascade: phases complete strictly in order
// (promotion only flows forward), so walk from the front and mark every
// already-done-prefixed phase with no remaining activity as done. A
// non-gate phase that drains with zero successes passes its input bases
// through to the next applicable phase — the barriered loop's fallback.
// Caller holds mu.
func (p *pipeRun) reap(w int) {
	for i, l := range p.phases {
		if l.done {
			continue
		}
		if l.activity() > 0 {
			// Not drained; later phases can still be seeded by this one.
			return
		}
		l.done = true
		dbgPhases.printf("pipeline phase %-20s drained: exited=%-4d succ=%-3d promoted=%d\n",
			l.spec.name, l.exited, l.succeeded, l.promoted)
		dbgPhases.gauges("pipeline", p.gaugeRows())
		if !l.spec.gate && l.seedsIn > 0 && l.succeeded == 0 {
			for _, b := range l.bases {
				p.seedOnward(w, b, i)
			}
		}
		// Gate with zero successes: nothing seeds onward; the remaining
		// phases drain empty through this same cascade.
	}
}

// gaugeRows snapshots the per-phase occupancy for the debug reporter.
// Caller holds mu.
func (p *pipeRun) gaugeRows() []phaseGauge {
	rows := make([]phaseGauge, 0, len(p.phases))
	for _, l := range p.phases {
		rows = append(rows, phaseGauge{
			Name:     l.spec.name,
			Queued:   l.queued + l.pendingSeeds,
			InFlight: l.inflight + l.expanding,
			Exited:   l.exited,
		})
	}
	return rows
}
