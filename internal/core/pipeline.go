package core

import (
	"context"

	"repro/internal/binimg"
	"repro/internal/campaign"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
	"repro/internal/workq"
)

// The pipelined explorer dissolves the workload phase barriers. The
// barriered engine (TestDriver's default path) drains EVERY phase-k path
// before ANY phase-k+1 path starts, so workers idle while the slowest
// Initialize path finishes. Nothing in the paper requires that global
// ordering — only that each individual path respects the phase order — so
// here one persistent worker pool runs over a phase-aware frontier: a path
// that completes phase k immediately seeds its successor invocation into
// phase k+1 (capped at KeepStates promotions per phase), and the scheduler
// weights earlier phases so spare workers pick up later-phase work exactly
// where the barrier used to stall.
//
// The moving parts:
//
//   - phaseSpec reifies the workload (workload.go's imperative phase chain)
//     as data: per phase, an applicability test and an invocation builder.
//   - pipeSeed is a phase-transition work item ("invoke base into phase j"),
//     carried by a workq.Queue — the engine-side consumer the workq package
//     was generalized for: promotions land on the completing worker's own
//     shard (locality), idle workers steal.
//   - pipeLedger is the per-(entry, phase) campaign.Ledger replacing the
//     barriered engine's per-Explore bounds: exited paths are budgeted per
//     phase (MaxPathsPerEntry each), promotions per phase (KeepStates).
//   - pipeRun is the campaign.Frontier policy: workers prefer seeds, then
//     frontier states; the campaign.Runner owns the pool, and the run ends
//     when every phase has drained.
//
// Per-path soundness is unchanged: a state only ever reaches phase k+1 by
// being forked from a base that completed an earlier phase successfully
// (promotion), or by the fallback below. Zero-success fallback: the
// barriered loop passes a phase's input bases through unchanged when no
// invocation succeeds; here, when a non-gate phase drains with zero
// successes, its input bases are re-seeded into the next applicable phase.
// Gate phases (DriverEntry, Initialize) keep their stronger semantics: no
// success means the rest of the workload is not exercised.

// phaseSpec describes one workload phase to both graph walkers (the
// barriered runGraph and the pipelined explorer).
type phaseSpec struct {
	name string
	// gate phases stop the workload when they produce no success.
	gate bool
	// applicable reports whether this phase applies to a base state (the
	// entry point is registered / a DPC is pending).
	applicable func(e *Engine, base *vm.State) bool
	// invoke forks base into this phase's invocation state(s) — including
	// the interrupt-at-entry sibling where the barriered phase loop makes
	// one — tagging each with the phase index. It does not push them.
	invoke func(e *Engine, base *vm.State, phase int) []*vm.State
	// succs are this phase's outgoing scenario-graph edges. nil means
	// linear fallthrough to the next phase in the plan — the shape every
	// pre-graph plan keeps, bit-identically. Edges must point forward
	// (edge.to > this phase's index) so plan order stays a topological
	// order for both walkers.
	succs []phaseEdge
	// drain marks the DPC fixpoint node: a success that still has pending
	// DPCs re-enters this phase instead of moving on.
	drain bool
}

// phaseEdge is one outgoing scenario-graph edge. A nil when matches every
// state; predicates route alternatives (e.g. RemoveDevice only after a
// surprise removal).
type phaseEdge struct {
	to   int
	when func(*Engine, *vm.State) bool
}

// stdPhase builds the standard phase shape shared by every entry point:
// fork the base, prep, invoke with args, plus the symbolic-interrupt
// sibling when an ISR is registered (mirroring Engine.phase).
func stdPhase(name string, gate bool, pcOf func(*kernel.KState) uint32,
	argsOf func(*Engine, *vm.State) []*expr.Expr, prep func(*vm.State)) phaseSpec {

	mk := func(e *Engine, base *vm.State, phase int, pc uint32) *vm.State {
		st := e.M.ForkState(base)
		st.Phase = phase
		if prep != nil {
			prep(st)
		}
		var args []*expr.Expr
		if argsOf != nil {
			args = argsOf(e, st)
		}
		e.K.InvokeSym(st, name, pc, args...)
		return st
	}
	return phaseSpec{
		name: name,
		gate: gate,
		applicable: func(e *Engine, base *vm.State) bool {
			return pcOf(kernel.Of(base)) != 0
		},
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			pc := pcOf(kernel.Of(base))
			if pc == 0 {
				return nil
			}
			st := mk(e, base, phase, pc)
			out := []*vm.State{st}
			if e.Opts.SymbolicInterrupts && kernel.Of(st).ISRRegistered && name != "ISR" && e.intrBudgetLeft(base) {
				alt := mk(e, base, phase, pc)
				chargeIntr(alt)
				out = append(out, alt)
			}
			return out
		},
	}
}

// dpcPhase dispatches one pending timer/DPC callback at DISPATCH_LEVEL
// (mirroring Engine.drainDPCs; no interrupt sibling there either). The
// drain flag makes successes with a non-empty DPC queue re-enter this
// phase — the pipelined form of the barriered fixpoint drain.
func dpcPhase() phaseSpec {
	return phaseSpec{
		name:  "DPC",
		drain: true,
		applicable: func(e *Engine, base *vm.State) bool {
			return len(kernel.Of(base).PendingDPCs) > 0
		},
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			if len(kernel.Of(base).PendingDPCs) == 0 {
				return nil
			}
			st := e.M.ForkState(base)
			st.Phase = phase
			sks := kernel.Of(st)
			dpc := sks.TakeDPC()
			sks.IRQL = kernel.DispatchLevel
			sks.InDpc = true
			e.K.InvokeSym(st, "DPC:"+dpc.Label, dpc.FuncPC, expr.Const(dpc.Ctx))
			return []*vm.State{st}
		},
	}
}

// isrPhase delivers a direct device interrupt while otherwise idle.
func isrPhase() phaseSpec {
	return stdPhase("ISR", false,
		func(ks *kernel.KState) uint32 {
			if ks.ISRRegistered {
				return ks.ISRPC
			}
			return 0
		},
		func(e *Engine, s *vm.State) []*expr.Expr {
			return []*expr.Expr{expr.Const(adapterHandle)}
		},
		func(s *vm.State) { kernel.Of(s).IRQL = kernel.DeviceLevel })
}

// phasePlan reifies the driver class's workload as an ordered phase list.
// Phase 0 is always DriverEntry.
//
// This is deliberately a second expression of the workload in workload.go
// (networkWorkload/audioWorkload): the barriered loop's exact push order
// is pinned bit-for-bit by the sequential golden values, and its DPC drain
// mixes pass-through bases with DPC successes in a way a phase-level loop
// expresses but a per-base pipeline handles structurally — so neither side
// can consume the other's form without changing pinned semantics. The two
// MUST be kept in sync: a phase added, reordered, or re-argumented in one
// file must change the other, and TestPipelinedFindsSameBugs is the tripwire.
func (e *Engine) phasePlan() []phaseSpec {
	plan := []phaseSpec{{
		name:       "DriverEntry",
		gate:       true,
		applicable: func(*Engine, *vm.State) bool { return true },
		invoke: func(e *Engine, base *vm.State, phase int) []*vm.State {
			st := e.M.ForkState(base)
			st.Phase = phase
			e.K.Invoke(st, "DriverEntry", e.Img.Entry)
			return []*vm.State{st}
		},
	}}

	handleArg := func(*Engine, *vm.State) []*expr.Expr {
		return []*expr.Expr{expr.Const(adapterHandle)}
	}

	switch e.Img.Device.Class {
	case binimg.ClassNetwork:
		mp := func(ks *kernel.KState) *kernel.MiniportChars {
			if ks.Miniport == nil {
				return &kernel.MiniportChars{}
			}
			return ks.Miniport
		}
		infoArgs := func(concreteOID uint32) func(*Engine, *vm.State) []*expr.Expr {
			return func(e *Engine, s *vm.State) []*expr.Expr {
				var oid *expr.Expr
				if e.Opts.Annotations {
					oid = e.K.FreshSymbol(s, "oid", expr.OriginArgument)
				} else {
					oid = expr.Const(concreteOID)
				}
				buf := e.makeInfoBuffer(s)
				return []*expr.Expr{expr.Const(adapterHandle), oid, expr.Const(buf), expr.Const(64)}
			}
		}
		plan = append(plan,
			stdPhase("Initialize", true,
				func(ks *kernel.KState) uint32 { return mp(ks).InitializePC },
				handleArg, nil),
			stdPhase("Send", false,
				func(ks *kernel.KState) uint32 { return mp(ks).SendPC },
				func(e *Engine, s *vm.State) []*expr.Expr {
					pkt := e.makeSymbolicPacket(s)
					return []*expr.Expr{expr.Const(adapterHandle), expr.Const(pkt)}
				}, nil),
			stdPhase("QueryInformation", false,
				func(ks *kernel.KState) uint32 { return mp(ks).QueryInfoPC },
				infoArgs(kernel.OIDGenSupportedList), nil),
			stdPhase("SetInformation", false,
				func(ks *kernel.KState) uint32 { return mp(ks).SetInfoPC },
				infoArgs(kernel.OIDGenCurrentPacketFil), nil),
			isrPhase(),
			dpcPhase(),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return mp(ks).HaltPC },
				handleArg, nil),
		)
	case binimg.ClassAudio:
		au := func(ks *kernel.KState) *kernel.AudioChars {
			if ks.Audio == nil {
				return &kernel.AudioChars{}
			}
			return ks.Audio
		}
		plan = append(plan,
			stdPhase("Initialize", true,
				func(ks *kernel.KState) uint32 { return au(ks).InitializePC },
				handleArg, nil),
			stdPhase("Play", false,
				func(ks *kernel.KState) uint32 { return au(ks).PlayPC },
				func(e *Engine, s *vm.State) []*expr.Expr {
					buf := e.makeAudioBuffer(s)
					return []*expr.Expr{expr.Const(adapterHandle), expr.Const(buf), expr.Const(256)}
				}, nil),
			isrPhase(),
			dpcPhase(),
			stdPhase("Stop", false,
				func(ks *kernel.KState) uint32 { return au(ks).StopPC },
				handleArg, nil),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return au(ks).HaltPC },
				handleArg, nil),
		)
	case binimg.ClassStorage:
		plan = append(plan, e.storagePhases(handleArg)...)
	}
	return plan
}

// scenarioKind selects the workload scenario: an explicit Options.Scenario
// wins; otherwise storage-class drivers default to the PnP/power scenario
// graph and every other class to its linear plan (which "pnp" does not
// change either — only storage defines PnP/power phases today).
func (e *Engine) scenarioKind() string {
	if e.Opts.Scenario != "" {
		return e.Opts.Scenario
	}
	if e.Img.Device.Class == binimg.ClassStorage {
		return ScenarioPnP
	}
	return ScenarioLinear
}

// storagePhases builds the storage-class workload. Under ScenarioLinear it
// is the familiar straight line (Initialize, Read, Write, ISR, DPC, Halt).
// Under ScenarioPnP it is a scenario graph layering the PnP/power
// alternatives of a real OS onto that data path:
//
//	0 DriverEntry ─ 1 Initialize ─ 2 Read ─ 3 Write ─ 4 ISR ─┬─ 5 CancelIo ──────────┐
//	                                                         ├─ 6 Suspend ─ 7 Resume ┤
//	                                                         └─ 8 SurpriseRemoval ───┤
//	                                                  ┌──────────────────────────────┘
//	                                                  9 DPC ─┬─(removed)─ 10 RemoveDevice ─ 11 Halt
//	                                                         └─(else)──────────────────────── Halt
//
// CancelIo's interrupt-at-entry sibling is the IRP-cancellation-vs-ISR
// race; SurpriseRemoval flips the device to removed (all further hardware
// reads return all-ones) BEFORE invoking the PnP handler, exactly as a
// yanked card behaves; the DPC drain after each alternative is where
// completion callbacks touch whatever the alternative left behind.
func (e *Engine) storagePhases(handleArg func(*Engine, *vm.State) []*expr.Expr) []phaseSpec {
	sc := func(ks *kernel.KState) *kernel.StorageChars {
		if ks.Storage == nil {
			return &kernel.StorageChars{}
		}
		return ks.Storage
	}
	blockArgs := func(e *Engine, s *vm.State) []*expr.Expr {
		buf := e.makeStorageBuffer(s)
		return []*expr.Expr{expr.Const(adapterHandle), expr.Const(buf), expr.Const(0x80)}
	}
	pnpArgs := func(minor uint32) func(*Engine, *vm.State) []*expr.Expr {
		return func(e *Engine, s *vm.State) []*expr.Expr {
			return []*expr.Expr{expr.Const(adapterHandle), expr.Const(minor)}
		}
	}
	powerArgs := func(state uint32) func(*Engine, *vm.State) []*expr.Expr {
		return func(e *Engine, s *vm.State) []*expr.Expr {
			return []*expr.Expr{expr.Const(adapterHandle), expr.Const(kernel.IrpMnSetPower), expr.Const(state)}
		}
	}

	phases := []phaseSpec{
		stdPhase("Initialize", true,
			func(ks *kernel.KState) uint32 { return sc(ks).InitializePC },
			handleArg, nil),
		stdPhase("Read", false,
			func(ks *kernel.KState) uint32 { return sc(ks).ReadPC },
			blockArgs, nil),
		stdPhase("Write", false,
			func(ks *kernel.KState) uint32 { return sc(ks).WritePC },
			blockArgs, nil),
		isrPhase(),
	}
	if e.scenarioKind() != ScenarioPnP {
		return append(phases,
			dpcPhase(),
			stdPhase("Halt", false,
				func(ks *kernel.KState) uint32 { return sc(ks).HaltPC },
				handleArg, nil),
		)
	}
	phases = append(phases,
		stdPhase("CancelIo", false, // 5
			func(ks *kernel.KState) uint32 { return sc(ks).CancelPC },
			handleArg, nil),
		stdPhase("Suspend", false, // 6
			func(ks *kernel.KState) uint32 { return sc(ks).PowerPC },
			powerArgs(kernel.PowerDeviceD3), nil),
		stdPhase("Resume", false, // 7
			func(ks *kernel.KState) uint32 { return sc(ks).PowerPC },
			powerArgs(kernel.PowerDeviceD0), nil),
		stdPhase("SurpriseRemoval", false, // 8
			func(ks *kernel.KState) uint32 { return sc(ks).PnpPC },
			pnpArgs(kernel.IrpMnSurpriseRemoval),
			func(s *vm.State) {
				// The card is gone before the driver hears about it.
				hw.Of(s).Removed = true
				kernel.Of(s).Removed = true
			}),
		dpcPhase(), // 9
		stdPhase("RemoveDevice", false, // 10
			func(ks *kernel.KState) uint32 { return sc(ks).PnpPC },
			pnpArgs(kernel.IrpMnRemoveDevice), nil),
		stdPhase("Halt", false, // 11
			func(ks *kernel.KState) uint32 { return sc(ks).HaltPC },
			handleArg, nil),
	)
	removed := func(e *Engine, s *vm.State) bool { return kernel.Of(s).Removed }
	notRemoved := func(e *Engine, s *vm.State) bool { return !kernel.Of(s).Removed }
	// Indices below are plan indices (this slice is appended after the
	// DriverEntry phase 0, so slice index k is plan index k+1).
	phases[3].succs = []phaseEdge{{to: 5}, {to: 6}, {to: 8}} // ISR → alternatives
	phases[4].succs = []phaseEdge{{to: 9}}                   // CancelIo → DPC
	phases[5].succs = []phaseEdge{{to: 7}}                   // Suspend → Resume
	phases[6].succs = []phaseEdge{{to: 9}}                   // Resume → DPC
	phases[7].succs = []phaseEdge{{to: 9}}                   // SurpriseRemoval → DPC
	phases[8].succs = []phaseEdge{{to: 10, when: removed}, {to: 11, when: notRemoved}}
	phases[9].succs = []phaseEdge{{to: 11}} // RemoveDevice → Halt
	return phases
}

// phaseRanks computes each phase's scheduling rank — its longest-path
// depth from DriverEntry. Edges only point forward, so one in-order sweep
// relaxes every edge after its source is final. On a linear plan ranks
// equal plan indices.
func phaseRanks(plan []phaseSpec) []int {
	ranks := make([]int, len(plan))
	for i, sp := range plan {
		if sp.succs == nil {
			if i+1 < len(plan) && ranks[i+1] < ranks[i]+1 {
				ranks[i+1] = ranks[i] + 1
			}
			continue
		}
		for _, edge := range sp.succs {
			if ranks[edge.to] < ranks[i]+1 {
				ranks[edge.to] = ranks[i] + 1
			}
		}
	}
	return ranks
}

// pipeSeed is one phase-transition work item: invoke base into phase.
type pipeSeed struct {
	base  *vm.State
	phase int
}

// pipeLedger is one phase's campaign budget ledger plus the pipeline's own
// phase bookkeeping, all guarded by the runner's coordinator lock.
type pipeLedger struct {
	campaign.Ledger
	spec phaseSpec

	// bases are this phase's input states, kept for the zero-success
	// fallback (bounded: promotions into a phase are KeepStates-capped).
	bases []*vm.State

	// Drained counts drain-phase re-entries (successes that still held
	// pending DPCs and were re-seeded into this same phase); bounded
	// separately from Promoted so the fixpoint never starves promotion.
	Drained int

	// PromotedDPC counts extra promotions granted to successes that carry
	// pending DPCs after the ordinary Promoted quota is spent. The
	// barriered loop SORTS a phase's successes by pending-DPC count before
	// capping at KeepStates, guaranteeing DPC-carrying states survive into
	// the drain; the pipelined explorer promotes in completion order and
	// would otherwise spend its whole quota on DPC-less fast paths and
	// never seed the drain phase at all.
	PromotedDPC int
}

// pipeItem is one unit of pipelined work: either a seed to expand or a
// frontier state to run. The executor fills the output half (out / res)
// and Retire folds it into the ledgers.
type pipeItem struct {
	seed *pipeSeed
	st   *vm.State

	out []*vm.State // invocation states produced by a seed expansion
	res PhaseResult // path result produced by running st
}

// pipeRun is the pipelined explorer's campaign.Frontier: the phase-aware
// work-selection policy over one campaign.Runner-owned worker pool.
type pipeRun struct {
	e       *Engine
	r       *campaign.Runner[*pipeItem]
	phases  []*pipeLedger
	ledgers []*campaign.Ledger // the campaign view of phases, same order
	seeds   *workq.Queue[pipeSeed]
	ectxs   []*vm.ExecContext
	// perPaths counts retired paths per worker (seeds excluded) for the
	// debug reporter; slot w is only touched by worker w.
	perPaths []int
}

// testDriverPipelined is TestDriver without phase barriers: one persistent
// campaign.Runner pool over the phase-aware frontier, from DriverEntry to
// Halt.
func (e *Engine) testDriverPipelined(ctx context.Context) (*Report, error) {
	plan := e.phasePlan()
	if e.Opts.Heuristic == nil {
		// Phase-weighted pick over the mixed-phase frontier. Scenario
		// graphs weight by depth rank, not list position: alternative
		// branches at equal depth compete fairly (on a linear plan ranks
		// equal indices, so this is the original phase-weighted pick).
		e.Sched.SetHeuristic(exerciser.NewPhaseRankMinBlockCount(e.Sched.Counts(), phaseRanks(plan)))
	}
	p := &pipeRun{e: e, seeds: workq.New[pipeSeed](e.Opts.Workers)}
	for _, sp := range plan {
		l := &pipeLedger{spec: sp}
		l.Name = sp.name
		p.phases = append(p.phases, l)
		p.ledgers = append(p.ledgers, &l.Ledger)
	}
	p.ectxs = make([]*vm.ExecContext, e.Opts.Workers)
	for w := range p.ectxs {
		p.ectxs[w] = e.M.NewContext(solver.NewWithCache(e.cache))
	}
	p.perPaths = make([]int, e.Opts.Workers)
	p.r = campaign.NewRunner[*pipeItem](
		campaign.Options{Workers: e.Opts.Workers, StopAtFirstBug: e.Opts.StopAtFirstBug},
		p, p.exec)
	p.r.BindFindings(e.findings)
	e.pipe = p

	p.enqueueSeed(0, e.NewBootState(), 0)
	p.r.Run(ctx)
	e.pipe = nil

	e.mu.Lock()
	for _, c := range p.ectxs {
		e.workerQueries += c.Solver.Stats.Queries
	}
	e.mu.Unlock()
	dbgPhases.workerPaths(p.perPaths)

	// A StopAtFirstBug (or canceled) stop can leave frontier states behind;
	// abandon them exactly as the barriered engine abandons an over-budget
	// frontier.
	for {
		st := e.Sched.Pop()
		if st == nil {
			break
		}
		st.Status = vm.StatusKilled
	}

	e.mu.Lock()
	for _, l := range p.phases {
		e.phaseStats = append(e.phaseStats, PhaseStat{
			Name:         l.spec.name,
			Exited:       l.Exited,
			Succeeded:    l.Succeeded,
			Promoted:     l.Promoted,
			SeedsIn:      l.SeedsIn,
			PeakInFlight: l.PeakInFlight,
			PeakQueued:   l.PeakQueued,
		})
	}
	e.mu.Unlock()
	return e.Report(), nil
}

// exec runs one work item outside the coordinator lock: expand a seed into
// its invocation states, or step a frontier state to completion.
func (p *pipeRun) exec(w int, it *pipeItem) {
	switch {
	case it.seed != nil:
		it.out = p.phases[it.seed.phase].spec.invoke(p.e, it.seed.base, it.seed.phase)
	case it.st != nil:
		p.e.runPath(p.ectxs[w], it.st, p.phases[it.st.Phase].spec.name, &it.res)
		p.perPaths[w]++
	}
}

// Next hands the worker its next work item: seeds first (they create work
// and are shard-local), then frontier states. Called under the runner's
// coordinator lock.
func (p *pipeRun) Next(w int) (*pipeItem, campaign.Verdict) {
	if s, ok := p.seeds.Pop(w); ok {
		l := p.phases[s.phase]
		l.PendingSeeds--
		l.Expanding++
		return &pipeItem{seed: &s}, campaign.Dispatch
	}
	for {
		st := p.e.Sched.Pop()
		if st == nil {
			break
		}
		l := p.phases[st.Phase]
		l.Queued--
		if l.Exited >= p.e.Opts.MaxPathsPerEntry {
			// Per-(entry, phase) path budget exhausted: abandon the rest
			// of this phase's frontier (coverage loss, never
			// unsoundness) — the barriered engine's post-Explore kill.
			st.Status = vm.StatusKilled
			continue
		}
		l.BeginFlight()
		return &pipeItem{st: st}, campaign.Dispatch
	}
	return nil, campaign.Drained
}

// Retire folds one completed item into the ledgers. Called under the
// runner's coordinator lock.
func (p *pipeRun) Retire(w int, it *pipeItem) {
	switch {
	case it.seed != nil:
		p.seedExpanded(w, it.seed.phase, it.out)
	case it.st != nil:
		p.pathDone(w, it.st, &it.res)
	}
}

// Idle is consulted when the frontier is drained and nothing is in flight:
// advance the drain cascade (which may fire a zero-success fallback) and
// end the campaign once every phase is done. Called under the runner's
// coordinator lock.
func (p *pipeRun) Idle(w int) bool {
	p.reap(w)
	return campaign.AllDone(p.ledgers)
}

// enqueueSeed queues "invoke base into phase" on the worker's own workq
// shard and records base as a fallback input of that phase. Caller holds
// the coordinator lock (or the pool has not started yet).
func (p *pipeRun) enqueueSeed(w int, base *vm.State, phase int) {
	l := p.phases[phase]
	l.SeedsIn++
	l.PendingSeeds++
	l.bases = append(l.bases, base)
	if h := p.e.testOnSeed; h != nil {
		h(base, phase)
	}
	p.seeds.Push(w, pipeSeed{base: base, phase: phase})
}

// seedOnward promotes base past fromPhase along the plan's edges into
// every successor phase that applies to it. Non-applicable phases are
// skipped through via their own edges — except gates: a gate phase that
// does not apply (e.g. a network driver that never registered an
// Initialize handler) ends the workload for this base, exactly as the
// barriered loop's "!initialized" early return refuses to exercise the
// data path on an uninitialized adapter. On a linear plan (nil succs
// everywhere) this reduces exactly to the old walk: first applicable
// phase wins, stop at a non-applicable gate. Caller holds the coordinator
// lock.
func (p *pipeRun) seedOnward(w int, base *vm.State, fromPhase int) {
	p.seedAlong(w, base, fromPhase, make(map[int]bool))
}

// seedAlong routes base along phase i's outgoing edges (nil succs = linear
// fallthrough). The visited set dedupes skip-through on diamond shapes —
// two alternatives converging on the same DPC node must seed it once.
func (p *pipeRun) seedAlong(w int, base *vm.State, i int, visited map[int]bool) {
	sp := p.phases[i].spec
	if sp.succs == nil {
		if i+1 < len(p.phases) {
			p.seedInto(w, base, i+1, visited)
		}
		return
	}
	for _, edge := range sp.succs {
		if edge.when == nil || edge.when(p.e, base) {
			p.seedInto(w, base, edge.to, visited)
		}
	}
}

// seedInto seeds base into phase j if it applies, else skips through j's
// own edges (gates end the walk instead).
func (p *pipeRun) seedInto(w int, base *vm.State, j int, visited map[int]bool) {
	if visited[j] {
		return
	}
	visited[j] = true
	if p.phases[j].spec.applicable(p.e, base) {
		p.enqueueSeed(w, base, j)
		return
	}
	if p.phases[j].spec.gate {
		return
	}
	p.seedAlong(w, base, j, visited)
}

// seedExpanded pushes a seed's invocation states into the frontier and
// retires the expansion. Caller holds the coordinator lock.
func (p *pipeRun) seedExpanded(w, phase int, states []*vm.State) {
	l := p.phases[phase]
	l.Expanding--
	for _, st := range states {
		if p.e.Sched.Push(st) {
			l.AddQueued(1)
		}
	}
	p.reap(w)
}

// pushForked accounts a mid-path fork landing in the frontier (called via
// Engine.pushState from a worker's runPath, outside the coordinator lock).
func (p *pipeRun) pushForked(n *vm.State) {
	p.r.Locked(func() {
		if p.e.Sched.Push(n) {
			p.phases[n.Phase].AddQueued(1)
		}
	})
}

// pathDone retires one explored path: budget accounting, promotion of a
// success into the next phase (KeepStates-capped, on the completing
// worker's shard), and the drain cascade. Caller holds the coordinator
// lock.
func (p *pipeRun) pathDone(w int, st *vm.State, res *PhaseResult) {
	l := p.phases[st.Phase]
	l.InFlight--
	l.Exited += res.Exited
	// The completed state is the tail of runPath's depth-first descent —
	// a fork descendant of st in the same phase — not necessarily st.
	done := st
	success := len(res.Succeeded) > 0
	if success {
		done = res.Succeeded[0]
		l.Succeeded++
	}
	if h := p.e.testOnPathDone; h != nil {
		h(done, st.Phase, success)
	}
	hasDPCs := len(kernel.Of(done).PendingDPCs) > 0
	switch {
	case success && l.spec.drain && hasDPCs &&
		l.Drained < p.e.Opts.KeepStates*maxDPCRounds:
		// Drain phase with work left: re-enter the same phase (the
		// pipelined form of drainDPCs' fixpoint rounds). Not charged to
		// Promoted — the fixpoint must not eat the forward budget.
		l.Drained++
		ks := kernel.Of(done)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
		p.enqueueSeed(w, done, st.Phase)
	case success && (l.Promoted < p.e.Opts.KeepStates ||
		(hasDPCs && l.PromotedDPC < p.e.Opts.KeepStates)):
		if l.Promoted < p.e.Opts.KeepStates {
			l.Promoted++
		} else {
			l.PromotedDPC++
		}
		// Promoted bases must not leak DPC/IRQL context into the next
		// phase (the barriered loop normalizes carried states the same way).
		ks := kernel.Of(done)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
		p.seedOnward(w, done, st.Phase)
	}
	p.reap(w)
}

// reap advances the drain cascade: phases complete strictly in order
// (promotion only flows forward), so walk from the front and mark every
// already-done-prefixed phase with no remaining activity as done. A
// non-gate phase that drains with zero successes passes its input bases
// through to the next applicable phase — the barriered loop's fallback.
// Caller holds the coordinator lock.
func (p *pipeRun) reap(w int) {
	for i, l := range p.phases {
		if l.Done {
			continue
		}
		if l.Activity() > 0 {
			// Not drained; later phases can still be seeded by this one.
			return
		}
		l.Done = true
		dbgPhases.printf("pipeline phase %-20s drained: exited=%-4d succ=%-3d promoted=%d\n",
			l.spec.name, l.Exited, l.Succeeded, l.Promoted)
		dbgPhases.gauges("pipeline", p.gaugeRows())
		if !l.spec.gate && l.SeedsIn > 0 && l.Succeeded == 0 {
			for _, b := range l.bases {
				p.seedOnward(w, b, i)
			}
		}
		// Gate with zero successes: nothing seeds onward; the remaining
		// phases drain empty through this same cascade.
	}
}

// gaugeRows snapshots the per-phase occupancy for the debug reporter.
// Caller holds the coordinator lock.
func (p *pipeRun) gaugeRows() []phaseGauge {
	rows := make([]phaseGauge, 0, len(p.phases))
	for _, l := range p.phases {
		rows = append(rows, phaseGauge{
			Name:     l.spec.name,
			Queued:   l.Queued + l.PendingSeeds,
			InFlight: l.InFlight + l.Expanding,
			Exited:   l.Exited,
		})
	}
	return rows
}
