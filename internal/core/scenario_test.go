package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/vm"
)

// The promise-ultra133 storage driver is the scenario-graph corpus entry:
// its two planted bugs are reachable only through behaviours the linear
// workload cannot express or the pre-fix engine could not execute.
//
//   - "memory corruption": the completion DPC writes through a request
//     block freed on IRP_MN_SURPRISE_REMOVAL — needs the PnP branch of
//     the scenario graph (ISR → SurpriseRemoval → DPC).
//   - "kernel crash": the statistics DPC (always queued SECOND by the
//     ISR) releases its spinlock to PASSIVE_LEVEL. Reaching it requires
//     the drain to pop PAST the first pending DPC, so this assertion is
//     the regression tripwire for the old one-shot drainDPCs.

func storageBugClasses(t *testing.T, rep *Report) []string {
	t.Helper()
	got := make([]string, 0, len(rep.Bugs))
	seen := map[string]bool{}
	for _, b := range rep.Bugs {
		if !seen[b.Class] {
			seen[b.Class] = true
			got = append(got, b.Class)
		}
	}
	sort.Strings(got)
	return got
}

// TestStorageScenarioFindsBothBugs: the barriered engine walks the PnP
// scenario graph and finds exactly the two planted bugs. The "kernel
// crash" half FAILS if drainDPCs regresses to one-shot (it lives in the
// second queued DPC); the "memory corruption" half fails if the
// surprise-removal path is unreachable.
func TestStorageScenarioFindsBothBugs(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	rep := runDDT(t, "promise-ultra133", corpus.Buggy, opts)
	want := []string{"kernel crash", "memory corruption"}
	if got := storageBugClasses(t, rep); !reflect.DeepEqual(got, want) {
		t.Fatalf("bug classes = %v, want %v\n%s", got, want, rep)
	}
}

// TestStorageScenarioFixedIsClean: the corrected variant survives the
// full scenario graph with zero reports (no false positives from the
// removal/power machinery itself).
func TestStorageScenarioFixedIsClean(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	rep := runDDT(t, "promise-ultra133", corpus.Fixed, opts)
	if len(rep.Bugs) != 0 {
		t.Fatalf("fixed promise-ultra133 reported %d bug(s):\n%s", len(rep.Bugs), rep)
	}
}

// TestStorageScenarioLinearOverride: Options.Scenario = ScenarioLinear
// forces the classic straight-line plan on a storage driver. The drain
// tripwire ("kernel crash") is still reachable — Read/Write/ISR/DPC are
// all in the linear plan — but the removal race is not, because no
// linear phase ever yanks the device.
func TestStorageScenarioLinearOverride(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Scenario = ScenarioLinear
	rep := runDDT(t, "promise-ultra133", corpus.Buggy, opts)
	got := classSet(rep)
	if got["kernel crash"] == 0 {
		t.Errorf("linear scenario lost the DPC-drain bug:\n%s", rep)
	}
	if got["memory corruption"] != 0 {
		t.Errorf("linear scenario found the removal race without a removal phase:\n%s", rep)
	}
}

// TestStorageScenarioDeterministic: two sequential runs over the graph
// are bit-identical — the scenario walker preserves the workers<=1
// determinism contract.
func TestStorageScenarioDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	a := runDDT(t, "promise-ultra133", corpus.Buggy, opts)
	b := runDDT(t, "promise-ultra133", corpus.Buggy, opts)
	if a.PathsExplored != b.PathsExplored || a.Instructions != b.Instructions ||
		a.StatesForked != b.StatesForked || a.SolverQueries != b.SolverQueries {
		t.Errorf("runs diverged: paths %d/%d instr %d/%d forks %d/%d queries %d/%d",
			a.PathsExplored, b.PathsExplored, a.Instructions, b.Instructions,
			a.StatesForked, b.StatesForked, a.SolverQueries, b.SolverQueries)
	}
	if !reflect.DeepEqual(sortedBugKeys(a), sortedBugKeys(b)) {
		t.Errorf("bug sets diverged: %v vs %v", sortedBugKeys(a), sortedBugKeys(b))
	}
}

// TestInterruptBudgetAccrues: unit contract of the path-global interrupt
// budget. The count accumulates — chargeIntr increments, never assigns —
// and intrBudgetLeft turns false exactly at MaxIntrInjections, including
// across a fork (the child inherits the parent's spent budget).
func TestInterruptBudgetAccrues(t *testing.T) {
	img, err := corpus.Build("amd-pcnet", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxIntrInjections = 2
	e := NewEngine(img, opts)

	s := e.NewBootState()
	if !e.intrBudgetLeft(s) {
		t.Fatal("fresh state has no budget")
	}
	chargeIntr(s)
	if !e.intrBudgetLeft(s) {
		t.Fatal("budget exhausted after 1 of 2 charges")
	}
	chargeIntr(s)
	if e.intrBudgetLeft(s) {
		t.Fatal("budget not exhausted after 2 of 2 charges")
	}
	// A later phase must see the spent budget, not a fresh one: the count
	// survives a fork, and charging the child must not refund the parent.
	child := e.M.ForkState(s)
	if e.intrBudgetLeft(child) {
		t.Fatal("fork refunded the interrupt budget (per-phase reset regression)")
	}

	// Budget 0 means zero injections even for a never-charged state.
	e.Opts.MaxIntrInjections = 0
	if e.intrBudgetLeft(&vm.State{}) {
		t.Fatal("MaxIntrInjections=0 still grants an injection")
	}
}

// TestInterruptBudgetBindsAcrossPhases: behavioural half of the budget
// fix. The old code reset the counter at every phase entry, so any
// budget >= 1 explored the same state space; path-global accounting
// makes the explored frontier strictly monotone in the budget, and
// budget 0 identical to disabling symbolic interrupts outright.
func TestInterruptBudgetBindsAcrossPhases(t *testing.T) {
	run := func(budget uint64, symIntr bool) *Report {
		opts := DefaultOptions()
		opts.Workers = 1
		opts.MaxIntrInjections = budget
		opts.SymbolicInterrupts = symIntr
		return runDDT(t, "amd-pcnet", corpus.Buggy, opts)
	}
	off := run(2, false)
	b0 := run(0, true)
	b1 := run(1, true)
	b2 := run(2, true)

	if b0.PathsExplored != off.PathsExplored || b0.Instructions != off.Instructions {
		t.Errorf("budget 0 explored %d paths / %d instr, interrupts-off %d / %d — not equivalent",
			b0.PathsExplored, b0.Instructions, off.PathsExplored, off.Instructions)
	}
	if b1.PathsExplored <= b0.PathsExplored {
		t.Errorf("budget 1 (%d paths) not above budget 0 (%d)", b1.PathsExplored, b0.PathsExplored)
	}
	// The pre-fix per-phase reset made budgets 1 and 2 identical (each
	// phase saw a freshly-assigned count of 1). Path-global accounting
	// must separate them.
	if b2.PathsExplored <= b1.PathsExplored {
		t.Errorf("budget 2 (%d paths) not above budget 1 (%d) — per-phase reset regression",
			b2.PathsExplored, b1.PathsExplored)
	}
}
