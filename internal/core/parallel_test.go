package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/corpus"
)

// seedGolden pins the exact results of the sequential engine. A workers=1
// run must reproduce them bit-for-bit: same bug set, same path count, same
// coverage, same fork/instruction/query totals. Any drift here means a
// change altered sequential semantics, not just structure.
//
// Re-pinned when the interrupt-injection budget became path-global: the
// old per-phase counter reset granted every phase a fresh entry-sibling
// fork, so the fixed budget explores fewer (now correctly capped) paths.
// Bug sets and coverage are unchanged.
var seedGolden = map[string]struct {
	bugs    []string
	paths   int
	covered int
	static  int
	forks   uint64
	instr   uint64
	queries uint64
}{
	"amd-pcnet": {
		bugs:  []string{"resource leak@0x1000f8", "resource leak@0x100298"},
		paths: 91, covered: 339, static: 413, forks: 91, instr: 4729, queries: 102,
	},
	"rtl8029": {
		bugs: []string{
			"memory corruption@0x100150",
			"race condition@0x100860",
			"resource leak@0x100060",
			"segmentation fault@0x1004b0",
			"segmentation fault@0x100630",
		},
		paths: 473, covered: 222, static: 265, forks: 652, instr: 12734, queries: 1229,
	},
}

func sortedBugKeys(rep *Report) []string {
	keys := make([]string, 0, len(rep.Bugs))
	for _, b := range rep.Bugs {
		keys = append(keys, b.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestSequentialMatchesSeedEngine: the workers=1 engine is equivalent to
// the pre-refactor sequential engine on the golden drivers.
func TestSequentialMatchesSeedEngine(t *testing.T) {
	for driver, want := range seedGolden {
		opts := DefaultOptions()
		opts.Workers = 1
		rep := runDDT(t, driver, corpus.Buggy, opts)

		if got := sortedBugKeys(rep); !reflect.DeepEqual(got, want.bugs) {
			t.Errorf("%s: bug set %v, seed engine found %v", driver, got, want.bugs)
		}
		if rep.PathsExplored != want.paths {
			t.Errorf("%s: paths = %d, seed %d", driver, rep.PathsExplored, want.paths)
		}
		if rep.BlocksCovered != want.covered || rep.BlocksStatic != want.static {
			t.Errorf("%s: coverage = %d/%d, seed %d/%d",
				driver, rep.BlocksCovered, rep.BlocksStatic, want.covered, want.static)
		}
		if rep.StatesForked != want.forks {
			t.Errorf("%s: forks = %d, seed %d", driver, rep.StatesForked, want.forks)
		}
		if rep.Instructions != want.instr {
			t.Errorf("%s: instructions = %d, seed %d", driver, rep.Instructions, want.instr)
		}
		if rep.SolverQueries != want.queries {
			t.Errorf("%s: solver queries = %d, seed %d", driver, rep.SolverQueries, want.queries)
		}
	}
}

// TestWorkersZeroIsSequential: Workers=0 (the zero value) must behave as
// the sequential engine, so existing callers see no change.
func TestWorkersZeroIsSequential(t *testing.T) {
	want := seedGolden["amd-pcnet"]
	rep := runDDT(t, "amd-pcnet", corpus.Buggy, DefaultOptions()) // Workers zero value
	if got := sortedBugKeys(rep); !reflect.DeepEqual(got, want.bugs) {
		t.Errorf("bug set %v, want %v", got, want.bugs)
	}
	if rep.Instructions != want.instr || rep.PathsExplored != want.paths {
		t.Errorf("paths/instr = %d/%d, want %d/%d",
			rep.PathsExplored, rep.Instructions, want.paths, want.instr)
	}
	if rep.Workers != 1 {
		t.Errorf("report workers = %d, want 1", rep.Workers)
	}
}

// TestParallelExploreFindsSameBugs: the workers=4 engine must find exactly
// the same bug set as the sequential engine on the golden drivers (run in
// CI under -race — this is also the parallel engine's race regression
// test). Path ORDER and count may differ (the path budget is a global
// bound over a racy schedule); the bug set and coverage must not shrink.
func TestParallelExploreFindsSameBugs(t *testing.T) {
	for driver, want := range seedGolden {
		opts := DefaultOptions()
		opts.Workers = 4
		rep := runDDT(t, driver, corpus.Buggy, opts)

		if got := sortedBugKeys(rep); !reflect.DeepEqual(got, want.bugs) {
			t.Errorf("%s workers=4: bug set %v, sequential found %v", driver, got, want.bugs)
		}
		if rep.BlocksCovered < want.covered {
			t.Errorf("%s workers=4: coverage %d below sequential %d",
				driver, rep.BlocksCovered, want.covered)
		}
		if rep.Workers != 4 {
			t.Errorf("%s: report workers = %d, want 4", driver, rep.Workers)
		}
	}
}

// TestParallelFixedVariantIsClean: zero false positives must hold under
// parallelism too — the corrected rtl8029 finds nothing with 4 workers.
func TestParallelFixedVariantIsClean(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	rep := runDDT(t, "rtl8029", corpus.Fixed, opts)
	if len(rep.Bugs) != 0 {
		t.Errorf("fixed rtl8029 with 4 workers reported %d bug(s): %v",
			len(rep.Bugs), sortedBugKeys(rep))
	}
}

// TestParallelStopAtFirstBug: the early-exit policy works across workers.
func TestParallelStopAtFirstBug(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.StopAtFirstBug = true
	rep := runDDT(t, "rtl8029", corpus.Buggy, opts)
	if len(rep.Bugs) == 0 {
		t.Fatal("no bug found with StopAtFirstBug")
	}
}

// TestParallelReportsCacheStats: a parallel run must surface shared-cache
// counters in the report (they are how the shared-cache win is measured).
func TestParallelReportsCacheStats(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	rep := runDDT(t, "amd-pcnet", corpus.Buggy, opts)
	if rep.SolverQueries == 0 {
		t.Error("no solver queries aggregated across workers")
	}
	// Hits/evictions may legitimately be 0 on a small driver; the point is
	// the fields exist and the query aggregate includes worker solvers.
	t.Logf("queries=%d hits=%d evictions=%d",
		rep.SolverQueries, rep.SolverCacheHits, rep.SolverCacheEvictions)
}
