package core

import (
	"sort"
	"testing"

	"repro/internal/corpus"
)

// TestTable2EveryDriverEveryBug is the headline result: DDT finds all 14
// previously-unknown bugs of Table 2 across the six drivers — the exact
// classes, no more, no fewer — and reports zero false positives on the
// corrected builds ("we encountered no false positives during testing").
func TestTable2EveryDriverEveryBug(t *testing.T) {
	total := 0
	for _, name := range []string{"rtl8029", "amd-pcnet", "intel-pro1000", "intel-pro100", "ensoniq-audiopci", "intel-ac97"} {
		spec, ok := corpus.Get(name)
		if !ok {
			t.Fatalf("missing corpus driver %s", name)
		}
		rep := runDDT(t, name, corpus.Buggy, DefaultOptions())
		got := make([]string, 0, len(rep.Bugs))
		for _, b := range rep.Bugs {
			got = append(got, b.Class)
		}
		want := append([]string(nil), spec.ExpectedBugs...)
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Errorf("%s: found %d bugs %v, want %d %v", name, len(got), got, len(want), want)
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: classes %v, want %v", name, got, want)
					break
				}
			}
		}
		total += len(rep.Bugs)

		fixedRep := runDDT(t, name, corpus.Fixed, DefaultOptions())
		for _, b := range fixedRep.Bugs {
			t.Errorf("%s fixed: FALSE POSITIVE %s", name, b.Describe())
		}
	}
	if total != 14 {
		t.Errorf("total bugs across the corpus = %d, want 14 (Table 2)", total)
	}
}

// TestSampleDriverBugs covers the §5.1 SDV comparison inputs: DDT finds all
// 8 seeded sample bugs and all 5 injected synthetic bugs, with clean fixed
// variants.
func TestSampleDriverBugs(t *testing.T) {
	for _, name := range []string{"ddk-sample", "ddk-sample-synthetic"} {
		spec, _ := corpus.Get(name)
		rep := runDDT(t, name, corpus.Buggy, DefaultOptions())
		if len(rep.Bugs) != len(spec.ExpectedBugs) {
			for _, b := range rep.Bugs {
				t.Logf("  %s", b.Describe())
			}
			t.Errorf("%s: %d bugs, want %d", name, len(rep.Bugs), len(spec.ExpectedBugs))
		}
		fixedRep := runDDT(t, name, corpus.Fixed, DefaultOptions())
		for _, b := range fixedRep.Bugs {
			t.Errorf("%s fixed: FALSE POSITIVE %s", name, b.Describe())
		}
	}
}

// TestAnnotationAblation reproduces §5.1's annotation experiment: with all
// annotations turned off, the race-condition and hardware-related bugs are
// still found (their detection does not depend on annotations), while the
// memory leaks and segmentation faults are missed.
func TestAnnotationAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.Annotations = false

	raceFound := 0
	othersFound := 0
	for _, name := range []string{"rtl8029", "amd-pcnet", "intel-pro1000", "intel-pro100", "ensoniq-audiopci", "intel-ac97"} {
		rep := runDDT(t, name, corpus.Buggy, opts)
		for _, b := range rep.Bugs {
			switch b.Class {
			case "race condition", "kernel crash", "deadlock":
				raceFound++
			default:
				othersFound++
				t.Errorf("%s: %q found without annotations: %s", name, b.Class, b.Describe())
			}
		}
	}
	// All four race bugs plus the Pro/100 DPC crash are annotation
	// independent.
	if raceFound < 5 {
		t.Errorf("race/interrupt bugs found without annotations = %d, want >= 5", raceFound)
	}
	if othersFound != 0 {
		t.Errorf("leak/segfault bugs found without annotations = %d, want 0 (ablation)", othersFound)
	}
}

// TestSymbolicInterruptsAblation: without symbolic interrupts the
// interrupt-timing races disappear, everything else stays.
func TestSymbolicInterruptsAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.SymbolicInterrupts = false
	rep := runDDT(t, "rtl8029", corpus.Buggy, opts)
	for _, b := range rep.Bugs {
		if b.Class == "race condition" {
			t.Errorf("race found without symbolic interrupts: %s", b.Describe())
		}
	}
	got := rep.CountByClass()
	for _, class := range []string{"resource leak", "memory corruption", "segmentation fault"} {
		if got[class] == 0 {
			t.Errorf("class %q lost when only interrupts are disabled", class)
		}
	}
}

// TestDeterminism: two identical runs produce identical reports (the whole
// stack is deterministic, which the figures and replay depend on).
func TestDeterminism(t *testing.T) {
	a := runDDT(t, "rtl8029", corpus.Buggy, DefaultOptions())
	b := runDDT(t, "rtl8029", corpus.Buggy, DefaultOptions())
	if a.Instructions != b.Instructions || a.PathsExplored != b.PathsExplored ||
		a.BlocksCovered != b.BlocksCovered || len(a.Bugs) != len(b.Bugs) {
		t.Errorf("non-deterministic runs: %+v vs %+v", a, b)
	}
	for i := range a.Bugs {
		if a.Bugs[i].Key() != b.Bugs[i].Key() {
			t.Errorf("bug %d differs: %s vs %s", i, a.Bugs[i].Key(), b.Bugs[i].Key())
		}
	}
}

// TestBugEvidenceCompleteness: every reported bug must carry a non-empty
// trace, a model covering every symbol on the path, and provenance for each
// input (§3.5's promises).
func TestBugEvidenceCompleteness(t *testing.T) {
	rep := runDDT(t, "rtl8029", corpus.Buggy, DefaultOptions())
	for _, b := range rep.Bugs {
		if len(b.Trace) == 0 {
			t.Errorf("%s: empty trace", b.Key())
		}
		for _, si := range b.Symbols {
			if _, ok := b.Model[si.ID]; !ok {
				t.Errorf("%s: symbol %s missing from model", b.Key(), si.Name)
			}
		}
		if b.Inputs() == "" {
			t.Errorf("%s: no inputs rendering", b.Key())
		}
	}
}

func TestStopAtFirstBug(t *testing.T) {
	opts := DefaultOptions()
	opts.StopAtFirstBug = true
	rep := runDDT(t, "rtl8029", corpus.Buggy, opts)
	if len(rep.Bugs) > 1 {
		t.Errorf("stop-at-first-bug run reported %d bugs", len(rep.Bugs))
	}
}
