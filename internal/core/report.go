// Package core wires DDT together: machine, kernel, symbolic hardware,
// checkers, annotations, scheduler, and the workload phases of the driver
// exerciser. Its Engine is what the public ddt package fronts.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/vm"
)

// Bug is one confirmed undesired behaviour, with everything §3.5 promises:
// the fault, its Table-2 classification, the execution trace of the path,
// and concrete inputs (a solved assignment of every symbolic value on the
// path) that make the driver re-execute the buggy path.
type Bug struct {
	// Class is the Table 2 bug category ("race condition", "resource
	// leak", "segmentation fault", "memory corruption", "kernel crash",
	// "deadlock", "hang").
	Class string
	// Fault is the raw failure.
	Fault *vm.Fault
	// Entry names the driver entry point being exercised.
	Entry string
	// StateID identifies the failing execution state.
	StateID uint64
	// ICount is the instruction count at failure (simulated time).
	ICount uint64
	// Trace is the full event path from the root to the failure.
	Trace []vm.Event
	// Model assigns a concrete value to every symbolic input on the path.
	Model expr.Assignment
	// Symbols describes the provenance of each symbolic input.
	Symbols []expr.SymbolInfo
	// InInterrupt reports whether the fault fired inside an injected ISR.
	InInterrupt bool
}

// Key is the deduplication identity of the bug: same class at the same
// driver location is one bug, however many paths reach it.
func (b *Bug) Key() string {
	return fmt.Sprintf("%s@%#x", b.Class, b.Fault.PC)
}

// Describe renders the one-line description used in reports (the "direct
// output from DDT" columns of Table 2).
func (b *Bug) Describe() string {
	return fmt.Sprintf("[%s] %s (entry %s, pc %#x)", b.Class, b.Fault.Msg, b.Entry, b.Fault.PC)
}

// Inputs renders the solved concrete inputs, grouped by origin — the
// evidence that lets a consumer replay the bug (§3.5).
func (b *Bug) Inputs() string {
	if len(b.Symbols) == 0 {
		return "(no symbolic inputs on this path)"
	}
	var sb strings.Builder
	for _, si := range b.Symbols {
		fmt.Fprintf(&sb, "  %-28s (%s, created at pc %#x) = %#x\n",
			si.Name, si.Origin, si.PC, b.Model[si.ID])
	}
	return sb.String()
}

// Report is the output of one DDT run.
type Report struct {
	Driver string
	// Bugs are deduplicated, in discovery order.
	Bugs []*Bug
	// PathsExplored counts completed execution paths.
	PathsExplored int
	// StatesForked counts state forks.
	StatesForked uint64
	// Instructions is total executed instructions (simulated time).
	Instructions uint64
	// BlocksCovered / BlocksStatic give the Figure 2 coverage ratio.
	BlocksCovered int
	BlocksStatic  int
	// CoverageSeries is the Figure 2/3 time series.
	CoverageSeries []CoveragePointOut
	// SolverQueries etc. for the efficiency section.
	SolverQueries uint64
	SymbolsMade   int
	// SolverCacheHits / SolverCacheEvictions measure the shared query
	// cache: under parallel exploration one worker's Sat/Unsat answer is a
	// hit for every other worker, which is where the shared-cache speedup
	// comes from.
	SolverCacheHits      uint64
	SolverCacheEvictions uint64
	// Workers is how many exploration workers the run used (1 =
	// sequential).
	Workers int
	// Pipelined reports whether the run dissolved the workload phase
	// barriers (Options.Pipeline with Workers > 1).
	Pipelined bool
	// Phases is the per-phase outcome ledger in workload order. Barriered
	// runs fill the outcome columns; pipelined runs additionally record the
	// concurrency columns (peak in-flight / peak queued), which is how the
	// barrier-removal win shows up: a non-zero peak for phase k+1 while
	// phase k was still exiting paths.
	Phases []PhaseStat
}

// PhaseStat is one workload phase's outcome and (for pipelined runs)
// concurrency footprint.
type PhaseStat struct {
	// Name is the entry phase ("DriverEntry", "Initialize", "Send", ...).
	Name string
	// Exited counts completed paths in this phase.
	Exited int
	// Succeeded counts paths that exited with StatusSuccess.
	Succeeded int
	// Promoted counts successes that seeded a later phase (capped at
	// KeepStates).
	Promoted int
	// SeedsIn counts base states that were invoked into this phase.
	SeedsIn int
	// PeakInFlight is the maximum number of this phase's paths being
	// stepped at once (pipelined runs only).
	PeakInFlight int
	// PeakQueued is the maximum number of this phase's states waiting in
	// the frontier at once (pipelined runs only).
	PeakQueued int
}

// CoveragePointOut mirrors exerciser.CoveragePoint in the public report.
type CoveragePointOut struct {
	Instructions uint64
	Blocks       int
}

// RelativeCoverage returns covered/static, in [0,1].
func (r *Report) RelativeCoverage() float64 {
	if r.BlocksStatic == 0 {
		return 0
	}
	return float64(r.BlocksCovered) / float64(r.BlocksStatic)
}

// CountByClass tallies bugs per Table 2 category.
func (r *Report) CountByClass() map[string]int {
	out := make(map[string]int)
	for _, b := range r.Bugs {
		out[b.Class]++
	}
	return out
}

// String renders the report as the tool's console output.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DDT report for driver %q\n", r.Driver)
	fmt.Fprintf(&sb, "  paths explored: %d, forks: %d, instructions: %d, workers: %d\n",
		r.PathsExplored, r.StatesForked, r.Instructions, r.Workers)
	fmt.Fprintf(&sb, "  coverage: %d/%d basic blocks (%.0f%%)\n",
		r.BlocksCovered, r.BlocksStatic, 100*r.RelativeCoverage())
	fmt.Fprintf(&sb, "  solver: %d queries, %d cache hits, %d evictions\n",
		r.SolverQueries, r.SolverCacheHits, r.SolverCacheEvictions)
	if r.Pipelined {
		sb.WriteString("  pipelined phases (exited/succ/promoted, peak in-flight/queued):\n")
		for _, p := range r.Phases {
			fmt.Fprintf(&sb, "    %-20s %4d /%3d /%2d   peak %2d /%3d\n",
				p.Name, p.Exited, p.Succeeded, p.Promoted, p.PeakInFlight, p.PeakQueued)
		}
	}
	if len(r.Bugs) == 0 {
		sb.WriteString("  no bugs found\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %d bug(s) found:\n", len(r.Bugs))
	classes := r.CountByClass()
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		fmt.Fprintf(&sb, "    %-20s %d\n", c, classes[c])
	}
	for i, b := range r.Bugs {
		fmt.Fprintf(&sb, "  bug %d: %s\n", i+1, b.Describe())
	}
	return sb.String()
}
