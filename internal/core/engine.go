package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/annot"
	"repro/internal/binimg"
	"repro/internal/campaign"
	"repro/internal/checkers"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Options configure one DDT run. The campaign envelope (workers, pipeline
// mode, stop conditions, wall-clock bound, shared coverage) is the embedded
// campaign.Options — the same envelope fuzz.Config and ddt.Config embed —
// and the remaining fields are the symbolic engine's own knobs.
//
// Envelope semantics for the symbolic engine: Workers 0 or 1 runs the
// engine sequentially, bit-identical to the pre-parallel engine; N>1 pops
// the frontier from N workers, each with its own vm.ExecContext and solver
// over one shared query cache — the explored path SET is then
// schedule-dependent, but every reported bug remains a sound,
// solver-witnessed path, and completed paths are canonically ordered by
// state ID before KeepStates selection. Pipeline (with Workers > 1)
// dissolves the cross-path workload phase barriers while preserving
// per-path phase order. Duration bounds the whole TestDriver session.
// Seed and MaxExecs are accepted for envelope uniformity and unused here.
type Options struct {
	campaign.Options
	// Annotations enables the stock NDIS/WDM annotation sets. Off is DDT's
	// default mode (§3.4); the §5.1 ablation toggles this.
	Annotations bool
	// SymbolicInterrupts injects forked interrupt deliveries at
	// kernel/driver boundary crossings once an ISR is registered.
	SymbolicInterrupts bool
	// VerifierChecks enables the in-guest Driver Verifier-style checks.
	VerifierChecks bool
	// MaxStates caps the exploration frontier per phase.
	MaxStates int
	// MaxStepsPerPath bounds one path's instruction count per entry.
	MaxStepsPerPath uint64
	// MaxPathsPerEntry bounds completed paths per entry phase.
	MaxPathsPerEntry int
	// MaxIntrInjections bounds interrupt injections per path.
	MaxIntrInjections uint64
	// KeepStates is how many successful outcomes seed the next phase.
	KeepStates int
	// LoopThreshold is the infinite-loop heuristic's per-block repeat bound.
	LoopThreshold uint64
	// Registry overrides/extends the default registry hive.
	Registry map[string]uint32
	// Heuristic overrides the default min-block-count scheduler.
	Heuristic exerciser.Heuristic
	// ConcreteHardware replaces symbolic hardware with a deterministic
	// concrete device model (register reads return a fixed pattern). This
	// is how the Driver Verifier baseline runs: concrete stress testing
	// with in-guest checks only.
	ConcreteHardware bool
	// SymbolSeed, when non-nil, pins the first symbols minted on each path
	// to a concrete input prefix (see kernel.Kernel.SymbolSeed). The hybrid
	// loop uses it to make the engine fork outward from a high-novelty fuzz
	// feed instead of from scratch.
	SymbolSeed func(idx uint64, name string, origin expr.Origin) (uint32, bool)
	// Scenario selects the workload plan shape: "" picks the class default
	// (the PnP/power scenario graph for storage-class drivers, the linear
	// plan otherwise), ScenarioLinear forces the degenerate linear plan,
	// ScenarioPnP forces the scenario graph where the driver class
	// registers PnP/power dispatch handlers (storage; other classes fall
	// back to their linear plan).
	Scenario string
}

// Scenario values for Options.Scenario.
const (
	ScenarioLinear = "linear"
	ScenarioPnP    = "pnp"
)

// DefaultOptions mirror the paper's configuration: annotations on,
// symbolic interrupts on, Driver Verifier cooperating.
func DefaultOptions() Options {
	return Options{
		Annotations:        true,
		SymbolicInterrupts: true,
		VerifierChecks:     true,
		MaxStates:          512,
		MaxStepsPerPath:    60_000,
		MaxPathsPerEntry:   256,
		MaxIntrInjections:  2,
		KeepStates:         2,
		LoopThreshold:      2_000,
	}
}

// Engine is one DDT testing session bound to a driver image.
type Engine struct {
	Img  *binimg.Image
	Opts Options

	M    *vm.Machine
	K    *kernel.Kernel
	Dev  *hw.SymbolicDevice
	Mem  *checkers.MemoryChecker
	Loop *checkers.LoopChecker
	Leak checkers.LeakChecker

	Sched *exerciser.Scheduler
	Cov   *exerciser.Coverage

	// cache is the shared solver query cache: the root solver and every
	// parallel worker's solver answer through it.
	cache *solver.Cache

	// findings is the campaign-wide bug-deduplication ledger; the campaign
	// runner watches it for the StopAtFirstBug condition.
	findings *campaign.Findings

	// mu guards the result accounting shared by workers: bugs, paths,
	// PhaseResult mutation, phaseStats, and the merged worker solver
	// stats.
	mu            sync.Mutex
	bugs          []*Bug
	paths         int
	workerQueries uint64 // solver queries by retired parallel workers
	phaseStats    []PhaseStat

	// notify, during a parallel explore, wakes workers blocked on an empty
	// frontier after a push.
	notify func()

	// pipe is the active pipelined run, nil otherwise. Set before the
	// pipelined worker pool starts and cleared after it joins, so worker
	// reads need no lock.
	pipe *pipeRun

	// testOnSeed / testOnPathDone are test-only observation hooks for the
	// pipelined explorer, both invoked under the pipeline coordinator's
	// lock: testOnPathDone fires when a popped path retires (with its phase
	// and success verdict), testOnSeed fires when a base state is invoked
	// into a phase. The phase-ordering invariant test uses them.
	testOnSeed     func(base *vm.State, phase int)
	testOnPathDone func(s *vm.State, phase int, success bool)
}

// metaInjectISR marks a forked state that should receive an interrupt
// before resuming (set at a boundary crossing, consumed by the engine once
// the state's post-call PC is in place).
const metaInjectISR = "inject_isr"

// metaIntrCount counts interrupt injections already spent on a path.
const metaIntrCount = "intr_count"

// NewEngine builds a fully wired DDT session for the image.
func NewEngine(img *binimg.Image, opts Options) *Engine {
	cache := solver.NewCache(0)
	m := vm.NewMachine(img, expr.NewSymbolTable(), solver.NewWithCache(cache))
	e := &Engine{
		Img:      img,
		Opts:     opts,
		M:        m,
		K:        kernel.New(m),
		Dev:      hw.New(img.Device),
		Mem:      checkers.NewMemoryChecker(),
		Loop:     checkers.NewLoopChecker(opts.LoopThreshold),
		Sched:    exerciser.NewScheduler(opts.MaxStates),
		Cov:      exerciser.NewCoverage(len(binimg.StaticBlocks(img))),
		cache:    cache,
		findings: campaign.NewFindings(),
	}
	if opts.Coverage != nil {
		e.Cov = opts.Coverage
	}
	e.K.VerifierChecks = opts.VerifierChecks
	e.K.SymbolSeed = opts.SymbolSeed
	e.Dev.FreshSymbol = e.K.FreshSymbol
	e.Dev.Attach(m)
	if opts.ConcreteHardware {
		// Deterministic concrete device: reads return a pattern derived
		// from the register address; writes are still discarded.
		m.ReadDevice = func(s *vm.State, addr, size uint32) *expr.Expr {
			return expr.Const((addr*2654435761 + 0x5A) & 0xFF)
		}
		m.ReadPort = func(s *vm.State, port uint32) *expr.Expr {
			return expr.Const((port*2246822519 + 0xA5) & 0xFF)
		}
	}
	e.Mem.Install(m)
	if opts.Heuristic != nil {
		e.Sched.SetHeuristic(opts.Heuristic)
	}
	if opts.Annotations {
		annot.InstallAll(e.K)
	}
	m.OnBlock = func(s *vm.State, pc uint32) {
		e.Sched.Record(pc)
		e.Cov.Visit(pc, m.Steps.Load())
		if err := e.Loop.Visit(s, pc); err != nil {
			// Leave the fault on the state: the step loop surfaces it, so
			// it can never be attributed to a different path however the
			// scheduler interleaves forks.
			if f, ok := err.(*vm.Fault); ok {
				s.PendFault = f
			}
		}
	}
	e.K.OnBoundary = e.boundaryHook
	return e
}

// boundaryHook implements symbolic interrupts (§3.3): at each return from a
// kernel API (equivalently, just before the next kernel interaction), fork
// a sibling in which the device's interrupt fires there. Injection at entry
// start covers the remaining equivalence class (before the first API call).
func (e *Engine) boundaryHook(s *vm.State, api, when string) []*vm.State {
	if !e.Opts.SymbolicInterrupts || when != "return" {
		return nil
	}
	ks := kernel.Of(s)
	if !ks.ISRRegistered || s.InInterrupt > 0 {
		return nil
	}
	if !e.intrBudgetLeft(s) {
		return nil
	}
	alt := e.M.ForkState(s)
	chargeIntr(alt)
	return []*vm.State{alt}
}

// intrBudgetLeft reports whether a path may absorb another injected
// interrupt. The count is path-global: it accumulates across workload
// phases, so a path that took MaxIntrInjections interrupts anywhere keeps
// rejecting injections for the rest of the workload.
func (e *Engine) intrBudgetLeft(s *vm.State) bool {
	if s.Meta == nil {
		// No charges yet: count is zero, so MaxIntrInjections=0 really
		// means no injections at all.
		return e.Opts.MaxIntrInjections > 0
	}
	return s.Meta[metaIntrCount] < e.Opts.MaxIntrInjections
}

// chargeIntr charges one interrupt injection against the path's budget and
// arms the inject-at-entry flag. Always increment, never assign: the state
// inherited its base's accumulated count on fork, and assigning would
// silently reset the cross-phase cap at every phase entry.
func chargeIntr(s *vm.State) {
	if s.Meta == nil {
		s.Meta = make(map[string]uint64)
	}
	s.Meta[metaIntrCount]++
	s.Meta[metaInjectISR] = 1
}

// DefaultRegistry returns the stock simulated registry hive shared by
// engine runs, trace replays, and concrete fuzz executions.
func DefaultRegistry() map[string]uint32 {
	return map[string]uint32{
		"MaximumMulticastList": 4,
		"NetworkAddress":       0,
		"Speed":                100,
		"Duplex":               1,
		"TxRingSize":           8,
		"RxRingSize":           8,
		"SampleRate":           44100,
		"BufferMs":             10,
	}
}

// EffectiveRegistry returns the registry hive the run boots with: defaults
// plus option overrides. Trace files embed it so replays see the same
// configuration.
func (e *Engine) EffectiveRegistry() map[string]uint32 {
	reg := DefaultRegistry()
	for k, v := range e.Opts.Registry {
		reg[k] = v
	}
	return reg
}

// NewBootState builds the state in which the OS just loaded the driver:
// image mapped and granted, kernel booted, registry populated.
func (e *Engine) NewBootState() *vm.State {
	s := e.M.NewRootState()
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{
		Lo: isa.ImageBase, Hi: e.Img.LimitVA(),
		Kind: kernel.RegionImage, Writable: true, Tag: "driver image",
	})
	for k, v := range e.EffectiveRegistry() {
		ks.Registry[k] = v
	}
	s.Kernel = ks
	s.HW = &hw.DeviceState{}
	return s
}

// recordBug deduplicates, solves the input model, and stores a bug. Safe
// for concurrent use: the solve runs on the worker's own solver, only the
// dedup/store is serialized.
func (e *Engine) recordBug(s *vm.State, fault *vm.Fault) {
	b := &Bug{
		Class:       checkers.Classify(fault, s),
		Fault:       fault,
		Entry:       s.EntryName,
		StateID:     s.ID,
		ICount:      s.ICount,
		InInterrupt: s.InInterrupt > 0,
	}
	if !e.findings.Admit(b.Key()) {
		return
	}

	b.Trace = s.Trace.Path()
	b.Trace = append(b.Trace, vm.Event{Kind: vm.EvBug, Seq: s.ICount, PC: fault.PC, Name: b.Class + ": " + fault.Msg})
	model := e.M.SolverFor(s).Model(s.Constraints)
	if model == nil {
		model = expr.Assignment{}
	}
	// Complete the model over every symbol on this path (unconstrained
	// symbols get an explicit zero so the trace is fully concrete).
	for _, ev := range b.Trace {
		if ev.Kind == vm.EvNewSym {
			if _, ok := model[ev.Sym]; !ok {
				model[ev.Sym] = 0
			}
			b.Symbols = append(b.Symbols, e.M.Syms.Info(ev.Sym))
		}
	}
	b.Model = model

	e.mu.Lock()
	e.bugs = append(e.bugs, b)
	e.mu.Unlock()
}

// bugCount returns the number of recorded bugs (thread-safe).
func (e *Engine) bugCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.bugs)
}

// PhaseResult is what one entry-phase exploration returns.
type PhaseResult struct {
	// Succeeded are exited states whose R0 was StatusSuccess (capped at
	// Opts.KeepStates), used to seed the next phase.
	Succeeded []*vm.State
	// Exited counts all completed paths.
	Exited int
	// BugsFound counts new bugs recorded during the phase.
	BugsFound int
}

// Explore runs all queued states to completion, recording coverage and
// bugs. Initial states must already be pushed (via e.Sched.Push) and set up
// with kernel.Invoke. The frontier is drained by a campaign.Runner over a
// barrierFrontier: with Opts.Workers > 1 a concurrent worker pool, each
// worker owning a vm.ExecContext with a private solver over the shared
// query cache (the per-phase path budget can overshoot by at most
// Workers-1 in-flight paths); otherwise a single worker on the root
// solver, bit-identical to the original single-threaded engine. ctx
// cancels the phase mid-run.
func (e *Engine) Explore(ctx context.Context, entryName string) PhaseResult {
	var res PhaseResult
	dbgStart := time.Now()
	bugsBefore := e.bugCount()

	workers := e.Opts.Workers
	if workers < 1 {
		workers = 1
	}
	ectxs := make([]*vm.ExecContext, workers)
	if workers == 1 {
		ectxs[0] = e.M.NewContext(nil) // root solver, shared cache
	} else {
		for w := range ectxs {
			ectxs[w] = e.M.NewContext(solver.NewWithCache(e.cache))
		}
	}

	r := campaign.NewRunner(
		campaign.Options{Workers: workers, StopAtFirstBug: e.Opts.StopAtFirstBug},
		&barrierFrontier{e: e, res: &res},
		func(w int, st *vm.State) { e.runPath(ectxs[w], st, entryName, &res) },
	)
	r.BindFindings(e.findings)
	if workers > 1 {
		// A single worker is never parked while it executes, so pushes only
		// need wake-ups when other workers may be waiting.
		e.notify = r.Wake
	}
	r.Run(ctx)
	e.notify = nil

	if workers > 1 {
		e.mu.Lock()
		for _, c := range ectxs {
			e.workerQueries += c.Solver.Stats.Queries
		}
		// Completion order is schedule-dependent; canonicalize by state ID
		// so KeepStates selection (and everything downstream) is ordered by
		// a property of the path, not of the race.
		sort.Slice(res.Succeeded, func(i, j int) bool {
			return res.Succeeded[i].ID < res.Succeeded[j].ID
		})
		e.mu.Unlock()
		dbgPhases.workerPaths(r.Summary().PerWorker)
	}

	// Frontier left over when the path budget is hit is abandoned —
	// bounded-exploration coverage loss, never unsoundness.
	for {
		st := e.Sched.Pop()
		if st == nil {
			break
		}
		st.Status = vm.StatusKilled
	}
	res.BugsFound = e.bugCount() - bugsBefore
	e.mu.Lock()
	e.phaseStats = append(e.phaseStats, PhaseStat{
		Name:      entryName,
		Exited:    res.Exited,
		Succeeded: len(res.Succeeded),
	})
	e.mu.Unlock()
	dbgPhases.printf("phase %-20s exited=%-4d succ=%-3d elapsed=%v\n",
		entryName, res.Exited, len(res.Succeeded), time.Since(dbgStart))
	return res
}

// barrierFrontier is the barriered engine's frontier policy: one entry
// phase over the shared scheduler, stopping when the per-phase path budget
// trips. The campaign runner owns all pool coordination.
type barrierFrontier struct {
	e   *Engine
	res *PhaseResult
}

// Next pops the next frontier state, or stops the phase at its budget.
func (f *barrierFrontier) Next(w int) (*vm.State, campaign.Verdict) {
	f.e.mu.Lock()
	exited := f.res.Exited
	f.e.mu.Unlock()
	if exited >= f.e.Opts.MaxPathsPerEntry {
		return nil, campaign.Stop
	}
	if st := f.e.Sched.Pop(); st != nil {
		return st, campaign.Dispatch
	}
	return nil, campaign.Drained
}

// Retire is a no-op: runPath does its own result accounting.
func (f *barrierFrontier) Retire(w int, st *vm.State) {}

// Idle confirms the drain: an empty frontier with no path in flight ends
// the phase.
func (f *barrierFrontier) Idle(w int) bool { return true }

// pushState queues a forked sibling and, during a parallel explore, wakes
// a blocked worker for it. During a pipelined run the push goes through
// the pipeline coordinator so the per-phase queued ledger stays exact.
func (e *Engine) pushState(n *vm.State) {
	if p := e.pipe; p != nil {
		p.pushForked(n)
		return
	}
	e.Sched.Push(n)
	if f := e.notify; f != nil {
		f()
	}
}

// runPath steps one state until it terminates or forks; forked siblings go
// back to the scheduler. ctx is the calling worker's execution context.
func (e *Engine) runPath(ctx *vm.ExecContext, st *vm.State, entryName string, res *PhaseResult) {
	// Deferred ISR injection (marked at a boundary crossing).
	if st.Meta != nil && st.Meta[metaInjectISR] == 1 {
		delete(st.Meta, metaInjectISR)
		if !e.K.InjectInterrupt(st) {
			st.Status = vm.StatusKilled
			return
		}
	}
	start := st.ICount
	cur := st
	for cur.Status == vm.StatusRunning {
		if cur.ICount-start >= e.Opts.MaxStepsPerPath {
			cur.Status = vm.StatusKilled
			return
		}
		next, err := ctx.StepSpan(cur, e.Opts.MaxStepsPerPath-(cur.ICount-start))
		// A fault left pending on the stepped state by a hook (the loop
		// checker) fails the path right here, keeping the original engine's
		// timing; forked children of the same step die with their parent.
		if err == nil && cur.PendFault != nil {
			err = cur.PendFault
			cur.PendFault = nil
			cur.Status = vm.StatusBug
		}
		if err != nil {
			if f, ok := err.(*vm.Fault); ok {
				e.recordBug(cur, f)
			} else {
				e.recordBug(cur, vm.Faultf("engine", cur.PC, "%v", err))
			}
			return
		}
		switch len(next) {
		case 0:
			e.finishPath(cur, res)
			return
		case 1:
			cur = next[0]
		default:
			for _, n := range next[1:] {
				e.pushState(n)
			}
			cur = next[0]
			// Keep running the first child without rescheduling: cheap
			// depth-first descent within the coverage-guided outer loop.
		}
	}
}

func (e *Engine) finishPath(s *vm.State, res *PhaseResult) {
	if s.Status != vm.StatusExited {
		return
	}
	e.mu.Lock()
	e.paths++
	res.Exited++
	e.mu.Unlock()
	status, ok := s.RegConcrete(isa.R0)
	if !ok {
		// A symbolic entry status: concretize for bookkeeping.
		v, err := e.M.Concretize(s, s.Reg(isa.R0), "entry status")
		if err != nil {
			return
		}
		status = v
	}
	// Leak checking at entry exit (failed Initialize / completed Halt).
	if err := e.Leak.CheckEntryExit(s, s.EntryName, status); err != nil {
		if f, ok := err.(*vm.Fault); ok {
			e.recordBug(s, f)
		}
		return
	}
	if status == kernel.StatusSuccess {
		e.mu.Lock()
		if len(res.Succeeded) < e.Opts.KeepStates*4 {
			res.Succeeded = append(res.Succeeded, s)
		}
		e.mu.Unlock()
	}
}

// InvokeEntry seeds the scheduler with an entry invocation on a fork of
// base, plus (when enabled and registered) a sibling that takes an
// interrupt immediately at entry start.
func (e *Engine) InvokeEntry(base *vm.State, name string, pc uint32, args ...*expr.Expr) {
	st := e.M.ForkState(base)
	e.K.InvokeSym(st, name, pc, args...)
	e.Sched.Push(st)

	if e.Opts.SymbolicInterrupts && kernel.Of(st).ISRRegistered && e.intrBudgetLeft(base) {
		alt := e.M.ForkState(base)
		e.K.InvokeSym(alt, name, pc, args...)
		chargeIntr(alt)
		e.Sched.Push(alt)
	}
}

// Report assembles the session report.
func (e *Engine) Report() *Report {
	e.mu.Lock()
	bugs := append([]*Bug(nil), e.bugs...)
	paths := e.paths
	queries := e.workerQueries
	phases := append([]PhaseStat(nil), e.phaseStats...)
	e.mu.Unlock()
	cs := e.cache.Stats()
	workers := e.Opts.Workers
	if workers < 1 {
		workers = 1
	}
	r := &Report{
		Driver:               e.Img.Name,
		Bugs:                 bugs,
		PathsExplored:        paths,
		StatesForked:         e.M.Forks.Load(),
		Instructions:         e.M.Steps.Load(),
		BlocksCovered:        e.Cov.Blocks(),
		BlocksStatic:         e.Cov.TotalStatic,
		SolverQueries:        e.M.Solver.Stats.Queries + queries,
		SolverCacheHits:      cs.Hits,
		SolverCacheEvictions: cs.Evictions,
		Workers:              workers,
		Pipelined:            e.pipelined(),
		Phases:               phases,
		SymbolsMade:          e.M.Syms.Len(),
	}
	for _, p := range e.Cov.Series() {
		r.CoverageSeries = append(r.CoverageSeries, CoveragePointOut{p.Instructions, p.Blocks})
	}
	return r
}

// Bugs returns the bugs recorded so far.
func (e *Engine) Bugs() []*Bug {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bugs
}

func (e *Engine) String() string {
	e.mu.Lock()
	bugs, paths := len(e.bugs), e.paths
	e.mu.Unlock()
	return fmt.Sprintf("ddt engine for %q (%d bugs, %d paths)", e.Img.Name, bugs, paths)
}
