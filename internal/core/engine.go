package core

import (
	"fmt"

	"repro/internal/annot"
	"repro/internal/binimg"
	"repro/internal/checkers"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Options configure one DDT run.
type Options struct {
	// Annotations enables the stock NDIS/WDM annotation sets. Off is DDT's
	// default mode (§3.4); the §5.1 ablation toggles this.
	Annotations bool
	// SymbolicInterrupts injects forked interrupt deliveries at
	// kernel/driver boundary crossings once an ISR is registered.
	SymbolicInterrupts bool
	// VerifierChecks enables the in-guest Driver Verifier-style checks.
	VerifierChecks bool
	// MaxStates caps the exploration frontier per phase.
	MaxStates int
	// MaxStepsPerPath bounds one path's instruction count per entry.
	MaxStepsPerPath uint64
	// MaxPathsPerEntry bounds completed paths per entry phase.
	MaxPathsPerEntry int
	// MaxIntrInjections bounds interrupt injections per path.
	MaxIntrInjections uint64
	// KeepStates is how many successful outcomes seed the next phase.
	KeepStates int
	// LoopThreshold is the infinite-loop heuristic's per-block repeat bound.
	LoopThreshold uint64
	// Registry overrides/extends the default registry hive.
	Registry map[string]uint32
	// Heuristic overrides the default min-block-count scheduler.
	Heuristic exerciser.Heuristic
	// ConcreteHardware replaces symbolic hardware with a deterministic
	// concrete device model (register reads return a fixed pattern). This
	// is how the Driver Verifier baseline runs: concrete stress testing
	// with in-guest checks only.
	ConcreteHardware bool
	// StopAtFirstBug terminates the run after the first bug, as Driver
	// Verifier's crash-on-first-failure behaviour does (§5.1: "looking for
	// the next bug would typically require first fixing the found bug").
	StopAtFirstBug bool
	// Coverage, when non-nil, replaces the engine's own coverage recorder.
	// The concolic fuzzing loop passes a shared (thread-safe) recorder here
	// so the fuzzer and the engine accumulate into one coverage map.
	Coverage *exerciser.Coverage
	// SymbolSeed, when non-nil, pins the first symbols minted on each path
	// to a concrete input prefix (see kernel.Kernel.SymbolSeed). The hybrid
	// loop uses it to make the engine fork outward from a high-novelty fuzz
	// feed instead of from scratch.
	SymbolSeed func(idx uint64, name string, origin expr.Origin) (uint32, bool)
}

// DefaultOptions mirror the paper's configuration: annotations on,
// symbolic interrupts on, Driver Verifier cooperating.
func DefaultOptions() Options {
	return Options{
		Annotations:        true,
		SymbolicInterrupts: true,
		VerifierChecks:     true,
		MaxStates:          512,
		MaxStepsPerPath:    60_000,
		MaxPathsPerEntry:   256,
		MaxIntrInjections:  2,
		KeepStates:         2,
		LoopThreshold:      2_000,
	}
}

// Engine is one DDT testing session bound to a driver image.
type Engine struct {
	Img  *binimg.Image
	Opts Options

	M    *vm.Machine
	K    *kernel.Kernel
	Dev  *hw.SymbolicDevice
	Mem  *checkers.MemoryChecker
	Loop *checkers.LoopChecker
	Leak checkers.LeakChecker

	Sched *exerciser.Scheduler
	Cov   *exerciser.Coverage

	bugs     []*Bug
	bugKeys  map[string]bool
	paths    int
	pendLoop error // loop fault raised by the block hook, consumed by step loop
}

// metaInjectISR marks a forked state that should receive an interrupt
// before resuming (set at a boundary crossing, consumed by the engine once
// the state's post-call PC is in place).
const metaInjectISR = "inject_isr"

// metaIntrCount counts interrupt injections already spent on a path.
const metaIntrCount = "intr_count"

// NewEngine builds a fully wired DDT session for the image.
func NewEngine(img *binimg.Image, opts Options) *Engine {
	m := vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	e := &Engine{
		Img:     img,
		Opts:    opts,
		M:       m,
		K:       kernel.New(m),
		Dev:     hw.New(img.Device),
		Mem:     checkers.NewMemoryChecker(),
		Loop:    checkers.NewLoopChecker(opts.LoopThreshold),
		Sched:   exerciser.NewScheduler(opts.MaxStates),
		Cov:     exerciser.NewCoverage(len(binimg.StaticBlocks(img))),
		bugKeys: make(map[string]bool),
	}
	if opts.Coverage != nil {
		e.Cov = opts.Coverage
	}
	e.K.VerifierChecks = opts.VerifierChecks
	e.K.SymbolSeed = opts.SymbolSeed
	e.Dev.FreshSymbol = e.K.FreshSymbol
	e.Dev.Attach(m)
	if opts.ConcreteHardware {
		// Deterministic concrete device: reads return a pattern derived
		// from the register address; writes are still discarded.
		m.ReadDevice = func(s *vm.State, addr, size uint32) *expr.Expr {
			return expr.Const((addr*2654435761 + 0x5A) & 0xFF)
		}
		m.ReadPort = func(s *vm.State, port uint32) *expr.Expr {
			return expr.Const((port*2246822519 + 0xA5) & 0xFF)
		}
	}
	e.Mem.Install(m)
	if opts.Heuristic != nil {
		e.Sched.SetHeuristic(opts.Heuristic)
	}
	if opts.Annotations {
		annot.InstallAll(e.K)
	}
	m.OnBlock = func(s *vm.State, pc uint32) {
		e.Sched.Record(pc)
		e.Cov.Visit(pc, m.Steps)
		if err := e.Loop.Visit(s, pc); err != nil {
			e.pendLoop = err
		}
	}
	e.K.OnBoundary = e.boundaryHook
	return e
}

// boundaryHook implements symbolic interrupts (§3.3): at each return from a
// kernel API (equivalently, just before the next kernel interaction), fork
// a sibling in which the device's interrupt fires there. Injection at entry
// start covers the remaining equivalence class (before the first API call).
func (e *Engine) boundaryHook(s *vm.State, api, when string) []*vm.State {
	if !e.Opts.SymbolicInterrupts || when != "return" {
		return nil
	}
	ks := kernel.Of(s)
	if !ks.ISRRegistered || s.InInterrupt > 0 {
		return nil
	}
	if s.Meta != nil && s.Meta[metaIntrCount] >= e.Opts.MaxIntrInjections {
		return nil
	}
	alt := e.M.ForkState(s)
	if alt.Meta == nil {
		alt.Meta = make(map[string]uint64)
	}
	alt.Meta[metaIntrCount]++
	alt.Meta[metaInjectISR] = 1
	return []*vm.State{alt}
}

// DefaultRegistry returns the stock simulated registry hive shared by
// engine runs, trace replays, and concrete fuzz executions.
func DefaultRegistry() map[string]uint32 {
	return map[string]uint32{
		"MaximumMulticastList": 4,
		"NetworkAddress":       0,
		"Speed":                100,
		"Duplex":               1,
		"TxRingSize":           8,
		"RxRingSize":           8,
		"SampleRate":           44100,
		"BufferMs":             10,
	}
}

// EffectiveRegistry returns the registry hive the run boots with: defaults
// plus option overrides. Trace files embed it so replays see the same
// configuration.
func (e *Engine) EffectiveRegistry() map[string]uint32 {
	reg := DefaultRegistry()
	for k, v := range e.Opts.Registry {
		reg[k] = v
	}
	return reg
}

// NewBootState builds the state in which the OS just loaded the driver:
// image mapped and granted, kernel booted, registry populated.
func (e *Engine) NewBootState() *vm.State {
	s := e.M.NewRootState()
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{
		Lo: isa.ImageBase, Hi: e.Img.LimitVA(),
		Kind: kernel.RegionImage, Writable: true, Tag: "driver image",
	})
	for k, v := range e.EffectiveRegistry() {
		ks.Registry[k] = v
	}
	s.Kernel = ks
	s.HW = &hw.DeviceState{}
	return s
}

// recordBug deduplicates, solves the input model, and stores a bug.
func (e *Engine) recordBug(s *vm.State, fault *vm.Fault) {
	b := &Bug{
		Class:       checkers.Classify(fault, s),
		Fault:       fault,
		Entry:       s.EntryName,
		StateID:     s.ID,
		ICount:      s.ICount,
		InInterrupt: s.InInterrupt > 0,
	}
	if e.bugKeys[b.Key()] {
		return
	}
	e.bugKeys[b.Key()] = true
	b.Trace = s.Trace.Path()
	b.Trace = append(b.Trace, vm.Event{Kind: vm.EvBug, Seq: s.ICount, PC: fault.PC, Name: b.Class + ": " + fault.Msg})
	model := e.M.Solver.Model(s.Constraints)
	if model == nil {
		model = expr.Assignment{}
	}
	// Complete the model over every symbol on this path (unconstrained
	// symbols get an explicit zero so the trace is fully concrete).
	for _, ev := range b.Trace {
		if ev.Kind == vm.EvNewSym {
			if _, ok := model[ev.Sym]; !ok {
				model[ev.Sym] = 0
			}
			b.Symbols = append(b.Symbols, e.M.Syms.Info(ev.Sym))
		}
	}
	b.Model = model
	e.bugs = append(e.bugs, b)
}

// PhaseResult is what one entry-phase exploration returns.
type PhaseResult struct {
	// Succeeded are exited states whose R0 was StatusSuccess (capped at
	// Opts.KeepStates), used to seed the next phase.
	Succeeded []*vm.State
	// Exited counts all completed paths.
	Exited int
	// BugsFound counts new bugs recorded during the phase.
	BugsFound int
}

// Explore runs all queued states to completion, recording coverage and
// bugs. Initial states must already be pushed (via e.Sched.Push) and set up
// with kernel.Invoke.
func (e *Engine) Explore(entryName string) PhaseResult {
	var res PhaseResult
	bugsBefore := len(e.bugs)
	for e.Sched.Len() > 0 && res.Exited < e.Opts.MaxPathsPerEntry {
		if e.Opts.StopAtFirstBug && len(e.bugs) > 0 {
			break
		}
		st := e.Sched.Pop()
		e.runPath(st, entryName, &res)
	}
	// Frontier left over when the path budget is hit is abandoned —
	// bounded-exploration coverage loss, never unsoundness.
	for e.Sched.Len() > 0 {
		st := e.Sched.Pop()
		st.Status = vm.StatusKilled
		e.Loop.Forget(st.ID)
	}
	res.BugsFound = len(e.bugs) - bugsBefore
	return res
}

// runPath steps one state until it terminates or forks; forked siblings go
// back to the scheduler.
func (e *Engine) runPath(st *vm.State, entryName string, res *PhaseResult) {
	// Deferred ISR injection (marked at a boundary crossing).
	if st.Meta != nil && st.Meta[metaInjectISR] == 1 {
		delete(st.Meta, metaInjectISR)
		if !e.K.InjectInterrupt(st) {
			st.Status = vm.StatusKilled
			return
		}
	}
	start := st.ICount
	cur := st
	for cur.Status == vm.StatusRunning {
		if cur.ICount-start >= e.Opts.MaxStepsPerPath {
			cur.Status = vm.StatusKilled
			e.Loop.Forget(cur.ID)
			return
		}
		next, err := e.M.Step(cur)
		if e.pendLoop != nil {
			err = e.pendLoop
			e.pendLoop = nil
			cur.Status = vm.StatusBug
		}
		if err != nil {
			if f, ok := err.(*vm.Fault); ok {
				e.recordBug(cur, f)
			} else {
				e.recordBug(cur, vm.Faultf("engine", cur.PC, "%v", err))
			}
			e.Loop.Forget(cur.ID)
			return
		}
		switch len(next) {
		case 0:
			e.finishPath(cur, res)
			return
		case 1:
			cur = next[0]
		default:
			for _, n := range next[1:] {
				e.Sched.Push(n)
			}
			cur = next[0]
			// Keep running the first child without rescheduling: cheap
			// depth-first descent within the coverage-guided outer loop.
		}
	}
}

func (e *Engine) finishPath(s *vm.State, res *PhaseResult) {
	e.Loop.Forget(s.ID)
	if s.Status != vm.StatusExited {
		return
	}
	e.paths++
	res.Exited++
	status, ok := s.RegConcrete(isa.R0)
	if !ok {
		// A symbolic entry status: concretize for bookkeeping.
		v, err := e.M.Concretize(s, s.Reg(isa.R0), "entry status")
		if err != nil {
			return
		}
		status = v
	}
	// Leak checking at entry exit (failed Initialize / completed Halt).
	if err := e.Leak.CheckEntryExit(s, s.EntryName, status); err != nil {
		if f, ok := err.(*vm.Fault); ok {
			e.recordBug(s, f)
		}
		return
	}
	if status == kernel.StatusSuccess && len(res.Succeeded) < e.Opts.KeepStates*4 {
		res.Succeeded = append(res.Succeeded, s)
	}
}

// InvokeEntry seeds the scheduler with an entry invocation on a fork of
// base, plus (when enabled and registered) a sibling that takes an
// interrupt immediately at entry start.
func (e *Engine) InvokeEntry(base *vm.State, name string, pc uint32, args ...*expr.Expr) {
	st := e.M.ForkState(base)
	e.K.InvokeSym(st, name, pc, args...)
	e.Sched.Push(st)

	if e.Opts.SymbolicInterrupts && kernel.Of(st).ISRRegistered {
		alt := e.M.ForkState(base)
		e.K.InvokeSym(alt, name, pc, args...)
		if alt.Meta == nil {
			alt.Meta = make(map[string]uint64)
		}
		alt.Meta[metaIntrCount] = 1
		alt.Meta[metaInjectISR] = 1
		e.Sched.Push(alt)
	}
}

// Report assembles the session report.
func (e *Engine) Report() *Report {
	r := &Report{
		Driver:        e.Img.Name,
		Bugs:          append([]*Bug(nil), e.bugs...),
		PathsExplored: e.paths,
		StatesForked:  e.M.Forks,
		Instructions:  e.M.Steps,
		BlocksCovered: e.Cov.Blocks(),
		BlocksStatic:  e.Cov.TotalStatic,
		SolverQueries: e.M.Solver.Stats.Queries,
		SymbolsMade:   e.M.Syms.Len(),
	}
	for _, p := range e.Cov.Series() {
		r.CoverageSeries = append(r.CoverageSeries, CoveragePointOut{p.Instructions, p.Blocks})
	}
	return r
}

// Bugs returns the bugs recorded so far.
func (e *Engine) Bugs() []*Bug { return e.bugs }

func (e *Engine) String() string {
	return fmt.Sprintf("ddt engine for %q (%d bugs, %d paths)", e.Img.Name, len(e.bugs), e.paths)
}
