// Package binimg defines the DXE driver binary image format — the
// closed-source artifact DDT consumes. A DXE image carries machine code,
// initialized data, a bss size, an entry point, an import table naming the
// kernel APIs the driver links against, and a PCI device descriptor for the
// fake device that tricks the OS into loading the driver (§4.2 of the
// paper). It deliberately carries no symbol information: DDT must work from
// the binary alone.
package binimg

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// Magic identifies a DXE version-1 image.
const Magic uint32 = 0x31455844 // "DXE1" little-endian

// DeviceClass selects which kernel driver model binds the device.
type DeviceClass uint8

// Device classes understood by the simulated kernel's PnP manager.
const (
	ClassNetwork DeviceClass = iota
	ClassAudio
	ClassOther
	ClassStorage // appended after ClassOther to keep wire values stable
)

func (c DeviceClass) String() string {
	switch c {
	case ClassNetwork:
		return "network"
	case ClassAudio:
		return "audio"
	case ClassStorage:
		return "storage"
	default:
		return "other"
	}
}

// PCIDescriptor is the fake device's configuration-space identity: enough
// for the PnP manager to select this driver and allocate resources, and for
// DDT to expose a symbolic BAR window and interrupt line.
type PCIDescriptor struct {
	VendorID uint16
	DeviceID uint16
	Class    DeviceClass
	BARSize  uint32 // size of the single memory BAR, bytes
	IOPorts  uint16 // number of I/O ports the device claims
	IRQLine  uint8
	Revision uint8
}

// Image is a parsed DXE driver binary.
type Image struct {
	Name    string // driver name (from the .inf equivalent), e.g. "rtl8029"
	Entry   uint32 // absolute VA of DriverEntry after loading at ImageBase
	Text    []byte // machine code, loaded at ImageBase
	Data    []byte // initialized data, loaded after text (8-byte aligned)
	BSSSize uint32 // zero-initialized region after data
	Imports []string
	Device  PCIDescriptor
}

// TextBase returns the VA of the first text byte.
func (im *Image) TextBase() uint32 { return isa.ImageBase }

// DataBase returns the VA of the first data byte.
func (im *Image) DataBase() uint32 {
	return isa.ImageBase + align8(uint32(len(im.Text)))
}

// BSSBase returns the VA of the first bss byte.
func (im *Image) BSSBase() uint32 {
	return im.DataBase() + align8(uint32(len(im.Data)))
}

// LimitVA returns the first VA past the loaded image.
func (im *Image) LimitVA() uint32 {
	return im.BSSBase() + align8(im.BSSSize)
}

// ImportSlot returns the import-table slot for the named API, or -1.
func (im *Image) ImportSlot(name string) int {
	for i, n := range im.Imports {
		if n == name {
			return i
		}
	}
	return -1
}

func align8(v uint32) uint32 { return (v + 7) &^ 7 }

// Marshal serializes the image to its on-disk DXE form.
func (im *Image) Marshal() []byte {
	var buf bytes.Buffer
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w16 := func(v uint16) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	wstr := func(s string) {
		if len(s) > 255 {
			s = s[:255]
		}
		buf.WriteByte(byte(len(s)))
		buf.WriteString(s)
	}

	w32(Magic)
	wstr(im.Name)
	w32(im.Entry)
	w32(uint32(len(im.Text)))
	w32(uint32(len(im.Data)))
	w32(im.BSSSize)
	w32(uint32(len(im.Imports)))
	for _, name := range im.Imports {
		wstr(name)
	}
	w16(im.Device.VendorID)
	w16(im.Device.DeviceID)
	buf.WriteByte(byte(im.Device.Class))
	w32(im.Device.BARSize)
	w16(im.Device.IOPorts)
	buf.WriteByte(im.Device.IRQLine)
	buf.WriteByte(im.Device.Revision)
	buf.Write(im.Text)
	buf.Write(im.Data)
	return buf.Bytes()
}

// Parse deserializes a DXE image, validating structure and limits.
func Parse(b []byte) (*Image, error) {
	r := &reader{b: b}
	if m := r.u32(); m != Magic {
		return nil, fmt.Errorf("binimg: bad magic %#x", m)
	}
	im := &Image{}
	im.Name = r.str()
	im.Entry = r.u32()
	textLen := r.u32()
	dataLen := r.u32()
	im.BSSSize = r.u32()
	nimp := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("binimg: truncated header: %w", r.err)
	}
	const maxSection = 16 << 20
	if textLen > maxSection || dataLen > maxSection || im.BSSSize > maxSection {
		return nil, fmt.Errorf("binimg: section too large (text=%d data=%d bss=%d)", textLen, dataLen, im.BSSSize)
	}
	if textLen%isa.InstrSize != 0 {
		return nil, fmt.Errorf("binimg: text size %d not a multiple of the instruction size", textLen)
	}
	if nimp > isa.MaxImports {
		return nil, fmt.Errorf("binimg: too many imports (%d)", nimp)
	}
	for i := uint32(0); i < nimp; i++ {
		im.Imports = append(im.Imports, r.str())
	}
	im.Device.VendorID = r.u16()
	im.Device.DeviceID = r.u16()
	im.Device.Class = DeviceClass(r.u8())
	im.Device.BARSize = r.u32()
	im.Device.IOPorts = r.u16()
	im.Device.IRQLine = r.u8()
	im.Device.Revision = r.u8()
	im.Text = r.bytes(int(textLen))
	im.Data = r.bytes(int(dataLen))
	if r.err != nil {
		return nil, fmt.Errorf("binimg: truncated image: %w", r.err)
	}
	if im.Entry < isa.ImageBase || im.Entry >= isa.ImageBase+textLen {
		return nil, fmt.Errorf("binimg: entry point %#x outside text", im.Entry)
	}
	if (im.Entry-isa.ImageBase)%isa.InstrSize != 0 {
		return nil, fmt.Errorf("binimg: misaligned entry point %#x", im.Entry)
	}
	return im, nil
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) str() string {
	n := int(r.u8())
	return string(r.bytes(n))
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("unexpected end of image at offset %d", r.off)
	}
}
