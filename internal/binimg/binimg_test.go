package binimg

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// tiny builds a minimal valid image by hand (no assembler dependency, so
// this package's tests stand alone).
func tiny(t *testing.T) *Image {
	t.Helper()
	text := make([]byte, 4*isa.InstrSize)
	isa.Instr{Op: isa.MOVI, Rd: 0, Imm: 7}.Encode(text[0:])
	isa.Instr{Op: isa.CALL, Imm: isa.TrapAddr(0)}.Encode(text[8:])
	isa.Instr{Op: isa.CALL, Imm: isa.ImageBase + 3*isa.InstrSize}.Encode(text[16:])
	isa.Instr{Op: isa.RET}.Encode(text[24:])
	return &Image{
		Name:    "tiny",
		Entry:   isa.ImageBase,
		Text:    text,
		Data:    []byte{1, 2, 3, 4},
		BSSSize: 16,
		Imports: []string{"KeBugCheckEx"},
		Device: PCIDescriptor{
			VendorID: 0x1234, DeviceID: 0x5678, Class: ClassNetwork,
			BARSize: 256, IOPorts: 16, IRQLine: 9, Revision: 2,
		},
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	im := tiny(t)
	got, err := Parse(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != im.Name || got.Entry != im.Entry || got.BSSSize != im.BSSSize {
		t.Errorf("header mismatch: %+v", got)
	}
	if string(got.Text) != string(im.Text) || string(got.Data) != string(im.Data) {
		t.Error("sections differ")
	}
	if got.Device != im.Device {
		t.Errorf("device: %+v vs %+v", got.Device, im.Device)
	}
	if len(got.Imports) != 1 || got.Imports[0] != "KeBugCheckEx" {
		t.Errorf("imports: %v", got.Imports)
	}
}

func TestLayoutAddresses(t *testing.T) {
	im := tiny(t)
	if im.TextBase() != isa.ImageBase {
		t.Errorf("text base %#x", im.TextBase())
	}
	if im.DataBase() != isa.ImageBase+uint32(len(im.Text)) {
		t.Errorf("data base %#x", im.DataBase())
	}
	if im.BSSBase()%8 != 0 || im.BSSBase() < im.DataBase() {
		t.Errorf("bss base %#x", im.BSSBase())
	}
	if im.LimitVA() < im.BSSBase()+im.BSSSize {
		t.Errorf("limit %#x", im.LimitVA())
	}
}

func TestImportSlot(t *testing.T) {
	im := tiny(t)
	if im.ImportSlot("KeBugCheckEx") != 0 {
		t.Error("slot lookup failed")
	}
	if im.ImportSlot("Nope") != -1 {
		t.Error("missing import should be -1")
	}
}

func TestParseRejects(t *testing.T) {
	im := tiny(t)
	good := im.Marshal()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"truncated", func(b []byte) []byte { return b[:12] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		b := append([]byte(nil), good...)
		if _, err := Parse(tc.mutate(b)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Misaligned entry.
	bad := tiny(t)
	bad.Entry = isa.ImageBase + 3
	if _, err := Parse(bad.Marshal()); err == nil {
		t.Error("misaligned entry accepted")
	}
	// Entry outside text.
	bad2 := tiny(t)
	bad2.Entry = isa.ImageBase + 0x10000
	if _, err := Parse(bad2.Marshal()); err == nil {
		t.Error("entry outside text accepted")
	}
	// Text not a multiple of the instruction size.
	bad3 := tiny(t)
	bad3.Text = bad3.Text[:len(bad3.Text)-3]
	if _, err := Parse(bad3.Marshal()); err == nil {
		t.Error("ragged text accepted")
	}
}

func TestAnalyzeCounts(t *testing.T) {
	im := tiny(t)
	info := Analyze(im)
	if info.NumFunctions != 2 { // entry + one local call target
		t.Errorf("functions = %d", info.NumFunctions)
	}
	if info.KernelImports != 1 {
		t.Errorf("imports called = %d", info.KernelImports)
	}
	if info.NumInstructions != 4 || info.CodeSize != 32 {
		t.Errorf("size: %+v", info)
	}
	if info.FileSize != len(im.Marshal()) {
		t.Errorf("file size: %d", info.FileSize)
	}
}

func TestStaticBlocks(t *testing.T) {
	im := tiny(t)
	blocks := StaticBlocks(im)
	if len(blocks) == 0 || blocks[0] != im.TextBase() {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestDisassembleRendersAll(t *testing.T) {
	im := tiny(t)
	dis := Disassemble(im)
	if dis == "" {
		t.Fatal("empty disassembly")
	}
}

// TestQuickParseNeverPanics: the parser must reject arbitrary mutations of
// a valid image gracefully (error, not panic) — a closed-binary consumer
// cannot trust its inputs.
func TestQuickParseNeverPanics(t *testing.T) {
	im := tiny(t)
	good := im.Marshal()
	f := func(pos uint16, val byte, cut uint8) bool {
		b := append([]byte(nil), good...)
		b[int(pos)%len(b)] = val
		if int(cut) < len(b) {
			b = b[:len(b)-int(cut)]
		}
		_, _ = Parse(b) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceClassString(t *testing.T) {
	if ClassNetwork.String() != "network" || ClassAudio.String() != "audio" || ClassOther.String() != "other" {
		t.Error("class names broken")
	}
}
