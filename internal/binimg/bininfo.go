package binimg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Info is the static characterization of a driver binary that regenerates
// Table 1 of the paper: binary file size, code segment size, number of
// functions discovered in the driver, and number of distinct kernel
// functions called. Since images are closed (no symbols), functions are
// recovered the way a binary tool must: the entry point plus every CALL
// target inside the text section.
type Info struct {
	Name            string
	FileSize        int // bytes, marshaled image
	CodeSize        int // bytes, text section
	DataSize        int
	NumInstructions int
	NumFunctions    int // entry + distinct in-text CALL targets
	NumBasicBlocks  int // statically discovered basic blocks
	KernelImports   int // import-table entries actually called from text
}

// Analyze computes Info for an image.
func Analyze(im *Image) Info {
	info := Info{
		Name:            im.Name,
		FileSize:        len(im.Marshal()),
		CodeSize:        len(im.Text),
		DataSize:        len(im.Data) + int(im.BSSSize),
		NumInstructions: len(im.Text) / isa.InstrSize,
	}

	funcs := map[uint32]bool{im.Entry: true}
	calledImports := map[int]bool{}
	leaders := map[uint32]bool{im.TextBase(): true}
	textEnd := im.TextBase() + uint32(len(im.Text))

	for off := 0; off+isa.InstrSize <= len(im.Text); off += isa.InstrSize {
		pc := im.TextBase() + uint32(off)
		in, err := isa.Decode(im.Text[off : off+isa.InstrSize])
		if err != nil {
			continue
		}
		switch {
		case in.Op == isa.CALL:
			if slot, ok := isa.InTrapWindow(in.Imm); ok {
				if slot < len(im.Imports) {
					calledImports[slot] = true
				}
			} else if in.Imm >= im.TextBase() && in.Imm < textEnd {
				funcs[in.Imm] = true
				leaders[in.Imm] = true
			}
			leaders[pc+isa.InstrSize] = true
		case in.Op.IsBranch():
			leaders[in.Imm] = true
			leaders[pc+isa.InstrSize] = true
		case in.Op == isa.JMP:
			leaders[in.Imm] = true
			leaders[pc+isa.InstrSize] = true
		case in.Op == isa.JR, in.Op == isa.CALLR, in.Op == isa.RET, in.Op == isa.HLT:
			leaders[pc+isa.InstrSize] = true
		}
	}

	blocks := 0
	for va := range leaders {
		if va >= im.TextBase() && va < textEnd {
			blocks++
		}
	}
	info.NumFunctions = len(funcs)
	info.NumBasicBlocks = blocks
	info.KernelImports = len(calledImports)
	return info
}

// StaticBlocks returns the sorted list of statically discovered basic-block
// leader addresses, the denominator for the paper's relative-coverage
// figures (Figure 2).
func StaticBlocks(im *Image) []uint32 {
	textEnd := im.TextBase() + uint32(len(im.Text))
	leaders := map[uint32]bool{im.TextBase(): true}
	for off := 0; off+isa.InstrSize <= len(im.Text); off += isa.InstrSize {
		pc := im.TextBase() + uint32(off)
		in, err := isa.Decode(im.Text[off : off+isa.InstrSize])
		if err != nil {
			continue
		}
		if in.Op.IsControlFlow() || in.Op == isa.CALL || in.Op == isa.CALLR {
			leaders[pc+isa.InstrSize] = true
		}
		switch {
		case in.Op.IsBranch() || in.Op == isa.JMP:
			leaders[in.Imm] = true
		case in.Op == isa.CALL:
			if _, trap := isa.InTrapWindow(in.Imm); !trap && in.Imm >= im.TextBase() && in.Imm < textEnd {
				leaders[in.Imm] = true
			}
		}
	}
	out := make([]uint32, 0, len(leaders))
	for va := range leaders {
		if va >= im.TextBase() && va < textEnd {
			out = append(out, va)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Disassemble renders the text section as assembler listing, one
// instruction per line, for trace post-processing and debugging.
func Disassemble(im *Image) string {
	var b strings.Builder
	for off := 0; off+isa.InstrSize <= len(im.Text); off += isa.InstrSize {
		pc := im.TextBase() + uint32(off)
		in, err := isa.Decode(im.Text[off : off+isa.InstrSize])
		if err != nil {
			fmt.Fprintf(&b, "%08x  <invalid: %v>\n", pc, err)
			continue
		}
		fmt.Fprintf(&b, "%08x  %s\n", pc, in.String())
	}
	return b.String()
}
