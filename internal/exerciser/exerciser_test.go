package exerciser

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func runnable(id uint64, pc uint32) *vm.State {
	s := vm.NewState(id)
	s.PC = pc
	return s
}

func TestSchedulerFIFOAndLIFO(t *testing.T) {
	for _, h := range []Heuristic{FIFO{}, LIFO{}} {
		s := NewScheduler(10)
		s.SetHeuristic(h)
		s.Push(runnable(1, 0x100))
		s.Push(runnable(2, 0x200))
		s.Push(runnable(3, 0x300))
		got := s.Pop().ID
		switch h.(type) {
		case FIFO:
			if got != 1 {
				t.Errorf("fifo popped %d", got)
			}
		case LIFO:
			if got != 3 {
				t.Errorf("lifo popped %d", got)
			}
		}
	}
}

func TestSchedulerMinBlockCount(t *testing.T) {
	s := NewScheduler(10)
	s.Record(0x100) // block 0x100 executed once
	s.Record(0x100)
	s.Record(0x200) // block 0x200 executed once
	s.Push(runnable(1, 0x100))
	s.Push(runnable(2, 0x200))
	s.Push(runnable(3, 0x300)) // never executed: most interesting
	if got := s.Pop().ID; got != 3 {
		t.Errorf("min-count popped %d, want 3 (unexecuted block)", got)
	}
	if got := s.Pop().ID; got != 2 {
		t.Errorf("second pop %d, want 2", got)
	}
	if s.HeuristicName() != "min-block-count" {
		t.Errorf("heuristic name %q", s.HeuristicName())
	}
}

func phased(id uint64, pc uint32, phase int) *vm.State {
	s := runnable(id, pc)
	s.Phase = phase
	return s
}

// TestSchedulerPhaseMinBlockCount: the pipelined explorer's heuristic picks
// the earliest phase present, then min-block-count within it.
func TestSchedulerPhaseMinBlockCount(t *testing.T) {
	s := NewScheduler(10)
	s.SetHeuristic(NewPhaseMinBlockCount(s.Counts()))
	s.Record(0x100)
	s.Record(0x100)
	s.Record(0x200)
	s.Push(phased(1, 0x100, 2)) // later phase: deprioritized despite counts
	s.Push(phased(2, 0x100, 1)) // earliest phase, hot block
	s.Push(phased(3, 0x200, 1)) // earliest phase, cooler block: first pick
	s.Push(phased(4, 0x300, 3)) // cold block but latest phase
	for i, want := range []uint64{3, 2, 1, 4} {
		if got := s.Pop().ID; got != want {
			t.Errorf("pop %d = state %d, want %d", i, got, want)
		}
	}
	if s.HeuristicName() != "phase-min-block-count" {
		t.Errorf("heuristic name %q", s.HeuristicName())
	}
}

// TestSchedulerPhaseCounts: the queued-per-phase gauge behind the pipelined
// debug output.
func TestSchedulerPhaseCounts(t *testing.T) {
	s := NewScheduler(10)
	s.Push(phased(1, 0x100, 0))
	s.Push(phased(2, 0x100, 1))
	s.Push(phased(3, 0x200, 1))
	pc := s.PhaseCounts()
	if pc[0] != 1 || pc[1] != 2 {
		t.Errorf("phase counts = %v, want {0:1 1:2}", pc)
	}
	s.Pop()
	if total := s.Len(); total != 2 {
		t.Errorf("len after pop = %d", total)
	}
}

// TestSchedulerPushReportsAcceptance: Push must tell the caller whether the
// state landed in the frontier — the pipelined queued ledger depends on it.
func TestSchedulerPushReportsAcceptance(t *testing.T) {
	s := NewScheduler(1)
	if !s.Push(runnable(1, 0)) {
		t.Error("first push rejected")
	}
	if s.Push(runnable(2, 0)) {
		t.Error("over-cap push accepted")
	}
	if s.Push(nil) {
		t.Error("nil push accepted")
	}
	dead := runnable(3, 0)
	dead.Status = vm.StatusKilled
	if s.Push(dead) {
		t.Error("non-runnable push accepted")
	}
}

func TestSchedulerCapDropsStates(t *testing.T) {
	s := NewScheduler(2)
	s.Push(runnable(1, 0))
	s.Push(runnable(2, 0))
	s.Push(runnable(3, 0))
	if s.Len() != 2 || s.Dropped() != 1 {
		t.Errorf("len=%d dropped=%d", s.Len(), s.Dropped())
	}
}

func TestSchedulerIgnoresNonRunnable(t *testing.T) {
	s := NewScheduler(10)
	st := runnable(1, 0)
	st.Status = vm.StatusExited
	s.Push(st)
	s.Push(nil)
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Pop() != nil {
		t.Error("pop of empty queue")
	}
}

func TestCoverageSeries(t *testing.T) {
	c := NewCoverage(10)
	c.Visit(0x100, 5)
	c.Visit(0x100, 6) // revisit: no new point
	c.Visit(0x200, 9)
	if c.Blocks() != 2 {
		t.Errorf("blocks = %d", c.Blocks())
	}
	series := c.Series()
	if len(series) != 2 || series[0].Instructions != 5 || series[1].Blocks != 2 {
		t.Errorf("series = %v", series)
	}
	if c.Relative() != 0.2 {
		t.Errorf("relative = %v", c.Relative())
	}
	if !c.Covered(0x100) || c.Covered(0x300) {
		t.Error("covered-set wrong")
	}
	if got := c.CoveredBlocks(); len(got) != 2 || got[0] != 0x100 {
		t.Errorf("covered blocks = %v", got)
	}
}

func TestCoverageSampleAt(t *testing.T) {
	c := NewCoverage(0)
	c.Visit(1, 10)
	c.Visit(2, 20)
	c.Visit(3, 30)
	cases := []struct {
		at   uint64
		want int
	}{{5, 0}, {10, 1}, {25, 2}, {100, 3}}
	for _, tc := range cases {
		if got := c.SampleAt(tc.at); got != tc.want {
			t.Errorf("SampleAt(%d) = %d, want %d", tc.at, got, tc.want)
		}
	}
	if c.Relative() != 0 {
		t.Error("relative with zero denominator must be 0")
	}
}

// TestQuickCoverageMonotone: the discovery series is nondecreasing in both
// time and block count, whatever the visit order.
func TestQuickCoverageMonotone(t *testing.T) {
	f := func(pcs []uint32) bool {
		c := NewCoverage(len(pcs) + 1)
		for i, pc := range pcs {
			c.Visit(pc, uint64(i))
		}
		s := c.Series()
		for i := 1; i < len(s); i++ {
			if s[i].Instructions < s[i-1].Instructions || s[i].Blocks != s[i-1].Blocks+1 {
				return false
			}
		}
		return c.Blocks() <= len(pcs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSchedulerNeverLoses: every pushed runnable state is eventually
// popped exactly once (cap disabled).
func TestQuickSchedulerNeverLoses(t *testing.T) {
	f := func(n uint8) bool {
		s := NewScheduler(0)
		want := int(n%64) + 1
		for i := 0; i < want; i++ {
			s.Push(runnable(uint64(i+1), uint32(i)*8))
		}
		seen := map[uint64]bool{}
		for s.Len() > 0 {
			st := s.Pop()
			if seen[st.ID] {
				return false
			}
			seen[st.ID] = true
		}
		return len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageConcurrent: the shared coverage recorder must tolerate
// parallel visitors (fuzz workers + engine) without losing blocks or
// corrupting the series. Run under -race this is the data-race check.
func TestCoverageConcurrent(t *testing.T) {
	c := NewCoverage(1024)
	const workers = 8
	const perWorker = 512
	var wg sync.WaitGroup
	novel := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Overlapping pc ranges: every block contended by two workers.
				pc := uint32((w%4)*perWorker + i)
				if c.Visit(pc, uint64(w*perWorker+i)) {
					novel[w]++
				}
				c.Covered(pc)
				_ = c.Blocks()
			}
		}(w)
	}
	wg.Wait()
	want := 4 * perWorker
	if c.Blocks() != want {
		t.Fatalf("blocks = %d, want %d", c.Blocks(), want)
	}
	total := 0
	for _, n := range novel {
		total += n
	}
	if total != want {
		t.Fatalf("novelty credited %d times, want exactly %d (each block once)", total, want)
	}
	series := c.Series()
	if len(series) != want {
		t.Fatalf("series has %d points, want %d", len(series), want)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Instructions < series[i-1].Instructions {
			t.Fatalf("series not ascending at %d", i)
		}
		if series[i].Blocks != series[i-1].Blocks+1 {
			t.Fatalf("series block counts not dense at %d", i)
		}
	}
}
