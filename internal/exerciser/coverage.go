package exerciser

import (
	"sort"
	"sync"
)

// CoveragePoint is one sample of the coverage-versus-time curves of
// Figures 2 and 3. Time is deterministic simulated time: total executed
// instructions across the test session, convertible to "minutes" by a
// fixed calibration constant.
// Points are serialized in fuzz reports and manager trend series, so the
// tags are a stable wire format.
type CoveragePoint struct {
	Instructions uint64 `json:"instructions"`
	Blocks       int    `json:"blocks"`
}

// Coverage tracks the set of distinct basic blocks executed and the
// time series of their discovery. It is safe for concurrent use, so
// parallel fuzz workers and a symbolic engine can share one coverage map.
type Coverage struct {
	mu     sync.Mutex
	seen   map[uint32]bool
	series []CoveragePoint
	// TotalStatic is the denominator for relative coverage (the statically
	// discovered block count of the image).
	TotalStatic int
}

// NewCoverage returns an empty recorder with the given static denominator.
func NewCoverage(totalStatic int) *Coverage {
	return &Coverage{seen: make(map[uint32]bool), TotalStatic: totalStatic}
}

// Visit records a block execution at the given global instruction count,
// sampling the series only when a new block is discovered. It reports
// whether the block was new — the novelty signal coverage-guided corpus
// admission keys on.
func (c *Coverage) Visit(pc uint32, instructions uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[pc] {
		return false
	}
	c.seen[pc] = true
	// Concurrent visitors may present slightly out-of-order instruction
	// counts; clamp so the series stays ascending for SampleAt.
	if n := len(c.series); n > 0 && instructions < c.series[n-1].Instructions {
		instructions = c.series[n-1].Instructions
	}
	c.series = append(c.series, CoveragePoint{Instructions: instructions, Blocks: len(c.seen)})
	return true
}

// Blocks returns the number of distinct blocks covered.
func (c *Coverage) Blocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// Relative returns covered blocks as a fraction of the static total.
func (c *Coverage) Relative() float64 {
	if c.TotalStatic == 0 {
		return 0
	}
	return float64(c.Blocks()) / float64(c.TotalStatic)
}

// Series returns the discovery time series (ascending in time).
func (c *Coverage) Series() []CoveragePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CoveragePoint(nil), c.series...)
}

// Merge folds a batch of covered block leaders into the map at the given
// instruction count, returning how many were new. This is the fleet-merge
// hook: the campaign manager folds each worker's reported block delta into
// one merged map, sampling the series once per batch that added coverage.
func (c *Coverage) Merge(pcs []uint32, instructions uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, pc := range pcs {
		if !c.seen[pc] {
			c.seen[pc] = true
			added++
		}
	}
	if added > 0 {
		if n := len(c.series); n > 0 && instructions < c.series[n-1].Instructions {
			instructions = c.series[n-1].Instructions
		}
		c.series = append(c.series, CoveragePoint{Instructions: instructions, Blocks: len(c.seen)})
	}
	return added
}

// Covered reports whether a specific block leader was executed.
func (c *Coverage) Covered(pc uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen[pc]
}

// CoveredBlocks returns the sorted list of covered block leaders.
func (c *Coverage) CoveredBlocks() []uint32 {
	c.mu.Lock()
	out := make([]uint32, 0, len(c.seen))
	for pc := range c.seen {
		out = append(out, pc)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleAt returns the covered-block count at or before the given
// instruction count (stair-step interpolation of the series).
func (c *Coverage) SampleAt(instructions uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.series {
		if p.Instructions > instructions {
			break
		}
		n = p.Blocks
	}
	return n
}
