// Package exerciser provides DDT's driver-exercising machinery: the
// coverage-guided path scheduler (§4.3's pluggable heuristics, defaulting
// to the EXE-style minimum-basic-block-count heuristic) and the coverage
// recorder behind the paper's Figures 2 and 3.
package exerciser

import (
	"sync"

	"repro/internal/vm"
)

// Heuristic picks the index of the next state to run from the queue.
//
// Pick is always invoked with the scheduler's lock held, so a heuristic
// reading the scheduler's BlockCounts (via the Counts accessor it was
// constructed with) needs no synchronization of its own.
type Heuristic interface {
	// Pick returns the index of the state to schedule next.
	Pick(queue []*vm.State) int
	// Name identifies the heuristic in reports.
	Name() string
}

// Scheduler maintains the frontier of runnable execution states and a
// global per-block execution count shared by the heuristic. It is safe for
// concurrent use: parallel exploration workers Push forked siblings, Pop
// their next state, and Record block executions from many goroutines; one
// mutex guards the queue, the counts, and heuristic selection together, so
// a heuristic sees a consistent snapshot while picking.
type Scheduler struct {
	mu        sync.Mutex
	queue     []*vm.State
	heuristic Heuristic
	// blockCounts is the global execution counter per basic block leader.
	blockCounts map[uint32]uint64
	// MaxStates caps the frontier; beyond it, newly forked states are
	// dropped (coverage loss, never unsoundness). Set before use.
	MaxStates int
	// dropped counts states discarded due to the cap.
	dropped uint64
}

// NewScheduler returns a scheduler with the default coverage heuristic.
func NewScheduler(maxStates int) *Scheduler {
	s := &Scheduler{
		blockCounts: make(map[uint32]uint64),
		MaxStates:   maxStates,
	}
	s.heuristic = &MinBlockCount{counts: s.blockCounts}
	return s
}

// SetHeuristic swaps the scheduling heuristic (they are pluggable and can
// be chosen per driver, §4.3). Not safe to call while exploration runs.
func (s *Scheduler) SetHeuristic(h Heuristic) { s.heuristic = h }

// HeuristicName returns the active heuristic's name.
func (s *Scheduler) HeuristicName() string { return s.heuristic.Name() }

// Push queues a runnable state. It reports whether the state was accepted:
// false means the MaxStates cap dropped it (the pipelined explorer keeps a
// per-phase queued ledger and must know). Existing callers may ignore the
// result.
func (s *Scheduler) Push(st *vm.State) bool {
	if st == nil || st.Status != vm.StatusRunning {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.MaxStates > 0 && len(s.queue) >= s.MaxStates {
		s.dropped++
		return false
	}
	s.queue = append(s.queue, st)
	return true
}

// Pop removes and returns the next state per the heuristic, or nil when
// the frontier is empty.
func (s *Scheduler) Pop() *vm.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	i := s.heuristic.Pick(s.queue)
	st := s.queue[i]
	s.queue[i] = s.queue[len(s.queue)-1]
	s.queue[len(s.queue)-1] = nil
	s.queue = s.queue[:len(s.queue)-1]
	return st
}

// Len returns the frontier size.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Dropped returns how many states the MaxStates cap discarded.
func (s *Scheduler) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Record notes that a basic block executed (fed by the machine's OnBlock,
// possibly from many workers at once).
func (s *Scheduler) Record(pc uint32) {
	s.mu.Lock()
	s.blockCounts[pc]++
	s.mu.Unlock()
}

// BlockCount returns the global execution count of one block leader.
func (s *Scheduler) BlockCount(pc uint32) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blockCounts[pc]
}

// Counts exposes the per-block execution counters for custom heuristics.
// The map must only be read from Heuristic.Pick (which runs under the
// scheduler's lock).
func (s *Scheduler) Counts() map[uint32]uint64 { return s.blockCounts }

// PhaseCounts returns how many queued states belong to each workload phase
// (states carry their phase tag; see vm.State.Phase). The pipelined
// explorer's debug gauges read this.
func (s *Scheduler) PhaseCounts() map[int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int)
	for _, st := range s.queue {
		out[st.Phase]++
	}
	return out
}

// MinBlockCount is the default heuristic: schedule the state whose current
// block has been executed the fewest times globally. It naturally avoids
// states stuck in polling loops — the exact rationale of §4.3.
type MinBlockCount struct {
	counts map[uint32]uint64
}

// NewMinBlockCount builds the default heuristic over a scheduler's counts
// (see Scheduler.Counts).
func NewMinBlockCount(counts map[uint32]uint64) *MinBlockCount {
	return &MinBlockCount{counts: counts}
}

// Name implements Heuristic.
func (*MinBlockCount) Name() string { return "min-block-count" }

// Pick implements Heuristic.
func (h *MinBlockCount) Pick(queue []*vm.State) int {
	best := 0
	bestCount := h.counts[queue[0].PC]
	for i := 1; i < len(queue); i++ {
		if c := h.counts[queue[i].PC]; c < bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// PhaseMinBlockCount is the pipelined explorer's heuristic over a
// mixed-phase frontier: prefer the EARLIEST workload phase present in the
// queue, breaking ties with the min-block-count rule within that phase.
// Earliest-first keeps the pipeline shallow and bounds frontier memory: the
// only cross-phase fan-out is promotion (capped at KeepStates per phase),
// so the frontier holds the fork tail of one draining phase plus a bounded
// seed set for its successors, instead of deep stacks of half-finished
// phases. Pipelining still happens exactly where the barrier used to stall:
// when the earliest phase has fewer runnable states than workers, the
// spare workers pick up later-phase work instead of idling.
type PhaseMinBlockCount struct {
	counts map[uint32]uint64
	// ranks maps a phase index to its scheduling weight. nil (or an
	// out-of-range phase) weighs a phase by its own index — the linear
	// plan's ordering. Scenario graphs pass depth ranks so alternative
	// branches at equal depth compete at equal weight.
	ranks []int
}

// NewPhaseMinBlockCount builds the phase-weighted heuristic over a
// scheduler's counts (see Scheduler.Counts).
func NewPhaseMinBlockCount(counts map[uint32]uint64) *PhaseMinBlockCount {
	return &PhaseMinBlockCount{counts: counts}
}

// NewPhaseRankMinBlockCount builds the phase-weighted heuristic with an
// explicit phase→rank table (see PhaseMinBlockCount.ranks).
func NewPhaseRankMinBlockCount(counts map[uint32]uint64, ranks []int) *PhaseMinBlockCount {
	return &PhaseMinBlockCount{counts: counts, ranks: ranks}
}

// Name implements Heuristic.
func (*PhaseMinBlockCount) Name() string { return "phase-min-block-count" }

func (h *PhaseMinBlockCount) rank(phase int) int {
	if phase >= 0 && phase < len(h.ranks) {
		return h.ranks[phase]
	}
	return phase
}

// Pick implements Heuristic.
func (h *PhaseMinBlockCount) Pick(queue []*vm.State) int {
	best := 0
	bestRank := h.rank(queue[0].Phase)
	bestCount := h.counts[queue[0].PC]
	for i := 1; i < len(queue); i++ {
		r, c := h.rank(queue[i].Phase), h.counts[queue[i].PC]
		if r < bestRank || (r == bestRank && c < bestCount) {
			best, bestRank, bestCount = i, r, c
		}
	}
	return best
}

// FIFO explores states breadth-first; useful as an ablation baseline.
type FIFO struct{}

// Name implements Heuristic.
func (FIFO) Name() string { return "fifo" }

// Pick implements Heuristic.
func (FIFO) Pick(queue []*vm.State) int { return 0 }

// LIFO explores depth-first; another ablation baseline.
type LIFO struct{}

// Name implements Heuristic.
func (LIFO) Name() string { return "lifo" }

// Pick implements Heuristic.
func (LIFO) Pick(queue []*vm.State) int { return len(queue) - 1 }
