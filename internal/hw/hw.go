// Package hw implements DDT's fully symbolic hardware (§3.3, §4.1.4): a
// fake PCI device whose descriptor tricks the PnP manager into loading the
// driver under test, whose register reads (memory-mapped or port I/O)
// return fresh unconstrained symbolic values, and whose register writes are
// discarded. No real device and no device model is needed — symbolic reads
// make the driver explore every path its hardware could ever (or could
// never, for buggy silicon) take.
//
// Next to the symbolic mode lives a concrete-feed mode (ConcreteDevice): the
// same fake device with register reads answered from a replayable FeedSource
// stream instead of fresh symbols. The coverage-guided fuzzer drives drivers
// through it orders of magnitude faster than symbolic execution, at the cost
// of exploring one concrete path per feed.
package hw

import (
	"fmt"

	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/vm"
)

// DeviceState is the tiny per-path device state (vm.Forkable). A symbolic
// device is almost stateless — writes are discarded — but we track the
// counts for traces and the interrupt line for the injection policy.
type DeviceState struct {
	RegReads   uint64
	RegWrites  uint64
	PortReads  uint64
	PortWrites uint64
	// Removed is set when the workload surprise-removes the device. From
	// then on every register read — MMIO or port, symbolic or concrete-feed
	// mode — returns all-ones, exactly what the PCI bus returns for a
	// vanished function; writes are discarded as always. The counters and
	// the recent-write window keep accounting so post-mortems still work.
	Removed bool
	// LastWrites keeps the most recent few register writes for bug-report
	// post-mortems ("the trace contained no writes to the interrupt
	// control register", §5.1).
	LastWrites []RegWrite
}

// RegWrite records one discarded device-register write.
type RegWrite struct {
	Addr uint32
	Port bool
	Seq  uint64
}

// Fork implements vm.Forkable.
func (d *DeviceState) Fork() vm.Forkable {
	n := *d
	n.LastWrites = append([]RegWrite(nil), d.LastWrites...)
	return &n
}

// Of extracts the device state attached to a vm state, creating it lazily.
func Of(s *vm.State) *DeviceState {
	if s.HW == nil {
		s.HW = &DeviceState{}
	}
	return s.HW.(*DeviceState)
}

// SymbolicDevice is the session-wide fake device bound to one driver image.
type SymbolicDevice struct {
	Desc binimg.PCIDescriptor
	// FreshSymbol mints provenance-tracked symbols; wired by the engine.
	FreshSymbol func(s *vm.State, name string, origin expr.Origin) *expr.Expr
}

// New builds a symbolic device from the image's PCI descriptor.
func New(desc binimg.PCIDescriptor) *SymbolicDevice {
	return &SymbolicDevice{Desc: desc}
}

// Attach installs the device's MMIO and port hooks on the machine.
func (d *SymbolicDevice) Attach(m *vm.Machine) {
	if d.FreshSymbol == nil {
		d.FreshSymbol = func(s *vm.State, name string, origin expr.Origin) *expr.Expr {
			return m.Syms.Fresh(name, origin, s.PC, s.ICount)
		}
	}
	m.ReadDevice = d.readMMIO
	m.WriteDevice = d.writeMMIO
	m.ReadPort = d.readPort
	m.WritePort = d.writePort
}

func (d *SymbolicDevice) readMMIO(s *vm.State, addr, size uint32) *expr.Expr {
	ds := Of(s)
	ds.RegReads++
	if ds.Removed {
		return removedRead(size)
	}
	sym := d.FreshSymbol(s, fmt.Sprintf("hw_mmio_%#x", addr-isa.MMIOBase), expr.OriginHardware)
	return maskForSize(sym, size)
}

// removedRead is the all-ones value a read of a surprise-removed device
// returns, masked to the access width. Deliberately concrete in both
// device modes: post-removal hardware has exactly one behaviour.
func removedRead(size uint32) *expr.Expr {
	switch size {
	case 1:
		return expr.Const(0xFF)
	case 2:
		return expr.Const(0xFFFF)
	default:
		return expr.Const(0xFFFFFFFF)
	}
}

// deviceWriteMMIO discards an MMIO register write, keeping the accounting
// (counters, recent-write window, trace event) shared by the symbolic and
// concrete-feed device modes — bug post-mortems rely on it being identical.
func deviceWriteMMIO(s *vm.State, addr uint32) {
	ds := Of(s)
	ds.RegWrites++
	ds.recordWrite(RegWrite{Addr: addr - isa.MMIOBase, Seq: s.ICount})
	s.Trace.Append(vm.Event{
		Kind: vm.EvDevice, Seq: s.ICount, PC: s.PC, Addr: addr - isa.MMIOBase,
		Write: true, Name: fmt.Sprintf("hw_mmio_%#x", addr-isa.MMIOBase),
	})
}

// deviceWritePort is deviceWriteMMIO's port-I/O counterpart.
func deviceWritePort(s *vm.State, port uint32) {
	ds := Of(s)
	ds.PortWrites++
	ds.recordWrite(RegWrite{Addr: port, Port: true, Seq: s.ICount})
	s.Trace.Append(vm.Event{
		Kind: vm.EvDevice, Seq: s.ICount, PC: s.PC, Addr: port,
		Write: true, Name: fmt.Sprintf("hw_port_%#x", port),
	})
}

func (d *SymbolicDevice) writeMMIO(s *vm.State, addr, size uint32, v *expr.Expr) {
	deviceWriteMMIO(s, addr)
}

func (d *SymbolicDevice) readPort(s *vm.State, port uint32) *expr.Expr {
	ds := Of(s)
	ds.PortReads++
	if ds.Removed {
		return removedRead(2)
	}
	return expr.ZeroExt16(d.FreshSymbol(s, fmt.Sprintf("hw_port_%#x", port), expr.OriginHardware))
}

func (d *SymbolicDevice) writePort(s *vm.State, port uint32, v *expr.Expr) {
	deviceWritePort(s, port)
}

func (ds *DeviceState) recordWrite(w RegWrite) {
	const keep = 32
	ds.LastWrites = append(ds.LastWrites, w)
	if len(ds.LastWrites) > keep {
		ds.LastWrites = ds.LastWrites[len(ds.LastWrites)-keep:]
	}
}

// WroteRegister reports whether the path ever wrote the given device
// register (used by bug analysis: "no writes to the interrupt control
// register ⇒ interrupts were never enabled").
func (ds *DeviceState) WroteRegister(off uint32) bool {
	for _, w := range ds.LastWrites {
		if !w.Port && w.Addr == off {
			return true
		}
	}
	return false
}

func maskForSize(e *expr.Expr, size uint32) *expr.Expr {
	switch size {
	case 1:
		return expr.ZeroExt8(e)
	case 2:
		return expr.ZeroExt16(e)
	default:
		return e
	}
}
