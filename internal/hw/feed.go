package hw

import (
	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/vm"
)

// FeedSource supplies concrete values for device register reads. It is the
// concrete counterpart of SymbolicDevice's fresh-symbol minting: where the
// symbolic device answers a read with an unconstrained symbol, a feed-backed
// device answers it with the next value of a replayable stream. The fuzzing
// subsystem implements this with a mutated byte feed; a replay could
// implement it with recorded register values.
type FeedSource interface {
	// ReadRegister returns the concrete value for one device-register read.
	// port distinguishes port I/O from MMIO; addr is the register offset
	// (MMIO) or port number; size is the access width in bytes (port reads
	// are always 2).
	ReadRegister(port bool, addr, size uint32) uint32
}

// ConcreteDevice is the feed-driven concrete mode of the fake PCI device:
// register reads are answered from a FeedSource, register writes are
// discarded exactly as in symbolic mode. Device-state accounting (read and
// write counters, the recent-write window used by bug post-mortems) is kept
// identical to SymbolicDevice, so checkers and analyses behave the same in
// both modes.
//
// Forkable audit note: the per-path DeviceState forks with the vm.State,
// but the feed CURSOR deliberately does not live here — it belongs to the
// FeedSource (the fuzz executor), because one execution is one feed
// regardless of how often the state forks mid-path. Anything that
// snapshots a mid-workload state for later resumption must therefore
// capture the cursor alongside the state; the persistent-mode executor
// records the semantic word/fork/IRQ consumption counts in its snapshots
// (fuzz/snapshot.go) for exactly this reason.
type ConcreteDevice struct {
	Desc binimg.PCIDescriptor
	Src  FeedSource
}

// NewConcrete builds a concrete-feed device from the image's PCI descriptor.
func NewConcrete(desc binimg.PCIDescriptor, src FeedSource) *ConcreteDevice {
	return &ConcreteDevice{Desc: desc, Src: src}
}

// Attach installs the device's MMIO and port hooks on the machine.
func (d *ConcreteDevice) Attach(m *vm.Machine) {
	m.ReadDevice = d.readMMIO
	m.WriteDevice = d.writeMMIO
	m.ReadPort = d.readPort
	m.WritePort = d.writePort
}

func (d *ConcreteDevice) readMMIO(s *vm.State, addr, size uint32) *expr.Expr {
	ds := Of(s)
	ds.RegReads++
	if ds.Removed {
		// Removed hardware has exactly one behaviour; the feed is NOT
		// consumed, so cursor accounting matches the symbolic engine's
		// injection sites (no symbol is minted there either).
		return removedRead(size)
	}
	v := d.Src.ReadRegister(false, addr-isa.MMIOBase, size)
	switch size {
	case 1:
		v &= 0xFF
	case 2:
		v &= 0xFFFF
	}
	return expr.Const(v)
}

func (d *ConcreteDevice) writeMMIO(s *vm.State, addr, size uint32, v *expr.Expr) {
	deviceWriteMMIO(s, addr)
}

func (d *ConcreteDevice) readPort(s *vm.State, port uint32) *expr.Expr {
	ds := Of(s)
	ds.PortReads++
	if ds.Removed {
		return removedRead(2)
	}
	return expr.Const(d.Src.ReadRegister(true, port, 2) & 0xFFFF)
}

func (d *ConcreteDevice) writePort(s *vm.State, port uint32, v *expr.Expr) {
	deviceWritePort(s, port)
}
