package hw

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
	"repro/internal/vm"
)

func testMachine(t *testing.T) (*vm.Machine, *SymbolicDevice) {
	t.Helper()
	img, err := asm.Assemble(".entry e\n.text\ne: ret\n")
	if err != nil {
		t.Fatal(err)
	}
	img.Device = binimg.PCIDescriptor{VendorID: 1, DeviceID: 2, BARSize: 64, IOPorts: 8, IRQLine: 9}
	m := vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	dev := New(img.Device)
	dev.Attach(m)
	return m, dev
}

func TestReadsAreFreshSymbols(t *testing.T) {
	m, _ := testMachine(t)
	s := m.NewRootState()
	a := m.ReadDevice(s, isa.MMIOBase+0x10, 4)
	b := m.ReadDevice(s, isa.MMIOBase+0x10, 4)
	if a.IsConst() || b.IsConst() {
		t.Fatal("device reads must be symbolic")
	}
	if expr.Equal(a, b) {
		t.Error("two reads of the same register must be distinct symbols (hardware may change)")
	}
	if Of(s).RegReads != 2 {
		t.Errorf("read count = %d", Of(s).RegReads)
	}
}

func TestNarrowReadsAreMasked(t *testing.T) {
	m, _ := testMachine(t)
	s := m.NewRootState()
	b := m.ReadDevice(s, isa.MMIOBase, 1)
	// A byte-wide register read can never exceed 0xFF.
	model := expr.Assignment{}
	for _, id := range expr.Syms(b) {
		model[id] = 0xFFFFFFFF
	}
	if v := expr.Eval(b, model); v > 0xFF {
		t.Errorf("byte read evaluates to %#x", v)
	}
	p := m.ReadPort(s, 0x10)
	for _, id := range expr.Syms(p) {
		model[id] = 0xFFFFFFFF
	}
	if v := expr.Eval(p, model); v > 0xFFFF {
		t.Errorf("port read evaluates to %#x", v)
	}
}

func TestWritesAreDiscardedButRecorded(t *testing.T) {
	m, _ := testMachine(t)
	s := m.NewRootState()
	m.WriteDevice(s, isa.MMIOBase+0x20, 4, expr.Const(0xFF))
	m.WritePort(s, 0x07, expr.Const(1))
	ds := Of(s)
	if ds.RegWrites != 1 || ds.PortWrites != 1 {
		t.Errorf("write counts: %+v", ds)
	}
	if !ds.WroteRegister(0x20) {
		t.Error("register write not recorded")
	}
	if ds.WroteRegister(0x24) {
		t.Error("phantom register write")
	}
	// Reading back a written register still yields a fresh symbol: writes
	// are discarded (§3.3).
	v := m.ReadDevice(s, isa.MMIOBase+0x20, 4)
	if v.IsConst() {
		t.Error("write leaked into a read")
	}
}

func TestDeviceStateForks(t *testing.T) {
	m, _ := testMachine(t)
	s := m.NewRootState()
	m.WriteDevice(s, isa.MMIOBase, 4, expr.Const(1))
	child := Of(s).Fork().(*DeviceState)
	child.RegWrites++
	child.LastWrites = append(child.LastWrites, RegWrite{Addr: 0x99})
	if Of(s).RegWrites != 1 {
		t.Error("fork shares counters")
	}
	if Of(s).WroteRegister(0x99) {
		t.Error("fork shares write log")
	}
}

func TestWriteLogBounded(t *testing.T) {
	ds := &DeviceState{}
	for i := 0; i < 100; i++ {
		ds.recordWrite(RegWrite{Addr: uint32(i)})
	}
	if len(ds.LastWrites) > 32 {
		t.Errorf("write log grew to %d", len(ds.LastWrites))
	}
	// The most recent writes are retained.
	if !ds.WroteRegister(99) {
		t.Error("latest write evicted")
	}
}

func TestSymbolProvenance(t *testing.T) {
	m, _ := testMachine(t)
	s := m.NewRootState()
	e := m.ReadDevice(s, isa.MMIOBase+4, 4)
	ids := expr.Syms(e)
	if len(ids) != 1 {
		t.Fatalf("symbols = %v", ids)
	}
	info := m.Syms.Info(ids[0])
	if info.Origin != expr.OriginHardware {
		t.Errorf("origin = %v", info.Origin)
	}
}

// TestDeviceStateForkNoAliasing: forking the device half of a state
// snapshot must deep-copy the recent-write window — a snapshot-then-fork
// execution pattern appends writes on resumed children, and a shared
// backing array would let a child overwrite the frozen snapshot's
// post-mortem evidence.
func TestDeviceStateForkNoAliasing(t *testing.T) {
	parent := &DeviceState{RegReads: 3, PortWrites: 1}
	for i := 0; i < 5; i++ {
		parent.recordWrite(RegWrite{Addr: uint32(i), Seq: uint64(i)})
	}
	before := fmt.Sprintf("%+v", *parent)

	child := parent.Fork().(*DeviceState)
	child.RegReads = 100
	child.LastWrites[0].Addr = 0xDEAD // shared backing array would alias
	for i := 0; i < 40; i++ {
		child.recordWrite(RegWrite{Addr: 0xBEEF, Seq: 1000 + uint64(i)})
	}
	if got := fmt.Sprintf("%+v", *parent); got != before {
		t.Fatalf("mutating the fork changed the parent:\n%s\nvs\n%s", before, got)
	}
	if parent.WroteRegister(0xBEEF) || parent.WroteRegister(0xDEAD) {
		t.Fatal("child writes visible through the parent")
	}
}
