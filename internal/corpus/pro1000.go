package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "intel-pro1000",
		Class: binimg.ClassNetwork,
		ExpectedBugs: []string{
			"resource leak", // memory leak on failed initialization
		},
		FillerFuncs: 510,
		Source:      pro1000Source,
	})
}

// pro1000Source generates the Intel Pro/1000 gigabit NDIS miniport — the
// largest driver of Table 1 (120 KB of code, 525 functions). Table 2 plants
// one memory leak: the transmit descriptor ring is not freed when the
// receive ring allocation fails during initialization.
func pro1000Source(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; Intel Pro/1000 gigabit NDIS miniport (corpus reimplementation)
.name intel-pro1000
.device vendor=0x8086 device=0x100E class=network bar=131072 ports=64 irq=11 rev=2
.import NdisMRegisterMiniport
.import NdisOpenConfiguration
.import NdisReadConfiguration
.import NdisCloseConfiguration
.import NdisAllocateMemoryWithTag
.import NdisFreeMemory
.import NdisMAllocateSharedMemory
.import NdisMFreeSharedMemory
.import NdisMMapIoSpace
.import NdisMRegisterInterrupt
.import NdisMDeregisterInterrupt
.import NdisMInitializeTimer
.import NdisMSetTimer
.import NdisMCancelTimer
.import NdisAllocateSpinLock
.import NdisFreeSpinLock
.import NdisAcquireSpinLock
.import NdisReleaseSpinLock
.import NdisDprAcquireSpinLock
.import NdisDprReleaseSpinLock
.import NdisStallExecution
.import NdisReadNetworkAddress
.import NdisWriteErrorLogEntry
.import NdisGetCurrentSystemTime
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    call e1k_selftest
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0
    addi sp, sp, -20          ; [0]=status [4]=cfg [8]=param [12]=tmp [16]=tmp2
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    bne  r12, r10, e1k_fail_bare
    ; registry: TxRingSize, RxRingSize, Speed, Duplex
    call e1k_read_cfg_tx
    call e1k_read_cfg_rx
    call e1k_read_cfg_speed
    call e1k_read_cfg_duplex
    ; clamp the (symbolic) tx ring size to the hardware maximum
    movi r4, g_txring_size
    ldw  r4, [r4+0]
    movi r12, 64
    bltu r4, r12, e1k_tx_ok
    movi r4, 64
    movi r5, g_txring_size
    stw  [r5+0], r4
e1k_tx_ok:
    ; EEPROM checksum: 16 words over port I/O
    movi r5, 0
    movi r6, 0
e1k_eeprom:
    movi r12, 16
    bgeu r5, r12, e1k_eeprom_done
    movi r1, 0x14
    out  r1, r5               ; select word
    in   r7, r1
    add  r6, r6, r7
    addi r5, r5, 1
    jmp  e1k_eeprom
e1k_eeprom_done:
    movi r12, g_eeprom_sum
    stw  [r12+0], r6
    ; transmit descriptor ring
    mov  r0, r11
    movi r1, 2048
    movi r2, 1
    addi r3, sp, 12
    push r10
    addi r12, sp, 20
    stw  [sp+0], r12
    call NdisMAllocateSharedMemory
    pop  r12
    bne  r0, r10, e1k_fail_close
    ldw  r6, [sp+12]
    movi r5, g_txring
    stw  [r5+0], r6
    ; receive descriptor ring
    mov  r0, r11
    movi r1, 2048
    movi r2, 1
    addi r3, sp, 12
    push r10
    addi r12, sp, 20
    stw  [sp+0], r12
    call NdisMAllocateSharedMemory
    pop  r12
    beq  r0, r10, e1k_rx_ok
    ; rx ring allocation failed:
%s
e1k_rx_ok:
    ldw  r6, [sp+12]
    movi r5, g_rxring
    stw  [r5+0], r6
    ; map the 128KB register window
    addi r0, sp, 12
    mov  r1, r11
    movi r2, 0
    movi r3, 131072
    call NdisMMapIoSpace
    ldw  r6, [sp+12]
    movi r5, g_mmio
    stw  [r5+0], r6
    ; reset the MAC and wait for auto-negotiation status
    movi r7, 0x00000000       ; CTRL offset
    add  r7, r6, r7
    movi r8, 0x04000000       ; RST
    stw  [r7+0], r8
    movi r0, 10
    call NdisStallExecution
    ldw  r8, [r6+8]           ; STATUS (symbolic hardware)
    movi r12, g_link
    andi r8, r8, 3
    stw  [r12+0], r8
    ; spinlock, interrupt, watchdog
    movi r0, g_lock
    call NdisAllocateSpinLock
    movi r0, g_intr
    mov  r1, r11
    movi r2, 11
    movi r3, 5
    call NdisMRegisterInterrupt
    movi r0, g_timer
    mov  r1, r11
    movi r2, TimerFunc
    movi r3, 0
    call NdisMInitializeTimer
    movi r12, g_timer_inited
    movi r5, 1
    stw  [r12+0], r5
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 20
    pop  lr
    movi r0, 0
    ret

e1k_fail_free_tx:
    mov  r0, r11
    movi r1, 2048
    movi r2, 1
    movi r12, g_txring
    ldw  r3, [r12+0]
    push r3
    call NdisMFreeSharedMemory
    pop  r3
e1k_fail_close:
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
e1k_fail_bare:
    addi sp, sp, 20
    pop  lr
    movi r0, 0xC0000001
    ret

; buggy-only: forgets the tx ring
e1k_leak_tx:
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 20
    pop  lr
    movi r0, 0xC0000001
    ret

; registry helpers (each reads one value into its global)
e1k_read_cfg_tx:
    push lr
    addi sp, sp, -12          ; local frame: [0]=status [4]=param
    mov  r0, sp
    addi r1, sp, 4
    ldw  r2, [sp+20]          ; caller's [sp+4] = cfg handle
    movi r3, cfg_tx_name
    call NdisReadConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    bne  r12, r10, e1k_rct_out
    ldw  r4, [sp+4]
    ldw  r4, [r4+4]
    movi r5, g_txring_size
    stw  [r5+0], r4
e1k_rct_out:
    addi sp, sp, 12
    pop  lr
    ret
e1k_read_cfg_rx:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    ldw  r2, [sp+20]
    movi r3, cfg_rx_name
    call NdisReadConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    bne  r12, r10, e1k_rcr_out
    ldw  r4, [sp+4]
    ldw  r4, [r4+4]
    movi r5, g_rxring_size
    stw  [r5+0], r4
e1k_rcr_out:
    addi sp, sp, 12
    pop  lr
    ret
e1k_read_cfg_speed:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    ldw  r2, [sp+20]
    movi r3, cfg_speed_name
    call NdisReadConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    bne  r12, r10, e1k_rcs_out
    ldw  r4, [sp+4]
    ldw  r4, [r4+4]
    movi r5, g_speed
    stw  [r5+0], r4
e1k_rcs_out:
    addi sp, sp, 12
    pop  lr
    ret
e1k_read_cfg_duplex:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    ldw  r2, [sp+20]
    movi r3, cfg_duplex_name
    call NdisReadConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    bne  r12, r10, e1k_rcd_out
    ldw  r4, [sp+4]
    ldw  r4, [r4+4]
    movi r5, g_duplex
    stw  [r5+0], r4
e1k_rcd_out:
    addi sp, sp, 12
    pop  lr
    ret

; ---------------------------------------------------------------
; Send(adapter, packet) -> status
; ---------------------------------------------------------------
Send:
    push lr
    ldw  r2, [r1+0]
    ldw  r3, [r1+4]
    movi r12, 14
    bgeu r3, r12, e1k_send_ok
    pop  lr
    movi r0, 0xC0000001
    ret
e1k_send_ok:
    movi r0, g_lock
    call NdisAcquireSpinLock
    ; write a tx descriptor into the ring
    movi r4, g_txring
    ldw  r4, [r4+0]
    movi r5, g_txhead
    ldw  r6, [r5+0]
    andi r6, r6, 15           ; ring of 16 descriptors
    shli r7, r6, 3
    add  r7, r4, r7
    stw  [r7+0], r2           ; buffer address
    stw  [r7+4], r3           ; length
    addi r6, r6, 1
    stw  [r5+0], r6
    movi r0, g_lock
    call NdisReleaseSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; QueryInformation / SetInformation
; ---------------------------------------------------------------
Query:
    push lr
    movi r12, 0x00010101
    beq  r1, r12, gq_supported
    movi r12, 0x00010102
    beq  r1, r12, gq_hwstatus
    movi r12, 0x00010106
    beq  r1, r12, gq_framesize
    movi r12, 0x00010107
    beq  r1, r12, gq_speed
    movi r12, 0x01010101
    beq  r1, r12, gq_mac
    movi r12, 0x01010102
    beq  r1, r12, gq_mac
    pop  lr
    movi r0, 0xC0010017
    ret
gq_supported:
    movi r4, 0x00010101
    stw  [r2+0], r4
    movi r4, 0x00010106
    stw  [r2+4], r4
    movi r4, 0x00010107
    stw  [r2+8], r4
    pop  lr
    movi r0, 0
    ret
gq_hwstatus:
    movi r4, g_link
    ldw  r4, [r4+0]
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
gq_framesize:
    movi r4, 1514
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
gq_speed:
    movi r4, g_speed
    ldw  r4, [r4+0]
    muli r4, r4, 10000
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
gq_mac:
    movi r4, g_macaddr
    ldw  r5, [r4+0]
    stw  [r2+0], r5
    ldh  r5, [r4+4]
    sth  [r2+4], r5
    pop  lr
    movi r0, 0
    ret

Set:
    push lr
    movi r12, 0x0001010E
    beq  r1, r12, gs_filter
    movi r12, 0x0001010F
    beq  r1, r12, gs_lookahead
    pop  lr
    movi r0, 0xC0010017
    ret
gs_filter:
    ldw  r4, [r2+0]
    movi r5, g_filter
    stw  [r5+0], r4
    pop  lr
    movi r0, 0
    ret
gs_lookahead:
    ldw  r4, [r2+0]
    movi r5, g_lookahead
    stw  [r5+0], r4
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    mov  r11, r0
    movi r0, g_intr
    call NdisMDeregisterInterrupt
    addi sp, sp, -4
    movi r0, g_timer
    mov  r1, sp
    call NdisMCancelTimer
    addi sp, sp, 4
    mov  r0, r11
    movi r1, 2048
    movi r2, 1
    movi r12, g_rxring
    ldw  r3, [r12+0]
    push r3
    call NdisMFreeSharedMemory
    pop  r3
    mov  r0, r11
    movi r1, 2048
    movi r2, 1
    movi r12, g_txring
    ldw  r3, [r12+0]
    push r3
    call NdisMFreeSharedMemory
    pop  r3
    movi r0, g_lock
    call NdisFreeSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; ISR / watchdog
; ---------------------------------------------------------------
Isr:
    push lr
    movi r4, g_mmio
    ldw  r4, [r4+0]
    movi r12, 0
    beq  r4, r12, e1k_isr_out
    ldw  r2, [r4+0xC0]        ; ICR (symbolic)
    andi r3, r2, 1
    beq  r3, r12, e1k_isr_out
    movi r4, g_timer_inited
    ldw  r4, [r4+0]
    beq  r4, r12, e1k_isr_out
    movi r0, g_timer
    movi r1, 5
    call NdisMSetTimer
e1k_isr_out:
    pop  lr
    movi r0, 0
    ret

HandleInt:
    movi r0, 0
    ret

TimerFunc:
    push lr
    movi r0, g_lock
    call NdisDprAcquireSpinLock
    movi r4, g_mmio
    ldw  r4, [r4+0]
    movi r12, 0
    beq  r4, r12, e1k_tmr_unlock
    ldw  r5, [r4+8]
    movi r12, g_link
    andi r5, r5, 3
    stw  [r12+0], r5
e1k_tmr_unlock:
    movi r0, g_lock
    call NdisDprReleaseSpinLock
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:          .word Initialize, Send, Query, Set, Halt, Isr, HandleInt
cfg_tx_name:    .asciz "TxRingSize"
cfg_rx_name:    .asciz "RxRingSize"
cfg_speed_name: .asciz "Speed"
cfg_duplex_name: .asciz "Duplex"
g_macaddr:      .word 0xA2001B00, 0x0000C4D5
g_txring:       .word 0
g_rxring:       .word 0
g_mmio:         .word 0
g_txring_size:  .word 0
g_rxring_size:  .word 0
g_speed:        .word 0
g_duplex:       .word 0
g_eeprom_sum:   .word 0
g_link:         .word 0
g_filter:       .word 0
g_lookahead:    .word 0
g_txhead:       .word 0
g_timer_inited: .word 0
g_lock:         .space 8
g_timer:        .space 16
g_intr:         .space 16
`,
		// Bug 12: the buggy build forgets to free the tx descriptor ring
		// when the rx ring allocation fails.
		pick(buggy, "    jmp  e1k_leak_tx", "    jmp  e1k_fail_free_tx"),
		filler("e1k", 510, 5),
	)
}
