package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "ensoniq-audiopci",
		Class: binimg.ClassAudio,
		ExpectedBugs: []string{
			"segmentation fault", // NULL from ExAllocatePoolWithTag used on error path
			"segmentation fault", // NULL sync after PcNewInterruptSync failure
			"race condition",     // init-routine race with the ISR
			"race condition",     // playback races with interrupts
		},
		FillerFuncs: 205,
		Source:      ensoniqSource,
	})
}

// ensoniqSource generates the Ensoniq AudioPCI (ES1370) WDM audio driver.
// Table 2 plants two NULL-dereference crashes on allocation/interrupt-sync
// failure paths and two interrupt races.
func ensoniqSource(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; Ensoniq AudioPCI (ES1370) WDM/PortCls audio driver (corpus reimplementation)
.name ensoniq-audiopci
.device vendor=0x1274 device=0x5000 class=audio bar=64 ports=64 irq=5 rev=1
.import PcRegisterMiniport
.import PcNewInterruptSync
.import PcRegisterServiceRoutine
.import ExAllocatePoolWithTag
.import ExFreePoolWithTag
.import KeInitializeSpinLock
.import KeAcquireSpinLock
.import KeReleaseSpinLock
.import KeStallExecutionProcessor
.import KeGetCurrentIrql
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call PcRegisterMiniport
    call es_selftest
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0
    addi sp, sp, -8           ; [0]=syncPtr [4]=tmp
    ; adapter context
    movi r0, 0                ; NonPagedPool
    movi r1, 192
    movi r2, 0x31534545
    call ExAllocatePoolWithTag
    movi r10, 0
    bne  r0, r10, es_adapter_ok
    ; allocation failed:
%s
es_adapter_ok:
    movi r5, g_adapter
    stw  [r5+0], r0
    ; sensible defaults in the context block
    movi r5, 44100
    stw  [r0+0], r5
    movi r5, 2
    stw  [r0+4], r5
    ; interrupt sync object
    mov  r4, r0
    mov  r0, sp
    mov  r1, r11
    call PcNewInterruptSync
%s
    ldw  r6, [sp+0]
    movi r5, g_sync
    stw  [r5+0], r6
    ldw  r7, [r6+0]           ; touch the sync object (NULL here = bug 9)
    movi r5, g_syncword
    stw  [r5+0], r7
    ; attach the service routine: interrupts may fire from here on
    ldw  r0, [sp+0]
    movi r1, Isr
    movi r2, 0
    call PcRegisterServiceRoutine
    movi r0, g_lock
    call KeInitializeSpinLock
    ; DMA ring (the ISR consumes it -- bug 10 window until the store)
    movi r0, 0
    movi r1, 512
    movi r2, 0x32534545
    call ExAllocatePoolWithTag
    bne  r0, r10, es_ring_ok
    ; ring allocation failed: undo the adapter block
    movi r12, g_adapter
    ldw  r0, [r12+0]
    movi r1, 0x31534545
    call ExFreePoolWithTag
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret
es_ring_ok:
    movi r5, g_ring
    stw  [r5+0], r0
    addi sp, sp, 8
    pop  lr
    movi r0, 0
    ret

; buggy-only (bug 8): "handles" allocation failure by writing defaults
; through the pointer it just found to be NULL
es_err_defaults:
    movi r5, 8000
    stw  [r0+0], r5           ; NULL dereference
    movi r5, 1
    stw  [r0+4], r5
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret

es_fail_bare:
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret

; fixed-only (bug 9 fix): bail out cleanly when sync creation fails
es_sync_fail:
    movi r12, g_adapter
    ldw  r0, [r12+0]
    movi r1, 0x31534545
    call ExFreePoolWithTag
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Play(adapter, buf, len) -> status
; ---------------------------------------------------------------
Play:
    push lr
    mov  r9, r1               ; sample source
%s
    pop  lr
    movi r0, 0
    ret
es_play_alloc_fail:
    movi r12, g_playing
    movi r10, 0
    stw  [r12+0], r10
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Stop(adapter) -> status
; ---------------------------------------------------------------
Stop:
    push lr
    ; clear the flag before releasing the buffer: the safe order
    movi r12, g_playing
    movi r10, 0
    stw  [r12+0], r10
    movi r12, g_playbuf
    ldw  r4, [r12+0]
    beq  r4, r10, es_stop_done
    stw  [r12+0], r10         ; unpublish before freeing (ISR-safe order)
    mov  r0, r4
    movi r1, 0x33534545
    call ExFreePoolWithTag
es_stop_done:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    movi r10, 0
    movi r12, g_ring
    ldw  r4, [r12+0]
    beq  r4, r10, es_halt_adapter
    stw  [r12+0], r10         ; unpublish before freeing (ISR-safe order)
    mov  r0, r4
    movi r1, 0x32534545
    call ExFreePoolWithTag
es_halt_adapter:
    movi r12, g_adapter
    ldw  r4, [r12+0]
    beq  r4, r10, es_halt_done
    stw  [r12+0], r10
    mov  r0, r4
    movi r1, 0x31534545
    call ExFreePoolWithTag
es_halt_done:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; ISR(adapter)
; ---------------------------------------------------------------
Isr:
    push lr
    movi r1, 0x04             ; interrupt/chip status
    in   r2, r1
    movi r10, 0
    andi r3, r2, 1            ; DAC1 frame interrupt
    beq  r3, r10, es_isr_play
    ; advance the DMA ring position (bug 10: ring may still be NULL
    ; while Initialize is running)
    movi r4, g_ring
    ldw  r4, [r4+0]
%s
    ldw  r5, [r4+0]
    addi r5, r5, 1
    andi r5, r5, 127
    stw  [r4+0], r5
es_isr_play:
    andi r3, r2, 2            ; playback buffer complete
    beq  r3, r10, es_isr_done
    movi r4, g_playing
    ldw  r4, [r4+0]
    beq  r4, r10, es_isr_done
    ; mix the next block (bug 11: playbuf may be NULL in the window
    ; Play opens between setting the flag and storing the buffer)
    movi r5, g_playbuf
    ldw  r5, [r5+0]
%s
    ldb  r6, [r5+0]
    movi r7, g_mixacc
    ldw  r8, [r7+0]
    add  r8, r8, r6
    stw  [r7+0], r8
es_isr_done:
    pop  lr
    movi r0, 0
    ret
es_isr_skip:
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:      .word Initialize, Play, Stop, Isr, Halt
g_adapter:  .word 0
g_sync:     .word 0
g_syncword: .word 0
g_ring:     .word 0
g_playbuf:  .word 0
g_playing:  .word 0
g_mixacc:   .word 0
g_lock:     .space 8
`,
		// Bug 8: buggy build writes defaults through the NULL pointer on
		// the allocation-failure path; fixed build bails out.
		pick(buggy, "    jmp  es_err_defaults", "    jmp  es_fail_bare"),
		// Bug 9: buggy build never checks PcNewInterruptSync's status (and
		// dereferences the NULL sync object below); fixed build bails out.
		pick(buggy, "", `    beq  r0, r10, es_sync_ok
    jmp  es_sync_fail
es_sync_ok:`),
		// Bug 11: buggy Play raises the playing flag before the buffer
		// exists (with kernel calls in between — interrupt windows); fixed
		// Play publishes the buffer first.
		pick(buggy, `    movi r12, g_playing
    movi r5, 1
    stw  [r12+0], r5          ; flag first: wrong order
    movi r0, 5
    call KeStallExecutionProcessor
    movi r0, 0
    movi r1, 256
    movi r2, 0x33534545
    call ExAllocatePoolWithTag
    movi r10, 0
    beq  r0, r10, es_play_alloc_fail
    movi r12, g_playbuf
    stw  [r12+0], r0
    ldb  r4, [r9+0]
    stb  [r0+0], r4`, `    movi r0, 0
    movi r1, 256
    movi r2, 0x33534545
    call ExAllocatePoolWithTag
    movi r10, 0
    beq  r0, r10, es_play_alloc_fail
    movi r12, g_playbuf
    stw  [r12+0], r0          ; publish the buffer first
    ldb  r4, [r9+0]
    stb  [r0+0], r4
    movi r0, 5
    call KeStallExecutionProcessor
    movi r12, g_playing
    movi r5, 1
    stw  [r12+0], r5`),
		// Bug 10 fix: the fixed ISR checks the ring pointer.
		pick(buggy, "", "    beq  r4, r10, es_isr_play"),
		// Bug 11 fix: the fixed ISR checks the play buffer pointer.
		pick(buggy, "", "    beq  r5, r10, es_isr_done"),
		filler("es", 205, 1),
	)
}
