package corpus

import (
	"strings"
	"testing"

	"repro/internal/binimg"
)

func TestAllDriversAssemble(t *testing.T) {
	for _, name := range Names() {
		for _, v := range []Variant{Buggy, Fixed} {
			img, err := Build(name, v)
			if err != nil {
				t.Errorf("%s/%s: %v", name, v, err)
				continue
			}
			if img.Name != name {
				t.Errorf("%s: image name %q", name, img.Name)
			}
		}
	}
}

func TestBuggyAndFixedDiffer(t *testing.T) {
	for _, name := range Names() {
		b := MustBuild(name, Buggy)
		f := MustBuild(name, Fixed)
		if string(b.Text) == string(f.Text) {
			t.Errorf("%s: buggy and fixed variants are identical", name)
		}
	}
}

func TestBuildCacheReturnsSameImage(t *testing.T) {
	a := MustBuild("rtl8029", Buggy)
	b := MustBuild("rtl8029", Buggy)
	if a != b {
		t.Error("cache miss for identical build")
	}
}

func TestUnknownDriver(t *testing.T) {
	if _, err := Build("nonexistent", Buggy); err == nil || !strings.Contains(err.Error(), "unknown driver") {
		t.Errorf("err = %v", err)
	}
	if _, ok := Get("nonexistent"); ok {
		t.Error("Get of unknown driver succeeded")
	}
}

// TestTable1SizeOrdering: the corpus tracks Table 1's size ordering — the
// Intel Pro/1000 is the largest binary, the RTL8029 the smallest, and the
// Pro/1000 has by far the most functions.
func TestTable1SizeOrdering(t *testing.T) {
	info := map[string]binimg.Info{}
	for _, name := range []string{"intel-pro1000", "intel-pro100", "intel-ac97", "ensoniq-audiopci", "amd-pcnet", "rtl8029"} {
		info[name] = binimg.Analyze(MustBuild(name, Buggy))
	}
	if !(info["intel-pro1000"].CodeSize > info["intel-pro100"].CodeSize &&
		info["intel-pro100"].CodeSize > info["amd-pcnet"].CodeSize &&
		info["amd-pcnet"].CodeSize > info["rtl8029"].CodeSize) {
		t.Errorf("size ordering broken: %v", info)
	}
	if info["intel-pro1000"].NumFunctions < 400 {
		t.Errorf("pro/1000 functions = %d, want ~525", info["intel-pro1000"].NumFunctions)
	}
	if info["rtl8029"].NumFunctions > 60 {
		t.Errorf("rtl8029 functions = %d, want ~48", info["rtl8029"].NumFunctions)
	}
	// Paper: 18 KB to 168 KB binaries. Ours track the same order of
	// magnitude and strictly the same ranking.
	if info["rtl8029"].FileSize > 32<<10 || info["intel-pro1000"].FileSize < 100<<10 {
		t.Errorf("size band: rtl=%d pro1000=%d", info["rtl8029"].FileSize, info["intel-pro1000"].FileSize)
	}
}

func TestExpectedBugCountsMatchTable2(t *testing.T) {
	want := map[string]int{
		"rtl8029": 5, "amd-pcnet": 2, "intel-pro1000": 1,
		"intel-pro100": 1, "ensoniq-audiopci": 4, "intel-ac97": 1,
	}
	total := 0
	for name, n := range want {
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if len(spec.ExpectedBugs) != n {
			t.Errorf("%s: %d expected bugs, want %d", name, len(spec.ExpectedBugs), n)
		}
		total += n
	}
	if total != 14 {
		t.Errorf("total = %d, want 14", total)
	}
}

func TestDeviceDescriptors(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		img := MustBuild(name, Buggy)
		if img.Device.Class != spec.Class {
			t.Errorf("%s: class %v, want %v", name, img.Device.Class, spec.Class)
		}
		if img.Device.VendorID == 0 {
			t.Errorf("%s: zero vendor id", name)
		}
	}
}

func TestNamesOrderStable(t *testing.T) {
	a := Names()
	b := Names()
	if len(a) != len(b) {
		t.Fatal("unstable names")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("unstable order")
		}
	}
	if len(a) < 8 {
		t.Errorf("corpus has %d drivers, want >= 8", len(a))
	}
}

func TestVariantString(t *testing.T) {
	if Buggy.String() != "buggy" || Fixed.String() != "fixed" {
		t.Error("variant names")
	}
}
