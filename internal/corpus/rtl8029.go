package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "rtl8029",
		Class: binimg.ClassNetwork,
		ExpectedBugs: []string{
			"resource leak",      // missing NdisCloseConfiguration on failed init
			"memory corruption",  // unchecked MaximumMulticastList registry value
			"race condition",     // interrupt before timer initialization
			"segmentation fault", // unexpected OID in QueryInformation
			"segmentation fault", // unexpected OID in SetInformation
		},
		FillerFuncs: 38,
		Source:      rtl8029Source,
	})
}

// rtl8029Source generates the RTL8029 NE2000-clone NDIS miniport. The five
// Table 2 bugs are planted when v == Buggy; the Fixed variant is the
// minimal correct version of the same code.
func rtl8029Source(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; RTL8029 NE2000-compatible NDIS miniport (corpus reimplementation)
.name rtl8029
.device vendor=0x10EC device=0x8029 class=network bar=32 ports=32 irq=9 rev=0
.import NdisMRegisterMiniport
.import NdisOpenConfiguration
.import NdisReadConfiguration
.import NdisCloseConfiguration
.import NdisAllocateMemoryWithTag
.import NdisFreeMemory
.import NdisMAllocateSharedMemory
.import NdisMFreeSharedMemory
.import NdisAllocateSpinLock
.import NdisFreeSpinLock
.import NdisDprAcquireSpinLock
.import NdisDprReleaseSpinLock
.import NdisMMapIoSpace
.import NdisMRegisterInterrupt
.import NdisMDeregisterInterrupt
.import NdisMInitializeTimer
.import NdisMSetTimer
.import NdisMCancelTimer
.import NdisStallExecution
.import NdisWriteErrorLogEntry
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    call rtl_selftest            ; power-on diagnostics
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0                 ; adapter handle
    addi sp, sp, -16             ; [0]=status [4]=cfg [8]=param [12]=tmp
    ; open the registry configuration
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    beq  r12, r10, init_cfg_ok
    jmp  init_fail_bare
init_cfg_ok:
    ; read MaximumMulticastList
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    movi r3, cfg_mcast_name
    call NdisReadConfiguration
    ldw  r12, [sp+0]
    beq  r12, r10, init_rd_ok
    jmp  init_fail_close
init_rd_ok:
    ldw  r4, [sp+8]
    ldw  r4, [r4+4]              ; IntegerData (symbolic with annotations)
    movi r5, g_mcast_count
    stw  [r5+0], r4
    ; allocate the 8-entry multicast array
    addi r0, sp, 12
    movi r1, 32
    movi r2, 0x38323930
    call NdisAllocateMemoryWithTag
    beq  r0, r10, init_alloc_ok
%s
init_alloc_ok:
    ldw  r6, [sp+12]
    movi r5, g_mcast_buf
    stw  [r5+0], r6
%s
    ; clear multicast entries:  for i < MaximumMulticastList
    movi r7, 0
mcast_loop:
    bgeu r7, r4, mcast_done
    shli r8, r7, 2
    add  r8, r6, r8
    stw  [r8+0], r10             ; no bounds check against the 8-entry array
    addi r7, r7, 1
    jmp  mcast_loop
mcast_done:
    ; DMA ring for receive
    mov  r0, r11
    movi r1, 512
    movi r2, 1
    addi r3, sp, 12
    push r10                     ; arg4: paPtr (reuse tmp slot via stack)
    addi r12, sp, 16             ; address of [sp+12] before push
    stw  [sp+0], r12             ; arg4 = &tmp  (paPtr)
    call NdisMAllocateSharedMemory
    pop  r12
    beq  r0, r10, init_dma_ok
    jmp  init_fail_free_mcast
init_dma_ok:
    ldw  r5, [sp+12]
    movi r12, g_rxring
    stw  [r12+0], r5
    ; map device registers
    addi r0, sp, 12
    mov  r1, r11
    movi r2, 0
    movi r3, 32
    call NdisMMapIoSpace
    ldw  r5, [sp+12]
    movi r12, g_mmio
    stw  [r12+0], r5
    ; transmit lock
    movi r0, g_txlock
    call NdisAllocateSpinLock
    ; hook the interrupt: from here the device may fire
    movi r0, g_intr
    mov  r1, r11
    movi r2, 9
    movi r3, 5
    call NdisMRegisterInterrupt
    ; program the chip (writes are absorbed by symbolic hardware)
    movi r1, 0x00
    movi r2, 0x21                ; CR: stop, page 0
    out  r1, r2
    movi r0, 2
    call NdisStallExecution      ; settle time -- an interrupt window
    ; timer for link watchdog
    movi r0, g_timer
    mov  r1, r11
    movi r2, TimerFunc
    movi r3, 0
    call NdisMInitializeTimer
    movi r12, g_timer_inited
    movi r5, 1
    stw  [r12+0], r5
    ; done: close configuration and report success
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 16
    pop  lr
    movi r0, 0
    ret

init_fail_free_mcast:
    movi r12, g_mcast_buf
    ldw  r0, [r12+0]
    movi r1, 32
    movi r2, 0
    call NdisFreeMemory
init_fail_close:
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
init_fail_bare:
    addi sp, sp, 16
    pop  lr
    movi r0, 0xC0000001
    ret

; buggy variant only: failure path that forgets NdisCloseConfiguration
init_fail_leak:
    addi sp, sp, 16
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Send(adapter, packet) -> status
; ---------------------------------------------------------------
Send:
    push lr
    ldw  r2, [r1+0]              ; data pointer
    ldw  r3, [r1+4]              ; length (symbolic, <= 64)
    movi r12, 14
    bgeu r3, r12, send_len_ok
    pop  lr
    movi r0, 0xC0000001          ; runt frame
    ret
send_len_ok:
    ; copy header bytes into the staging buffer
    movi r4, g_txbuf
    movi r5, 0
send_copy:
    movi r12, 16
    bgeu r5, r12, send_copied
    bgeu r5, r3, send_copied
    add  r6, r2, r5
    ldb  r7, [r6+0]
    add  r8, r4, r5
    stb  [r8+0], r7
    addi r5, r5, 1
    jmp  send_copy
send_copied:
    ; kick the transmitter: length then TX start
    movi r1, 0x05
    out  r1, r3
    movi r1, 0x04
    movi r2, 0x26
    out  r1, r2
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; QueryInformation(adapter, oid, buf, len) -> status
; ---------------------------------------------------------------
Query:
    push lr
    movi r12, 0x00010101         ; OID_GEN_SUPPORTED_LIST
    beq  r1, r12, q_supported
    movi r12, 0x00010102         ; OID_GEN_HARDWARE_STATUS
    beq  r1, r12, q_hwstatus
    movi r12, 0x00010107         ; OID_GEN_LINK_SPEED
    beq  r1, r12, q_speed
    movi r12, 0x01010101         ; OID_802_3_PERMANENT_ADDRESS
    beq  r1, r12, q_mac
    movi r12, 0x01010103         ; OID_802_3_MULTICAST_LIST
    beq  r1, r12, q_mcast
%s
q_supported:
    movi r4, 0x00010101
    stw  [r2+0], r4
    movi r4, 0x00010102
    stw  [r2+4], r4
    movi r4, 0x00010107
    stw  [r2+8], r4
    movi r4, 0x01010101
    stw  [r2+12], r4
    pop  lr
    movi r0, 0
    ret
q_hwstatus:
    movi r4, 0
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
q_speed:
    movi r4, 100000
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
q_mac:
    movi r4, g_macaddr
    ldw  r5, [r4+0]
    stw  [r2+0], r5
    ldh  r5, [r4+4]
    sth  [r2+4], r5
    pop  lr
    movi r0, 0
    ret
q_mcast:
    movi r4, g_mcast_count
    ldw  r5, [r4+0]
    stw  [r2+0], r5
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; SetInformation(adapter, oid, buf, len) -> status
; ---------------------------------------------------------------
Set:
    push lr
    movi r12, 0x0001010E         ; OID_GEN_CURRENT_PACKET_FILTER
    beq  r1, r12, s_filter
    movi r12, 0x0001010F         ; OID_GEN_CURRENT_LOOKAHEAD
    beq  r1, r12, s_lookahead
    movi r12, 0x01010103         ; OID_802_3_MULTICAST_LIST
    beq  r1, r12, s_mcast
%s
s_filter:
    ldw  r4, [r2+0]
    movi r5, g_filter
    stw  [r5+0], r4
    pop  lr
    movi r0, 0
    ret
s_lookahead:
    ldw  r4, [r2+0]
    movi r5, g_lookahead
    stw  [r5+0], r4
    pop  lr
    movi r0, 0
    ret
s_mcast:
    ; copy at most 8 entries from buf
    movi r5, 0
    movi r6, g_mcast_buf
    ldw  r6, [r6+0]
    shri r7, r3, 2               ; entries = len/4
    movi r12, 8
    bltu r7, r12, s_mc_loop
    movi r7, 8
s_mc_loop:
    bgeu r5, r7, s_mc_done
    shli r8, r5, 2
    add  r9, r2, r8
    ldw  r9, [r9+0]
    add  r8, r6, r8
    stw  [r8+0], r9
    addi r5, r5, 1
    jmp  s_mc_loop
s_mc_done:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    mov  r11, r0
    movi r0, g_intr
    call NdisMDeregisterInterrupt
    ; cancel watchdog
    addi sp, sp, -4
    movi r0, g_timer
    mov  r1, sp
    call NdisMCancelTimer
    addi sp, sp, 4
    ; release DMA ring
    mov  r0, r11
    movi r1, 512
    movi r2, 1
    movi r12, g_rxring
    ldw  r3, [r12+0]
    push r3                      ; arg4 = va (pa == va in this kernel)
    call NdisMFreeSharedMemory
    pop  r3
    ; free multicast array
    movi r12, g_mcast_buf
    ldw  r0, [r12+0]
    movi r1, 32
    movi r2, 0
    call NdisFreeMemory
    movi r0, g_txlock
    call NdisFreeSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; ISR(adapter): read ISR register, ack, kick the watchdog
; ---------------------------------------------------------------
Isr:
    push lr
    movi r1, 0x07                ; interrupt status port
    in   r2, r1
    andi r3, r2, 1               ; RX bit
    movi r12, 0
    beq  r3, r12, isr_no_rx
    out  r1, r3                  ; ack
isr_no_rx:
    andi r3, r2, 2               ; link-change bit
    beq  r3, r12, isr_done
%s
    movi r0, g_timer
    movi r1, 10
    call NdisMSetTimer           ; (re)arm the watchdog
isr_done:
    pop  lr
    movi r0, 0
    ret
isr_skip_timer:
    pop  lr
    movi r0, 0
    ret

HandleInt:
    push lr
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; TimerFunc(ctx): watchdog at DISPATCH_LEVEL
; ---------------------------------------------------------------
TimerFunc:
    push lr
    movi r0, g_txlock
    call NdisDprAcquireSpinLock
    movi r1, 0x07
    in   r2, r1                  ; poll the status register
    movi r12, g_linkstate
    stw  [r12+0], r2
    movi r0, g_txlock
    call NdisDprReleaseSpinLock
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:          .word Initialize, Send, Query, Set, Halt, Isr, HandleInt
cfg_mcast_name: .asciz "MaximumMulticastList"
g_macaddr:      .word 0x33221100, 0x00005544
q_table:        .word q_supported, q_hwstatus, q_speed, q_mac, q_mcast, q_supported, q_hwstatus, q_speed
g_mcast_buf:    .word 0
g_mcast_count:  .word 0
g_timer_inited: .word 0
g_mmio:         .word 0
g_rxring:       .word 0
g_filter:       .word 0
g_lookahead:    .word 0
g_linkstate:    .word 0
g_txbuf:        .space 64
g_txlock:       .space 8
g_timer:        .space 16
g_intr:         .space 16
`,
		// Bug 1 (resource leak): the alloc-failure path skips
		// NdisCloseConfiguration in the buggy build.
		pick(buggy, "    jmp  init_fail_leak", "    jmp  init_fail_close"),
		// Bug 2 (memory corruption): the fixed build clamps the registry
		// value to the array capacity before the loop.
		pick(buggy, "", `    movi r12, 8
    bltu r4, r12, mcast_clamped
    movi r4, 8
mcast_clamped:`),
		// Bug 4 (segfault): unknown OID falls into an unchecked jump-table
		// lookup in the buggy build; the fixed build fails cleanly.
		pick(buggy, `    andi r4, r1, 0xFFF
    shli r4, r4, 2
    movi r5, q_table
    add  r5, r5, r4
    ldw  r6, [r5+0]
    jr   r6`, `    pop  lr
    movi r0, 0xC0010017
    ret`),
		// Bug 5 (segfault): same defect in SetInformation.
		pick(buggy, `    andi r4, r1, 0xFFF
    shli r4, r4, 2
    movi r5, q_table
    add  r5, r5, r4
    ldw  r6, [r5+0]
    jr   r6`, `    pop  lr
    movi r0, 0xC0010017
    ret`),
		// Bug 3 (race): the buggy ISR arms the watchdog without checking
		// that the timer was initialized.
		pick(buggy, "", `    movi r4, g_timer_inited
    ldw  r4, [r4+0]
    beq  r4, r12, isr_skip_timer`),
		filler("rtl", 38, 7),
	)
}

// pick returns a when cond, else b.
func pick(c bool, a, b string) string {
	if c {
		return a
	}
	return b
}
