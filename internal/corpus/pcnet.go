package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "amd-pcnet",
		Class: binimg.ClassNetwork,
		ExpectedBugs: []string{
			"resource leak", // NdisAllocateMemoryWithTag buffer never freed
			"resource leak", // packets and buffers not freed on failed init
		},
		FillerFuncs: 66,
		Source:      pcnetSource,
	})
}

// pcnetSource generates the AMD PCNet NDIS miniport. Table 2 plants two
// resource leaks on its initialization failure paths.
func pcnetSource(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; AMD PCNet LANCE-family NDIS miniport (corpus reimplementation)
.name amd-pcnet
.device vendor=0x1022 device=0x2000 class=network bar=64 ports=32 irq=10 rev=2
.import NdisMRegisterMiniport
.import NdisOpenConfiguration
.import NdisReadConfiguration
.import NdisCloseConfiguration
.import NdisAllocateMemoryWithTag
.import NdisFreeMemory
.import NdisAllocatePacketPool
.import NdisFreePacketPool
.import NdisAllocatePacket
.import NdisFreePacket
.import NdisAllocateBufferPool
.import NdisFreeBufferPool
.import NdisAllocateBuffer
.import NdisFreeBuffer
.import NdisMAllocateSharedMemory
.import NdisMFreeSharedMemory
.import NdisMMapIoSpace
.import NdisMRegisterInterrupt
.import NdisMDeregisterInterrupt
.import NdisMInitializeTimer
.import NdisMSetTimer
.import NdisMCancelTimer
.import NdisAllocateSpinLock
.import NdisFreeSpinLock
.import NdisAcquireSpinLock
.import NdisReleaseSpinLock
.import NdisStallExecution
.import NdisReadNetworkAddress
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    call pcn_selftest
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0
    addi sp, sp, -20         ; [0]=status [4]=cfg [8]=param [12]=tmp [16]=tmp2
    ; configuration
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    beq  r12, r10, pcn_cfg_ok
    jmp  pcn_fail_bare
pcn_cfg_ok:
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    movi r3, cfg_txring_name
    call NdisReadConfiguration
    ldw  r12, [sp+0]
    bne  r12, r10, pcn_fail_close
    ldw  r4, [sp+8]
    ldw  r4, [r4+4]
    movi r5, g_txring_size
    stw  [r5+0], r4
    ; adapter context block (the first NdisAllocateMemoryWithTag)
    addi r0, sp, 12
    movi r1, 128
    movi r2, 0x41435458
    call NdisAllocateMemoryWithTag
    bne  r0, r10, pcn_fail_close
    ldw  r6, [sp+12]
    movi r5, g_adapter
    stw  [r5+0], r6
    ; descriptor scratch block (the second allocation)
    addi r0, sp, 12
    movi r1, 256
    movi r2, 0x44455343
    call NdisAllocateMemoryWithTag
    beq  r0, r10, pcn_desc_ok
    ; second allocation failed:
%s
pcn_desc_ok:
    ldw  r6, [sp+12]
    movi r5, g_desc
    stw  [r5+0], r6
    ; packet pool with two pre-allocated packets + one buffer
    mov  r0, sp
    addi r1, sp, 12
    movi r2, 8
    movi r3, 0
    call NdisAllocatePacketPool
    ldw  r4, [sp+12]
    movi r5, g_pktpool
    stw  [r5+0], r4
    mov  r0, sp
    addi r1, sp, 12
    mov  r2, r4
    call NdisAllocatePacket
    bne  r0, r10, pcn_pkt0_fail
    ldw  r6, [sp+12]
    movi r5, g_pkt0
    stw  [r5+0], r6
    mov  r0, sp
    addi r1, sp, 12
    mov  r2, r4
    call NdisAllocatePacket
    bne  r0, r10, pcn_pkt1_fail
    ldw  r6, [sp+12]
    movi r5, g_pkt1
    stw  [r5+0], r6
    mov  r0, sp
    addi r1, sp, 12
    movi r2, 8
    call NdisAllocateBufferPool
    ldw  r4, [sp+12]
    movi r5, g_bufpool
    stw  [r5+0], r4
    mov  r0, sp
    addi r1, sp, 12
    mov  r2, r4
    movi r3, g_rxstage
    push r10
    movi r12, 128
    stw  [sp+0], r12         ; arg4: length
    call NdisAllocateBuffer
    pop  r12
    ldw  r6, [sp+12]
    movi r5, g_buf0
    stw  [r5+0], r6
    ; DMA init block
    mov  r0, r11
    movi r1, 1024
    movi r2, 1
    addi r3, sp, 12
    push r10
    addi r12, sp, 20         ; &tmp2 (old sp+16)
    stw  [sp+0], r12
    call NdisMAllocateSharedMemory
    pop  r12
    beq  r0, r10, pcn_dma_ok
    ; shared memory failed:
%s
pcn_dma_ok:
    ldw  r6, [sp+12]
    movi r5, g_initblk
    stw  [r5+0], r6
    ; map registers, hook interrupt, start watchdog
    addi r0, sp, 12
    mov  r1, r11
    movi r2, 0
    movi r3, 64
    call NdisMMapIoSpace
    movi r0, g_lock
    call NdisAllocateSpinLock
    movi r0, g_intr
    mov  r1, r11
    movi r2, 10
    movi r3, 5
    call NdisMRegisterInterrupt
    movi r0, g_timer
    mov  r1, r11
    movi r2, TimerFunc
    movi r3, 0
    call NdisMInitializeTimer
    movi r12, g_timer_inited
    movi r5, 1
    stw  [r12+0], r5
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 20
    pop  lr
    movi r0, 0
    ret

; packet allocation failures: undo exactly what exists (both builds)
pcn_pkt0_fail:
    movi r12, g_pktpool
    ldw  r0, [r12+0]
    call NdisFreePacketPool
    jmp  pcn_fail_free_desc
pcn_pkt1_fail:
    movi r12, g_pkt0
    ldw  r0, [r12+0]
    call NdisFreePacket
    movi r12, g_pktpool
    ldw  r0, [r12+0]
    call NdisFreePacketPool
    jmp  pcn_fail_free_desc

; correct cleanup chains (used by the fixed build and shared paths)
pcn_fail_all:
    ; free buffer, packets, pools
    movi r12, g_buf0
    ldw  r0, [r12+0]
    call NdisFreeBuffer
    movi r12, g_bufpool
    ldw  r0, [r12+0]
    call NdisFreeBufferPool
    movi r12, g_pkt0
    ldw  r0, [r12+0]
    call NdisFreePacket
    movi r12, g_pkt1
    ldw  r0, [r12+0]
    call NdisFreePacket
    movi r12, g_pktpool
    ldw  r0, [r12+0]
    call NdisFreePacketPool
pcn_fail_free_desc:
    movi r12, g_desc
    ldw  r0, [r12+0]
    movi r1, 256
    movi r2, 0
    call NdisFreeMemory
pcn_fail_free_adapter:
    movi r12, g_adapter
    ldw  r0, [r12+0]
    movi r1, 128
    movi r2, 0
    call NdisFreeMemory
pcn_fail_close:
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
pcn_fail_bare:
    addi sp, sp, 20
    pop  lr
    movi r0, 0xC0000001
    ret

; buggy-only: forgets the adapter block (bug: memory never freed)
pcn_leak_adapter:
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 20
    pop  lr
    movi r0, 0xC0000001
    ret

; buggy-only: frees plain memory but abandons packets/buffers/pools
pcn_leak_packets:
    movi r12, g_desc
    ldw  r0, [r12+0]
    movi r1, 256
    movi r2, 0
    call NdisFreeMemory
    movi r12, g_adapter
    ldw  r0, [r12+0]
    movi r1, 128
    movi r2, 0
    call NdisFreeMemory
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 20
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Send(adapter, packet) -> status
; ---------------------------------------------------------------
Send:
    push lr
    ldw  r2, [r1+0]
    ldw  r3, [r1+4]
    movi r12, 14
    bgeu r3, r12, pcn_send_ok
    pop  lr
    movi r0, 0xC0000001
    ret
pcn_send_ok:
    movi r0, g_lock
    call NdisAcquireSpinLock
    ; stage the first dword of the frame
    ldw  r4, [r2+0]
    movi r5, g_rxstage
    stw  [r5+0], r4
    movi r1, 0x10
    out  r1, r3              ; program length
    movi r0, g_lock
    call NdisReleaseSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; QueryInformation / SetInformation
; ---------------------------------------------------------------
Query:
    push lr
    movi r12, 0x00010101
    beq  r1, r12, pq_supported
    movi r12, 0x00010107
    beq  r1, r12, pq_speed
    movi r12, 0x01010101
    beq  r1, r12, pq_mac
    pop  lr
    movi r0, 0xC0010017
    ret
pq_supported:
    movi r4, 0x00010101
    stw  [r2+0], r4
    movi r4, 0x00010107
    stw  [r2+4], r4
    pop  lr
    movi r0, 0
    ret
pq_speed:
    movi r4, 10000
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
pq_mac:
    movi r4, g_macaddr
    ldw  r5, [r4+0]
    stw  [r2+0], r5
    pop  lr
    movi r0, 0
    ret

Set:
    push lr
    movi r12, 0x0001010E
    beq  r1, r12, ps_filter
    pop  lr
    movi r0, 0xC0010017
    ret
ps_filter:
    ldw  r4, [r2+0]
    movi r5, g_filter
    stw  [r5+0], r4
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter): full teardown
; ---------------------------------------------------------------
Halt:
    push lr
    mov  r11, r0
    movi r0, g_intr
    call NdisMDeregisterInterrupt
    addi sp, sp, -4
    movi r0, g_timer
    mov  r1, sp
    call NdisMCancelTimer
    addi sp, sp, 4
    movi r12, g_buf0
    ldw  r0, [r12+0]
    call NdisFreeBuffer
    movi r12, g_bufpool
    ldw  r0, [r12+0]
    call NdisFreeBufferPool
    movi r12, g_pkt0
    ldw  r0, [r12+0]
    call NdisFreePacket
    movi r12, g_pkt1
    ldw  r0, [r12+0]
    call NdisFreePacket
    movi r12, g_pktpool
    ldw  r0, [r12+0]
    call NdisFreePacketPool
    mov  r0, r11
    movi r1, 1024
    movi r2, 1
    movi r12, g_initblk
    ldw  r3, [r12+0]
    push r3
    call NdisMFreeSharedMemory
    pop  r3
    movi r12, g_desc
    ldw  r0, [r12+0]
    movi r1, 256
    movi r2, 0
    call NdisFreeMemory
    movi r12, g_adapter
    ldw  r0, [r12+0]
    movi r1, 128
    movi r2, 0
    call NdisFreeMemory
    movi r0, g_lock
    call NdisFreeSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; ISR(adapter) / TimerFunc(ctx)
; ---------------------------------------------------------------
Isr:
    push lr
    movi r1, 0x14            ; CSR0
    in   r2, r1
    andi r3, r2, 1
    movi r12, 0
    beq  r3, r12, pcn_isr_done
    out  r1, r3              ; ack
    movi r4, g_timer_inited
    ldw  r4, [r4+0]
    beq  r4, r12, pcn_isr_done
    movi r0, g_timer
    movi r1, 20
    call NdisMSetTimer
pcn_isr_done:
    pop  lr
    movi r0, 0
    ret

HandleInt:
    movi r0, 0
    ret

TimerFunc:
    push lr
    movi r1, 0x14
    in   r2, r1
    movi r12, g_linkstate
    stw  [r12+0], r2
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:           .word Initialize, Send, Query, Set, Halt, Isr, HandleInt
cfg_txring_name: .asciz "TxRingSize"
g_macaddr:       .word 0x56341200, 0x00009A78
g_adapter:       .word 0
g_desc:          .word 0
g_pktpool:       .word 0
g_pkt0:          .word 0
g_pkt1:          .word 0
g_bufpool:       .word 0
g_buf0:          .word 0
g_initblk:       .word 0
g_txring_size:   .word 0
g_timer_inited:  .word 0
g_filter:        .word 0
g_linkstate:     .word 0
g_rxstage:       .space 128
g_lock:          .space 8
g_timer:         .space 16
g_intr:          .space 16
`,
		// Bug 6: the buggy build forgets to free the adapter block when the
		// descriptor allocation fails.
		pick(buggy, "    jmp  pcn_leak_adapter", "    jmp  pcn_fail_free_adapter"),
		// Bug 7: the buggy build abandons packets, buffers, and pools when
		// the DMA init block allocation fails.
		pick(buggy, "    jmp  pcn_leak_packets", "    jmp  pcn_fail_all"),
		filler("pcn", 66, 10),
	)
}
