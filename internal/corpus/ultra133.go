package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "promise-ultra133",
		Class: binimg.ClassStorage,
		ExpectedBugs: []string{
			"kernel crash",      // StatsDpc releases its spinlock to PASSIVE inside the DPC
			"memory corruption", // completion DPC writes through a request freed on surprise removal
		},
		FillerFuncs: 64,
		Source:      ultra133Source,
	})
}

// ultra133Source generates a Promise Ultra133-style IDE/ATA storage
// miniport — the scenario-graph corpus driver. Two bugs are planted:
//
//  1. Surprise removal frees the in-flight request block but leaves the
//     completion pointer dangling; the completion DPC, queued by the last
//     interrupt before the yank, then writes through freed pool
//     ("memory corruption"). The fixed variant parks the pointer and
//     defers the free to IRP_MN_REMOVE_DEVICE.
//  2. The statistics DPC — always queued SECOND, so only a drain that
//     runs past the first pending DPC ever reaches it — releases its
//     spinlock with a hardcoded PASSIVE_LEVEL, lowering IRQL inside a DPC
//     ("kernel crash"). This is the regression tripwire for the one-shot
//     DPC drain.
func ultra133Source(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; Promise Ultra133 TX2 ATA controller (corpus reimplementation)
.name promise-ultra133
.device vendor=0x105A device=0x4D69 class=storage bar=256 ports=8 irq=11 rev=1
.import StorRegisterMiniport
.import MmMapIoSpace
.import KeInitializeSpinLock
.import KeAcquireSpinLock
.import KeReleaseSpinLock
.import KeInitializeDpc
.import KeInsertQueueDpc
.import IoConnectInterrupt
.import ExAllocatePoolWithTag
.import ExFreePoolWithTag
.import PoSetPowerState
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call StorRegisterMiniport
    call u133_selftest
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    movi r0, 0xFE000000
    movi r1, 256
    call MmMapIoSpace
    movi r5, g_mmio
    stw  [r5+0], r0
    movi r0, g_lock
    call KeInitializeSpinLock
    movi r0, g_dpc
    movi r1, IoDone
    movi r2, 0
    call KeInitializeDpc
    movi r0, g_dpc2
    movi r1, StatsDpc
    movi r2, 0
    call KeInitializeDpc
    movi r0, Isr
    movi r1, 0
    call IoConnectInterrupt
    ; one reusable request block
    movi r0, 0
    movi r1, 64
    movi r2, 0x51304552
    call ExAllocatePoolWithTag
    movi r12, 0
    beq  r0, r12, u133_init_fail
    movi r5, g_req
    stw  [r5+0], r0
    pop  lr
    movi r0, 0
    ret
u133_init_fail:
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Read(adapter, buf, lba) -> status
; ---------------------------------------------------------------
Read:
    push lr
    movi r5, g_req
    ldw  r5, [r5+0]
    movi r6, g_inflight
    stw  [r6+0], r5
    movi r6, g_mmio
    ldw  r6, [r6+0]
    stw  [r6+16], r2          ; LBA register
    ldb  r7, [r1+0]           ; leading payload byte selects tagged mode
    movi r12, 0x5A
    bne  r7, r12, u133_rd_go
    movi r8, 2
    stw  [r6+20], r8          ; tagged-queue command
u133_rd_go:
    movi r8, 1
    stw  [r6+20], r8          ; READ doorbell
    ldw  r9, [r6+24]          ; controller status
    andi r9, r9, 1            ; busy bit
    movi r12, 0
    beq  r9, r12, u133_rd_done
    ldw  r9, [r6+24]          ; poll once more
u133_rd_done:
    ldw  r9, [r6+28]          ; data FIFO
    stw  [r1+0], r9
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Write(adapter, buf, lba) -> status
; ---------------------------------------------------------------
Write:
    push lr
    movi r5, g_req
    ldw  r5, [r5+0]
    movi r6, g_inflight
    stw  [r6+0], r5
    movi r6, g_mmio
    ldw  r6, [r6+0]
    stw  [r6+16], r2
    movi r8, 3
    stw  [r6+20], r8          ; WRITE doorbell
    ldw  r9, [r1+0]
    stw  [r6+28], r9          ; payload word into the FIFO
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; CancelIo(adapter)
; ---------------------------------------------------------------
CancelIo:
    push lr
    movi r6, g_mmio
    ldw  r6, [r6+0]
    movi r8, 0
    stw  [r6+20], r8          ; abort command
    movi r5, g_inflight
    stw  [r5+0], r8
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Pnp(adapter, minor) -> status
; ---------------------------------------------------------------
Pnp:
    push lr
    movi r12, 0x17
    beq  r1, r12, u133_pnp_surprise
    movi r12, 2
    beq  r1, r12, u133_pnp_remove
    pop  lr
    movi r0, 0
    ret
u133_pnp_surprise:
    movi r5, g_removed
    movi r4, 1
    stw  [r5+0], r4
%s
    pop  lr
    movi r0, 0
    ret
u133_pnp_remove:
    movi r5, g_req
    ldw  r0, [r5+0]
    movi r12, 0
    beq  r0, r12, u133_pnp_rm_out
    movi r1, 0x51304552
    call ExFreePoolWithTag
    movi r5, g_req
    movi r12, 0
    stw  [r5+0], r12
    movi r5, g_inflight
    stw  [r5+0], r12
u133_pnp_rm_out:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Power(adapter, minor, state) -> status
; ---------------------------------------------------------------
Power:
    push lr
    movi r12, 2               ; IRP_MN_SET_POWER
    bne  r1, r12, u133_pw_out
    movi r6, g_mmio
    ldw  r6, [r6+0]
    movi r12, 4               ; PowerDeviceD3
    beq  r2, r12, u133_pw_d3
    movi r5, g_saved          ; D0: restore the control register
    ldw  r4, [r5+0]
    stw  [r6+32], r4
    movi r0, 1
    call PoSetPowerState
    pop  lr
    movi r0, 0
    ret
u133_pw_d3:
    ldw  r4, [r6+32]          ; save the control register
    movi r5, g_saved
    stw  [r5+0], r4
    movi r0, 4
    call PoSetPowerState
    pop  lr
    movi r0, 0
    ret
u133_pw_out:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Isr(ctx) -> handled
; ---------------------------------------------------------------
Isr:
    push lr
    movi r6, g_mmio
    ldw  r6, [r6+0]
    movi r12, 0
    beq  r6, r12, u133_isr_out
    ldw  r2, [r6+24]          ; interrupt status
    stw  [r6+24], r2          ; ack
    andi r3, r2, 2            ; completion bit
    beq  r3, r12, u133_isr_out
    movi r0, g_dpc
    call KeInsertQueueDpc
    movi r0, g_dpc2
    call KeInsertQueueDpc
u133_isr_out:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; IoDone(ctx): completion DPC — writes the final status through the
; in-flight request pointer.
; ---------------------------------------------------------------
IoDone:
    push lr
    movi r6, g_mmio
    ldw  r6, [r6+0]
    ldw  r9, [r6+28]
    movi r5, g_inflight
    ldw  r4, [r5+0]
    movi r12, 0
    beq  r4, r12, u133_done_out
    stw  [r4+0], r9
    stw  [r5+0], r12
u133_done_out:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; StatsDpc(ctx): statistics DPC — always queued second.
; ---------------------------------------------------------------
StatsDpc:
    push lr
    addi sp, sp, -4
    movi r0, g_lock
    mov  r1, sp
    call KeAcquireSpinLock
    movi r5, g_nint
    ldw  r4, [r5+0]
    addi r4, r4, 1
    stw  [r5+0], r4
    movi r0, g_lock
%s
    call KeReleaseSpinLock
    addi sp, sp, 4
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    movi r5, g_req
    ldw  r0, [r5+0]
    movi r12, 0
    beq  r0, r12, u133_halt_out
    movi r1, 0x51304552
    call ExFreePoolWithTag
    movi r5, g_req
    movi r12, 0
    stw  [r5+0], r12
u133_halt_out:
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:      .word Initialize, Read, Write, CancelIo, Pnp, Power, Isr, Halt
g_mmio:     .word 0
g_req:      .word 0
g_inflight: .word 0
g_removed:  .word 0
g_saved:    .word 0
g_nint:     .word 0
g_lock:     .space 8
g_dpc:      .space 16
g_dpc2:     .space 16
`,
		// Bug (removal race): surprise removal frees the request block but
		// leaves g_inflight dangling for the completion DPC.
		pick(buggy, `    movi r5, g_req
    ldw  r0, [r5+0]
    movi r12, 0
    beq  r0, r12, u133_pnp_sr_out
    movi r1, 0x51304552
    call ExFreePoolWithTag
    movi r5, g_req
    movi r12, 0
    stw  [r5+0], r12
u133_pnp_sr_out:`, `    movi r5, g_inflight
    movi r12, 0
    stw  [r5+0], r12`),
		// Bug (one-shot drain tripwire): release the stats lock back to
		// PASSIVE_LEVEL instead of the saved IRQL.
		pick(buggy, "    movi r1, 0", "    ldw  r1, [sp+0]"),
		filler("u133", 64, 16),
	)
}
