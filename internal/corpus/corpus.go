// Package corpus contains the evaluation driver suite: d32 reimplementations
// of the six Windows drivers of Table 1, each with the corresponding
// previously-unknown bugs of Table 2 planted at the same functional
// locations, plus bug-free ("fixed") variants used to validate DDT's
// zero-false-positive property, plus the DDK-style sample driver used for
// the SDV comparison of §5.1.
//
// Drivers are assembled on demand and consumed by DDT as closed binary
// images; nothing in the testing pipeline sees this source.
package corpus

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/binimg"
)

// Variant selects the buggy (as-shipped) or fixed build of a driver.
type Variant int

// Driver build variants.
const (
	Buggy Variant = iota
	Fixed
)

func (v Variant) String() string {
	if v == Fixed {
		return "fixed"
	}
	return "buggy"
}

// Spec describes one corpus driver.
type Spec struct {
	Name string
	// Class is the device class the PnP manager binds.
	Class binimg.DeviceClass
	// Source generates the assembly for a variant.
	Source func(v Variant) string
	// ExpectedBugs lists the Table 2 bug classes DDT must find in the
	// buggy variant (by Table-2 category name, duplicated per instance).
	ExpectedBugs []string
	// FillerFuncs scales the binary to its Table 1 size class.
	FillerFuncs int
}

var registry = map[string]*Spec{}

func register(s *Spec) { registry[s.Name] = s }

// Names lists the corpus drivers in Table 1 order.
func Names() []string {
	order := []string{"intel-pro1000", "intel-pro100", "intel-ac97", "ensoniq-audiopci", "amd-pcnet", "rtl8029", "ddk-sample"}
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	// Any extras, alphabetically.
	var extra []string
	for n := range registry {
		found := false
		for _, o := range out {
			if o == n {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Get returns the spec for a driver name.
func Get(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

var (
	buildMu    sync.Mutex
	buildCache = map[string]*binimg.Image{}
)

// Build assembles a corpus driver variant (cached).
func Build(name string, v Variant) (*binimg.Image, error) {
	spec, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown driver %q", name)
	}
	key := name + "/" + v.String()
	buildMu.Lock()
	defer buildMu.Unlock()
	if im, ok := buildCache[key]; ok {
		return im, nil
	}
	im, err := asm.Assemble(spec.Source(v))
	if err != nil {
		return nil, fmt.Errorf("corpus: assembling %s (%s): %w", name, v, err)
	}
	buildCache[key] = im
	return im, nil
}

// MustBuild is Build that panics on error (corpus sources are validated by
// the test suite).
func MustBuild(name string, v Variant) *binimg.Image {
	im, err := Build(name, v)
	if err != nil {
		panic(err)
	}
	return im
}
