package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "intel-ac97",
		Class: binimg.ClassAudio,
		ExpectedBugs: []string{
			"race condition", // during playback, the ISR can cause a BSOD
		},
		FillerFuncs: 120,
		Source:      ac97Source,
	})
}

// ac97Source generates the Intel 82801AA AC'97 WDM audio driver. Table 2
// plants one bug: during playback the interrupt handler dereferences the
// DMA descriptor pointer, which Play publishes only after raising the
// playing flag — an interrupt in that window crashes the kernel.
func ac97Source(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; Intel 82801AA (ICH) AC'97 WDM audio driver (corpus reimplementation)
.name intel-ac97
.device vendor=0x8086 device=0x2415 class=audio bar=256 ports=64 irq=5 rev=1
.import PcRegisterMiniport
.import PcNewInterruptSync
.import PcRegisterServiceRoutine
.import ExAllocatePoolWithTag
.import ExFreePoolWithTag
.import KeInitializeSpinLock
.import KeAcquireSpinLock
.import KeReleaseSpinLock
.import KeStallExecutionProcessor
.import KeGetCurrentIrql
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call PcRegisterMiniport
    call ich_selftest
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0
    addi sp, sp, -8
    ; adapter context (checked correctly)
    movi r0, 0
    movi r1, 160
    movi r2, 0x37394341
    call ExAllocatePoolWithTag
    movi r10, 0
    bne  r0, r10, ich_adapter_ok
    jmp  ich_fail_bare
ich_adapter_ok:
    movi r5, g_adapter
    stw  [r5+0], r0
    ; codec warm-up: read the reset register until it settles
    movi r1, 0x00
    in   r2, r1
    movi r12, g_codec_id
    stw  [r12+0], r2
    ; interrupt sync (checked correctly)
    mov  r0, sp
    mov  r1, r11
    call PcNewInterruptSync
    beq  r0, r10, ich_sync_ok
    movi r12, g_adapter
    ldw  r0, [r12+0]
    movi r1, 0x37394341
    call ExFreePoolWithTag
    jmp  ich_fail_bare
ich_sync_ok:
    ldw  r6, [sp+0]
    movi r5, g_sync
    stw  [r5+0], r6
    ldw  r0, [sp+0]
    movi r1, Isr
    movi r2, 0
    call PcRegisterServiceRoutine
    movi r0, g_lock
    call KeInitializeSpinLock
    addi sp, sp, 8
    pop  lr
    movi r0, 0
    ret
ich_fail_bare:
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Play(adapter, buf, len) -> status
; ---------------------------------------------------------------
Play:
    push lr
    mov  r9, r1
%s
    pop  lr
    movi r0, 0
    ret
ich_play_alloc_fail:
    movi r12, g_playing
    movi r10, 0
    stw  [r12+0], r10
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Stop(adapter) -> status
; ---------------------------------------------------------------
Stop:
    push lr
    movi r12, g_playing
    movi r10, 0
    stw  [r12+0], r10
    movi r12, g_dmadesc
    ldw  r4, [r12+0]
    beq  r4, r10, ich_stop_done
    stw  [r12+0], r10
    mov  r0, r4
    movi r1, 0x42394341
    call ExFreePoolWithTag
ich_stop_done:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    movi r10, 0
    movi r12, g_adapter
    ldw  r4, [r12+0]
    beq  r4, r10, ich_halt_done
    stw  [r12+0], r10
    mov  r0, r4
    movi r1, 0x37394341
    call ExFreePoolWithTag
ich_halt_done:
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; ISR(adapter)
; ---------------------------------------------------------------
Isr:
    push lr
    movi r1, 0x16             ; PCM out status
    in   r2, r1
    movi r10, 0
    andi r3, r2, 8            ; buffer-complete interrupt
    beq  r3, r10, ich_isr_done
    out  r1, r3               ; ack
    movi r4, g_playing
    ldw  r4, [r4+0]
    beq  r4, r10, ich_isr_done
    ; advance the DMA descriptor (bug 14: may be NULL in the Play window)
    movi r5, g_dmadesc
    ldw  r5, [r5+0]
%s
    ldw  r6, [r5+0]
    addi r6, r6, 1
    andi r6, r6, 31
    stw  [r5+0], r6
ich_isr_done:
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:      .word Initialize, Play, Stop, Isr, Halt
g_adapter:  .word 0
g_sync:     .word 0
g_codec_id: .word 0
g_dmadesc:  .word 0
g_playing:  .word 0
g_lock:     .space 8
`,
		// Bug 14: buggy Play raises the playing flag before publishing the
		// DMA descriptor (with a kernel call in between); fixed Play
		// publishes first.
		pick(buggy, `    movi r12, g_playing
    movi r5, 1
    stw  [r12+0], r5          ; flag first: wrong order
    movi r0, 3
    call KeStallExecutionProcessor
    movi r0, 0
    movi r1, 128
    movi r2, 0x42394341
    call ExAllocatePoolWithTag
    movi r10, 0
    beq  r0, r10, ich_play_alloc_fail
    movi r12, g_dmadesc
    stw  [r12+0], r0
    ldb  r4, [r9+0]
    stb  [r0+4], r4`, `    movi r0, 0
    movi r1, 128
    movi r2, 0x42394341
    call ExAllocatePoolWithTag
    movi r10, 0
    beq  r0, r10, ich_play_alloc_fail
    movi r12, g_dmadesc
    stw  [r12+0], r0
    ldb  r4, [r9+0]
    stb  [r0+4], r4
    movi r0, 3
    call KeStallExecutionProcessor
    movi r12, g_playing
    movi r5, 1
    stw  [r12+0], r5`),
		// The fixed ISR also guards the descriptor pointer.
		pick(buggy, "", "    beq  r5, r10, ich_isr_done"),
		filler("ich", 120, 4),
	)
}
