package corpus

import (
	"fmt"
	"strings"
)

// filler generates deterministic diagnostic/bookkeeping functions that pad
// each driver to its Table 1 size class: n functions of roughly 4*reps+8
// instructions each, matching both the code-size and function-count columns
// (e.g. the Intel Pro/1000 is large with many small functions; the Intel
// Pro/100 has fewer, bigger ones).
//
// The functions are reachable — a selftest routine calls every one during
// driver load — and compute real values over seeded constants. Each
// contains a concrete branch whose untaken side stays uncovered, giving the
// binaries the realistic 60–90 % ceiling on achievable basic-block coverage
// that Figure 2 shows. DDT has no idea which blocks are "filler": they are
// ordinary driver code.
func filler(prefix string, n, reps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s_selftest:\n", prefix)
	b.WriteString("    push lr\n")
	b.WriteString("    movi r0, 0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    call %s_f%d\n", prefix, i)
	}
	b.WriteString("    pop  lr\n")
	b.WriteString("    ret\n")

	rng := uint32(0x12345678 ^ uint32(len(prefix))*2654435761)
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%s_f%d:\n", prefix, i)
		fmt.Fprintf(&b, "    movi r1, %#x\n", next()&0xFFFF)
		fmt.Fprintf(&b, "    movi r2, %#x\n", next()&0xFFFF)
		for r := 0; r < reps; r++ {
			fmt.Fprintf(&b, "    muli r3, r1, %#x\n", (next()|1)&0xFF)
			fmt.Fprintf(&b, "    xor  r3, r3, r2\n")
			fmt.Fprintf(&b, "    addi r1, r3, %#x\n", next()&0xFF)
			fmt.Fprintf(&b, "    shri r2, r1, %d\n", 1+next()%15)
		}
		// Concrete branch diamond: exactly one side ever executes.
		fmt.Fprintf(&b, "    bltu r1, r2, %s_f%d_a\n", prefix, i)
		fmt.Fprintf(&b, "    addi r3, r3, 1\n")
		fmt.Fprintf(&b, "    shli r3, r3, 1\n")
		fmt.Fprintf(&b, "    jmp  %s_f%d_b\n", prefix, i)
		fmt.Fprintf(&b, "%s_f%d_a:\n", prefix, i)
		fmt.Fprintf(&b, "    addi r3, r3, 2\n")
		fmt.Fprintf(&b, "    shri r3, r3, 1\n")
		fmt.Fprintf(&b, "%s_f%d_b:\n", prefix, i)
		fmt.Fprintf(&b, "    add  r0, r0, r3\n")
		fmt.Fprintf(&b, "    ret\n")
	}
	return b.String()
}
