package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "ddk-sample",
		Class: binimg.ClassNetwork,
		ExpectedBugs: []string{
			"segmentation fault", // alloc result used without NULL check
			"resource leak",      // first allocation leaked when second fails
			"kernel crash",       // NdisMSetTimer on never-initialized timer
			"kernel crash",       // release of spinlock never acquired
			"kernel crash",       // paged pool allocation while holding a lock
			"kernel crash",       // double free
			"segmentation fault", // unvalidated OID table index
			"kernel crash",       // NdisMSleep while holding a spinlock
		},
		FillerFuncs: 20,
		Source: func(v Variant) string {
			return sampleSource(v, false)
		},
	})
	register(&Spec{
		Name:  "ddk-sample-synthetic",
		Class: binimg.ClassNetwork,
		ExpectedBugs: []string{
			"deadlock",     // cross-function double acquire
			"kernel crash", // out-of-order spinlock release
			"kernel crash", // extra release of a non-acquired lock
			"kernel crash", // forgotten unreleased spinlock
			"kernel crash", // kernel call at wrong IRQL
		},
		FillerFuncs: 20,
		Source: func(v Variant) string {
			return sampleSource(v, true)
		},
	})
}

// sampleSource generates the DDK-style sample miniport used for the §5.1
// SDV comparison. With synthetic=false, the Buggy variant carries the 8
// "sample bugs"; with synthetic=true it instead carries the 5 injected
// synthetic concurrency/IRQL bugs (deadlock, out-of-order release, extra
// release, forgotten release, wrong-IRQL call) plus the pattern that makes
// a path-insensitive static checker produce its one false positive.
func sampleSource(v Variant, synthetic bool) string {
	buggy := v == Buggy
	name := "ddk-sample"
	if synthetic {
		name = "ddk-sample-synthetic"
	}

	// The 8 sample bugs live on distinct OID / length paths so one DDT run
	// reaches all of them.
	b1 := pick(buggy && !synthetic, `
    ; BUG S1: result stored through without a NULL check
    stw  [r0+0], r11`, `
    movi r10, 0
    beq  r0, r10, smp_alloc1_fail
    stw  [r0+0], r11`)
	b2 := pick(buggy && !synthetic, `
    ; BUG S2: first allocation leaked on this failure path
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret`, `
    movi r12, g_ctx
    ldw  r0, [r12+0]
    movi r1, 0x4B4444
    call ExFreePoolWithTag
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret`)
	b3 := pick(buggy && !synthetic, `
    movi r0, g_timer
    movi r1, 50
    call NdisMSetTimer          ; BUG S3: timer never initialized`, `
    movi r0, 0`)
	b4 := pick(buggy && !synthetic, `
    movi r0, g_lock_x
    call NdisReleaseSpinLock    ; BUG S4: lock never acquired`, `
    movi r0, g_lock_x
    call NdisAcquireSpinLock
    movi r0, g_lock_x
    call NdisReleaseSpinLock`)
	b5 := pick(buggy && !synthetic, `
    movi r0, 1                  ; BUG S5: PagedPool while at DISPATCH
    movi r1, 64
    movi r2, 0x50474442
    call ExAllocatePoolWithTag
    movi r10, 0
    beq  r0, r10, sq_302_unlock
    movi r1, 0x50474442
    call ExFreePoolWithTag`, `
    movi r0, 0                  ; NonPagedPool is legal under a lock
    movi r1, 64
    movi r2, 0x50474442
    call ExAllocatePoolWithTag
    movi r10, 0
    beq  r0, r10, sq_302_unlock
    movi r1, 0x50474442
    call ExFreePoolWithTag`)
	b6 := pick(buggy && !synthetic, `
    movi r12, g_scratch
    ldw  r0, [r12+0]
    movi r1, 0x534352
    call ExFreePoolWithTag
    movi r12, g_scratch
    ldw  r0, [r12+0]
    movi r1, 0x534352
    call ExFreePoolWithTag      ; BUG S6: double free`, `
    movi r12, g_scratch
    ldw  r0, [r12+0]
    movi r10, 0
    beq  r0, r10, ss_free_done
    stw  [r12+0], r10
    movi r1, 0x534352
    call ExFreePoolWithTag
ss_free_done:`)
	b7 := pick(buggy && !synthetic, `
    andi r4, r1, 0xFFF          ; BUG S7: unvalidated table index
    shli r4, r4, 2
    movi r5, sq_table
    add  r5, r5, r4
    ldw  r6, [r5+0]
    jr   r6`, `
    pop  lr
    movi r0, 0xC0010017
    ret`)
	b8 := pick(buggy && !synthetic, `
    movi r0, 10
    call NdisMSleep             ; BUG S8: sleeping at DISPATCH_LEVEL`, `
    movi r0, 0`)

	// The 5 synthetic bugs (synthetic variant only).
	y1 := pick(buggy && synthetic, `
    movi r0, g_lock_a
    call NdisAcquireSpinLock
    call smp_helper_lock_a      ; SYN1: deadlock through a helper
    movi r0, g_lock_a
    call NdisReleaseSpinLock`, `
    movi r0, g_lock_a
    call NdisAcquireSpinLock
    movi r0, g_lock_a
    call NdisReleaseSpinLock`)
	y2 := pick(buggy && synthetic, `
    movi r0, g_lock_a
    call NdisAcquireSpinLock
    movi r0, g_lock_b
    call NdisAcquireSpinLock
    movi r0, g_lock_a
    call NdisReleaseSpinLock    ; SYN2: out-of-order release
    movi r0, g_lock_b
    call NdisReleaseSpinLock`, `
    movi r0, g_lock_a
    call NdisAcquireSpinLock
    movi r0, g_lock_b
    call NdisAcquireSpinLock
    movi r0, g_lock_b
    call NdisReleaseSpinLock
    movi r0, g_lock_a
    call NdisReleaseSpinLock`)
	y3 := pick(buggy && synthetic, `
    movi r0, g_lock_c
    call NdisReleaseSpinLock    ; SYN3: extra release (never acquired here)`, `
    movi r0, g_lock_c
    call NdisAcquireSpinLock
    movi r0, g_lock_c
    call NdisReleaseSpinLock`)
	y4 := pick(buggy && synthetic, `
    movi r0, g_lock_d
    call NdisAcquireSpinLock    ; SYN4: forgotten release`, `
    movi r0, g_lock_d
    call NdisAcquireSpinLock
    movi r0, g_lock_d
    call NdisReleaseSpinLock`)
	y5 := pick(buggy && synthetic, `
    movi r0, g_lock_e
    call NdisAcquireSpinLock
    movi r0, 10
    call NdisMSleep             ; SYN5: kernel call at wrong IRQL
    movi r0, g_lock_e
    call NdisReleaseSpinLock`, `
    movi r0, g_lock_e
    call NdisAcquireSpinLock
    movi r0, g_lock_e
    call NdisReleaseSpinLock`)

	// The false-positive bait: a function that acquires a lock and releases
	// it in a callee. Dynamically correct; a path/function-insensitive
	// static rule flags the "missing" release. Present only in the
	// synthetic comparison, matching §5.1's one false positive.
	fpBait := pick(synthetic, `
smp_flush:
    push lr
    movi r0, g_lock_f
    call NdisAcquireSpinLock
    call smp_flush_done
    pop  lr
    ret
smp_flush_done:
    push lr
    movi r0, g_lock_f
    call NdisReleaseSpinLock
    pop  lr
    ret`, "")
	fpCall := pick(synthetic, "    call smp_flush", "")

	return fmt.Sprintf(`
; DDK-style sample NDIS miniport (%s)
.name %s
.device vendor=0x5344 device=0x0001 class=network bar=64 ports=16 irq=7 rev=1
.import NdisMRegisterMiniport
.import NdisOpenConfiguration
.import NdisCloseConfiguration
.import NdisAllocateMemoryWithTag
.import NdisFreeMemory
.import NdisAcquireSpinLock
.import NdisReleaseSpinLock
.import NdisAllocateSpinLock
.import NdisFreeSpinLock
.import NdisMInitializeTimer
.import NdisMSetTimer
.import NdisMSleep
.import NdisMRegisterInterrupt
.import NdisMDeregisterInterrupt
.import ExAllocatePoolWithTag
.import ExFreePoolWithTag
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    call smp_selftest
%s
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0
    addi sp, sp, -8
    ; context block
    movi r0, 0
    movi r1, 96
    movi r2, 0x4B4444
    call ExAllocatePoolWithTag
%s
    movi r12, g_ctx
    stw  [r12+0], r0
    ; scratch block (second allocation; its failure path is bug S2)
    movi r0, 0
    movi r1, 64
    movi r2, 0x534352
    call ExAllocatePoolWithTag
    movi r10, 0
    bne  r0, r10, smp_scratch_ok
%s
smp_scratch_ok:
    movi r12, g_scratch
    stw  [r12+0], r0
    movi r0, g_mainlock
    call NdisAllocateSpinLock
    addi sp, sp, 8
    pop  lr
    movi r0, 0
    ret
smp_alloc1_fail:
    addi sp, sp, 8
    pop  lr
    movi r0, 0xC0000001
    ret

; helper used by the synthetic deadlock
smp_helper_lock_a:
    push lr
    movi r0, g_lock_a
    call NdisAcquireSpinLock
    movi r0, g_lock_a
    call NdisReleaseSpinLock
    pop  lr
    ret

; ---------------------------------------------------------------
; Send(adapter, packet) -> status
; ---------------------------------------------------------------
Send:
    push lr
    ldw  r2, [r1+0]
    ldw  r3, [r1+4]
    movi r12, 20
    bltu r3, r12, ss_short
    movi r12, 60
    bgeu r3, r12, ss_long
    pop  lr
    movi r0, 0
    ret
ss_short:
    ; short frames take the "diagnostic" path
    movi r0, g_mainlock
    call NdisAcquireSpinLock
%s
    movi r0, g_mainlock
    call NdisReleaseSpinLock
    pop  lr
    movi r0, 0
    ret
ss_long:
    ; oversized frames release the staging buffer
%s
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; QueryInformation(adapter, oid, buf, len) -> status
; ---------------------------------------------------------------
Query:
    push lr
    movi r12, 0x00010101
    beq  r1, r12, sq_supported
    movi r12, 0x301
    beq  r1, r12, sq_301
    movi r12, 0x302
    beq  r1, r12, sq_302
%s
sq_supported:
    movi r4, 0x00010101
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
sq_301:
%s
    pop  lr
    movi r0, 0
    ret
sq_302:
    movi r0, g_mainlock
    call NdisAcquireSpinLock
%s
sq_302_unlock:
    movi r0, g_mainlock
    call NdisReleaseSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; SetInformation(adapter, oid, buf, len) -> status
; ---------------------------------------------------------------
Set:
    push lr
    movi r12, 0x201
    beq  r1, r12, st_201
    movi r12, 0x202
    beq  r1, r12, st_202
    movi r12, 0x203
    beq  r1, r12, st_203
    movi r12, 0x204
    beq  r1, r12, st_204
    movi r12, 0x205
    beq  r1, r12, st_205
    movi r12, 0x206
    beq  r1, r12, st_206
    movi r12, 0x401
    beq  r1, r12, st_401
    pop  lr
    movi r0, 0xC0010017
    ret
st_201:
%s
    pop  lr
    movi r0, 0
    ret
st_202:
%s
    pop  lr
    movi r0, 0
    ret
st_203:
%s
    pop  lr
    movi r0, 0
    ret
st_204:
%s
    pop  lr
    movi r0, 0
    ret
st_205:
%s
    pop  lr
    movi r0, 0
    ret
st_206:
    ; a correct acquire/release pair of lock C (this is what blinds the
    ; path-insensitive extra-release rule)
    movi r0, g_lock_c
    call NdisAcquireSpinLock
    movi r0, g_lock_c
    call NdisReleaseSpinLock
    pop  lr
    movi r0, 0
    ret
st_401:
%s
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    movi r10, 0
    movi r12, g_scratch
    ldw  r4, [r12+0]
    beq  r4, r10, smp_halt_ctx
    stw  [r12+0], r10
    mov  r0, r4
    movi r1, 0x534352
    call ExFreePoolWithTag
smp_halt_ctx:
    movi r12, g_ctx
    ldw  r4, [r12+0]
    beq  r4, r10, smp_halt_done
    stw  [r12+0], r10
    mov  r0, r4
    movi r1, 0x4B4444
    call ExFreePoolWithTag
smp_halt_done:
    movi r0, g_mainlock
    call NdisFreeSpinLock
    pop  lr
    movi r0, 0
    ret

Isr:
    movi r0, 0
    ret
HandleInt:
    movi r0, 0
    ret

%s
%s

.data
chars:     .word Initialize, Send, Query, Set, Halt, Isr, HandleInt
sq_table:  .word sq_supported, sq_301, sq_302, sq_supported
g_ctx:     .word 0
g_scratch: .word 0
g_mainlock: .space 8
g_lock_a:  .space 8
g_lock_b:  .space 8
g_lock_c:  .space 8
g_lock_d:  .space 8
g_lock_e:  .space 8
g_lock_f:  .space 8
g_lock_x:  .space 8
g_timer:   .space 16
`,
		name, name,
		fpCall,
		b1, b2,
		b8, b6,
		b7, b3, b5,
		y1, y2, y3, y4, y5,
		b4,
		fpBait,
		filler("smp", 20, 3),
	)
}
