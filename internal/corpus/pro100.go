package corpus

import (
	"fmt"

	"repro/internal/binimg"
)

func init() {
	register(&Spec{
		Name:  "intel-pro100",
		Class: binimg.ClassNetwork,
		ExpectedBugs: []string{
			"kernel crash", // KeReleaseSpinLock-style misuse: NdisReleaseSpinLock from DPC
		},
		FillerFuncs: 104,
		Source:      pro100Source,
	})
}

// pro100Source generates the Intel Pro/100 NDIS miniport (the DDK-derived
// driver whose source appears in the Windows DDK, per §5.1). Table 2 plants
// one bug: its DPC (the watchdog timer routine) acquires the transmit lock
// with NdisDprAcquireSpinLock but releases it with NdisReleaseSpinLock —
// "specifically prohibited by Microsoft documentation", corrupting the IRQL
// inside the DPC.
func pro100Source(v Variant) string {
	buggy := v == Buggy
	return fmt.Sprintf(`
; Intel Pro/100 (i82557/8/9) NDIS miniport (corpus reimplementation)
.name intel-pro100
.device vendor=0x8086 device=0x1229 class=network bar=4096 ports=64 irq=11 rev=1
.import NdisMRegisterMiniport
.import NdisOpenConfiguration
.import NdisReadConfiguration
.import NdisCloseConfiguration
.import NdisMAllocateSharedMemory
.import NdisMFreeSharedMemory
.import NdisMMapIoSpace
.import NdisMRegisterInterrupt
.import NdisMDeregisterInterrupt
.import NdisMInitializeTimer
.import NdisMSetTimer
.import NdisMCancelTimer
.import NdisAllocateSpinLock
.import NdisFreeSpinLock
.import NdisAcquireSpinLock
.import NdisReleaseSpinLock
.import NdisDprAcquireSpinLock
.import NdisDprReleaseSpinLock
.import NdisStallExecution
.entry DriverEntry

.text
DriverEntry:
    push lr
    movi r0, chars
    call NdisMRegisterMiniport
    call i557_selftest
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Initialize(adapter) -> status
; ---------------------------------------------------------------
Initialize:
    push lr
    mov  r11, r0
    addi sp, sp, -20
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    ldw  r12, [sp+0]
    movi r10, 0
    bne  r12, r10, i557_fail_bare
    ; control/status block in shared memory
    mov  r0, r11
    movi r1, 256
    movi r2, 1
    addi r3, sp, 12
    push r10
    addi r12, sp, 20
    stw  [sp+0], r12
    call NdisMAllocateSharedMemory
    pop  r12
    bne  r0, r10, i557_fail_close
    ldw  r6, [sp+12]
    movi r5, g_csb
    stw  [r5+0], r6
    ; registers
    addi r0, sp, 12
    mov  r1, r11
    movi r2, 0
    movi r3, 4096
    call NdisMMapIoSpace
    ldw  r6, [sp+12]
    movi r5, g_mmio
    stw  [r5+0], r6
    movi r0, g_txlock
    call NdisAllocateSpinLock
    movi r0, g_intr
    mov  r1, r11
    movi r2, 11
    movi r3, 5
    call NdisMRegisterInterrupt
    movi r0, g_timer
    mov  r1, r11
    movi r2, TimerFunc
    movi r3, 0
    call NdisMInitializeTimer
    movi r12, g_timer_inited
    movi r5, 1
    stw  [r12+0], r5
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
    addi sp, sp, 20
    pop  lr
    movi r0, 0
    ret
i557_fail_close:
    ldw  r0, [sp+4]
    call NdisCloseConfiguration
i557_fail_bare:
    addi sp, sp, 20
    pop  lr
    movi r0, 0xC0000001
    ret

; ---------------------------------------------------------------
; Send(adapter, packet) -> status
; ---------------------------------------------------------------
Send:
    push lr
    ldw  r2, [r1+0]
    ldw  r3, [r1+4]
    movi r12, 14
    bgeu r3, r12, i557_send_ok
    pop  lr
    movi r0, 0xC0000001
    ret
i557_send_ok:
    movi r0, g_txlock
    call NdisAcquireSpinLock
    movi r4, g_csb
    ldw  r4, [r4+0]
    stw  [r4+0], r2
    stw  [r4+4], r3
    movi r1, 0x08
    out  r1, r3
    movi r0, g_txlock
    call NdisReleaseSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; QueryInformation / SetInformation
; ---------------------------------------------------------------
Query:
    push lr
    movi r12, 0x00010101
    beq  r1, r12, iq_supported
    movi r12, 0x00010107
    beq  r1, r12, iq_speed
    movi r12, 0x01010101
    beq  r1, r12, iq_mac
    pop  lr
    movi r0, 0xC0010017
    ret
iq_supported:
    movi r4, 0x00010101
    stw  [r2+0], r4
    movi r4, 0x00010107
    stw  [r2+4], r4
    pop  lr
    movi r0, 0
    ret
iq_speed:
    movi r4, 100000
    stw  [r2+0], r4
    pop  lr
    movi r0, 0
    ret
iq_mac:
    movi r4, g_macaddr
    ldw  r5, [r4+0]
    stw  [r2+0], r5
    pop  lr
    movi r0, 0
    ret

Set:
    push lr
    movi r12, 0x0001010E
    beq  r1, r12, is_filter
    pop  lr
    movi r0, 0xC0010017
    ret
is_filter:
    ldw  r4, [r2+0]
    movi r5, g_filter
    stw  [r5+0], r4
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; Halt(adapter)
; ---------------------------------------------------------------
Halt:
    push lr
    mov  r11, r0
    movi r0, g_intr
    call NdisMDeregisterInterrupt
    addi sp, sp, -4
    movi r0, g_timer
    mov  r1, sp
    call NdisMCancelTimer
    addi sp, sp, 4
    mov  r0, r11
    movi r1, 256
    movi r2, 1
    movi r12, g_csb
    ldw  r3, [r12+0]
    push r3
    call NdisMFreeSharedMemory
    pop  r3
    movi r0, g_txlock
    call NdisFreeSpinLock
    pop  lr
    movi r0, 0
    ret

; ---------------------------------------------------------------
; ISR
; ---------------------------------------------------------------
Isr:
    push lr
    movi r1, 0x0C             ; SCB status
    in   r2, r1
    andi r3, r2, 1
    movi r12, 0
    beq  r3, r12, i557_isr_ck
    out  r1, r3               ; ack
i557_isr_ck:
    ; the CU-idle event code arms the watchdog DPC
    andi r3, r2, 0xFF
    movi r12, 0x33
    bne  r3, r12, i557_isr_out
    movi r4, g_timer_inited
    ldw  r4, [r4+0]
    movi r12, 0
    beq  r4, r12, i557_isr_out
    movi r0, g_timer
    movi r1, 100
    call NdisMSetTimer
i557_isr_out:
    pop  lr
    movi r0, 0
    ret

HandleInt:
    movi r0, 0
    ret

; ---------------------------------------------------------------
; TimerFunc(ctx): the DPC with the Table 2 bug
; ---------------------------------------------------------------
TimerFunc:
    push lr
    movi r0, g_txlock
    call NdisDprAcquireSpinLock
    movi r1, 0x0C
    in   r2, r1
    movi r12, g_linkstate
    stw  [r12+0], r2
    movi r0, g_txlock
%s
    pop  lr
    movi r0, 0
    ret

%s

.data
chars:          .word Initialize, Send, Query, Set, Halt, Isr, HandleInt
g_macaddr:      .word 0x12E00900, 0x00005634
g_csb:          .word 0
g_mmio:         .word 0
g_filter:       .word 0
g_linkstate:    .word 0
g_timer_inited: .word 0
g_txlock:       .space 8
g_timer:        .space 16
g_intr:         .space 16
`,
		// Bug 13: the buggy DPC releases a Dpr-acquired lock with the
		// non-Dpr NdisReleaseSpinLock.
		pick(buggy, "    call NdisReleaseSpinLock", "    call NdisDprReleaseSpinLock"),
		filler("i557", 104, 16),
	)
}
