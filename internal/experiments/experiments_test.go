package experiments

import (
	"strings"
	"testing"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	infos, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 6 {
		t.Fatalf("drivers = %d", len(infos))
	}
	// Paper ordering: descending code size from Pro/1000 down to RTL8029
	// with the audio drivers mid-pack.
	if infos[0].Name != "intel-pro1000" || infos[5].Name != "rtl8029" {
		t.Errorf("order: %v ... %v", infos[0].Name, infos[5].Name)
	}
	if infos[0].CodeSize <= infos[5].CodeSize*5 {
		t.Errorf("size spread too small: %d vs %d", infos[0].CodeSize, infos[5].CodeSize)
	}
	out := FormatTable1(infos)
	if !strings.Contains(out, "rtl8029") || !strings.Contains(out, "Functions") {
		t.Errorf("format:\n%s", out)
	}
}

func TestTable2AllMatch(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		if !r.Matches() {
			t.Errorf("%s does not match Table 2", r.Driver)
		}
		total += len(r.Report.Bugs)
	}
	if total != 14 {
		t.Errorf("total = %d", total)
	}
	if !strings.Contains(FormatTable2(rows), "total: 14 bugs") {
		t.Error("format missing total")
	}
}

func TestCoverageBand(t *testing.T) {
	runs, err := Coverage()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Relative < 0.6 || r.Relative > 0.95 {
			t.Errorf("%s coverage %.0f%% outside the paper's 60-90%% band", r.Driver, 100*r.Relative)
		}
		if len(r.Series) < 10 {
			t.Errorf("%s series too short: %d", r.Driver, len(r.Series))
		}
		// Series must be a proper staircase: strictly increasing blocks.
		for i := 1; i < len(r.Series); i++ {
			if r.Series[i].Blocks <= r.Series[i-1].Blocks {
				t.Errorf("%s series not increasing at %d", r.Driver, i)
				break
			}
		}
	}
	rel := FormatCoverage(runs, true)
	abs := FormatCoverage(runs, false)
	if !strings.Contains(rel, "%") || !strings.Contains(abs, "blocks") {
		t.Error("format broken")
	}
}

func TestDriverVerifierZero(t *testing.T) {
	res, err := DriverVerifier()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.BugsSeen != 0 {
			t.Errorf("%s: DV found %d", r.Driver, r.BugsSeen)
		}
	}
}

func TestSDVComparisonProfile(t *testing.T) {
	cmp, err := RunSDVComparison()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SampleSDVFindings != 8 || cmp.SampleDDTBugs != 8 {
		t.Errorf("sample: %d/%d", cmp.SampleSDVFindings, cmp.SampleDDTBugs)
	}
	if cmp.SynSDVReal != 2 || cmp.SynSDVFalse != 1 || cmp.SynDDTBugs != 5 || cmp.SynDDTFalse != 0 {
		t.Errorf("synthetic: sdv %d+%dfp ddt %d+%dfp", cmp.SynSDVReal, cmp.SynSDVFalse, cmp.SynDDTBugs, cmp.SynDDTFalse)
	}
	if !strings.Contains(cmp.Format(), "paper: 2 + 1") {
		t.Error("format missing paper reference")
	}
}

func TestAblationSplit(t *testing.T) {
	rows, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	racesWithout := 0
	for _, r := range rows {
		racesWithout += r.NoAnnot["race condition"] + r.NoAnnot["kernel crash"]
		if r.NoAnnot["resource leak"] != 0 || r.NoAnnot["segmentation fault"] != 0 {
			t.Errorf("%s: annotation-dependent class survived ablation: %v", r.Driver, r.NoAnnot)
		}
	}
	if racesWithout < 5 {
		t.Errorf("interrupt-timing bugs without annotations = %d, want >= 5", racesWithout)
	}
	if !strings.Contains(FormatAblation(rows), "without") {
		t.Error("format broken")
	}
}
