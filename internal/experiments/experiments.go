// Package experiments regenerates every table and figure of the paper's
// evaluation (§5), shared by the ddtbench command and the benchmark suite.
// EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline/driververifier"
	"repro/internal/baseline/sdv"
	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/corpus"
)

// Table1Drivers lists the evaluation drivers in the paper's Table 1 order.
var Table1Drivers = []string{
	"intel-pro1000", "intel-pro100", "intel-ac97",
	"ensoniq-audiopci", "amd-pcnet", "rtl8029",
}

// Figure2Drivers are the representative subset the paper plots.
var Figure2Drivers = []string{"rtl8029", "intel-pro100", "intel-ac97"}

// Table1 regenerates the driver-characteristics table from the binaries.
func Table1() ([]binimg.Info, error) {
	var out []binimg.Info
	for _, name := range Table1Drivers {
		img, err := corpus.Build(name, corpus.Buggy)
		if err != nil {
			return nil, err
		}
		out = append(out, binimg.Analyze(img))
	}
	return out, nil
}

// FormatTable1 renders Table 1 as text.
func FormatTable1(infos []binimg.Info) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %12s\n",
		"Tested Driver", "File (KB)", "Code (KB)", "Functions", "Kernel Calls")
	for _, i := range infos {
		fmt.Fprintf(&b, "%-18s %10.1f %10.1f %10d %12d\n",
			i.Name, float64(i.FileSize)/1024, float64(i.CodeSize)/1024,
			i.NumFunctions, i.KernelImports)
	}
	return b.String()
}

// Table2Row is one driver's discovery outcome.
type Table2Row struct {
	Driver   string
	Report   *core.Report
	Expected []string
	Elapsed  time.Duration
}

// Matches reports whether the found bug classes are exactly the expected
// multiset.
func (r Table2Row) Matches() bool {
	got := make([]string, 0, len(r.Report.Bugs))
	for _, b := range r.Report.Bugs {
		got = append(got, b.Class)
	}
	want := append([]string(nil), r.Expected...)
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// Table2 runs DDT on the six buggy drivers with the paper's configuration.
func Table2() ([]Table2Row, error) {
	var out []Table2Row
	for _, name := range Table1Drivers {
		spec, _ := corpus.Get(name)
		img, err := corpus.Build(name, corpus.Buggy)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		eng := core.NewEngine(img, core.DefaultOptions())
		rep, err := eng.TestDriver(context.Background())
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Row{
			Driver: name, Report: rep, Expected: spec.ExpectedBugs, Elapsed: time.Since(start),
		})
	}
	return out, nil
}

// FormatTable2 renders the bug-discovery table.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	total := 0
	fmt.Fprintf(&b, "%-18s %-22s %s\n", "Tested Driver", "Bug Type", "Description")
	for _, r := range rows {
		for _, bug := range r.Report.Bugs {
			fmt.Fprintf(&b, "%-18s %-22s %s\n", r.Driver, bug.Class, bug.Fault.Msg)
			total++
		}
	}
	fmt.Fprintf(&b, "total: %d bugs (paper: 14), all warnings shown, no false positives filtered\n", total)
	return b.String()
}

// CoverageRun is one Figure 2/3 series.
type CoverageRun struct {
	Driver   string
	Static   int // total basic blocks (denominator of Figure 2)
	Series   []core.CoveragePointOut
	Covered  int
	Relative float64
	Elapsed  time.Duration
}

// Coverage produces the Figure 2 (relative) and Figure 3 (absolute)
// coverage-versus-time curves. Time is deterministic simulated time
// (executed instructions); InstrPerMinute converts to the paper's axis.
func Coverage() ([]CoverageRun, error) {
	var out []CoverageRun
	for _, name := range Figure2Drivers {
		img, err := corpus.Build(name, corpus.Buggy)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		eng := core.NewEngine(img, core.DefaultOptions())
		rep, err := eng.TestDriver(context.Background())
		if err != nil {
			return nil, err
		}
		out = append(out, CoverageRun{
			Driver:   name,
			Static:   rep.BlocksStatic,
			Series:   rep.CoverageSeries,
			Covered:  rep.BlocksCovered,
			Relative: rep.RelativeCoverage(),
			Elapsed:  time.Since(start),
		})
	}
	return out, nil
}

// InstrPerMinute converts simulated instructions to the figures' minutes
// axis (calibration constant; the curves' shape is what matters).
const InstrPerMinute = 2000

// FormatCoverage renders both figures as text series.
func FormatCoverage(runs []CoverageRun, relative bool) string {
	var b strings.Builder
	if relative {
		b.WriteString("Figure 2: relative basic-block coverage vs time (simulated minutes)\n")
	} else {
		b.WriteString("Figure 3: absolute covered basic blocks vs time (simulated minutes)\n")
	}
	for _, r := range runs {
		fmt.Fprintf(&b, "%s (static blocks: %d, final: %d = %.0f%%)\n",
			r.Driver, r.Static, r.Covered, 100*r.Relative)
		for _, p := range sampled(r.Series, 12) {
			min := float64(p.Instructions) / InstrPerMinute
			if relative {
				fmt.Fprintf(&b, "  t=%6.2f  %5.1f%%\n", min, 100*float64(p.Blocks)/float64(r.Static))
			} else {
				fmt.Fprintf(&b, "  t=%6.2f  %5d blocks\n", min, p.Blocks)
			}
		}
	}
	return b.String()
}

func sampled(s []core.CoveragePointOut, n int) []core.CoveragePointOut {
	if len(s) <= n {
		return s
	}
	out := make([]core.CoveragePointOut, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s[i*len(s)/n])
	}
	out = append(out, s[len(s)-1])
	return out
}

// DVResult is the Driver Verifier baseline outcome.
type DVResult struct {
	Driver   string
	BugsSeen int
}

// DriverVerifier runs the concrete stress baseline over the six drivers
// (§5.1: it finds none of the 14 bugs).
func DriverVerifier() ([]DVResult, error) {
	var out []DVResult
	for _, name := range Table1Drivers {
		img, err := corpus.Build(name, corpus.Buggy)
		if err != nil {
			return nil, err
		}
		rep, err := driververifier.Run(img, driververifier.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, DVResult{Driver: name, BugsSeen: len(rep.Bugs)})
	}
	return out, nil
}

// SDVComparison is the §5.1 head-to-head on the sample driver.
type SDVComparison struct {
	SampleSDVFindings int // paper: 8
	SampleDDTBugs     int // paper: 8 (in a third of the time)
	SDVElapsed        time.Duration
	DDTElapsed        time.Duration
	SynSDVReal        int // paper: 2
	SynSDVFalse       int // paper: 1
	SynDDTBugs        int // paper: 5
	SynDDTFalse       int // paper: 0
	SynSDVElapsed     time.Duration
	SynDDTElapsed     time.Duration
}

// RunSDVComparison executes both tools on the sample drivers.
func RunSDVComparison() (*SDVComparison, error) {
	out := &SDVComparison{}

	sampleImg, err := corpus.Build("ddk-sample", corpus.Buggy)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sdvRep := sdv.Analyze(sampleImg)
	out.SDVElapsed = time.Since(start)
	out.SampleSDVFindings = len(sdvRep.Findings)

	start = time.Now()
	eng := core.NewEngine(sampleImg, core.DefaultOptions())
	rep, err := eng.TestDriver(context.Background())
	if err != nil {
		return nil, err
	}
	out.DDTElapsed = time.Since(start)
	out.SampleDDTBugs = len(rep.Bugs)

	synImg, err := corpus.Build("ddk-sample-synthetic", corpus.Buggy)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	synSDV := sdv.Analyze(synImg)
	out.SynSDVElapsed = time.Since(start)
	for _, f := range synSDV.Findings {
		// The one false positive is the forgotten-release report on the
		// lock-wrapper helper (a single-lock-operation function whose
		// release lives in a callee); genuine findings sit in the big
		// entry-point functions.
		if f.Rule == "forgotten-release" && f.FuncEvents <= 2 {
			out.SynSDVFalse++
		} else {
			out.SynSDVReal++
		}
	}

	start = time.Now()
	eng2 := core.NewEngine(synImg, core.DefaultOptions())
	rep2, err := eng2.TestDriver(context.Background())
	if err != nil {
		return nil, err
	}
	out.SynDDTElapsed = time.Since(start)
	out.SynDDTBugs = len(rep2.Bugs)

	fixedImg, err := corpus.Build("ddk-sample-synthetic", corpus.Fixed)
	if err != nil {
		return nil, err
	}
	eng3 := core.NewEngine(fixedImg, core.DefaultOptions())
	rep3, err := eng3.TestDriver(context.Background())
	if err != nil {
		return nil, err
	}
	out.SynDDTFalse = len(rep3.Bugs)
	return out, nil
}

// FormatSDV renders the comparison.
func (c *SDVComparison) Format() string {
	var b strings.Builder
	b.WriteString("SDV comparison (sample driver, 8 seeded bugs):\n")
	fmt.Fprintf(&b, "  SDV found %d in %v; DDT found %d in %v\n",
		c.SampleSDVFindings, c.SDVElapsed.Round(time.Millisecond),
		c.SampleDDTBugs, c.DDTElapsed.Round(time.Millisecond))
	b.WriteString("Synthetic injection (deadlock, out-of-order release, extra release,\n")
	b.WriteString("forgotten release, wrong-IRQL call):\n")
	fmt.Fprintf(&b, "  SDV: %d real + %d false positive(s) in %v (paper: 2 + 1)\n",
		c.SynSDVReal, c.SynSDVFalse, c.SynSDVElapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  DDT: %d real + %d false positive(s) in %v (paper: 5 + 0)\n",
		c.SynDDTBugs, c.SynDDTFalse, c.SynDDTElapsed.Round(time.Millisecond))
	return b.String()
}

// AblationRow summarizes one driver's annotation ablation.
type AblationRow struct {
	Driver    string
	WithAnnot map[string]int
	NoAnnot   map[string]int
}

// Ablation reruns the corpus with annotations disabled (§5.1).
func Ablation() ([]AblationRow, error) {
	var out []AblationRow
	for _, name := range Table1Drivers {
		img, err := corpus.Build(name, corpus.Buggy)
		if err != nil {
			return nil, err
		}
		with := core.NewEngine(img, core.DefaultOptions())
		repW, err := with.TestDriver(context.Background())
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Annotations = false
		without := core.NewEngine(img, opts)
		repN, err := without.TestDriver(context.Background())
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Driver: name, WithAnnot: repW.CountByClass(), NoAnnot: repN.CountByClass(),
		})
	}
	return out, nil
}

// FormatAblation renders the ablation table.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-34s %s\n", "Driver", "with annotations", "without")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-34s %s\n", r.Driver, classes(r.WithAnnot), classes(r.NoAnnot))
	}
	b.WriteString("(races and interrupt bugs survive; leaks and segfaults are lost — §5.1)\n")
	return b.String()
}

func classes(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
