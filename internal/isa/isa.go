// Package isa defines d32, the 32-bit instruction set architecture that
// stands in for x86 in this reproduction. Device drivers are distributed as
// closed d32 binary images; DDT interprets them symbolically without ever
// seeing assembly source.
//
// d32 is deliberately conventional: a load/store RISC with sixteen 32-bit
// registers, fixed 8-byte instructions, absolute branch targets, port I/O
// instructions (IN/OUT) and memory-mapped I/O through ordinary loads and
// stores. Kernel API calls are CALLs into the import trap window (see
// TrapBase); the VM intercepts them and dispatches to the simulated kernel,
// which is the selective-symbolic-execution boundary of the paper (§3.2).
package isa

import "fmt"

// Register indices. R0-R3 carry arguments and R0 the return value; R4-R11
// are callee-saved; R12 is the assembler scratch register; SP and LR are
// the stack pointer and link register.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP      // R13
	LR      // R14
	NumRegs = 15
)

// RegName returns the assembler name of register r.
func RegName(r uint8) string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// Memory layout constants. The driver image is loaded at ImageBase; the
// driver stack occupies [StackBase-StackSize, StackBase); kernel pool
// allocations are granted out of the heap window; device BARs live in the
// MMIO window; CALLs landing in [TrapBase, TrapBase+4*MaxImports) invoke
// kernel API functions.
const (
	ImageBase  uint32 = 0x0010_0000
	StackBase  uint32 = 0x0040_0000 // initial SP; stack grows down
	StackSize  uint32 = 0x0001_0000 // 64 KiB
	HeapBase   uint32 = 0x0080_0000
	HeapLimit  uint32 = 0x00C0_0000
	KGlobals   uint32 = 0x0000_1000 // kernel global variables visible to drivers
	KGlobalsSz uint32 = 0x0000_1000
	MMIOBase   uint32 = 0xE000_0000
	MMIOLimit  uint32 = 0xE100_0000
	TrapBase   uint32 = 0xF000_0000
	MaxImports        = 4096
)

// InstrSize is the fixed instruction encoding width in bytes.
const InstrSize = 4 * 2

// Opcode identifies a d32 instruction.
type Opcode uint8

// d32 opcodes.
const (
	NOP  Opcode = iota
	MOVI        // rd = imm
	MOV         // rd = rs1
	ADD         // rd = rs1 + rs2
	SUB
	MUL
	DIVU // rd = rs1 / rs2 (unsigned; /0 -> 0xFFFFFFFF)
	REMU // rd = rs1 % rs2 (unsigned; %0 -> rs1)
	AND
	OR
	XOR
	SHL
	SHR // logical
	SAR // arithmetic
	ADDI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SARI
	MULI
	LDW // rd = mem32[rs1+imm]
	LDH // rd = zext16(mem16[rs1+imm])
	LDB // rd = zext8(mem8[rs1+imm])
	STW // mem32[rs1+imm] = rd
	STH
	STB
	PUSH // sp -= 4; mem32[sp] = rd
	POP  // rd = mem32[sp]; sp += 4
	BEQ  // if rs1 == rs2 goto imm
	BNE
	BLTU
	BGEU
	BLT   // signed
	BGE   // signed
	JMP   // goto imm
	JR    // goto rs1
	CALL  // lr = pc+8; goto imm
	CALLR // lr = pc+8; goto rs1
	RET   // goto lr
	IN    // rd = port[rs1]  (device register read)
	OUT   // port[rs1] = rd  (device register write)
	HLT   // halt the machine
	NumOpcodes
)

var opInfo = [NumOpcodes]struct {
	name   string
	hasRd  bool
	hasRs1 bool
	hasRs2 bool
	hasImm bool
}{
	NOP:   {"nop", false, false, false, false},
	MOVI:  {"movi", true, false, false, true},
	MOV:   {"mov", true, true, false, false},
	ADD:   {"add", true, true, true, false},
	SUB:   {"sub", true, true, true, false},
	MUL:   {"mul", true, true, true, false},
	DIVU:  {"divu", true, true, true, false},
	REMU:  {"remu", true, true, true, false},
	AND:   {"and", true, true, true, false},
	OR:    {"or", true, true, true, false},
	XOR:   {"xor", true, true, true, false},
	SHL:   {"shl", true, true, true, false},
	SHR:   {"shr", true, true, true, false},
	SAR:   {"sar", true, true, true, false},
	ADDI:  {"addi", true, true, false, true},
	ANDI:  {"andi", true, true, false, true},
	ORI:   {"ori", true, true, false, true},
	XORI:  {"xori", true, true, false, true},
	SHLI:  {"shli", true, true, false, true},
	SHRI:  {"shri", true, true, false, true},
	SARI:  {"sari", true, true, false, true},
	MULI:  {"muli", true, true, false, true},
	LDW:   {"ldw", true, true, false, true},
	LDH:   {"ldh", true, true, false, true},
	LDB:   {"ldb", true, true, false, true},
	STW:   {"stw", true, true, false, true},
	STH:   {"sth", true, true, false, true},
	STB:   {"stb", true, true, false, true},
	PUSH:  {"push", true, false, false, false},
	POP:   {"pop", true, false, false, false},
	BEQ:   {"beq", false, true, true, true},
	BNE:   {"bne", false, true, true, true},
	BLTU:  {"bltu", false, true, true, true},
	BGEU:  {"bgeu", false, true, true, true},
	BLT:   {"blt", false, true, true, true},
	BGE:   {"bge", false, true, true, true},
	JMP:   {"jmp", false, false, false, true},
	JR:    {"jr", false, true, false, false},
	CALL:  {"call", false, false, false, true},
	CALLR: {"callr", false, true, false, false},
	RET:   {"ret", false, false, false, false},
	IN:    {"in", true, true, false, false},
	OUT:   {"out", true, true, false, false},
	HLT:   {"hlt", false, false, false, false},
}

// Name returns the assembler mnemonic for op.
func (op Opcode) Name() string {
	if op < NumOpcodes {
		return opInfo[op].name
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < NumOpcodes }

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool { return op >= BEQ && op <= BGE }

// IsControlFlow reports whether op can change the program counter.
func (op Opcode) IsControlFlow() bool {
	return op.IsBranch() || op == JMP || op == JR || op == CALL || op == CALLR || op == RET || op == HLT
}

// Instr is one decoded d32 instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm uint32
}

// Encode writes the 8-byte encoding of in to buf.
func (in Instr) Encode(buf []byte) {
	buf[0] = uint8(in.Op)
	buf[1] = in.Rd
	buf[2] = in.Rs1
	buf[3] = in.Rs2
	buf[4] = byte(in.Imm)
	buf[5] = byte(in.Imm >> 8)
	buf[6] = byte(in.Imm >> 16)
	buf[7] = byte(in.Imm >> 24)
}

// Decode parses the 8-byte instruction at buf. It returns an error for
// undefined opcodes or register fields, which the VM reports as an
// invalid-instruction fault (a real machine would trap similarly).
func Decode(buf []byte) (Instr, error) {
	if len(buf) < InstrSize {
		return Instr{}, fmt.Errorf("isa: truncated instruction (%d bytes)", len(buf))
	}
	in := Instr{
		Op:  Opcode(buf[0]),
		Rd:  buf[1],
		Rs1: buf[2],
		Rs2: buf[3],
		Imm: uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24,
	}
	if !in.Op.Valid() {
		return in, fmt.Errorf("isa: undefined opcode %#x", buf[0])
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return in, fmt.Errorf("isa: register field out of range in %s", in.Op.Name())
	}
	return in, nil
}

// String renders in as assembler text.
func (in Instr) String() string {
	info := opInfo[in.Op]
	switch in.Op {
	case NOP, RET, HLT:
		return info.name
	case MOVI:
		return fmt.Sprintf("%s %s, %#x", info.name, RegName(in.Rd), in.Imm)
	case MOV:
		return fmt.Sprintf("%s %s, %s", info.name, RegName(in.Rd), RegName(in.Rs1))
	case LDW, LDH, LDB:
		return fmt.Sprintf("%s %s, [%s%+d]", info.name, RegName(in.Rd), RegName(in.Rs1), int32(in.Imm))
	case STW, STH, STB:
		return fmt.Sprintf("%s [%s%+d], %s", info.name, RegName(in.Rs1), int32(in.Imm), RegName(in.Rd))
	case PUSH, POP:
		return fmt.Sprintf("%s %s", info.name, RegName(in.Rd))
	case BEQ, BNE, BLTU, BGEU, BLT, BGE:
		return fmt.Sprintf("%s %s, %s, %#x", info.name, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case JMP, CALL:
		return fmt.Sprintf("%s %#x", info.name, in.Imm)
	case JR, CALLR:
		return fmt.Sprintf("%s %s", info.name, RegName(in.Rs1))
	case IN:
		return fmt.Sprintf("in %s, %s", RegName(in.Rd), RegName(in.Rs1))
	case OUT:
		return fmt.Sprintf("out %s, %s", RegName(in.Rs1), RegName(in.Rd))
	}
	// Three-operand ALU and reg-imm ALU forms.
	if info.hasRs2 {
		return fmt.Sprintf("%s %s, %s, %s", info.name, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	}
	if info.hasImm {
		return fmt.Sprintf("%s %s, %s, %#x", info.name, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	}
	return info.name
}

// OpcodeByName returns the opcode with the given mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		if opInfo[op].name == name {
			return op, true
		}
	}
	return 0, false
}

// InTrapWindow reports whether addr is an import trap address and, if so,
// which import slot it denotes.
func InTrapWindow(addr uint32) (slot int, ok bool) {
	if addr < TrapBase || addr >= TrapBase+4*MaxImports {
		return 0, false
	}
	return int(addr-TrapBase) / 4, true
}

// TrapAddr returns the trap address for import slot i.
func TrapAddr(slot int) uint32 { return TrapBase + uint32(slot)*4 }
