package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: NOP},
		{Op: MOVI, Rd: 3, Imm: 0xDEADBEEF},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: LDW, Rd: 4, Rs1: SP, Imm: 0xFFFFFFF8}, // [sp-8]
		{Op: STB, Rd: 5, Rs1: 6, Imm: 12},
		{Op: BEQ, Rs1: 0, Rs2: 12, Imm: ImageBase + 0x40},
		{Op: CALL, Imm: TrapAddr(7)},
		{Op: RET},
		{Op: IN, Rd: 0, Rs1: 1},
		{Op: OUT, Rd: 2, Rs1: 3},
		{Op: HLT},
	}
	var buf [InstrSize]byte
	for _, in := range ins {
		in.Encode(buf[:])
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm uint32) bool {
		in := Instr{
			Op:  Opcode(op % uint8(NumOpcodes)),
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: imm,
		}
		var buf [InstrSize]byte
		in.Encode(buf[:])
		got, err := Decode(buf[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
	var buf [InstrSize]byte
	Instr{Op: NumOpcodes, Rd: 0}.Encode(buf[:])
	if _, err := Decode(buf[:]); err == nil {
		t.Error("undefined opcode accepted")
	}
	Instr{Op: ADD, Rd: 15}.Encode(buf[:])
	if _, err := Decode(buf[:]); err == nil {
		t.Error("register out of range accepted")
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		got, ok := OpcodeByName(op.Name())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.Name(), got, ok)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestClassPredicates(t *testing.T) {
	for _, op := range []Opcode{BEQ, BNE, BLTU, BGEU, BLT, BGE} {
		if !op.IsBranch() || !op.IsControlFlow() {
			t.Errorf("%s should be a branch", op.Name())
		}
	}
	for _, op := range []Opcode{JMP, JR, CALL, CALLR, RET, HLT} {
		if op.IsBranch() {
			t.Errorf("%s should not be a conditional branch", op.Name())
		}
		if !op.IsControlFlow() {
			t.Errorf("%s should be control flow", op.Name())
		}
	}
	for _, op := range []Opcode{ADD, MOVI, LDW, STW, IN, OUT} {
		if op.IsControlFlow() {
			t.Errorf("%s should not be control flow", op.Name())
		}
	}
}

func TestTrapWindow(t *testing.T) {
	for _, slot := range []int{0, 1, 99, MaxImports - 1} {
		addr := TrapAddr(slot)
		got, ok := InTrapWindow(addr)
		if !ok || got != slot {
			t.Errorf("InTrapWindow(TrapAddr(%d)) = %d, %v", slot, got, ok)
		}
	}
	if _, ok := InTrapWindow(ImageBase); ok {
		t.Error("image base misclassified as trap")
	}
	if _, ok := InTrapWindow(TrapBase + 4*MaxImports); ok {
		t.Error("address past trap window accepted")
	}
}

func TestRegNames(t *testing.T) {
	if RegName(SP) != "sp" || RegName(LR) != "lr" || RegName(0) != "r0" {
		t.Errorf("register naming broken: %q %q %q", RegName(SP), RegName(LR), RegName(0))
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: MOVI, Rd: 2, Imm: 16}, "movi r2, 0x10"},
		{Instr{Op: ADD, Rd: 0, Rs1: 1, Rs2: 2}, "add r0, r1, r2"},
		{Instr{Op: ADDI, Rd: SP, Rs1: SP, Imm: 0xFFFFFFF8}, "addi sp, sp, 0xfffffff8"},
		{Instr{Op: LDW, Rd: 1, Rs1: SP, Imm: 4}, "ldw r1, [sp+4]"},
		{Instr{Op: STW, Rd: 1, Rs1: SP, Imm: 0xFFFFFFFC}, "stw [sp-4], r1"},
		{Instr{Op: RET}, "ret"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String: got %q, want %q", got, tc.want)
		}
	}
}
