package asm

import (
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/isa"
)

const miniDriver = `
; minimal but complete driver image
.name testdrv
.device vendor=0x10EC device=0x8029 class=network bar=256 ports=32 irq=9 rev=1
.import NdisMRegisterMiniport
.import NdisAllocateMemoryWithTag
.entry DriverEntry

.text
DriverEntry:
    addi sp, sp, -8
    stw  [sp+0], lr
    movi r0, greeting
    call NdisMRegisterMiniport
    movi r12, 0
    beq  r0, r12, fail
    call helper
    jmp  done
fail:
    movi r0, 1
done:
    ldw  lr, [sp+0]
    addi sp, sp, 8
    ret

helper:
    movi r0, counters
    ldw  r1, [r0+0]
    addi r1, r1, 1
    stw  [r0+0], r1
    ret

.data
greeting: .asciz "hello"
caps:     .word 1, 2, 4, DriverEntry
counters: .space 16
`

func mustAsm(t *testing.T, src string) *binimg.Image {
	t.Helper()
	im, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return im
}

func TestAssembleMiniDriver(t *testing.T) {
	im := mustAsm(t, miniDriver)
	if im.Name != "testdrv" {
		t.Errorf("name = %q", im.Name)
	}
	if im.Entry != isa.ImageBase {
		t.Errorf("entry = %#x, want %#x", im.Entry, isa.ImageBase)
	}
	if len(im.Imports) != 2 || im.Imports[0] != "NdisMRegisterMiniport" {
		t.Errorf("imports = %v", im.Imports)
	}
	if im.Device.VendorID != 0x10EC || im.Device.DeviceID != 0x8029 {
		t.Errorf("device = %+v", im.Device)
	}
	if im.Device.Class != binimg.ClassNetwork {
		t.Errorf("class = %v", im.Device.Class)
	}
	if im.BSSSize != 16 {
		t.Errorf("bss = %d", im.BSSSize)
	}
	wantInstrs := 17
	if got := len(im.Text) / isa.InstrSize; got != wantInstrs {
		t.Errorf("instruction count = %d, want %d", got, wantInstrs)
	}
}

func TestImportCallResolvesToTrap(t *testing.T) {
	im := mustAsm(t, miniDriver)
	// Fourth instruction is "call NdisMRegisterMiniport".
	in, err := isa.Decode(im.Text[3*isa.InstrSize:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.CALL {
		t.Fatalf("instr 3 is %v, want call", in.Op.Name())
	}
	slot, ok := isa.InTrapWindow(in.Imm)
	if !ok || slot != 0 {
		t.Errorf("call target %#x, want trap slot 0", in.Imm)
	}
}

func TestLocalCallAndBranchTargets(t *testing.T) {
	im := mustAsm(t, miniDriver)
	dis := binimg.Disassemble(im)
	if !strings.Contains(dis, "call 0x1000") { // helper label in text
		t.Errorf("local call not resolved:\n%s", dis)
	}
	// beq target "fail" must be a text VA.
	in, err := isa.Decode(im.Text[5*isa.InstrSize:])
	if err != nil || in.Op != isa.BEQ {
		t.Fatalf("instr 5 = %v, err %v", in, err)
	}
	if in.Imm < isa.ImageBase || in.Imm >= isa.ImageBase+uint32(len(im.Text)) {
		t.Errorf("branch target %#x outside text", in.Imm)
	}
}

func TestDataLabelResolution(t *testing.T) {
	im := mustAsm(t, miniDriver)
	// "movi r0, greeting" is instruction 2.
	in, _ := isa.Decode(im.Text[2*isa.InstrSize:])
	if in.Op != isa.MOVI {
		t.Fatalf("instr 2 = %v", in.Op.Name())
	}
	if in.Imm != im.DataBase() {
		t.Errorf("greeting VA = %#x, want data base %#x", in.Imm, im.DataBase())
	}
	// Data word referencing a text label: caps[3] == DriverEntry VA.
	capsOff := 8 // "hello\0" padded to 8
	word := uint32(im.Data[capsOff+12]) | uint32(im.Data[capsOff+13])<<8 |
		uint32(im.Data[capsOff+14])<<16 | uint32(im.Data[capsOff+15])<<24
	if word != im.Entry {
		t.Errorf("caps[3] = %#x, want entry %#x", word, im.Entry)
	}
}

func TestBSSLabelPointsAtBSSBase(t *testing.T) {
	im := mustAsm(t, miniDriver)
	// "movi r0, counters" inside helper (instruction 12).
	in, _ := isa.Decode(im.Text[12*isa.InstrSize:])
	if in.Op != isa.MOVI {
		t.Fatalf("instr 12 = %v", in.Op.Name())
	}
	if in.Imm != im.BSSBase() {
		t.Errorf("counters VA = %#x, want bss base %#x", in.Imm, im.BSSBase())
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	im := mustAsm(t, miniDriver)
	im2, err := binimg.Parse(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if im2.Name != im.Name || im2.Entry != im.Entry || im2.BSSSize != im.BSSSize {
		t.Errorf("round trip mismatch: %+v vs %+v", im2, im)
	}
	if string(im2.Text) != string(im.Text) || string(im2.Data) != string(im.Data) {
		t.Error("section contents differ after round trip")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no entry", ".text\nstart: ret\n", "missing .entry"},
		{"bad mnemonic", ".entry e\n.text\ne: frobnicate r0\n", "unknown mnemonic"},
		{"undefined symbol", ".entry e\n.text\ne: jmp nowhere\n", "undefined symbol"},
		{"dup label", ".entry e\n.text\ne: ret\ne: ret\n", "already defined"},
		{"dup import", ".import X\n.import X\n.entry e\n.text\ne: ret\n", "duplicate import"},
		{"instr outside text", ".entry e\nret\n", "outside .text"},
		{"bad register", ".entry e\n.text\ne: mov r99, r0\n", "bad register"},
		{"word outside data", ".entry e\n.text\ne: ret\n.word 5\n", ".word outside .data"},
		{"data after space", ".entry e\n.text\ne: ret\n.data\n.space 8\n.word 1\n", "bss must come last"},
		{"bad device class", ".device class=quantum\n.entry e\n.text\ne: ret\n", "unknown device class"},
		{"missing operand", ".entry e\n.text\ne: add r0, r1\n", "missing operand"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(".entry e\n.text\ne: ret\nbogus r0\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 4 {
		t.Errorf("line = %d, want 4", aerr.Line)
	}
}

func TestNegativeImmediates(t *testing.T) {
	im := mustAsm(t, ".entry e\n.text\ne: addi sp, sp, -16\n ldw r0, [sp-4]\n ret\n")
	in, _ := isa.Decode(im.Text)
	if int32(in.Imm) != -16 {
		t.Errorf("addi imm = %d, want -16", int32(in.Imm))
	}
	in2, _ := isa.Decode(im.Text[isa.InstrSize:])
	if int32(in2.Imm) != -4 {
		t.Errorf("ldw offset = %d, want -4", int32(in2.Imm))
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
.entry e   ; entry comment
.text
; full line comment
# hash comment
e:   ret   # trailing
`
	im := mustAsm(t, src)
	if len(im.Text) != isa.InstrSize {
		t.Errorf("text = %d bytes, want one instruction", len(im.Text))
	}
}

func TestAscizWithSemicolonInString(t *testing.T) {
	im := mustAsm(t, ".entry e\n.text\ne: ret\n.data\ns: .asciz \"a;b\"\n")
	if string(im.Data[:4]) != "a;b\x00" {
		t.Errorf("data = %q", im.Data)
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	im := mustAsm(t, ".entry a\n.text\na: b: ret\n")
	if im.Entry != isa.ImageBase {
		t.Errorf("entry = %#x", im.Entry)
	}
}

func TestParseRejectsCorruptImages(t *testing.T) {
	im := mustAsm(t, miniDriver)
	raw := im.Marshal()
	if _, err := binimg.Parse(raw[:8]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xFF
	if _, err := binimg.Parse(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinInfoOnMiniDriver(t *testing.T) {
	im := mustAsm(t, miniDriver)
	info := binimg.Analyze(im)
	if info.NumFunctions != 2 { // DriverEntry + helper
		t.Errorf("functions = %d, want 2", info.NumFunctions)
	}
	if info.KernelImports != 1 { // only NdisMRegisterMiniport is called
		t.Errorf("kernel imports called = %d, want 1", info.KernelImports)
	}
	if info.CodeSize != len(im.Text) || info.NumInstructions != len(im.Text)/isa.InstrSize {
		t.Errorf("size accounting wrong: %+v", info)
	}
	if info.NumBasicBlocks < 4 {
		t.Errorf("basic blocks = %d, want >= 4", info.NumBasicBlocks)
	}
}

func TestStaticBlocksSortedAndInText(t *testing.T) {
	im := mustAsm(t, miniDriver)
	blocks := binimg.StaticBlocks(im)
	if len(blocks) == 0 || blocks[0] != im.TextBase() {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i] <= blocks[i-1] {
			t.Errorf("blocks not strictly sorted at %d", i)
		}
		if blocks[i] >= im.TextBase()+uint32(len(im.Text)) {
			t.Errorf("block %#x outside text", blocks[i])
		}
	}
}
