// Package asm implements a two-pass assembler for d32, producing DXE driver
// images. The assembler exists to build the evaluation corpus — the
// "vendors' build toolchain" of this reproduction. DDT itself never sees
// assembly: it consumes the binary image only.
//
// Source syntax, line oriented, ';' or '#' to end of line is a comment:
//
//	.name rtl8029
//	.device vendor=0x10EC device=0x8029 class=network bar=256 ports=32 irq=9
//	.import NdisMRegisterMiniport
//	.entry DriverEntry
//	.text
//	DriverEntry:
//	    addi sp, sp, -8
//	    stw  [sp+0], lr
//	    movi r1, cfg_name        ; labels are absolute VAs
//	    call NdisMRegisterMiniport
//	    beq  r0, r12, fail
//	fail:
//	    ldw  lr, [sp+0]
//	    addi sp, sp, 8
//	    ret
//	.data
//	cfg_name: .asciz "MaximumMulticastList"
//	ring:     .space 64
//	caps:     .word 1, 2, 4, 8
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/binimg"
	"repro/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secNone section = iota
	secText
	secData
)

type fixup struct {
	line    int
	textOff int    // instruction byte offset in text
	symbol  string // label or import to resolve into Imm
}

type dataFixup struct {
	line    int
	dataOff int
	symbol  string
}

type assembler struct {
	name    string
	entry   string
	device  binimg.PCIDescriptor
	imports []string
	impIdx  map[string]int

	text   []byte
	data   []byte
	bss    uint32
	sec    section
	labels map[string]labelRef // name -> section+offset
	fixups []fixup
	dfix   []dataFixup
	line   int
}

type labelRef struct {
	sec  section
	off  uint32
	line int
}

// Assemble translates d32 source into a DXE image.
func Assemble(src string) (*binimg.Image, error) {
	a := &assembler{
		impIdx: make(map[string]int),
		labels: make(map[string]labelRef),
		device: binimg.PCIDescriptor{BARSize: 256, IOPorts: 32, IRQLine: 9},
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.finish()
}

// MustAssemble is Assemble that panics on error; for in-tree corpus sources
// that are validated by tests.
func MustAssemble(src string) *binimg.Image {
	im, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return im
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: one or more "name:" prefixes.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if !isIdent(head) {
				break
			}
			if err := a.defineLabel(head); err != nil {
				return err
			}
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line); err != nil {
				return err
			}
			continue
		}
		if a.sec != secText {
			return a.errf("instruction outside .text: %q", line)
		}
		if err := a.instruction(line); err != nil {
			return err
		}
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(name string) error {
	if prev, dup := a.labels[name]; dup {
		return a.errf("label %q already defined at line %d", name, prev.line)
	}
	switch a.sec {
	case secText:
		a.labels[name] = labelRef{secText, uint32(len(a.text)), a.line}
	case secData:
		a.labels[name] = labelRef{secData, uint32(len(a.data)) + a.bss, a.line}
	default:
		return a.errf("label %q outside any section", name)
	}
	return nil
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	dir := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, dir))
	switch dir {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".name":
		a.name = rest
	case ".entry":
		a.entry = rest
	case ".import":
		name := rest
		if name == "" {
			return a.errf(".import requires a name")
		}
		if _, dup := a.impIdx[name]; dup {
			return a.errf("duplicate import %q", name)
		}
		a.impIdx[name] = len(a.imports)
		a.imports = append(a.imports, name)
	case ".device":
		return a.deviceDirective(rest)
	case ".word":
		if a.sec != secData {
			return a.errf(".word outside .data")
		}
		if a.bss > 0 {
			return a.errf("initialized data after .space (bss must come last)")
		}
		for _, f := range strings.Split(rest, ",") {
			f = strings.TrimSpace(f)
			if v, err := a.parseImm(f); err == nil {
				a.emitDataWord(v)
			} else if isIdent(f) {
				a.dfix = append(a.dfix, dataFixup{a.line, len(a.data), f})
				a.emitDataWord(0)
			} else {
				return a.errf("bad .word operand %q", f)
			}
		}
	case ".asciz":
		if a.sec != secData {
			return a.errf(".asciz outside .data")
		}
		if a.bss > 0 {
			return a.errf("initialized data after .space (bss must come last)")
		}
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string %s: %v", rest, err)
		}
		a.data = append(a.data, s...)
		a.data = append(a.data, 0)
		for len(a.data)%4 != 0 {
			a.data = append(a.data, 0)
		}
	case ".space":
		if a.sec != secData {
			return a.errf(".space outside .data")
		}
		n, err := a.parseImm(rest)
		if err != nil {
			return a.errf("bad .space size: %v", err)
		}
		if a.bss == 0 {
			// Align initialized data to 8 so that bss label offsets (which
			// are relative to the data base) land exactly at BSSBase, and
			// move labels already pointing at the old end of data (the
			// usual "ring: .space 64" pattern) past the padding.
			oldLen := uint32(len(a.data))
			for len(a.data)%8 != 0 {
				a.data = append(a.data, 0)
			}
			newLen := uint32(len(a.data))
			if newLen != oldLen {
				for name, ref := range a.labels {
					if ref.sec == secData && ref.off == oldLen {
						ref.off = newLen
						a.labels[name] = ref
					}
				}
			}
		}
		a.bss += (n + 3) &^ 3
	default:
		return a.errf("unknown directive %q", dir)
	}
	return nil
}

func (a *assembler) deviceDirective(rest string) error {
	for _, kv := range strings.Fields(rest) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return a.errf("bad .device field %q", kv)
		}
		switch k {
		case "class":
			switch v {
			case "network":
				a.device.Class = binimg.ClassNetwork
			case "audio":
				a.device.Class = binimg.ClassAudio
			case "other":
				a.device.Class = binimg.ClassOther
			case "storage":
				a.device.Class = binimg.ClassStorage
			default:
				return a.errf("unknown device class %q", v)
			}
			continue
		}
		n, err := a.parseImm(v)
		if err != nil {
			return a.errf("bad .device value %q: %v", kv, err)
		}
		switch k {
		case "vendor":
			a.device.VendorID = uint16(n)
		case "device":
			a.device.DeviceID = uint16(n)
		case "bar":
			a.device.BARSize = n
		case "ports":
			a.device.IOPorts = uint16(n)
		case "irq":
			a.device.IRQLine = uint8(n)
		case "rev":
			a.device.Revision = uint8(n)
		default:
			return a.errf("unknown .device key %q", k)
		}
	}
	return nil
}

func (a *assembler) emitDataWord(v uint32) {
	a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *assembler) parseImm(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "+")
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, err
	}
	u := uint32(v)
	if neg {
		u = -u
	}
	return u, nil
}

func parseReg(s string) (uint8, bool) {
	switch s {
	case "sp":
		return isa.SP, true
	case "lr":
		return isa.LR, true
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

// parseMem parses "[reg]", "[reg+imm]", "[reg-imm]".
func (a *assembler) parseMem(s string) (uint8, uint32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, ok := parseReg(strings.TrimSpace(inner))
		if !ok {
			return 0, 0, a.errf("bad base register in %q", s)
		}
		return r, 0, nil
	}
	r, ok := parseReg(strings.TrimSpace(inner[:sep]))
	if !ok {
		return 0, 0, a.errf("bad base register in %q", s)
	}
	imm, err := a.parseImm(inner[sep:])
	if err != nil {
		return 0, 0, a.errf("bad offset in %q: %v", s, err)
	}
	return r, imm, nil
}

func (a *assembler) instruction(line string) error {
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.TrimSpace(mn)
	op, ok := isa.OpcodeByName(mn)
	if !ok {
		return a.errf("unknown mnemonic %q", mn)
	}
	ops := splitOperands(rest)
	in := isa.Instr{Op: op}

	reg := func(i int) (uint8, error) {
		if i >= len(ops) {
			return 0, a.errf("%s: missing operand %d", mn, i+1)
		}
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, a.errf("%s: bad register %q", mn, ops[i])
		}
		return r, nil
	}
	immOrSym := func(i int) (uint32, error) {
		if i >= len(ops) {
			return 0, a.errf("%s: missing operand %d", mn, i+1)
		}
		s := ops[i]
		if v, err := a.parseImm(s); err == nil {
			return v, nil
		}
		if isIdent(s) {
			a.fixups = append(a.fixups, fixup{a.line, len(a.text), s})
			return 0, nil
		}
		return 0, a.errf("%s: bad immediate %q", mn, s)
	}

	var err error
	switch op {
	case isa.NOP, isa.RET, isa.HLT:
		if len(ops) != 0 {
			return a.errf("%s takes no operands", mn)
		}
	case isa.MOVI:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Imm, err = immOrSym(1); err != nil {
			return err
		}
	case isa.MOV:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Rs1, err = reg(1); err != nil {
			return err
		}
	case isa.ADD, isa.SUB, isa.MUL, isa.DIVU, isa.REMU, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Rs1, err = reg(1); err != nil {
			return err
		}
		if in.Rs2, err = reg(2); err != nil {
			return err
		}
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SARI, isa.MULI:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Rs1, err = reg(1); err != nil {
			return err
		}
		if in.Imm, err = immOrSym(2); err != nil {
			return err
		}
	case isa.LDW, isa.LDH, isa.LDB:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if len(ops) < 2 {
			return a.errf("%s: missing memory operand", mn)
		}
		if in.Rs1, in.Imm, err = a.parseMem(ops[1]); err != nil {
			return err
		}
	case isa.STW, isa.STH, isa.STB:
		if len(ops) < 2 {
			return a.errf("%s: missing operands", mn)
		}
		if in.Rs1, in.Imm, err = a.parseMem(ops[0]); err != nil {
			return err
		}
		if in.Rd, err = reg(1); err != nil {
			return err
		}
	case isa.PUSH, isa.POP:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
	case isa.BEQ, isa.BNE, isa.BLTU, isa.BGEU, isa.BLT, isa.BGE:
		if in.Rs1, err = reg(0); err != nil {
			return err
		}
		if in.Rs2, err = reg(1); err != nil {
			return err
		}
		if in.Imm, err = immOrSym(2); err != nil {
			return err
		}
	case isa.JMP, isa.CALL:
		if in.Imm, err = immOrSym(0); err != nil {
			return err
		}
	case isa.JR, isa.CALLR:
		if in.Rs1, err = reg(0); err != nil {
			return err
		}
	case isa.IN:
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Rs1, err = reg(1); err != nil {
			return err
		}
	case isa.OUT:
		// out port_reg, value_reg — port in Rs1, value in Rd (encoding quirk
		// shared with the store family).
		if in.Rs1, err = reg(0); err != nil {
			return err
		}
		if in.Rd, err = reg(1); err != nil {
			return err
		}
	default:
		return a.errf("unhandled opcode %q", mn)
	}

	var buf [isa.InstrSize]byte
	in.Encode(buf[:])
	a.text = append(a.text, buf[:]...)
	return nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (a *assembler) resolve(sym string, line int) (uint32, error) {
	if ref, ok := a.labels[sym]; ok {
		switch ref.sec {
		case secText:
			return isa.ImageBase + ref.off, nil
		case secData:
			dataBase := isa.ImageBase + align8(uint32(len(a.text)))
			dataLen := uint32(len(a.data))
			if ref.off <= dataLen {
				return dataBase + ref.off, nil
			}
			// Label inside bss: bss starts at the 8-byte-aligned end of the
			// initialized data.
			return dataBase + align8(dataLen) + (ref.off - dataLen), nil
		}
	}
	if slot, ok := a.impIdx[sym]; ok {
		return isa.TrapAddr(slot), nil
	}
	return 0, &Error{Line: line, Msg: fmt.Sprintf("undefined symbol %q", sym)}
}

func align8(v uint32) uint32 { return (v + 7) &^ 7 }

func (a *assembler) finish() (*binimg.Image, error) {
	if a.entry == "" {
		return nil, &Error{Line: 0, Msg: "missing .entry"}
	}
	for _, f := range a.fixups {
		va, err := a.resolve(f.symbol, f.line)
		if err != nil {
			return nil, err
		}
		a.text[f.textOff+4] = byte(va)
		a.text[f.textOff+5] = byte(va >> 8)
		a.text[f.textOff+6] = byte(va >> 16)
		a.text[f.textOff+7] = byte(va >> 24)
	}
	for _, f := range a.dfix {
		va, err := a.resolve(f.symbol, f.line)
		if err != nil {
			return nil, err
		}
		a.data[f.dataOff] = byte(va)
		a.data[f.dataOff+1] = byte(va >> 8)
		a.data[f.dataOff+2] = byte(va >> 16)
		a.data[f.dataOff+3] = byte(va >> 24)
	}
	entryRef, ok := a.labels[a.entry]
	if !ok || entryRef.sec != secText {
		return nil, &Error{Line: 0, Msg: fmt.Sprintf("entry label %q not defined in .text", a.entry)}
	}
	im := &binimg.Image{
		Name:    a.name,
		Entry:   isa.ImageBase + entryRef.off,
		Text:    a.text,
		Data:    a.data,
		BSSSize: a.bss,
		Imports: a.imports,
		Device:  a.device,
	}
	// Round-trip through Marshal/Parse to guarantee the emitted image is
	// well-formed by construction.
	parsed, err := binimg.Parse(im.Marshal())
	if err != nil {
		return nil, fmt.Errorf("asm: emitted image fails validation: %w", err)
	}
	return parsed, nil
}
