package analysis

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/trace"
)

// rtl8029Spec models the relevant slice of the RTL8029 (NE2000) datasheet:
// the interrupt status register (port 0x07) reports only its low event
// bits, and interrupts fire only after the IMR (port 0x0F) is written —
// which the buggy driver never does before its init race.
func rtl8029Spec() *DeviceSpec {
	return &DeviceSpec{
		Device: "rtl8029",
		Registers: map[string]RegisterRange{
			"hw_port_0x7": {Name: "ISR", Min: 0, Max: 0x7F},
		},
		InterruptEnableWrite: "hw_port_0xf",
	}
}

func rtl8029Bugs(t *testing.T) []*core.Bug {
	t.Helper()
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(img, core.DefaultOptions())
	if _, err := e.TestDriver(context.Background()); err != nil {
		t.Fatal(err)
	}
	return e.Bugs()
}

// TestRTL8029RaceRequiresMalfunction reproduces §5.1's manual analysis:
// "since the execution traces contained no writes to that register, we
// concluded that the crash occurred before the driver enabled interrupts"
// — the init race is a hardware-malfunction-only bug.
func TestRTL8029RaceRequiresMalfunction(t *testing.T) {
	spec := rtl8029Spec()
	found := false
	for _, b := range rtl8029Bugs(t) {
		if b.Class != "race condition" {
			continue
		}
		found = true
		v := Analyze(b, spec)
		if !v.HardwareDependent {
			t.Error("race not marked hardware dependent")
		}
		if !v.RequiresMalfunction {
			t.Errorf("race should require malfunctioning hardware: %v", v)
		}
		if !strings.Contains(v.String(), "interrupt delivered before") {
			t.Errorf("verdict = %v", v)
		}
	}
	if !found {
		t.Fatal("race bug not found")
	}
}

// TestSoftwareOnlyBugs: the registry-driven memory corruption and the
// config-handle leak involve no hardware values at all.
func TestSoftwareOnlyBugs(t *testing.T) {
	spec := rtl8029Spec()
	for _, b := range rtl8029Bugs(t) {
		if b.Class != "resource leak" && b.Class != "memory corruption" {
			continue
		}
		v := Analyze(b, spec)
		if v.HardwareDependent {
			t.Errorf("%s marked hardware dependent: %v", b.Class, v)
		}
		if !strings.Contains(v.String(), "software-only") {
			t.Errorf("verdict = %v", v)
		}
	}
}

func TestOutOfSpecRegisterValue(t *testing.T) {
	// A synthetic spec that forbids what the model assigns: any bug whose
	// path consumed a hardware symbol must then be flagged out-of-spec.
	for _, b := range rtl8029Bugs(t) {
		hw := false
		for _, si := range b.Symbols {
			if strings.HasPrefix(si.Name, "hw_port_0x7") {
				hw = true
			}
		}
		if !hw {
			continue
		}
		spec := &DeviceSpec{
			Device: "rtl8029",
			Registers: map[string]RegisterRange{
				// The device "never" returns anything (empty range at an
				// impossible point).
				"hw_port_0x7": {Name: "ISR", Min: 0x50, Max: 0x50, Mask: 0xFF},
			},
		}
		v := Analyze(b, spec)
		if len(b.Model) > 0 && !v.RequiresMalfunction {
			// Only flag when the model value actually misses 0x50.
			for _, si := range b.Symbols {
				if strings.HasPrefix(si.Name, "hw_port_0x7") && b.Model[si.ID]&0xFF != 0x50 {
					t.Errorf("out-of-spec value not flagged: %v", v)
				}
			}
		}
		return
	}
	t.Skip("no hardware-consuming bug found")
}

func TestNilSpec(t *testing.T) {
	for _, b := range rtl8029Bugs(t) {
		v := Analyze(b, nil)
		if v.RequiresMalfunction {
			t.Error("nil spec cannot prove malfunction")
		}
	}
}

func TestExecutionTree(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(img, core.DefaultOptions())
	if _, err := e.TestDriver(context.Background()); err != nil {
		t.Fatal(err)
	}
	var files []*trace.File
	for _, b := range e.Bugs() {
		files = append(files, trace.New(b, "rtl8029", true, e.EffectiveRegistry()))
	}
	tree := trace.BuildTree(files)
	if tree.Paths != len(files) {
		t.Errorf("paths = %d", tree.Paths)
	}
	leaves := tree.Leaves()
	if len(leaves) != len(files) {
		t.Errorf("leaves = %d, want %d", len(leaves), len(files))
	}
	// All five bug paths share the DriverEntry prefix: the root must have
	// exactly one child (the shared entry), and fork points must exist.
	if len(tree.Root.Children) != 1 {
		t.Errorf("root children = %d, want 1 (shared DriverEntry prefix)", len(tree.Root.Children))
	}
	if tree.ForkPoints() == 0 {
		t.Error("no fork points in a five-path tree")
	}
	r := tree.Render()
	if !strings.Contains(r, "DriverEntry") || !strings.Contains(r, "BUG") {
		t.Errorf("render:\n%s", r)
	}
}
