// Package analysis implements the bug post-mortems of §3.6: deciding from
// a bug's trace and solved inputs whether the failure can occur with
// correctly functioning hardware, or only when the device malfunctions.
//
// "Based on device specifications provided by hardware vendors, one can
// decide whether a bug can only occur when a device malfunctions. Say a
// DDT symbolic device returned a value that eventually led to a bug; if
// the set of possible concrete values implied by the constraints on that
// symbolic read does not intersect the set of possible values indicated by
// the specification, then one can safely conclude that the observed
// behavior would not have occurred unless the hardware malfunctioned."
//
// The paper's worked example is the RTL8029 init race: the trace contained
// no write to the interrupt control register, so a correctly functioning
// device would not have raised the interrupt — the bug needs
// malfunctioning (or merely revised) silicon, which is exactly why DDT
// tests against it anyway (§3.3).
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/vm"
)

// RegisterRange is a vendor-documented constraint on one device register.
type RegisterRange struct {
	// Name of the register in the datasheet ("ISR", "CSR0", ...).
	Name string
	// Min/Max bound the values a correctly functioning device produces.
	Min, Max uint32
	// Mask, when non-zero, restricts the comparison to these bits.
	Mask uint32
}

// DeviceSpec is the relevant slice of a device datasheet: per-register
// value ranges keyed by the symbol-name prefix DDT gives reads of that
// register ("hw_port_0x7", "hw_mmio_0xc0"), plus the register whose write
// enables interrupts.
type DeviceSpec struct {
	Device string
	// Registers maps the symbolic-read name prefix to its documented range.
	Registers map[string]RegisterRange
	// InterruptEnableWrite names the register (same prefix form) that the
	// driver must write before the device may raise interrupts. Empty
	// means unknown/not modelled.
	InterruptEnableWrite string
}

// Verdict is the outcome of analyzing one bug.
type Verdict struct {
	// HardwareDependent: the path consumed at least one symbolic hardware
	// value.
	HardwareDependent bool
	// RequiresMalfunction: the bug cannot occur with a device that honours
	// the specification.
	RequiresMalfunction bool
	// Reasons explain the verdict, one line each.
	Reasons []string
}

func (v *Verdict) String() string {
	switch {
	case !v.HardwareDependent:
		return "independent of hardware behaviour (software-only bug)"
	case v.RequiresMalfunction:
		return "occurs only if the hardware malfunctions: " + strings.Join(v.Reasons, "; ")
	default:
		return "reachable with specification-conforming hardware"
	}
}

// Analyze inspects a bug's trace and model against the device spec.
func Analyze(b *core.Bug, spec *DeviceSpec) *Verdict {
	v := &Verdict{}

	// 1. Out-of-spec hardware read values: a hardware-origin symbol whose
	// solved value falls outside the documented range means the path needs
	// a register reading the datasheet forbids.
	for _, si := range b.Symbols {
		if si.Origin != expr.OriginHardware {
			continue
		}
		v.HardwareDependent = true
		if spec == nil {
			continue
		}
		rr, ok := lookup(spec, si.Name)
		if !ok {
			continue
		}
		val := b.Model[si.ID]
		masked := val
		if rr.Mask != 0 {
			masked = val & rr.Mask
		}
		if masked < rr.Min || masked > rr.Max {
			v.RequiresMalfunction = true
			v.Reasons = append(v.Reasons, fmt.Sprintf(
				"%s read %#x, but the %s specification allows [%#x, %#x]",
				si.Name, masked, rr.Name, rr.Min, rr.Max))
		}
	}

	// 2. The paper's interrupt argument: an injected interrupt with no
	// prior write to the interrupt-enable register cannot come from a
	// correctly functioning device.
	if spec != nil && spec.InterruptEnableWrite != "" {
		if interruptBeforeEnable(b.Trace, spec.InterruptEnableWrite) {
			v.HardwareDependent = true
			v.RequiresMalfunction = true
			v.Reasons = append(v.Reasons, fmt.Sprintf(
				"interrupt delivered before any write to %s (interrupts were never enabled)",
				spec.InterruptEnableWrite))
		}
	}
	return v
}

// lookup finds the range whose register prefix matches the symbol name
// (symbol names carry a "#N" uniquifier suffix).
func lookup(spec *DeviceSpec, symName string) (RegisterRange, bool) {
	for prefix, rr := range spec.Registers {
		if strings.HasPrefix(symName, prefix) {
			return rr, true
		}
	}
	return RegisterRange{}, false
}

// interruptBeforeEnable scans the trace for the paper's RTL8029 argument:
// an EvInterrupt occurring before any recorded device write (EvDevice) to
// the interrupt-enable register means the interrupt fired while interrupts
// were still disabled — impossible for a specification-conforming device.
func interruptBeforeEnable(events []vm.Event, enable string) bool {
	sawIntr := false
	for _, ev := range events {
		switch ev.Kind {
		case vm.EvInterrupt:
			sawIntr = true
			return true // no enable write seen yet on this path
		case vm.EvDevice:
			if ev.Write && strings.HasPrefix(ev.Name, enable) {
				return false // interrupts enabled before any injection
			}
		}
	}
	return sawIntr
}
