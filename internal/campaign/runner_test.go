package campaign

import (
	"context"
	"flag"
	"sync"
	"testing"
	"time"
)

// listFrontier hands out a fixed list of ints in order.
type listFrontier struct {
	items   []int
	next    int
	retired []int
	idles   int
	refill  func(f *listFrontier) bool // Idle hook; nil = done
}

func (f *listFrontier) Next(w int) (int, Verdict) {
	if f.next < len(f.items) {
		it := f.items[f.next]
		f.next++
		return it, Dispatch
	}
	return 0, Drained
}

func (f *listFrontier) Retire(w int, item int) { f.retired = append(f.retired, item) }

func (f *listFrontier) Idle(w int) bool {
	f.idles++
	if f.refill != nil {
		return f.refill(f)
	}
	return true
}

func TestRunnerSingleWorkerOrder(t *testing.T) {
	f := &listFrontier{items: []int{3, 1, 4, 1, 5, 9}}
	var got []int
	r := NewRunner(Options{Workers: 1}, f, func(w, item int) { got = append(got, item) })
	r.Run(context.Background())

	want := []int{3, 1, 4, 1, 5, 9}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("exec order = %v, want %v", got, want)
		}
	}
	s := r.Summary()
	if s.Started != 6 || s.Retired != 6 || s.Workers != 1 || s.Canceled {
		t.Fatalf("summary = %+v", s)
	}
	if len(f.retired) != 6 {
		t.Fatalf("frontier saw %d retirements, want 6", len(f.retired))
	}
}

func TestRunnerWorkersClampedToOne(t *testing.T) {
	f := &listFrontier{items: []int{1, 2}}
	r := NewRunner(Options{Workers: 0}, f, func(w, item int) {})
	r.Run(context.Background())
	if s := r.Summary(); s.Workers != 1 || s.Retired != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRunnerParallelDrains(t *testing.T) {
	const n = 500
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	f := &listFrontier{items: items}
	var mu sync.Mutex
	seen := make(map[int]bool)
	r := NewRunner(Options{Workers: 8}, f, func(w, item int) {
		mu.Lock()
		seen[item] = true
		mu.Unlock()
	})
	r.Run(context.Background())
	if len(seen) != n {
		t.Fatalf("executed %d distinct items, want %d", len(seen), n)
	}
	s := r.Summary()
	if s.Retired != n {
		t.Fatalf("retired = %d, want %d", s.Retired, n)
	}
	total := 0
	for _, c := range s.PerWorker {
		total += c
	}
	if total != n {
		t.Fatalf("per-worker sum = %d, want %d", total, n)
	}
}

func TestRunnerMaxExecs(t *testing.T) {
	// An endless frontier: MaxExecs must be the thing that stops it.
	endless := frontierFunc(func(w int) (int, Verdict) { return 7, Dispatch })
	r := NewRunner(Options{Workers: 4, MaxExecs: 100}, endless, func(w, item int) {})
	r.Run(context.Background())
	if s := r.Summary(); s.Started != 100 || s.Retired != 100 {
		t.Fatalf("summary = %+v, want exactly 100 started and retired", s)
	}
}

func TestRunnerStopAtFirstBug(t *testing.T) {
	findings := NewFindings()
	endless := frontierFunc(func(w int) (int, Verdict) { return 0, Dispatch })
	r := NewRunner(Options{Workers: 1, StopAtFirstBug: true}, endless, nil)
	r.BindFindings(findings)
	execs := 0
	r.exec = func(w, item int) {
		execs++
		if execs == 3 {
			findings.Admit("bug@0x1000")
		}
	}
	r.Run(context.Background())
	if execs != 3 {
		t.Fatalf("executed %d items, want 3 (stop after first finding)", execs)
	}
	if !findings.Seen("bug@0x1000") || findings.Count() != 1 {
		t.Fatalf("findings ledger corrupted: count=%d", findings.Count())
	}
}

func TestRunnerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	endless := frontierFunc(func(w int) (int, Verdict) { return 0, Dispatch })
	r := NewRunner(Options{Workers: 4}, endless, func(w, item int) {
		once.Do(func() { close(started) })
	})
	go func() {
		<-started
		cancel()
	}()
	done := make(chan struct{})
	go func() { r.Run(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
	if s := r.Summary(); !s.Canceled {
		t.Fatalf("summary = %+v, want Canceled", s)
	}
	if !r.Canceled() {
		t.Fatal("Canceled() = false after cancel")
	}
}

func TestRunnerDuration(t *testing.T) {
	endless := frontierFunc(func(w int) (int, Verdict) { return 0, Dispatch })
	r := NewRunner(Options{Workers: 2, Duration: 50 * time.Millisecond}, endless,
		func(w, item int) { time.Sleep(time.Millisecond) })
	done := make(chan struct{})
	go func() { r.Run(context.Background()); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after the duration bound")
	}
	if s := r.Summary(); s.Elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 50ms", s.Elapsed)
	}
}

func TestRunnerIdleRefill(t *testing.T) {
	// The frontier drains once, Idle refills it once, the second Idle ends
	// the campaign — the pipelined reap-fallback shape.
	f := &listFrontier{items: []int{1, 2}}
	f.refill = func(f *listFrontier) bool {
		if f.idles == 1 {
			f.items = append(f.items, 3, 4)
			return false
		}
		return true
	}
	var got []int
	r := NewRunner(Options{Workers: 1}, f, func(w, item int) { got = append(got, item) })
	r.Run(context.Background())
	if len(got) != 4 {
		t.Fatalf("executed %v, want 4 items across the refill", got)
	}
	if f.idles != 2 {
		t.Fatalf("Idle consulted %d times, want 2", f.idles)
	}
}

func TestRunnerWaitWake(t *testing.T) {
	// Work produced from an executor via Locked must wake parked workers.
	var mu sync.Mutex
	pending := []int{1}
	produced := 0
	f := frontierFunc(func(w int) (int, Verdict) {
		if len(pending) > 0 {
			it := pending[0]
			pending = pending[1:]
			return it, Dispatch
		}
		return 0, Drained
	})
	var r *Runner[int]
	var execs int
	r = NewRunner(Options{Workers: 4}, f, func(w, item int) {
		mu.Lock()
		execs++
		mu.Unlock()
		if item < 5 {
			r.Locked(func() {
				pending = append(pending, item+1)
				produced++
			})
		}
	})
	r.Run(context.Background())
	if execs != 5 || produced != 4 {
		t.Fatalf("execs=%d produced=%d, want 5 and 4", execs, produced)
	}
}

// frontierFunc adapts a Next func into a Frontier with no-op Retire and
// always-done Idle.
type frontierFunc func(w int) (int, Verdict)

func (f frontierFunc) Next(w int) (int, Verdict) { return f(w) }
func (f frontierFunc) Retire(w int, item int)    {}
func (f frontierFunc) Idle(w int) bool           { return true }

func TestFindingsDedup(t *testing.T) {
	f := NewFindings()
	if !f.Admit("a@1") || f.Admit("a@1") || !f.Admit("b@2") {
		t.Fatal("Admit dedup broken")
	}
	if f.Count() != 2 || !f.Seen("a@1") || f.Seen("c@3") {
		t.Fatalf("count=%d", f.Count())
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := &Ledger{Name: "Send"}
	l.AddQueued(3)
	l.BeginFlight()
	l.Queued--
	if l.Activity() != 3 || l.PeakQueued != 3 || l.PeakInFlight != 1 {
		t.Fatalf("ledger = %+v", l)
	}
	set := []*Ledger{l, {Name: "Halt", Done: true}}
	if TotalActivity(set) != 3 || AllDone(set) {
		t.Fatal("set helpers broken")
	}
	l.Queued, l.InFlight, l.Done = 0, 0, true
	if !AllDone(set) || TotalActivity(set) != 0 {
		t.Fatal("set helpers broken after drain")
	}
}

func TestRegisterFlagsAndAliases(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs, FlagsAll)
	DeprecatedAlias(fs, "time", "timeout")
	if err := fs.Parse([]string{"-workers", "8", "-pipeline", "-seed", "42", "-time", "3s"}); err != nil {
		t.Fatal(err)
	}
	if f.Workers != 8 || !f.Pipeline || f.Seed != 42 || f.Timeout != 3*time.Second {
		t.Fatalf("flags = %+v", f)
	}
	o := f.Options()
	if o.Workers != 8 || !o.Pipeline || o.Seed != 42 || o.Duration != 3*time.Second {
		t.Fatalf("options = %+v", o)
	}

	// Subset registration leaves unselected names free for the command.
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	f2 := RegisterFlags(fs2, FlagWorkers|FlagSeed)
	if fs2.Lookup("pipeline") != nil || fs2.Lookup("timeout") != nil {
		t.Fatal("subset registration leaked flags")
	}
	if err := fs2.Parse([]string{"-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	if f2.Workers != 2 || f2.Seed != DefaultSeed {
		t.Fatalf("flags = %+v", f2)
	}
}
