package campaign

import "sync"

// Findings is the campaign-wide finding-deduplication ledger. Every mode
// keys its findings the same way — "class@site" — and admits them through
// one ledger, so a bug or crash is counted once per campaign regardless of
// which worker (or which frontier, in hybrid campaigns) hit it. The runner
// watches the ledger for the StopAtFirstBug condition.
type Findings struct {
	mu   sync.Mutex
	seen map[string]bool
	n    int
}

// NewFindings returns an empty findings ledger.
func NewFindings() *Findings {
	return &Findings{seen: make(map[string]bool)}
}

// Admit records the key and reports whether it was new. The first Admit of
// a key returns true; duplicates return false.
func (f *Findings) Admit(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen[key] {
		return false
	}
	f.seen[key] = true
	f.n++
	return true
}

// Seen reports whether the key has been admitted.
func (f *Findings) Seen(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[key]
}

// Count returns the number of distinct findings admitted so far.
func (f *Findings) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}
