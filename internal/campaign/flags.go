package campaign

import (
	"flag"
	"fmt"
	"time"
)

// Uniform CLI defaults shared by every campaign-running command. One
// worker keeps campaigns deterministic by default; raise -workers for
// throughput.
const (
	// DefaultWorkers is the uniform -workers default.
	DefaultWorkers = 1
	// DefaultSeed is the uniform -seed default.
	DefaultSeed = 1
)

// FlagMask selects which of the uniform campaign flags a command
// registers. Commands that repurpose a name (ddtbench's -pipeline is a
// report-section selector) simply leave that bit out.
type FlagMask uint

const (
	// FlagWorkers registers -workers.
	FlagWorkers FlagMask = 1 << iota
	// FlagPipeline registers -pipeline.
	FlagPipeline
	// FlagSeed registers -seed.
	FlagSeed
	// FlagTimeout registers -timeout.
	FlagTimeout

	// FlagsAll registers the full uniform surface.
	FlagsAll = FlagWorkers | FlagPipeline | FlagSeed | FlagTimeout
)

// Flags holds the parsed uniform campaign flags. Register the surface
// with RegisterFlags, then fold the result into mode options with
// Options.
type Flags struct {
	// Workers is the parsed -workers value.
	Workers int
	// Pipeline is the parsed -pipeline value.
	Pipeline bool
	// Seed is the parsed -seed value.
	Seed int64
	// Timeout is the parsed -timeout value.
	Timeout time.Duration
}

// RegisterFlags registers the selected subset of the uniform campaign
// flag surface (-workers, -pipeline, -seed, -timeout) on fs with the
// uniform names and defaults, and returns the destination struct.
func RegisterFlags(fs *flag.FlagSet, mask FlagMask) *Flags {
	f := &Flags{Workers: DefaultWorkers, Seed: DefaultSeed}
	if mask&FlagWorkers != 0 {
		fs.IntVar(&f.Workers, "workers", DefaultWorkers, "parallel campaign workers (1 = deterministic sequential)")
	}
	if mask&FlagPipeline != 0 {
		fs.BoolVar(&f.Pipeline, "pipeline", false, "with -workers > 1, dissolve workload phase barriers")
	}
	if mask&FlagSeed != 0 {
		fs.Int64Var(&f.Seed, "seed", DefaultSeed, "campaign random seed")
	}
	if mask&FlagTimeout != 0 {
		fs.DurationVar(&f.Timeout, "timeout", 0, "campaign wall-clock bound (0 = none)")
	}
	return f
}

// DeprecatedAlias re-registers the already-registered flag named
// canonical under old, so legacy invocations keep working for one
// release. Both names write the same value; the usage string marks the
// alias deprecated. Panics if canonical is not registered on fs.
func DeprecatedAlias(fs *flag.FlagSet, old, canonical string) {
	g := fs.Lookup(canonical)
	if g == nil {
		panic(fmt.Sprintf("campaign.DeprecatedAlias: flag -%s not registered", canonical))
	}
	fs.Var(g.Value, old, "deprecated alias of -"+canonical)
}

// Options folds the parsed flags into a campaign options envelope.
func (f *Flags) Options() Options {
	return Options{
		Workers:  f.Workers,
		Pipeline: f.Pipeline,
		Seed:     f.Seed,
		Duration: f.Timeout,
	}
}
