// Package campaign is the single campaign-runner core shared by every
// exploration mode in the tree. DDT is one loop — pick a state, execute,
// fork at injection points, record findings — and this package owns the
// loop's machinery exactly once: the condvar-coordinated worker pool with
// context-based cancellation (Runner), the campaign envelope configuration
// embedded by every mode's options (Options), the per-(entry, phase)
// budget ledgers (Ledger), fleet-safe finding deduplication (Findings),
// and the uniform CLI flag surface (Flags).
//
// The exploration modes plug in as frontier policies: the barriered
// symbolic engine, the cross-phase pipelined engine, and the
// coverage-guided fuzzer are each a Frontier implementation plus an
// executor callback over one Runner. New frontiers — distributed,
// directed, scenario-graph — slot in the same way and inherit the pool,
// budgets, stop conditions, and cancellation for free.
package campaign

import (
	"time"

	"repro/internal/exerciser"
)

// Options is the campaign execution envelope shared by every mode. The
// mode-specific option structs (core.Options, fuzz.Config, ddt.Config)
// embed it, so workers, budgets, seeds, and stop conditions are configured
// the same way — and mean the same thing — whether the campaign explores
// symbolically, pipelined, or concretely.
type Options struct {
	// Workers is the number of parallel campaign workers. 0 or 1 runs the
	// campaign on a single worker, which for the symbolic engine is
	// bit-identical to the original sequential semantics.
	Workers int
	// Pipeline, with Workers > 1, dissolves cross-path phase barriers in
	// frontiers that have them (the symbolic workload explorer). Frontier
	// policies without phases ignore it.
	Pipeline bool
	// Seed makes the campaign's random streams deterministic (the fuzzer
	// derives per-worker streams as Seed+workerID). Frontiers without
	// randomness ignore it; directed/mutation frontiers must honor it.
	Seed int64
	// MaxExecs bounds the total work items the runner hands out
	// (0: no item bound). For the fuzzer one item is one execution.
	MaxExecs uint64
	// Duration bounds campaign wall-clock time (0: no time bound).
	Duration time.Duration
	// StopAtFirstBug ends the campaign as soon as the findings ledger
	// records its first finding — Driver Verifier's crash-on-first-failure
	// behaviour (§5.1).
	StopAtFirstBug bool
	// Coverage, when non-nil, replaces the campaign's own coverage
	// recorder; the hybrid loop passes one shared thread-safe recorder so
	// symbolic, pipelined, and fuzz coverage accumulate into one map.
	Coverage *exerciser.Coverage
}

// Normalized returns the options with the worker count clamped to >= 1.
func (o Options) Normalized() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Summary is the runner-owned slice of a campaign report: the fields every
// mode's report shares, assembled in exactly one place.
type Summary struct {
	// Workers is the worker count the campaign actually ran with.
	Workers int
	// Started counts work items handed to workers.
	Started uint64
	// Retired counts work items completed.
	Retired uint64
	// PerWorker is the per-worker retired-item distribution.
	PerWorker []int
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
	// Canceled reports whether the campaign ended by context cancellation
	// or an explicit Stop rather than by draining its work or budgets.
	Canceled bool
}
