package campaign

// Ledger is one (entry, phase) budget-and-occupancy ledger. The pipelined
// symbolic frontier keeps one live Ledger per workload phase; the
// barriered frontier fills one per phase as each barrier completes. All
// fields are guarded by the owning Runner's coordinator lock (mutate them
// inside Frontier methods or Runner.Locked).
type Ledger struct {
	// Name labels the ledger (the phase or entry-point name).
	Name string
	// SeedsIn counts bases invoked (or queued to be invoked) into this
	// phase.
	SeedsIn int
	// PendingSeeds counts seeds waiting in the work queue.
	PendingSeeds int
	// Expanding counts seeds currently being expanded into invocation
	// states.
	Expanding int
	// Queued counts states waiting in the frontier.
	Queued int
	// InFlight counts states currently being stepped by a worker.
	InFlight int
	// Exited counts completed paths, charged against the per-phase
	// MaxPathsPerEntry budget.
	Exited int
	// Succeeded counts paths that exited successfully.
	Succeeded int
	// Promoted counts successes seeded onward, charged against the
	// per-phase KeepStates budget.
	Promoted int
	// PeakInFlight is the high-water mark of InFlight.
	PeakInFlight int
	// PeakQueued is the high-water mark of Queued.
	PeakQueued int
	// Done marks the ledger drained: no activity remains and none can be
	// produced for it.
	Done bool
}

// Activity counts everything that can still produce work for this ledger.
func (l *Ledger) Activity() int {
	return l.PendingSeeds + l.Expanding + l.Queued + l.InFlight
}

// AddQueued books n states entering the frontier and tracks the peak.
func (l *Ledger) AddQueued(n int) {
	l.Queued += n
	if l.Queued > l.PeakQueued {
		l.PeakQueued = l.Queued
	}
}

// BeginFlight moves one state from queued to in flight and tracks the peak.
func (l *Ledger) BeginFlight() {
	l.InFlight++
	if l.InFlight > l.PeakInFlight {
		l.PeakInFlight = l.InFlight
	}
}

// TotalActivity sums live work across a set of ledgers.
func TotalActivity(ls []*Ledger) int {
	n := 0
	for _, l := range ls {
		n += l.Activity()
	}
	return n
}

// AllDone reports whether every ledger in the set has drained.
func AllDone(ls []*Ledger) bool {
	for _, l := range ls {
		if !l.Done {
			return false
		}
	}
	return true
}
