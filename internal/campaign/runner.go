package campaign

import (
	"context"
	"sync"
	"time"
)

// Verdict is a Frontier's answer to a worker asking for work.
type Verdict int

const (
	// Dispatch hands the returned item to the worker.
	Dispatch Verdict = iota
	// Wait parks the worker until another worker produces work (or the
	// campaign stops). Use when the frontier is momentarily empty but
	// in-flight work may refill it.
	Wait
	// Drained reports the frontier empty with nothing left that could
	// refill it except in-flight work: the runner parks the worker while
	// items are still running, and consults Idle once nothing is.
	Drained
	// Stop ends the whole campaign now (a frontier-owned budget tripped).
	Stop
)

// Frontier is a campaign's work-selection policy. All three methods are
// invoked under the Runner's coordinator lock, so implementations need no
// locking of their own for state touched only here; use Runner.Locked for
// frontier mutations driven from outside (fork pushes from execution
// hooks).
type Frontier[T any] interface {
	// Next picks the next work item for worker w.
	Next(w int) (T, Verdict)
	// Retire absorbs a completed item: budget accounting, promotions,
	// result bookkeeping.
	Retire(w int, item T)
	// Idle is consulted when every worker is idle and Next reported
	// Drained: return true to end the campaign, or false after producing
	// new work (e.g. a zero-success phase fallback reseeded later phases).
	Idle(w int) bool
}

// Runner drives one campaign: a pool of Options.Workers goroutines pulling
// items from a Frontier and running them through an executor callback,
// with condvar coordination, context cancellation, and the envelope stop
// conditions (MaxExecs, Duration, StopAtFirstBug over a Findings ledger)
// enforced in exactly one place.
//
// A single-worker run is fully deterministic: one goroutine pops items in
// frontier order with no coordination in between, so a frontier whose
// Next order is deterministic yields bit-identical campaigns.
type Runner[T any] struct {
	opts     Options
	frontier Frontier[T]
	exec     func(w int, item T)
	findings *Findings

	mu        sync.Mutex
	cond      *sync.Cond
	running   int
	started   uint64
	retired   uint64
	perWorker []int
	stopped   bool
	canceled  bool
	deadline  time.Time
	elapsed   time.Duration
}

// NewRunner builds a runner over the frontier. exec runs one work item;
// it is called outside the coordinator lock, concurrently from up to
// Options.Workers goroutines.
func NewRunner[T any](opts Options, frontier Frontier[T], exec func(w int, item T)) *Runner[T] {
	r := &Runner[T]{opts: opts.Normalized(), frontier: frontier, exec: exec}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// BindFindings attaches the findings ledger the StopAtFirstBug condition
// watches. Call before Run.
func (r *Runner[T]) BindFindings(f *Findings) { r.findings = f }

// Run executes the campaign until the frontier drains, a budget trips, the
// context is canceled, or Stop is called. It returns only after every
// worker has quiesced: no executor callback is in flight once Run returns.
func (r *Runner[T]) Run(ctx context.Context) {
	start := time.Now()
	r.mu.Lock()
	r.perWorker = make([]int, r.opts.Workers)
	if r.opts.Duration > 0 {
		r.deadline = start.Add(r.opts.Duration)
	}
	r.mu.Unlock()

	// Watcher: wake parked workers on cancellation or deadline expiry.
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx.Done() != nil || !r.deadline.IsZero() {
		go r.watch(ctx, watchDone)
	}

	var wg sync.WaitGroup
	for w := 0; w < r.opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				item, ok := r.next(ctx, w)
				if !ok {
					return
				}
				r.exec(w, item)
				r.retire(w, item)
			}
		}(w)
	}
	wg.Wait()
	r.mu.Lock()
	r.elapsed = time.Since(start)
	r.mu.Unlock()
}

// watch wakes the pool when the context is canceled or the deadline
// passes, so workers parked in cond.Wait observe the stop condition.
func (r *Runner[T]) watch(ctx context.Context, done <-chan struct{}) {
	var expire <-chan time.Time
	if !r.deadline.IsZero() {
		t := time.NewTimer(time.Until(r.deadline))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-ctx.Done():
		r.cancel()
	case <-expire:
		r.mu.Lock()
		r.stopLocked()
		r.mu.Unlock()
	case <-done:
	}
}

// next hands worker w its next item, or false when the campaign is over.
func (r *Runner[T]) next(ctx context.Context, w int) (T, bool) {
	var zero T
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		switch {
		case r.stopped:
			return zero, false
		case ctx.Err() != nil:
			r.cancelLocked()
			return zero, false
		case r.opts.StopAtFirstBug && r.findings != nil && r.findings.Count() > 0:
			r.stopLocked()
			return zero, false
		case r.opts.MaxExecs > 0 && r.started >= r.opts.MaxExecs:
			r.stopLocked()
			return zero, false
		case !r.deadline.IsZero() && time.Now().After(r.deadline):
			r.stopLocked()
			return zero, false
		}
		item, v := r.frontier.Next(w)
		switch v {
		case Dispatch:
			r.running++
			r.started++
			return item, true
		case Stop:
			r.stopLocked()
			return zero, false
		case Drained:
			if r.running == 0 {
				if r.frontier.Idle(w) {
					r.stopLocked()
					return zero, false
				}
				// Idle produced new work: wake the parked pool for it too.
				r.cond.Broadcast()
				continue
			}
			r.cond.Wait()
		case Wait:
			r.cond.Wait()
		}
	}
}

// retire books one completed item and re-examines the pool.
func (r *Runner[T]) retire(w int, item T) {
	r.mu.Lock()
	r.running--
	r.retired++
	r.perWorker[w]++
	r.frontier.Retire(w, item)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// stopLocked ends the campaign and releases every parked worker. Caller
// holds mu.
func (r *Runner[T]) stopLocked() {
	r.stopped = true
	r.cond.Broadcast()
}

// cancelLocked is stopLocked plus the cancellation mark. Caller holds mu.
func (r *Runner[T]) cancelLocked() {
	r.canceled = true
	r.stopLocked()
}

// Stop cancels the campaign: workers finish their in-flight item and
// exit, and Canceled starts reporting true. Safe from any goroutine;
// idempotent. Prefer canceling the Run context; Stop exists for callers
// without one.
func (r *Runner[T]) Stop() {
	r.cancel()
}

// cancel ends the campaign recording that the end came from cancellation
// rather than a drained frontier or an exhausted budget.
func (r *Runner[T]) cancel() {
	r.mu.Lock()
	r.cancelLocked()
	r.mu.Unlock()
}

// Canceled reports whether the campaign was canceled (context
// cancellation or an explicit Stop), as opposed to ending naturally.
// Executor callbacks consult it to drop result admission after
// cancellation — the post-cancel quiescence contract: once a callback
// observes Canceled, it must not admit new corpus entries or findings, so
// campaign results are frozen the moment Run returns.
func (r *Runner[T]) Canceled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.canceled
}

// Wake unparks workers waiting for frontier work. Call after pushing work
// from outside the coordinator lock (e.g. a fork landing in the frontier
// from an execution hook).
func (r *Runner[T]) Wake() {
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Locked runs fn under the coordinator lock and wakes the pool afterwards.
// Frontier mutations driven from executor callbacks (seed expansion,
// mid-path fork pushes) go through here so frontier state and worker
// wake-ups stay consistent.
func (r *Runner[T]) Locked(fn func()) {
	r.mu.Lock()
	fn()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Summary assembles the runner-owned report fields. Valid after Run
// returns; mid-run it is a live snapshot.
func (r *Runner[T]) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Summary{
		Workers:   r.opts.Workers,
		Started:   r.started,
		Retired:   r.retired,
		PerWorker: append([]int(nil), r.perWorker...),
		Elapsed:   r.elapsed,
		Canceled:  r.canceled,
	}
}
