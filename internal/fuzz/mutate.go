package fuzz

import (
	"encoding/binary"
	"math/rand"
	"sort"
)

// Feed size caps: mutation never grows a feed beyond these, keeping
// executions bounded and corpus entries comparable.
const (
	maxDataLen = 4096
	maxForkLen = 64
	maxIRQLen  = 8
)

// interesting8 and interesting32 are the substitution values classic
// coverage-guided fuzzers carry: boundary values that flip sign, saturate
// masks, or sit on length-check edges.
var interesting8 = []byte{0x00, 0x01, 0x02, 0x07, 0x08, 0x10, 0x20, 0x40, 0x7F, 0x80, 0xFF}

var interesting32 = []uint32{
	0, 1, 2, 4, 8, 9, 14, 15, 16, 31, 32, 63, 64, 127, 128, 255, 256,
	0x7FFF, 0x8000, 0xFFFF, 0x10000, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
}

// Mutator derives new feeds from corpus feeds: bit and byte flips,
// interesting-value substitution, block insert/delete/duplicate, splice
// with another corpus feed, fork-decision flips, interrupt-timing shifts,
// and — with a dictionary attached — mined-constant splices. All randomness
// flows from the seeded source, so a mutator with a fixed seed (and fixed
// dictionary) is deterministic.
type Mutator struct {
	rng *rand.Rand

	// Dict, when non-nil and non-empty, enables two dictionary-splice
	// operators that inject constants mined from the driver image at
	// feed-aligned (word) offsets — the offsets the executor's word cursor
	// actually reads, so a spliced OID lands intact in one injection site
	// instead of straddling two. Set it before the first Mutate call and
	// never change it afterwards: the mutation stream is a pure function of
	// (seed, dictionary), which is what keeps campaigns replayable.
	Dict *Dictionary
}

// NewMutator returns a mutator over a deterministic random stream.
func NewMutator(seed int64) *Mutator {
	return &Mutator{rng: rand.New(rand.NewSource(seed))}
}

// Generate builds a feed from nothing: random data, occasional forks and
// interrupt schedules. Used to bootstrap an empty corpus.
func (mu *Mutator) Generate() *Feed {
	r := mu.rng
	f := &Feed{Data: make([]byte, 16+r.Intn(112))}
	r.Read(f.Data)
	if r.Intn(3) == 0 {
		f.Forks = make([]byte, 1+r.Intn(8))
		r.Read(f.Forks)
	}
	if r.Intn(3) == 0 {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			f.IRQ = append(f.IRQ, randIRQTime(r))
		}
		sortIRQ(f.IRQ)
	}
	return f
}

// randIRQTime draws an interrupt instant log-uniformly: interrupt-timing
// races live in narrow early windows (e.g. between ISR registration and
// timer initialization, a few hundred instructions into Initialize), so
// uniform draws over the full budget would almost never land there.
func randIRQTime(r *rand.Rand) uint64 {
	return uint64(r.Intn(1 << uint(5+r.Intn(13)))) // [0, 2^17), mass on small values
}

// Mutate clones base and applies 1–4 random mutation operators. donor (may
// be nil) supplies the splice source.
func (mu *Mutator) Mutate(base *Feed, donor *Feed) *Feed {
	r := mu.rng
	f := base.Clone()
	ops := 10
	if mu.Dict != nil && len(mu.Dict.Words) > 0 {
		ops = 12 // the two dictionary-splice operators join the rotation
	}
	for n := 1 + r.Intn(4); n > 0; n-- {
		switch r.Intn(ops) {
		case 0: // bit flip
			if len(f.Data) > 0 {
				i := r.Intn(len(f.Data))
				f.Data[i] ^= 1 << uint(r.Intn(8))
			} else {
				f.Data = append(f.Data, byte(r.Intn(256)))
			}
		case 1: // byte set
			if len(f.Data) > 0 {
				f.Data[r.Intn(len(f.Data))] = byte(r.Intn(256))
			}
		case 2: // interesting byte
			if len(f.Data) > 0 {
				f.Data[r.Intn(len(f.Data))] = interesting8[r.Intn(len(interesting8))]
			}
		case 3: // interesting word (little-endian, word-aligned to feed cursor granularity)
			if len(f.Data) >= 4 {
				i := r.Intn(len(f.Data)/4) * 4
				binary.LittleEndian.PutUint32(f.Data[i:], interesting32[r.Intn(len(interesting32))])
			}
		case 4: // insert a small random block
			if len(f.Data) < maxDataLen {
				i := r.Intn(len(f.Data) + 1)
				blk := make([]byte, 4*(1+r.Intn(4)))
				r.Read(blk)
				f.Data = append(f.Data[:i], append(blk, f.Data[i:]...)...)
			}
		case 5: // delete a small block
			if len(f.Data) > 4 {
				n := 4 * (1 + r.Intn(len(f.Data)/4))
				if n > len(f.Data)-4 {
					n = len(f.Data) - 4
				}
				i := r.Intn(len(f.Data) - n + 1)
				f.Data = append(f.Data[:i], f.Data[i+n:]...)
			}
		case 6: // splice: graft the tail of another corpus feed
			if donor != nil && len(donor.Data) > 0 && len(f.Data) > 0 {
				cut := r.Intn(len(f.Data))
				from := r.Intn(len(donor.Data))
				f.Data = append(f.Data[:cut], donor.Data[from:]...)
			}
		case 7: // fork decision flip / extend
			if len(f.Forks) > 0 && r.Intn(2) == 0 {
				f.Forks[r.Intn(len(f.Forks))] ^= 1
			} else if len(f.Forks) < maxForkLen {
				f.Forks = append(f.Forks, byte(r.Intn(256)))
			}
		case 8: // interrupt timing: add or remove a trigger
			if len(f.IRQ) > 0 && r.Intn(3) == 0 {
				i := r.Intn(len(f.IRQ))
				f.IRQ = append(f.IRQ[:i], f.IRQ[i+1:]...)
			} else if len(f.IRQ) < maxIRQLen {
				f.IRQ = append(f.IRQ, randIRQTime(r))
				sortIRQ(f.IRQ)
			}
		case 9: // interrupt timing: jitter an existing trigger
			if len(f.IRQ) > 0 {
				i := r.Intn(len(f.IRQ))
				d := uint64(r.Intn(2048))
				if r.Intn(2) == 0 && f.IRQ[i] > d {
					f.IRQ[i] -= d
				} else {
					f.IRQ[i] += d
				}
				sortIRQ(f.IRQ)
			} else if len(f.Data) > 0 {
				f.Data[r.Intn(len(f.Data))] = byte(r.Intn(256))
			}
		case 10: // dictionary splice: overwrite a feed-aligned word with a mined constant
			if len(f.Data) >= 4 {
				i := r.Intn(len(f.Data)/4) * 4
				binary.LittleEndian.PutUint32(f.Data[i:], mu.dictWord(r))
			} else if len(f.Data)+8 <= maxDataLen {
				// Shorter than one word: pad to the next word boundary first,
				// so the constant still lands intact in a single injection
				// site instead of straddling the cursor's word reads.
				for len(f.Data)%4 != 0 {
					f.Data = append(f.Data, 0)
				}
				var w [4]byte
				binary.LittleEndian.PutUint32(w[:], mu.dictWord(r))
				f.Data = append(f.Data, w[:]...)
			}
		case 11: // dictionary splice: insert a mined constant at a feed-aligned offset
			if len(f.Data)+4 <= maxDataLen {
				i := r.Intn(len(f.Data)/4+1) * 4
				var w [4]byte
				binary.LittleEndian.PutUint32(w[:], mu.dictWord(r))
				f.Data = append(f.Data[:i:i], append(w[:], f.Data[i:]...)...)
			}
		}
	}
	if len(f.Data) > maxDataLen {
		f.Data = f.Data[:maxDataLen]
	}
	return f
}

// dictWord draws one dictionary constant, preferring the OID-shaped subset
// half the time (the Query/Set workload phases consume an OID word
// directly, so those constants unlock whole handler bodies at once).
func (mu *Mutator) dictWord(r *rand.Rand) uint32 {
	d := mu.Dict
	if len(d.OIDs) > 0 && r.Intn(2) == 0 {
		return d.OIDs[r.Intn(len(d.OIDs))]
	}
	return d.Words[r.Intn(len(d.Words))]
}

func sortIRQ(irq []uint64) {
	sort.Slice(irq, func(i, j int) bool { return irq[i] < irq[j] })
}
