package fuzz

import (
	"repro/internal/vm"
)

// Persistent-mode executors (Options.Persist) skip re-driving the boot
// phases — bootState → DriverEntry → Initialize — for feeds whose boot
// prefix was already executed once. This is the concrete-fuzzer analogue of
// the paper's "fork at injection points" insight (§4.1.2): an initialized
// driver state is a complete system snapshot, so every execution sharing
// the boot prefix can fork from it instead of recomputing it. The probe
// numbers behind the design: on the evaluation drivers 95–100% of one fuzz
// execution's instructions are spent in DriverEntry+Initialize, while that
// boot consumes only a handful of feed words — so almost every mutant of a
// corpus feed shares its parent's boot prefix and can resume.
//
// Three snapshot stages cover the boot outcomes:
//
//   - stageBooted: DriverEntry returned; resume re-dispatches the class
//     workload (Initialize onward).
//   - stageInitialized: Initialize returned success; resume runs the data
//     path directly — the headline skip.
//   - stageTerminal: the boot prefix alone decided the whole execution (a
//     failed, killed, or non-success-status boot ends the workload with no
//     data path); resume returns the memoized result without executing a
//     single instruction. These dominate random mutants — most boots fail —
//     so memoizing them is where most of the throughput comes from.
//
// Crashing boots are never snapshotted or memoized: crash triage re-executes
// feeds for verification and minimization, and those replays must exercise
// the live path.
//
// Soundness: a snapshot is valid for a feed iff replaying the boot cold
// would be bit-identical, which snapshot.matches checks against the
// EFFECTIVE consumed streams (an exhausted data stream answers zeros and an
// exhausted fork stream answers the primary outcome, so comparison
// zero-extends; fork bytes are compared by their decision parity). Interrupt
// schedules additionally require the first unconsumed trigger to lie at or
// past the segment's last injection-eligible instant (eligBound) — an
// earlier trigger could have fired mid-boot (the FromBug/FromTrace bridge
// emits exactly such feeds) and must bypass the snapshot and re-run cold.
// Segments with no eligible instant — DriverEntry always, since no ISR is
// registered yet — accept any trigger.

// snapStage identifies where in the workload a snapshot was taken.
type snapStage uint8

const (
	stageBooted snapStage = iota
	stageInitialized
	stageTerminal
)

// snapshot is one frozen mid-workload replay point plus everything the
// executor needs to continue (or conclude) an execution from it.
type snapshot struct {
	stage snapStage
	// state is the frozen post-boot state; nil for stageTerminal.
	state *vm.State
	// owner identifies the executor (SnapFabric.register) that recorded the
	// snapshot, so lookups can split own-snapshot hits from cross-worker
	// shared hits. Zero for snapshots outside any fabric (unit tests).
	owner uint64

	// Boot-prefix identity. words/forkBits/irqs are the semantic cursors
	// (feedReader); data and forks hold the effective consumed streams up to
	// the recording feed's own length — every byte consumed past it read as
	// zero, so matching zero-extends both sides.
	words    int
	forkBits int
	irqs     int
	data     []byte
	forks    []byte // one decision parity bit per consumed fork decision
	irq      []uint64
	// eligBound is the exclusive upper bound on interrupt triggers that
	// could still have fired in the executed segment: one past the last
	// injection-eligible instant (ISR registered, no interrupt context,
	// IRQL below device level, injection budget left), or zero when no
	// instant was eligible — in which case any unconsumed trigger replays
	// identically, because a cold run could not have fired it either.
	eligBound uint64

	// Replay context captured alongside the state.
	steps     uint64 // logical instructions from execution start to here
	intrUsed  int
	lastBlock uint32
	seen      map[uint32]bool // blocks entered so far (per-exec coverage)
	entries   []string
	trace     *vm.TraceNode // final trace; stageTerminal only
}

// matches reports whether resuming f from this snapshot replays exactly
// what a cold execution of f would compute up to the snapshot point.
func (sn *snapshot) matches(f *Feed) bool {
	// Effective data prefix: 4*words bytes, zero-extended on both sides.
	n := 4 * sn.words
	limit := len(sn.data)
	if len(f.Data) > limit {
		limit = len(f.Data)
	}
	if limit > n {
		limit = n
	}
	for i := 0; i < limit; i++ {
		var a, b byte
		if i < len(sn.data) {
			a = sn.data[i]
		}
		if i < len(f.Data) {
			b = f.Data[i]
		}
		if a != b {
			return false
		}
	}
	// Effective fork decisions: parity per decision, primary outcome (0)
	// once the stream is exhausted.
	for j := 0; j < sn.forkBits; j++ {
		var a, b byte
		if j < len(sn.forks) {
			a = sn.forks[j]
		}
		if j < len(f.Forks) {
			b = f.Forks[j] & 1
		}
		if a != b {
			return false
		}
	}
	// Consumed interrupt triggers must match exactly, and the next pending
	// trigger (if any) must not have been able to fire during boot.
	if len(f.IRQ) < sn.irqs {
		return false
	}
	for k := 0; k < sn.irqs; k++ {
		if f.IRQ[k] != sn.irq[k] {
			return false
		}
	}
	if len(f.IRQ) > sn.irqs && f.IRQ[sn.irqs] < sn.eligBound {
		return false
	}
	return true
}

// samePrefix reports whether two snapshots cover the identical boot prefix
// at the same stage (cache dedup).
func (sn *snapshot) samePrefix(o *snapshot) bool {
	if sn.stage != o.stage || sn.words != o.words || sn.forkBits != o.forkBits || sn.irqs != o.irqs {
		return false
	}
	if len(sn.irq) != len(o.irq) {
		return false
	}
	for i := range sn.irq {
		if sn.irq[i] != o.irq[i] {
			return false
		}
	}
	// The recording feeds may differ in raw length; compare effectively.
	return sn.matches(&Feed{Data: o.data, Forks: o.forks, IRQ: o.irq})
}

// snapCacheMax bounds one fabric shard. Distinct boot prefixes track the
// corpus's boot-word diversity, which is small (most mutants inherit their
// parent's boot prefix); recency eviction keeps the hot prefixes resident.
// The sharded process-wide store lives in fabric.go.
const snapCacheMax = 64
