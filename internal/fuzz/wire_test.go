package fuzz

import (
	"encoding/json"
	"reflect"
	"testing"
)

// These tests pin the JSON wire format of the types that cross process
// boundaries: Feed (corpus files, reproducers), corpus Entry (worker→manager
// sync), Crash (crash reports), and Report (ddtfuzz -json output, ddtd
// ingest). The manager protocol and the on-disk corpus format both ride on
// these serializations, so a renamed or retagged field is a breaking
// protocol change — this test is the tripwire.

// jsonKeys returns the top-level keys of v's JSON serialization.
func jsonKeys(t *testing.T, v any) map[string]bool {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool, len(m))
	for k := range m {
		keys[k] = true
	}
	return keys
}

func wantKeys(t *testing.T, v any, want ...string) {
	t.Helper()
	got := jsonKeys(t, v)
	for _, k := range want {
		if !got[k] {
			t.Errorf("%T: wire key %q missing (got %v)", v, k, got)
		}
		delete(got, k)
	}
	for k := range got {
		t.Errorf("%T: unexpected wire key %q — extending the format needs a protocol-doc update", v, k)
	}
}

func TestWireFeedKeys(t *testing.T) {
	f := &Feed{Data: []byte{1, 2, 3, 4}, Forks: []byte{1}, IRQ: []uint64{500}}
	wantKeys(t, f, "data", "forks", "irq")
}

func TestWireCrashKeys(t *testing.T) {
	c := &Crash{
		Class:       "resource leak",
		RawClass:    "leak",
		PC:          0x40,
		Msg:         "buffer never freed",
		Site:        0x44,
		Entry:       "send",
		InInterrupt: true,
		Feed:        &Feed{Data: []byte{9}},
		Exec:        7,
		Reproduced:  true,
	}
	wantKeys(t, c, "class", "raw_class", "pc", "msg", "site", "entry",
		"in_interrupt", "feed", "exec", "reproduced")
}

func TestWireEntryKeys(t *testing.T) {
	e := Entry{Feed: &Feed{Data: []byte{1}}, Gain: 3, Chosen: 2, AdmitTick: 5}
	wantKeys(t, e, "feed", "gain", "chosen", "admit_tick")
}

// TestWireCrashRoundTrip: a crash report survives
// marshal→unmarshal→marshal byte-identically, feed included — the property
// the manager relies on for content-hash reproducer dedup.
func TestWireCrashRoundTrip(t *testing.T) {
	in := &Crash{
		Class:      "race condition",
		RawClass:   "race",
		PC:         0x1234,
		Msg:        "ISR raced send",
		Site:       0x1238,
		Entry:      "isr",
		Feed:       &Feed{Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Forks: []byte{0, 1}, IRQ: []uint64{1000, 2000}},
		Exec:       42,
		Reproduced: true,
	}
	b1, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Crash
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("crash did not round-trip:\n in: %+v\nout: %+v", *in, out)
	}
	b2, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("re-marshal drifted:\n%s\n%s", b1, b2)
	}
	if out.Key() != in.Key() {
		t.Fatalf("dedup key drifted across the wire: %s vs %s", out.Key(), in.Key())
	}
}

// TestWireFeedRoundTrip: feeds round-trip exactly, including an empty one
// (a zero-filled feed is valid and must not decode to nil slices vs empty
// distinction that changes its hash — Marshal output is the identity).
func TestWireFeedRoundTrip(t *testing.T) {
	feeds := []*Feed{
		{Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Data: []byte{}, Forks: []byte{1, 0, 1}, IRQ: []uint64{1, 2, 3}},
		{Data: []byte{1}},
	}
	for i, f := range feeds {
		b1, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		g, err := UnmarshalFeed(b1)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(g) {
			t.Fatalf("feed %d did not round-trip", i)
		}
		b2, err := g.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("feed %d serialization drifted:\n%s\n%s", i, b1, b2)
		}
	}
}

// TestWireReportRoundTrip: the ddtfuzz -json report (the nightly→ddtd
// ingest format) round-trips with crashes, feeds, and counters intact.
func TestWireReportRoundTrip(t *testing.T) {
	in := &Report{
		Driver:        "rtl8029",
		Workers:       2,
		Execs:         5000,
		Instructions:  123456,
		Crashes:       []*Crash{{Class: "resource leak", Site: 0x44, Feed: &Feed{Data: []byte{1, 2, 3, 4}}}},
		CrashFeeds:    map[string]*Feed{"resource leak@0x44": {Data: []byte{1, 2, 3, 4}}},
		BlocksCovered: 37,
		BlocksStatic:  50,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Driver != in.Driver || out.Execs != in.Execs || out.BlocksCovered != in.BlocksCovered {
		t.Fatalf("report counters drifted: %+v", out)
	}
	if len(out.Crashes) != 1 || out.Crashes[0].Key() != in.Crashes[0].Key() {
		t.Fatalf("report crashes drifted: %+v", out.Crashes)
	}
	if out.CrashFeeds["resource leak@0x44"] == nil {
		t.Fatal("crash feed map lost in round-trip")
	}
}
