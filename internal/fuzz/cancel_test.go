package fuzz

import (
	"context"
	"testing"
	"time"

	"repro/internal/corpus"
)

// TestFuzzerCancelQuiescence locks in the post-cancel contract: once Run
// returns after a context cancellation, every worker has quiesced and no
// late executor admits another corpus entry, crash, or coverage block —
// the report and the stores it was assembled from are frozen. Run under
// -race this also catches any straggler goroutine racing the caller's
// reads of the fuzzer state.
func TestFuzzerCancelQuiescence(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.MaxExecs = 0 // unbounded: cancellation is the only stop condition
	cfg.Duration = 0
	f := New(img, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := f.Run(ctx)
		done <- result{rep, err}
	}()

	// Let the campaign make real progress before pulling the plug.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if execs, _ := f.Stats(); execs >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fuzzer made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	var res result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.rep.Execs == 0 {
		t.Fatal("canceled campaign reported zero execs despite observed progress")
	}

	// Quiescence: every observable store is frozen the moment Run returns.
	execs0, instr0 := f.Stats()
	corpus0 := f.Corpus().Len()
	crashes0 := len(f.Crashes())
	blocks0 := len(f.Cov.CoveredBlocks())
	time.Sleep(100 * time.Millisecond)
	execs1, instr1 := f.Stats()
	if execs1 != execs0 || instr1 != instr0 {
		t.Fatalf("stats moved after Run returned: execs %d->%d instrs %d->%d",
			execs0, execs1, instr0, instr1)
	}
	if n := f.Corpus().Len(); n != corpus0 {
		t.Fatalf("corpus grew after Run returned: %d -> %d", corpus0, n)
	}
	if n := len(f.Crashes()); n != crashes0 {
		t.Fatalf("crash set grew after Run returned: %d -> %d", crashes0, n)
	}
	if n := len(f.Cov.CoveredBlocks()); n != blocks0 {
		t.Fatalf("coverage grew after Run returned: %d -> %d", blocks0, n)
	}
}

// TestFuzzerStopBeforeRun pins the Stop/Run startup race the deprecated
// Stop method used to lose: a Stop that lands before Run has built the
// campaign runner must still terminate the campaign promptly.
func TestFuzzerStopBeforeRun(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.MaxExecs = 0
	f := New(img, cfg)
	f.Stop()
	done := make(chan struct{})
	go func() {
		if _, err := f.Run(context.Background()); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run ignored a Stop issued before it started")
	}
}
