package fuzz

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/binimg"
	"repro/internal/corpus"
	"repro/internal/exerciser"
)

// TestSuperblockFuzzExecBitIdentity extends the determinism suite to the
// superblock fast path: for every corpus driver, executing the snapshot-
// stressing feed schedule with superblocks enabled (default) is
// bit-identical — steps, coverage, crash identity, consumed cursors, and
// the full trace event chain — to per-instruction dispatch
// (Options.NoSuperblocks), in both cold-start and persistent mode. The
// schedule includes interrupt feeds whose triggers land mid-span, so the
// budget capping at IRQ instants is exercised.
func TestSuperblockFuzzExecBitIdentity(t *testing.T) {
	for _, name := range corpus.Names() {
		t.Run(name, func(t *testing.T) {
			for _, persist := range []bool{false, true} {
				fastOpts := eagerOptions()
				fastOpts.Persist = persist
				slowOpts := eagerOptions()
				slowOpts.Persist = persist
				slowOpts.NoSuperblocks = true

				img, err := corpus.Build(name, corpus.Buggy)
				if err != nil {
					t.Fatal(err)
				}
				blocks := len(binimg.StaticBlocks(img))
				fast := NewExecutor(img, exerciser.NewCoverage(blocks), fastOpts)
				slow := NewExecutor(img, exerciser.NewCoverage(blocks), slowOpts)

				mu := NewMutator(5)
				for i, f := range persistFeeds(mu, 30) {
					a := fast.Run(f)
					b := slow.Run(f)
					compareExec(t, fmt.Sprintf("persist=%v feed %d", persist, i), a, b)
				}
			}
		})
	}
}

// TestFuzzCampaignSuperblocksBitIdentical is the campaign-level half: a
// full single-worker campaign with the superblock fast path on is
// bit-identical to one with it off — same crash set, same minimized
// reproducers, same coverage series, same instruction totals.
func TestFuzzCampaignSuperblocksBitIdentical(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	campaign := func(noSB bool) *Report {
		cfg := DefaultConfig()
		cfg.Workers = 1
		cfg.MaxExecs = 4_000
		cfg.Persist = true
		cfg.Exec.NoSuperblocks = noSB
		rep, err := New(img, cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	on := campaign(false)
	off := campaign(true)
	if !reflect.DeepEqual(crashKeys(on), crashKeys(off)) {
		t.Fatalf("bug sets differ:\n  superblocks: %v\n  per-instruction: %v", crashKeys(on), crashKeys(off))
	}
	if len(on.Crashes) == 0 {
		t.Fatal("campaign found no crashes — equality is vacuous")
	}
	for k, f := range on.CrashFeeds {
		if !f.Equal(off.CrashFeeds[k]) {
			t.Fatalf("minimized reproducer for %s differs", k)
		}
	}
	if on.Instructions != off.Instructions {
		t.Fatalf("simulated instructions %d vs %d", on.Instructions, off.Instructions)
	}
	if on.BlocksCovered != off.BlocksCovered || on.CorpusSize != off.CorpusSize {
		t.Fatalf("coverage/corpus: %d/%d vs %d/%d",
			on.BlocksCovered, on.CorpusSize, off.BlocksCovered, off.CorpusSize)
	}
	if !reflect.DeepEqual(on.CoverageSeries, off.CoverageSeries) {
		t.Fatal("coverage series diverged")
	}
}

// TestSharedSnapshotFabricConcurrent drives N executors against ONE
// snapshot fabric — the campaign topology — and checks the sharing
// contract: one executor's cold boot serves every other worker's resume
// (no duplicate cold boots for an already-published prefix), cross-worker
// resumes are bit-identical to that worker running cold, and the
// hit/shared-hit/miss split accounts for every lookup. Runs under -race in
// CI: the lookups, publications, and cross-executor state forks here are
// exactly the concurrent surface the fabric adds.
func TestSharedSnapshotFabricConcurrent(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	fabric := NewSnapFabric()
	opts := eagerOptions()
	opts.Persist = true
	opts.Fabric = fabric

	const workers = 4
	execs := make([]*Executor, workers)
	for i := range execs {
		execs[i] = NewExecutor(img, nil, opts)
	}
	zero := &Feed{Data: make([]byte, 64)}

	// Executor 0 publishes the boot snapshots with one cold execution.
	first := execs[0].Run(zero)
	if first.Warm {
		t.Fatal("first execution on an empty fabric was warm")
	}
	hits, shared, misses := fabric.Stats()
	if misses == 0 {
		t.Fatalf("cold boot not counted as miss (stats %d/%d/%d)", hits, shared, misses)
	}
	baseMisses := misses

	// Every worker resumes concurrently from executor 0's snapshots: all
	// warm, zero new cold boots.
	results := make([]*ExecResult, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = execs[i].Run(zero)
		}(i)
	}
	wg.Wait()

	want := NewExecutor(img, nil, eagerOptions()).Run(zero)
	for i, res := range results {
		if !res.Warm || res.SkippedSteps == 0 {
			t.Fatalf("executor %d did not resume from the shared fabric (warm=%v skip=%d)",
				i, res.Warm, res.SkippedSteps)
		}
		compareExec(t, fmt.Sprintf("executor %d shared resume", i), res, want)
	}
	hits, shared, misses = fabric.Stats()
	if misses != baseMisses {
		t.Fatalf("concurrent warm round cold-booted %d more times", misses-baseMisses)
	}
	if shared == 0 {
		t.Fatal("no lookup was served by another executor's snapshot")
	}
	if hits == 0 {
		t.Fatal("executor 0's own resume not counted as a hit")
	}
	if hits+shared != uint64(workers) {
		t.Fatalf("warm round: hits %d + shared %d != %d lookups", hits, shared, workers)
	}

	// Hammer the fabric from all workers with a diverse schedule: the
	// results must match a serial cold executor feed-for-feed.
	feedsPer := 25
	coldRes := make([][]*ExecResult, workers)
	cold := NewExecutor(img, nil, eagerOptions())
	schedules := make([][]*Feed, workers)
	for i := range schedules {
		schedules[i] = persistFeeds(NewMutator(int64(100+i)), feedsPer)
		coldRes[i] = make([]*ExecResult, len(schedules[i]))
		for j, f := range schedules[i] {
			coldRes[i][j] = cold.Run(f)
		}
	}
	warmRes := make([][]*ExecResult, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			warmRes[i] = make([]*ExecResult, len(schedules[i]))
			for j, f := range schedules[i] {
				warmRes[i][j] = execs[i].Run(f)
			}
		}(i)
	}
	wg.Wait()
	for i := range warmRes {
		for j := range warmRes[i] {
			compareExec(t, fmt.Sprintf("executor %d feed %d", i, j), warmRes[i][j], coldRes[i][j])
		}
	}
	hits, shared, misses = fabric.Stats()
	t.Logf("fabric after %d executions: %d hits / %d shared / %d misses",
		workers*(feedsPer*2+8)+workers+1, hits, shared, misses)
}

// TestFabricSharding pins the shard-routing invariants the lookup
// completeness argument rests on: snapshots that consumed data are found
// via their first-word shard, zero-word snapshots are found from the wild
// shard by any feed, and identical prefixes dedup inside one shard.
func TestFabricSharding(t *testing.T) {
	f := NewSnapFabric()
	mk := func(words int, data []byte, steps uint64) *snapshot {
		return &snapshot{stage: stageTerminal, words: words, data: data, steps: steps}
	}
	a := mk(1, []byte{9, 9, 9, 9}, 10)
	w := mk(0, nil, 5)
	f.add(a)
	f.add(w)

	if got := f.best(&Feed{Data: []byte{9, 9, 9, 9}}, 0); got != a {
		t.Fatalf("data-sharded snapshot not found: got %v", got)
	}
	// A feed with a different first word cannot match a; the wild-shard
	// snapshot (zero consumed words matches anything) must serve it.
	if got := f.best(&Feed{Data: []byte{1, 2, 3, 4}}, 0); got != w {
		t.Fatalf("wild snapshot not found for unmatched data: got %v", got)
	}
	// Dedup: re-adding the same prefix keeps one entry in its shard.
	f.add(mk(1, []byte{9, 9, 9, 9}, 20))
	sh := &f.shards[shardIndex([]byte{9, 9, 9, 9})]
	n := 0
	for _, sn := range sh.snaps {
		if sn.words == 1 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("same prefix kept %d shard entries", n)
	}
	// Stats attribution: owner hit vs shared hit vs miss.
	owner := f.register()
	other := f.register()
	a.owner = owner
	f.best(&Feed{Data: []byte{9, 9, 9, 9}}, owner)
	f.best(&Feed{Data: []byte{9, 9, 9, 9}}, other)
	hits, shared, _ := f.Stats()
	if hits == 0 || shared == 0 {
		t.Fatalf("hit split not attributed: hits=%d shared=%d", hits, shared)
	}
}
