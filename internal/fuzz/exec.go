package fuzz

import (
	"fmt"
	"strings"

	"repro/internal/annot"
	"repro/internal/binimg"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Options configure one concrete executor.
type Options struct {
	// Annotations mirrors the engine's annotation switch: with it on, the
	// same injection points (registry values, packet bytes, OIDs, alloc
	// failures) exist, answered from the feed instead of fresh symbols.
	Annotations bool
	// MaxStepsPerEntry bounds one entry invocation; exceeding it abandons
	// the execution (killed, not a bug).
	MaxStepsPerEntry uint64
	// MaxInterrupts bounds feed-scheduled interrupt injections per
	// execution.
	MaxInterrupts int
	// LoopThreshold is the infinite-loop heuristic's per-block repeat bound.
	LoopThreshold uint64
	// MaxDPCs bounds the DPC-drain phase.
	MaxDPCs int
	// Registry overrides/extends the default registry hive.
	Registry map[string]uint32
	// Persist enables persistent-mode execution: the executor snapshots the
	// state reached after DriverEntry and after a successful Initialize, and
	// serves later executions whose feeds share the consumed boot prefix by
	// forking the snapshot instead of re-running the boot phases; boots that
	// end the execution without a crash are memoized outright. Results are
	// bit-identical to cold execution (see snapshot.go for the soundness
	// argument and the determinism suite in persist_test.go for the proof).
	Persist bool
	// Fabric, when non-nil with Persist on, is the shared snapshot store
	// this executor publishes to and resumes from — the campaign wires one
	// fabric into every worker so the fleet cold-boots each prefix once.
	// Nil with Persist on gives the executor a private fabric (the pre-
	// fabric behaviour). Never serialized: a fabric holds live state.
	Fabric *SnapFabric `json:"-"`
	// NoSuperblocks disables the VM's superblock fast path on this
	// executor's machine. Execution is bit-identical either way (the
	// superblock determinism suite proves it); the switch exists for those
	// proofs and for the step-loop benchmarks.
	NoSuperblocks bool `json:",omitempty"`
	// NoCompiledSpans disables the VM's pre-lowered micro-op dispatch and
	// falls back to per-instruction decode inside spans. Execution is
	// bit-identical either way (the compiled-span determinism suite proves
	// it); the switch exists for those proofs and for dispatch benchmarks.
	NoCompiledSpans bool `json:",omitempty"`
	// LazyTrace runs executions trace-free: no TraceNode chain is built,
	// recorded, or allocated (ExecResult.Trace is nil). Execution is a pure
	// function of (feed, schedule), so the full chain for the rare feeds
	// that need one — crashes under triage, determinism comparisons — is
	// materialized on demand by RunTraced, an exact cold re-execution with
	// tracing on; the lazy-trace determinism suite proves the rematerialized
	// chain event-for-event identical to an eager one. Defaults on in
	// DefaultOptions: the fuzzer's hot path never looks at traces.
	LazyTrace bool
}

// DefaultOptions mirror the engine's workload configuration, with tighter
// step bounds: a fuzz execution is one path, so the budget per entry can be
// far below the symbolic exploration budget.
func DefaultOptions() Options {
	return Options{
		Annotations:      true,
		MaxStepsPerEntry: 30_000,
		MaxInterrupts:    4,
		LoopThreshold:    1_000,
		MaxDPCs:          8,
		LazyTrace:        true,
	}
}

// Crash is one concrete failing execution, deduplicated by fault site and
// checker class, carrying its replayable feed.
//
// Crash is a wire type: workers report crashes to the campaign manager
// (internal/manager) as JSON, so the field tags below are a stable format —
// wire_test.go pins them against silent drift.
type Crash struct {
	// Class is the Table 2 bug category (checkers.Classify).
	Class string `json:"class"`
	// RawClass is the checker's fault class ("memory", "crash", "leak", ...).
	RawClass string `json:"raw_class"`
	// PC is the fault site.
	PC uint32 `json:"pc"`
	// Msg is the fault message.
	Msg string `json:"msg"`
	// Site is the fault site used for deduplication: PC when it lies inside
	// driver text, otherwise the last driver basic block executed (a wild
	// jump faults at its garbage target; the bug lives at the jump).
	Site uint32 `json:"site"`
	// Entry names the workload entry being exercised when the fault fired.
	Entry string `json:"entry"`
	// InInterrupt reports whether the fault fired inside an injected ISR.
	InInterrupt bool `json:"in_interrupt,omitempty"`
	// Feed replays the crash deterministically through an Executor.
	Feed *Feed `json:"feed,omitempty"`
	// Exec is the global execution index at discovery.
	Exec uint64 `json:"exec"`
	// Reproduced is set once the fuzzer re-executed the feed and hit the
	// same fault site again.
	Reproduced bool `json:"reproduced"`
}

// Key is the deduplication identity: same checker class at the same fault
// site is one crash, however many feeds reach it (mirrors core.Bug.Key,
// with wild-jump targets normalized to the jump site).
func (c *Crash) Key() string { return fmt.Sprintf("%s@%#x", c.Class, c.Site) }

func (c *Crash) String() string {
	return fmt.Sprintf("[%s] %s (entry %s, pc %#x)", c.Class, c.Msg, c.Entry, c.PC)
}

// ExecResult is the outcome of one feed execution.
type ExecResult struct {
	// Crash is non-nil when the execution ended in a fault.
	Crash *Crash
	// NewBlocks counts basic blocks this execution discovered in the shared
	// coverage map — the corpus-admission novelty signal.
	NewBlocks int
	// Blocks counts distinct blocks entered during this execution.
	Blocks int
	// Steps is the instruction count of this execution.
	Steps uint64
	// Entries lists the workload entries that ran.
	Entries []string
	// ConsumedData/ConsumedForks/ConsumedIRQ report how much of the feed the
	// execution actually read; trailing bytes beyond that are dead weight.
	ConsumedData  int
	ConsumedForks int
	ConsumedIRQ   int
	// Warm reports that this execution resumed from a persistent-mode
	// snapshot (Options.Persist) instead of re-running the boot phases.
	Warm bool
	// SkippedSteps counts the boot instructions a warm execution avoided
	// re-executing. Steps still reports the full logical workload cost —
	// identical to a cold execution of the same feed — so corpus accounting
	// and coverage timelines do not depend on the execution mode.
	SkippedSteps uint64
	// Trace is the executed path's event chain (the final state's trace).
	// Warm executions chain through the snapshot's recorded boot trace, so
	// the event sequence equals a cold execution's — the determinism suite
	// compares them event by event. Nil under Options.LazyTrace: use
	// RunTraced to materialize the chain by exact re-execution.
	Trace *vm.TraceNode
}

// Executor runs driver workloads fully concretely from feeds. It owns one
// machine and kernel, reused across executions; it is not safe for
// concurrent use — the worker pool gives each worker its own executor and
// shares only the (thread-safe) coverage recorder.
type Executor struct {
	img  *binimg.Image
	opts Options
	cov  *exerciser.Coverage

	// TimeBase supplies the global instruction-count offset for coverage
	// series sampling (the fuzzer wires the fleet-wide step counter here).
	TimeBase func() uint64

	m    *vm.Machine
	k    *kernel.Kernel
	mem  *checkers.MemoryChecker
	leak checkers.LeakChecker

	reader    feedReader
	loop      *checkers.LoopChecker
	runBase   uint64 // m.Steps at execution start
	stepsBase uint64 // logical boot steps a snapshot resume skipped
	curNew    int
	curSeen   map[uint32]bool
	covBatch  []uint32 // first-seen block PCs awaiting one shared-map Merge
	intrUsed  int
	lastBlock uint32
	eligBound uint64 // persistent mode: triggers below this could have fired

	// snaps is the persistent-mode snapshot fabric (nil when Persist is
	// off): either the campaign-shared fabric from Options.Fabric or a
	// private one. Snapshots are immutable and resumes fork frozen state,
	// so sharing across executors is safe; execID attributes this
	// executor's lookups in the fabric's hit/shared-hit split.
	snaps  *SnapFabric
	execID uint64
}

// NewExecutor builds an executor for the image. cov may be nil (coverage
// still counted per execution, no global novelty).
func NewExecutor(img *binimg.Image, cov *exerciser.Coverage, opts Options) *Executor {
	e := &Executor{img: img, opts: opts, cov: cov}
	e.m = vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	e.k = kernel.New(e.m)
	e.mem = checkers.NewMemoryChecker()
	e.mem.Install(e.m)
	dev := hw.NewConcrete(img.Device, e)
	dev.Attach(e.m)
	if opts.Annotations {
		annot.InstallAll(e.k)
	}
	e.k.SymbolPolicy = e.symbolPolicy
	e.k.ForkPolicy = e.forkPolicy
	if opts.NoSuperblocks {
		e.m.DisableSuperblocks = true
	}
	if opts.NoCompiledSpans {
		e.m.DisableCompiledSpans = true
	}
	if opts.LazyTrace {
		e.m.DisableTrace = true
	}
	if opts.Persist {
		e.snaps = opts.Fabric
		if e.snaps == nil {
			e.snaps = NewSnapFabric()
		}
		e.execID = e.snaps.register()
	}
	e.m.OnBlock = func(s *vm.State, pc uint32) {
		e.lastBlock = pc
		if !e.curSeen[pc] {
			e.curSeen[pc] = true
			// Batched coverage: first-seen blocks accumulate locally and hit
			// the shared map in one Merge per execution (flushCoverage)
			// instead of one mutex round-trip per block. Merge dedups against
			// the global map atomically, so novelty attribution (NewBlocks)
			// is what per-block Visit calls would have produced.
			if e.cov != nil {
				e.covBatch = append(e.covBatch, pc)
			}
		}
		if err := e.loop.Visit(s, pc); err != nil {
			if f, ok := err.(*vm.Fault); ok {
				s.PendFault = f
			}
		}
	}
	return e
}

// flushCoverage publishes the execution's first-seen blocks to the shared
// coverage map in one call, crediting any fleet-novel ones to curNew. Must
// run before NewBlocks is read off the execution.
func (e *Executor) flushCoverage() {
	if len(e.covBatch) == 0 {
		return
	}
	e.curNew += e.cov.Merge(e.covBatch, e.now())
	e.covBatch = e.covBatch[:0]
}

func (e *Executor) now() uint64 {
	t := e.m.Steps.Load() - e.runBase + e.stepsBase
	if e.TimeBase != nil {
		t += e.TimeBase()
	}
	return t
}

// ReadRegister implements hw.FeedSource: device reads consume feed words.
func (e *Executor) ReadRegister(port bool, addr, size uint32) uint32 {
	return e.reader.word()
}

// clampWord maps a raw feed word to the value range the symbolic engine's
// path constraints allow at the same injection site, so the fuzzer cannot
// manufacture inputs the symbolic workload rules out (the soundness
// requirement of §7 — e.g. a packet length beyond the allocated payload
// would be a false positive). The bridge shares this function: LiftFeed
// applies it before pinning engine symbols, and encodeWord is its inverse
// for bridging solved values back into feeds. Keep the three in sync.
func clampWord(name string, origin expr.Origin, v uint32) uint32 {
	switch {
	case strings.HasPrefix(name, "packet_len"):
		return 14 + v%51 // engine constrains 14 <= len <= 64
	case origin == expr.OriginRegistry:
		return v & 0x7FFFFFFF // engine constrains symb >= 0 (signed)
	case strings.HasPrefix(name, "packet_byte_") || strings.HasPrefix(name, "sample_"):
		return v & 0xFF
	}
	return v
}

// encodeWord inverts clampWord where the clamp is not the identity on
// solved engine values, so a bridged feed replays the exact witness input
// (clampWord(encodeWord(v)) == v for every value a satisfying model can
// assign: registry values are already non-negative, byte symbols are used
// masked on both sides).
func encodeWord(name string, v uint32) uint32 {
	if strings.HasPrefix(name, "packet_len") && v >= 14 && v <= 64 {
		return v - 14
	}
	return v
}

// symbolPolicy answers every would-be symbolic injection from the feed.
func (e *Executor) symbolPolicy(s *vm.State, name string, origin expr.Origin) *expr.Expr {
	return expr.Const(clampWord(name, origin, e.reader.word()))
}

// forkPolicy decides annotation forks (alternative API outcomes) from the
// feed's fork stream.
func (e *Executor) forkPolicy(s *vm.State, api string) bool {
	return e.reader.forkBit()
}

// maybeInject delivers a scheduled interrupt at the first eligible instant
// at or past its trigger. Eligibility mirrors the engine's injection rules:
// an ISR must be registered and no interrupt context may be active.
//
// In persistent mode it additionally maintains eligBound, the exclusive
// upper bound on trigger values that could still fire in the executed
// segment: an instant is injection-eligible independently of any pending
// trigger, so a snapshot knows that a candidate feed's unconsumed trigger
// at or past the bound can never fire before the snapshot point — the
// exact validity rule for interrupt schedules (snapshot.matches).
//
// It returns the instant's injection eligibility as it stands after any
// injection it performed. Every eligibility factor — ISR registration,
// interrupt context, IRQL, injection budget — only changes at span-ending
// events (API calls, injections, interrupt returns, phase transitions), so
// the returned value holds for every instant a following StepSpan dispatch
// executes through, and the caller can maintain eligBound across a whole
// span with one post-dispatch update.
func (e *Executor) maybeInject(s *vm.State) bool {
	trig, ok := e.reader.nextIRQ()
	pending := ok && s.ICount >= trig && e.intrUsed < e.opts.MaxInterrupts
	if !pending && e.snaps == nil {
		return false
	}
	ks := kernel.Of(s)
	eligible := ks.ISRRegistered && s.InInterrupt == 0 && ks.IRQL < kernel.DeviceLevel &&
		e.intrUsed < e.opts.MaxInterrupts
	if eligible && e.snaps != nil {
		e.eligBound = s.ICount + 1
	}
	if !pending || !eligible {
		return eligible
	}
	e.reader.takeIRQ()
	e.intrUsed++
	e.k.InjectInterrupt(s)
	// The injection flipped the eligibility factors (interrupt context
	// active, IRQL raised); re-evaluate for the instants that follow.
	return ks.ISRRegistered && s.InInterrupt == 0 && ks.IRQL < kernel.DeviceLevel &&
		e.intrUsed < e.opts.MaxInterrupts
}

// Run executes one feed through the full workload chain and reports the
// outcome. Execution is deterministic in the feed, and — with Persist on —
// independent of whether it ran cold or resumed from a snapshot.
func (e *Executor) Run(feed *Feed) *ExecResult {
	e.reader.reset(feed)
	e.loop = checkers.NewLoopChecker(e.opts.LoopThreshold)
	e.runBase = e.m.Steps.Load()
	e.stepsBase = 0
	e.curNew = 0
	e.curSeen = make(map[uint32]bool)
	e.covBatch = e.covBatch[:0]
	e.intrUsed = 0
	e.lastBlock = 0
	e.eligBound = 0

	res := &ExecResult{}
	var fin *vm.State
	if sn := e.lookupSnapshot(feed); sn != nil {
		res.Warm = true
		res.SkippedSteps = sn.steps
		if sn.stage == stageTerminal {
			return e.serveMemo(sn, feed, res)
		}
		e.resumeFrom(sn, feed, res)
		s := e.m.ResumeState(sn.state)
		if sn.stage == stageBooted {
			fin = e.classWorkload(s, res)
		} else {
			fin = e.dataWorkload(s, res)
		}
	} else {
		fin = e.runWorkload(e.bootState(), res)
	}

	e.flushCoverage()
	res.NewBlocks = e.curNew
	res.Blocks = len(e.curSeen)
	res.Steps = e.m.Steps.Load() - e.runBase + e.stepsBase
	res.ConsumedData, res.ConsumedForks, res.ConsumedIRQ = e.reader.consumed()
	if fin != nil {
		// Detach the trace before retiring: Retire recycles an attached
		// leaf's event storage, and the harvested chain must outlive the
		// state. The rest of the state is never touched again (crash
		// identity and cursors are all harvested); recycle its overlay maps.
		res.Trace = fin.DetachTrace()
		fin.Retire()
	}
	return res
}

// RunTraced executes one feed exactly like Run but guarantees the result
// carries the full trace chain, whatever Options.LazyTrace says. Under lazy
// tracing it re-enables trace recording and runs the feed cold — snapshot
// lookup AND recording are bypassed, so trace-carrying states never enter
// the (trace-free) snapshot fabric and the chain covers the whole workload
// from boot. Execution is a pure function of the feed, so every other
// result field matches the trace-free run of the same feed bit for bit.
func (e *Executor) RunTraced(feed *Feed) *ExecResult {
	if !e.opts.LazyTrace {
		return e.Run(feed)
	}
	snaps := e.snaps
	e.snaps = nil
	e.m.DisableTrace = false
	res := e.Run(feed)
	e.m.DisableTrace = true
	e.snaps = snaps
	return res
}

// lookupSnapshot returns the deepest valid snapshot for the feed, or nil
// for a cold run (always nil with Persist off).
func (e *Executor) lookupSnapshot(feed *Feed) *snapshot {
	if e.snaps == nil {
		return nil
	}
	return e.snaps.best(feed, e.execID)
}

// resumeFrom restores the executor's per-execution context to the snapshot
// point: feed cursors, interrupt budget, per-exec coverage, entry log.
func (e *Executor) resumeFrom(sn *snapshot, feed *Feed, res *ExecResult) {
	e.reader.resumeAt(feed, sn.words, sn.forkBits, sn.irqs)
	e.stepsBase = sn.steps
	e.intrUsed = sn.intrUsed
	e.lastBlock = sn.lastBlock
	e.eligBound = sn.eligBound
	e.curSeen = make(map[uint32]bool, len(sn.seen))
	for pc := range sn.seen {
		e.curSeen[pc] = true
	}
	res.Entries = append(res.Entries, sn.entries...)
}

// serveMemo concludes an execution whose entire outcome was decided by a
// memoized boot prefix, without executing anything. Every field matches
// what a cold execution of the feed would report: the recording run marked
// the boot blocks in the shared coverage map, so a cold replay would find
// no novelty in them either, and the consumed-byte cursors are recomputed
// against this feed's own stream lengths.
func (e *Executor) serveMemo(sn *snapshot, feed *Feed, res *ExecResult) *ExecResult {
	res.Blocks = len(sn.seen)
	res.NewBlocks = 0
	res.Steps = sn.steps
	res.Entries = append(res.Entries, sn.entries...)
	res.Trace = sn.trace
	res.ConsumedData, res.ConsumedForks = clampCursors(feed, sn.words, sn.forkBits)
	res.ConsumedIRQ = sn.irqs
	return res
}

// recordSnapshot captures a resumable snapshot of s at the given stage.
func (e *Executor) recordSnapshot(stage snapStage, s *vm.State, res *ExecResult) {
	if e.snaps == nil {
		return
	}
	sn := e.captureContext(stage, res)
	sn.owner = e.execID
	sn.state = e.m.SnapshotState(s)
	e.snaps.add(sn)
}

// recordTerminal memoizes an execution whose workload ended at (or before)
// the boot phases without crashing: the boot prefix alone decided the
// whole result, so later feeds sharing it can skip execution entirely.
func (e *Executor) recordTerminal(s *vm.State, res *ExecResult) {
	if e.snaps == nil || res.Crash != nil {
		return
	}
	sn := e.captureContext(stageTerminal, res)
	sn.owner = e.execID
	if s != nil {
		sn.trace = s.Trace
	}
	e.snaps.add(sn)
}

// captureContext snapshots the executor's per-execution replay context —
// the semantic feed cursors, the effective consumed streams, and the
// coverage/entry state — common to resumable and terminal snapshots.
func (e *Executor) captureContext(stage snapStage, res *ExecResult) *snapshot {
	r := &e.reader
	f := r.feed
	dataN, forkN := clampCursors(f, r.words, r.forkBits)
	sn := &snapshot{
		stage:     stage,
		words:     r.words,
		forkBits:  r.forkBits,
		irqs:      r.irq,
		data:      append([]byte(nil), f.Data[:dataN]...),
		forks:     make([]byte, forkN),
		irq:       append([]uint64(nil), f.IRQ[:r.irq]...),
		steps:     e.m.Steps.Load() - e.runBase + e.stepsBase,
		eligBound: e.eligBound,
		intrUsed:  e.intrUsed,
		lastBlock: e.lastBlock,
		seen:      make(map[uint32]bool, len(e.curSeen)),
		entries:   append([]string(nil), res.Entries...),
	}
	for j := 0; j < forkN; j++ {
		sn.forks[j] = f.Forks[j] & 1
	}
	for pc := range e.curSeen {
		sn.seen[pc] = true
	}
	return sn
}

func (e *Executor) bootState() *vm.State {
	s := e.m.NewRootState()
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{
		Lo: isa.ImageBase, Hi: e.img.LimitVA(),
		Kind: kernel.RegionImage, Writable: true, Tag: "driver image",
	})
	for k, v := range core.DefaultRegistry() {
		ks.Registry[k] = v
	}
	for k, v := range e.opts.Registry {
		ks.Registry[k] = v
	}
	s.Kernel = ks
	s.HW = &hw.DeviceState{}
	return s
}

// runWorkload drives the workload chain from a cold boot: DriverEntry, then
// the class workload the OS would run, concretely, one path. It returns the
// state the execution ended on.
func (e *Executor) runWorkload(s *vm.State, res *ExecResult) *vm.State {
	s, ok := e.runEntry(s, "DriverEntry", e.img.Entry, nil, res)
	if !ok {
		e.recordTerminal(s, res)
		return s
	}
	e.recordSnapshot(stageBooted, s, res)
	return e.classWorkload(s, res)
}

// classWorkload runs the Initialize gate for the device class and, on
// success, the data path. A boot that ends the execution here — Initialize
// crashed, was killed, or returned non-success, or the class has no
// workload — is memoized as a terminal snapshot: its outcome was a pure
// function of the consumed boot prefix.
func (e *Executor) classWorkload(s *vm.State, res *ExecResult) *vm.State {
	var initPC uint32
	switch e.img.Device.Class {
	case binimg.ClassNetwork:
		if m := kernel.Of(s).Miniport; m != nil {
			initPC = m.InitializePC
		}
	case binimg.ClassAudio:
		if a := kernel.Of(s).Audio; a != nil {
			initPC = a.InitializePC
		}
	case binimg.ClassStorage:
		if st := kernel.Of(s).Storage; st != nil {
			initPC = st.InitializePC
		}
	default:
		e.recordTerminal(s, res)
		return s
	}
	adapter := expr.Const(adapterHandle)
	s2, ok, status := e.runEntryStatus(s, "Initialize", initPC, []*expr.Expr{adapter}, res)
	if !ok || status != kernel.StatusSuccess {
		// The OS only exercises the data path — and eventually Halt — on an
		// adapter that initialized successfully.
		e.recordTerminal(s2, res)
		return s2
	}
	e.recordSnapshot(stageInitialized, s2, res)
	return e.dataWorkload(s2, res)
}

// dataWorkload exercises the post-Initialize phases for the device class.
func (e *Executor) dataWorkload(s *vm.State, res *ExecResult) *vm.State {
	switch e.img.Device.Class {
	case binimg.ClassNetwork:
		return e.networkData(s, res)
	case binimg.ClassAudio:
		return e.audioData(s, res)
	case binimg.ClassStorage:
		return e.storageData(s, res)
	}
	return s
}

// adapterHandle mirrors the workload generator's opaque per-adapter context.
const adapterHandle uint32 = 0x7000_0001

func (e *Executor) networkData(s *vm.State, res *ExecResult) *vm.State {
	// Entry PCs and kernel state are re-read from the live state after
	// every phase: runEntry may return a forked successor whose KState is a
	// distinct object.
	mp := func() *kernel.MiniportChars {
		if m := kernel.Of(s).Miniport; m != nil {
			return m
		}
		return &kernel.MiniportChars{}
	}
	adapter := expr.Const(adapterHandle)
	var ok bool

	if pkt := e.makePacket(s); pkt != 0 {
		if s, ok = e.runEntry(s, "Send", mp().SendPC, []*expr.Expr{adapter, expr.Const(pkt)}, res); !ok {
			return s
		}
	}
	if s, ok = e.runEntry(s, "QueryInformation", mp().QueryInfoPC, e.infoArgs(s, adapter, kernel.OIDGenSupportedList), res); !ok {
		return s
	}
	if s, ok = e.runEntry(s, "SetInformation", mp().SetInfoPC, e.infoArgs(s, adapter, kernel.OIDGenCurrentPacketFil), res); !ok {
		return s
	}
	if s, ok = e.runISR(s, adapter, res); !ok {
		return s
	}
	if s, ok = e.drainDPCs(s, res); !ok {
		return s
	}
	s, _ = e.runEntry(s, "Halt", mp().HaltPC, []*expr.Expr{adapter}, res)
	return s
}

func (e *Executor) audioData(s *vm.State, res *ExecResult) *vm.State {
	au := func() *kernel.AudioChars {
		if a := kernel.Of(s).Audio; a != nil {
			return a
		}
		return &kernel.AudioChars{}
	}
	adapter := expr.Const(adapterHandle)
	var ok bool

	if buf := e.makeAudioBuffer(s); buf != 0 {
		if s, ok = e.runEntry(s, "Play", au().PlayPC, []*expr.Expr{adapter, expr.Const(buf), expr.Const(256)}, res); !ok {
			return s
		}
	}
	if s, ok = e.runISR(s, adapter, res); !ok {
		return s
	}
	if s, ok = e.drainDPCs(s, res); !ok {
		return s
	}
	if s, ok = e.runEntry(s, "Stop", au().StopPC, []*expr.Expr{adapter}, res); !ok {
		return s
	}
	s, _ = e.runEntry(s, "Halt", au().HaltPC, []*expr.Expr{adapter}, res)
	return s
}

// storageData exercises the storage data path plus ONE scenario-graph
// alternative per execution: feed fork-bits pick surprise removal,
// suspend/resume, or IRP cancellation — the concrete mirror of the
// symbolic scenario graph's alternative edges (core/pipeline.go
// storagePhases), so mutation of the fork-bit stream walks every branch.
func (e *Executor) storageData(s *vm.State, res *ExecResult) *vm.State {
	sc := func() *kernel.StorageChars {
		if st := kernel.Of(s).Storage; st != nil {
			return st
		}
		return &kernel.StorageChars{}
	}
	adapter := expr.Const(adapterHandle)
	var ok bool

	if buf := e.makeStorageBuffer(s); buf != 0 {
		if s, ok = e.runEntry(s, "Read", sc().ReadPC, []*expr.Expr{adapter, expr.Const(buf), expr.Const(0x80)}, res); !ok {
			return s
		}
		if s, ok = e.runEntry(s, "Write", sc().WritePC, []*expr.Expr{adapter, expr.Const(buf), expr.Const(0x80)}, res); !ok {
			return s
		}
	}
	if s, ok = e.runISR(s, adapter, res); !ok {
		return s
	}
	removal := e.reader.forkBit()
	suspend := !removal && e.reader.forkBit()
	switch {
	case removal:
		// The card is gone before the driver hears about it; every
		// hardware read from here on returns all-ones.
		hw.Of(s).Removed = true
		kernel.Of(s).Removed = true
		if s, ok = e.runEntry(s, "SurpriseRemoval", sc().PnpPC, []*expr.Expr{adapter, expr.Const(kernel.IrpMnSurpriseRemoval)}, res); !ok {
			return s
		}
		if s, ok = e.drainDPCs(s, res); !ok {
			return s
		}
		if s, ok = e.runEntry(s, "RemoveDevice", sc().PnpPC, []*expr.Expr{adapter, expr.Const(kernel.IrpMnRemoveDevice)}, res); !ok {
			return s
		}
	case suspend:
		if s, ok = e.runEntry(s, "Suspend", sc().PowerPC, []*expr.Expr{adapter, expr.Const(kernel.IrpMnSetPower), expr.Const(kernel.PowerDeviceD3)}, res); !ok {
			return s
		}
		if s, ok = e.runEntry(s, "Resume", sc().PowerPC, []*expr.Expr{adapter, expr.Const(kernel.IrpMnSetPower), expr.Const(kernel.PowerDeviceD0)}, res); !ok {
			return s
		}
		if s, ok = e.drainDPCs(s, res); !ok {
			return s
		}
	default:
		if s, ok = e.runEntry(s, "CancelIo", sc().CancelPC, []*expr.Expr{adapter}, res); !ok {
			return s
		}
		if s, ok = e.drainDPCs(s, res); !ok {
			return s
		}
	}
	s, _ = e.runEntry(s, "Halt", sc().HaltPC, []*expr.Expr{adapter}, res)
	return s
}

func (e *Executor) runISR(s *vm.State, adapter *expr.Expr, res *ExecResult) (*vm.State, bool) {
	ks := kernel.Of(s)
	if !ks.ISRRegistered || ks.ISRPC == 0 {
		return s, true
	}
	ks.IRQL = kernel.DeviceLevel
	return e.runEntry(s, "ISR", ks.ISRPC, []*expr.Expr{adapter}, res)
}

func (e *Executor) drainDPCs(s *vm.State, res *ExecResult) (*vm.State, bool) {
	for n := 0; n < e.opts.MaxDPCs; n++ {
		ks := kernel.Of(s)
		if len(ks.PendingDPCs) == 0 {
			break
		}
		dpc := ks.TakeDPC()
		ks.IRQL = kernel.DispatchLevel
		ks.InDpc = true
		var ok bool
		if s, ok = e.runEntry(s, "DPC:"+dpc.Label, dpc.FuncPC, []*expr.Expr{expr.Const(dpc.Ctx)}, res); !ok {
			return s, false
		}
	}
	return s, true
}

// runEntry invokes one entry and steps it to completion. It returns the
// state the path ended on (which may be a forked successor of s) and false
// when the execution is over (crash, kill, or unresolvable entry).
func (e *Executor) runEntry(s *vm.State, name string, pc uint32, args []*expr.Expr, res *ExecResult) (*vm.State, bool) {
	fin, ok, _ := e.runEntryStatus(s, name, pc, args, res)
	return fin, ok
}

func (e *Executor) runEntryStatus(s *vm.State, name string, pc uint32, args []*expr.Expr, res *ExecResult) (*vm.State, bool, uint32) {
	if pc == 0 {
		return s, true, kernel.StatusSuccess
	}
	res.Entries = append(res.Entries, name)
	e.k.InvokeSym(s, name, pc, args...)
	start := s.ICount
	for s.Status == vm.StatusRunning {
		if s.ICount-start >= e.opts.MaxStepsPerEntry {
			s.Status = vm.StatusKilled
			return s, false, 0
		}
		elig := e.maybeInject(s)
		// Span budget: run straight-line code in one dispatch up to the next
		// per-instruction decision point — the entry step bound, or the next
		// pending interrupt trigger (its injection instant must be a dispatch
		// boundary so maybeInject sees it exactly when a per-instruction loop
		// would). A trigger at or before the current instant never caps: it
		// either just fired or is blocked by an eligibility factor that
		// cannot change mid-span.
		budget := e.opts.MaxStepsPerEntry - (s.ICount - start)
		if trig, ok := e.reader.nextIRQ(); ok && e.intrUsed < e.opts.MaxInterrupts && trig > s.ICount {
			if d := trig - s.ICount; d < budget {
				budget = d
			}
		}
		icount := s.ICount
		next, err := e.m.StepSpan(s, budget)
		// Every instant the dispatch executed through shared the eligibility
		// maybeInject returned (eligibility only changes at span enders), so
		// one update rolls eligBound forward over the whole span: the last
		// pre-instruction instant was ICount-1, making ICount the exclusive
		// bound — exactly what a per-instruction loop would have left.
		if elig && e.snaps != nil && s.ICount > icount {
			e.eligBound = s.ICount
		}
		// A loop fault raised by OnBlock travels on the state itself.
		if err == nil && s.PendFault != nil {
			err = s.PendFault
			s.PendFault = nil
			s.Status = vm.StatusBug
		}
		if err != nil {
			e.recordCrash(s, name, err, res)
			return s, false, 0
		}
		switch len(next) {
		case 0:
			// terminal
		case 1:
			s = next[0]
		default:
			// Concrete execution cannot fork; if it ever does (a stray
			// symbolic value), follow the first child and drop the rest.
			for _, n := range next[1:] {
				n.Status = vm.StatusKilled
				n.Retire()
			}
			s = next[0]
		}
	}
	if s.Status != vm.StatusExited {
		return s, false, 0
	}
	status, ok := s.RegConcrete(isa.R0)
	if !ok {
		status = 0
	}
	// Entry-exit checks: leaks fire here, exactly as in the engine.
	if err := e.leak.CheckEntryExit(s, name, status); err != nil {
		e.recordCrash(s, name, err, res)
		return s, false, 0
	}
	// Normalize carried context between phases, as the workload does.
	ks := kernel.Of(s)
	ks.InDpc = false
	ks.IRQL = kernel.PassiveLevel
	s.Status = vm.StatusRunning
	return s, true, status
}

func (e *Executor) recordCrash(s *vm.State, entry string, err error, res *ExecResult) {
	f, ok := err.(*vm.Fault)
	if !ok {
		f = vm.Faultf("engine", s.PC, "%v", err)
	}
	site := f.PC
	textLimit := isa.ImageBase + uint32(len(e.img.Text))
	if site < isa.ImageBase || site >= textLimit {
		site = e.lastBlock
	}
	res.Crash = &Crash{
		Class:       checkers.Classify(f, s),
		RawClass:    f.Class,
		PC:          f.PC,
		Site:        site,
		Msg:         f.Msg,
		Entry:       entry,
		InInterrupt: s.InInterrupt > 0,
	}
}

// makePacket mirrors the workload generator's one-packet Send payload
// (core/workload.go makeSymbolicPacket), with feed-fed contents where the
// engine would inject symbols. The injection sites must stay in the same
// order as the engine's — the concolic bridge maps feed words to symbols
// positionally (TestHybridLoop guards the alignment end-to-end).
func (e *Executor) makePacket(s *vm.State) uint32 {
	ks := kernel.Of(s)
	const payload = 64
	addr, err := ks.HeapAlloc(8+payload, "sendpkt", "packet", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr) // kernel-owned: the driver must not free it
	data := addr + 8
	s.Mem.Write(addr, 4, expr.Const(data))
	if e.opts.Annotations {
		s.Mem.Write(addr+4, 4, e.k.FreshSymbol(s, "packet_len", expr.OriginPacket))
		for i := uint32(0); i < 16; i++ {
			s.Mem.Write(data+i, 1, e.k.FreshSymbol(s, fmt.Sprintf("packet_byte_%d", i), expr.OriginPacket))
		}
	} else {
		s.Mem.Write(addr+4, 4, expr.Const(42))
		for i := uint32(0); i < 16; i++ {
			s.Mem.Write(data+i, 1, expr.Const(uint32(0x40+i)))
		}
	}
	for i := uint32(16); i < payload; i++ {
		s.Mem.Write(data+i, 1, expr.Const(0))
	}
	return addr
}

func (e *Executor) infoArgs(s *vm.State, adapter *expr.Expr, concreteOID uint32) []*expr.Expr {
	ks := kernel.Of(s)
	buf, err := ks.HeapAlloc(64, "infobuf", "param", s.ICount, 0)
	if err != nil {
		return nil
	}
	delete(ks.Allocs, buf)
	var oid *expr.Expr
	if e.opts.Annotations {
		oid = e.k.FreshSymbol(s, "oid", expr.OriginArgument)
	} else {
		oid = expr.Const(concreteOID)
	}
	return []*expr.Expr{adapter, oid, expr.Const(buf), expr.Const(64)}
}

// makeStorageBuffer mirrors core/workload.go makeStorageBuffer; the
// injection sites must stay positionally aligned for the concolic bridge.
func (e *Executor) makeStorageBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(128, "blkbuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	if e.opts.Annotations {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, e.k.FreshSymbol(s, fmt.Sprintf("blk_byte_%d", i), expr.OriginPacket))
		}
	} else {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, expr.Const(i*9&0xFF))
		}
	}
	return addr
}

func (e *Executor) makeAudioBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(256, "audiobuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	if e.opts.Annotations {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, e.k.FreshSymbol(s, fmt.Sprintf("sample_%d", i), expr.OriginPacket))
		}
	} else {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, expr.Const(i*17&0xFF))
		}
	}
	return addr
}
