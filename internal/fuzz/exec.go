package fuzz

import (
	"fmt"
	"strings"

	"repro/internal/annot"
	"repro/internal/binimg"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/exerciser"
	"repro/internal/expr"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Options configure one concrete executor.
type Options struct {
	// Annotations mirrors the engine's annotation switch: with it on, the
	// same injection points (registry values, packet bytes, OIDs, alloc
	// failures) exist, answered from the feed instead of fresh symbols.
	Annotations bool
	// MaxStepsPerEntry bounds one entry invocation; exceeding it abandons
	// the execution (killed, not a bug).
	MaxStepsPerEntry uint64
	// MaxInterrupts bounds feed-scheduled interrupt injections per
	// execution.
	MaxInterrupts int
	// LoopThreshold is the infinite-loop heuristic's per-block repeat bound.
	LoopThreshold uint64
	// MaxDPCs bounds the DPC-drain phase.
	MaxDPCs int
	// Registry overrides/extends the default registry hive.
	Registry map[string]uint32
}

// DefaultOptions mirror the engine's workload configuration, with tighter
// step bounds: a fuzz execution is one path, so the budget per entry can be
// far below the symbolic exploration budget.
func DefaultOptions() Options {
	return Options{
		Annotations:      true,
		MaxStepsPerEntry: 30_000,
		MaxInterrupts:    4,
		LoopThreshold:    1_000,
		MaxDPCs:          8,
	}
}

// Crash is one concrete failing execution, deduplicated by fault site and
// checker class, carrying its replayable feed.
type Crash struct {
	// Class is the Table 2 bug category (checkers.Classify).
	Class string
	// RawClass is the checker's fault class ("memory", "crash", "leak", ...).
	RawClass string
	// PC is the fault site.
	PC uint32
	// Msg is the fault message.
	Msg string
	// Site is the fault site used for deduplication: PC when it lies inside
	// driver text, otherwise the last driver basic block executed (a wild
	// jump faults at its garbage target; the bug lives at the jump).
	Site uint32
	// Entry names the workload entry being exercised when the fault fired.
	Entry string
	// InInterrupt reports whether the fault fired inside an injected ISR.
	InInterrupt bool
	// Feed replays the crash deterministically through an Executor.
	Feed *Feed `json:"-"`
	// Exec is the global execution index at discovery.
	Exec uint64
	// Reproduced is set once the fuzzer re-executed the feed and hit the
	// same fault site again.
	Reproduced bool
}

// Key is the deduplication identity: same checker class at the same fault
// site is one crash, however many feeds reach it (mirrors core.Bug.Key,
// with wild-jump targets normalized to the jump site).
func (c *Crash) Key() string { return fmt.Sprintf("%s@%#x", c.Class, c.Site) }

func (c *Crash) String() string {
	return fmt.Sprintf("[%s] %s (entry %s, pc %#x)", c.Class, c.Msg, c.Entry, c.PC)
}

// ExecResult is the outcome of one feed execution.
type ExecResult struct {
	// Crash is non-nil when the execution ended in a fault.
	Crash *Crash
	// NewBlocks counts basic blocks this execution discovered in the shared
	// coverage map — the corpus-admission novelty signal.
	NewBlocks int
	// Blocks counts distinct blocks entered during this execution.
	Blocks int
	// Steps is the instruction count of this execution.
	Steps uint64
	// Entries lists the workload entries that ran.
	Entries []string
	// ConsumedData/ConsumedForks/ConsumedIRQ report how much of the feed the
	// execution actually read; trailing bytes beyond that are dead weight.
	ConsumedData  int
	ConsumedForks int
	ConsumedIRQ   int
}

// Executor runs driver workloads fully concretely from feeds. It owns one
// machine and kernel, reused across executions; it is not safe for
// concurrent use — the worker pool gives each worker its own executor and
// shares only the (thread-safe) coverage recorder.
type Executor struct {
	img  *binimg.Image
	opts Options
	cov  *exerciser.Coverage

	// TimeBase supplies the global instruction-count offset for coverage
	// series sampling (the fuzzer wires the fleet-wide step counter here).
	TimeBase func() uint64

	m    *vm.Machine
	k    *kernel.Kernel
	mem  *checkers.MemoryChecker
	leak checkers.LeakChecker

	reader    feedReader
	loop      *checkers.LoopChecker
	runBase   uint64 // m.Steps at execution start
	curNew    int
	curSeen   map[uint32]bool
	intrUsed  int
	lastBlock uint32
}

// NewExecutor builds an executor for the image. cov may be nil (coverage
// still counted per execution, no global novelty).
func NewExecutor(img *binimg.Image, cov *exerciser.Coverage, opts Options) *Executor {
	e := &Executor{img: img, opts: opts, cov: cov}
	e.m = vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	e.k = kernel.New(e.m)
	e.mem = checkers.NewMemoryChecker()
	e.mem.Install(e.m)
	dev := hw.NewConcrete(img.Device, e)
	dev.Attach(e.m)
	if opts.Annotations {
		annot.InstallAll(e.k)
	}
	e.k.SymbolPolicy = e.symbolPolicy
	e.k.ForkPolicy = e.forkPolicy
	e.m.OnBlock = func(s *vm.State, pc uint32) {
		e.lastBlock = pc
		if !e.curSeen[pc] {
			e.curSeen[pc] = true
		}
		if e.cov != nil && e.cov.Visit(pc, e.now()) {
			e.curNew++
		}
		if err := e.loop.Visit(s, pc); err != nil {
			if f, ok := err.(*vm.Fault); ok {
				s.PendFault = f
			}
		}
	}
	return e
}

func (e *Executor) now() uint64 {
	t := e.m.Steps.Load() - e.runBase
	if e.TimeBase != nil {
		t += e.TimeBase()
	}
	return t
}

// ReadRegister implements hw.FeedSource: device reads consume feed words.
func (e *Executor) ReadRegister(port bool, addr, size uint32) uint32 {
	return e.reader.word()
}

// clampWord maps a raw feed word to the value range the symbolic engine's
// path constraints allow at the same injection site, so the fuzzer cannot
// manufacture inputs the symbolic workload rules out (the soundness
// requirement of §7 — e.g. a packet length beyond the allocated payload
// would be a false positive). The bridge shares this function: LiftFeed
// applies it before pinning engine symbols, and encodeWord is its inverse
// for bridging solved values back into feeds. Keep the three in sync.
func clampWord(name string, origin expr.Origin, v uint32) uint32 {
	switch {
	case strings.HasPrefix(name, "packet_len"):
		return 14 + v%51 // engine constrains 14 <= len <= 64
	case origin == expr.OriginRegistry:
		return v & 0x7FFFFFFF // engine constrains symb >= 0 (signed)
	case strings.HasPrefix(name, "packet_byte_") || strings.HasPrefix(name, "sample_"):
		return v & 0xFF
	}
	return v
}

// encodeWord inverts clampWord where the clamp is not the identity on
// solved engine values, so a bridged feed replays the exact witness input
// (clampWord(encodeWord(v)) == v for every value a satisfying model can
// assign: registry values are already non-negative, byte symbols are used
// masked on both sides).
func encodeWord(name string, v uint32) uint32 {
	if strings.HasPrefix(name, "packet_len") && v >= 14 && v <= 64 {
		return v - 14
	}
	return v
}

// symbolPolicy answers every would-be symbolic injection from the feed.
func (e *Executor) symbolPolicy(s *vm.State, name string, origin expr.Origin) *expr.Expr {
	return expr.Const(clampWord(name, origin, e.reader.word()))
}

// forkPolicy decides annotation forks (alternative API outcomes) from the
// feed's fork stream.
func (e *Executor) forkPolicy(s *vm.State, api string) bool {
	return e.reader.forkBit()
}

// maybeInject delivers a scheduled interrupt at the first eligible instant
// at or past its trigger. Eligibility mirrors the engine's injection rules:
// an ISR must be registered and no interrupt context may be active.
func (e *Executor) maybeInject(s *vm.State) {
	if e.intrUsed >= e.opts.MaxInterrupts {
		return
	}
	trig, ok := e.reader.nextIRQ()
	if !ok || s.ICount < trig {
		return
	}
	ks := kernel.Of(s)
	if !ks.ISRRegistered || s.InInterrupt > 0 || ks.IRQL >= kernel.DeviceLevel {
		return
	}
	e.reader.takeIRQ()
	e.intrUsed++
	e.k.InjectInterrupt(s)
}

// Run executes one feed through the full workload chain and reports the
// outcome. Execution is deterministic in the feed.
func (e *Executor) Run(feed *Feed) *ExecResult {
	e.reader.reset(feed)
	e.loop = checkers.NewLoopChecker(e.opts.LoopThreshold)
	e.runBase = e.m.Steps.Load()
	e.curNew = 0
	e.curSeen = make(map[uint32]bool)
	e.intrUsed = 0
	e.lastBlock = 0

	res := &ExecResult{}
	s := e.bootState()
	e.runWorkload(s, res)

	res.NewBlocks = e.curNew
	res.Blocks = len(e.curSeen)
	res.Steps = e.m.Steps.Load() - e.runBase
	res.ConsumedData, res.ConsumedForks, res.ConsumedIRQ = e.reader.consumed()
	return res
}

func (e *Executor) bootState() *vm.State {
	s := e.m.NewRootState()
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{
		Lo: isa.ImageBase, Hi: e.img.LimitVA(),
		Kind: kernel.RegionImage, Writable: true, Tag: "driver image",
	})
	for k, v := range core.DefaultRegistry() {
		ks.Registry[k] = v
	}
	for k, v := range e.opts.Registry {
		ks.Registry[k] = v
	}
	s.Kernel = ks
	s.HW = &hw.DeviceState{}
	return s
}

// runWorkload drives the workload chain: DriverEntry, then the class
// workload the OS would run, concretely, one path.
func (e *Executor) runWorkload(s *vm.State, res *ExecResult) {
	s, ok := e.runEntry(s, "DriverEntry", e.img.Entry, nil, res)
	if !ok {
		return
	}
	switch e.img.Device.Class {
	case binimg.ClassNetwork:
		e.networkWorkload(s, res)
	case binimg.ClassAudio:
		e.audioWorkload(s, res)
	}
}

// adapterHandle mirrors the workload generator's opaque per-adapter context.
const adapterHandle uint32 = 0x7000_0001

func (e *Executor) networkWorkload(s *vm.State, res *ExecResult) {
	// Entry PCs and kernel state are re-read from the live state after
	// every phase: runEntry may return a forked successor whose KState is a
	// distinct object.
	mp := func() *kernel.MiniportChars {
		if m := kernel.Of(s).Miniport; m != nil {
			return m
		}
		return &kernel.MiniportChars{}
	}
	adapter := expr.Const(adapterHandle)

	s2, ok, status := e.runEntryStatus(s, "Initialize", mp().InitializePC, []*expr.Expr{adapter}, res)
	s = s2
	if !ok || status != kernel.StatusSuccess {
		// The OS only exercises the data path — and eventually Halt — on an
		// adapter that initialized successfully.
		return
	}
	if pkt := e.makePacket(s); pkt != 0 {
		if s, ok = e.runEntry(s, "Send", mp().SendPC, []*expr.Expr{adapter, expr.Const(pkt)}, res); !ok {
			return
		}
	}
	if s, ok = e.runEntry(s, "QueryInformation", mp().QueryInfoPC, e.infoArgs(s, adapter, kernel.OIDGenSupportedList), res); !ok {
		return
	}
	if s, ok = e.runEntry(s, "SetInformation", mp().SetInfoPC, e.infoArgs(s, adapter, kernel.OIDGenCurrentPacketFil), res); !ok {
		return
	}
	if s, ok = e.runISR(s, adapter, res); !ok {
		return
	}
	if s, ok = e.drainDPCs(s, res); !ok {
		return
	}
	e.runEntry(s, "Halt", mp().HaltPC, []*expr.Expr{adapter}, res)
}

func (e *Executor) audioWorkload(s *vm.State, res *ExecResult) {
	au := func() *kernel.AudioChars {
		if a := kernel.Of(s).Audio; a != nil {
			return a
		}
		return &kernel.AudioChars{}
	}
	adapter := expr.Const(adapterHandle)

	s2, ok, status := e.runEntryStatus(s, "Initialize", au().InitializePC, []*expr.Expr{adapter}, res)
	s = s2
	if !ok || status != kernel.StatusSuccess {
		return
	}
	if buf := e.makeAudioBuffer(s); buf != 0 {
		if s, ok = e.runEntry(s, "Play", au().PlayPC, []*expr.Expr{adapter, expr.Const(buf), expr.Const(256)}, res); !ok {
			return
		}
	}
	if s, ok = e.runISR(s, adapter, res); !ok {
		return
	}
	if s, ok = e.drainDPCs(s, res); !ok {
		return
	}
	if s, ok = e.runEntry(s, "Stop", au().StopPC, []*expr.Expr{adapter}, res); !ok {
		return
	}
	e.runEntry(s, "Halt", au().HaltPC, []*expr.Expr{adapter}, res)
}

func (e *Executor) runISR(s *vm.State, adapter *expr.Expr, res *ExecResult) (*vm.State, bool) {
	ks := kernel.Of(s)
	if !ks.ISRRegistered || ks.ISRPC == 0 {
		return s, true
	}
	ks.IRQL = kernel.DeviceLevel
	return e.runEntry(s, "ISR", ks.ISRPC, []*expr.Expr{adapter}, res)
}

func (e *Executor) drainDPCs(s *vm.State, res *ExecResult) (*vm.State, bool) {
	for n := 0; n < e.opts.MaxDPCs; n++ {
		ks := kernel.Of(s)
		if len(ks.PendingDPCs) == 0 {
			break
		}
		dpc := ks.PendingDPCs[0]
		ks.PendingDPCs = ks.PendingDPCs[1:]
		ks.IRQL = kernel.DispatchLevel
		ks.InDpc = true
		var ok bool
		if s, ok = e.runEntry(s, "DPC:"+dpc.Label, dpc.FuncPC, []*expr.Expr{expr.Const(dpc.Ctx)}, res); !ok {
			return s, false
		}
	}
	return s, true
}

// runEntry invokes one entry and steps it to completion. It returns the
// state the path ended on (which may be a forked successor of s) and false
// when the execution is over (crash, kill, or unresolvable entry).
func (e *Executor) runEntry(s *vm.State, name string, pc uint32, args []*expr.Expr, res *ExecResult) (*vm.State, bool) {
	fin, ok, _ := e.runEntryStatus(s, name, pc, args, res)
	return fin, ok
}

func (e *Executor) runEntryStatus(s *vm.State, name string, pc uint32, args []*expr.Expr, res *ExecResult) (*vm.State, bool, uint32) {
	if pc == 0 {
		return s, true, kernel.StatusSuccess
	}
	res.Entries = append(res.Entries, name)
	e.k.InvokeSym(s, name, pc, args...)
	start := s.ICount
	for s.Status == vm.StatusRunning {
		if s.ICount-start >= e.opts.MaxStepsPerEntry {
			s.Status = vm.StatusKilled
			return s, false, 0
		}
		e.maybeInject(s)
		next, err := e.m.Step(s)
		// A loop fault raised by OnBlock travels on the state itself.
		if err == nil && s.PendFault != nil {
			err = s.PendFault
			s.PendFault = nil
			s.Status = vm.StatusBug
		}
		if err != nil {
			e.recordCrash(s, name, err, res)
			return s, false, 0
		}
		switch len(next) {
		case 0:
			// terminal
		case 1:
			s = next[0]
		default:
			// Concrete execution cannot fork; if it ever does (a stray
			// symbolic value), follow the first child and drop the rest.
			for _, n := range next[1:] {
				n.Status = vm.StatusKilled
			}
			s = next[0]
		}
	}
	if s.Status != vm.StatusExited {
		return s, false, 0
	}
	status, ok := s.RegConcrete(isa.R0)
	if !ok {
		status = 0
	}
	// Entry-exit checks: leaks fire here, exactly as in the engine.
	if err := e.leak.CheckEntryExit(s, name, status); err != nil {
		e.recordCrash(s, name, err, res)
		return s, false, 0
	}
	// Normalize carried context between phases, as the workload does.
	ks := kernel.Of(s)
	ks.InDpc = false
	ks.IRQL = kernel.PassiveLevel
	s.Status = vm.StatusRunning
	return s, true, status
}

func (e *Executor) recordCrash(s *vm.State, entry string, err error, res *ExecResult) {
	f, ok := err.(*vm.Fault)
	if !ok {
		f = vm.Faultf("engine", s.PC, "%v", err)
	}
	site := f.PC
	textLimit := isa.ImageBase + uint32(len(e.img.Text))
	if site < isa.ImageBase || site >= textLimit {
		site = e.lastBlock
	}
	res.Crash = &Crash{
		Class:       checkers.Classify(f, s),
		RawClass:    f.Class,
		PC:          f.PC,
		Site:        site,
		Msg:         f.Msg,
		Entry:       entry,
		InInterrupt: s.InInterrupt > 0,
	}
}

// makePacket mirrors the workload generator's one-packet Send payload
// (core/workload.go makeSymbolicPacket), with feed-fed contents where the
// engine would inject symbols. The injection sites must stay in the same
// order as the engine's — the concolic bridge maps feed words to symbols
// positionally (TestHybridLoop guards the alignment end-to-end).
func (e *Executor) makePacket(s *vm.State) uint32 {
	ks := kernel.Of(s)
	const payload = 64
	addr, err := ks.HeapAlloc(8+payload, "sendpkt", "packet", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr) // kernel-owned: the driver must not free it
	data := addr + 8
	s.Mem.Write(addr, 4, expr.Const(data))
	if e.opts.Annotations {
		s.Mem.Write(addr+4, 4, e.k.FreshSymbol(s, "packet_len", expr.OriginPacket))
		for i := uint32(0); i < 16; i++ {
			s.Mem.Write(data+i, 1, e.k.FreshSymbol(s, fmt.Sprintf("packet_byte_%d", i), expr.OriginPacket))
		}
	} else {
		s.Mem.Write(addr+4, 4, expr.Const(42))
		for i := uint32(0); i < 16; i++ {
			s.Mem.Write(data+i, 1, expr.Const(uint32(0x40+i)))
		}
	}
	for i := uint32(16); i < payload; i++ {
		s.Mem.Write(data+i, 1, expr.Const(0))
	}
	return addr
}

func (e *Executor) infoArgs(s *vm.State, adapter *expr.Expr, concreteOID uint32) []*expr.Expr {
	ks := kernel.Of(s)
	buf, err := ks.HeapAlloc(64, "infobuf", "param", s.ICount, 0)
	if err != nil {
		return nil
	}
	delete(ks.Allocs, buf)
	var oid *expr.Expr
	if e.opts.Annotations {
		oid = e.k.FreshSymbol(s, "oid", expr.OriginArgument)
	} else {
		oid = expr.Const(concreteOID)
	}
	return []*expr.Expr{adapter, oid, expr.Const(buf), expr.Const(64)}
}

func (e *Executor) makeAudioBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(256, "audiobuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	if e.opts.Annotations {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, e.k.FreshSymbol(s, fmt.Sprintf("sample_%d", i), expr.OriginPacket))
		}
	} else {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, expr.Const(i*17&0xFF))
		}
	}
	return addr
}
