package fuzz

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/campaign"
)

// Entry is one admitted corpus feed with its admission metadata. It doubles
// as a wire type: workers sync admitted entries (feed + gain) to the
// campaign manager, so the tags are a stable format (wire_test.go).
type Entry struct {
	Feed *Feed `json:"feed"`
	// Gain is the number of new coverage blocks the feed discovered when it
	// was admitted — the weight for seed selection and the eviction score.
	Gain int `json:"gain"`
	// Chosen counts how often the entry seeded a mutation (energy decay).
	Chosen uint64 `json:"chosen,omitempty"`
	// AdmitTick is the corpus admission counter value when this entry was
	// admitted; recency (distance from the current tick) drives the
	// exponential energy boost.
	AdmitTick uint64 `json:"admit_tick,omitempty"`
}

// AFL-style exponential energy schedule: a feed admitted within the last
// energyWindow admissions gets its selection weight doubled once per step
// of recency (the newest entry gets gain<<energyWindow), so workers pile
// mutations onto the frontier of fresh coverage instead of re-mutating the
// long-exhausted early corpus uniformly. EnergyCap bounds the boost so one
// lucky high-gain feed cannot starve the rest of the pool.
const (
	energyWindow = 6
	// EnergyCap bounds any entry's selection weight.
	EnergyCap = 1 << 12
)

// Corpus is the shared seed pool: coverage-novelty admission, bounded size
// with lowest-value eviction, exponential-recency energy selection. Safe
// for concurrent use by the worker pool.
type Corpus struct {
	mu      sync.Mutex
	entries []*Entry
	max     int
	// tick counts admissions; entry energy decays as newer feeds arrive.
	tick uint64
}

// NewCorpus returns a corpus bounded to max entries (0 means a default cap).
func NewCorpus(max int) *Corpus {
	if max <= 0 {
		max = 256
	}
	return &Corpus{max: max}
}

// Add admits a feed that discovered gain new blocks. Feeds with no gain are
// rejected — that is the coverage-guided admission rule. When the corpus is
// full, the lowest-value entry (smallest gain, ties broken by longer feed)
// is evicted.
func (c *Corpus) Add(f *Feed, gain int) bool {
	if gain <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	c.entries = append(c.entries, &Entry{Feed: f, Gain: gain, AdmitTick: c.tick})
	if len(c.entries) > c.max {
		worst := 0
		for i, e := range c.entries {
			w := c.entries[worst]
			if e.Gain < w.Gain || (e.Gain == w.Gain && e.Feed.Len() > w.Feed.Len()) {
				worst = i
			}
		}
		c.entries = append(c.entries[:worst], c.entries[worst+1:]...)
	}
	return true
}

// Len returns the number of entries.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// energy computes an entry's selection weight at the current tick: the
// admission gain, doubled once per step of recency within the last
// energyWindow admissions (AFL-style exponential schedule), damped by how
// often the entry already seeded mutations, and capped at EnergyCap.
func (c *Corpus) energy(e *Entry) float64 {
	w := float64(e.Gain)
	if age := c.tick - e.AdmitTick; age < energyWindow {
		w *= float64(uint64(1) << (energyWindow - age))
	}
	if w > EnergyCap {
		w = EnergyCap
	}
	w /= float64(1 + e.Chosen/8)
	if w < 1 {
		w = 1
	}
	return w
}

// Energy reports the current selection weight of the i-th entry (test and
// diagnostics hook).
func (c *Corpus) Energy(i int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.energy(c.entries[i])
}

// Choose picks a seed, weighted by the exponential-recency energy
// schedule: entries whose coverage gain is recent get exponentially more
// mutation energy (capped), stale and over-chosen entries decay toward the
// uniform floor. Returns nil on an empty corpus. Randomness comes from the
// caller's deterministic source.
func (c *Corpus) Choose(rng *rand.Rand) *Feed {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 {
		return nil
	}
	total := 0.0
	weights := make([]float64, len(c.entries))
	for i, e := range c.entries {
		w := c.energy(e)
		weights[i] = w
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			c.entries[i].Chosen++
			return c.entries[i].Feed
		}
	}
	last := c.entries[len(c.entries)-1]
	last.Chosen++
	return last.Feed
}

// RandomDonor returns a uniformly random corpus feed (nil when empty) —
// the cheap splice-donor lookup for the mutation hot loop, which does not
// need Snapshot's copy and sort.
func (c *Corpus) RandomDonor(rng *rand.Rand) *Feed {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 {
		return nil
	}
	return c.entries[rng.Intn(len(c.entries))].Feed
}

// Export returns a copy of the current entries (feed pointers shared,
// metadata copied) in admission order. This is the corpus-sync export hook:
// a manager-attached worker diffs successive exports to ship only the
// entries admitted since its last sync.
func (c *Corpus) Export() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, len(c.entries))
	for i, e := range c.entries {
		out[i] = *e
	}
	return out
}

// Snapshot returns the current feeds, highest admission gain first.
func (c *Corpus) Snapshot() []*Feed {
	c.mu.Lock()
	es := append([]*Entry(nil), c.entries...)
	c.mu.Unlock()
	sort.SliceStable(es, func(i, j int) bool { return es[i].Gain > es[j].Gain })
	out := make([]*Feed, len(es))
	for i, e := range es {
		out[i] = e.Feed
	}
	return out
}

// SaveDir persists the corpus as one JSON feed file per entry.
func (c *Corpus) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, f := range c.Snapshot() {
		if err := SaveFeed(f, filepath.Join(dir, fmt.Sprintf("seed-%04d.json", i))); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every feed file in dir (missing dir is an empty result).
func LoadDir(dir string) ([]*Feed, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seed-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []*Feed
	for _, n := range names {
		f, err := LoadFeed(n)
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus file %s: %w", n, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// crashStore stores deduplicated crashes by fault site and checker class.
// The dedup authority is the campaign findings ledger, shared with the
// campaign runner so StopAtFirstBug fires on the first admitted crash.
type crashStore struct {
	findings *campaign.Findings
	mu       sync.Mutex
	byKey    map[string]*Crash
	order    []string
}

func newCrashStore(findings *campaign.Findings) *crashStore {
	return &crashStore{findings: findings, byKey: make(map[string]*Crash)}
}

// add records a crash; it reports whether the key was new. Admission goes
// through the findings ledger, so only one goroutine ever stores a given
// key.
func (cs *crashStore) add(c *Crash) bool {
	k := c.Key()
	if !cs.findings.Admit(k) {
		return false
	}
	cs.mu.Lock()
	cs.byKey[k] = c
	cs.order = append(cs.order, k)
	cs.mu.Unlock()
	return true
}

// finalize publishes triage results (the minimized feed and the
// verification verdict) under the store lock. Triage runs after add — dedup
// must happen before the minimization budget is spent — so these two fields
// mutate after publication; routing the writes through the lock keeps
// concurrent list() readers (the manager-worker report loop) race-free.
func (cs *crashStore) finalize(c *Crash, feed *Feed, reproduced bool) {
	cs.mu.Lock()
	c.Feed = feed
	c.Reproduced = reproduced
	cs.mu.Unlock()
}

// list returns the deduplicated crashes in discovery order. The returned
// structs are copies: safe to read and serialize while triage is still
// finalizing entries.
func (cs *crashStore) list() []*Crash {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]*Crash, 0, len(cs.order))
	for _, k := range cs.order {
		cp := *cs.byKey[k]
		out = append(out, &cp)
	}
	return out
}
