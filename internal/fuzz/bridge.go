package fuzz

import (
	"context"
	"encoding/binary"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
	"repro/internal/vm"
)

// The concolic bridge connects the two exploration modes in both
// directions:
//
//   - engine → fuzzer: a symbolic bug's solved input model is the concrete
//     witness of one interesting path; FromBug/FromTrace serialize it as a
//     feed, seeding the corpus with inputs the fuzzer would need luck to
//     find (solver-derived magic values, exact interrupt instants).
//   - fuzzer → engine: a high-novelty feed is a cheap, deep concrete path;
//     LiftFeed pins the engine's first symbols to the feed's word prefix so
//     symbolic execution forks outward from that path instead of from
//     scratch (the classic concolic "driller" move against path explosion).

// FromBug converts a symbolic-engine bug into a corpus feed: every symbol
// minted on the bug path contributes its solved value, in creation order —
// the same order the concrete executor consumes feed words (the executor's
// workload construction mirrors core/workload.go injection for injection;
// TestHybridLoop's race reproduction is the regression guard for that
// alignment). Values are passed through encodeWord so the executor's clamp
// reproduces the exact witness. Interrupt injections map to the fuzzer's
// IRQ schedule; annotation forks taken on the path bias the feed's fork
// stream toward the alternatives.
func FromBug(b *core.Bug) *Feed {
	f := &Feed{}
	for _, ev := range b.Trace {
		switch ev.Kind {
		case vm.EvNewSym:
			var w [4]byte
			binary.LittleEndian.PutUint32(w[:], encodeWord(ev.Name, b.Model[ev.Sym]))
			f.Data = append(f.Data, w[:]...)
		case vm.EvInterrupt:
			if len(f.IRQ) < maxIRQLen {
				f.IRQ = append(f.IRQ, ev.Seq)
			}
		case vm.EvAltFork:
			if len(f.Forks) < maxForkLen {
				f.Forks = append(f.Forks, 1)
			}
		}
	}
	return f
}

// FromTrace converts a saved executable trace into a corpus feed, using the
// trace's recorded solved inputs.
func FromTrace(t *trace.File) *Feed {
	f := &Feed{}
	for _, s := range t.Symbols {
		var w [4]byte
		// Recorded names carry a "#seq" suffix; encodeWord matches prefixes.
		binary.LittleEndian.PutUint32(w[:], encodeWord(s.Name, s.Value))
		f.Data = append(f.Data, w[:]...)
	}
	for _, r := range t.EventsOf(vm.EvInterrupt) {
		if len(f.IRQ) < maxIRQLen {
			f.IRQ = append(f.IRQ, r.Seq)
		}
	}
	for range t.EventsOf(vm.EvAltFork) {
		if len(f.Forks) < maxForkLen {
			f.Forks = append(f.Forks, 1)
		}
	}
	return f
}

// LiftFeed turns a fuzz feed into a core.Options.SymbolSeed: the first
// `words` symbols minted on each engine path are pinned to the feed's word
// prefix. words <= 0 pins half the feed (leaving the tail symbolic is what
// lets the engine fork away from the concrete path).
func LiftFeed(f *Feed, words int) func(idx uint64, name string, origin expr.Origin) (uint32, bool) {
	if words <= 0 {
		words = len(f.Data) / 8
		if words == 0 {
			words = 1
		}
	}
	data := append([]byte(nil), f.Data...)
	return func(idx uint64, name string, origin expr.Origin) (uint32, bool) {
		if idx >= uint64(words) || int(idx)*4 >= len(data) {
			return 0, false
		}
		var w [4]byte
		copy(w[:], data[idx*4:])
		return clampWord(name, origin, binary.LittleEndian.Uint32(w[:])), true
	}
}

// HybridReport is the outcome of one hybrid concolic campaign.
type HybridReport struct {
	// Symbolic is the initial engine run's report.
	Symbolic *core.Report
	// Fuzz is the fuzzing campaign's report (seeded from Symbolic's bugs).
	Fuzz *Report
	// Lifted counts fuzz feeds lifted back into symbolic boot states.
	Lifted int
	// LiftedBugs are engine bugs found only from lifted states (dedup'd
	// against the initial symbolic run).
	LiftedBugs []*core.Bug
}

// TotalBugKeys counts distinct bug/crash identities across all modes.
func (h *HybridReport) TotalBugKeys() int {
	keys := make(map[string]bool)
	for _, b := range h.Symbolic.Bugs {
		keys[b.Key()] = true
	}
	for _, b := range h.LiftedBugs {
		keys[b.Key()] = true
	}
	for _, c := range h.Fuzz.Crashes {
		keys[c.Key()] = true
	}
	return len(keys)
}

// Hybrid runs the two-way concolic loop: a symbolic engine pass whose bug
// models seed the fuzz corpus, a fuzzing campaign, then symbolic passes
// forked from the liftTop highest-gain fuzz feeds. All three share one
// coverage map, so the combined coverage-over-time series is directly
// comparable with either mode alone. ctx cancels whichever stage is in
// flight; the report covers the work completed so far.
func Hybrid(ctx context.Context, img *binimg.Image, fcfg Config, eopts core.Options, liftTop int) (*HybridReport, error) {
	fz := New(img, fcfg)

	eopts.Coverage = fz.Cov
	eng := core.NewEngine(img, eopts)
	srep, err := eng.TestDriver(ctx)
	if err != nil {
		return nil, err
	}
	for _, b := range srep.Bugs {
		fz.AddSeed(FromBug(b))
	}
	// Keep the shared series on one time axis: the fuzz fleet's instruction
	// counter continues where the symbolic pass ended. (Lifted engine runs
	// below report their own small local times; the recorder's monotonic
	// clamp pins those onto the tail of the axis.)
	fz.steps.Store(srep.Instructions)

	frep, runErr := fz.Run(ctx)
	if runErr != nil && frep == nil {
		return nil, runErr
	}
	// A post-campaign failure (corpus persistence) must not discard the
	// completed report; it is returned alongside the full result.

	h := &HybridReport{Symbolic: srep, Fuzz: frep}
	seen := make(map[string]bool)
	for _, b := range srep.Bugs {
		seen[b.Key()] = true
	}
	// Lift candidates: highest-gain corpus feeds first. Under a shared
	// coverage map the symbolic pass may have pre-covered everything the
	// fuzzer touched (empty corpus); crash feeds are then the interesting
	// concrete paths to fork from.
	candidates := fz.Corpus().Snapshot()
	for _, c := range frep.Crashes {
		candidates = append(candidates, c.Feed)
	}
	for _, feed := range candidates {
		if h.Lifted >= liftTop {
			break
		}
		h.Lifted++
		lopts := eopts // Coverage already points at the shared fz.Cov
		lopts.SymbolSeed = LiftFeed(feed, 0)
		leng := core.NewEngine(img, lopts)
		lrep, err := leng.TestDriver(ctx)
		if err != nil {
			continue
		}
		for _, b := range lrep.Bugs {
			if !seen[b.Key()] {
				seen[b.Key()] = true
				h.LiftedBugs = append(h.LiftedBugs, b)
			}
		}
	}
	return h, runErr
}
