package fuzz

import (
	"sort"

	"repro/internal/binimg"
	"repro/internal/isa"
)

// Dictionary holds constants mined from a driver image: the instruction
// immediates the driver compares its inputs against. A concrete fuzzer
// reaches a guard like
//
//	movi r12, 0x00010101   ; OID_GEN_SUPPORTED_LIST
//	beq  r1, r12, q_supported
//
// only by guessing the exact 32-bit constant — a 1-in-2^32 event for random
// mutation. Mining the immediates from the decoded text (the same closed
// binary DDT already decodes; no source needed) and splicing them into feeds
// at word-aligned offsets turns those guards into one-mutation events, the
// standard syzkaller/AFL dictionary lever applied to DDT's feed encoding.
type Dictionary struct {
	// Words are all mined immediates, deduplicated and ascending.
	Words []uint32
	// OIDs is the OID-shaped subset of Words (see OIDShaped) — NDIS object
	// identifiers get extra splice weight because the workload's
	// QueryInformation/SetInformation phases consume an OID word directly.
	OIDs []uint32
}

// OIDShaped reports whether v has the shape of an NDIS object identifier:
// the general-characteristics (0x0001xxxx) or medium-specific (0x0101xxxx,
// 0x0102xxxx) OID families the simulated kernel and the corpus drivers use.
func OIDShaped(v uint32) bool {
	switch v & 0xFFFF0000 {
	case 0x00010000, 0x01010000, 0x01020000:
		return true
	}
	return false
}

// MineDictionary scans the image's decoded instructions for data-carrying
// immediates. Only value immediates are collected — MOVI constants and
// ALU-immediate operands — never branch targets or load/store offsets,
// which are addresses, not input-space constants. Also filtered out:
// immediates that are pointers into the image itself (globals, function
// addresses), stack-pointer arithmetic (frame offsets, not inputs), and
// constants the mutator's interesting-value table already carries.
func MineDictionary(img *binimg.Image) *Dictionary {
	boring := make(map[uint32]bool, len(interesting32))
	for _, v := range interesting32 {
		boring[v] = true
	}
	seen := make(map[uint32]bool)
	limit := img.LimitVA()
	for off := 0; off+isa.InstrSize <= len(img.Text); off += isa.InstrSize {
		in, err := isa.Decode(img.Text[off:])
		if err != nil {
			continue
		}
		switch in.Op {
		case isa.MOVI:
		case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.MULI:
			if in.Rd == isa.SP || in.Rs1 == isa.SP {
				continue // frame/stack offset arithmetic
			}
		default:
			continue
		}
		v := in.Imm
		if v <= 8 || boring[v] {
			continue // the interesting-value table already covers these
		}
		if v >= isa.ImageBase && v < limit {
			continue // image pointer, not an input constant
		}
		seen[v] = true
	}
	d := &Dictionary{}
	for v := range seen {
		d.Words = append(d.Words, v)
		if OIDShaped(v) {
			d.OIDs = append(d.OIDs, v)
		}
	}
	sort.Slice(d.Words, func(i, j int) bool { return d.Words[i] < d.Words[j] })
	sort.Slice(d.OIDs, func(i, j int) bool { return d.OIDs[i] < d.OIDs[j] })
	return d
}

// Len returns the number of mined words.
func (d *Dictionary) Len() int { return len(d.Words) }

// Contains reports whether v was mined (test helper).
func (d *Dictionary) Contains(v uint32) bool {
	i := sort.Search(len(d.Words), func(i int) bool { return d.Words[i] >= v })
	return i < len(d.Words) && d.Words[i] == v
}
