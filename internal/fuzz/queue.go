package fuzz

import "repro/internal/workq"

// Queue is the sharded work-stealing triage queue: freshly admitted corpus
// entries are pushed to a worker's shard for focused follow-up mutation; a
// worker whose shard runs dry steals from its peers before falling back to
// corpus-weighted selection. The implementation lives in internal/workq
// (the symbolic frontier keeps its own heuristic scheduler; see the workq
// package doc).
type Queue struct {
	q *workq.Queue[*Feed]
}

// NewQueue returns a queue with one shard per worker.
func NewQueue(workers int) *Queue {
	return &Queue{q: workq.New[*Feed](workers)}
}

// Push enqueues a feed on the given worker's shard.
func (q *Queue) Push(worker int, f *Feed) { q.q.Push(worker, f) }

// Pop takes from the worker's own shard first (LIFO: freshest coverage
// first), then steals the oldest item from the other shards (FIFO keeps
// stolen work fair). Returns nil when every shard is empty.
func (q *Queue) Pop(worker int) *Feed {
	f, _ := q.q.Pop(worker)
	return f
}

// Len returns the total queued items across shards.
func (q *Queue) Len() int { return q.q.Len() }
