package fuzz

import "sync"

// Queue is the sharded work-stealing triage queue (after syzkaller's
// courier queues): freshly admitted corpus entries are pushed to a worker's
// shard for focused follow-up mutation; a worker whose shard runs dry
// steals from its peers before falling back to corpus-weighted selection.
type Queue struct {
	shards []queueShard
}

type queueShard struct {
	mu    sync.Mutex
	items []*Feed
}

// NewQueue returns a queue with one shard per worker.
func NewQueue(workers int) *Queue {
	if workers < 1 {
		workers = 1
	}
	return &Queue{shards: make([]queueShard, workers)}
}

// Push enqueues a feed on the given worker's shard.
func (q *Queue) Push(worker int, f *Feed) {
	sh := &q.shards[worker%len(q.shards)]
	sh.mu.Lock()
	sh.items = append(sh.items, f)
	sh.mu.Unlock()
}

// Pop takes from the worker's own shard first (LIFO: freshest coverage
// first), then steals the oldest item from the other shards (FIFO keeps
// stolen work fair). Returns nil when every shard is empty.
func (q *Queue) Pop(worker int) *Feed {
	n := len(q.shards)
	own := worker % n
	if f := q.shards[own].popTail(); f != nil {
		return f
	}
	for i := 1; i < n; i++ {
		if f := q.shards[(own+i)%n].popHead(); f != nil {
			return f
		}
	}
	return nil
}

// Len returns the total queued items across shards.
func (q *Queue) Len() int {
	total := 0
	for i := range q.shards {
		q.shards[i].mu.Lock()
		total += len(q.shards[i].items)
		q.shards[i].mu.Unlock()
	}
	return total
}

func (sh *queueShard) popTail() *Feed {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.items) == 0 {
		return nil
	}
	f := sh.items[len(sh.items)-1]
	sh.items = sh.items[:len(sh.items)-1]
	return f
}

func (sh *queueShard) popHead() *Feed {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.items) == 0 {
		return nil
	}
	f := sh.items[0]
	sh.items = sh.items[1:]
	return f
}
