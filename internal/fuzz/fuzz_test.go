package fuzz

import (
	"context"
	"path/filepath"
	"repro/internal/campaign"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/expr"
)

func TestFeedRoundTrip(t *testing.T) {
	f := &Feed{
		Data:  []byte{1, 2, 3, 0xFF, 0x80, 0},
		Forks: []byte{1, 0, 1},
		IRQ:   []uint64{120, 4096},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFeed(b)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, g)
	}
	if f.Equal(&Feed{Data: f.Data}) {
		t.Fatal("Equal ignored forks/irq")
	}
}

func TestFeedReaderExhaustion(t *testing.T) {
	var r feedReader
	r.reset(&Feed{Data: []byte{0x11, 0x22}})
	if w := r.word(); w != 0x2211 {
		t.Fatalf("partial word = %#x, want 0x2211", w)
	}
	if w := r.word(); w != 0 {
		t.Fatalf("exhausted word = %#x, want 0", w)
	}
	if r.forkBit() {
		t.Fatal("exhausted fork stream must answer the primary outcome")
	}
	if _, ok := r.nextIRQ(); ok {
		t.Fatal("no IRQ scheduled")
	}
}

// TestMutatorDeterministic: two mutators with the same seed produce the
// same stream of mutants — the property every replayable campaign rests on.
func TestMutatorDeterministic(t *testing.T) {
	base := &Feed{Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Forks: []byte{0}, IRQ: []uint64{100}}
	donor := &Feed{Data: []byte{9, 9, 9, 9}}
	a, b := NewMutator(42), NewMutator(42)
	for i := 0; i < 200; i++ {
		fa := a.Mutate(base, donor)
		fb := b.Mutate(base, donor)
		if !fa.Equal(fb) {
			t.Fatalf("iteration %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	c := NewMutator(43)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Mutate(base, donor).Equal(c.Mutate(base, donor)) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical mutation streams")
	}
}

func TestMutatorGenerateDeterministic(t *testing.T) {
	a, b := NewMutator(7), NewMutator(7)
	for i := 0; i < 50; i++ {
		if !a.Generate().Equal(b.Generate()) {
			t.Fatalf("Generate diverged at %d", i)
		}
	}
}

func TestCorpusAdmissionEviction(t *testing.T) {
	c := NewCorpus(4)
	if c.Add(&Feed{Data: []byte{1}}, 0) {
		t.Fatal("zero-gain feed admitted")
	}
	for i := 0; i < 4; i++ {
		if !c.Add(&Feed{Data: make([]byte, i+1)}, i+2) {
			t.Fatalf("feed %d rejected", i)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	// Admitting a 5th evicts the lowest-gain entry (gain 2).
	c.Add(&Feed{Data: make([]byte, 40)}, 10)
	if c.Len() != 4 {
		t.Fatalf("len after eviction = %d, want 4", c.Len())
	}
	for _, f := range c.Snapshot() {
		if len(f.Data) == 1 {
			t.Fatal("lowest-gain entry survived eviction")
		}
	}
	// Ties evict the longer feed.
	c2 := NewCorpus(2)
	c2.Add(&Feed{Data: make([]byte, 100)}, 3)
	c2.Add(&Feed{Data: make([]byte, 2)}, 3)
	c2.Add(&Feed{Data: make([]byte, 10)}, 3)
	for _, f := range c2.Snapshot() {
		if len(f.Data) == 100 {
			t.Fatal("longer feed survived tie eviction")
		}
	}
}

func TestCorpusChooseWeighted(t *testing.T) {
	c := NewCorpus(8)
	c.Add(&Feed{Data: []byte{1}}, 1)
	c.Add(&Feed{Data: []byte{2}}, 50)
	rng := NewMutator(3).rng
	hi := 0
	for i := 0; i < 500; i++ {
		if f := c.Choose(rng); len(f.Data) == 1 && f.Data[0] == 2 {
			hi++
		}
	}
	if hi < 300 {
		t.Fatalf("high-gain entry chosen only %d/500 times", hi)
	}
	if NewCorpus(2).Choose(rng) != nil {
		t.Fatal("empty corpus must yield nil")
	}
}

// TestCorpusEnergySchedule: an entry with RECENT coverage gain must draw
// exponentially more mutation energy than an equal-gain entry buried under
// later admissions, and the boost must respect the cap.
func TestCorpusEnergySchedule(t *testing.T) {
	c := NewCorpus(64)
	c.Add(&Feed{Data: []byte{0}}, 4) // index 0: will go stale
	// Bury entry 0 beyond the energy window.
	for i := 1; i <= energyWindow; i++ {
		c.Add(&Feed{Data: []byte{byte(i)}}, 4)
	}
	fresh := c.Len() - 1 // the newest admission, same gain as entry 0

	stale, hot := c.Energy(0), c.Energy(fresh)
	if stale != 4 {
		t.Fatalf("stale energy = %v, want plain gain 4", stale)
	}
	want := float64(4 * (1 << energyWindow))
	if want > EnergyCap {
		want = EnergyCap
	}
	if hot != want {
		t.Fatalf("fresh energy = %v, want %v (gain<<window)", hot, want)
	}

	// Selection must follow the schedule: the fresh entry wins far more
	// often than the equally-gained stale one.
	rng := NewMutator(7).rng
	freshFeed := byte(energyWindow)
	var freshN, staleN int
	for i := 0; i < 2000; i++ {
		switch c.Choose(rng).Data[0] {
		case freshFeed:
			freshN++
		case 0:
			staleN++
		}
	}
	// The preference erodes as the fresh entry's Chosen count damps its
	// energy (by design), so assert a strong but not initial-ratio margin.
	if freshN < 4*staleN {
		t.Fatalf("fresh chosen %d vs stale %d; want exponential preference", freshN, staleN)
	}
}

// TestCorpusEnergyCap: a huge admission gain must clamp to EnergyCap.
func TestCorpusEnergyCap(t *testing.T) {
	c := NewCorpus(8)
	c.Add(&Feed{Data: []byte{1}}, 1_000_000)
	if got := c.Energy(0); got != EnergyCap {
		t.Fatalf("energy = %v, want cap %v", got, float64(EnergyCap))
	}
}

// TestCorpusEnergyDecay: repeatedly choosing an entry damps its energy.
func TestCorpusEnergyDecay(t *testing.T) {
	c := NewCorpus(8)
	c.Add(&Feed{Data: []byte{1}}, 8)
	before := c.Energy(0)
	rng := NewMutator(1).rng
	for i := 0; i < 64; i++ {
		c.Choose(rng)
	}
	after := c.Energy(0)
	if after >= before {
		t.Fatalf("energy did not decay with use: %v -> %v", before, after)
	}
}

func TestCrashDedup(t *testing.T) {
	cs := newCrashStore(campaign.NewFindings())
	a := &Crash{Class: "segmentation fault", Site: 0x100100, PC: 0x0}
	b := &Crash{Class: "segmentation fault", Site: 0x100100, PC: 0xdeadbeef} // other wild target, same site
	c := &Crash{Class: "memory corruption", Site: 0x100100}
	d := &Crash{Class: "segmentation fault", Site: 0x100200}
	if !cs.add(a) || cs.add(b) {
		t.Fatal("same class+site must dedup")
	}
	if !cs.add(c) || !cs.add(d) {
		t.Fatal("distinct class or site must not dedup")
	}
	if got := len(cs.list()); got != 3 {
		t.Fatalf("crashes = %d, want 3", got)
	}
}

func TestQueueWorkStealing(t *testing.T) {
	q := NewQueue(3)
	q.Push(0, &Feed{Data: []byte{0}})
	q.Push(0, &Feed{Data: []byte{1}})
	q.Push(1, &Feed{Data: []byte{2}})
	// Own shard pops LIFO.
	if f := q.Pop(0); f.Data[0] != 1 {
		t.Fatalf("own pop = %d, want 1 (LIFO)", f.Data[0])
	}
	// Worker 2's shard is empty: it steals from a peer.
	if f := q.Pop(2); f == nil {
		t.Fatal("steal failed")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
	q.Pop(1)
	if q.Pop(0) != nil {
		t.Fatal("drained queue must yield nil")
	}
}

// TestExecutorDeterministic: the same feed always takes the same path —
// the property that makes crash feeds replayable evidence.
func TestExecutorDeterministic(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	mu := NewMutator(11)
	exec1 := NewExecutor(img, nil, DefaultOptions())
	exec2 := NewExecutor(img, nil, DefaultOptions())
	for i := 0; i < 30; i++ {
		f := mu.Generate()
		a, b := exec1.Run(f), exec2.Run(f)
		if a.Steps != b.Steps || a.Blocks != b.Blocks ||
			(a.Crash == nil) != (b.Crash == nil) {
			t.Fatalf("feed %d diverged: %+v vs %+v", i, a, b)
		}
		if a.Crash != nil && a.Crash.Key() != b.Crash.Key() {
			t.Fatalf("feed %d crash diverged: %s vs %s", i, a.Crash.Key(), b.Crash.Key())
		}
		// Re-running on the same executor must reproduce too (reset check).
		c := exec1.Run(f)
		if c.Steps != a.Steps {
			t.Fatalf("feed %d not reproducible on executor reuse", i)
		}
	}
}

// TestFuzzFindsRTL8029Bugs is the end-to-end check: fuzzing the buggy
// RTL8029 within a fixed exec budget finds at least one planted Table 2
// bug class, deduplicated, with a replayable feed.
func TestFuzzFindsRTL8029Bugs(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := corpus.Get("rtl8029")
	if !ok {
		t.Fatal("rtl8029 spec missing")
	}
	expected := make(map[string]bool)
	for _, c := range spec.ExpectedBugs {
		expected[c] = true
	}

	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.MaxExecs = 5_000
	cfg.CorpusDir = filepath.Join(t.TempDir(), "corpus")
	f := New(img, cfg)
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Execs == 0 || rep.ExecsPerSec == 0 {
		t.Fatalf("bad exec accounting: %+v", rep)
	}
	hits := 0
	for class := range rep.CountByClass() {
		if expected[class] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("no expected bug class found in %d execs:\n%s", rep.Execs, rep)
	}
	keys := make(map[string]bool)
	for _, c := range rep.Crashes {
		if keys[c.Key()] {
			t.Fatalf("crash key %s reported twice (dedup broken)", c.Key())
		}
		keys[c.Key()] = true
		if c.Feed == nil {
			t.Fatalf("crash %s has no feed", c.Key())
		}
		if !c.Reproduced {
			t.Errorf("crash %s feed did not replay", c.Key())
		}
		// Independent replay on a fresh executor.
		res := NewExecutor(img, nil, DefaultOptions()).Run(c.Feed)
		if res.Crash == nil || res.Crash.Key() != c.Key() {
			t.Errorf("crash %s: fresh replay did not reproduce", c.Key())
		}
	}
	// The persisted corpus must load back.
	loaded, err := LoadDir(cfg.CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorpusSize > 0 && len(loaded) != rep.CorpusSize {
		t.Fatalf("persisted %d corpus feeds, report says %d", len(loaded), rep.CorpusSize)
	}
}

// TestFuzzFixedVariantClean is the zero-false-positive property: the
// corrected driver build must survive the same fuzzing budget without a
// single crash.
func TestFuzzFixedVariantClean(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.MaxExecs = 3_000
	rep, err := New(img, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crashes) != 0 {
		t.Fatalf("fixed variant crashed:\n%s", rep)
	}
}

// TestBridgeFromBug: a symbolic engine bug converts to a feed whose words
// are the solved inputs in creation order.
func TestBridgeFromBug(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(img, core.DefaultOptions())
	rep, err := eng.TestDriver(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Fatal("symbolic run found no bugs to bridge")
	}
	for _, b := range rep.Bugs {
		feed := FromBug(b)
		if len(b.Symbols) > 0 && len(feed.Data) != 4*len(b.Symbols) {
			t.Fatalf("bug %s: feed %d bytes for %d symbols", b.Key(), len(feed.Data), len(b.Symbols))
		}
		if b.InInterrupt && len(feed.IRQ) == 0 {
			t.Fatalf("bug %s: interrupt bug bridged without IRQ schedule", b.Key())
		}
	}
}

// TestBridgeLiftFeed: lifting pins exactly the prefix and respects the
// executor's clamp rules.
func TestBridgeLiftFeed(t *testing.T) {
	f := &Feed{Data: []byte{
		0xFF, 0xFF, 0xFF, 0xFF, // word 0
		0x05, 0x00, 0x00, 0x00, // word 1
	}}
	seed := LiftFeed(f, 2)
	v, ok := seed(0, "registry_value", expr.OriginRegistry)
	if !ok || v&0x80000000 != 0 {
		t.Fatalf("registry clamp missing: %#x ok=%v", v, ok)
	}
	v, ok = seed(0, "packet_len", expr.OriginPacket)
	if !ok || v < 14 || v > 64 {
		t.Fatalf("packet_len clamp missing: %d", v)
	}
	if _, ok := seed(2, "x", expr.OriginHardware); ok {
		t.Fatal("index past the prefix must not pin")
	}
}

// TestClampEncodeRoundTrip: encodeWord must invert clampWord on every
// value a satisfying engine model can assign, so bridged feeds replay the
// exact symbolic witness.
func TestClampEncodeRoundTrip(t *testing.T) {
	for v := uint32(14); v <= 64; v++ {
		got := clampWord("packet_len", expr.OriginPacket, encodeWord("packet_len#3", v))
		if got != v {
			t.Fatalf("packet_len %d round-tripped to %d", v, got)
		}
	}
	// Registry values in a model satisfy symb >= 0 (signed), on which the
	// clamp is the identity.
	for _, v := range []uint32{0, 1, 8, 0x7FFFFFFF} {
		if got := clampWord("registry_value", expr.OriginRegistry, encodeWord("registry_value#1", v)); got != v {
			t.Fatalf("registry %#x round-tripped to %#x", v, got)
		}
	}
}

// TestHybridLoop exercises the full two-way bridge on the buggy RTL8029.
func TestHybridLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid loop is a multi-second run")
	}
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.MaxExecs = 3_000
	h, err := Hybrid(context.Background(), img, cfg, core.DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Symbolic.Bugs) != 5 {
		t.Fatalf("symbolic pass found %d bugs, want 5", len(h.Symbolic.Bugs))
	}
	// The engine-seeded corpus must let the fuzzer reproduce the race —
	// the class plain fuzzing needs the exact interrupt instant for.
	if h.Fuzz.CountByClass()["race condition"] == 0 {
		t.Errorf("bridged seeds did not reproduce the race:\n%s", h.Fuzz)
	}
	if h.TotalBugKeys() < len(h.Symbolic.Bugs) {
		t.Fatalf("hybrid lost bug identities: %d < %d", h.TotalBugKeys(), len(h.Symbolic.Bugs))
	}
}
