package fuzz

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exerciser"
	"repro/internal/vm"
)

// eventSig renders one trace event as a comparable signature covering every
// field the concrete executor can produce (symbolic-only fields — Sym,
// Cond — never appear under a feed SymbolPolicy).
func eventSig(ev vm.Event) string {
	val := ""
	if ev.Val != nil {
		val = ev.Val.String()
	}
	return fmt.Sprintf("%v seq=%d pc=%#x addr=%#x sz=%d w=%v taken=%v forked=%v name=%q val=%s",
		ev.Kind, ev.Seq, ev.PC, ev.Addr, ev.Size, ev.Write, ev.Taken, ev.Forked, ev.Name, val)
}

func traceSigs(t *vm.TraceNode) []string {
	if t == nil {
		return nil
	}
	evs := t.Path()
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = eventSig(ev)
	}
	return out
}

// compareExec asserts two executions of the same feed are bit-identical in
// everything the fuzzer observes: steps, coverage, crash identity, entry
// log, consumed cursors, and the full trace event sequence.
func compareExec(t *testing.T, tag string, a, b *ExecResult) {
	t.Helper()
	if a.Steps != b.Steps {
		t.Fatalf("%s: steps %d vs %d", tag, a.Steps, b.Steps)
	}
	if a.Blocks != b.Blocks || a.NewBlocks != b.NewBlocks {
		t.Fatalf("%s: coverage %d/%d vs %d/%d", tag, a.Blocks, a.NewBlocks, b.Blocks, b.NewBlocks)
	}
	if a.ConsumedData != b.ConsumedData || a.ConsumedForks != b.ConsumedForks || a.ConsumedIRQ != b.ConsumedIRQ {
		t.Fatalf("%s: consumed (%d,%d,%d) vs (%d,%d,%d)", tag,
			a.ConsumedData, a.ConsumedForks, a.ConsumedIRQ,
			b.ConsumedData, b.ConsumedForks, b.ConsumedIRQ)
	}
	if strings.Join(a.Entries, ",") != strings.Join(b.Entries, ",") {
		t.Fatalf("%s: entries %v vs %v", tag, a.Entries, b.Entries)
	}
	if (a.Crash == nil) != (b.Crash == nil) {
		t.Fatalf("%s: crash %v vs %v", tag, a.Crash, b.Crash)
	}
	if a.Crash != nil && (a.Crash.Key() != b.Crash.Key() || a.Crash.PC != b.Crash.PC ||
		a.Crash.Entry != b.Crash.Entry || a.Crash.InInterrupt != b.Crash.InInterrupt) {
		t.Fatalf("%s: crash identity %+v vs %+v", tag, a.Crash, b.Crash)
	}
	as, bs := traceSigs(a.Trace), traceSigs(b.Trace)
	if len(as) != len(bs) {
		t.Fatalf("%s: trace length %d vs %d", tag, len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("%s: trace event %d differs:\n  %s\n  %s", tag, i, as[i], bs[i])
		}
	}
}

// eagerOptions is DefaultOptions with eager tracing: this suite compares
// full trace chains execution by execution, which the lazy-trace default
// would leave nil on both sides (making the comparison vacuous). The
// lazy-trace determinism suite (lazytrace_test.go) covers the lazy side.
func eagerOptions() Options {
	o := DefaultOptions()
	o.LazyTrace = false
	return o
}

// persistFeeds builds a feed schedule that exercises the snapshot cache
// hard: repeats (exact prefix hits), tail-extensions of earlier feeds
// (warm resumes past the boot), boot-prefix mutants (snapshot misses and
// re-records), generated feeds, and interrupt schedules.
func persistFeeds(mu *Mutator, n int) []*Feed {
	feeds := []*Feed{
		{Data: make([]byte, 64)},   // the quiet-hardware baseline seed
		{Data: make([]byte, 64)},   // exact repeat: must hit the snapshot
		{},                         // empty feed: all-zero effective stream
		{Data: make([]byte, 256)},  // longer zero tail, same effective boot
		{Data: []byte{1, 0, 0, 0}}, // boot-prefix mutation
		{Data: make([]byte, 64), IRQ: []uint64{0}},       // IRQ mid-boot: must bypass
		{Data: make([]byte, 64), IRQ: []uint64{1 << 40}}, // IRQ far beyond: may resume
		{Data: make([]byte, 64), Forks: []byte{1, 1}},    // alternative API outcomes
	}
	base := &Feed{Data: make([]byte, 96)}
	for i := 0; i < n; i++ {
		feeds = append(feeds, mu.Mutate(base, nil), mu.Generate())
	}
	return feeds
}

// TestPersistentExecBitIdentical is the determinism suite's core property:
// for every corpus driver, a persistent-mode execution — whether it runs
// cold, resumes from a snapshot, or returns a memoized boot — is
// bit-identical to a cold-start execution of the same feed, in coverage,
// crash identity, and the full trace event sequence. Both executors run
// the same feed sequence against their own coverage maps, so the global
// novelty history matches execution by execution.
func TestPersistentExecBitIdentical(t *testing.T) {
	for _, name := range corpus.Names() {
		t.Run(name, func(t *testing.T) {
			img, err := corpus.Build(name, corpus.Buggy)
			if err != nil {
				t.Fatal(err)
			}
			warmOpts := eagerOptions()
			warmOpts.Persist = true
			warm := NewExecutor(img, exerciser.NewCoverage(len(binimg.StaticBlocks(img))), warmOpts)
			cold := NewExecutor(img, exerciser.NewCoverage(len(binimg.StaticBlocks(img))), eagerOptions())

			mu := NewMutator(5)
			warmHits := 0
			for i, f := range persistFeeds(mu, 40) {
				a := warm.Run(f)
				b := cold.Run(f)
				if a.Warm {
					warmHits++
					if a.SkippedSteps == 0 {
						t.Fatalf("feed %d: warm execution skipped nothing", i)
					}
				}
				compareExec(t, fmt.Sprintf("feed %d", i), a, b)
			}
			if warmHits == 0 {
				t.Fatal("no execution ever resumed from a snapshot")
			}
			t.Logf("%s: %d/%d executions warm", name, warmHits, len(persistFeeds(NewMutator(5), 40)))
		})
	}
}

// TestSnapshotInvalidation covers the edge cases that must bypass or
// rebuild a snapshot instead of replaying a stale one.
func TestSnapshotInvalidation(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	opts := eagerOptions()
	opts.Persist = true

	t.Run("mutated boot prefix", func(t *testing.T) {
		e := NewExecutor(img, nil, opts)
		zero := &Feed{Data: make([]byte, 64)}
		e.Run(zero)
		r2 := e.Run(zero)
		if !r2.Warm {
			t.Fatal("identical feed did not hit the snapshot")
		}
		// Flip a byte of the consumed boot prefix: the Initialize-stage
		// snapshot must not be reused. The mutant may still resume from the
		// DriverEntry-stage snapshot — DriverEntry consumes no feed words on
		// this driver, so every feed shares that prefix — which is why the
		// precise assertion is on how much was skipped, plus exact equality
		// with a fresh cold executor.
		mutant := zero.Clone()
		mutant.Data[0] ^= 0xFF
		got := e.Run(mutant)
		if got.SkippedSteps >= r2.SkippedSteps {
			t.Fatalf("boot-prefix mutant skipped %d steps, the stale deep snapshot's %d",
				got.SkippedSteps, r2.SkippedSteps)
		}
		want := NewExecutor(img, nil, eagerOptions()).Run(mutant)
		compareExec(t, "boot-prefix mutant", got, want)
		if got.Crash == nil {
			t.Fatal("expected this mutant to crash in Initialize (registry corruption)")
		}
		// Crashing boots are never snapshotted or memoized — triage replays
		// must exercise the live path — so the repeat skips no more than the
		// first run did, and reproduces the identical crash.
		r := e.Run(mutant)
		if r.SkippedSteps != got.SkippedSteps {
			t.Fatalf("crashing boot was memoized: skip %d vs %d", r.SkippedSteps, got.SkippedSteps)
		}
		compareExec(t, "crashing mutant repeat", r, want)
	})

	t.Run("clean boot failure is memoized and rebuilt", func(t *testing.T) {
		// Find a boot-prefix mutant that makes Initialize fail cleanly (no
		// crash, workload ends at the Initialize gate). On amd-pcnet clean
		// failure paths are reachable by flipping early feed bytes; on
		// rtl8029 every word-0 flip trips the planted registry bug, which
		// the crashing-boot case above covers.
		pcnet, err := corpus.Build("amd-pcnet", corpus.Buggy)
		if err != nil {
			t.Fatal(err)
		}
		probe := NewExecutor(pcnet, nil, eagerOptions())
		mu := NewMutator(17)
		var mutant *Feed
		var wantRes *ExecResult
		for i := 0; i < 500; i++ {
			f := mu.Generate()
			f.IRQ = nil // keep the memo decision purely data-driven
			res := probe.Run(f)
			if res.Crash == nil && len(res.Entries) == 2 {
				mutant, wantRes = f, res
				break
			}
		}
		if mutant == nil {
			t.Fatal("no clean Initialize failure found in 500 generated feeds")
		}
		e := NewExecutor(pcnet, nil, opts)
		e.Run(&Feed{Data: make([]byte, 64)}) // prime the zero-prefix snapshots
		first := e.Run(mutant)
		compareExec(t, "clean-failure mutant", first, wantRes)
		// The failed boot was memoized under the mutant's own prefix: the
		// repeat skips the entire execution.
		r := e.Run(mutant)
		if !r.Warm || r.SkippedSteps != r.Steps {
			t.Fatalf("clean boot failure not fully memoized: warm=%v skip=%d steps=%d",
				r.Warm, r.SkippedSteps, r.Steps)
		}
		compareExec(t, "memoized repeat", r, wantRes)
	})

	t.Run("irq during boot bypasses", func(t *testing.T) {
		e := NewExecutor(img, nil, opts)
		zero := &Feed{Data: make([]byte, 64)}
		e.Run(zero)
		deep := e.Run(zero)
		if !deep.Warm {
			t.Fatal("identical feed did not hit the snapshot")
		}
		// An interrupt trigger below the Initialize segment's last
		// injection-eligible instant could have fired mid-Initialize; the
		// Initialize-stage snapshot must be bypassed even though the data
		// prefix matches. Resuming from the DriverEntry-stage snapshot
		// remains sound — no ISR is registered during DriverEntry, so no
		// trigger can fire there — which is exactly what the exact
		// eligibility bound permits.
		early := zero.Clone()
		early.IRQ = []uint64{1}
		got := e.Run(early)
		if got.SkippedSteps >= deep.SkippedSteps {
			t.Fatalf("early-IRQ feed reused the Initialize snapshot: skip %d >= %d",
				got.SkippedSteps, deep.SkippedSteps)
		}
		want := NewExecutor(img, nil, eagerOptions()).Run(early)
		compareExec(t, "early IRQ", got, want)
	})

	t.Run("bridge seeds replay identically", func(t *testing.T) {
		// FromBug feeds carry exact solver-derived interrupt instants (often
		// mid-boot) and magic data words; each must bypass or rebuild
		// snapshots so the persistent executor reproduces the same fault the
		// cold executor does.
		eng := core.NewEngine(img, core.DefaultOptions())
		srep, err := eng.TestDriver(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(srep.Bugs) == 0 {
			t.Fatal("symbolic pass found no bugs to bridge")
		}
		warm := NewExecutor(img, nil, opts)
		warm.Run(&Feed{Data: make([]byte, 64)}) // prime a snapshot
		cold := NewExecutor(img, nil, eagerOptions())
		for i, b := range srep.Bugs {
			feed := FromBug(b)
			compareExec(t, fmt.Sprintf("bridge feed %d", i), warm.Run(feed), cold.Run(feed))
		}
	})

	t.Run("no stale novelty under a shared coverage map", func(t *testing.T) {
		// core.Options.Coverage lets a symbolic engine share the fuzzer's
		// coverage map mid-run. A snapshot must never replay its recorded
		// admission novelty: once the recording run marked the boot blocks,
		// every later execution — warm from the snapshot, or cold from a
		// fresh executor sharing the map — must report zero novelty for them.
		cov := exerciser.NewCoverage(len(binimg.StaticBlocks(img)))
		e := NewExecutor(img, cov, opts)
		zero := &Feed{Data: make([]byte, 64)}
		first := e.Run(zero)
		if first.NewBlocks == 0 {
			t.Fatal("recording run found no novelty")
		}
		again := e.Run(zero)
		if !again.Warm || again.NewBlocks != 0 {
			t.Fatalf("warm replay reported stale novelty: warm=%v new=%d", again.Warm, again.NewBlocks)
		}
		fresh := NewExecutor(img, cov, eagerOptions()).Run(zero)
		compareExec(t, "shared coverage", again, fresh)
	})
}

// fuzzCampaign runs one deterministic single-worker campaign.
func fuzzCampaign(t *testing.T, img *binimg.Image, persist, dict bool, execs uint64) *Report {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.MaxExecs = execs
	cfg.Persist = persist
	cfg.Dict = dict
	rep, err := New(img, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFuzzE2EPersistBugSetEquality is the end-to-end half of the
// determinism suite: a full single-worker campaign is bit-identical with
// persistent mode on and off — same crash set, same minimized reproducers,
// same corpus, same coverage, same simulated-instruction total — on both
// evaluation drivers, and the fixed variants stay clean under -persist.
func TestFuzzE2EPersistBugSetEquality(t *testing.T) {
	for _, name := range []string{"rtl8029", "amd-pcnet"} {
		t.Run(name, func(t *testing.T) {
			img, err := corpus.Build(name, corpus.Buggy)
			if err != nil {
				t.Fatal(err)
			}
			off := fuzzCampaign(t, img, false, false, 4_000)
			on := fuzzCampaign(t, img, true, false, 4_000)

			offKeys, onKeys := crashKeys(off), crashKeys(on)
			if !reflect.DeepEqual(offKeys, onKeys) {
				t.Fatalf("bug sets differ:\n  cold: %v\n  persist: %v", offKeys, onKeys)
			}
			if len(onKeys) == 0 {
				t.Fatal("campaign found no crashes — equality is vacuous")
			}
			for k, f := range off.CrashFeeds {
				if !f.Equal(on.CrashFeeds[k]) {
					t.Fatalf("minimized reproducer for %s differs", k)
				}
			}
			if off.Instructions != on.Instructions {
				t.Fatalf("simulated instructions %d vs %d", off.Instructions, on.Instructions)
			}
			if off.BlocksCovered != on.BlocksCovered || off.CorpusSize != on.CorpusSize {
				t.Fatalf("coverage/corpus: %d/%d vs %d/%d",
					off.BlocksCovered, off.CorpusSize, on.BlocksCovered, on.CorpusSize)
			}
			if !reflect.DeepEqual(off.CoverageSeries, on.CoverageSeries) {
				t.Fatal("coverage series diverged")
			}
			if on.WarmExecs == 0 {
				t.Fatal("persistent campaign never went warm")
			}
			if on.SkippedInstructions == 0 {
				t.Fatal("persistent campaign skipped no boot instructions")
			}
			t.Logf("%s: %d crashes, %d/%d warm execs, %d of %d instructions skipped",
				name, len(onKeys), on.WarmExecs, on.Execs, on.SkippedInstructions, on.Instructions)

			fixed, err := corpus.Build(name, corpus.Fixed)
			if err != nil {
				t.Fatal(err)
			}
			clean := fuzzCampaign(t, fixed, true, true, 1_500)
			if len(clean.Crashes) != 0 {
				t.Fatalf("fixed variant crashed under -persist -dict:\n%s", clean)
			}
		})
	}
}

func crashKeys(r *Report) []string {
	out := make([]string, 0, len(r.Crashes))
	for _, c := range r.Crashes {
		out = append(out, c.Key())
	}
	return out
}

// TestSnapshotCache covers one fabric shard's cache mechanics in
// isolation: effective (zero-extended) prefix matching, fork-parity
// matching, deepest-match preference, and LRU eviction. (Sharded lookup
// and concurrency are covered in fabric_test.go.)
func TestSnapshotCache(t *testing.T) {
	mk := func(stage snapStage, words int, data []byte, steps uint64) *snapshot {
		return &snapshot{stage: stage, words: words, data: data, steps: steps, eligBound: 100}
	}
	c := &snapShard{}
	shallow := mk(stageBooted, 1, []byte{1, 2, 3, 4}, 50)
	deep := mk(stageInitialized, 2, []byte{1, 2, 3, 4, 0, 0, 0, 0}, 500)
	c.add(shallow)
	c.add(deep)

	// A feed matching both prefixes resumes from the deepest snapshot.
	if got := c.best(&Feed{Data: []byte{1, 2, 3, 4}}, nil); got != deep {
		t.Fatalf("best = %+v, want the deeper snapshot", got)
	}
	// Zero extension: the deep snapshot consumed two words, the second all
	// zero; a feed with a nonzero fifth byte only matches the shallow one.
	if got := c.best(&Feed{Data: []byte{1, 2, 3, 4, 9}}, nil); got != shallow {
		t.Fatalf("zero-extension match failed: %+v", got)
	}
	if c.best(&Feed{Data: []byte{9}}, nil) != nil {
		t.Fatal("mismatching prefix matched")
	}

	// Fork parity: bytes 0x02 and 0x00 encode the same (primary) decision.
	fk := mk(stageBooted, 0, nil, 10)
	fk.forkBits = 2
	fk.forks = []byte{1, 0}
	c.add(fk)
	if c.best(&Feed{Forks: []byte{3, 2}}, nil) != fk {
		t.Fatal("fork parity match failed")
	}
	if c.best(&Feed{Forks: []byte{0, 0}}, nil) == fk {
		t.Fatal("fork decision mismatch matched")
	}

	// IRQ bound: a next trigger below the segment's last injection-eligible
	// instant bypasses; at or past it, the snapshot is usable.
	if c.best(&Feed{Data: []byte{1, 2, 3, 4}, IRQ: []uint64{99}}, nil) != nil {
		t.Fatal("mid-boot IRQ trigger matched a snapshot")
	}
	if c.best(&Feed{Data: []byte{1, 2, 3, 4}, IRQ: []uint64{100}}, nil) != deep {
		t.Fatal("post-boot IRQ trigger should match")
	}

	// Recording an identical prefix at the same stage replaces the entry.
	c.add(mk(stageBooted, 1, []byte{1, 2, 3, 4}, 50))
	n := 0
	for _, sn := range c.snaps {
		if sn.stage == stageBooted && sn.words == 1 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("duplicate prefix kept %d entries", n)
	}

	// Capacity: the least recently used entry is evicted.
	c2 := &snapShard{}
	for i := 0; i < snapCacheMax+8; i++ {
		c2.add(mk(stageTerminal, 1, []byte{byte(i), 0xAA, 0, 0}, 1))
	}
	if len(c2.snaps) != snapCacheMax {
		t.Fatalf("cache size %d, want %d", len(c2.snaps), snapCacheMax)
	}
	if c2.best(&Feed{Data: []byte{0, 0xAA, 0, 0}}, nil) != nil {
		t.Fatal("evicted snapshot still matched")
	}
}
