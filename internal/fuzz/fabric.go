package fuzz

import (
	"sync"
	"sync/atomic"
)

// SnapFabric is the process-wide persistent-mode snapshot store: one
// bounded, sharded, mutex-per-shard fabric shared by every worker of a
// campaign, replacing the per-executor caches that made N workers cold-boot
// the same prefix N times. A fabric serves exactly one driver image — the
// fuzzer builds one per campaign, so the driver is part of the fabric's
// identity and entries are keyed inside it by effective stream prefix (and
// guarded by eligBound, see snapshot.matches).
//
// Sharding exploits the matching rule: a snapshot with words >= 1 can only
// match feeds whose first effective data word (zero-extended, exactly as
// matches compares) equals its own, so those snapshots hash by that word
// into one of the data shards and a lookup touches a single shard lock.
// Snapshots that consumed no data words can match any feed and live in the
// wild shard, which every lookup also scans. Each shard keeps snapCacheMax
// entries in most-recently-used order, so the fabric stays bounded at
// (shards+1)*snapCacheMax process-wide.
//
// Concurrency: snapshots are immutable once published (the frozen state is
// never stepped; ForkFrozen gives every resume a private COW overlay and
// trace node), so sharing them across executors is safe — the shard mutex
// orders publication, and the owner tag lets the hit accounting split
// same-worker hits from cross-worker (shared) hits.
type SnapFabric struct {
	nextID     atomic.Uint64
	hits       atomic.Uint64 // served by a snapshot this executor recorded
	sharedHits atomic.Uint64 // served by another executor's snapshot
	misses     atomic.Uint64 // no valid snapshot; execution ran cold

	shards [snapFabricShards]snapShard
	wild   snapShard
}

const snapFabricShards = 16

type snapShard struct {
	mu    sync.Mutex
	snaps []*snapshot
}

// NewSnapFabric returns an empty fabric.
func NewSnapFabric() *SnapFabric {
	return &SnapFabric{}
}

// register hands out a unique executor identity used to attribute hits.
func (f *SnapFabric) register() uint64 {
	return f.nextID.Add(1)
}

// Stats returns the lookup counters: hits served by the asking executor's
// own snapshots, hits served by another executor's (the sharing win), and
// misses (cold executions).
func (f *SnapFabric) Stats() (hits, sharedHits, misses uint64) {
	return f.hits.Load(), f.sharedHits.Load(), f.misses.Load()
}

// shardIndex hashes the first effective data word of a stream — zero-
// extended, mirroring snapshot.matches — into a data shard.
func shardIndex(data []byte) int {
	var w [4]byte
	copy(w[:], data)
	h := uint32(w[0]) | uint32(w[1])<<8 | uint32(w[2])<<16 | uint32(w[3])<<24
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return int(h % snapFabricShards)
}

// best returns the deepest snapshot valid for feed, tagging the lookup in
// the hit/shared-hit/miss counters against the asking executor's identity.
func (f *SnapFabric) best(feed *Feed, execID uint64) *snapshot {
	sn := f.shards[shardIndex(feed.Data)].best(feed, nil)
	sn = f.wild.best(feed, sn)
	switch {
	case sn == nil:
		f.misses.Add(1)
	case sn.owner == execID:
		f.hits.Add(1)
	default:
		f.sharedHits.Add(1)
	}
	return sn
}

// add publishes a snapshot, deduplicating identical prefixes. Same-prefix
// snapshots always land in the same shard: equal prefixes share their first
// effective word (or both consumed none).
func (f *SnapFabric) add(sn *snapshot) {
	sh := &f.wild
	if sn.words > 0 {
		sh = &f.shards[shardIndex(sn.data)]
	}
	sh.add(sn)
}

// best scans one shard for the deepest match, moves it to the recency
// front, and returns it if deeper than cur.
func (sh *snapShard) best(feed *Feed, cur *snapshot) *snapshot {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bi := -1
	for i, sn := range sh.snaps {
		if (bi < 0 || sn.steps > sh.snaps[bi].steps) && sn.matches(feed) {
			bi = i
		}
	}
	if bi < 0 {
		return cur
	}
	sn := sh.snaps[bi]
	copy(sh.snaps[1:bi+1], sh.snaps[:bi])
	sh.snaps[0] = sn
	if cur == nil || sn.steps > cur.steps {
		return sn
	}
	return cur
}

// add records a snapshot at the shard's recency front, dropping an
// identical-prefix entry and evicting beyond capacity.
func (sh *snapShard) add(sn *snapshot) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, o := range sh.snaps {
		if o.samePrefix(sn) {
			sh.snaps = append(sh.snaps[:i], sh.snaps[i+1:]...)
			break
		}
	}
	sh.snaps = append(sh.snaps, nil)
	copy(sh.snaps[1:], sh.snaps)
	sh.snaps[0] = sn
	if len(sh.snaps) > snapCacheMax {
		sh.snaps = sh.snaps[:snapCacheMax]
	}
}
