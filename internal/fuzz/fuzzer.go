package fuzz

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/binimg"
	"repro/internal/campaign"
	"repro/internal/exerciser"
)

// Config configures one fuzzing campaign. The campaign envelope (workers,
// exec/time budgets, seed, stop conditions, shared coverage) is the
// embedded campaign.Options — the same envelope core.Options and
// ddt.Config embed — and the remaining fields are the fuzzer's own knobs.
//
// Envelope semantics for the fuzzer: Workers is the parallel fuzzing
// goroutine count; MaxExecs bounds total executions (0 with Duration also
// 0 applies a default exec budget); Duration bounds wall-clock time; Seed
// derives the per-worker random streams (Seed+workerID — a single-worker
// run with a fixed seed is fully reproducible); StopAtFirstBug ends the
// campaign at the first deduplicated crash; Coverage, when non-nil,
// replaces the fuzzer's own recorder. Pipeline is accepted for envelope
// uniformity and ignored (the fuzzer has no phase barriers to dissolve).
type Config struct {
	campaign.Options
	// CorpusDir, when set, is loaded as initial seeds and receives the
	// final corpus plus every crash reproducer.
	CorpusDir string
	// CorpusMax bounds the in-memory corpus (0: default).
	CorpusMax int
	// Seeds are additional initial feeds (e.g. from the concolic bridge).
	Seeds []*Feed
	// MinimizeBudget bounds the per-crash feed-minimization executions.
	MinimizeBudget int
	// Persist enables persistent-mode executors: boot phases (DriverEntry +
	// Initialize) run once per boot prefix and later executions resume from
	// the snapshot (Options.Persist; see snapshot.go). Results are
	// bit-identical to cold-start execution — only the wall clock changes.
	// All workers share one snapshot fabric, so the fleet cold-boots each
	// boot prefix once, not once per worker.
	Persist bool
	// PrivateSnapshots reverts persistent mode to per-worker snapshot
	// stores (the pre-fabric behaviour): every worker cold-boots each
	// prefix itself. An escape hatch and the baseline side of
	// BenchmarkFuzzSharedSnapshotFabric; results are bit-identical either
	// way.
	PrivateSnapshots bool
	// Dict mines a dictionary of instruction immediates (OID constants,
	// magic values) from the driver image and enables the mutator's
	// dictionary-splice operators.
	Dict bool
	// Exec configures the per-worker executors.
	Exec Options
}

// DefaultConfig returns a small deterministic campaign configuration.
func DefaultConfig() Config {
	return Config{
		Options: campaign.Options{
			Workers:  4,
			MaxExecs: 20_000,
			Seed:     1,
		},
		MinimizeBudget: 48,
		Exec:           DefaultOptions(),
	}
}

// Report summarizes a fuzzing campaign.
type Report struct {
	Driver  string `json:"driver"`
	Workers int    `json:"workers"`
	// Execs counts completed workload executions (minimization and crash
	// verification re-executions excluded).
	Execs uint64 `json:"execs"`
	// TriageExecs counts the extra executions spent verifying and
	// minimizing crashes.
	TriageExecs uint64 `json:"triage_execs"`
	// LazyTraceReexecs counts the traced re-executions spent materializing
	// full trace chains under Options.LazyTrace (crash verification runs
	// traced, so each deduplicated crash costs exactly one). A subset of
	// TriageExecs; zero when tracing is eager.
	LazyTraceReexecs uint64 `json:"lazy_trace_reexecs,omitempty"`
	// Instructions is total simulated instructions across all workers. With
	// persistent mode on, boot instructions a snapshot resume logically
	// replayed without re-executing are included, so the simulated-time axis
	// (and the coverage series on it) is identical to a cold-start campaign;
	// SkippedInstructions reports how many of them never actually ran.
	Instructions uint64 `json:"instructions"`
	// Persistent-mode split (Config.Persist): campaign executions that ran
	// the full boot (cold) versus resumed from a snapshot or memoized boot
	// (warm). The per-sec figures are PER-WORKER throughput — executions
	// divided by the worker time spent in that mode, i.e. the inverse mean
	// execution duration — so cold and warm are directly comparable to
	// each other at any worker count; multiply by Workers to compare
	// against the fleet-wide ExecsPerSec. Triage re-executions are not
	// included in the split.
	ColdExecs           uint64  `json:"cold_execs"`
	WarmExecs           uint64  `json:"warm_execs"`
	ColdExecsPerSec     float64 `json:"cold_execs_per_sec_per_worker"`
	WarmExecsPerSec     float64 `json:"warm_execs_per_sec_per_worker"`
	SkippedInstructions uint64  `json:"skipped_instructions"`
	// Snapshot-fabric lookup split (Config.Persist): executions served by a
	// snapshot the same worker recorded (hits), by another worker's
	// snapshot (shared hits — the fabric's contribution over private
	// caches), and cold lookups that found nothing (misses).
	SnapHits       uint64 `json:"snap_hits,omitempty"`
	SnapSharedHits uint64 `json:"snap_shared_hits,omitempty"`
	SnapMisses     uint64 `json:"snap_misses,omitempty"`
	// DictWords is the mined dictionary size (Config.Dict).
	DictWords int `json:"dict_words,omitempty"`
	// Crashes are the deduplicated crashes in discovery order.
	Crashes []*Crash `json:"crashes"`
	// CrashFeeds maps crash keys to their minimized reproducer feeds.
	CrashFeeds map[string]*Feed `json:"crash_feeds"`
	// CorpusSize is the final corpus entry count.
	CorpusSize int `json:"corpus_size"`
	// BlocksCovered / BlocksStatic give the coverage ratio.
	BlocksCovered int `json:"blocks_covered"`
	BlocksStatic  int `json:"blocks_static"`
	// CoverageSeries is coverage over simulated time (total instructions).
	CoverageSeries []exerciser.CoveragePoint `json:"coverage_series"`
	// Exec records the executor options the campaign ran with; replaying a
	// crash feed requires the same options (annotation sites consume feed
	// words, so a mismatch shifts the whole stream).
	Exec Options `json:"exec_options"`
	// Elapsed is wall-clock campaign time; ExecsPerSec = Execs/Elapsed.
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
}

// CountByClass tallies crashes per Table 2 category.
func (r *Report) CountByClass() map[string]int {
	out := make(map[string]int)
	for _, c := range r.Crashes {
		out[c.Class]++
	}
	return out
}

// String renders the report as console output.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fuzz report for driver %q\n", r.Driver)
	fmt.Fprintf(&sb, "  execs: %d (+%d triage) in %v (%.0f execs/sec, %d workers)\n",
		r.Execs, r.TriageExecs, r.Elapsed.Round(time.Millisecond), r.ExecsPerSec, r.Workers)
	if r.Exec.Persist {
		fmt.Fprintf(&sb, "  persistent: %d cold (%.0f/sec/worker) / %d warm (%.0f/sec/worker), %d boot instructions skipped\n",
			r.ColdExecs, r.ColdExecsPerSec, r.WarmExecs, r.WarmExecsPerSec, r.SkippedInstructions)
		fmt.Fprintf(&sb, "  snapshot fabric: %d hits / %d shared hits / %d misses\n",
			r.SnapHits, r.SnapSharedHits, r.SnapMisses)
	}
	if r.DictWords > 0 {
		fmt.Fprintf(&sb, "  dictionary: %d mined immediates\n", r.DictWords)
	}
	fmt.Fprintf(&sb, "  coverage: %d/%d basic blocks, corpus: %d feeds\n",
		r.BlocksCovered, r.BlocksStatic, r.CorpusSize)
	if len(r.Crashes) == 0 {
		sb.WriteString("  no crashes found\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %d deduplicated crash(es):\n", len(r.Crashes))
	classes := r.CountByClass()
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		fmt.Fprintf(&sb, "    %-20s %d\n", c, classes[c])
	}
	for i, c := range r.Crashes {
		repro := "replayable feed verified"
		if !c.Reproduced {
			repro = "NOT reproduced on replay"
		}
		fmt.Fprintf(&sb, "  crash %d: %s  [%s]\n", i+1, c, repro)
	}
	return sb.String()
}

// Fuzzer is one coverage-guided fuzzing campaign bound to a driver image.
type Fuzzer struct {
	img *binimg.Image
	cfg Config

	// Cov is the shared, thread-safe coverage map. It is exported so the
	// hybrid loop can hand the same recorder to a symbolic engine.
	Cov *exerciser.Coverage

	corpus   *Corpus
	crashes  *crashStore
	queue    *Queue
	dict     *Dictionary
	findings *campaign.Findings

	// runner is the active campaign runner, published before workers start
	// so Stop can reach a Run already in flight.
	runner atomic.Pointer[campaign.Runner[*Feed]]
	// stopped remembers a Stop that arrived before Run built the runner.
	stopped atomic.Bool

	execsDone    atomic.Uint64
	triageExecs  atomic.Uint64
	lazyReexecs  atomic.Uint64
	steps        atomic.Uint64
	coldExecs    atomic.Uint64
	warmExecs    atomic.Uint64
	coldNS       atomic.Uint64
	warmNS       atomic.Uint64
	skippedSteps atomic.Uint64
	injectShard  atomic.Uint64
	seedCount    int

	// fabric is the campaign-wide snapshot store every worker executor
	// shares (nil unless Persist; nil with PrivateSnapshots, where each
	// executor builds its own).
	fabric *SnapFabric
}

// New prepares a campaign. The coverage denominator comes from the image's
// static block discovery, exactly as in the symbolic engine.
func New(img *binimg.Image, cfg Config) *Fuzzer {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxExecs == 0 && cfg.Duration == 0 {
		cfg.MaxExecs = DefaultConfig().MaxExecs
	}
	if cfg.MinimizeBudget == 0 {
		cfg.MinimizeBudget = DefaultConfig().MinimizeBudget
	}
	// Per-field executor defaults: a caller-built Options struct keeps every
	// field it set explicitly (Annotations false and Registry overrides
	// included).
	def := DefaultOptions()
	if cfg.Exec.MaxStepsPerEntry == 0 {
		cfg.Exec.MaxStepsPerEntry = def.MaxStepsPerEntry
	}
	if cfg.Exec.MaxInterrupts == 0 {
		cfg.Exec.MaxInterrupts = def.MaxInterrupts
	}
	if cfg.Exec.LoopThreshold == 0 {
		cfg.Exec.LoopThreshold = def.LoopThreshold
	}
	if cfg.Exec.MaxDPCs == 0 {
		cfg.Exec.MaxDPCs = def.MaxDPCs
	}
	if cfg.Persist {
		cfg.Exec.Persist = true
	}
	var fabric *SnapFabric
	if cfg.Exec.Persist && !cfg.PrivateSnapshots {
		if cfg.Exec.Fabric == nil {
			cfg.Exec.Fabric = NewSnapFabric()
		}
		fabric = cfg.Exec.Fabric
	}
	findings := campaign.NewFindings()
	f := &Fuzzer{
		img:      img,
		cfg:      cfg,
		Cov:      exerciser.NewCoverage(len(binimg.StaticBlocks(img))),
		corpus:   NewCorpus(cfg.CorpusMax),
		crashes:  newCrashStore(findings),
		queue:    NewQueue(cfg.Workers),
		findings: findings,
		fabric:   fabric,
	}
	if cfg.Coverage != nil {
		f.Cov = cfg.Coverage
	}
	if cfg.Dict {
		f.dict = MineDictionary(img)
	}
	return f
}

// Corpus exposes the campaign's corpus (the hybrid loop lifts its
// highest-gain feeds into symbolic boot states).
func (f *Fuzzer) Corpus() *Corpus { return f.corpus }

// AddSeed queues a feed for execution before the campaign starts (round-
// robin across worker shards). Not safe to call once Run began.
func (f *Fuzzer) AddSeed(feed *Feed) {
	f.queue.Push(f.seedCount, feed)
	f.seedCount++
}

// InjectSeeds queues feeds into the running campaign (round-robin across
// worker shards). Safe for concurrent use while Run is in flight — this is
// how a manager-attached worker folds fleet corpus deltas into its own
// search without restarting the campaign.
func (f *Fuzzer) InjectSeeds(feeds []*Feed) {
	for _, feed := range feeds {
		shard := int(f.injectShard.Add(1))
		f.queue.Push(shard, feed)
	}
}

// Stop asks the campaign to wind down: workers finish their in-flight
// execution and exit, and Run returns the report of the work done so far.
// Safe to call from any goroutine (signal handlers, RPC loops) and
// idempotent.
//
// Deprecated: cancel the context passed to Run instead. Both paths share
// the same quiescence contract — results of executions still in flight at
// cancellation are not admitted, so the report is frozen when Run returns.
func (f *Fuzzer) Stop() {
	f.stopped.Store(true)
	if r := f.runner.Load(); r != nil {
		r.Stop()
	}
}

// Crashes returns the deduplicated crashes found so far, in discovery
// order. Safe to call while the campaign runs — the periodic manager
// report reads it mid-flight.
func (f *Fuzzer) Crashes() []*Crash { return f.crashes.list() }

// Stats reports live campaign progress: completed executions and total
// simulated instructions. Safe to call while the campaign runs.
func (f *Fuzzer) Stats() (execs, instructions uint64) {
	return f.execsDone.Load(), f.steps.Load()
}

// Run executes the campaign over a campaign.Runner and returns its
// report. ctx cancels the campaign mid-run with the same quiescence
// contract as Stop: in-flight executions finish but their results are not
// admitted, so corpus, crashes, and coverage are frozen when Run returns.
func (f *Fuzzer) Run(ctx context.Context) (*Report, error) {
	start := time.Now()

	// Initial seeds: explicit, persisted corpus, and the all-zero feed
	// (the deterministic "quiet hardware" baseline path).
	seeds := append([]*Feed(nil), f.cfg.Seeds...)
	if f.cfg.CorpusDir != "" {
		loaded, err := LoadDir(f.cfg.CorpusDir)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, loaded...)
	}
	seeds = append(seeds, &Feed{Data: make([]byte, 64)})
	for i, s := range seeds {
		f.queue.Push(i, s)
	}

	// Per-worker executors and mutators, allocated up front: worker w's
	// random stream is Seed+w regardless of scheduling.
	execs := make([]*Executor, f.cfg.Workers)
	mus := make([]*Mutator, f.cfg.Workers)
	for w := range execs {
		ex := NewExecutor(f.img, f.Cov, f.cfg.Exec)
		ex.TimeBase = f.steps.Load
		execs[w] = ex
		mu := NewMutator(f.cfg.Seed + int64(w))
		mu.Dict = f.dict
		mus[w] = mu
	}

	var r *campaign.Runner[*Feed]
	r = campaign.NewRunner(
		campaign.Options{
			Workers:        f.cfg.Workers,
			MaxExecs:       f.cfg.MaxExecs,
			Duration:       f.cfg.Duration,
			StopAtFirstBug: f.cfg.StopAtFirstBug,
		},
		fuzzFrontier{f},
		func(w int, feed *Feed) { f.execOne(r, execs[w], mus[w], w, feed) },
	)
	r.BindFindings(f.findings)
	f.runner.Store(r)
	if f.stopped.Load() {
		// A Stop that raced ahead of Run: wind down immediately.
		r.Stop()
	}
	r.Run(ctx)

	elapsed := time.Since(start)
	rep := &Report{
		Driver:              f.img.Name,
		Workers:             f.cfg.Workers,
		Execs:               f.execsDone.Load(),
		TriageExecs:         f.triageExecs.Load(),
		LazyTraceReexecs:    f.lazyReexecs.Load(),
		Instructions:        f.steps.Load(),
		ColdExecs:           f.coldExecs.Load(),
		WarmExecs:           f.warmExecs.Load(),
		SkippedInstructions: f.skippedSteps.Load(),
		Crashes:             f.crashes.list(),
		CrashFeeds:          make(map[string]*Feed),
		CorpusSize:          f.corpus.Len(),
		BlocksCovered:       f.Cov.Blocks(),
		BlocksStatic:        f.Cov.TotalStatic,
		CoverageSeries:      f.Cov.Series(),
		Exec:                f.cfg.Exec,
		Elapsed:             elapsed,
	}
	for _, c := range rep.Crashes {
		rep.CrashFeeds[c.Key()] = c.Feed
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.ExecsPerSec = float64(rep.Execs) / sec
	}
	if ns := f.coldNS.Load(); ns > 0 {
		rep.ColdExecsPerSec = float64(rep.ColdExecs) / (float64(ns) / 1e9)
	}
	if ns := f.warmNS.Load(); ns > 0 {
		rep.WarmExecsPerSec = float64(rep.WarmExecs) / (float64(ns) / 1e9)
	}
	if f.fabric != nil {
		rep.SnapHits, rep.SnapSharedHits, rep.SnapMisses = f.fabric.Stats()
	}
	if f.dict != nil {
		rep.DictWords = f.dict.Len()
	}
	if f.cfg.CorpusDir != "" {
		if err := f.corpus.SaveDir(f.cfg.CorpusDir); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// fuzzFrontier is the fuzzer's campaign.Frontier: the triage queue first
// (fresh seeds and neighbors of fresh coverage); a nil item tells the
// executor to synthesize a feed itself (corpus mutation or generation),
// outside the coordinator lock so mutation stays parallel. The frontier
// never drains — the campaign ends on a budget, cancellation, or Stop.
type fuzzFrontier struct{ f *Fuzzer }

// Next pops the worker's triage shard (stealing when empty); nil means
// "synthesize".
func (q fuzzFrontier) Next(w int) (*Feed, campaign.Verdict) {
	return q.f.queue.Pop(w), campaign.Dispatch
}

// Retire is a no-op: execOne does its own result accounting.
func (q fuzzFrontier) Retire(w int, feed *Feed) {}

// Idle is unreachable: Next always dispatches.
func (q fuzzFrontier) Idle(w int) bool { return true }

// execOne runs one campaign execution: synthesize the feed if the
// frontier handed none, execute, and admit the results — unless the
// campaign was canceled while the execution was in flight (the quiescence
// contract: post-cancel results are dropped, not admitted).
func (f *Fuzzer) execOne(r *campaign.Runner[*Feed], exec *Executor, mu *Mutator, worker int, feed *Feed) {
	if feed == nil {
		if base := f.corpus.Choose(mu.rng); base != nil {
			feed = mu.Mutate(base, f.corpus.RandomDonor(mu.rng))
		} else {
			feed = mu.Generate()
		}
	}

	persist := f.cfg.Exec.Persist
	var t0 time.Time
	if persist {
		t0 = time.Now()
	}
	res := exec.Run(feed)
	if persist {
		d := uint64(time.Since(t0))
		if res.Warm {
			f.warmExecs.Add(1)
			f.warmNS.Add(d)
			f.skippedSteps.Add(res.SkippedSteps)
		} else {
			f.coldExecs.Add(1)
			f.coldNS.Add(d)
		}
	}
	f.execsDone.Add(1)
	f.steps.Add(res.Steps)

	if r.Canceled() {
		return
	}
	if res.Crash != nil {
		f.triageCrash(exec, mu, worker, feed, res)
		return
	}
	if res.NewBlocks > 0 {
		admitted := trimFeed(feed, res)
		if f.corpus.Add(admitted, res.NewBlocks) {
			// Focused follow-up: queue close mutants of the novel feed
			// on this worker's shard (peers steal when idle).
			for i := 0; i < 3; i++ {
				f.queue.Push(worker, mu.Mutate(admitted, nil))
			}
		}
	}
}

// triageCrash verifies, deduplicates, minimizes, and records one crash.
func (f *Fuzzer) triageCrash(exec *Executor, mu *Mutator, worker int, feed *Feed, res *ExecResult) {
	c := res.Crash
	c.Exec = f.execsDone.Load()
	c.Feed = trimFeed(feed, res)

	// Crashing feeds that discovered coverage are corpus material either
	// way: without admission, no corpus entry could ever cover the path to
	// the crash and mutation could not explore around it.
	if res.NewBlocks > 0 {
		f.corpus.Add(c.Feed, res.NewBlocks)
	}
	// Dedup before spending triage budget.
	if !f.crashes.add(c) {
		return
	}

	minFeed := f.minimize(exec, c)
	// Verification: the minimized feed must deterministically reproduce the
	// same fault site and class. finalize publishes both under the store
	// lock, so concurrent Crashes() readers never see a half-triaged entry.
	// The verification runs traced: under lazy tracing this is the one
	// place a crash's full trace chain is rematerialized (by exact cold
	// re-execution), at no extra execution cost — the verification had to
	// run anyway.
	ver := exec.RunTraced(minFeed)
	f.triageExecs.Add(1)
	if f.cfg.Exec.LazyTrace {
		f.lazyReexecs.Add(1)
	}
	f.crashes.finalize(c, minFeed, ver.Crash != nil && ver.Crash.Key() == c.Key())

	if f.cfg.CorpusDir != "" {
		dir := filepath.Join(f.cfg.CorpusDir, "crashes")
		if err := os.MkdirAll(dir, 0o755); err == nil {
			name := strings.NewReplacer("@", "-", " ", "-", "/", "-").Replace(c.Key())
			_ = SaveFeed(minFeed, filepath.Join(dir, name+".json"))
		}
	}
}

// minimize shrinks a crash feed while it still reproduces the same crash
// key: repeated data-halving, then dropping fork decisions and interrupt
// triggers, bounded by the configured execution budget.
func (f *Fuzzer) minimize(exec *Executor, c *Crash) *Feed {
	budget := f.cfg.MinimizeBudget
	cur := c.Feed
	try := func(cand *Feed) bool {
		if budget <= 0 {
			return false
		}
		budget--
		r := exec.Run(cand)
		f.triageExecs.Add(1)
		if r.Crash != nil && r.Crash.Key() == c.Key() {
			cur = trimFeed(cand, r)
			return true
		}
		return false
	}
	// Halve the data stream while the crash survives.
	for len(cur.Data) > 4 && budget > 0 {
		cand := cur.Clone()
		cand.Data = cand.Data[:len(cand.Data)/2]
		if !try(cand) {
			break
		}
	}
	// Drop fork decisions back to the primary outcome, last first.
	for i := len(cur.Forks) - 1; i >= 0 && budget > 0; i-- {
		if i >= len(cur.Forks) {
			continue
		}
		cand := cur.Clone()
		cand.Forks = cand.Forks[:i]
		try(cand)
	}
	// Drop interrupt triggers.
	for i := len(cur.IRQ) - 1; i >= 0 && budget > 0; i-- {
		if i >= len(cur.IRQ) {
			continue
		}
		cand := cur.Clone()
		cand.IRQ = append(cand.IRQ[:i:i], cand.IRQ[i+1:]...)
		try(cand)
	}
	return cur
}

// trimFeed cuts a feed to the prefix the execution actually consumed —
// free, exact minimization for corpus entries.
func trimFeed(f *Feed, res *ExecResult) *Feed {
	t := f.Clone()
	if res.ConsumedData < len(t.Data) {
		t.Data = t.Data[:res.ConsumedData]
	}
	if res.ConsumedForks < len(t.Forks) {
		t.Forks = t.Forks[:res.ConsumedForks]
	}
	if res.ConsumedIRQ < len(t.IRQ) {
		t.IRQ = t.IRQ[:res.ConsumedIRQ]
	}
	return t
}
