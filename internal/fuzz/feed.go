// Package fuzz implements a coverage-guided concolic fuzzing subsystem on
// top of DDT's virtual machine and simulated kernel.
//
// DDT's selective symbolic execution (package core) is exhaustive per path
// but pays for a constraint solver and forks at every symbolic branch; path
// explosion is the paper's own scalability ceiling. This package runs the
// same driver images and the same workload phases fully concretely: every
// would-be symbolic injection point — device register reads, registry
// values, packet bytes, entry arguments, allocation-failure decisions,
// interrupt arrival times — is answered from a replayable byte Feed. One
// execution explores one path at native interpreter speed, and a
// syzkaller-style loop (mutation, coverage-novelty corpus admission, crash
// triage and dedup, parallel workers with a work-stealing queue) searches
// the feed space.
//
// The two modes meet in a concolic bridge (bridge.go): solved inputs from
// symbolic bug traces seed the fuzz corpus, and high-novelty fuzz feeds are
// lifted back into symbolic boot states — the engine pins its first symbols
// to the feed prefix and forks outward from there.
package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Feed is one replayable concrete input: everything outside the driver's
// control that the fuzzer decides. Executing the same feed against the same
// image is deterministic, so a feed attached to a crash report is the
// crash's reproducer.
type Feed struct {
	// Data answers value injections in consumption order: device MMIO/port
	// register reads and symbolic-injection sites (registry values, packet
	// bytes, OIDs, ...) each consume the next little-endian word. An
	// exhausted stream answers zero, so every feed is total.
	Data []byte `json:"data"`
	// Forks answers annotation fork decisions (alternative API outcomes,
	// e.g. allocation failure) one byte per decision: an odd byte takes the
	// alternative. Exhausted means the primary outcome.
	Forks []byte `json:"forks,omitempty"`
	// IRQ lists absolute instruction counts at which to inject a device
	// interrupt (ascending; injected only once the driver registered an
	// ISR). This is the fuzzer's handle on interrupt-timing races.
	IRQ []uint64 `json:"irq,omitempty"`
}

// Clone deep-copies the feed.
func (f *Feed) Clone() *Feed {
	return &Feed{
		Data:  append([]byte(nil), f.Data...),
		Forks: append([]byte(nil), f.Forks...),
		IRQ:   append([]uint64(nil), f.IRQ...),
	}
}

// Len returns the total decision payload in bytes (corpus accounting:
// shorter feeds are preferred at equal coverage).
func (f *Feed) Len() int { return len(f.Data) + len(f.Forks) + 8*len(f.IRQ) }

// Equal reports feed identity (used by tests and dedup).
func (f *Feed) Equal(o *Feed) bool {
	if len(f.IRQ) != len(o.IRQ) {
		return false
	}
	for i := range f.IRQ {
		if f.IRQ[i] != o.IRQ[i] {
			return false
		}
	}
	return bytes.Equal(f.Data, o.Data) && bytes.Equal(f.Forks, o.Forks)
}

// Marshal serializes the feed as JSON (corpus-directory format).
func (f *Feed) Marshal() ([]byte, error) { return json.Marshal(f) }

// UnmarshalFeed parses a serialized feed.
func UnmarshalFeed(b []byte) (*Feed, error) {
	var f Feed
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("fuzz: bad feed: %w", err)
	}
	return &f, nil
}

// SaveFeed writes a feed to a file.
func SaveFeed(f *Feed, path string) error {
	b, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadFeed reads a feed from a file.
func LoadFeed(path string) (*Feed, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalFeed(b)
}

// feedReader is the per-execution cursor over an immutable feed.
type feedReader struct {
	feed *Feed
	pos  int // next byte of Data
	fork int // next byte of Forks
	irq  int // next entry of IRQ

	// words and forkBits count SEMANTIC consumption: word() calls and fork
	// decisions made, including reads past the end of a stream (which answer
	// zero without advancing the byte cursors). The byte cursors alone cannot
	// distinguish "read five words of a 4-byte feed" from "read one", and the
	// persistent-mode snapshot needs the semantic counts to compare and
	// restore boot prefixes exactly (see snapshot.go).
	words    int
	forkBits int
}

func (r *feedReader) reset(f *Feed) { *r = feedReader{feed: f} }

// clampCursors maps semantic consumption counts onto a concrete feed's
// byte cursors: the data cursor stops at the stream end (reads past it
// answered zero without advancing), the fork cursor likewise. This is THE
// definition of where a cold execution's cursors land after the given
// consumption — snapshot recording, memo serving, and resume all go
// through it so they cannot drift apart.
func clampCursors(f *Feed, words, forkBits int) (dataN, forkN int) {
	dataN = 4 * words
	if dataN > len(f.Data) {
		dataN = len(f.Data)
	}
	forkN = forkBits
	if forkN > len(f.Forks) {
		forkN = len(f.Forks)
	}
	return dataN, forkN
}

// resumeAt positions the reader over f as if words/forkBits/irqs had
// already been consumed — the recorded boot-prefix cursors of a snapshot.
// Valid only for feeds whose effective prefix matches the snapshot's
// (snapshot.matches), so the byte cursors land exactly where a cold
// execution of f would have left them.
func (r *feedReader) resumeAt(f *Feed, words, forkBits, irqs int) {
	pos, fork := clampCursors(f, words, forkBits)
	*r = feedReader{feed: f, pos: pos, fork: fork, irq: irqs, words: words, forkBits: forkBits}
}

// word consumes the next little-endian word; missing bytes read as zero.
func (r *feedReader) word() uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		if r.pos < len(r.feed.Data) {
			v |= uint32(r.feed.Data[r.pos]) << (8 * uint(i))
			r.pos++
		}
	}
	r.words++
	return v
}

// forkBit consumes the next fork decision.
func (r *feedReader) forkBit() bool {
	r.forkBits++
	if r.fork >= len(r.feed.Forks) {
		return false
	}
	b := r.feed.Forks[r.fork]
	r.fork++
	return b&1 == 1
}

// nextIRQ returns the next pending interrupt trigger, if any.
func (r *feedReader) nextIRQ() (uint64, bool) {
	if r.irq >= len(r.feed.IRQ) {
		return 0, false
	}
	return r.feed.IRQ[r.irq], true
}

func (r *feedReader) takeIRQ() { r.irq++ }

// consumed reports how much of each stream an execution actually read —
// the exact minimization trim for corpus entries.
func (r *feedReader) consumed() (data, forks, irqs int) {
	return r.pos, r.fork, r.irq
}
