// Package fuzz implements a coverage-guided concolic fuzzing subsystem on
// top of DDT's virtual machine and simulated kernel.
//
// DDT's selective symbolic execution (package core) is exhaustive per path
// but pays for a constraint solver and forks at every symbolic branch; path
// explosion is the paper's own scalability ceiling. This package runs the
// same driver images and the same workload phases fully concretely: every
// would-be symbolic injection point — device register reads, registry
// values, packet bytes, entry arguments, allocation-failure decisions,
// interrupt arrival times — is answered from a replayable byte Feed. One
// execution explores one path at native interpreter speed, and a
// syzkaller-style loop (mutation, coverage-novelty corpus admission, crash
// triage and dedup, parallel workers with a work-stealing queue) searches
// the feed space.
//
// The two modes meet in a concolic bridge (bridge.go): solved inputs from
// symbolic bug traces seed the fuzz corpus, and high-novelty fuzz feeds are
// lifted back into symbolic boot states — the engine pins its first symbols
// to the feed prefix and forks outward from there.
package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Feed is one replayable concrete input: everything outside the driver's
// control that the fuzzer decides. Executing the same feed against the same
// image is deterministic, so a feed attached to a crash report is the
// crash's reproducer.
type Feed struct {
	// Data answers value injections in consumption order: device MMIO/port
	// register reads and symbolic-injection sites (registry values, packet
	// bytes, OIDs, ...) each consume the next little-endian word. An
	// exhausted stream answers zero, so every feed is total.
	Data []byte `json:"data"`
	// Forks answers annotation fork decisions (alternative API outcomes,
	// e.g. allocation failure) one byte per decision: an odd byte takes the
	// alternative. Exhausted means the primary outcome.
	Forks []byte `json:"forks,omitempty"`
	// IRQ lists absolute instruction counts at which to inject a device
	// interrupt (ascending; injected only once the driver registered an
	// ISR). This is the fuzzer's handle on interrupt-timing races.
	IRQ []uint64 `json:"irq,omitempty"`
}

// Clone deep-copies the feed.
func (f *Feed) Clone() *Feed {
	return &Feed{
		Data:  append([]byte(nil), f.Data...),
		Forks: append([]byte(nil), f.Forks...),
		IRQ:   append([]uint64(nil), f.IRQ...),
	}
}

// Len returns the total decision payload in bytes (corpus accounting:
// shorter feeds are preferred at equal coverage).
func (f *Feed) Len() int { return len(f.Data) + len(f.Forks) + 8*len(f.IRQ) }

// Equal reports feed identity (used by tests and dedup).
func (f *Feed) Equal(o *Feed) bool {
	if len(f.IRQ) != len(o.IRQ) {
		return false
	}
	for i := range f.IRQ {
		if f.IRQ[i] != o.IRQ[i] {
			return false
		}
	}
	return bytes.Equal(f.Data, o.Data) && bytes.Equal(f.Forks, o.Forks)
}

// Marshal serializes the feed as JSON (corpus-directory format).
func (f *Feed) Marshal() ([]byte, error) { return json.Marshal(f) }

// UnmarshalFeed parses a serialized feed.
func UnmarshalFeed(b []byte) (*Feed, error) {
	var f Feed
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("fuzz: bad feed: %w", err)
	}
	return &f, nil
}

// SaveFeed writes a feed to a file.
func SaveFeed(f *Feed, path string) error {
	b, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadFeed reads a feed from a file.
func LoadFeed(path string) (*Feed, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalFeed(b)
}

// feedReader is the per-execution cursor over an immutable feed.
type feedReader struct {
	feed *Feed
	pos  int // next byte of Data
	fork int // next byte of Forks
	irq  int // next entry of IRQ
}

func (r *feedReader) reset(f *Feed) { *r = feedReader{feed: f} }

// word consumes the next little-endian word; missing bytes read as zero.
func (r *feedReader) word() uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		if r.pos < len(r.feed.Data) {
			v |= uint32(r.feed.Data[r.pos]) << (8 * uint(i))
			r.pos++
		}
	}
	return v
}

// forkBit consumes the next fork decision.
func (r *feedReader) forkBit() bool {
	if r.fork >= len(r.feed.Forks) {
		return false
	}
	b := r.feed.Forks[r.fork]
	r.fork++
	return b&1 == 1
}

// nextIRQ returns the next pending interrupt trigger, if any.
func (r *feedReader) nextIRQ() (uint64, bool) {
	if r.irq >= len(r.feed.IRQ) {
		return 0, false
	}
	return r.feed.IRQ[r.irq], true
}

func (r *feedReader) takeIRQ() { r.irq++ }

// consumed reports how much of each stream an execution actually read —
// the exact minimization trim for corpus entries.
func (r *feedReader) consumed() (data, forks, irqs int) {
	return r.pos, r.fork, r.irq
}
