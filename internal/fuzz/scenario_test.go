package fuzz

import (
	"context"
	"testing"

	"repro/internal/corpus"
)

// TestFuzzStorageScenarioFindsRemovalRace: the concrete fuzzer reaches the
// PnP/power scenario behaviours through feed-driven branching — the
// workload forks on feed bits to pick surprise-removal, suspend/resume, or
// cancellation after the ISR, so the storage driver's planted bugs must be
// findable by fuzzing alone. The memory-corruption crash needs the removal
// branch (ISR queues the completion DPC, the yank frees the request, the
// drain writes through it); the kernel crash needs the drain to run past
// the first queued DPC. Every crash must replay from its feed.
func TestFuzzStorageScenarioFindsRemovalRace(t *testing.T) {
	img, err := corpus.Build("promise-ultra133", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.MaxExecs = 25_000
	f := New(img, cfg)
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	classes := rep.CountByClass()
	if classes["memory corruption"] == 0 {
		t.Errorf("removal race not found in %d execs:\n%s", rep.Execs, rep)
	}
	if classes["kernel crash"] == 0 {
		t.Errorf("multi-DPC drain crash not found in %d execs:\n%s", rep.Execs, rep)
	}
	for _, c := range rep.Crashes {
		if !c.Reproduced {
			t.Errorf("crash %s feed did not replay", c.Key())
		}
	}
}

// TestFuzzStorageScenarioFixedClean: the corrected storage variant
// survives the same budget — the scenario machinery itself (removal
// reads returning ~0, power cycling, DPC drain) must not fabricate
// crashes on a correct driver.
func TestFuzzStorageScenarioFixedClean(t *testing.T) {
	img, err := corpus.Build("promise-ultra133", corpus.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.MaxExecs = 10_000
	rep, err := New(img, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crashes) != 0 {
		t.Fatalf("fixed promise-ultra133 crashed:\n%s", rep)
	}
}
