package fuzz

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/binimg"
	"repro/internal/corpus"
	"repro/internal/exerciser"
)

// TestLazyTraceRematerialization is the trace-on-demand contract: for every
// corpus driver, in every executor configuration (cold vs persistent,
// superblocks on vs off), a lazy executor's RunTraced materializes — by
// exact cold re-execution — a trace chain event-for-event identical to what
// an eager executor records for the same feed, while the lazy fast path
// itself stays trace-free (ExecResult.Trace nil) and bit-identical on every
// other result field. It also proves the traced re-execution does not
// poison the lazy executor's snapshot fabric: re-running the feed after
// RunTraced still resumes trace-free with identical results.
func TestLazyTraceRematerialization(t *testing.T) {
	for _, name := range corpus.Names() {
		t.Run(name, func(t *testing.T) {
			for _, persist := range []bool{false, true} {
				for _, noSB := range []bool{false, true} {
					lazyOpts := DefaultOptions()
					lazyOpts.Persist = persist
					lazyOpts.NoSuperblocks = noSB
					if !lazyOpts.LazyTrace {
						t.Fatal("DefaultOptions no longer defaults to lazy tracing")
					}
					eagOpts := eagerOptions()
					eagOpts.Persist = persist
					eagOpts.NoSuperblocks = noSB

					img, err := corpus.Build(name, corpus.Buggy)
					if err != nil {
						t.Fatal(err)
					}
					lazy := NewExecutor(img, nil, lazyOpts)
					eager := NewExecutor(img, nil, eagOpts)

					mu := NewMutator(11)
					for i, f := range persistFeeds(mu, 10) {
						tag := fmt.Sprintf("persist=%v nosb=%v feed %d", persist, noSB, i)
						lr := lazy.Run(f)
						if lr.Trace != nil {
							t.Fatalf("%s: lazy execution built a trace chain", tag)
						}
						eg := eager.Run(f)
						tr := lazy.RunTraced(f)
						// The rematerialized chain (and every other field)
						// must match the eager execution exactly.
						compareExec(t, tag+" retraced", tr, eg)
						// The trace-free run agrees with both on everything
						// but the (absent) chain.
						if lr.Steps != eg.Steps || lr.Blocks != eg.Blocks ||
							(lr.Crash == nil) != (eg.Crash == nil) {
							t.Fatalf("%s: lazy run diverged: steps %d vs %d, blocks %d vs %d",
								tag, lr.Steps, eg.Steps, lr.Blocks, eg.Blocks)
						}
						// RunTraced must not have leaked traced states into
						// the trace-free fabric: the next lazy run of the
						// same feed is still trace-free and identical.
						again := lazy.Run(f)
						if again.Trace != nil {
							t.Fatalf("%s: traced re-execution poisoned the fabric", tag)
						}
						if again.Steps != lr.Steps || again.Blocks != lr.Blocks {
							t.Fatalf("%s: post-RunTraced run diverged (steps %d vs %d)",
								tag, again.Steps, lr.Steps)
						}
					}
				}
			}
		})
	}
}

// TestLazyTraceEagerRunTracedPassthrough pins the degenerate half of the
// RunTraced contract: on an eager executor it is plain Run (no snapshot
// bypass, no machine reconfiguration).
func TestLazyTraceEagerRunTracedPassthrough(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(img, nil, eagerOptions())
	f := &Feed{Data: make([]byte, 64)}
	a := ex.Run(f)
	b := ex.RunTraced(f)
	compareExec(t, "eager passthrough", a, b)
	if b.Trace == nil {
		t.Fatal("eager RunTraced returned no trace")
	}
}

// TestCompiledSpanExecBitIdentity is the per-execution half of the compiled
// span contract: for every corpus driver, dispatching spans through the
// pre-lowered micro-op table (default) is bit-identical — steps, coverage,
// crash identity, consumed cursors, and the full trace event chain — to the
// per-instruction decode path (Options.NoCompiledSpans), in both cold-start
// and persistent mode, over the same snapshot-stressing schedule the
// superblock suite uses (interrupts landing mid-span included).
func TestCompiledSpanExecBitIdentity(t *testing.T) {
	for _, name := range corpus.Names() {
		t.Run(name, func(t *testing.T) {
			for _, persist := range []bool{false, true} {
				fastOpts := eagerOptions()
				fastOpts.Persist = persist
				slowOpts := eagerOptions()
				slowOpts.Persist = persist
				slowOpts.NoCompiledSpans = true

				img, err := corpus.Build(name, corpus.Buggy)
				if err != nil {
					t.Fatal(err)
				}
				blocks := len(binimg.StaticBlocks(img))
				fast := NewExecutor(img, exerciser.NewCoverage(blocks), fastOpts)
				slow := NewExecutor(img, exerciser.NewCoverage(blocks), slowOpts)

				mu := NewMutator(5)
				for i, f := range persistFeeds(mu, 15) {
					a := fast.Run(f)
					b := slow.Run(f)
					compareExec(t, fmt.Sprintf("persist=%v feed %d", persist, i), a, b)
				}
			}
		})
	}
}

// TestFuzzCampaignCompiledSpansBitIdentical is the campaign-level half: a
// full single-worker campaign with micro-op dispatch on is bit-identical to
// one decoding per instruction — same crash set, same minimized
// reproducers, same coverage series, same instruction totals.
func TestFuzzCampaignCompiledSpansBitIdentical(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	campaign := func(noCS bool) *Report {
		cfg := DefaultConfig()
		cfg.Workers = 1
		cfg.MaxExecs = 4_000
		cfg.Persist = true
		cfg.Exec.NoCompiledSpans = noCS
		rep, err := New(img, cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	on := campaign(false)
	off := campaign(true)
	if !reflect.DeepEqual(crashKeys(on), crashKeys(off)) {
		t.Fatalf("bug sets differ:\n  compiled: %v\n  decoded: %v", crashKeys(on), crashKeys(off))
	}
	if len(on.Crashes) == 0 {
		t.Fatal("campaign found no crashes — equality is vacuous")
	}
	for k, f := range on.CrashFeeds {
		if !f.Equal(off.CrashFeeds[k]) {
			t.Fatalf("minimized reproducer for %s differs", k)
		}
	}
	if on.Instructions != off.Instructions {
		t.Fatalf("simulated instructions %d vs %d", on.Instructions, off.Instructions)
	}
	if on.BlocksCovered != off.BlocksCovered || on.CorpusSize != off.CorpusSize {
		t.Fatalf("coverage/corpus: %d/%d vs %d/%d",
			on.BlocksCovered, on.CorpusSize, off.BlocksCovered, off.CorpusSize)
	}
	if !reflect.DeepEqual(on.CoverageSeries, off.CoverageSeries) {
		t.Fatal("coverage series diverged")
	}
	if on.LazyTraceReexecs != off.LazyTraceReexecs {
		t.Fatalf("lazy-trace re-executions %d vs %d", on.LazyTraceReexecs, off.LazyTraceReexecs)
	}
	if on.LazyTraceReexecs == 0 {
		t.Fatal("lazy campaign triaged crashes without any traced re-execution")
	}
}
