package fuzz

import (
	"encoding/binary"
	"testing"

	"repro/internal/corpus"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// TestDictionaryMinesKnownOIDs is table-driven over the corpus drivers:
// the OID constants each driver's Query/Set handlers compare against (movi
// immediates in the closed binary) must be mined, and classified as
// OID-shaped. Audio drivers carry no NDIS OIDs but still yield a non-empty
// dictionary of magic constants.
func TestDictionaryMinesKnownOIDs(t *testing.T) {
	cases := []struct {
		driver string
		oids   []uint32
	}{
		{"rtl8029", []uint32{
			kernel.OIDGenSupportedList, kernel.OIDGenHardwareStatus,
			kernel.OIDGenLinkSpeed, kernel.OIDGenCurrentPacketFil,
			kernel.OIDGenCurrentLookahead, kernel.OID802_3PermanentAddr,
			kernel.OID802_3MulticastList,
		}},
		{"amd-pcnet", []uint32{
			kernel.OIDGenSupportedList, kernel.OIDGenLinkSpeed,
			kernel.OIDGenCurrentPacketFil, kernel.OID802_3PermanentAddr,
		}},
		{"intel-pro100", []uint32{
			kernel.OIDGenSupportedList, kernel.OIDGenLinkSpeed,
			kernel.OIDGenCurrentPacketFil, kernel.OID802_3PermanentAddr,
		}},
		{"intel-pro1000", []uint32{
			kernel.OIDGenSupportedList, kernel.OIDGenHardwareStatus,
			kernel.OIDGenMaxFrameSize, kernel.OIDGenLinkSpeed,
			kernel.OIDGenCurrentPacketFil, kernel.OIDGenCurrentLookahead,
			kernel.OID802_3PermanentAddr, kernel.OID802_3CurrentAddr,
		}},
		{"ddk-sample", []uint32{kernel.OIDGenSupportedList}},
		{"intel-ac97", nil},
		{"ensoniq-audiopci", nil},
	}
	for _, tc := range cases {
		t.Run(tc.driver, func(t *testing.T) {
			img, err := corpus.Build(tc.driver, corpus.Buggy)
			if err != nil {
				t.Fatal(err)
			}
			d := MineDictionary(img)
			if d.Len() == 0 {
				t.Fatal("empty dictionary")
			}
			oidSet := make(map[uint32]bool, len(d.OIDs))
			for _, v := range d.OIDs {
				if !OIDShaped(v) {
					t.Fatalf("non-OID-shaped %#x in OID subset", v)
				}
				oidSet[v] = true
			}
			for _, want := range tc.oids {
				if !d.Contains(want) {
					t.Errorf("OID %#x not mined", want)
				}
				if !oidSet[want] {
					t.Errorf("OID %#x not in the OID subset", want)
				}
			}
			// No image pointers and no trivial constants.
			for _, v := range d.Words {
				if v <= 8 {
					t.Fatalf("trivial constant %#x mined", v)
				}
				if v >= isa.ImageBase && v < img.LimitVA() {
					t.Fatalf("image pointer %#x mined", v)
				}
			}
		})
	}
}

// TestDictionaryMutationDeterministic extends the mutation-determinism
// property to the dictionary operators: same seed + same dictionary ⇒ same
// mutant stream; a different dictionary changes the stream; and a nil
// dictionary leaves the pre-dictionary operator rotation untouched.
func TestDictionaryMutationDeterministic(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	dict := MineDictionary(img)
	base := &Feed{Data: make([]byte, 32), Forks: []byte{0}, IRQ: []uint64{64}}
	donor := &Feed{Data: []byte{9, 9, 9, 9}}

	a, b := NewMutator(42), NewMutator(42)
	a.Dict, b.Dict = dict, dict
	for i := 0; i < 300; i++ {
		if !a.Mutate(base, donor).Equal(b.Mutate(base, donor)) {
			t.Fatalf("iteration %d diverged under the same dictionary", i)
		}
	}

	// The dictionary participates in the stream: with it detached, the same
	// seed must eventually produce different mutants.
	c, d := NewMutator(42), NewMutator(42)
	c.Dict = dict
	same := 0
	for i := 0; i < 200; i++ {
		if c.Mutate(base, donor).Equal(d.Mutate(base, donor)) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("dictionary had no effect on the mutation stream")
	}
}

// TestDictionarySpliceBounds: dictionary splices stay within the feed size
// caps and land mined words intact at feed-aligned (word) offsets.
func TestDictionarySpliceBounds(t *testing.T) {
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	dict := MineDictionary(img)
	mined := make(map[uint32]bool)
	for _, v := range dict.Words {
		mined[v] = true
	}
	mu := NewMutator(7)
	mu.Dict = dict

	base := &Feed{Data: make([]byte, 40)}
	spliced := 0
	for i := 0; i < 2000; i++ {
		f := mu.Mutate(base, nil)
		if len(f.Data) > maxDataLen || len(f.Forks) > maxForkLen || len(f.IRQ) > maxIRQLen {
			t.Fatalf("mutant %d exceeds caps: %d/%d/%d", i, len(f.Data), len(f.Forks), len(f.IRQ))
		}
		// Count mutants that carry a mined word at an aligned offset. The
		// base feed is all zeros and the dictionary holds no zero word, so
		// any hit came from a splice.
		for off := 0; off+4 <= len(f.Data); off += 4 {
			if mined[binary.LittleEndian.Uint32(f.Data[off:])] {
				spliced++
				break
			}
		}
	}
	if spliced == 0 {
		t.Fatal("no mutant ever carried a mined word at a feed-aligned offset")
	}
	t.Logf("%d/2000 mutants carried a dictionary word (%d words, %d OIDs mined)",
		spliced, len(dict.Words), len(dict.OIDs))
}
