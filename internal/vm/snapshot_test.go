package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/expr"
	"repro/internal/isa"
)

// forkable is a minimal Forkable for snapshot tests.
type forkable struct{ n int }

func (f *forkable) Fork() Forkable { c := *f; return &c }

// TestForkFrozenDoesNotMutateSnapshot is the state-restore invariant behind
// persistent-mode execution: any number of children can resume from one
// frozen snapshot, each child's writes stay private, and the snapshot —
// memory, registers, loop accounting, overlay depth — is bit-identical
// afterwards. Contrast with Fork, which reassigns the parent's memory onto
// a fresh overlay each call and so deepens its chain.
func TestForkFrozenDoesNotMutateSnapshot(t *testing.T) {
	snap := NewState(1)
	snap.Mem.WriteBytes(0x100000, []byte{1, 2, 3, 4})
	snap.Regs[isa.R3] = expr.Const(77)
	snap.PC = 0x100008
	snap.ICount = 500
	snap.Kernel = &forkable{n: 1}
	snap.HW = &forkable{n: 2}
	snap.LoopCounts = map[uint32]uint64{0x100000: 9}
	snap.Meta = map[string]uint64{"k": 1}
	snap.PushInterrupt(0x100100)
	snap.PopInterrupt()

	memDepth := snap.Mem.Depth()
	memObj := snap.Mem
	traceObj := snap.Trace

	var children []*State
	for i := 0; i < 8; i++ {
		c := snap.ForkFrozen(uint64(100 + i))
		children = append(children, c)

		// Children inherit the replay context...
		if c.PC != snap.PC || c.ICount != snap.ICount || c.Parent != snap.ID {
			t.Fatalf("child %d lost context: %+v", i, c)
		}
		if v, ok := c.RegConcrete(isa.R3); !ok || v != 77 {
			t.Fatalf("child %d lost registers", i)
		}
		// ...including the loop accounting, which Fork deliberately resets
		// but a snapshot resume must carry (it continues the same path).
		if c.LoopCounts[0x100000] != 9 {
			t.Fatalf("child %d lost loop counts", i)
		}

		// Child writes stay private.
		c.Mem.Write(0x100000, 4, expr.Const(uint32(0xAAAA0000+uint32(i))))
		c.LoopCounts[0x100000] = uint64(i)
		c.Meta["k"] = uint64(i)
		c.Kernel.(*forkable).n = 100 + i
	}

	// The snapshot is untouched: same memory object at the same depth (no
	// per-resume overlay growth), same contents, same bookkeeping.
	if snap.Mem != memObj || snap.Mem.Depth() != memDepth {
		t.Fatalf("snapshot memory mutated: depth %d -> %d", memDepth, snap.Mem.Depth())
	}
	if snap.Trace != traceObj {
		t.Fatal("snapshot trace reassigned")
	}
	if got := snap.Mem.Read(0x100000, 4); !got.IsConst() || got.ConstVal() != 0x04030201 {
		t.Fatalf("snapshot memory corrupted: %v", got)
	}
	if snap.LoopCounts[0x100000] != 9 || snap.Meta["k"] != 1 || snap.Kernel.(*forkable).n != 1 {
		t.Fatal("snapshot bookkeeping corrupted by children")
	}
	// Children do not see each other's writes.
	for i, c := range children {
		if got := c.Mem.Read(0x100000, 4); got.ConstVal() != 0xAAAA0000+uint32(i) {
			t.Fatalf("child %d lost its private write: %v", i, got)
		}
	}
}

// TestSnapshotStateFreezesRunningPath: Machine.SnapshotState captures a
// mid-run state such that (a) the running path continues unaffected, (b)
// the snapshot keeps the loop accounting, and (c) later writes by the
// running path never reach the snapshot or its resumed children.
func TestSnapshotStateFreezesRunningPath(t *testing.T) {
	img, err := asm.Assemble(".entry e\n.text\ne: movi r1, 0x11\n ret\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, expr.NewSymbolTable(), nil)
	s := m.NewRootState()
	s.LoopCounts = map[uint32]uint64{0x100000: 3}
	s.Mem.Write(0x200000, 4, expr.Const(1))

	snap := m.SnapshotState(s)
	if snap.LoopCounts[0x100000] != 3 {
		t.Fatal("snapshot lost loop accounting")
	}
	// The running path keeps executing and writing...
	s.Mem.Write(0x200000, 4, expr.Const(2))
	s.LoopCounts[0x100000] = 99
	// ...without contaminating the snapshot or a resumed child.
	c := m.ResumeState(snap)
	if got := c.Mem.Read(0x200000, 4); got.ConstVal() != 1 {
		t.Fatalf("resumed child sees the running path's later write: %v", got)
	}
	if c.LoopCounts[0x100000] != 3 {
		t.Fatalf("resumed child loop counts = %d, want the snapshot's 3", c.LoopCounts[0x100000])
	}
	if c.ID == snap.ID || c.ID == s.ID {
		t.Fatal("resumed child did not get a fresh ID")
	}
}
