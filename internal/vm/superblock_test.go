package vm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
)

// Superblock execution (span.go) must be observationally identical to the
// per-instruction step loop: same final registers and memory, same ICount
// and machine Steps accounting, same trace event chains, same faults at the
// same instants. These tests run every program twice — superblocks on
// (default) and off (Machine.DisableSuperblocks) — and compare everything.

// sbMachine assembles src into a machine + entry state, with the
// superblock fast path enabled or disabled.
func sbMachine(t *testing.T, src string, disable bool) (*Machine, *State) {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := NewMachine(img, expr.NewSymbolTable(), solver.New())
	m.DisableSuperblocks = disable
	s := m.NewRootState()
	s.PC = img.Entry
	s.SetReg(isa.LR, expr.Const(ExitAddr))
	m.MarkBlockStart(s)
	return m, s
}

// sbStateSig summarizes everything observable about a final state: status,
// every register expression, ICount, and the full trace event chain.
func sbStateSig(s *State) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "status=%v pc=%#x icount=%d\n", s.Status, s.PC, s.ICount)
	for r := uint8(0); r < isa.NumRegs; r++ {
		fmt.Fprintf(&sb, "r%d=%v\n", r, s.Reg(r))
	}
	if s.Trace != nil {
		for _, ev := range s.Trace.Path() {
			fmt.Fprintf(&sb, "ev %v seq=%d pc=%#x addr=%#x name=%q taken=%v forked=%v val=%v\n",
				ev.Kind, ev.Seq, ev.PC, ev.Addr, ev.Name, ev.Taken, ev.Forked, ev.Val)
		}
	}
	return sb.String()
}

// sbRunAll drains a state and all its forks to completion, returning the
// final-state signatures in deterministic exploration order plus any fault.
func sbRunAll(t *testing.T, m *Machine, s *State) (sigs []string, faults []string) {
	t.Helper()
	work := []*State{s}
	for len(work) > 0 {
		st := work[0]
		work = work[1:]
		final, forked, err := m.Run(st, 100000)
		work = append(work, forked...)
		if err != nil {
			faults = append(faults, fmt.Sprintf("%v @ %s", err, sbStateSig(final)))
			continue
		}
		sigs = append(sigs, sbStateSig(final))
	}
	return sigs, faults
}

// sbCompare runs src in both modes, optionally preparing each root state,
// and fails on any observable divergence (including the machine-wide Steps
// counter after the full drain).
func sbCompare(t *testing.T, src string, prep func(m *Machine, s *State)) {
	t.Helper()
	run := func(disable bool) (sigs, faults []string, steps uint64) {
		m, s := sbMachine(t, src, disable)
		if prep != nil {
			prep(m, s)
		}
		sigs, faults = sbRunAll(t, m, s)
		return sigs, faults, m.Steps.Load()
	}
	onSigs, onFaults, onSteps := run(false)
	offSigs, offFaults, offSteps := run(true)
	if len(onSigs) != len(offSigs) {
		t.Fatalf("final states: %d with superblocks, %d without", len(onSigs), len(offSigs))
	}
	for i := range onSigs {
		if onSigs[i] != offSigs[i] {
			t.Errorf("state %d diverged:\n--- superblocks ---\n%s--- per-instruction ---\n%s",
				i, onSigs[i], offSigs[i])
		}
	}
	if len(onFaults) != len(offFaults) {
		t.Fatalf("faults: %d with superblocks, %d without", len(onFaults), len(offFaults))
	}
	for i := range onFaults {
		if onFaults[i] != offFaults[i] {
			t.Errorf("fault %d diverged:\n--- superblocks ---\n%s--- per-instruction ---\n%s",
				i, onFaults[i], offFaults[i])
		}
	}
	if onSteps != offSteps {
		t.Errorf("machine Steps = %d with superblocks, %d without", onSteps, offSteps)
	}
}

func TestSuperblockStraightLine(t *testing.T) {
	sbCompare(t, `
.entry e
.text
e:
    movi r1, 6
    movi r2, 7
    mul  r0, r1, r2
    addi r0, r0, 8
    shli r0, r0, 1
    xor  r3, r0, r1
    sub  r4, r3, r2
    ret
`, nil)
}

func TestSuperblockLoopsAndBranches(t *testing.T) {
	// Loop bodies are spans re-entered from block starts every iteration.
	sbCompare(t, `
.entry e
.text
e:
    movi r0, 0
    movi r1, 1
    movi r2, 50
loop:
    add  r0, r0, r1
    addi r1, r1, 1
    addi r3, r1, 0
    andi r3, r3, 1
    bltu r1, r2, loop
    ret
`, nil)
}

func TestSuperblockMemoryAndStack(t *testing.T) {
	// Loads, stores, push/pop all bail to the general path mid-span; the
	// scratch registers must be written back and resumed exactly.
	sbCompare(t, `
.entry e
.text
e:
    movi r1, buf
    movi r2, 0xBEEF
    addi r3, r2, 1
    stw  [r1+0], r2
    addi r4, r3, 2
    ldw  r5, [r1+0]
    push r5
    addi r6, r5, 3
    pop  r7
    ret
.data
buf: .word 0
`, nil)
}

func TestSuperblockSymbolicOperandBailout(t *testing.T) {
	// r9 is symbolic: the span's fast path must hand mid-span instructions
	// touching it to the general executor without disturbing order.
	sbCompare(t, `
.entry e
.text
e:
    movi r1, 3
    addi r2, r1, 4
    add  r3, r9, r2
    addi r4, r3, 5
    xori r5, r4, 0xFF
    ret
`, func(m *Machine, s *State) {
		s.SetReg(isa.R9, m.Syms.Fresh("input", expr.OriginArgument, 0, 0))
	})
}

func TestSuperblockSymbolicForkMidProgram(t *testing.T) {
	// A symbolic branch forks; both children re-enter spans and must drain
	// to the same two exit states either way.
	sbCompare(t, `
.entry e
.text
e:
    movi r2, 10
    addi r3, r2, 1
    bltu r1, r2, small
    movi r0, 2
    addi r4, r0, 7
    ret
small:
    movi r0, 1
    addi r4, r0, 9
    ret
`, func(m *Machine, s *State) {
		s.SetReg(isa.R1, m.Syms.Fresh("input", expr.OriginArgument, 0, 0))
	})
}

func TestSuperblockMidSpanFault(t *testing.T) {
	// OnMemAccess raises a fault at the third instruction of a span: the
	// fast path must surface it at the exact instant with exact accounting.
	hook := func(m *Machine, s *State) {
		m.OnMemAccess = func(_ *State, pc, addr, size uint32, write bool, _ *expr.Expr) error {
			if write {
				return Faultf("test-bug", pc, "forbidden store to %#x", addr)
			}
			return nil
		}
	}
	sbCompare(t, `
.entry e
.text
e:
    movi r1, buf
    addi r2, r1, 0
    stw  [r1+0], r2
    addi r3, r2, 1
    ret
.data
buf: .word 0
`, hook)
}

func TestSuperblockWildJumpAfterSpan(t *testing.T) {
	// The wild JR ends the span (control flow): the fault must carry the
	// same PC and instruction count in both modes.
	sbCompare(t, `
.entry e
.text
e:
    movi r1, 0x12345678
    addi r2, r1, 1
    jr   r1
`, nil)
}

func TestSuperblockBudgetExhaustionResumesMidSpan(t *testing.T) {
	// A budget smaller than the span must stop exactly at the budgeted
	// instruction, leave the state resumable mid-span, and produce the same
	// final state when stepping continues.
	src := `
.entry e
.text
e:
    movi r0, 1
    addi r0, r0, 2
    addi r0, r0, 4
    addi r0, r0, 8
    addi r0, r0, 16
    ret
`
	m, s := sbMachine(t, src, false)
	if _, err := m.StepSpan(s, 3); err != nil {
		t.Fatalf("span: %v", err)
	}
	if s.ICount != 3 {
		t.Fatalf("ICount = %d after budget 3, want 3", s.ICount)
	}
	if want := isa.ImageBase + 3*isa.InstrSize; s.PC != want {
		t.Fatalf("PC = %#x mid-span, want %#x", s.PC, want)
	}
	if got := m.Steps.Load(); got != 3 {
		t.Fatalf("machine Steps = %d after budget 3, want 3", got)
	}
	// Resume mid-span to completion and compare against per-instruction.
	final, forked, err := m.Run(s, 100000)
	if err != nil || len(forked) != 0 {
		t.Fatalf("resume: err=%v forks=%d", err, len(forked))
	}
	mo, so := sbMachine(t, src, true)
	finalOff, _, err := mo.Run(so, 100000)
	if err != nil {
		t.Fatalf("off run: %v", err)
	}
	if a, b := sbStateSig(final), sbStateSig(finalOff); a != b {
		t.Errorf("mid-span resume diverged:\n--- resumed ---\n%s--- per-instruction ---\n%s", a, b)
	}
	if v, _ := final.RegConcrete(isa.R0); v != 31 {
		t.Errorf("r0 = %d, want 31", v)
	}
}

func TestSpanLenTable(t *testing.T) {
	m, _ := sbMachine(t, `
.entry e
.text
e:
    movi r0, 1
    addi r0, r0, 1
    addi r0, r0, 1
    jmp  tail
tail:
    addi r0, r0, 1
    ret
`, false)
	want := []uint32{3, 2, 1, 0, 1, 0}
	if len(m.spanLen) != len(want) {
		t.Fatalf("spanLen has %d entries, want %d", len(m.spanLen), len(want))
	}
	for i, w := range want {
		if m.spanLen[i] != w {
			t.Errorf("spanLen[%d] = %d, want %d", i, m.spanLen[i], w)
		}
	}
}
