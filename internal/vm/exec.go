package vm

import (
	"repro/internal/expr"
	"repro/internal/isa"
)

// exec executes the decoded instruction in on s. The PC still points at in;
// exec advances it.
func (c *ExecContext) exec(s *State, in isa.Instr) ([]*State, error) {
	next := s.PC + isa.InstrSize

	switch in.Op {
	case isa.NOP:
		s.PC = next

	case isa.MOVI:
		s.SetReg(in.Rd, expr.Const(in.Imm))
		s.PC = next
	case isa.MOV:
		s.SetReg(in.Rd, s.Reg(in.Rs1))
		s.PC = next

	case isa.ADD:
		s.SetReg(in.Rd, expr.Add(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.SUB:
		s.SetReg(in.Rd, expr.Sub(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.MUL:
		s.SetReg(in.Rd, expr.Mul(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.DIVU:
		s.SetReg(in.Rd, expr.UDiv(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.REMU:
		s.SetReg(in.Rd, expr.URem(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.AND:
		s.SetReg(in.Rd, expr.And(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.OR:
		s.SetReg(in.Rd, expr.Or(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.XOR:
		s.SetReg(in.Rd, expr.Xor(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.SHL:
		s.SetReg(in.Rd, expr.Shl(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.SHR:
		s.SetReg(in.Rd, expr.Lshr(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next
	case isa.SAR:
		s.SetReg(in.Rd, expr.Ashr(s.Reg(in.Rs1), s.Reg(in.Rs2)))
		s.PC = next

	case isa.ADDI:
		s.SetReg(in.Rd, expr.Add(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.ANDI:
		s.SetReg(in.Rd, expr.And(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.ORI:
		s.SetReg(in.Rd, expr.Or(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.XORI:
		s.SetReg(in.Rd, expr.Xor(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.SHLI:
		s.SetReg(in.Rd, expr.Shl(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.SHRI:
		s.SetReg(in.Rd, expr.Lshr(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.SARI:
		s.SetReg(in.Rd, expr.Ashr(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next
	case isa.MULI:
		s.SetReg(in.Rd, expr.Mul(s.Reg(in.Rs1), expr.Const(in.Imm)))
		s.PC = next

	case isa.LDW, isa.LDH, isa.LDB:
		size := loadStoreSize(in.Op)
		val, err := c.load(s, in.Rs1, in.Imm, size)
		if err != nil {
			s.Status = StatusBug
			return nil, err
		}
		s.SetReg(in.Rd, val)
		s.PC = next

	case isa.STW, isa.STH, isa.STB:
		size := loadStoreSize(in.Op)
		if err := c.store(s, in.Rs1, in.Imm, size, s.Reg(in.Rd)); err != nil {
			s.Status = StatusBug
			return nil, err
		}
		s.PC = next

	case isa.PUSH:
		sp := expr.Sub(s.Reg(isa.SP), expr.Const(4))
		s.SetReg(isa.SP, sp)
		if err := c.store(s, isa.SP, 0, 4, s.Reg(in.Rd)); err != nil {
			s.Status = StatusBug
			return nil, err
		}
		s.PC = next
	case isa.POP:
		val, err := c.load(s, isa.SP, 0, 4)
		if err != nil {
			s.Status = StatusBug
			return nil, err
		}
		s.SetReg(in.Rd, val)
		s.SetReg(isa.SP, expr.Add(s.Reg(isa.SP), expr.Const(4)))
		s.PC = next

	case isa.BEQ, isa.BNE, isa.BLTU, isa.BGEU, isa.BLT, isa.BGE:
		return c.branch(s, in)

	case isa.JMP:
		s.PC = in.Imm
		c.M.MarkBlockStart(s)
	case isa.JR:
		return c.jumpIndirect(s, s.Reg(in.Rs1), false)

	case isa.CALL:
		s.SetReg(isa.LR, expr.Const(next))
		if slot, ok := isa.InTrapWindow(in.Imm); ok {
			return c.apiCall(s, slot)
		}
		s.PC = in.Imm
		c.M.MarkBlockStart(s)
	case isa.CALLR:
		s.SetReg(isa.LR, expr.Const(next))
		return c.jumpIndirect(s, s.Reg(in.Rs1), true)
	case isa.RET:
		return c.jumpIndirect(s, s.Reg(isa.LR), false)

	case isa.IN:
		port, err := c.Concretize(s, s.Reg(in.Rs1), "port")
		if err != nil {
			s.Status = StatusBug
			return nil, err
		}
		var v *expr.Expr
		if c.M.ReadPort != nil {
			v = c.M.ReadPort(s, port)
			c.M.SymReads.Add(1)
		} else {
			v = expr.Const(0)
		}
		s.SetReg(in.Rd, v)
		s.PC = next
	case isa.OUT:
		port, err := c.Concretize(s, s.Reg(in.Rs1), "port")
		if err != nil {
			s.Status = StatusBug
			return nil, err
		}
		if c.M.WritePort != nil {
			c.M.WritePort(s, port, s.Reg(in.Rd))
		}
		s.PC = next

	case isa.HLT:
		s.Status = StatusHalted
		return nil, nil

	default:
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "unimplemented opcode %s", in.Op.Name())
	}
	return []*State{s}, nil
}

func loadStoreSize(op isa.Opcode) uint32 {
	switch op {
	case isa.LDW, isa.STW:
		return 4
	case isa.LDH, isa.STH:
		return 2
	default:
		return 1
	}
}

func (c *ExecContext) effectiveAddr(s *State, base uint8, imm uint32, size uint32, write bool) (uint32, error) {
	addr := expr.Add(s.Reg(base), expr.Const(imm))
	if addr.IsConst() {
		return addr.ConstVal(), nil
	}
	if c.M.PinAddress != nil {
		if val, ok := c.M.PinAddress(s, addr, size, write); ok {
			s.AddConstraint(expr.Eq(addr, expr.Const(val)))
			s.Trace.Append(Event{
				Kind: EvConcretize, Seq: s.ICount, PC: s.PC,
				Val: expr.Const(val), Name: "address",
			})
			return val, nil
		}
	}
	return c.Concretize(s, addr, "address")
}

func (c *ExecContext) load(s *State, base uint8, imm, size uint32) (*expr.Expr, error) {
	addr, err := c.effectiveAddr(s, base, imm, size, false)
	if err != nil {
		return nil, err
	}
	if addr >= isa.MMIOBase && addr < isa.MMIOLimit {
		c.M.SymReads.Add(1)
		if c.M.ReadDevice != nil {
			return c.M.ReadDevice(s, addr, size), nil
		}
		return expr.Const(0), nil
	}
	if c.M.OnMemAccess != nil {
		if err := c.M.OnMemAccess(s, s.PC, addr, size, false, nil); err != nil {
			return nil, err
		}
	}
	v := s.Mem.Read(addr, size)
	s.Trace.Append(Event{Kind: EvMem, Seq: s.ICount, PC: s.PC, Addr: addr, Size: uint8(size), Write: false, Val: v})
	return v, nil
}

func (c *ExecContext) store(s *State, base uint8, imm, size uint32, v *expr.Expr) error {
	addr, err := c.effectiveAddr(s, base, imm, size, true)
	if err != nil {
		return err
	}
	if addr >= isa.MMIOBase && addr < isa.MMIOLimit {
		if c.M.WriteDevice != nil {
			c.M.WriteDevice(s, addr, size, v)
		}
		return nil
	}
	if c.M.OnMemAccess != nil {
		if err := c.M.OnMemAccess(s, s.PC, addr, size, true, v); err != nil {
			return err
		}
	}
	s.Mem.Write(addr, size, v)
	s.Trace.Append(Event{Kind: EvMem, Seq: s.ICount, PC: s.PC, Addr: addr, Size: uint8(size), Write: true, Val: v})
	return nil
}

// branchCond builds the taken-condition of a conditional branch.
func branchCond(s *State, in isa.Instr) *expr.Expr {
	a, b := s.Reg(in.Rs1), s.Reg(in.Rs2)
	switch in.Op {
	case isa.BEQ:
		return expr.Eq(a, b)
	case isa.BNE:
		return expr.Ne(a, b)
	case isa.BLTU:
		return expr.ULt(a, b)
	case isa.BGEU:
		return expr.UGe(a, b)
	case isa.BLT:
		return expr.SLt(a, b)
	default: // BGE
		return expr.SGe(a, b)
	}
}

func (c *ExecContext) branch(s *State, in isa.Instr) ([]*State, error) {
	cond := branchCond(s, in)
	next := s.PC + isa.InstrSize
	target := in.Imm

	if cond.IsConst() {
		taken := cond.ConstVal() != 0
		s.Trace.Append(Event{Kind: EvBranch, Seq: s.ICount, PC: s.PC, Cond: cond, Taken: taken})
		if taken {
			s.PC = target
		} else {
			s.PC = next
		}
		c.M.MarkBlockStart(s)
		return []*State{s}, nil
	}

	// Symbolic condition: explore all feasible alternatives (§2).
	notCond := expr.LogicalNot(cond)
	csTaken := append(s.Constraints[:len(s.Constraints):len(s.Constraints)], cond)
	csNot := append(s.Constraints[:len(s.Constraints):len(s.Constraints)], notCond)
	okTaken := c.Solver.Feasible(csTaken)
	okNot := c.Solver.Feasible(csNot)

	switch {
	case okTaken && okNot:
		c.pendForks++
		tk := s.Fork(c.M.newID())
		nt := s.Fork(c.M.newID())
		tk.AddConstraint(cond)
		tk.PC = target
		tk.Trace.Append(Event{Kind: EvBranch, Seq: tk.ICount, PC: s.PC, Cond: cond, Taken: true, Forked: true})
		c.M.MarkBlockStart(tk)
		nt.AddConstraint(notCond)
		nt.PC = next
		nt.Trace.Append(Event{Kind: EvBranch, Seq: nt.ICount, PC: s.PC, Cond: cond, Taken: false, Forked: true})
		c.M.MarkBlockStart(nt)
		s.Status = StatusKilled // retired; children carry on
		if c.M.OnFork != nil {
			c.M.OnFork(s, []*State{tk, nt}, cond)
		}
		return []*State{tk, nt}, nil
	case okTaken:
		s.Trace.Append(Event{Kind: EvBranch, Seq: s.ICount, PC: s.PC, Cond: cond, Taken: true})
		s.PC = target
		c.M.MarkBlockStart(s)
		return []*State{s}, nil
	case okNot:
		s.Trace.Append(Event{Kind: EvBranch, Seq: s.ICount, PC: s.PC, Cond: cond, Taken: false})
		s.PC = next
		c.M.MarkBlockStart(s)
		return []*State{s}, nil
	default:
		// Both sides unsolvable: the path constraints are themselves
		// undecidable for our solver. Drop the path (coverage loss only).
		s.Status = StatusInfeasible
		return nil, nil
	}
}

func (c *ExecContext) jumpIndirect(s *State, target *expr.Expr, isCall bool) ([]*State, error) {
	pc, err := c.Concretize(s, target, "jump target")
	if err != nil {
		s.Status = StatusBug
		return nil, err
	}
	if slot, ok := isa.InTrapWindow(pc); ok && isCall {
		return c.apiCall(s, slot)
	}
	s.PC = pc
	c.M.MarkBlockStart(s)
	return []*State{s}, nil
}

func (c *ExecContext) apiCall(s *State, slot int) ([]*State, error) {
	c.M.APICalls.Add(1)
	if slot >= len(c.M.Img.Imports) {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "call to unresolved import slot %d", slot)
	}
	name := c.M.Img.Imports[slot]
	s.Trace.Append(Event{Kind: EvAPICall, Seq: s.ICount, PC: s.PC, Name: name})
	if c.M.APICall == nil {
		s.Status = StatusBug
		return nil, Faultf("engine", s.PC, "no kernel attached for %s", name)
	}
	extra, err := c.M.APICall(s, slot)
	if err != nil {
		s.Status = StatusBug
		return nil, err
	}
	ret := func(st *State) error {
		lr, ok := st.RegConcrete(isa.LR)
		if !ok {
			return Faultf("engine", st.PC, "symbolic return address after %s", name)
		}
		st.PC = lr
		st.Trace.Append(Event{Kind: EvAPIReturn, Seq: st.ICount, PC: lr, Name: name})
		c.M.MarkBlockStart(st)
		return nil
	}
	out := make([]*State, 0, 1+len(extra))
	if s.Status == StatusRunning {
		if err := ret(s); err != nil {
			s.Status = StatusBug
			return nil, err
		}
		out = append(out, s)
	}
	for _, e := range extra {
		if e.Status != StatusRunning {
			continue
		}
		if err := ret(e); err != nil {
			e.Status = StatusBug
			continue
		}
		out = append(out, e)
	}
	return out, nil
}
