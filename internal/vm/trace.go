package vm

import (
	"sync"

	"repro/internal/expr"
)

// EventKind tags a trace event.
type EventKind uint8

// Trace event kinds. A DDT trace (§3.5) contains the executed path —
// block entries, memory accesses, branch decisions with fork flags —
// plus the provenance of every symbolic value and the injection points of
// symbolic interrupts, which together make the trace executable: replaying
// it substitutes solved concrete inputs at the recorded injection points.
const (
	EvBlock        EventKind = iota // entered basic block at PC
	EvMem                           // memory access
	EvBranch                        // conditional branch resolved
	EvNewSym                        // symbolic value created
	EvAPICall                       // driver called kernel API
	EvAPIReturn                     // kernel API returned to driver
	EvEntry                         // entry-point invocation began
	EvEntryDone                     // entry-point invocation returned
	EvInterrupt                     // symbolic interrupt injected (ISR begins)
	EvInterruptEnd                  // ISR returned
	EvConcretize                    // symbolic value concretized at the boundary
	EvBug                           // checker flagged a bug here
	EvAltFork                       // this path is the forked alternative of an annotation (e.g. the allocation-failure outcome)
	EvDevice                        // device register write (discarded by symbolic hardware, recorded as evidence)
)

func (k EventKind) String() string {
	switch k {
	case EvBlock:
		return "block"
	case EvMem:
		return "mem"
	case EvBranch:
		return "branch"
	case EvNewSym:
		return "newsym"
	case EvAPICall:
		return "apicall"
	case EvAPIReturn:
		return "apireturn"
	case EvEntry:
		return "entry"
	case EvEntryDone:
		return "entrydone"
	case EvInterrupt:
		return "interrupt"
	case EvInterruptEnd:
		return "interruptend"
	case EvConcretize:
		return "concretize"
	case EvBug:
		return "bug"
	case EvAltFork:
		return "altfork"
	case EvDevice:
		return "device"
	default:
		return "event"
	}
}

// Event is one trace record. Fields are used according to Kind.
type Event struct {
	Kind   EventKind
	Seq    uint64 // instruction count at the event
	PC     uint32
	Addr   uint32     // EvMem: accessed address
	Size   uint8      // EvMem: access width
	Write  bool       // EvMem
	Val    *expr.Expr // EvMem value, EvConcretize chosen value
	Sym    expr.SymID // EvNewSym, EvConcretize
	Cond   *expr.Expr // EvBranch condition (in taken form)
	Taken  bool       // EvBranch
	Forked bool       // EvBranch: did execution fork here
	Name   string     // EvAPICall/EvEntry/EvBug identifier
}

// TraceNode is one segment of a path trace. Nodes form a tree mirroring the
// execution-state tree: forking a state starts a new node whose parent is
// the fork point, so common prefixes are stored once (the same chained
// structure the paper uses to reconstruct the execution tree, §3.5).
type TraceNode struct {
	parent *TraceNode
	events []Event
	// frozen marks interior nodes: once a node has become the fork-parent
	// of other nodes its events are shared history and its storage must
	// never be recycled. Leaves owned by exactly one state stay unfrozen.
	frozen bool
}

// eventSizeClasses are the pooled event-slice capacities. Growth walks up
// the ladder so a node's slice is reallocated O(log n) times instead of
// per-append, and retired slices are reused across executions.
var eventSizeClasses = [...]int{16, 64, 256, 1024, 4096}

var eventPools [len(eventSizeClasses)]sync.Pool

func init() {
	for i := range eventPools {
		n := eventSizeClasses[i]
		eventPools[i].New = func() any {
			s := make([]Event, 0, n)
			return &s
		}
	}
}

// putEvents returns a pool-sized event slice to its size-class pool.
// Elements are cleared first so retired traces do not pin expressions.
func putEvents(s []Event) {
	c := cap(s)
	for i := range eventSizeClasses {
		if c == eventSizeClasses[i] {
			clear(s)
			s = s[:0]
			eventPools[i].Put(&s)
			return
		}
	}
}

// grow moves the node's events to the next size class, recycling the old
// storage. Beyond the largest class it falls back to plain doubling.
func (t *TraceNode) grow() {
	need := 2 * cap(t.events)
	if need == 0 {
		need = eventSizeClasses[0]
	}
	if need > eventSizeClasses[len(eventSizeClasses)-1] {
		ns := make([]Event, len(t.events), need)
		copy(ns, t.events)
		putEvents(t.events)
		t.events = ns
		return
	}
	idx := 0
	for eventSizeClasses[idx] < need {
		idx++
	}
	np := eventPools[idx].Get().(*[]Event)
	ns := (*np)[:len(t.events)]
	copy(ns, t.events)
	putEvents(t.events)
	t.events = ns
}

// Append records an event in this node. Appending to a nil node is a
// no-op: a state running with tracing disabled carries a nil trace, and
// every recording site stays unchanged.
func (t *TraceNode) Append(ev Event) {
	if t == nil {
		return
	}
	if len(t.events) == cap(t.events) {
		t.grow()
	}
	t.events = append(t.events, ev)
}

// recycle returns the node's event storage to its pool. Frozen (interior)
// nodes are shared by forked siblings and are left alone.
func (t *TraceNode) recycle() {
	if t == nil || t.frozen {
		return
	}
	if cap(t.events) != 0 {
		putEvents(t.events)
	}
	t.events = nil
	t.parent = nil
}

// Parent returns the fork-parent node, or nil at the root.
func (t *TraceNode) Parent() *TraceNode {
	if t == nil {
		return nil
	}
	return t.parent
}

// Local returns the events recorded in this node only.
func (t *TraceNode) Local() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Path returns the full event sequence from the root to this node,
// unwinding the chain (the paper's trace reconstruction). The result is
// sized once from Len and filled back-to-front.
func (t *TraceNode) Path() []Event {
	n := t.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, n)
	pos := n
	for node := t; node != nil; node = node.parent {
		pos -= len(node.events)
		copy(out[pos:], node.events)
	}
	return out
}

// Len returns the total number of events on the path to this node.
func (t *TraceNode) Len() int {
	n := 0
	for node := t; node != nil; node = node.parent {
		n += len(node.events)
	}
	return n
}
