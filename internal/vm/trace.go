package vm

import "repro/internal/expr"

// EventKind tags a trace event.
type EventKind uint8

// Trace event kinds. A DDT trace (§3.5) contains the executed path —
// block entries, memory accesses, branch decisions with fork flags —
// plus the provenance of every symbolic value and the injection points of
// symbolic interrupts, which together make the trace executable: replaying
// it substitutes solved concrete inputs at the recorded injection points.
const (
	EvBlock        EventKind = iota // entered basic block at PC
	EvMem                           // memory access
	EvBranch                        // conditional branch resolved
	EvNewSym                        // symbolic value created
	EvAPICall                       // driver called kernel API
	EvAPIReturn                     // kernel API returned to driver
	EvEntry                         // entry-point invocation began
	EvEntryDone                     // entry-point invocation returned
	EvInterrupt                     // symbolic interrupt injected (ISR begins)
	EvInterruptEnd                  // ISR returned
	EvConcretize                    // symbolic value concretized at the boundary
	EvBug                           // checker flagged a bug here
	EvAltFork                       // this path is the forked alternative of an annotation (e.g. the allocation-failure outcome)
	EvDevice                        // device register write (discarded by symbolic hardware, recorded as evidence)
)

func (k EventKind) String() string {
	switch k {
	case EvBlock:
		return "block"
	case EvMem:
		return "mem"
	case EvBranch:
		return "branch"
	case EvNewSym:
		return "newsym"
	case EvAPICall:
		return "apicall"
	case EvAPIReturn:
		return "apireturn"
	case EvEntry:
		return "entry"
	case EvEntryDone:
		return "entrydone"
	case EvInterrupt:
		return "interrupt"
	case EvInterruptEnd:
		return "interruptend"
	case EvConcretize:
		return "concretize"
	case EvBug:
		return "bug"
	case EvAltFork:
		return "altfork"
	case EvDevice:
		return "device"
	default:
		return "event"
	}
}

// Event is one trace record. Fields are used according to Kind.
type Event struct {
	Kind   EventKind
	Seq    uint64 // instruction count at the event
	PC     uint32
	Addr   uint32     // EvMem: accessed address
	Size   uint8      // EvMem: access width
	Write  bool       // EvMem
	Val    *expr.Expr // EvMem value, EvConcretize chosen value
	Sym    expr.SymID // EvNewSym, EvConcretize
	Cond   *expr.Expr // EvBranch condition (in taken form)
	Taken  bool       // EvBranch
	Forked bool       // EvBranch: did execution fork here
	Name   string     // EvAPICall/EvEntry/EvBug identifier
}

// TraceNode is one segment of a path trace. Nodes form a tree mirroring the
// execution-state tree: forking a state starts a new node whose parent is
// the fork point, so common prefixes are stored once (the same chained
// structure the paper uses to reconstruct the execution tree, §3.5).
type TraceNode struct {
	parent *TraceNode
	events []Event
}

// Append records an event in this node.
func (t *TraceNode) Append(ev Event) {
	t.events = append(t.events, ev)
}

// Parent returns the fork-parent node, or nil at the root.
func (t *TraceNode) Parent() *TraceNode { return t.parent }

// Local returns the events recorded in this node only.
func (t *TraceNode) Local() []Event { return t.events }

// Path returns the full event sequence from the root to this node,
// unwinding the chain (the paper's trace reconstruction).
func (t *TraceNode) Path() []Event {
	var chain []*TraceNode
	for n := t; n != nil; n = n.parent {
		chain = append(chain, n)
	}
	var out []Event
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].events...)
	}
	return out
}

// Len returns the total number of events on the path to this node.
func (t *TraceNode) Len() int {
	n := 0
	for node := t; node != nil; node = node.parent {
		n += len(node.events)
	}
	return n
}
