package vm

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// PageSize is the granularity of copy-on-write memory sharing.
const PageSize = 4096

// page holds one page of guest memory: a concrete byte array plus a sparse
// overlay of symbolic bytes. A nil sym map means the page is fully concrete.
type page struct {
	data [PageSize]byte
	sym  map[uint16]*expr.Expr
}

func (p *page) clone() *page {
	np := &page{data: p.data}
	if len(p.sym) > 0 {
		np.sym = make(map[uint16]*expr.Expr, len(p.sym))
		for k, v := range p.sym {
			np.sym[k] = v
		}
	}
	return np
}

// readByte returns the symbolic expression for one byte.
func (p *page) readByte(off uint16) *expr.Expr {
	if p.sym != nil {
		if e, ok := p.sym[off]; ok {
			return e
		}
	}
	return expr.Const(uint32(p.data[off]))
}

// writeByte stores a byte-valued expression.
func (p *page) writeByte(off uint16, e *expr.Expr) {
	if e.IsConst() {
		p.data[off] = byte(e.ConstVal())
		if p.sym != nil {
			delete(p.sym, off)
		}
		return
	}
	if p.sym == nil {
		p.sym = make(map[uint16]*expr.Expr)
	}
	p.sym[off] = e
}

// Memory is a chained copy-on-write address space, the paper's §4.1.3
// optimization: forking a state pushes an empty overlay whose reads fall
// through to the parent; writes always land in the leaf. Reads resolved
// from ancestors are cached in the leaf's read cache to avoid walking long
// chains (the paper's "cache each resolved read in the leaf state").
type Memory struct {
	parent *Memory
	pages  map[uint32]*page // pageIndex -> locally owned page
	cache  map[uint32]*page // pageIndex -> resolved ancestor page (read-only)
	depth  int
	kids   atomic.Int32 // overlays forked off this one; gates Retire
}

// pageMapPool recycles the small page/cache maps every overlay allocates.
// The fuzz executor forks and discards thousands of short-lived overlays
// per second; pooling the maps keeps that churn off the allocator. Maps are
// cleared on put so a pooled map is indistinguishable from a fresh one.
var pageMapPool = sync.Pool{
	New: func() any { return make(map[uint32]*page) },
}

func newPageMap() map[uint32]*page {
	return pageMapPool.Get().(map[uint32]*page)
}

func putPageMap(m map[uint32]*page) {
	clear(m)
	pageMapPool.Put(m)
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: newPageMap()}
}

// Fork pushes a new copy-on-write overlay and returns it. The receiver must
// be treated as immutable afterwards (the exerciser enforces this: parents
// are never re-executed directly, only their forked children).
func (m *Memory) Fork() *Memory {
	m.kids.Add(1)
	return &Memory{parent: m, pages: newPageMap(), depth: m.depth + 1}
}

// Retire recycles the overlay's maps into the shared pool. Only a leaf may
// retire: an overlay that ever forked a child (kids > 0) stays intact, since
// descendants resolve reads through it (and may hold its pages in their
// caches — the pages themselves are never pooled, only the maps). After
// Retire the memory must not be used again; writes will panic on the nil
// page map, which makes a use-after-retire loud instead of corrupting a
// pooled map.
func (m *Memory) Retire() {
	if m == nil || m.kids.Load() != 0 {
		return
	}
	if m.pages != nil {
		putPageMap(m.pages)
		m.pages = nil
	}
	if m.cache != nil {
		putPageMap(m.cache)
		m.cache = nil
	}
}

// Depth returns the length of the overlay chain, for memory accounting
// benchmarks.
func (m *Memory) Depth() int { return m.depth }

// LocalPages returns the number of pages owned by this overlay alone.
func (m *Memory) LocalPages() int { return len(m.pages) }

// lookup finds the page from the nearest overlay, without copying.
func (m *Memory) lookup(idx uint32) *page {
	if p, ok := m.pages[idx]; ok {
		return p
	}
	if m.cache != nil {
		if p, ok := m.cache[idx]; ok {
			return p
		}
	}
	for anc := m.parent; anc != nil; anc = anc.parent {
		if p, ok := anc.pages[idx]; ok {
			if m.cache == nil {
				m.cache = newPageMap()
			}
			m.cache[idx] = p
			return p
		}
	}
	return nil
}

// pageForWrite returns a locally owned page, copying the nearest ancestor
// version on first write (or materializing a zero page for untouched
// memory — guest physical memory is zero-filled).
func (m *Memory) pageForWrite(idx uint32) *page {
	if p, ok := m.pages[idx]; ok {
		return p
	}
	var np *page
	if anc := m.lookup(idx); anc != nil {
		np = anc.clone()
	} else {
		np = &page{}
	}
	m.pages[idx] = np
	if m.cache != nil {
		delete(m.cache, idx)
	}
	return np
}

// LoadByte returns the expression stored at addr.
func (m *Memory) LoadByte(addr uint32) *expr.Expr {
	p := m.lookup(addr >> 12)
	if p == nil {
		return expr.Const(0)
	}
	return p.readByte(uint16(addr & 0xFFF))
}

// StoreByte stores a byte-valued expression at addr.
func (m *Memory) StoreByte(addr uint32, e *expr.Expr) {
	p := m.pageForWrite(addr >> 12)
	p.writeByte(uint16(addr&0xFFF), e)
}

// Read returns the little-endian value of size bytes at addr as a single
// expression. size must be 1, 2 or 4.
func (m *Memory) Read(addr uint32, size uint32) *expr.Expr {
	switch size {
	case 1:
		return m.LoadByte(addr)
	case 2:
		if off := addr & 0xFFF; off <= PageSize-2 {
			if p := m.lookup(addr >> 12); p == nil {
				return expr.Const(0)
			} else if len(p.sym) == 0 {
				// Fully concrete page: assemble the word directly. This is
				// exactly what the Or/Shl constant folds below produce, one
				// interned Const instead of a chain of intermediate nodes.
				return expr.Const(uint32(p.data[off]) | uint32(p.data[off+1])<<8)
			}
		}
		b0 := m.LoadByte(addr)
		b1 := m.LoadByte(addr + 1)
		return expr.Or(b0, expr.Shl(b1, expr.Const(8)))
	case 4:
		if off := addr & 0xFFF; off <= PageSize-4 {
			if p := m.lookup(addr >> 12); p == nil {
				return expr.Const(0)
			} else if len(p.sym) == 0 {
				return expr.Const(uint32(p.data[off]) | uint32(p.data[off+1])<<8 |
					uint32(p.data[off+2])<<16 | uint32(p.data[off+3])<<24)
			}
		}
		return expr.ConcatBytes(
			m.LoadByte(addr), m.LoadByte(addr+1), m.LoadByte(addr+2), m.LoadByte(addr+3))
	}
	panic("vm: bad read size")
}

// Write stores the low size bytes of e at addr, little-endian.
func (m *Memory) Write(addr uint32, size uint32, e *expr.Expr) {
	switch size {
	case 1:
		m.StoreByte(addr, expr.ZeroExt8(e))
	case 2:
		m.StoreByte(addr, expr.ZeroExt8(e))
		m.StoreByte(addr+1, expr.ExtractByte(e, 1))
	case 4:
		m.StoreByte(addr, expr.ZeroExt8(e))
		m.StoreByte(addr+1, expr.ExtractByte(e, 1))
		m.StoreByte(addr+2, expr.ExtractByte(e, 2))
		m.StoreByte(addr+3, expr.ExtractByte(e, 3))
	default:
		panic("vm: bad write size")
	}
}

// WriteBytes copies concrete bytes into memory (used by the loader and the
// kernel when marshalling structures into guest space).
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for len(b) > 0 {
		idx := addr >> 12
		off := addr & 0xFFF
		n := PageSize - off
		if n > uint32(len(b)) {
			n = uint32(len(b))
		}
		p := m.pageForWrite(idx)
		copy(p.data[off:off+n], b[:n])
		if p.sym != nil {
			for i := uint32(0); i < n; i++ {
				delete(p.sym, uint16(off+i))
			}
		}
		addr += n
		b = b[n:]
	}
}

// ReadBytesConcrete copies size bytes into a fresh slice, requiring every
// byte to be concrete; it reports ok=false if any byte is symbolic.
func (m *Memory) ReadBytesConcrete(addr uint32, size uint32) ([]byte, bool) {
	out := make([]byte, size)
	for i := uint32(0); i < size; i++ {
		e := m.LoadByte(addr + i)
		if !e.IsConst() {
			return nil, false
		}
		out[i] = byte(e.ConstVal())
	}
	return out, true
}

// ReadCString reads a NUL-terminated concrete string of at most max bytes.
func (m *Memory) ReadCString(addr uint32, max int) (string, bool) {
	var b []byte
	for i := 0; i < max; i++ {
		e := m.LoadByte(addr + uint32(i))
		if !e.IsConst() {
			return "", false
		}
		c := byte(e.ConstVal())
		if c == 0 {
			return string(b), true
		}
		b = append(b, c)
	}
	return "", false
}

// SymbolicByteCount returns how many bytes in the local overlay are
// symbolic; used by memory-accounting benchmarks.
func (m *Memory) SymbolicByteCount() int {
	n := 0
	for _, p := range m.pages {
		n += len(p.sym)
	}
	return n
}
