package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// TestQuickMemoryReadWriteConsistency: for any sequence of concrete writes,
// a read observes the most recent write to each byte, across arbitrary
// sizes and overlaps.
func TestQuickMemoryReadWriteConsistency(t *testing.T) {
	type op struct {
		addr uint32
		size uint32
		val  uint32
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := NewMemory()
		shadow := map[uint32]byte{}
		base := uint32(0x10000)
		for i := 0; i < 64; i++ {
			o := op{
				addr: base + uint32(r.Intn(256)),
				size: []uint32{1, 2, 4}[r.Intn(3)],
				val:  r.Uint32(),
			}
			mem.Write(o.addr, o.size, expr.Const(o.val))
			for b := uint32(0); b < o.size; b++ {
				shadow[o.addr+b] = byte(o.val >> (8 * b))
			}
			// Random read-back check.
			ra := base + uint32(r.Intn(256))
			rs := []uint32{1, 2, 4}[r.Intn(3)]
			got := mem.Read(ra, rs)
			if !got.IsConst() {
				return false
			}
			var want uint32
			for b := uint32(0); b < rs; b++ {
				want |= uint32(shadow[ra+b]) << (8 * b)
			}
			if got.ConstVal() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForkIsolationProperty: after forking, writes to any of the
// sibling overlays never become visible to the others or the parent.
func TestQuickForkIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		parent := NewMemory()
		addrs := make([]uint32, 0, 16)
		seen := map[uint32]bool{}
		for len(addrs) < 16 {
			a := 0x20000 + uint32(r.Intn(8))*PageSize + uint32(r.Intn(64))*4
			if seen[a] {
				continue
			}
			seen[a] = true
			addrs = append(addrs, a)
		}
		for i, a := range addrs {
			parent.Write(a, 4, expr.Const(uint32(i)+1))
		}
		a := parent.Fork()
		b := parent.Fork()
		for i, addr := range addrs {
			if i%2 == 0 {
				a.Write(addr, 4, expr.Const(0xAAAAAAAA))
			} else {
				b.Write(addr, 4, expr.Const(0xBBBBBBBB))
			}
		}
		for i, addr := range addrs {
			pv := parent.Read(addr, 4).ConstVal()
			av := a.Read(addr, 4).ConstVal()
			bv := b.Read(addr, 4).ConstVal()
			if pv != uint32(i)+1 {
				return false
			}
			if i%2 == 0 {
				if av != 0xAAAAAAAA || bv != uint32(i)+1 {
					return false
				}
			} else {
				if bv != 0xBBBBBBBB || av != uint32(i)+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSymbolicStoreLoad: storing any expression and loading it back is
// value-preserving under every assignment (byte-splitting round trip).
func TestQuickSymbolicStoreLoad(t *testing.T) {
	tab := expr.NewSymbolTable()
	x := tab.Fresh("x", expr.OriginHardware, 0, 0)
	y := tab.Fresh("y", expr.OriginPacket, 0, 0)
	exprs := []*expr.Expr{
		x,
		expr.Add(x, y),
		expr.Xor(expr.Shl(x, expr.Const(3)), y),
		expr.Ite(expr.ULt(x, y), x, y),
	}
	f := func(xv, yv uint32, which uint8, size uint8) bool {
		e := exprs[int(which)%len(exprs)]
		sz := []uint32{1, 2, 4}[int(size)%3]
		mem := NewMemory()
		mem.Write(0x30000, sz, e)
		back := mem.Read(0x30000, sz)
		a := expr.Assignment{x.Sym: xv, y.Sym: yv}
		mask := uint32(0xFFFFFFFF)
		if sz < 4 {
			mask = 1<<(8*sz) - 1
		}
		return expr.Eval(back, a) == expr.Eval(e, a)&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStateForkRegisterIsolation: register mutations after a fork stay
// local to the mutating state.
func TestQuickStateForkRegisterIsolation(t *testing.T) {
	f := func(vals [8]uint32) bool {
		s := NewState(1)
		for i, v := range vals {
			s.SetReg(uint8(i), expr.Const(v))
		}
		c := s.Fork(2)
		c.SetReg(0, expr.Const(0xDEAD))
		s.SetReg(1, expr.Const(0xBEEF))
		pv, _ := s.RegConcrete(0)
		cv, _ := c.RegConcrete(1)
		return pv == vals[0] && cv == vals[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestForkConstraintIsolation: constraints appended after a fork never leak
// into siblings (the slice three-index trick).
func TestForkConstraintIsolation(t *testing.T) {
	tab := expr.NewSymbolTable()
	x := tab.Fresh("x", expr.OriginArgument, 0, 0)
	s := NewState(1)
	s.AddConstraint(expr.ULt(x, expr.Const(100)))
	a := s.Fork(2)
	b := s.Fork(3)
	a.AddConstraint(expr.Eq(x, expr.Const(1)))
	b.AddConstraint(expr.Eq(x, expr.Const(2)))
	if len(a.Constraints) != 2 || len(b.Constraints) != 2 {
		t.Fatalf("lens: %d %d", len(a.Constraints), len(b.Constraints))
	}
	if expr.Equal(a.Constraints[1], b.Constraints[1]) {
		t.Error("constraint leaked between siblings")
	}
}

// TestTraceForkIsolationAfterParentContinues: the COW regression that once
// leaked parent writes into annotation-forked children (the fixed-variant
// false positive) — pinned as a property.
func TestTraceForkIsolationAfterParentContinues(t *testing.T) {
	s := NewState(1)
	s.Mem.Write(0x5000, 4, expr.Const(0))
	child := s.Fork(2)
	// Parent RESUMES and writes after the fork.
	s.Mem.Write(0x5000, 4, expr.Const(1))
	s.Trace.Append(Event{Kind: EvBlock, PC: 0x999})
	if v := child.Mem.Read(0x5000, 4).ConstVal(); v != 0 {
		t.Errorf("parent write leaked into child: %d", v)
	}
	for _, ev := range child.Trace.Path() {
		if ev.PC == 0x999 {
			t.Error("parent trace event leaked into child")
		}
	}
}
