package vm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
)

// Fault is a bug condition raised on an execution path, either by the VM
// itself (wild jumps, invalid instructions) or by a registered checker
// vetoing an access. The engine converts faults into bug reports carrying
// the path trace.
type Fault struct {
	Class string // e.g. "memory", "spinlock", "irql", "crash", "leak", "loop"
	Msg   string
	PC    uint32
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s fault at pc=%#x: %s", f.Class, f.PC, f.Msg)
}

// Faultf builds a Fault.
func Faultf(class string, pc uint32, format string, args ...any) *Fault {
	return &Fault{Class: class, PC: pc, Msg: fmt.Sprintf(format, args...)}
}

// Machine interprets d32 driver code symbolically. The driver text runs in
// the symbolic domain; CALLs into the import trap window cross to the
// concrete domain (the simulated kernel) via the APICall hook — the
// selective-symbolic-execution boundary.
//
// A Machine is the *shared* half of the interpreter: the decoded image, the
// symbol table, and the hook wiring, all of which are immutable once
// execution starts, plus fleet-wide statistics kept as atomics. The mutable
// per-worker half is ExecContext: parallel exploration runs one ExecContext
// (with its own Solver) per worker against a single Machine. The Machine's
// own Step/Run/Concretize methods delegate to a default root context, so
// single-threaded users never see the split.
//
// All hooks are optional except APICall (required once the driver calls an
// import). Hooks must be wired before execution begins; during a parallel
// run they are invoked concurrently from every worker, so any state they
// touch beyond the *State they are handed must be thread-safe.
type Machine struct {
	Img    *binimg.Image
	Syms   *expr.SymbolTable
	Solver *solver.Solver // the root context's solver

	// APICall dispatches an import-table call. It may modify s, fork it
	// (returning extra runnable states), or raise a Fault.
	APICall func(s *State, slot int) ([]*State, error)

	// Symbolic-hardware hooks: MMIO window and port I/O.
	ReadDevice  func(s *State, addr uint32, size uint32) *expr.Expr
	WriteDevice func(s *State, addr uint32, size uint32, v *expr.Expr)
	ReadPort    func(s *State, port uint32) *expr.Expr
	WritePort   func(s *State, port uint32, v *expr.Expr)

	// OnMemAccess is consulted for every driver load/store outside the MMIO
	// window. A non-nil error fails the path with a bug.
	OnMemAccess func(s *State, pc, addr, size uint32, write bool, v *expr.Expr) error

	// PinAddress chooses the concrete value for a symbolic effective
	// address. DDT's memory checker installs an adversarial pinner that
	// prefers values proving an out-of-bounds access feasible (the Klee
	// behaviour of checking a symbolic pointer against all objects). When
	// nil, addresses concretize like any other value.
	PinAddress func(s *State, addr *expr.Expr, size uint32, write bool) (uint32, bool)

	// OnBlock is invoked when execution enters a basic block (coverage).
	OnBlock func(s *State, pc uint32)

	// OnFork is invoked after a branch fork with both children.
	OnFork func(parent *State, children []*State, cond *expr.Expr)

	// OnInterruptReturn is invoked after an injected interrupt context is
	// popped (the kernel restores the pre-interrupt IRQL here).
	OnInterruptReturn func(s *State)

	instrs    []isa.Instr
	decodeErr []error
	nextID    atomic.Uint64

	// Stats, shared across every ExecContext of this machine.
	Steps    atomic.Uint64
	Forks    atomic.Uint64
	SymReads atomic.Uint64
	APICalls atomic.Uint64

	root *ExecContext
}

// ExecContext is one worker's execution context: the step loop plus the
// worker-private solver. Contexts of the same Machine share the image,
// hooks, symbol table, and statistics; they do NOT share solver scratch
// (probe RNG, per-solver stats), so each worker decides branch feasibility
// and concretizations independently — typically against one shared
// thread-safe query cache (solver.NewWithCache).
//
// A context may only step one state at a time; a state is bound to the
// context stepping it so hooks and kernel code reached from inside the step
// (which only see the *State) can route solver work to the right worker.
type ExecContext struct {
	M      *Machine
	Solver *solver.Solver
}

// NewMachine decodes the image and prepares an interpreter.
func NewMachine(img *binimg.Image, syms *expr.SymbolTable, sol *solver.Solver) *Machine {
	n := len(img.Text) / isa.InstrSize
	m := &Machine{
		Img:       img,
		Syms:      syms,
		Solver:    sol,
		instrs:    make([]isa.Instr, n),
		decodeErr: make([]error, n),
	}
	for i := 0; i < n; i++ {
		m.instrs[i], m.decodeErr[i] = isa.Decode(img.Text[i*isa.InstrSize:])
	}
	m.root = &ExecContext{M: m, Solver: sol}
	return m
}

// NewContext returns a fresh per-worker execution context. A nil solver
// shares the machine's root solver (only valid for sequential use).
func (m *Machine) NewContext(sol *solver.Solver) *ExecContext {
	if sol == nil {
		sol = m.Solver
	}
	return &ExecContext{M: m, Solver: sol}
}

// ctxOf returns the context a state is currently bound to, defaulting to
// the machine's root context. Kernel and checker code that only holds the
// Machine routes through this, so per-worker solvers are honoured even for
// calls made from inside hooks.
func (m *Machine) ctxOf(s *State) *ExecContext {
	if s != nil && s.ctx != nil {
		return s.ctx
	}
	return m.root
}

// SolverFor returns the solver responsible for s: the solver of the worker
// context currently executing it, or the machine's root solver.
func (m *Machine) SolverFor(s *State) *solver.Solver {
	return m.ctxOf(s).Solver
}

// NewRootState allocates the initial state with the image loaded.
func (m *Machine) NewRootState() *State {
	s := NewState(m.newID())
	s.Mem.WriteBytes(isa.ImageBase, m.Img.Text)
	s.Mem.WriteBytes(m.Img.DataBase(), m.Img.Data)
	// bss is implicitly zero.
	return s
}

func (m *Machine) newID() uint64 {
	return m.nextID.Add(1)
}

// ForkState clones s with a fresh ID (used by kernel annotations that fork
// over alternative API results). Safe to call from any worker.
func (m *Machine) ForkState(s *State) *State {
	m.Forks.Add(1)
	return s.Fork(m.newID())
}

// SnapshotState freezes a deep snapshot of s mid-run and returns it. The
// running state continues on a fresh COW overlay, exactly as after a Fork;
// the snapshot is never stepped — it exists to serve ResumeState children.
// Unlike ForkState it does not count toward the fork statistics (a snapshot
// is a replay optimization, not an explored branch), and the snapshot keeps
// the path's loop accounting so resumed children replay exactly as the
// original path would have continued.
func (m *Machine) SnapshotState(s *State) *State {
	snap := s.Fork(m.newID())
	snap.LoopCounts = s.loopCountsCopy()
	return snap
}

// ResumeState clones a frozen snapshot into a fresh runnable state. The
// snapshot itself is not mutated, so any number of executions can resume
// from it without deepening its overlay chain (State.ForkFrozen).
func (m *Machine) ResumeState(snap *State) *State {
	return snap.ForkFrozen(m.newID())
}

// inText reports whether pc addresses a decoded instruction.
func (m *Machine) inText(pc uint32) bool {
	return pc >= isa.ImageBase && pc < isa.ImageBase+uint32(len(m.instrs))*isa.InstrSize &&
		(pc-isa.ImageBase)%isa.InstrSize == 0
}

// Concretize pins a symbolic expression to a concrete value consistent with
// the path constraints, routing solver work to the context bound to s.
func (m *Machine) Concretize(s *State, e *expr.Expr, what string) (uint32, error) {
	return m.ctxOf(s).Concretize(s, e, what)
}

// Concretize pins a symbolic expression to a concrete value consistent with
// the path constraints, records the concretization (so traces can explain
// it and replays reproduce it), and adds the equality constraint. This is
// the paper's on-demand concretization at the symbolic/concrete boundary.
func (c *ExecContext) Concretize(s *State, e *expr.Expr, what string) (uint32, error) {
	if e.IsConst() {
		return e.ConstVal(), nil
	}
	model := c.Solver.Model(s.Constraints)
	if model == nil && len(s.Constraints) > 0 {
		return 0, Faultf("engine", s.PC, "cannot concretize %s: path constraints unsolvable", what)
	}
	val := expr.Eval(e, model)
	s.AddConstraint(expr.Eq(e, expr.Const(val)))
	s.Trace.Append(Event{
		Kind: EvConcretize, Seq: s.ICount, PC: s.PC,
		Val: expr.Const(val), Name: what,
	})
	return val, nil
}

// blockStart is kept per state in Meta to know when to emit block events.
const metaBlockStart = "block_start"

// MarkBlockStart flags that the next step of s begins a basic block
// (entry-point invocation, branch target, post-call resumption).
func (m *Machine) MarkBlockStart(s *State) {
	if s.Meta == nil {
		s.Meta = make(map[string]uint64)
	}
	s.Meta[metaBlockStart] = 1
}

func (m *Machine) enterBlock(s *State) {
	s.Trace.Append(Event{Kind: EvBlock, Seq: s.ICount, PC: s.PC})
	if m.OnBlock != nil {
		m.OnBlock(s, s.PC)
	}
	if s.Meta != nil {
		delete(s.Meta, metaBlockStart)
	}
}

// Step executes one instruction of s under the machine's root context (or
// the context s is already bound to). Parallel workers call
// ExecContext.Step directly instead.
func (m *Machine) Step(s *State) ([]*State, error) {
	return m.ctxOf(s).Step(s)
}

// Step executes one instruction of s and returns the runnable successor
// states. Usually that is s itself; a symbolic branch returns two forked
// children (s is retired); termination returns none, with s.Status and, for
// bugs, the returned Fault explaining why.
//
// A fault left pending on the state by a hook (State.PendFault, e.g. the
// loop checker firing from OnBlock) is surfaced before anything else runs,
// so the fault stays attributed to the exact state that raised it however
// the scheduler interleaves paths.
func (c *ExecContext) Step(s *State) ([]*State, error) {
	if s.Status != StatusRunning {
		return nil, nil
	}
	s.ctx = c
	if f := s.PendFault; f != nil {
		s.PendFault = nil
		s.Status = StatusBug
		return nil, f
	}
	m := c.M
	m.Steps.Add(1)

	// Magic return addresses.
	switch s.PC {
	case ExitAddr:
		s.Status = StatusExited
		s.Trace.Append(Event{Kind: EvEntryDone, Seq: s.ICount, Name: s.EntryName})
		return nil, nil
	case IntrRetAddr:
		if !s.PopInterrupt() {
			s.Status = StatusBug
			return nil, Faultf("memory", s.PC, "return to interrupt context with no active interrupt")
		}
		s.Trace.Append(Event{Kind: EvInterruptEnd, Seq: s.ICount})
		if m.OnInterruptReturn != nil {
			m.OnInterruptReturn(s)
		}
		m.MarkBlockStart(s)
		return []*State{s}, nil
	}

	if !m.inText(s.PC) {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "execution outside driver text (wild jump)")
	}
	idx := (s.PC - isa.ImageBase) / isa.InstrSize
	if err := m.decodeErr[idx]; err != nil {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "invalid instruction: %v", err)
	}

	if s.Meta != nil && s.Meta[metaBlockStart] == 1 {
		m.enterBlock(s)
	}

	in := m.instrs[idx]
	s.ICount++
	return c.exec(s, in)
}

// Run steps s until the path stops or maxSteps instructions execute, under
// the machine's root context.
func (m *Machine) Run(s *State, maxSteps uint64) (final *State, forked []*State, fault error) {
	return m.ctxOf(s).Run(s, maxSteps)
}

// Run steps s until the path stops or maxSteps instructions execute,
// following the first successor at every fork. It returns the state the
// path ended on (which may differ from s after forks), the sibling states
// produced by forks (for a scheduler to explore), and the Fault if the path
// ended in a bug.
func (c *ExecContext) Run(s *State, maxSteps uint64) (final *State, forked []*State, fault error) {
	start := s.ICount
	cur := s
	for cur.Status == StatusRunning {
		if cur.ICount-start >= maxSteps {
			cur.Status = StatusKilled
			return cur, forked, nil
		}
		next, err := c.Step(cur)
		if err != nil {
			return cur, forked, err
		}
		switch len(next) {
		case 0:
			return cur, forked, nil
		case 1:
			cur = next[0]
		default:
			forked = append(forked, next[1:]...)
			cur = next[0]
		}
	}
	return cur, forked, nil
}
