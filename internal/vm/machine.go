package vm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
)

// Fault is a bug condition raised on an execution path, either by the VM
// itself (wild jumps, invalid instructions) or by a registered checker
// vetoing an access. The engine converts faults into bug reports carrying
// the path trace.
type Fault struct {
	Class string // e.g. "memory", "spinlock", "irql", "crash", "leak", "loop"
	Msg   string
	PC    uint32
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s fault at pc=%#x: %s", f.Class, f.PC, f.Msg)
}

// Faultf builds a Fault.
func Faultf(class string, pc uint32, format string, args ...any) *Fault {
	return &Fault{Class: class, PC: pc, Msg: fmt.Sprintf(format, args...)}
}

// Machine interprets d32 driver code symbolically. The driver text runs in
// the symbolic domain; CALLs into the import trap window cross to the
// concrete domain (the simulated kernel) via the APICall hook — the
// selective-symbolic-execution boundary.
//
// A Machine is the *shared* half of the interpreter: the decoded image, the
// symbol table, and the hook wiring, all of which are immutable once
// execution starts, plus fleet-wide statistics kept as atomics. The mutable
// per-worker half is ExecContext: parallel exploration runs one ExecContext
// (with its own Solver) per worker against a single Machine. The Machine's
// own Step/Run/Concretize methods delegate to a default root context, so
// single-threaded users never see the split.
//
// All hooks are optional except APICall (required once the driver calls an
// import). Hooks must be wired before execution begins; during a parallel
// run they are invoked concurrently from every worker, so any state they
// touch beyond the *State they are handed must be thread-safe.
type Machine struct {
	Img    *binimg.Image
	Syms   *expr.SymbolTable
	Solver *solver.Solver // the root context's solver

	// APICall dispatches an import-table call. It may modify s, fork it
	// (returning extra runnable states), or raise a Fault.
	APICall func(s *State, slot int) ([]*State, error)

	// Symbolic-hardware hooks: MMIO window and port I/O.
	ReadDevice  func(s *State, addr uint32, size uint32) *expr.Expr
	WriteDevice func(s *State, addr uint32, size uint32, v *expr.Expr)
	ReadPort    func(s *State, port uint32) *expr.Expr
	WritePort   func(s *State, port uint32, v *expr.Expr)

	// OnMemAccess is consulted for every driver load/store outside the MMIO
	// window. A non-nil error fails the path with a bug.
	OnMemAccess func(s *State, pc, addr, size uint32, write bool, v *expr.Expr) error

	// PinAddress chooses the concrete value for a symbolic effective
	// address. DDT's memory checker installs an adversarial pinner that
	// prefers values proving an out-of-bounds access feasible (the Klee
	// behaviour of checking a symbolic pointer against all objects). When
	// nil, addresses concretize like any other value.
	PinAddress func(s *State, addr *expr.Expr, size uint32, write bool) (uint32, bool)

	// OnBlock is invoked when execution enters a basic block (coverage).
	OnBlock func(s *State, pc uint32)

	// OnFork is invoked after a branch fork with both children.
	OnFork func(parent *State, children []*State, cond *expr.Expr)

	// OnInterruptReturn is invoked after an injected interrupt context is
	// popped (the kernel restores the pre-interrupt IRQL here).
	OnInterruptReturn func(s *State)

	// DisableSuperblocks forces per-instruction dispatch even when a
	// caller steps with a budget (StepSpan). Used by the bit-identity
	// suites and benchmarks to compare the two paths; semantics must be
	// identical either way.
	DisableSuperblocks bool

	// DisableCompiledSpans makes runSpan dispatch through the fastExec
	// switch (re-decoding each instruction per visit) instead of the
	// pre-lowered micro-op table. Both paths are instruction-exact; the
	// bit-identity suites run them against each other.
	DisableCompiledSpans bool

	// DisableTrace starts root states with a nil trace chain, so no trace
	// events are recorded or allocated anywhere on the path (TraceNode
	// methods are nil-safe). Execution semantics are unaffected — a trace
	// is pure observation — which is what lets the fuzz executor run
	// trace-free by default and rematerialize a chain by exact
	// re-execution with tracing on (fuzz.Options.LazyTrace).
	DisableTrace bool

	instrs    []isa.Instr
	decodeErr []error

	// uops[i] is the pre-lowered span micro-op for instruction i: the
	// compiled form of the fastExec dispatch decision, computed once from
	// the immutable image and shared read-only by every worker.
	uops []uop

	// spanLen[i] is the length of the straight-line span starting at
	// instruction index i: the number of consecutive validly-decoded,
	// non-control-flow instructions from i before the next branch, jump,
	// call, return, HLT, or decode error. Derived once from the immutable
	// decoded image in NewMachine and shared read-only by every worker.
	// A span never contains a block entry past its first instruction, so
	// the fast path (runSpan) owes hooks nothing until it ends or bails.
	spanLen []uint32

	nextID atomic.Uint64

	// Stats, shared across every ExecContext of this machine.
	Steps    atomic.Uint64
	Forks    atomic.Uint64
	SymReads atomic.Uint64
	APICalls atomic.Uint64

	root *ExecContext
}

// ExecContext is one worker's execution context: the step loop plus the
// worker-private solver. Contexts of the same Machine share the image,
// hooks, symbol table, and statistics; they do NOT share solver scratch
// (probe RNG, per-solver stats), so each worker decides branch feasibility
// and concretizations independently — typically against one shared
// thread-safe query cache (solver.NewWithCache).
//
// A context may only step one state at a time; a state is bound to the
// context stepping it so hooks and kernel code reached from inside the step
// (which only see the *State) can route solver work to the right worker.
type ExecContext struct {
	M      *Machine
	Solver *solver.Solver

	// pendSteps/pendForks batch the machine-wide atomic counters: the step
	// loop bumps these worker-local fields and flushStats publishes them at
	// every step/span boundary, so the shared cache line is touched once
	// per dispatch instead of once per instruction. Observers that read
	// Machine.Steps from inside a step (the OnBlock coverage clocks) are
	// flushed-to explicitly before the hook fires, so the published value
	// is always exact at every observation point.
	pendSteps uint64
	pendForks uint64
}

// flushStats publishes the context's batched counter deltas to the shared
// machine atomics. Exact-count observation points (hook entry, step return)
// must call this first.
func (c *ExecContext) flushStats() {
	if c.pendSteps != 0 {
		c.M.Steps.Add(c.pendSteps)
		c.pendSteps = 0
	}
	if c.pendForks != 0 {
		c.M.Forks.Add(c.pendForks)
		c.pendForks = 0
	}
}

// NewMachine decodes the image and prepares an interpreter.
func NewMachine(img *binimg.Image, syms *expr.SymbolTable, sol *solver.Solver) *Machine {
	n := len(img.Text) / isa.InstrSize
	m := &Machine{
		Img:       img,
		Syms:      syms,
		Solver:    sol,
		instrs:    make([]isa.Instr, n),
		decodeErr: make([]error, n),
	}
	for i := 0; i < n; i++ {
		m.instrs[i], m.decodeErr[i] = isa.Decode(img.Text[i*isa.InstrSize:])
	}
	// Straight-line span table, computed backwards in one pass: an
	// instruction extends the span of its successor unless it ends a block
	// itself. Control flow (branches, JMP/JR, CALL/CALLR, RET, HLT) and
	// undecodable slots get length 0 and always take the general path.
	m.spanLen = make([]uint32, n)
	for i := n - 1; i >= 0; i-- {
		if m.decodeErr[i] != nil || m.instrs[i].Op.IsControlFlow() {
			continue
		}
		if i == n-1 {
			m.spanLen[i] = 1
		} else {
			m.spanLen[i] = m.spanLen[i+1] + 1
		}
	}
	m.uops = make([]uop, n)
	for i := 0; i < n; i++ {
		if m.decodeErr[i] != nil {
			m.uops[i] = uop{fn: uopGeneral}
			continue
		}
		m.uops[i] = lowerUop(&m.instrs[i])
	}
	m.root = &ExecContext{M: m, Solver: sol}
	return m
}

// NewContext returns a fresh per-worker execution context. A nil solver
// shares the machine's root solver (only valid for sequential use).
func (m *Machine) NewContext(sol *solver.Solver) *ExecContext {
	if sol == nil {
		sol = m.Solver
	}
	return &ExecContext{M: m, Solver: sol}
}

// ctxOf returns the context a state is currently bound to, defaulting to
// the machine's root context. Kernel and checker code that only holds the
// Machine routes through this, so per-worker solvers are honoured even for
// calls made from inside hooks.
func (m *Machine) ctxOf(s *State) *ExecContext {
	if s != nil && s.ctx != nil {
		return s.ctx
	}
	return m.root
}

// SolverFor returns the solver responsible for s: the solver of the worker
// context currently executing it, or the machine's root solver.
func (m *Machine) SolverFor(s *State) *solver.Solver {
	return m.ctxOf(s).Solver
}

// NewRootState allocates the initial state with the image loaded.
func (m *Machine) NewRootState() *State {
	s := NewState(m.newID())
	if m.DisableTrace {
		s.Trace = nil
	}
	s.Mem.WriteBytes(isa.ImageBase, m.Img.Text)
	s.Mem.WriteBytes(m.Img.DataBase(), m.Img.Data)
	// bss is implicitly zero.
	return s
}

func (m *Machine) newID() uint64 {
	return m.nextID.Add(1)
}

// ForkState clones s with a fresh ID (used by kernel annotations that fork
// over alternative API results). Safe to call from any worker.
func (m *Machine) ForkState(s *State) *State {
	// Not batched through ExecContext.pendForks: annotation and invocation
	// forks happen from coordinator threads outside any step dispatch, where
	// no context is guaranteed to flush (or even be exclusively ours).
	m.Forks.Add(1)
	return s.Fork(m.newID())
}

// SnapshotState freezes a deep snapshot of s mid-run and returns it. The
// running state continues on a fresh COW overlay, exactly as after a Fork;
// the snapshot is never stepped — it exists to serve ResumeState children.
// Unlike ForkState it does not count toward the fork statistics (a snapshot
// is a replay optimization, not an explored branch), and the snapshot keeps
// the path's loop accounting so resumed children replay exactly as the
// original path would have continued.
func (m *Machine) SnapshotState(s *State) *State {
	snap := s.Fork(m.newID())
	snap.LoopCounts = s.loopCountsCopy()
	// Freeze the snapshot's trace node now, while capture is still
	// single-threaded: every ForkFrozen resume hangs a child off it, and
	// with a shared fabric those resumes run concurrently — the flag must
	// be set before the snapshot is published, not by the resumers.
	if snap.Trace != nil {
		snap.Trace.frozen = true
	}
	return snap
}

// ResumeState clones a frozen snapshot into a fresh runnable state. The
// snapshot itself is not mutated, so any number of executions can resume
// from it without deepening its overlay chain (State.ForkFrozen). The clone
// is rebound to this machine's root context immediately: the snapshot may
// have been recorded by another executor (shared snapshot fabric), and its
// stale ctx must not route solver work before the first Step rebinds it.
func (m *Machine) ResumeState(snap *State) *State {
	s := snap.ForkFrozen(m.newID())
	s.ctx = m.root
	return s
}

// inText reports whether pc addresses a decoded instruction.
func (m *Machine) inText(pc uint32) bool {
	return pc >= isa.ImageBase && pc < isa.ImageBase+uint32(len(m.instrs))*isa.InstrSize &&
		(pc-isa.ImageBase)%isa.InstrSize == 0
}

// Concretize pins a symbolic expression to a concrete value consistent with
// the path constraints, routing solver work to the context bound to s.
func (m *Machine) Concretize(s *State, e *expr.Expr, what string) (uint32, error) {
	return m.ctxOf(s).Concretize(s, e, what)
}

// Concretize pins a symbolic expression to a concrete value consistent with
// the path constraints, records the concretization (so traces can explain
// it and replays reproduce it), and adds the equality constraint. This is
// the paper's on-demand concretization at the symbolic/concrete boundary.
func (c *ExecContext) Concretize(s *State, e *expr.Expr, what string) (uint32, error) {
	if e.IsConst() {
		return e.ConstVal(), nil
	}
	model := c.Solver.Model(s.Constraints)
	if model == nil && len(s.Constraints) > 0 {
		return 0, Faultf("engine", s.PC, "cannot concretize %s: path constraints unsolvable", what)
	}
	val := expr.Eval(e, model)
	s.AddConstraint(expr.Eq(e, expr.Const(val)))
	s.Trace.Append(Event{
		Kind: EvConcretize, Seq: s.ICount, PC: s.PC,
		Val: expr.Const(val), Name: what,
	})
	return val, nil
}

// MarkBlockStart flags that the next step of s begins a basic block
// (entry-point invocation, branch target, post-call resumption).
func (m *Machine) MarkBlockStart(s *State) {
	s.BlockStart = true
}

func (m *Machine) enterBlock(s *State) {
	s.Trace.Append(Event{Kind: EvBlock, Seq: s.ICount, PC: s.PC})
	if m.OnBlock != nil {
		m.OnBlock(s, s.PC)
	}
	s.BlockStart = false
}

// Step executes one instruction of s under the machine's root context (or
// the context s is already bound to). Parallel workers call
// ExecContext.Step directly instead.
func (m *Machine) Step(s *State) ([]*State, error) {
	return m.ctxOf(s).step(s, 1)
}

// StepSpan is Step with an instruction budget: it may execute up to budget
// instructions in one dispatch when the state sits on a straight-line span
// (see runSpan), under the machine's root context.
func (m *Machine) StepSpan(s *State, budget uint64) ([]*State, error) {
	return m.ctxOf(s).step(s, budget)
}

// Step executes one instruction of s and returns the runnable successor
// states. Usually that is s itself; a symbolic branch returns two forked
// children (s is retired); termination returns none, with s.Status and, for
// bugs, the returned Fault explaining why.
//
// A fault left pending on the state by a hook (State.PendFault, e.g. the
// loop checker firing from OnBlock) is surfaced before anything else runs,
// so the fault stays attributed to the exact state that raised it however
// the scheduler interleaves paths.
func (c *ExecContext) Step(s *State) ([]*State, error) {
	return c.step(s, 1)
}

// StepSpan executes at least one and at most budget instructions of s in a
// single dispatch. Callers that interleave per-instruction work (interrupt
// injection instants, path budgets) pass the distance to their next
// decision point; semantics are bit-identical to calling Step budget times
// with no interleaved work. A budget of 0 is treated as 1.
func (c *ExecContext) StepSpan(s *State, budget uint64) ([]*State, error) {
	return c.step(s, budget)
}

func (c *ExecContext) step(s *State, budget uint64) ([]*State, error) {
	if s.Status != StatusRunning {
		return nil, nil
	}
	s.ctx = c
	if f := s.PendFault; f != nil {
		s.PendFault = nil
		s.Status = StatusBug
		return nil, f
	}
	m := c.M
	c.pendSteps++
	defer c.flushStats()

	// Magic return addresses.
	switch s.PC {
	case ExitAddr:
		s.Status = StatusExited
		s.Trace.Append(Event{Kind: EvEntryDone, Seq: s.ICount, Name: s.EntryName})
		return nil, nil
	case IntrRetAddr:
		if !s.PopInterrupt() {
			s.Status = StatusBug
			return nil, Faultf("memory", s.PC, "return to interrupt context with no active interrupt")
		}
		s.Trace.Append(Event{Kind: EvInterruptEnd, Seq: s.ICount})
		if m.OnInterruptReturn != nil {
			m.OnInterruptReturn(s)
		}
		m.MarkBlockStart(s)
		return []*State{s}, nil
	}

	if !m.inText(s.PC) {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "execution outside driver text (wild jump)")
	}
	idx := (s.PC - isa.ImageBase) / isa.InstrSize
	if err := m.decodeErr[idx]; err != nil {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "invalid instruction: %v", err)
	}

	if s.BlockStart {
		c.flushStats() // OnBlock coverage clocks read Machine.Steps
		m.enterBlock(s)
		if s.PendFault != nil {
			// The block hook raised a fault (loop checker). Per-instruction
			// semantics execute exactly one more instruction before the
			// next dispatch surfaces it — a span must not run past that.
			budget = 1
		}
	}

	if budget > 1 && !m.DisableSuperblocks && m.spanLen[idx] > 1 {
		return c.runSpan(s, idx, budget)
	}

	in := m.instrs[idx]
	s.ICount++
	return c.exec(s, in)
}

// Run steps s until the path stops or maxSteps instructions execute, under
// the machine's root context.
func (m *Machine) Run(s *State, maxSteps uint64) (final *State, forked []*State, fault error) {
	return m.ctxOf(s).Run(s, maxSteps)
}

// Run steps s until the path stops or maxSteps instructions execute,
// following the first successor at every fork. It returns the state the
// path ended on (which may differ from s after forks), the sibling states
// produced by forks (for a scheduler to explore), and the Fault if the path
// ended in a bug.
func (c *ExecContext) Run(s *State, maxSteps uint64) (final *State, forked []*State, fault error) {
	start := s.ICount
	cur := s
	for cur.Status == StatusRunning {
		if cur.ICount-start >= maxSteps {
			cur.Status = StatusKilled
			return cur, forked, nil
		}
		next, err := c.StepSpan(cur, maxSteps-(cur.ICount-start))
		if err != nil {
			return cur, forked, err
		}
		switch len(next) {
		case 0:
			return cur, forked, nil
		case 1:
			cur = next[0]
		default:
			forked = append(forked, next[1:]...)
			cur = next[0]
		}
	}
	return cur, forked, nil
}
