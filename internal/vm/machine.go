package vm

import (
	"fmt"

	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
)

// Fault is a bug condition raised on an execution path, either by the VM
// itself (wild jumps, invalid instructions) or by a registered checker
// vetoing an access. The engine converts faults into bug reports carrying
// the path trace.
type Fault struct {
	Class string // e.g. "memory", "spinlock", "irql", "crash", "leak", "loop"
	Msg   string
	PC    uint32
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s fault at pc=%#x: %s", f.Class, f.PC, f.Msg)
}

// Faultf builds a Fault.
func Faultf(class string, pc uint32, format string, args ...any) *Fault {
	return &Fault{Class: class, PC: pc, Msg: fmt.Sprintf(format, args...)}
}

// Machine interprets d32 driver code symbolically. The driver text runs in
// the symbolic domain; CALLs into the import trap window cross to the
// concrete domain (the simulated kernel) via the APICall hook — the
// selective-symbolic-execution boundary.
//
// All hooks are optional except APICall (required once the driver calls an
// import).
type Machine struct {
	Img    *binimg.Image
	Syms   *expr.SymbolTable
	Solver *solver.Solver

	// APICall dispatches an import-table call. It may modify s, fork it
	// (returning extra runnable states), or raise a Fault.
	APICall func(s *State, slot int) ([]*State, error)

	// Symbolic-hardware hooks: MMIO window and port I/O.
	ReadDevice  func(s *State, addr uint32, size uint32) *expr.Expr
	WriteDevice func(s *State, addr uint32, size uint32, v *expr.Expr)
	ReadPort    func(s *State, port uint32) *expr.Expr
	WritePort   func(s *State, port uint32, v *expr.Expr)

	// OnMemAccess is consulted for every driver load/store outside the MMIO
	// window. A non-nil error fails the path with a bug.
	OnMemAccess func(s *State, pc, addr, size uint32, write bool, v *expr.Expr) error

	// PinAddress chooses the concrete value for a symbolic effective
	// address. DDT's memory checker installs an adversarial pinner that
	// prefers values proving an out-of-bounds access feasible (the Klee
	// behaviour of checking a symbolic pointer against all objects). When
	// nil, addresses concretize like any other value.
	PinAddress func(s *State, addr *expr.Expr, size uint32, write bool) (uint32, bool)

	// OnBlock is invoked when execution enters a basic block (coverage).
	OnBlock func(s *State, pc uint32)

	// OnFork is invoked after a branch fork with both children.
	OnFork func(parent *State, children []*State, cond *expr.Expr)

	// OnInterruptReturn is invoked after an injected interrupt context is
	// popped (the kernel restores the pre-interrupt IRQL here).
	OnInterruptReturn func(s *State)

	instrs    []isa.Instr
	decodeErr []error
	nextID    uint64

	// Stats
	Steps    uint64
	Forks    uint64
	SymReads uint64
	APICalls uint64
}

// NewMachine decodes the image and prepares an interpreter.
func NewMachine(img *binimg.Image, syms *expr.SymbolTable, sol *solver.Solver) *Machine {
	n := len(img.Text) / isa.InstrSize
	m := &Machine{
		Img:       img,
		Syms:      syms,
		Solver:    sol,
		instrs:    make([]isa.Instr, n),
		decodeErr: make([]error, n),
		nextID:    1,
	}
	for i := 0; i < n; i++ {
		m.instrs[i], m.decodeErr[i] = isa.Decode(img.Text[i*isa.InstrSize:])
	}
	return m
}

// NewRootState allocates the initial state with the image loaded.
func (m *Machine) NewRootState() *State {
	s := NewState(m.newID())
	s.Mem.WriteBytes(isa.ImageBase, m.Img.Text)
	s.Mem.WriteBytes(m.Img.DataBase(), m.Img.Data)
	// bss is implicitly zero.
	return s
}

func (m *Machine) newID() uint64 {
	id := m.nextID
	m.nextID++
	return id
}

// ForkState clones s with a fresh ID (used by kernel annotations that fork
// over alternative API results).
func (m *Machine) ForkState(s *State) *State {
	m.Forks++
	return s.Fork(m.newID())
}

// inText reports whether pc addresses a decoded instruction.
func (m *Machine) inText(pc uint32) bool {
	return pc >= isa.ImageBase && pc < isa.ImageBase+uint32(len(m.instrs))*isa.InstrSize &&
		(pc-isa.ImageBase)%isa.InstrSize == 0
}

// Concretize pins a symbolic expression to a concrete value consistent with
// the path constraints, records the concretization (so traces can explain
// it and replays reproduce it), and adds the equality constraint. This is
// the paper's on-demand concretization at the symbolic/concrete boundary.
func (m *Machine) Concretize(s *State, e *expr.Expr, what string) (uint32, error) {
	if e.IsConst() {
		return e.ConstVal(), nil
	}
	model := m.Solver.Model(s.Constraints)
	if model == nil && len(s.Constraints) > 0 {
		return 0, Faultf("engine", s.PC, "cannot concretize %s: path constraints unsolvable", what)
	}
	val := expr.Eval(e, model)
	s.AddConstraint(expr.Eq(e, expr.Const(val)))
	s.Trace.Append(Event{
		Kind: EvConcretize, Seq: s.ICount, PC: s.PC,
		Val: expr.Const(val), Name: what,
	})
	return val, nil
}

// blockStart is kept per state in Meta to know when to emit block events.
const metaBlockStart = "block_start"

// MarkBlockStart flags that the next step of s begins a basic block
// (entry-point invocation, branch target, post-call resumption).
func (m *Machine) MarkBlockStart(s *State) {
	if s.Meta == nil {
		s.Meta = make(map[string]uint64)
	}
	s.Meta[metaBlockStart] = 1
}

func (m *Machine) enterBlock(s *State) {
	s.Trace.Append(Event{Kind: EvBlock, Seq: s.ICount, PC: s.PC})
	if m.OnBlock != nil {
		m.OnBlock(s, s.PC)
	}
	if s.Meta != nil {
		delete(s.Meta, metaBlockStart)
	}
}

// Step executes one instruction of s and returns the runnable successor
// states. Usually that is s itself; a symbolic branch returns two forked
// children (s is retired); termination returns none, with s.Status and, for
// bugs, the returned Fault explaining why.
func (m *Machine) Step(s *State) ([]*State, error) {
	if s.Status != StatusRunning {
		return nil, nil
	}
	m.Steps++

	// Magic return addresses.
	switch s.PC {
	case ExitAddr:
		s.Status = StatusExited
		s.Trace.Append(Event{Kind: EvEntryDone, Seq: s.ICount, Name: s.EntryName})
		return nil, nil
	case IntrRetAddr:
		if !s.PopInterrupt() {
			s.Status = StatusBug
			return nil, Faultf("memory", s.PC, "return to interrupt context with no active interrupt")
		}
		s.Trace.Append(Event{Kind: EvInterruptEnd, Seq: s.ICount})
		if m.OnInterruptReturn != nil {
			m.OnInterruptReturn(s)
		}
		m.MarkBlockStart(s)
		return []*State{s}, nil
	}

	if !m.inText(s.PC) {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "execution outside driver text (wild jump)")
	}
	idx := (s.PC - isa.ImageBase) / isa.InstrSize
	if err := m.decodeErr[idx]; err != nil {
		s.Status = StatusBug
		return nil, Faultf("memory", s.PC, "invalid instruction: %v", err)
	}

	if s.Meta != nil && s.Meta[metaBlockStart] == 1 {
		m.enterBlock(s)
	}

	in := m.instrs[idx]
	s.ICount++
	return m.exec(s, in)
}

// Run steps s until the path stops or maxSteps instructions execute,
// following the first successor at every fork. It returns the state the
// path ended on (which may differ from s after forks), the sibling states
// produced by forks (for a scheduler to explore), and the Fault if the path
// ended in a bug.
func (m *Machine) Run(s *State, maxSteps uint64) (final *State, forked []*State, fault error) {
	start := s.ICount
	cur := s
	for cur.Status == StatusRunning {
		if cur.ICount-start >= maxSteps {
			cur.Status = StatusKilled
			return cur, forked, nil
		}
		next, err := m.Step(cur)
		if err != nil {
			return cur, forked, err
		}
		switch len(next) {
		case 0:
			return cur, forked, nil
		case 1:
			cur = next[0]
		default:
			forked = append(forked, next[1:]...)
			cur = next[0]
		}
	}
	return cur, forked, nil
}
