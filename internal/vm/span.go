package vm

import (
	"repro/internal/expr"
	"repro/internal/isa"
)

// uop is one pre-lowered span micro-op: the dispatch decision fastExec
// makes by re-decoding `in.Op` through a switch on every visit is made
// once per instruction slot at NewMachine time instead, leaving only a
// direct call through fn with the operands already extracted. A uop either
// completes the instruction against the scratch concrete register file
// (returning true) or reports false to route that one instruction through
// the general exec — the exact contract of fastExec, so the two dispatch
// paths are interchangeable per instruction.
type uop struct {
	fn  func(u *uop, conc *[isa.NumRegs]uint32, known, dirty *uint32) bool
	alu func(x, y uint32) uint32
	imm uint32
	rd  uint8
	rs1 uint8
	rs2 uint8
}

func uopGeneral(_ *uop, _ *[isa.NumRegs]uint32, _, _ *uint32) bool { return false }

func uopNop(_ *uop, _ *[isa.NumRegs]uint32, _, _ *uint32) bool { return true }

func uopMovi(u *uop, conc *[isa.NumRegs]uint32, known, dirty *uint32) bool {
	conc[u.rd] = u.imm
	*known |= 1 << u.rd
	*dirty |= 1 << u.rd
	return true
}

func uopMov(u *uop, conc *[isa.NumRegs]uint32, known, dirty *uint32) bool {
	if *known&(1<<u.rs1) == 0 {
		return false
	}
	conc[u.rd] = conc[u.rs1]
	*known |= 1 << u.rd
	*dirty |= 1 << u.rd
	return true
}

func uopAluRR(u *uop, conc *[isa.NumRegs]uint32, known, dirty *uint32) bool {
	if *known&(1<<u.rs1) == 0 || *known&(1<<u.rs2) == 0 {
		return false
	}
	conc[u.rd] = u.alu(conc[u.rs1], conc[u.rs2])
	*known |= 1 << u.rd
	*dirty |= 1 << u.rd
	return true
}

func uopAluRI(u *uop, conc *[isa.NumRegs]uint32, known, dirty *uint32) bool {
	if *known&(1<<u.rs1) == 0 {
		return false
	}
	conc[u.rd] = u.alu(conc[u.rs1], u.imm)
	*known |= 1 << u.rd
	*dirty |= 1 << u.rd
	return true
}

// aluFn returns the concrete ALU function for op. The arithmetic is
// aluConcrete's, case for case — both replicate the expr constant folds
// bit for bit, which is what keeps the compiled path invisible.
func aluFn(op isa.Opcode) func(x, y uint32) uint32 {
	switch op {
	case isa.ADD, isa.ADDI:
		return func(x, y uint32) uint32 { return x + y }
	case isa.SUB:
		return func(x, y uint32) uint32 { return x - y }
	case isa.MUL, isa.MULI:
		return func(x, y uint32) uint32 { return x * y }
	case isa.DIVU:
		return func(x, y uint32) uint32 {
			if y == 0 {
				return 0xFFFFFFFF
			}
			return x / y
		}
	case isa.REMU:
		return func(x, y uint32) uint32 {
			if y == 0 {
				return x
			}
			return x % y
		}
	case isa.AND, isa.ANDI:
		return func(x, y uint32) uint32 { return x & y }
	case isa.OR, isa.ORI:
		return func(x, y uint32) uint32 { return x | y }
	case isa.XOR, isa.XORI:
		return func(x, y uint32) uint32 { return x ^ y }
	case isa.SHL, isa.SHLI:
		return func(x, y uint32) uint32 { return x << (y & 31) }
	case isa.SHR, isa.SHRI:
		return func(x, y uint32) uint32 { return x >> (y & 31) }
	case isa.SAR, isa.SARI:
		return func(x, y uint32) uint32 { return uint32(int32(x) >> (y & 31)) }
	}
	return nil
}

// lowerUop pre-lowers one decoded instruction into its span micro-op.
// Instructions the fast path cannot complete (memory, stack, ports,
// control flow) lower to uopGeneral and always take the general exec.
func lowerUop(in *isa.Instr) uop {
	switch in.Op {
	case isa.NOP:
		return uop{fn: uopNop}
	case isa.MOVI:
		return uop{fn: uopMovi, imm: in.Imm, rd: in.Rd}
	case isa.MOV:
		return uop{fn: uopMov, rd: in.Rd, rs1: in.Rs1}
	case isa.ADD, isa.SUB, isa.MUL, isa.DIVU, isa.REMU,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR:
		return uop{fn: uopAluRR, alu: aluFn(in.Op), rd: in.Rd, rs1: in.Rs1, rs2: in.Rs2}
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI, isa.MULI:
		return uop{fn: uopAluRI, alu: aluFn(in.Op), imm: in.Imm, rd: in.Rd, rs1: in.Rs1}
	default:
		return uop{fn: uopGeneral}
	}
}

// runSpan executes up to budget instructions of the straight-line span that
// starts at instruction index idx, without re-entering the step dispatcher
// per instruction. The span table guarantees every instruction in
// [idx, idx+spanLen[idx]) is validly decoded and non-control-flow, so:
//
//   - no instruction in the span can be a block entry (those only follow
//     control transfers), so no hook or trace event is owed between
//     instructions unless an instruction itself produces one;
//   - every instruction advances PC sequentially, so PC can be tracked as
//     an index and materialized only when needed;
//   - pure register ops (MOV/MOVI/ALU) over concrete values can run in a
//     scratch array of concrete words with no expr allocation at all.
//
// Anything else — memory ops, port I/O, a symbolic operand — falls back to
// the general exec for that one instruction with the architectural state
// (PC, ICount, registers) synced first, so events it emits carry exactly
// the sequence numbers the per-instruction path would have produced. If
// that instruction ends the straight-line guarantees (fault, status
// change, pending fault from a hook), runSpan bails out immediately and
// the caller resumes mid-span at the precise next instruction.
//
// The preamble in step has already credited one step for the first
// instruction (mirroring the per-instruction path); runSpan credits the
// rest. Net effect: executing N span instructions is bit-identical to N
// Step calls, with one shared-atomic flush and one dispatch instead of N.
func (c *ExecContext) runSpan(s *State, idx uint32, budget uint64) ([]*State, error) {
	m := c.M
	maxN := uint64(m.spanLen[idx])
	if budget < maxN {
		maxN = budget
	}
	base := s.ICount
	i := idx
	executed := uint64(0) // instructions completed in this dispatch
	counted := uint64(1)  // step credits granted (preamble pre-credited one)

	// Scratch register file: concrete values mirrored out of s.Regs.
	// known marks registers whose scratch value is valid; dirty marks
	// scratch values newer than s.Regs.
	var conc [isa.NumRegs]uint32
	var known, dirty uint32
	loadScratch := func() {
		known, dirty = 0, 0
		for r := range s.Regs {
			if e := s.Regs[r]; e.IsConst() {
				conc[r] = e.ConstVal()
				known |= 1 << r
			}
		}
	}
	flushRegs := func() {
		for r := 0; dirty != 0; r++ {
			if dirty&(1<<r) != 0 {
				s.Regs[r] = expr.Const(conc[r])
				dirty &^= 1 << r
			}
		}
	}
	creditTo := func(n uint64) {
		if n > counted {
			c.pendSteps += n - counted
			counted = n
		}
	}
	loadScratch()

	compiled := !m.DisableCompiledSpans
	for executed < maxN {
		var done bool
		if compiled {
			u := &m.uops[i]
			done = u.fn(u, &conc, &known, &dirty)
		} else {
			done = fastExec(&m.instrs[i], &conc, &known, &dirty)
		}
		if done {
			executed++
			i++
			continue
		}
		in := &m.instrs[i]

		// General path for this one instruction: make the architectural
		// state exact first, exactly as the per-instruction dispatcher
		// would see it.
		flushRegs()
		s.PC = isa.ImageBase + i*isa.InstrSize
		s.ICount = base + executed
		creditTo(executed + 1)
		s.ICount++
		executed++
		out, err := c.exec(s, *in)
		if err != nil || len(out) != 1 || out[0] != s ||
			s.Status != StatusRunning || s.BlockStart || s.PendFault != nil ||
			s.PC != isa.ImageBase+(i+1)*isa.InstrSize {
			// The instruction ended the span's straight-line guarantees
			// (fault, status change, hook-raised pending fault) — bail out.
			// State is already fully synced; the caller's next dispatch
			// resumes at the exact instruction the per-instruction path
			// would execute next.
			return out, err
		}
		loadScratch()
		i++
	}

	flushRegs()
	s.PC = isa.ImageBase + i*isa.InstrSize
	s.ICount = base + executed
	creditTo(executed)
	return []*State{s}, nil
}

// fastExec executes one pure register instruction over the scratch
// concrete register file, or reports false if the instruction needs the
// general path (memory, I/O, or a source register that is not concrete).
// The arithmetic replicates the expr constant folds bit for bit — this is
// what makes the fast path invisible to every observer.
func fastExec(in *isa.Instr, conc *[isa.NumRegs]uint32, known, dirty *uint32) bool {
	var v uint32
	switch in.Op {
	case isa.NOP:
		return true
	case isa.MOVI:
		v = in.Imm
	case isa.MOV:
		if *known&(1<<in.Rs1) == 0 {
			return false
		}
		v = conc[in.Rs1]
	case isa.ADD, isa.SUB, isa.MUL, isa.DIVU, isa.REMU,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR:
		if *known&(1<<in.Rs1) == 0 || *known&(1<<in.Rs2) == 0 {
			return false
		}
		v = aluConcrete(in.Op, conc[in.Rs1], conc[in.Rs2])
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI, isa.MULI:
		if *known&(1<<in.Rs1) == 0 {
			return false
		}
		v = aluConcrete(in.Op, conc[in.Rs1], in.Imm)
	default:
		// Memory, stack, and port instructions always take the general
		// path: they need the COW memory, checker hooks, and trace events.
		return false
	}
	conc[in.Rd] = v
	*known |= 1 << in.Rd
	*dirty |= 1 << in.Rd
	return true
}

// aluConcrete mirrors the expr package's constant-fold semantics for every
// two-operand ALU operation (register and immediate forms share these).
func aluConcrete(op isa.Opcode, x, y uint32) uint32 {
	switch op {
	case isa.ADD, isa.ADDI:
		return x + y
	case isa.SUB:
		return x - y
	case isa.MUL, isa.MULI:
		return x * y
	case isa.DIVU:
		if y == 0 {
			return 0xFFFFFFFF
		}
		return x / y
	case isa.REMU:
		if y == 0 {
			return x
		}
		return x % y
	case isa.AND, isa.ANDI:
		return x & y
	case isa.OR, isa.ORI:
		return x | y
	case isa.XOR, isa.XORI:
		return x ^ y
	case isa.SHL, isa.SHLI:
		return x << (y & 31)
	case isa.SHR, isa.SHRI:
		return x >> (y & 31)
	case isa.SAR, isa.SARI:
		return uint32(int32(x) >> (y & 31))
	}
	panic("vm: aluConcrete on non-ALU opcode")
}
