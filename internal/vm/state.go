package vm

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/isa"
)

// Magic control-transfer addresses. Returning to ExitAddr completes the
// current entry-point invocation; returning to IntrRetAddr completes an
// injected interrupt and restores the interrupted context.
const (
	ExitAddr    uint32 = 0xFFFF_0000
	IntrRetAddr uint32 = 0xFFFF_0010
)

// Forkable is implemented by concrete environment state (the simulated
// kernel, the symbolic hardware) that must be snapshotted when an execution
// state forks. Each execution state conceptually is "a complete system
// snapshot" (paper §4.1.2); guest memory forks by COW, and Forkable covers
// the host-side concrete structures.
type Forkable interface {
	Fork() Forkable
}

// Status describes why a state is no longer runnable.
type Status uint8

// State statuses.
const (
	StatusRunning Status = iota
	StatusExited         // returned from its entry point
	StatusKilled         // terminated by policy (e.g. failure return pruning)
	StatusBug            // a checker flagged a bug on this path
	StatusHalted         // executed HLT
	StatusInfeasible
)

func (st Status) String() string {
	switch st {
	case StatusRunning:
		return "running"
	case StatusExited:
		return "exited"
	case StatusKilled:
		return "killed"
	case StatusBug:
		return "bug"
	case StatusHalted:
		return "halted"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// intrFrame saves the full register context across an injected interrupt.
type intrFrame struct {
	regs [isa.NumRegs]*expr.Expr
	pc   uint32
}

// State is one execution state: registers, PC, COW memory, path
// constraints, and forked concrete environment. States form a tree; Fork
// produces children and the parent is never stepped again.
type State struct {
	ID     uint64
	Parent uint64 // parent state ID, 0 for the root
	Status Status

	Regs [isa.NumRegs]*expr.Expr
	PC   uint32
	Mem  *Memory

	// Constraints is the path condition: the conjunction of branch
	// conditions and concretization equalities accumulated on this path.
	Constraints []*expr.Expr

	// Kernel and HW are the forked concrete environments.
	Kernel Forkable
	HW     Forkable

	// ICount is the number of instructions executed on this path — the
	// deterministic "time" axis for the coverage figures.
	ICount uint64

	// Depth counts forks since the root.
	Depth int

	// intrStack holds saved contexts of interrupted execution.
	intrStack []intrFrame

	// InInterrupt reports how many interrupt contexts are active.
	InInterrupt int

	// EntryName names the driver entry point this state is executing,
	// for reports ("QueryInformation", "ISR", ...).
	EntryName string

	// Phase is the workload-phase index this state belongs to (0 =
	// DriverEntry). The pipelined explorer tags every invocation state with
	// its phase and forks inherit it, so a mixed-phase frontier can be
	// scheduled phase-aware and budgeted per (entry, phase). The barriered
	// explorer leaves it at zero.
	Phase int

	// Trace accumulates per-path events as a persistent chain.
	Trace *TraceNode

	// BlockStart marks that the next instruction begins a basic block: the
	// step loop emits an EvBlock event and fires the OnBlock hook before
	// executing it. A dedicated field rather than a Meta key — it is set and
	// tested on every control transfer, and the map alloc + lookup showed up
	// in step-loop profiles.
	BlockStart bool

	// Meta carries engine-specific scratch (e.g. scheduling priority).
	Meta map[string]uint64

	// LoopCounts is the per-path block-visit accounting behind the
	// infinite-loop heuristic. It lives on the state (not in the checker)
	// so paths can be stepped by any worker without shared bookkeeping.
	// Forks deliberately do NOT inherit it: loop detection is per
	// contiguous path segment, and resetting at a fork only delays
	// detection.
	LoopCounts map[uint32]uint64

	// PendFault is a fault raised asynchronously for this state by a hook
	// (e.g. the loop checker firing from OnBlock mid-step). The step loop
	// surfaces it on the state's next step, so the fault travels with the
	// state and is never attributed to a different path, however the
	// scheduler interleaves forks. Children inherit a pending fault: the
	// whole subtree shares the condition that raised it.
	PendFault *Fault

	// ctx is the execution context currently stepping this state, so
	// hook code holding only the state can reach the worker's solver.
	ctx *ExecContext
}

// NewState returns a root state with zeroed registers and empty memory.
func NewState(id uint64) *State {
	s := &State{ID: id, Mem: NewMemory(), Trace: &TraceNode{}}
	for i := range s.Regs {
		s.Regs[i] = expr.Const(0)
	}
	s.Regs[isa.SP] = expr.Const(isa.StackBase)
	return s
}

// cloneChild builds a child of s carrying every inherited field. The
// memory and trace differ between the two fork flavours — Fork freezes the
// running parent onto fresh overlays, ForkFrozen forks a frozen parent in
// place — so the caller supplies them. LoopCounts is the only other field
// the flavours disagree on (see Fork/ForkFrozen); everything else lives
// here exactly once, so a new State field cannot be cloned by one flavour
// and silently dropped by the other.
func (s *State) cloneChild(id uint64, mem *Memory, trace *TraceNode) *State {
	c := &State{
		ID:          id,
		Parent:      s.ID,
		Regs:        s.Regs, // array copy
		PC:          s.PC,
		Mem:         mem,
		Constraints: s.Constraints[:len(s.Constraints):len(s.Constraints)],
		ICount:      s.ICount,
		Depth:       s.Depth + 1,
		InInterrupt: s.InInterrupt,
		EntryName:   s.EntryName,
		Phase:       s.Phase,
		Trace:       trace,
		BlockStart:  s.BlockStart,
		PendFault:   s.PendFault,
		ctx:         s.ctx,
	}
	if s.Kernel != nil {
		c.Kernel = s.Kernel.Fork()
	}
	if s.HW != nil {
		c.HW = s.HW.Fork()
	}
	if len(s.intrStack) > 0 {
		c.intrStack = append([]intrFrame(nil), s.intrStack...)
	}
	if len(s.Meta) > 0 {
		c.Meta = make(map[string]uint64, len(s.Meta))
		for k, v := range s.Meta {
			c.Meta[k] = v
		}
	}
	return c
}

// Fork clones s into a child with the given ID. The shared memory and
// trace snapshots are frozen: both the child AND the (possibly still
// running) parent continue on fresh copy-on-write overlays, so neither can
// observe the other's subsequent writes. This matters for annotation and
// interrupt-injection forks, where the parent keeps executing. The child
// deliberately does NOT inherit LoopCounts (see that field's comment).
func (s *State) Fork(id uint64) *State {
	frozenMem := s.Mem
	s.Mem = frozenMem.Fork()
	var childTrace *TraceNode
	if frozenTrace := s.Trace; frozenTrace != nil {
		frozenTrace.frozen = true
		s.Trace = &TraceNode{parent: frozenTrace}
		childTrace = &TraceNode{parent: frozenTrace}
	}
	return s.cloneChild(id, frozenMem.Fork(), childTrace)
}

// ForkFrozen clones a frozen state into a fresh runnable child WITHOUT
// mutating the receiver. Fork pushes the (possibly still running) parent
// onto a new COW overlay so both sides can keep writing; ForkFrozen instead
// requires the receiver to be frozen — captured by Machine.SnapshotState and
// never stepped again — so every child can fork the same frozen memory and
// trace, and repeated resumes from one snapshot do not deepen the
// snapshot's own overlay chain. Unlike Fork, the child inherits LoopCounts:
// a snapshot resume continues the same contiguous path segment, and
// bit-identical replay of a cold execution (the persistent-mode fuzz
// executor's contract) needs the boot segment's loop accounting.
func (s *State) ForkFrozen(id uint64) *State {
	var childTrace *TraceNode
	if s.Trace != nil {
		// The receiver's trace was frozen when the snapshot was captured
		// (Machine.SnapshotState); ForkFrozen must not write to it — shared-
		// fabric snapshots are resumed from many goroutines concurrently.
		childTrace = &TraceNode{parent: s.Trace}
	}
	c := s.cloneChild(id, s.Mem.Fork(), childTrace)
	c.LoopCounts = s.loopCountsCopy()
	return c
}

// loopCountsCopy returns a private copy of the path's loop accounting (nil
// when empty) — the one piece of state Fork deliberately drops but every
// snapshot flavour (ForkFrozen, Machine.SnapshotState) must carry.
func (s *State) loopCountsCopy() map[uint32]uint64 {
	if len(s.LoopCounts) == 0 {
		return nil
	}
	out := make(map[uint32]uint64, len(s.LoopCounts))
	for k, v := range s.LoopCounts {
		out[k] = v
	}
	return out
}

// Retire releases pooled resources held by a state that no caller will
// touch again (a discarded fork sibling, a finished fuzz execution after
// its trace has been harvested). It is an optimization, never a
// correctness requirement: unreferenced states are collected either way,
// Retire just returns their overlay maps to the pool. Only leaves retire —
// Memory.Retire refuses if the overlay has forked children.
func (s *State) Retire() {
	if s == nil {
		return
	}
	s.Trace.recycle()
	s.Trace = nil
	s.Mem.Retire()
}

// DetachTrace removes and returns the state's trace chain so a caller can
// keep it past Retire: a detached leaf is no longer reachable from the
// state, so Retire cannot recycle its event storage out from under the
// harvested result. Returns nil when the state ran trace-free.
func (s *State) DetachTrace() *TraceNode {
	t := s.Trace
	s.Trace = nil
	return t
}

// AddConstraint appends a path constraint.
func (s *State) AddConstraint(e *expr.Expr) {
	s.Constraints = append(s.Constraints, e)
}

// Reg returns register r.
func (s *State) Reg(r uint8) *expr.Expr { return s.Regs[r] }

// SetReg stores e into register r.
func (s *State) SetReg(r uint8, e *expr.Expr) { s.Regs[r] = e }

// RegConcrete returns the value of register r when it is concrete.
func (s *State) RegConcrete(r uint8) (uint32, bool) {
	e := s.Regs[r]
	if e.IsConst() {
		return e.ConstVal(), true
	}
	return 0, false
}

// PushInterrupt saves the current context and transfers control to the
// interrupt service routine at isrPC. The saved context is restored when
// the ISR returns to IntrRetAddr.
func (s *State) PushInterrupt(isrPC uint32) {
	s.intrStack = append(s.intrStack, intrFrame{regs: s.Regs, pc: s.PC})
	s.Regs[isa.LR] = expr.Const(IntrRetAddr)
	s.PC = isrPC
	s.InInterrupt++
}

// PopInterrupt restores the interrupted context. It reports false if no
// interrupt frame is active (a driver returning to IntrRetAddr without an
// injected interrupt — a wild jump).
func (s *State) PopInterrupt() bool {
	if len(s.intrStack) == 0 {
		return false
	}
	f := s.intrStack[len(s.intrStack)-1]
	s.intrStack = s.intrStack[:len(s.intrStack)-1]
	s.Regs = f.regs
	s.PC = f.pc
	s.InInterrupt--
	return true
}

func (s *State) String() string {
	return fmt.Sprintf("state %d (pc=%#x, %s, %d constraints, depth %d)",
		s.ID, s.PC, s.Status, len(s.Constraints), s.Depth)
}
