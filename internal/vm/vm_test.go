package vm

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/binimg"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/solver"
)

// newTestMachine assembles src and prepares a machine plus a root state
// positioned at the entry point with LR = ExitAddr.
func newTestMachine(t *testing.T, src string) (*Machine, *State) {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := NewMachine(img, expr.NewSymbolTable(), solver.New())
	s := m.NewRootState()
	s.PC = img.Entry
	s.SetReg(isa.LR, expr.Const(ExitAddr))
	m.MarkBlockStart(s)
	return m, s
}

func runToEnd(t *testing.T, m *Machine, s *State) *State {
	t.Helper()
	final, forked, err := m.Run(s, 100000)
	if err != nil {
		t.Fatalf("run fault: %v (state %v)", err, final)
	}
	if len(forked) != 0 {
		t.Fatalf("unexpected forks: %d", len(forked))
	}
	return final
}

func TestStraightLineArithmetic(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 6
    movi r2, 7
    mul  r0, r1, r2
    addi r0, r0, 8
    shli r0, r0, 1
    ret
`)
	final := runToEnd(t, m, s)
	if final.Status != StatusExited {
		t.Fatalf("status = %v", final.Status)
	}
	v, ok := final.RegConcrete(isa.R0)
	if !ok || v != 100 {
		t.Errorf("r0 = %v, want 100", final.Reg(isa.R0))
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, buf
    movi r2, 0x1234
    stw  [r1+0], r2
    ldw  r0, [r1+0]
    ldb  r3, [r1+1]
    ldh  r4, [r1+0]
    ret
.data
buf: .word 0
`)
	final := runToEnd(t, m, s)
	if v, _ := final.RegConcrete(isa.R0); v != 0x1234 {
		t.Errorf("ldw = %#x", v)
	}
	if v, _ := final.RegConcrete(isa.R3); v != 0x12 {
		t.Errorf("ldb = %#x", v)
	}
	if v, _ := final.RegConcrete(isa.R4); v != 0x1234 {
		t.Errorf("ldh = %#x", v)
	}
}

func TestStackPushPop(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 0xAA
    movi r2, 0xBB
    push r1
    push r2
    pop  r3
    pop  r4
    ret
`)
	final := runToEnd(t, m, s)
	if v, _ := final.RegConcrete(isa.R3); v != 0xBB {
		t.Errorf("r3 = %#x, want 0xBB (LIFO)", v)
	}
	if v, _ := final.RegConcrete(isa.R4); v != 0xAA {
		t.Errorf("r4 = %#x, want 0xAA", v)
	}
	if sp, _ := final.RegConcrete(isa.SP); sp != isa.StackBase {
		t.Errorf("sp = %#x, want restored %#x", sp, isa.StackBase)
	}
}

func TestConcreteBranchesAndLoop(t *testing.T) {
	// sum 1..5 with a loop.
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r0, 0
    movi r1, 1
    movi r2, 6
loop:
    bgeu r1, r2, done
    add  r0, r0, r1
    addi r1, r1, 1
    jmp  loop
done:
    ret
`)
	final := runToEnd(t, m, s)
	if v, _ := final.RegConcrete(isa.R0); v != 15 {
		t.Errorf("sum = %d, want 15", v)
	}
}

func TestLocalCallReturn(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    addi sp, sp, -4
    stw  [sp+0], lr
    movi r0, 20
    call double
    ldw  lr, [sp+0]
    addi sp, sp, 4
    ret
double:
    add  r0, r0, r0
    ret
`)
	final := runToEnd(t, m, s)
	if final.Status != StatusExited {
		t.Fatalf("status = %v", final.Status)
	}
	if v, _ := final.RegConcrete(isa.R0); v != 40 {
		t.Errorf("r0 = %d, want 40", v)
	}
}

func TestSymbolicBranchForks(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r2, 10
    bltu r1, r2, small
    movi r0, 2
    ret
small:
    movi r0, 1
    ret
`)
	// Make r1 symbolic: the branch must fork into both outcomes.
	sym := m.Syms.Fresh("input", expr.OriginArgument, 0, 0)
	s.SetReg(isa.R1, sym)

	var finals []*State
	work := []*State{s}
	for len(work) > 0 {
		st := work[0]
		work = work[1:]
		final, forked, err := m.Run(st, 1000)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		work = append(work, forked...)
		if final.Status == StatusExited {
			finals = append(finals, final)
		}
	}
	if len(finals) != 2 {
		t.Fatalf("got %d exit states, want 2", len(finals))
	}
	seen := map[uint32]bool{}
	for _, f := range finals {
		v, ok := f.RegConcrete(isa.R0)
		if !ok {
			t.Fatalf("symbolic result in %v", f)
		}
		seen[v] = true
		// Each path's constraints must be satisfiable and consistent with
		// its outcome.
		model := m.Solver.Model(f.Constraints)
		if model == nil {
			t.Fatalf("path constraints unsolvable for %v", f)
		}
		in := expr.Eval(sym, model)
		if v == 1 && in >= 10 {
			t.Errorf("small path model gives input %d", in)
		}
		if v == 2 && in < 10 {
			t.Errorf("large path model gives input %d", in)
		}
	}
	if !seen[1] || !seen[2] {
		t.Errorf("outcomes = %v, want both 1 and 2", seen)
	}
}

func TestInfeasibleBranchNotForked(t *testing.T) {
	// r1 < 10 already constrained; a second identical test must not fork.
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r2, 10
    bltu r1, r2, a
    movi r0, 9
    ret
a:
    bltu r1, r2, b
    movi r0, 8
    ret
b:
    movi r0, 1
    ret
`)
	sym := m.Syms.Fresh("input", expr.OriginArgument, 0, 0)
	s.SetReg(isa.R1, sym)

	exits := 0
	work := []*State{s}
	for len(work) > 0 {
		st := work[0]
		work = work[1:]
		final, forked, err := m.Run(st, 1000)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		work = append(work, forked...)
		if final.Status == StatusExited {
			exits++
		}
	}
	if exits != 2 {
		t.Errorf("exit states = %d, want 2 (second branch must not fork)", exits)
	}
	if m.Forks.Load() != 1 {
		t.Errorf("forks = %d, want 1", m.Forks.Load())
	}
}

func TestWildJumpIsBug(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 0x12345678
    jr   r1
`)
	_, _, err := m.Run(s, 1000)
	if err == nil {
		t.Fatal("wild jump not detected")
	}
	f, ok := err.(*Fault)
	if !ok || f.Class != "memory" {
		t.Errorf("fault = %v", err)
	}
}

func TestHalt(t *testing.T) {
	m, s := newTestMachine(t, ".entry e\n.text\ne: hlt\n")
	final, _, err := m.Run(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusHalted {
		t.Errorf("status = %v", final.Status)
	}
}

func TestMMIOReadsGoToDevice(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 0xE0000000
    ldw  r0, [r1+0x10]
    stw  [r1+0x14], r0
    ret
`)
	var readAddr, writeAddr uint32
	m.ReadDevice = func(st *State, addr, size uint32) *expr.Expr {
		readAddr = addr
		return m.Syms.Fresh("hw", expr.OriginHardware, st.PC, st.ICount)
	}
	m.WriteDevice = func(st *State, addr, size uint32, v *expr.Expr) {
		writeAddr = addr
	}
	final := runToEnd(t, m, s)
	if readAddr != 0xE0000010 || writeAddr != 0xE0000014 {
		t.Errorf("MMIO dispatch: read %#x write %#x", readAddr, writeAddr)
	}
	if final.Reg(isa.R0).IsConst() {
		t.Error("device read should be symbolic")
	}
}

func TestPortIO(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 0x20
    in   r0, r1
    out  r1, r0
    ret
`)
	var inPort, outPort uint32
	m.ReadPort = func(st *State, port uint32) *expr.Expr {
		inPort = port
		return expr.Const(0x5A)
	}
	m.WritePort = func(st *State, port uint32, v *expr.Expr) {
		outPort = port
	}
	final := runToEnd(t, m, s)
	if inPort != 0x20 || outPort != 0x20 {
		t.Errorf("ports: in %#x out %#x", inPort, outPort)
	}
	if v, _ := final.RegConcrete(isa.R0); v != 0x5A {
		t.Errorf("in value = %#x", v)
	}
}

func TestAPICallDispatch(t *testing.T) {
	m, s := newTestMachine(t, `
.import FakeAlloc
.entry e
.text
e:
    push lr
    movi r0, 64
    call FakeAlloc
    pop  lr
    ret
`)
	called := ""
	m.APICall = func(st *State, slot int) ([]*State, error) {
		called = m.Img.Imports[slot]
		st.SetReg(isa.R0, expr.Const(0xCAFE))
		return nil, nil
	}
	final := runToEnd(t, m, s)
	if called != "FakeAlloc" {
		t.Errorf("api called = %q", called)
	}
	if v, _ := final.RegConcrete(isa.R0); v != 0xCAFE {
		t.Errorf("r0 = %#x", v)
	}
	if final.Status != StatusExited {
		t.Errorf("status = %v", final.Status)
	}
}

func TestAPICallCanForkState(t *testing.T) {
	m, s := newTestMachine(t, `
.import MaybeFail
.entry e
.text
e:
    push lr
    call MaybeFail
    pop  lr
    movi r2, 0
    beq  r0, r2, failed
    movi r1, 1
    ret
failed:
    movi r1, 2
    ret
`)
	m.APICall = func(st *State, slot int) ([]*State, error) {
		alt := m.ForkState(st)
		st.SetReg(isa.R0, expr.Const(1))  // success
		alt.SetReg(isa.R0, expr.Const(0)) // failure
		return []*State{alt}, nil
	}
	var outcomes []uint32
	work := []*State{s}
	for len(work) > 0 {
		st := work[0]
		work = work[1:]
		final, forked, err := m.Run(st, 1000)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		work = append(work, forked...)
		if final.Status == StatusExited {
			v, _ := final.RegConcrete(isa.R1)
			outcomes = append(outcomes, v)
		}
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %v, want 2 paths", outcomes)
	}
}

func TestMemAccessHookVeto(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 0x9000000
    ldw  r0, [r1+0]
    ret
`)
	m.OnMemAccess = func(st *State, pc, addr, size uint32, write bool, v *expr.Expr) error {
		if addr == 0x9000000 {
			return Faultf("memory", pc, "access to unmapped address %#x", addr)
		}
		return nil
	}
	_, _, err := m.Run(s, 100)
	if err == nil {
		t.Fatal("veto not raised")
	}
	if !strings.Contains(err.Error(), "unmapped") {
		t.Errorf("err = %v", err)
	}
}

func TestForkIsolation(t *testing.T) {
	// Writes in one fork must not leak into the sibling.
	m, _ := newTestMachine(t, ".entry e\n.text\ne: ret\n")
	root := m.NewRootState()
	root.Mem.Write(0x200000, 4, expr.Const(111))
	a := m.ForkState(root)
	b := m.ForkState(root)
	a.Mem.Write(0x200000, 4, expr.Const(222))
	if v := b.Mem.Read(0x200000, 4); !v.IsConst() || v.ConstVal() != 111 {
		t.Errorf("sibling sees %v, want 111", v)
	}
	if v := a.Mem.Read(0x200000, 4); v.ConstVal() != 222 {
		t.Errorf("writer sees %v, want 222", v)
	}
	if v := root.Mem.Read(0x200000, 4); v.ConstVal() != 111 {
		t.Errorf("parent sees %v, want 111", v)
	}
}

func TestChainedCOWDepthAndCache(t *testing.T) {
	mem := NewMemory()
	mem.Write(0x1000, 4, expr.Const(42))
	cur := mem
	for i := 0; i < 50; i++ {
		cur = cur.Fork()
	}
	if cur.Depth() != 50 {
		t.Errorf("depth = %d", cur.Depth())
	}
	if v := cur.Read(0x1000, 4); v.ConstVal() != 42 {
		t.Errorf("deep read = %v", v)
	}
	// After the first read the leaf must have cached the resolved page.
	if cur.cache == nil || len(cur.cache) == 0 {
		t.Error("read cache not populated")
	}
	// A local write invalidates the cache entry and owns the page.
	cur.Write(0x1000, 4, expr.Const(7))
	if v := cur.Read(0x1000, 4); v.ConstVal() != 7 {
		t.Errorf("read after write = %v", v)
	}
	if cur.LocalPages() != 1 {
		t.Errorf("local pages = %d", cur.LocalPages())
	}
}

func TestSymbolicMemoryBytes(t *testing.T) {
	mem := NewMemory()
	tab := expr.NewSymbolTable()
	sym := tab.Fresh("v", expr.OriginHardware, 0, 0)
	mem.Write(0x3000, 4, sym)
	got := mem.Read(0x3000, 4)
	// Reading back a stored symbolic word must be value-equivalent.
	for _, tv := range []uint32{0, 1, 0xDEADBEEF, 0xFFFFFFFF} {
		a := expr.Assignment{sym.Sym: tv}
		if expr.Eval(got, a) != tv {
			t.Errorf("read-back mismatch for %#x: %v", tv, got)
		}
	}
	if mem.SymbolicByteCount() != 4 {
		t.Errorf("symbolic bytes = %d", mem.SymbolicByteCount())
	}
	// Overwriting with a constant clears the overlay.
	mem.Write(0x3000, 4, expr.Const(5))
	if mem.SymbolicByteCount() != 0 {
		t.Errorf("symbolic bytes after overwrite = %d", mem.SymbolicByteCount())
	}
}

func TestMixedSymbolicConcreteHalfword(t *testing.T) {
	mem := NewMemory()
	tab := expr.NewSymbolTable()
	sym := tab.Fresh("b", expr.OriginPacket, 0, 0)
	mem.StoreByte(0x4000, expr.ZeroExt8(sym))
	mem.StoreByte(0x4001, expr.Const(0xAB))
	w := mem.Read(0x4000, 2)
	a := expr.Assignment{sym.Sym: 0xCD}
	if v := expr.Eval(w, a); v != 0xABCD {
		t.Errorf("mixed halfword = %#x, want 0xabcd", v)
	}
}

func TestInterruptPushPop(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r0, 5
    movi r1, 6
    ret
isr:
    movi r0, 99
    movi r1, 99
    ret
`)
	isrPC := m.Img.Entry + 3*isa.InstrSize
	// Execute first instruction, inject interrupt, run ISR, resume.
	next, err := m.Step(s)
	if err != nil || len(next) != 1 {
		t.Fatalf("step: %v %v", next, err)
	}
	s = next[0]
	savedPC := s.PC
	s.PushInterrupt(isrPC)
	if s.InInterrupt != 1 {
		t.Fatal("interrupt not active")
	}
	final := runToEnd(t, m, s)
	if final.Status != StatusExited {
		t.Fatalf("status = %v", final.Status)
	}
	// ISR clobbered r0/r1 with 99, but the frame restore puts the
	// interrupted context back, so the main path result must be intact.
	if v, _ := final.RegConcrete(isa.R0); v != 5 {
		t.Errorf("r0 = %d, want 5 (context restored)", v)
	}
	if v, _ := final.RegConcrete(isa.R1); v != 6 {
		t.Errorf("r1 = %d, want 6", v)
	}
	_ = savedPC
}

func TestPopInterruptWithoutFrameIsBug(t *testing.T) {
	m, s := newTestMachine(t, ".entry e\n.text\ne: ret\n")
	s.SetReg(isa.LR, expr.Const(IntrRetAddr))
	_, _, err := m.Run(s, 10)
	if err == nil {
		t.Fatal("stray interrupt return not flagged")
	}
}

func TestTraceEventsRecorded(t *testing.T) {
	m, s := newTestMachine(t, `
.import API
.entry e
.text
e:
    push lr
    movi r1, buf
    stw  [r1+0], r1
    call API
    pop  lr
    ret
.data
buf: .word 0
`)
	m.APICall = func(st *State, slot int) ([]*State, error) { return nil, nil }
	final := runToEnd(t, m, s)
	evs := final.Trace.Path()
	var kinds []EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	has := func(k EventKind) bool {
		for _, kk := range kinds {
			if kk == k {
				return true
			}
		}
		return false
	}
	for _, k := range []EventKind{EvBlock, EvMem, EvAPICall, EvAPIReturn, EvEntryDone} {
		if !has(k) {
			t.Errorf("trace missing %v events (have %v)", k, kinds)
		}
	}
}

func TestTraceForkChain(t *testing.T) {
	root := &TraceNode{}
	root.Append(Event{Kind: EvBlock, PC: 1})
	child := &TraceNode{parent: root}
	child.Append(Event{Kind: EvBlock, PC: 2})
	path := child.Path()
	if len(path) != 2 || path[0].PC != 1 || path[1].PC != 2 {
		t.Errorf("path = %v", path)
	}
	if child.Len() != 2 || root.Len() != 1 {
		t.Errorf("lengths: child %d root %d", child.Len(), root.Len())
	}
}

func TestDivideByZeroConvention(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 10
    movi r2, 0
    divu r0, r1, r2
    remu r3, r1, r2
    ret
`)
	final := runToEnd(t, m, s)
	if v, _ := final.RegConcrete(isa.R0); v != 0xFFFFFFFF {
		t.Errorf("div by zero = %#x", v)
	}
	if v, _ := final.RegConcrete(isa.R3); v != 10 {
		t.Errorf("rem by zero = %d", v)
	}
}

func TestImageLoadedIntoMemory(t *testing.T) {
	img, err := asm.Assemble(".entry e\n.text\ne: ret\n.data\nd: .word 0xFEEDFACE\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img, expr.NewSymbolTable(), solver.New())
	s := m.NewRootState()
	if v := s.Mem.Read(img.DataBase(), 4); !v.IsConst() || v.ConstVal() != 0xFEEDFACE {
		t.Errorf("data word = %v", v)
	}
	got, ok := s.Mem.ReadBytesConcrete(isa.ImageBase, uint32(len(img.Text)))
	if !ok || string(got) != string(img.Text) {
		t.Error("text not loaded verbatim")
	}
}

func TestReadCString(t *testing.T) {
	mem := NewMemory()
	mem.WriteBytes(0x5000, append([]byte("MaximumMulticastList"), 0))
	s, ok := mem.ReadCString(0x5000, 64)
	if !ok || s != "MaximumMulticastList" {
		t.Errorf("ReadCString = %q, %v", s, ok)
	}
	if _, ok := mem.ReadCString(0x5000, 5); ok {
		t.Error("unterminated read should fail")
	}
}

func TestStatusStrings(t *testing.T) {
	for st := StatusRunning; st <= StatusInfeasible; st++ {
		if st.String() == "unknown" {
			t.Errorf("status %d has no name", st)
		}
	}
}

func TestDisassembleListing(t *testing.T) {
	img, _ := asm.Assemble(".entry e\n.text\ne: movi r0, 1\n ret\n")
	dis := binimg.Disassemble(img)
	if !strings.Contains(dis, "movi r0, 0x1") || !strings.Contains(dis, "ret") {
		t.Errorf("disassembly:\n%s", dis)
	}
}

// TestExecContextsStepIndependently: two contexts of one machine, each
// with a private solver, run separate states concurrently; shared stats
// aggregate across both (run under -race to validate the shared half).
func TestExecContextsStepIndependently(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r1, 5
    movi r2, 0
loop:
    addi r0, r0, 3
    addi r1, r1, -1
    bne  r1, r2, loop
    ret
`)
	s2 := m.NewRootState()
	s2.PC = m.Img.Entry
	s2.SetReg(isa.LR, expr.Const(ExitAddr))
	m.MarkBlockStart(s2)

	done := make(chan *State, 2)
	for _, st := range []*State{s, s2} {
		go func(st *State) {
			ctx := m.NewContext(solver.New())
			final, _, err := ctx.Run(st, 100000)
			if err != nil {
				t.Errorf("ctx run: %v", err)
			}
			done <- final
		}(st)
	}
	for i := 0; i < 2; i++ {
		final := <-done
		if final.Status != StatusExited {
			t.Errorf("status = %v", final.Status)
		}
		if v, ok := final.RegConcrete(isa.R0); !ok || v != 15 {
			t.Errorf("r0 = %v, want 15", final.Reg(isa.R0))
		}
	}
	if m.Steps.Load() == 0 {
		t.Error("shared step counter not aggregated")
	}
}

// TestPendFaultTravelsWithState: a fault left pending on a state by a hook
// is raised on that state's next step — and on a forked child, it travels
// with the child instead of leaking to an unrelated state.
func TestPendFaultTravelsWithState(t *testing.T) {
	m, s := newTestMachine(t, `
.entry e
.text
e:
    movi r0, 1
    movi r0, 2
    ret
`)
	s.PendFault = Faultf("loop", s.PC, "planted")
	next, err := m.Step(s)
	if err == nil || next != nil {
		t.Fatalf("pending fault not raised: next=%v err=%v", next, err)
	}
	f, ok := err.(*Fault)
	if !ok || f.Msg != "planted" || s.Status != StatusBug {
		t.Fatalf("fault = %v, status = %v", err, s.Status)
	}
	if s.PendFault != nil {
		t.Fatal("pending fault not consumed")
	}

	// Fork: the child inherits the pending fault; an unrelated state is
	// untouched.
	m2, p := newTestMachine(t, `
.entry e
.text
e:
    movi r0, 1
    ret
`)
	p.PendFault = Faultf("loop", p.PC, "inherited")
	child := p.Fork(99)
	if child.PendFault == nil || child.PendFault.Msg != "inherited" {
		t.Fatalf("fork dropped the pending fault: %v", child.PendFault)
	}
	if _, err := m2.Step(child); err == nil {
		t.Fatal("child did not raise inherited fault")
	}
	clean := m2.NewRootState()
	if clean.PendFault != nil {
		t.Fatal("unrelated state has a pending fault")
	}
}
