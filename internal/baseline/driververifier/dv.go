// Package driververifier implements the Microsoft Driver Verifier baseline
// of §5.1: stress-testing the driver concretely in its real environment with
// deep in-guest dynamic checks, but no symbolic execution. Hardware reads
// return concrete values, registry values are the concrete defaults,
// allocation failures are never injected, interrupts only fire when the
// concrete workload triggers them, and the run stops at the first bug
// (Driver Verifier crashes the system to report).
//
// The paper's result — DV finds none of the 14 Table 2 bugs, because every
// one of them needs either a forked failure path, a symbolic registry or
// OID value, or an interrupt injected at just the right instant — falls out
// directly: the checkers are identical to DDT's, only the exploration
// differs.
package driververifier

import (
	"context"
	"repro/internal/binimg"
	"repro/internal/core"
)

// Options tune the stress run.
type Options struct {
	// Iterations reruns the concrete workload to give the stress tester a
	// fighting chance (different runs are deterministic here, so >1 only
	// adds time; kept for interface fidelity).
	Iterations int
}

// Run stress-tests a driver image and returns the report (at most one bug,
// per Driver Verifier's stop-at-first-crash behaviour).
func Run(img *binimg.Image, opts Options) (*core.Report, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	var last *core.Report
	for i := 0; i < opts.Iterations; i++ {
		eopts := core.DefaultOptions()
		eopts.Annotations = false
		eopts.SymbolicInterrupts = false
		eopts.ConcreteHardware = true
		eopts.StopAtFirstBug = true
		eopts.VerifierChecks = true
		eng := core.NewEngine(img, eopts)
		rep, err := eng.TestDriver(context.Background())
		if err != nil {
			return nil, err
		}
		last = rep
		if len(rep.Bugs) > 0 {
			break
		}
	}
	return last, nil
}
