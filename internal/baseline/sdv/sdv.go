// Package sdv implements the static-analysis baseline of §5.1: an
// SLAM/SDV-style checker that verifies kernel API usage rules over an
// abstraction of the driver — here, a CFG-free linear abstraction of each
// recovered function with constant propagation for lock and pool-type
// arguments.
//
// Like the real SDV, it encodes a fixed set of API usage rules and pays for
// its static nature with both false negatives (rules are intraprocedural
// and path-insensitive, so the cross-function deadlock, the multi-lock
// out-of-order release, and the conditionally-acquired extra release of
// §5.1's synthetic experiment are missed) and false positives (a lock
// released in a callee looks forgotten). DDT's dynamic checkers share none
// of these blind spots — that asymmetry is the point of the comparison.
package sdv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/binimg"
	"repro/internal/isa"
)

// Finding is one rule violation reported by the analyzer.
type Finding struct {
	Rule string
	Func uint32 // function entry VA
	PC   uint32 // violating instruction VA
	Msg  string
	// FuncEvents is how many API interactions the function contains —
	// small counts mark helper/wrapper functions, where the
	// forgotten-release rule is known to produce false positives.
	FuncEvents int
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s (fn %#x, pc %#x)", f.Rule, f.Msg, f.Func, f.PC)
}

// Report is the outcome of one SDV run.
type Report struct {
	Driver    string
	Findings  []Finding
	Functions int
	Rules     int
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SDV report for %q: %d functions, %d rules, %d finding(s)\n",
		r.Driver, r.Functions, r.Rules, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// event is one abstracted API interaction in a function's linear sweep.
type event struct {
	api  string
	pc   uint32
	arg0 argDesc // abstract value of r0 at the call
}

// argDesc abstracts the first argument: a known constant (lock address,
// pool type), a known memory slot (for double-free detection), or unknown.
type argDesc struct {
	kind  uint8 // 0 unknown, 1 const, 2 deref of const address
	value uint32
}

func (a argDesc) eq(b argDesc) bool { return a.kind != 0 && a.kind == b.kind && a.value == b.value }

// lock-ish API classification.
func isAcquire(api string) bool {
	return api == "NdisAcquireSpinLock" || api == "NdisDprAcquireSpinLock" || api == "KeAcquireSpinLock"
}
func isRelease(api string) bool {
	return api == "NdisReleaseSpinLock" || api == "NdisDprReleaseSpinLock" || api == "KeReleaseSpinLock"
}
func isAlloc(api string) bool {
	return api == "ExAllocatePoolWithTag" || api == "NdisAllocateMemoryWithTag"
}
func isFree(api string) bool {
	return api == "ExFreePoolWithTag" || api == "NdisFreeMemory"
}

// Analyze runs the rule set over a driver binary.
func Analyze(img *binimg.Image) *Report {
	rep := &Report{Driver: img.Name, Rules: 9}
	fns := functions(img)
	rep.Functions = len(fns)

	imageCallsInitTimer := false
	for _, fn := range fns {
		for _, ev := range fn.events {
			if ev.api == "NdisMInitializeTimer" {
				imageCallsInitTimer = true
			}
		}
	}

	for _, fn := range fns {
		var fs []Finding
		fs = append(fs, checkLockRules(fn)...)
		fs = append(fs, checkAllocRules(fn)...)
		fs = append(fs, checkTimerRule(fn, imageCallsInitTimer)...)
		fs = append(fs, checkIndexRule(fn)...)
		for i := range fs {
			fs[i].FuncEvents = len(fn.events)
		}
		rep.Findings = append(rep.Findings, fs...)
	}
	sort.Slice(rep.Findings, func(i, j int) bool { return rep.Findings[i].PC < rep.Findings[j].PC })
	return rep
}

// fnAbs is the linear abstraction of one recovered function.
type fnAbs struct {
	entry  uint32
	instrs []isa.Instr
	pcs    []uint32
	events []event
}

// functions recovers function extents (entry + call targets, each running
// to the next function start) and abstracts each with a linear sweep that
// propagates constants into r0.
func functions(img *binimg.Image) []*fnAbs {
	textBase := img.TextBase()
	textEnd := textBase + uint32(len(img.Text))
	starts := map[uint32]bool{img.Entry: true}
	for off := 0; off+isa.InstrSize <= len(img.Text); off += isa.InstrSize {
		in, err := isa.Decode(img.Text[off : off+isa.InstrSize])
		if err != nil || in.Op != isa.CALL {
			continue
		}
		if _, trap := isa.InTrapWindow(in.Imm); !trap && in.Imm >= textBase && in.Imm < textEnd {
			starts[in.Imm] = true
		}
	}
	sorted := make([]uint32, 0, len(starts))
	for va := range starts {
		sorted = append(sorted, va)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var out []*fnAbs
	for i, start := range sorted {
		end := textEnd
		if i+1 < len(sorted) {
			end = sorted[i+1]
		}
		fn := &fnAbs{entry: start}
		// Constant propagation state: regConst[r] valid if regKnown[r].
		var regConst [isa.NumRegs]uint32
		var regKnown [isa.NumRegs]bool
		var regDeref [isa.NumRegs]uint32 // address whose content r holds
		var regIsDeref [isa.NumRegs]bool

		invalidate := func(r uint8) {
			regKnown[r] = false
			regIsDeref[r] = false
		}
		for pc := start; pc < end; pc += isa.InstrSize {
			in, err := isa.Decode(img.Text[pc-textBase:])
			if err != nil {
				continue
			}
			fn.instrs = append(fn.instrs, in)
			fn.pcs = append(fn.pcs, pc)
			switch in.Op {
			case isa.MOVI:
				regConst[in.Rd] = in.Imm
				regKnown[in.Rd] = true
				regIsDeref[in.Rd] = false
			case isa.LDW:
				if regKnown[in.Rs1] {
					regDeref[in.Rd] = regConst[in.Rs1] + in.Imm
					regIsDeref[in.Rd] = true
					regKnown[in.Rd] = false
				} else {
					invalidate(in.Rd)
				}
			case isa.CALL:
				if slot, ok := isa.InTrapWindow(in.Imm); ok && slot < len(img.Imports) {
					var a argDesc
					if regKnown[0] {
						a = argDesc{kind: 1, value: regConst[0]}
					} else if regIsDeref[0] {
						a = argDesc{kind: 2, value: regDeref[0]}
					}
					fn.events = append(fn.events, event{api: img.Imports[slot], pc: pc, arg0: a})
				}
				invalidate(0) // return value
			default:
				// Any other instruction writing Rd invalidates it.
				if writesRd(in.Op) {
					invalidate(in.Rd)
				}
			}
		}
		out = append(out, fn)
	}
	return out
}

func writesRd(op isa.Opcode) bool {
	switch op {
	case isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIVU, isa.REMU, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SAR, isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI, isa.MULI, isa.LDH, isa.LDB, isa.POP, isa.IN:
		return true
	}
	return false
}

// checkLockRules implements the four lock rules over the event sequence:
// double acquire without release, release without any acquire in the
// function, more acquires than releases (forgotten release — the rule
// responsible for the §5.1 false positive), and a blocking/pageable call
// between acquire and release.
func checkLockRules(fn *fnAbs) []Finding {
	var out []Finding
	type cnt struct {
		acq, rel   int
		nowHeld    bool
		firstAcqPC uint32
		firstRelPC uint32
	}
	locks := map[uint32]*cnt{}
	get := func(a argDesc) *cnt {
		if a.kind != 1 {
			return nil
		}
		c, ok := locks[a.value]
		if !ok {
			c = &cnt{}
			locks[a.value] = c
		}
		return c
	}
	anyHeld := 0
	for _, ev := range fn.events {
		switch {
		case isAcquire(ev.api):
			c := get(ev.arg0)
			if c == nil {
				continue
			}
			if c.nowHeld {
				out = append(out, Finding{Rule: "double-acquire", Func: fn.entry, PC: ev.pc,
					Msg: fmt.Sprintf("lock %#x acquired twice without release", ev.arg0.value)})
			}
			c.acq++
			c.nowHeld = true
			if c.firstAcqPC == 0 {
				c.firstAcqPC = ev.pc
			}
			anyHeld++
		case isRelease(ev.api):
			c := get(ev.arg0)
			if c == nil {
				continue
			}
			c.rel++
			if c.firstRelPC == 0 {
				c.firstRelPC = ev.pc
			}
			if c.nowHeld {
				c.nowHeld = false
				if anyHeld > 0 {
					anyHeld--
				}
			}
		case ev.api == "NdisMSleep":
			if anyHeld > 0 {
				out = append(out, Finding{Rule: "wrong-irql-call", Func: fn.entry, PC: ev.pc,
					Msg: "blocking call while holding a spinlock (IRQL too high)"})
			}
		case ev.api == "ExAllocatePoolWithTag":
			if anyHeld > 0 && ev.arg0.kind == 1 && ev.arg0.value == 1 {
				out = append(out, Finding{Rule: "paged-alloc-under-lock", Func: fn.entry, PC: ev.pc,
					Msg: "PagedPool allocation while holding a spinlock"})
			}
		}
	}
	// Lock-wrapper heuristic (as real tools whitelist lock wrappers):
	// a function whose only API interaction is a single lock operation is
	// assumed to be a wrapper and exempt from the ownership rules.
	isWrapper := len(fn.events) == 1
	for addr, c := range locks {
		if c.rel > 0 && c.acq == 0 && !isWrapper {
			out = append(out, Finding{Rule: "release-not-acquired", Func: fn.entry, PC: c.firstRelPC,
				Msg: fmt.Sprintf("lock %#x released but never acquired in this function", addr)})
		}
		if c.acq > c.rel {
			out = append(out, Finding{Rule: "forgotten-release", Func: fn.entry, PC: c.firstAcqPC,
				Msg: fmt.Sprintf("lock %#x acquired %d time(s) but released %d", addr, c.acq, c.rel)})
		}
	}
	return out
}

// checkAllocRules implements: (a) allocation result stored through before
// any null check; (b) a failure path after a non-first allocation that
// returns the failure status without freeing; (c) double free of the same
// abstract slot with no intervening allocation.
func checkAllocRules(fn *fnAbs) []Finding {
	var out []Finding

	// (a) store-through-result-without-check.
	for i, in := range fn.instrs {
		if in.Op != isa.CALL {
			continue
		}
		slot, ok := isa.InTrapWindow(in.Imm)
		if !ok {
			continue
		}
		api := apiAt(fn, i)
		if api == "" || !isAlloc(api) {
			continue
		}
		_ = slot
		for j := i + 1; j < len(fn.instrs) && j <= i+3; j++ {
			nj := fn.instrs[j]
			if nj.Op.IsBranch() && (nj.Rs1 == 0 || nj.Rs2 == 0) {
				break // checked
			}
			if (nj.Op == isa.STW || nj.Op == isa.STH || nj.Op == isa.STB) && nj.Rs1 == 0 {
				out = append(out, Finding{Rule: "alloc-no-null-check", Func: fn.entry, PC: fn.pcs[j],
					Msg: "allocation result dereferenced before any NULL check"})
				break
			}
		}
	}

	// (b) leak on a failure path following a non-first allocation: scan the
	// fallthrough (or branch-target) failure block to RET for a free call.
	allocSeen := 0
	for i, in := range fn.instrs {
		if in.Op == isa.CALL {
			if api := apiAt(fn, i); isAlloc(api) {
				allocSeen++
				if allocSeen >= 2 {
					if pc, bad := failurePathLeaks(fn, i); bad {
						out = append(out, Finding{Rule: "leak-on-failure-path", Func: fn.entry, PC: pc,
							Msg: "failure path returns without freeing earlier allocation"})
					}
				}
			}
		}
	}

	// (c) double free.
	var lastFree argDesc
	var haveLast bool
	for i, in := range fn.instrs {
		if in.Op != isa.CALL {
			continue
		}
		api := apiAt(fn, i)
		switch {
		case isAlloc(api):
			haveLast = false
		case isFree(api):
			a := fn.events[eventIndexAt(fn, i)].arg0
			if haveLast && a.kind == 2 && a.eq(lastFree) {
				out = append(out, Finding{Rule: "double-free", Func: fn.entry, PC: fn.pcs[i],
					Msg: fmt.Sprintf("pointer from slot %#x freed twice", a.value)})
			}
			lastFree = a
			haveLast = a.kind == 2
		}
	}
	return out
}

// failurePathLeaks scans the code right after the status check of an
// allocation at instruction index i: the block that returns the failure
// status must contain a free call.
func failurePathLeaks(fn *fnAbs, i int) (uint32, bool) {
	// Find the conditional branch within the next few instructions; the
	// failure code is the linear block containing "movi r0, 0xC0000001"
	// before the next ret.
	sawFree := false
	sawFailStatus := false
	var failPC uint32
	for j := i + 1; j < len(fn.instrs); j++ {
		in := fn.instrs[j]
		if in.Op == isa.CALL {
			if api := apiAt(fn, j); isFree(api) {
				sawFree = true
			}
			if api := apiAt(fn, j); isAlloc(api) {
				// Next allocation: this one's failure handling is over.
				break
			}
		}
		if in.Op == isa.MOVI && in.Rd == 0 && in.Imm == 0xC0000001 {
			sawFailStatus = true
			failPC = fn.pcs[j]
		}
		if in.Op == isa.RET {
			break
		}
	}
	if sawFailStatus && !sawFree {
		return failPC, true
	}
	return 0, false
}

func checkTimerRule(fn *fnAbs, imageCallsInitTimer bool) []Finding {
	var out []Finding
	for _, ev := range fn.events {
		if ev.api == "NdisMSetTimer" && !imageCallsInitTimer {
			out = append(out, Finding{Rule: "timer-not-initialized", Func: fn.entry, PC: ev.pc,
				Msg: "NdisMSetTimer but NdisMInitializeTimer is never called"})
		}
	}
	return out
}

// checkIndexRule flags the classic unvalidated-jump-table pattern: a wide
// mask (>= 0x100) feeding an indirect jump in the same function.
func checkIndexRule(fn *fnAbs) []Finding {
	wideMask := false
	var maskPC uint32
	hasJR := false
	for i, in := range fn.instrs {
		if in.Op == isa.ANDI && in.Imm >= 0x100 {
			wideMask = true
			maskPC = fn.pcs[i]
		}
		if in.Op == isa.JR {
			hasJR = true
		}
	}
	if wideMask && hasJR {
		return []Finding{{Rule: "unchecked-table-index", Func: fn.entry, PC: maskPC,
			Msg: "wide masked index feeds an indirect jump without bounds validation"}}
	}
	return nil
}

// apiAt returns the API name for the CALL at instruction index i, or "".
func apiAt(fn *fnAbs, i int) string {
	idx := eventIndexAt(fn, i)
	if idx < 0 {
		return ""
	}
	return fn.events[idx].api
}

func eventIndexAt(fn *fnAbs, i int) int {
	pc := fn.pcs[i]
	for idx, ev := range fn.events {
		if ev.pc == pc {
			return idx
		}
	}
	return -1
}
