package baseline_test

import (
	"strings"
	"testing"

	"repro/internal/baseline/driververifier"
	"repro/internal/baseline/sdv"
	"repro/internal/corpus"
)

// TestDriverVerifierFindsNoneOfTable2 reproduces §5.1: "We tried to find
// these bugs with the Microsoft Driver Verifier running the driver
// concretely, but did not find any of them."
func TestDriverVerifierFindsNoneOfTable2(t *testing.T) {
	for _, name := range []string{"rtl8029", "amd-pcnet", "intel-pro1000", "intel-pro100", "ensoniq-audiopci", "intel-ac97"} {
		img, err := corpus.Build(name, corpus.Buggy)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		rep, err := driververifier.Run(img, driververifier.Options{})
		if err != nil {
			t.Fatalf("dv %s: %v", name, err)
		}
		if len(rep.Bugs) != 0 {
			for _, b := range rep.Bugs {
				t.Errorf("%s: DV unexpectedly found: %s", name, b.Describe())
			}
		}
	}
}

func TestSDVFindsEightSampleBugs(t *testing.T) {
	img, err := corpus.Build("ddk-sample", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	rep := sdv.Analyze(img)
	t.Logf("%s", rep)
	if len(rep.Findings) != 8 {
		t.Errorf("SDV findings on sample = %d, want 8", len(rep.Findings))
	}
	wantRules := []string{
		"alloc-no-null-check", "leak-on-failure-path", "timer-not-initialized",
		"release-not-acquired", "paged-alloc-under-lock", "double-free",
		"unchecked-table-index", "wrong-irql-call",
	}
	have := map[string]bool{}
	for _, f := range rep.Findings {
		have[f.Rule] = true
	}
	for _, r := range wantRules {
		if !have[r] {
			t.Errorf("SDV missing rule hit %q", r)
		}
	}
}

func TestSDVCleanOnFixedSample(t *testing.T) {
	img, err := corpus.Build("ddk-sample", corpus.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	rep := sdv.Analyze(img)
	if len(rep.Findings) != 0 {
		t.Errorf("SDV findings on fixed sample:\n%s", rep)
	}
}

// TestSDVSyntheticProfile reproduces §5.1's synthetic-bug comparison: of
// the five injected bugs (deadlock, out-of-order release, extra release,
// forgotten release, wrong-IRQL call), SDV misses the first three, finds
// the last two, and produces one false positive.
func TestSDVSyntheticProfile(t *testing.T) {
	img, err := corpus.Build("ddk-sample-synthetic", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	rep := sdv.Analyze(img)
	t.Logf("%s", rep)
	if len(rep.Findings) != 3 {
		t.Fatalf("SDV findings on synthetic = %d, want 3 (2 real + 1 FP)", len(rep.Findings))
	}
	real, fp := 0, 0
	for _, f := range rep.Findings {
		switch {
		case f.Rule == "forgotten-release" && strings.Contains(f.Msg, "acquired 1"):
			// Either the genuine SYN4 or the smp_flush false positive;
			// distinguish below by count.
			real++
		case f.Rule == "wrong-irql-call":
			real++
		default:
			fp++
		}
	}
	// Two forgotten-release findings (one genuine, one the FP) plus the
	// wrong-IRQL hit.
	forgotten := 0
	for _, f := range rep.Findings {
		if f.Rule == "forgotten-release" {
			forgotten++
		}
	}
	if forgotten != 2 {
		t.Errorf("forgotten-release findings = %d, want 2 (genuine + false positive)", forgotten)
	}
	wrongIrql := 0
	for _, f := range rep.Findings {
		if f.Rule == "wrong-irql-call" {
			wrongIrql++
		}
	}
	if wrongIrql != 1 {
		t.Errorf("wrong-irql findings = %d, want 1", wrongIrql)
	}
	// The misses: no deadlock, no out-of-order, no extra-release findings.
	for _, f := range rep.Findings {
		if f.Rule == "double-acquire" || f.Rule == "release-not-acquired" {
			t.Errorf("SDV should have missed: %s", f)
		}
	}
	_ = real
	_ = fp
}

func TestSDVCleanOnFixedSynthetic(t *testing.T) {
	img, err := corpus.Build("ddk-sample-synthetic", corpus.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	rep := sdv.Analyze(img)
	// The FP bait (lock released in a callee) is present in both variants
	// of the synthetic driver, so fixed still shows exactly the one FP.
	if len(rep.Findings) != 1 || rep.Findings[0].Rule != "forgotten-release" {
		t.Errorf("fixed synthetic should show exactly the FP bait:\n%s", rep)
	}
}
