package manager

import (
	"context"
	"net/http/httptest"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/fuzz"
)

// startManager spins up a full manager (in-memory state) over real HTTP.
func startManager(t *testing.T, cfg Config, ttl time.Duration) (*Manager, *httptest.Server) {
	t.Helper()
	state, err := OpenState("")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(cfg, ttl)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(state, sched)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func workerCfg(srv *httptest.Server, name string) WorkerConfig {
	return WorkerConfig{
		Manager:      srv.URL,
		Name:         name,
		Procs:        2,
		PollInterval: 50 * time.Millisecond,
		SyncInterval: 100 * time.Millisecond,
		OneShot:      true,
	}
}

// TestFleetMatchesSingleProcess is the headline acceptance check: two
// ddtfuzz -manager workers attached to one ddtd, fuzzing rtl8029 with the
// same budget and seeds as a single-process campaign, find (at least) the
// same bug set — and the manager holds exactly one crash entry per
// deduplicated key, however many workers hit it.
func TestFleetMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign in -short mode")
	}
	const budget = 5_000

	// Reference: the single-process campaign (same as the fuzz package's
	// tier-1 end-to-end test).
	img, err := corpus.Build("rtl8029", corpus.Buggy)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fuzz.DefaultConfig()
	fcfg.Workers = 2
	fcfg.MaxExecs = budget
	fcfg.Seed = 1
	single, err := fuzz.New(img, fcfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	singleClasses := single.CountByClass()
	if len(singleClasses) == 0 {
		t.Fatal("single-process reference found nothing; budget too small")
	}

	// Fleet: one campaign, two slots of the same budget (slot seeds 1 and
	// 2), two worker processes.
	cfg := Config{Campaigns: []CampaignSpec{
		{ID: "net", Driver: "rtl8029", Workers: 2, Execs: budget, Seed: 1},
	}}
	m, srv := startManager(t, cfg, time.Minute)
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := RunWorker(context.Background(), workerCfg(srv, name)); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}
	wg.Wait()
	if !m.Sched.Done() {
		t.Fatal("fleet campaign did not complete every slot")
	}

	crashes := m.State.Crashes("rtl8029")
	if len(crashes) == 0 {
		t.Fatal("fleet found no crashes")
	}
	// No duplicate crash entries fleet-wide.
	keys := make(map[string]bool)
	fleetClasses := make(map[string]bool)
	for _, e := range crashes {
		if keys[e.Key] {
			t.Fatalf("crash key %s has two entries (fleet dedup broken)", e.Key)
		}
		keys[e.Key] = true
		fleetClasses[e.Class] = true
		if len(e.Reproducers) == 0 || e.Reproducers[0].Feed == nil {
			t.Fatalf("crash %s has no reproducer feed", e.Key)
		}
		// Every served reproducer must replay to the same dedup key.
		res := fuzz.NewExecutor(img, nil, fuzz.DefaultOptions()).Run(e.Reproducers[0].Feed)
		if res.Crash == nil || res.Crash.Key() != e.Key {
			t.Errorf("crash %s: manager-held reproducer did not replay", e.Key)
		}
	}
	// The fleet ran the reference campaign as slot 0 (same seed, same
	// budget) plus a second slot and corpus sharing: it must cover the
	// single-process bug set.
	for class := range singleClasses {
		if !fleetClasses[class] {
			t.Errorf("single-process class %q missing from fleet results %v", class, fleetClasses)
		}
	}
	// Progress counters merged: the fleet ran 2 slots of the budget.
	sums := m.State.Summaries()
	if len(sums) != 1 || sums[0].Execs < budget {
		t.Fatalf("fleet summaries = %+v, want >= %d execs merged", sums, budget)
	}
}

// TestWorkerLeaseReassignment kills a worker mid-campaign (it takes a
// lease and vanishes without heartbeating) and checks the campaign is
// re-issued to — and completed by — a second worker.
func TestWorkerLeaseReassignment(t *testing.T) {
	cfg := Config{Campaigns: []CampaignSpec{
		{ID: "net", Driver: "rtl8029", Workers: 1, Execs: 300, Seed: 3},
	}}
	m, srv := startManager(t, cfg, 200*time.Millisecond)

	// The doomed worker: polls the lease, then its process "crashes".
	ctx := context.Background()
	dead := NewClient(srv.URL, nil)
	if _, err := dead.Connect(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	lease, err := dead.Poll(ctx)
	if err != nil || lease == nil {
		t.Fatalf("doomed worker got no lease: %v %+v", err, lease)
	}

	// A healthy worker attaches; it can only get the slot after the TTL
	// reaps the dead lease.
	done := make(chan error, 1)
	go func() { done <- RunWorker(ctx, workerCfg(srv, "healthy")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("healthy worker never completed the re-issued campaign")
	}
	if !m.Sched.Done() {
		t.Fatal("campaign not completed after reassignment")
	}
	camps, _ := m.Sched.Status()
	if len(camps) != 1 || camps[0].Reissues != 1 {
		t.Fatalf("campaign status = %+v, want exactly 1 reissue", camps)
	}

	// The dead worker's late final report must not corrupt the done slot,
	// but its crash evidence (if any) still merges.
	before := len(m.State.Crashes("rtl8029"))
	if _, err := dead.Report(ctx, &ReportRequest{
		LeaseID: lease.LeaseID,
		Driver:  lease.Driver,
		Final:   true,
		Crashes: []CrashReport{{Crash: crash("resource leak", 0xdead, feed(0xaa))}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.State.Crashes("rtl8029")); got != before+1 {
		t.Fatalf("stale crash evidence dropped: %d -> %d entries", before, got)
	}
}

// TestWorkerGracefulShutdown cancels a worker mid-campaign (the SIGINT
// path: ShutdownContext cancels exactly this way) and checks the final
// report made it out — results flushed — while the unfinished slot is left
// for reassignment rather than marked complete.
func TestWorkerGracefulShutdown(t *testing.T) {
	cfg := Config{Campaigns: []CampaignSpec{
		// A wall-clock budget far longer than the test: only shutdown ends it.
		{ID: "net", Driver: "rtl8029", Workers: 1, Duration: "1h", Seed: 1},
	}}
	m, srv := startManager(t, cfg, time.Minute)

	ctx, cancel := context.WithCancel(context.Background())
	wcfg := workerCfg(srv, "w")
	wcfg.OneShot = false
	done := make(chan error, 1)
	go func() { done <- RunWorker(ctx, wcfg) }()

	// Let it fuzz long enough to have something to report, then "SIGINT".
	deadline := time.Now().Add(10 * time.Second)
	for {
		sums := m.State.Summaries()
		if len(sums) > 0 && sums[0].Execs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never reported progress")
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not shut down after cancel")
	}

	// The final (interrupted) report carried the campaign's results...
	sums := m.State.Summaries()
	if len(sums) != 1 || sums[0].Execs == 0 {
		t.Fatalf("no progress merged before shutdown: %+v", sums)
	}
	// ...but did not complete the slot: the campaign outlives the worker.
	if m.Sched.Done() {
		t.Fatal("interrupted worker completed its slot; the unfinished campaign is lost")
	}
}

// TestShutdownContextSignal injects a real SIGINT and checks
// ShutdownContext cancels — the signal half of the graceful-shutdown path
// shared by ddtd and ddtfuzz.
func TestShutdownContextSignal(t *testing.T) {
	ctx, cancel := ShutdownContext(context.Background())
	defer cancel()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the shutdown context")
	}
}
