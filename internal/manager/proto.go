// Package manager implements ddtd, the distributed campaign manager: a
// long-running control plane that owns the corpus and crash database for a
// fleet of fuzzing/symbolic workers, schedules campaigns across worker
// processes, merges coverage, dedups crashes fleet-wide, and serves status
// and reproducers over HTTP.
//
// The design follows syz-manager: one manager process is the single owner
// of durable campaign state (a state directory; see state.go), and any
// number of stateless worker processes (ddtfuzz -manager <addr>) connect
// over an HTTP/JSON RPC protocol:
//
//	connect → poll (lease a campaign) → [run] → periodic sync (corpus
//	deltas both ways) + report (crashes, coverage, progress) → final report
//
// Work hand-out is lease-based: a worker that stops heartbeating (its
// process crashed, its host died) has its lease expired and the campaign
// slot re-issued to the next poller, so work is re-run rather than lost.
// The wire formats deliberately reuse the fuzzing subsystem's existing
// on-disk formats — fuzz.Feed JSON for reproducers and corpus entries, the
// seed-*.json corpus directory layout — so single-process ddtfuzz corpora
// import cleanly (docs/protocol.md is the protocol reference).
package manager

import (
	"time"

	"repro/internal/fuzz"
)

// Protocol endpoints, all POST with JSON bodies (see docs/protocol.md).
const (
	PathConnect = "/rpc/connect"
	PathPoll    = "/rpc/poll"
	PathReport  = "/rpc/report"
	PathSync    = "/rpc/sync"
)

// ConnectRequest introduces a worker to the manager.
type ConnectRequest struct {
	// Worker is the worker's self-chosen name (host:pid style); the manager
	// appends a unique suffix if it collides.
	Worker string `json:"worker"`
}

// ConnectResponse assigns the worker its identity and cadences.
type ConnectResponse struct {
	// WorkerID is the manager-assigned unique worker identity; every later
	// request carries it.
	WorkerID string `json:"worker_id"`
	// PollIntervalMS is how long an idle worker should wait between polls.
	PollIntervalMS int64 `json:"poll_interval_ms"`
	// SyncIntervalMS is the cadence of mid-campaign sync/report calls; it is
	// well below the lease TTL, so a live worker's lease never expires.
	SyncIntervalMS int64 `json:"sync_interval_ms"`
}

// PollRequest asks for work.
type PollRequest struct {
	WorkerID string `json:"worker_id"`
}

// PollResponse hands out at most one campaign lease.
type PollResponse struct {
	// Lease is nil when no work is available; the worker sleeps its poll
	// interval and asks again.
	Lease *CampaignLease `json:"lease,omitempty"`
}

// Campaign modes.
const (
	ModeFuzz     = "fuzz"
	ModeSymbolic = "symbolic"
)

// CampaignLease is one unit of handed-out work: a campaign slot bound to a
// worker for as long as the worker keeps heartbeating (report/sync renew
// the lease).
type CampaignLease struct {
	// LeaseID identifies this hand-out; reports must echo it. A re-issued
	// slot gets a fresh LeaseID, so stale reports from a presumed-dead
	// worker are recognizable (they are still merged — crash evidence is
	// crash evidence — but cannot complete the slot).
	LeaseID string `json:"lease_id"`
	// Campaign / Slot name the work unit: campaign ID from the config file
	// and the slot index within its worker fan-out.
	Campaign string `json:"campaign"`
	Slot     int    `json:"slot"`
	// Driver is the corpus driver to build ("rtl8029", ...); Fixed selects
	// the corrected variant.
	Driver string `json:"driver"`
	Fixed  bool   `json:"fixed,omitempty"`
	// Mode is ModeFuzz or ModeSymbolic.
	Mode string `json:"mode"`
	// Fuzz-mode budgets and switches (per slot).
	Execs      uint64 `json:"execs,omitempty"`
	DurationMS int64  `json:"duration_ms,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Persist    bool   `json:"persist,omitempty"`
	Dict       bool   `json:"dict,omitempty"`
	// Symbolic-mode switches: engine worker count and cross-phase
	// pipelining.
	EngineWorkers int  `json:"engine_workers,omitempty"`
	Pipeline      bool `json:"pipeline,omitempty"`
	// Seeds is the manager's current corpus for the driver, shipped as
	// initial seeds so a fresh worker starts from fleet knowledge instead
	// of from scratch.
	Seeds []*fuzz.Feed `json:"seeds,omitempty"`
}

// CrashReport is one worker-observed crash: the dedup identity plus the
// replayable reproducer feed. The manager dedups fleet-wide by
// Crash.Key() (checker class @ fault site) and attaches every distinct
// reproducer to the one entry.
type CrashReport struct {
	Crash *fuzz.Crash `json:"crash"`
}

// ReportRequest carries results: crashes, the coverage delta, and progress
// counters. Sent periodically during a campaign and once more with Final
// set when the lease's work is done. Any report renews the lease.
type ReportRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
	// Driver names the driver the results belong to. It rides in the report
	// (rather than being looked up from the lease) so that evidence from a
	// STALE lease — a worker the manager already presumed dead — still
	// merges: crash evidence is never discarded.
	Driver string `json:"driver"`
	// Final marks lease completion: the slot is done and will not be
	// re-issued.
	Final bool `json:"final,omitempty"`
	// Crashes are the crashes found since the last report (deduplicated
	// worker-side; the manager dedups again fleet-wide).
	Crashes []CrashReport `json:"crashes,omitempty"`
	// NewBlocks is the covered-block delta since the last report, merged
	// into the manager's fleet coverage map for the driver.
	NewBlocks []uint32 `json:"new_blocks,omitempty"`
	// BlocksStatic is the driver's static block denominator (constant per
	// driver; sent so the manager can report relative coverage).
	BlocksStatic int `json:"blocks_static,omitempty"`
	// Execs / Instructions are cumulative campaign progress counters.
	Execs        uint64 `json:"execs,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	// Stop asks the worker to wind the campaign down (lease re-issued
	// elsewhere or manager shutting down).
	Stop bool `json:"stop,omitempty"`
}

// SyncRequest is the periodic two-way corpus exchange: the worker uploads
// entries it admitted since the last sync, and tells the manager which
// content hashes it already has. Any sync renews the lease.
type SyncRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
	// Driver names the corpus being synced (see ReportRequest.Driver).
	Driver string `json:"driver"`
	// Added are corpus entries the worker admitted since its last sync.
	Added []fuzz.Entry `json:"added,omitempty"`
	// Have lists content hashes of feeds the worker already holds (its own
	// admissions and previously downloaded ones), so the manager ships only
	// the difference.
	Have []string `json:"have,omitempty"`
}

// SyncResponse ships the manager→worker half of the corpus delta.
type SyncResponse struct {
	// Seeds are fleet corpus feeds the worker does not have yet.
	Seeds []*fuzz.Feed `json:"seeds,omitempty"`
	// Stop mirrors ReportResponse.Stop.
	Stop bool `json:"stop,omitempty"`
}

// errorResponse is the JSON body of a non-200 RPC answer.
type errorResponse struct {
	Error string `json:"error"`
}

// CampaignSpec is one campaign in the ddtd config file: a driver, a mode,
// and a worker fan-out. Every slot in Workers is handed out as its own
// lease (with a distinct per-slot seed), so one campaign spreads across
// the fleet.
type CampaignSpec struct {
	// ID names the campaign (unique within the config).
	ID     string `json:"id"`
	Driver string `json:"driver"`
	Fixed  bool   `json:"fixed,omitempty"`
	// Mode is "fuzz" (default) or "symbolic".
	Mode string `json:"mode,omitempty"`
	// Workers is the slot fan-out (default 1).
	Workers int `json:"workers,omitempty"`
	// Execs / Duration bound each slot's campaign ("30s" syntax for
	// Duration). At least one must be set for fuzz mode.
	Execs    uint64 `json:"execs,omitempty"`
	Duration string `json:"duration,omitempty"`
	// Seed is the base RNG seed; slot i runs with Seed+i.
	Seed    int64 `json:"seed,omitempty"`
	Persist bool  `json:"persist,omitempty"`
	Dict    bool  `json:"dict,omitempty"`
	// Symbolic-mode knobs.
	EngineWorkers int  `json:"engine_workers,omitempty"`
	Pipeline      bool `json:"pipeline,omitempty"`
}

// Config is the ddtd campaign config file format.
type Config struct {
	Campaigns []CampaignSpec `json:"campaigns"`
}

// duration parses the spec's Duration field (empty means 0).
func (s *CampaignSpec) duration() (time.Duration, error) {
	if s.Duration == "" {
		return 0, nil
	}
	return time.ParseDuration(s.Duration)
}
