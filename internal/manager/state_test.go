package manager

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fuzz"
)

func feed(bytes ...byte) *fuzz.Feed { return &fuzz.Feed{Data: bytes} }

func crash(class string, site uint32, f *fuzz.Feed) *fuzz.Crash {
	return &fuzz.Crash{Class: class, RawClass: class, PC: site, Site: site, Entry: "send", Msg: "boom", Feed: f}
}

// TestStateCorpusDedup: corpus admission is content-hash keyed — the same
// feed from two workers is one entry; distinct feeds are distinct entries.
func TestStateCorpusDedup(t *testing.T) {
	s, err := OpenState("")
	if err != nil {
		t.Fatal(err)
	}
	ok, h1 := s.AddCorpus("rtl8029", fuzz.Entry{Feed: feed(1, 2, 3, 4), Gain: 2}, "w1")
	if !ok {
		t.Fatal("first admission rejected")
	}
	ok, h2 := s.AddCorpus("rtl8029", fuzz.Entry{Feed: feed(1, 2, 3, 4), Gain: 5}, "w2")
	if ok || h1 != h2 {
		t.Fatalf("duplicate feed admitted twice (%v, %s vs %s)", ok, h1, h2)
	}
	if ok, _ := s.AddCorpus("rtl8029", fuzz.Entry{Feed: feed(9), Gain: 1}, "w2"); !ok {
		t.Fatal("distinct feed rejected")
	}
	if n := len(s.CorpusFeeds("rtl8029")); n != 2 {
		t.Fatalf("corpus size = %d, want 2", n)
	}
	// Diff ships only what the caller is missing.
	diff := s.CorpusDiff("rtl8029", []string{h1})
	if len(diff) != 1 || !diff[0].Equal(feed(9)) {
		t.Fatalf("diff = %v, want just the second feed", diff)
	}
}

// TestStateFleetCrashDedup is the fleet-dedup satellite check: two workers
// reporting the same fault site + checker class from DIFFERENT feeds
// produce one crash entry holding two reproducers and both workers.
func TestStateFleetCrashDedup(t *testing.T) {
	s, err := OpenState("")
	if err != nil {
		t.Fatal(err)
	}
	newEntry, newRepro := s.AddCrash("rtl8029", "worker-1", crash("race condition", 0x44, feed(1, 2, 3, 4)))
	if !newEntry || !newRepro {
		t.Fatalf("first report: newEntry=%v newRepro=%v, want true/true", newEntry, newRepro)
	}
	newEntry, newRepro = s.AddCrash("rtl8029", "worker-2", crash("race condition", 0x44, feed(5, 6, 7, 8)))
	if newEntry || !newRepro {
		t.Fatalf("second report: newEntry=%v newRepro=%v, want false/true", newEntry, newRepro)
	}
	// Same worker, same feed again: pure duplicate, counted but not grown.
	newEntry, newRepro = s.AddCrash("rtl8029", "worker-2", crash("race condition", 0x44, feed(5, 6, 7, 8)))
	if newEntry || newRepro {
		t.Fatal("exact duplicate grew the entry")
	}

	crashes := s.Crashes("rtl8029")
	if len(crashes) != 1 {
		t.Fatalf("crash entries = %d, want 1 (fleet dedup)", len(crashes))
	}
	e := crashes[0]
	if e.Reports != 3 {
		t.Fatalf("reports = %d, want 3", e.Reports)
	}
	if len(e.Workers) != 2 || e.Workers[0] != "worker-1" || e.Workers[1] != "worker-2" {
		t.Fatalf("workers = %v, want [worker-1 worker-2]", e.Workers)
	}
	if len(e.Reproducers) != 2 {
		t.Fatalf("reproducers = %d, want 2 (distinct feeds)", len(e.Reproducers))
	}
	// A different class at the same site is a different bug.
	if newEntry, _ := s.AddCrash("rtl8029", "worker-1", crash("resource leak", 0x44, feed(1))); !newEntry {
		t.Fatal("different class at same site deduped away")
	}
}

// TestStateDurability: a state directory survives a close/reopen cycle —
// corpus entries (with metadata), crash entries, totals, trend series.
func TestStateDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	tick := 0
	s.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Second) }

	s.AddCorpus("rtl8029", fuzz.Entry{Feed: feed(1, 2, 3, 4), Gain: 3}, "w1")
	s.AddCorpus("rtl8029", fuzz.Entry{Feed: feed(5), Gain: 1}, "w2")
	s.AddCrash("rtl8029", "w1", crash("race condition", 0x44, feed(1, 2, 3, 4)))
	s.MergeCoverage("rtl8029", []uint32{0x10, 0x20}, 50, 100, 9999, "worker")
	s.AddBench([]BenchTrendPoint{{Time: base, Name: "BenchmarkX", Metric: "ns/op", Value: 123}})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// The corpus files must be single-process-compatible seed-*.json.
	feeds, err := fuzz.LoadDir(filepath.Join(dir, "corpus", "rtl8029"))
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 2 {
		t.Fatalf("on-disk corpus = %d feeds, want 2", len(feeds))
	}

	r, err := OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := r.CorpusEntries("rtl8029")
	if len(entries) != 2 {
		t.Fatalf("reloaded corpus = %d entries, want 2", len(entries))
	}
	if entries[0].Gain != 3 || entries[0].Worker != "w1" {
		t.Fatalf("reloaded entry lost metadata: %+v", entries[0])
	}
	crashes := r.Crashes("rtl8029")
	if len(crashes) != 1 || len(crashes[0].Reproducers) != 1 {
		t.Fatalf("reloaded crashes = %+v, want 1 entry with 1 reproducer", crashes)
	}
	if crashes[0].Reproducers[0].Feed == nil {
		t.Fatal("reloaded reproducer lost its feed")
	}
	sums := r.Summaries()
	if len(sums) != 1 || sums[0].Execs != 100 || sums[0].Instructions != 9999 || sums[0].BlocksStatic != 50 {
		t.Fatalf("reloaded totals = %+v", sums)
	}
	if tr := r.CoverageTrend("rtl8029"); len(tr) != 1 || tr[0].Blocks != 2 {
		t.Fatalf("reloaded coverage trend = %+v", tr)
	}
	if b := r.BenchTrend(); len(b) != 1 || b[0].Value != 123 {
		t.Fatalf("reloaded bench trend = %+v", b)
	}
}

// TestStateImportCorpusDir: a single-process ddtfuzz corpus directory
// imports cleanly (the shared on-disk format), deduplicating re-imports.
func TestStateImportCorpusDir(t *testing.T) {
	src := t.TempDir()
	if err := fuzz.SaveFeed(feed(1, 2, 3, 4), filepath.Join(src, "seed-0000.json")); err != nil {
		t.Fatal(err)
	}
	if err := fuzz.SaveFeed(feed(5, 6), filepath.Join(src, "seed-0001.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "notes.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenState("")
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.ImportCorpusDir("rtl8029", src)
	if err != nil || n != 2 {
		t.Fatalf("import = %d, %v; want 2, nil", n, err)
	}
	n, err = s.ImportCorpusDir("rtl8029", src)
	if err != nil || n != 0 {
		t.Fatalf("re-import = %d, %v; want 0, nil (dedup)", n, err)
	}
}

// TestIngestFuzzReport: a ddtfuzz -json report folds into the crash store
// and the coverage trend.
func TestIngestFuzzReport(t *testing.T) {
	s, err := OpenState("")
	if err != nil {
		t.Fatal(err)
	}
	rep := &fuzz.Report{
		Driver:        "rtl8029",
		Execs:         5000,
		Instructions:  77777,
		Crashes:       []*fuzz.Crash{crash("race condition", 0x44, feed(1, 2, 3, 4))},
		BlocksCovered: 40,
		BlocksStatic:  50,
	}
	if err := s.IngestFuzzReport(rep, "nightly"); err != nil {
		t.Fatal(err)
	}
	crashes := s.Crashes("rtl8029")
	if len(crashes) != 1 || len(crashes[0].Reproducers) != 1 {
		t.Fatalf("ingest crashes = %+v", crashes)
	}
	tr := s.CoverageTrend("rtl8029")
	if len(tr) != 1 || tr[0].Blocks != 40 || tr[0].Source != "nightly" {
		t.Fatalf("ingest trend = %+v", tr)
	}
	if err := s.IngestFuzzReport(&fuzz.Report{}, "x"); err == nil {
		t.Fatal("driverless report accepted")
	}
}

// TestParseBenchOutput: raw `go test -bench` output parses into one trend
// point per metric, with noise lines skipped.
func TestParseBenchOutput(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: repro/internal/fuzz
BenchmarkPersistCampaign/cold-8         	       3	 41210000 ns/op	        2861 execs/sec
BenchmarkPersistCampaign/warm-8         	       5	 22100000 ns/op
PASS
ok  	repro/internal/fuzz	1.234s
`
	pts := ParseBenchOutput(text)
	if len(pts) != 3 {
		t.Fatalf("parsed %d points, want 3: %+v", len(pts), pts)
	}
	if pts[0].Name != "BenchmarkPersistCampaign/cold" || pts[0].Metric != "ns/op" || pts[0].Value != 41210000 {
		t.Fatalf("point 0 = %+v", pts[0])
	}
	if pts[1].Metric != "execs/sec" || pts[1].Value != 2861 {
		t.Fatalf("point 1 = %+v", pts[1])
	}
	if pts[2].Name != "BenchmarkPersistCampaign/warm" {
		t.Fatalf("point 2 = %+v", pts[2])
	}
}

// TestFeedHashStability: the content hash is a pure function of the feed's
// canonical serialization — equal feeds hash equal, different feeds differ.
func TestFeedHashStability(t *testing.T) {
	a, b := FeedHash(feed(1, 2, 3)), FeedHash(feed(1, 2, 3))
	if a != b {
		t.Fatalf("equal feeds hashed differently: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("hash length = %d, want 16 hex chars", len(a))
	}
	if FeedHash(feed(1, 2, 4)) == a {
		t.Fatal("different feeds collided")
	}
}
