package manager

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fuzz"
)

func newTestServer(t *testing.T, cfg Config, ttl time.Duration) (*Manager, *httptest.Server) {
	t.Helper()
	state, err := OpenState("")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(cfg, ttl)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(state, sched)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestServerRPCFlow drives the whole worker protocol over real HTTP:
// connect → poll → sync (corpus up, diff down) → report (crash, coverage)
// → final report, then checks every status endpoint reflects it.
func TestServerRPCFlow(t *testing.T) {
	cfg := Config{Campaigns: []CampaignSpec{{ID: "net", Driver: "rtl8029", Workers: 1, Execs: 100}}}
	m, srv := newTestServer(t, cfg, time.Minute)
	ctx := context.Background()
	c := NewClient(srv.URL, nil)

	conn, err := c.Connect(ctx, "itest")
	if err != nil {
		t.Fatal(err)
	}
	if conn.WorkerID == "" || conn.SyncIntervalMS <= 0 {
		t.Fatalf("bad connect response: %+v", conn)
	}
	lease, err := c.Poll(ctx)
	if err != nil || lease == nil {
		t.Fatalf("poll: %v, %+v", err, lease)
	}
	if lease.Driver != "rtl8029" || lease.Mode != ModeFuzz || lease.Execs != 100 {
		t.Fatalf("lease = %+v", lease)
	}

	// Corpus sync: upload one entry, and the diff must NOT echo it back.
	sresp, err := c.Sync(ctx, &SyncRequest{
		LeaseID: lease.LeaseID,
		Driver:  lease.Driver,
		Added:   []fuzz.Entry{{Feed: feed(1, 2, 3, 4), Gain: 2}},
		Have:    []string{FeedHash(feed(1, 2, 3, 4))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sresp.Stop || len(sresp.Seeds) != 0 {
		t.Fatalf("sync response = %+v, want no echo of our own feed", sresp)
	}
	// A second connected worker shows up in /status below.
	c2 := NewClient(srv.URL, nil)
	if _, err := c2.Connect(ctx, "peer"); err != nil {
		t.Fatal(err)
	}

	// Crash + coverage report.
	rresp, err := c.Report(ctx, &ReportRequest{
		LeaseID:      lease.LeaseID,
		Driver:       lease.Driver,
		Crashes:      []CrashReport{{Crash: crash("race condition", 0x44, feed(9, 9, 9, 9))}},
		NewBlocks:    []uint32{0x10, 0x20, 0x30},
		BlocksStatic: 50,
		Execs:        60,
		Instructions: 600,
	})
	if err != nil || rresp.Stop {
		t.Fatalf("report: %v, %+v", err, rresp)
	}
	if _, err := c.Report(ctx, &ReportRequest{
		LeaseID: lease.LeaseID, Driver: lease.Driver, Final: true,
		Execs: 100, Instructions: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	if !m.Sched.Done() {
		t.Fatal("final report did not complete the slot")
	}

	var status StatusPage
	getJSON(t, srv.URL+"/status", &status)
	if len(status.Drivers) != 1 || status.Drivers[0].Execs != 100 || status.Drivers[0].BlocksCovered != 3 {
		t.Fatalf("/status drivers = %+v", status.Drivers)
	}
	if len(status.Campaigns) != 1 || status.Campaigns[0].Done != 1 {
		t.Fatalf("/status campaigns = %+v", status.Campaigns)
	}
	if len(status.Workers) != 2 {
		t.Fatalf("/status workers = %+v", status.Workers)
	}

	var corpusPage CorpusPage
	getJSON(t, srv.URL+"/corpus?driver=rtl8029", &corpusPage)
	if len(corpusPage.Entries) != 1 || corpusPage.Entries[0].Gain != 2 {
		t.Fatalf("/corpus = %+v", corpusPage)
	}

	var crashesPage CrashesPage
	getJSON(t, srv.URL+"/crashes", &crashesPage)
	if len(crashesPage.Crashes) != 1 {
		t.Fatalf("/crashes = %+v", crashesPage)
	}
	listed := crashesPage.Crashes[0]
	if len(listed.Reproducers) != 1 || listed.Reproducers[0].Feed != nil {
		t.Fatalf("crash list must omit reproducer feeds: %+v", listed)
	}

	var one CrashEntry
	getJSON(t, srv.URL+"/crash/"+listed.ID, &one)
	if len(one.Reproducers) != 1 || one.Reproducers[0].Feed == nil {
		t.Fatalf("/crash/<id> must serve the reproducer feed: %+v", one)
	}
	if !one.Reproducers[0].Feed.Equal(feed(9, 9, 9, 9)) {
		t.Fatal("served reproducer is not the reported feed")
	}

	var trends TrendsPage
	getJSON(t, srv.URL+"/trends", &trends)
	if len(trends.Coverage) == 0 {
		t.Fatalf("/trends = %+v, want a coverage sample", trends)
	}
}

// TestServerHTML: browsers (Accept: text/html) get the minimal status
// pages; everyone else gets JSON.
func TestServerHTML(t *testing.T) {
	m, srv := newTestServer(t, Config{}, time.Minute)
	m.State.AddCrash("rtl8029", "w", crash("race condition", 0x44, feed(1)))
	id := m.State.Crashes("")[0].ID
	for _, path := range []string{"/status", "/corpus", "/crashes", "/crash/" + id, "/trends"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("Accept", "text/html")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(ct, "text/html") {
			t.Errorf("GET %s (html) = %d %s", path, resp.StatusCode, ct)
		}
		resp, err = http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		ct = resp.Header.Get("Content-Type")
		resp.Body.Close()
		if !strings.Contains(ct, "application/json") {
			t.Errorf("GET %s (default) = %s, want JSON", path, ct)
		}
	}
}

// TestServerErrors: malformed and invalid requests answer structured JSON
// errors with the right status codes.
func TestServerErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{}, time.Minute)
	resp, err := http.Post(srv.URL+PathReport, "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+PathReport, "application/json", strings.NewReader(`{"worker_id":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("driverless report = HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/crash/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown crash = HTTP %d, want 404", resp.StatusCode)
	}
}

// TestServerConcurrent hammers the RPC endpoints and every read endpoint
// at once — the RWMutex-snapshot claim of the serving layer, checked under
// the race detector in CI.
func TestServerConcurrent(t *testing.T) {
	cfg := Config{Campaigns: []CampaignSpec{{ID: "net", Driver: "rtl8029", Workers: 4, Execs: 1000}}}
	_, srv := newTestServer(t, cfg, time.Minute)
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(srv.URL, nil)
			if _, err := c.Connect(ctx, "hammer"); err != nil {
				t.Error(err)
				return
			}
			lease, err := c.Poll(ctx)
			if err != nil || lease == nil {
				t.Errorf("worker %d: poll: %v %+v", w, err, lease)
				return
			}
			for i := 0; i < 20; i++ {
				b := byte(w*20 + i)
				if _, err := c.Sync(ctx, &SyncRequest{
					LeaseID: lease.LeaseID, Driver: lease.Driver,
					Added: []fuzz.Entry{{Feed: feed(b, b, b, b), Gain: 1}},
				}); err != nil {
					t.Errorf("worker %d: sync: %v", w, err)
				}
				if _, err := c.Report(ctx, &ReportRequest{
					LeaseID: lease.LeaseID, Driver: lease.Driver,
					Crashes:      []CrashReport{{Crash: crash("race condition", uint32(0x40+w%2*4), feed(b))}},
					NewBlocks:    []uint32{uint32(b)},
					BlocksStatic: 100,
					Execs:        uint64(i * 10),
					Instructions: uint64(i * 100),
				}); err != nil {
					t.Errorf("worker %d: report: %v", w, err)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{"/status", "/corpus", "/crashes", "/trends"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	var crashesPage CrashesPage
	getJSON(t, srv.URL+"/crashes", &crashesPage)
	if len(crashesPage.Crashes) != 2 {
		t.Fatalf("crash entries = %d, want 2 (fleet dedup across 4 workers)", len(crashesPage.Crashes))
	}
}
