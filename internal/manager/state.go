package manager

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exerciser"
	"repro/internal/fuzz"
)

// FeedHash is the content identity of a feed: the hex-truncated SHA-256 of
// its canonical JSON serialization. Corpus entries are keyed by it
// fleet-wide, and it names the feed's file in the state directory
// (seed-<hash>.json — still matching the seed-*.json glob of the
// single-process corpus format, so fuzz.LoadDir reads manager corpora).
func FeedHash(f *fuzz.Feed) string {
	b, _ := f.Marshal() // Feed marshaling cannot fail (plain data fields)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// CorpusEntry is one fleet corpus feed with its admission metadata.
type CorpusEntry struct {
	Hash   string     `json:"hash"`
	Driver string     `json:"driver"`
	Gain   int        `json:"gain"`
	Size   int        `json:"size"`
	Worker string     `json:"worker,omitempty"`
	Added  time.Time  `json:"added"`
	Feed   *fuzz.Feed `json:"-"` // stored as its own seed-<hash>.json file
}

// corpusMeta is the persisted per-entry metadata (corpus/<driver>/index.json).
type corpusMeta struct {
	Gain   int       `json:"gain"`
	Worker string    `json:"worker,omitempty"`
	Added  time.Time `json:"added"`
}

// Reproducer is one distinct feed that reproduces a crash entry, with its
// reporting worker attached.
type Reproducer struct {
	Hash   string     `json:"hash"`
	Worker string     `json:"worker,omitempty"`
	Added  time.Time  `json:"added"`
	Feed   *fuzz.Feed `json:"feed"`
}

// CrashEntry is one fleet-deduplicated crash: however many workers hit the
// same checker class at the same fault site, there is exactly one entry,
// accumulating every distinct reproducer feed and the set of reporting
// workers.
type CrashEntry struct {
	// ID is the stable URL identity (/crash/<id>): a hash of driver+key.
	ID     string `json:"id"`
	Driver string `json:"driver"`
	// Key is the dedup identity, fuzz.Crash.Key(): "<class>@<site>".
	Key         string    `json:"key"`
	Class       string    `json:"class"`
	RawClass    string    `json:"raw_class,omitempty"`
	PC          uint32    `json:"pc"`
	Site        uint32    `json:"site"`
	Entry       string    `json:"entry,omitempty"`
	Msg         string    `json:"msg,omitempty"`
	InInterrupt bool      `json:"in_interrupt,omitempty"`
	FirstSeen   time.Time `json:"first_seen"`
	// Reports counts every report of this key, duplicates included.
	Reports int `json:"reports"`
	// Workers is the sorted set of distinct reporting workers.
	Workers []string `json:"workers"`
	// Reproducers are the distinct feeds (by content hash) that reached the
	// crash, first report first. Reproducers[0] is the entry's canonical
	// (typically minimized) reproducer served at /crash/<id>.
	Reproducers []Reproducer `json:"reproducers"`
}

// crashID derives the stable /crash/<id> identity.
func crashID(driver, key string) string {
	sum := sha256.Sum256([]byte(driver + "|" + key))
	return hex.EncodeToString(sum[:6])
}

// CoverageTrendPoint is one fleet coverage sample, appended whenever a
// report added new blocks (trends/coverage.jsonl, one JSON object a line).
type CoverageTrendPoint struct {
	Time   time.Time `json:"time"`
	Driver string    `json:"driver"`
	Blocks int       `json:"blocks"`
	Static int       `json:"static,omitempty"`
	// Execs / Instructions are the fleet-cumulative counters at the sample.
	Execs        uint64 `json:"execs"`
	Instructions uint64 `json:"instructions"`
	// Source distinguishes live worker reports from one-shot ingests of
	// nightly campaign reports ("worker", "ingest").
	Source string `json:"source,omitempty"`
	// Snapshot-fabric lookup split carried over from persistent-mode fuzz
	// reports (fuzz.Report); zero/absent for non-persistent campaigns.
	SnapHits       uint64 `json:"snap_hits,omitempty"`
	SnapSharedHits uint64 `json:"snap_shared_hits,omitempty"`
	SnapMisses     uint64 `json:"snap_misses,omitempty"`
}

// BenchTrendPoint is one benchmark measurement (trends/bench.jsonl): the
// nightly workflow posts its go-test bench output here, replacing ad-hoc
// artifact diffing with an append-only series the manager serves at
// /trends.
type BenchTrendPoint struct {
	Time time.Time `json:"time"`
	// Name is the benchmark name (sub-benchmark path included).
	Name string `json:"name"`
	// Metric is the unit ("ns/op", "ms/persist-campaign", ...).
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// driverState is the per-driver half of the store.
type driverState struct {
	corpus     map[string]*CorpusEntry // by feed hash
	corpusSeq  []string                // admission order
	crashes    map[string]*CrashEntry  // by crash key
	crashSeq   []string                // discovery order
	coverage   *exerciser.Coverage     // fleet-merged block map
	static     int
	execs      uint64
	instrs     uint64
	reproSeen  map[string]bool // crashKey|feedHash dedup
	corpusSave bool            // index.json dirty
}

// State is the durable campaign store: the single fleet-wide owner of
// corpus, crashes, merged coverage, and trend series. All methods are safe
// for concurrent use; reads for the HTTP layer take the read lock and copy.
//
// Durability is write-through for the heavy artifacts (a corpus feed file
// on admission, a crash entry file on every update, a trend line on every
// sample) plus an index flush (corpus metadata, totals) on Flush — which
// the server calls periodically and on shutdown.
type State struct {
	mu      sync.RWMutex
	dir     string // "" = memory-only (tests)
	drivers map[string]*driverState
	bench   []BenchTrendPoint
	covTr   []CoverageTrendPoint
	started time.Time

	now func() time.Time // test hook
}

// totalsMeta is the persisted fleet counter file (meta.json).
type totalsMeta struct {
	Drivers map[string]struct {
		Execs        uint64 `json:"execs"`
		Instructions uint64 `json:"instructions"`
		Static       int    `json:"static,omitempty"`
	} `json:"drivers"`
}

// OpenState opens (creating if needed) a state directory and loads what is
// already there. An empty dir keeps everything in memory.
func OpenState(dir string) (*State, error) {
	s := &State{
		dir:     dir,
		drivers: make(map[string]*driverState),
		started: time.Now(),
		now:     time.Now,
	}
	if dir == "" {
		return s, nil
	}
	for _, sub := range []string{"corpus", "crashes", "trends"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *State) driver(name string) *driverState {
	d := s.drivers[name]
	if d == nil {
		d = &driverState{
			corpus:    make(map[string]*CorpusEntry),
			crashes:   make(map[string]*CrashEntry),
			coverage:  exerciser.NewCoverage(0),
			reproSeen: make(map[string]bool),
		}
		s.drivers[name] = d
	}
	return d
}

// AddCorpus admits a feed into the fleet corpus; duplicates (by content
// hash) are dropped. It reports whether the entry was new and its hash.
func (s *State) AddCorpus(driver string, e fuzz.Entry, worker string) (bool, string) {
	if e.Feed == nil {
		return false, ""
	}
	h := FeedHash(e.Feed)
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.driver(driver)
	if _, ok := d.corpus[h]; ok {
		return false, h
	}
	entry := &CorpusEntry{
		Hash:   h,
		Driver: driver,
		Gain:   e.Gain,
		Size:   e.Feed.Len(),
		Worker: worker,
		Added:  s.now(),
		Feed:   e.Feed,
	}
	d.corpus[h] = entry
	d.corpusSeq = append(d.corpusSeq, h)
	d.corpusSave = true
	if s.dir != "" {
		dir := filepath.Join(s.dir, "corpus", driver)
		_ = os.MkdirAll(dir, 0o755)
		_ = fuzz.SaveFeed(e.Feed, filepath.Join(dir, "seed-"+h+".json"))
	}
	return true, h
}

// CorpusFeeds returns every corpus feed for the driver, admission order.
func (s *State) CorpusFeeds(driver string) []*fuzz.Feed {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.drivers[driver]
	if d == nil {
		return nil
	}
	out := make([]*fuzz.Feed, 0, len(d.corpusSeq))
	for _, h := range d.corpusSeq {
		out = append(out, d.corpus[h].Feed)
	}
	return out
}

// CorpusDiff returns the corpus feeds the caller does not already hold
// (have = content hashes), admission order — the manager→worker half of
// the sync exchange.
func (s *State) CorpusDiff(driver string, have []string) []*fuzz.Feed {
	haveSet := make(map[string]bool, len(have))
	for _, h := range have {
		haveSet[h] = true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.drivers[driver]
	if d == nil {
		return nil
	}
	var out []*fuzz.Feed
	for _, h := range d.corpusSeq {
		if !haveSet[h] {
			out = append(out, d.corpus[h].Feed)
		}
	}
	return out
}

// CorpusEntries returns copies of the driver's corpus entries (admission
// order) for the HTTP layer.
func (s *State) CorpusEntries(driver string) []CorpusEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.drivers[driver]
	if d == nil {
		return nil
	}
	out := make([]CorpusEntry, 0, len(d.corpusSeq))
	for _, h := range d.corpusSeq {
		out = append(out, *d.corpus[h])
	}
	return out
}

// AddCrash merges one worker-reported crash into the fleet crash store:
// dedup by fuzz.Crash.Key(), with each distinct reproducer feed attached
// to the single entry. It reports whether the entry itself was new and
// whether the reproducer was new for the entry.
func (s *State) AddCrash(driver, worker string, c *fuzz.Crash) (newEntry, newRepro bool) {
	if c == nil {
		return false, false
	}
	key := c.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.driver(driver)
	e, ok := d.crashes[key]
	if !ok {
		e = &CrashEntry{
			ID:          crashID(driver, key),
			Driver:      driver,
			Key:         key,
			Class:       c.Class,
			RawClass:    c.RawClass,
			PC:          c.PC,
			Site:        c.Site,
			Entry:       c.Entry,
			Msg:         c.Msg,
			InInterrupt: c.InInterrupt,
			FirstSeen:   s.now(),
		}
		d.crashes[key] = e
		d.crashSeq = append(d.crashSeq, key)
		newEntry = true
	}
	e.Reports++
	if !containsString(e.Workers, worker) && worker != "" {
		e.Workers = append(e.Workers, worker)
		sort.Strings(e.Workers)
	}
	if c.Feed != nil {
		h := FeedHash(c.Feed)
		if seen := key + "|" + h; !d.reproSeen[seen] {
			d.reproSeen[seen] = true
			e.Reproducers = append(e.Reproducers, Reproducer{
				Hash:   h,
				Worker: worker,
				Added:  s.now(),
				Feed:   c.Feed,
			})
			newRepro = true
		}
	}
	if s.dir != "" {
		s.saveCrashLocked(e)
	}
	return newEntry, newRepro
}

// MergeCoverage folds a worker's covered-block delta into the driver's
// fleet coverage map, advances the fleet exec/instruction counters by the
// given deltas, and appends a trend sample when new blocks arrived. It
// returns how many blocks were new fleet-wide.
func (s *State) MergeCoverage(driver string, blocks []uint32, static int, execsDelta, instrsDelta uint64, source string) int {
	s.mu.Lock()
	d := s.driver(driver)
	d.execs += execsDelta
	d.instrs += instrsDelta
	if static > d.static {
		d.static = static
		d.coverage.TotalStatic = static
	}
	added := d.coverage.Merge(blocks, d.instrs)
	var pt CoverageTrendPoint
	if added > 0 {
		pt = CoverageTrendPoint{
			Time:         s.now(),
			Driver:       driver,
			Blocks:       d.coverage.Blocks(),
			Static:       d.static,
			Execs:        d.execs,
			Instructions: d.instrs,
			Source:       source,
		}
		s.covTr = append(s.covTr, pt)
	}
	dir := s.dir
	s.mu.Unlock()
	if added > 0 && dir != "" {
		appendJSONL(filepath.Join(dir, "trends", "coverage.jsonl"), pt)
	}
	return added
}

// AddBench appends benchmark measurements to the bench trend series.
func (s *State) AddBench(points []BenchTrendPoint) {
	s.mu.Lock()
	s.bench = append(s.bench, points...)
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		for _, p := range points {
			appendJSONL(filepath.Join(dir, "trends", "bench.jsonl"), p)
		}
	}
}

// Crashes returns copies of the fleet crash entries, discovery order,
// optionally filtered by driver ("" = all drivers).
func (s *State) Crashes(driver string) []CrashEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CrashEntry
	for _, name := range s.driverNamesLocked() {
		if driver != "" && name != driver {
			continue
		}
		d := s.drivers[name]
		for _, k := range d.crashSeq {
			e := *d.crashes[k]
			e.Workers = append([]string(nil), e.Workers...)
			e.Reproducers = append([]Reproducer(nil), e.Reproducers...)
			out = append(out, e)
		}
	}
	return out
}

// CrashByID looks a crash entry up by its stable /crash/<id> identity.
func (s *State) CrashByID(id string) (CrashEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.drivers {
		for _, e := range d.crashes {
			if e.ID == id {
				out := *e
				out.Workers = append([]string(nil), out.Workers...)
				out.Reproducers = append([]Reproducer(nil), out.Reproducers...)
				return out, true
			}
		}
	}
	return CrashEntry{}, false
}

// DriverSummary is the per-driver roll-up served at /status.
type DriverSummary struct {
	Driver        string  `json:"driver"`
	CorpusSize    int     `json:"corpus_size"`
	Crashes       int     `json:"crashes"`
	BlocksCovered int     `json:"blocks_covered"`
	BlocksStatic  int     `json:"blocks_static"`
	Coverage      float64 `json:"coverage"`
	Execs         uint64  `json:"execs"`
	Instructions  uint64  `json:"instructions"`
}

// Summaries returns the per-driver roll-ups, driver-name order.
func (s *State) Summaries() []DriverSummary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []DriverSummary
	for _, name := range s.driverNamesLocked() {
		d := s.drivers[name]
		sum := DriverSummary{
			Driver:        name,
			CorpusSize:    len(d.corpus),
			Crashes:       len(d.crashes),
			BlocksCovered: d.coverage.Blocks(),
			BlocksStatic:  d.static,
			Execs:         d.execs,
			Instructions:  d.instrs,
		}
		if d.static > 0 {
			sum.Coverage = float64(sum.BlocksCovered) / float64(d.static)
		}
		out = append(out, sum)
	}
	return out
}

// CoverageTrend returns the coverage trend series (optionally filtered by
// driver), oldest first.
func (s *State) CoverageTrend(driver string) []CoverageTrendPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []CoverageTrendPoint
	for _, p := range s.covTr {
		if driver == "" || p.Driver == driver {
			out = append(out, p)
		}
	}
	return out
}

// BenchTrend returns the bench trend series, oldest first.
func (s *State) BenchTrend() []BenchTrendPoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]BenchTrendPoint(nil), s.bench...)
}

// Flush writes the index files (corpus metadata, fleet totals). Heavy
// artifacts are already on disk write-through; Flush makes the cheap
// bookkeeping durable. Called periodically by the server and on shutdown.
func (s *State) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	var firstErr error
	meta := totalsMeta{Drivers: make(map[string]struct {
		Execs        uint64 `json:"execs"`
		Instructions uint64 `json:"instructions"`
		Static       int    `json:"static,omitempty"`
	})}
	for name, d := range s.drivers {
		meta.Drivers[name] = struct {
			Execs        uint64 `json:"execs"`
			Instructions uint64 `json:"instructions"`
			Static       int    `json:"static,omitempty"`
		}{d.execs, d.instrs, d.static}
		if !d.corpusSave {
			continue
		}
		idx := make(map[string]corpusMeta, len(d.corpus))
		for h, e := range d.corpus {
			idx[h] = corpusMeta{Gain: e.Gain, Worker: e.Worker, Added: e.Added}
		}
		if err := writeJSON(filepath.Join(s.dir, "corpus", name, "index.json"), idx); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			d.corpusSave = false
		}
	}
	if err := writeJSON(filepath.Join(s.dir, "meta.json"), meta); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ImportCorpusDir loads a single-process ddtfuzz corpus directory
// (seed-*.json) into the fleet corpus for the driver — the import path for
// pre-manager campaigns. It returns how many entries were new.
func (s *State) ImportCorpusDir(driver, dir string) (int, error) {
	feeds, err := fuzz.LoadDir(dir)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, f := range feeds {
		// Imported entries carry no admission gain; weight them 1 so they
		// participate in seeding but never dominate live entries.
		if ok, _ := s.AddCorpus(driver, fuzz.Entry{Feed: f, Gain: 1}, "import"); ok {
			added++
		}
	}
	return added, nil
}

// load restores the store from the state directory.
func (s *State) load() error {
	// Corpus: corpus/<driver>/seed-<hash>.json (+ index.json metadata).
	corpusRoot := filepath.Join(s.dir, "corpus")
	drivers, err := os.ReadDir(corpusRoot)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	for _, de := range drivers {
		if !de.IsDir() {
			continue
		}
		driver := de.Name()
		dir := filepath.Join(corpusRoot, driver)
		var idx map[string]corpusMeta
		readJSON(filepath.Join(dir, "index.json"), &idx)
		feeds, err := fuzz.LoadDir(dir)
		if err != nil {
			return fmt.Errorf("manager: loading corpus for %s: %w", driver, err)
		}
		d := s.driver(driver)
		for _, f := range feeds {
			h := FeedHash(f)
			if _, ok := d.corpus[h]; ok {
				continue
			}
			e := &CorpusEntry{Hash: h, Driver: driver, Gain: 1, Size: f.Len(), Feed: f}
			if m, ok := idx[h]; ok {
				e.Gain, e.Worker, e.Added = m.Gain, m.Worker, m.Added
			}
			d.corpus[h] = e
			d.corpusSeq = append(d.corpusSeq, h)
		}
		// Deterministic order across restarts: LoadDir sorts file names,
		// which sorts by hash; re-sort by admission time when we have it.
		sort.SliceStable(d.corpusSeq, func(i, j int) bool {
			return d.corpus[d.corpusSeq[i]].Added.Before(d.corpus[d.corpusSeq[j]].Added)
		})
	}

	// Crashes: crashes/<driver>/<id>.json.
	crashRoot := filepath.Join(s.dir, "crashes")
	drivers, err = os.ReadDir(crashRoot)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	for _, de := range drivers {
		if !de.IsDir() {
			continue
		}
		driver := de.Name()
		files, err := filepath.Glob(filepath.Join(crashRoot, driver, "*.json"))
		if err != nil {
			return err
		}
		sort.Strings(files)
		d := s.driver(driver)
		var entries []*CrashEntry
		for _, fn := range files {
			var e CrashEntry
			if err := readJSON(fn, &e); err != nil {
				return fmt.Errorf("manager: crash file %s: %w", fn, err)
			}
			entries = append(entries, &e)
		}
		sort.SliceStable(entries, func(i, j int) bool {
			return entries[i].FirstSeen.Before(entries[j].FirstSeen)
		})
		for _, e := range entries {
			if _, ok := d.crashes[e.Key]; ok {
				continue
			}
			d.crashes[e.Key] = e
			d.crashSeq = append(d.crashSeq, e.Key)
			for _, r := range e.Reproducers {
				d.reproSeen[e.Key+"|"+r.Hash] = true
			}
		}
	}

	// Totals.
	var meta totalsMeta
	readJSON(filepath.Join(s.dir, "meta.json"), &meta)
	for name, t := range meta.Drivers {
		d := s.driver(name)
		d.execs, d.instrs, d.static = t.Execs, t.Instructions, t.Static
		d.coverage.TotalStatic = t.Static
	}

	// Trends (also rebuilds the merged coverage block counts' series floor:
	// the covered-block SET is not persisted point-by-point, so after a
	// restart the fleet map restarts empty and re-merges as workers report;
	// the historical series is what /trends serves).
	readJSONL(filepath.Join(s.dir, "trends", "coverage.jsonl"), func(raw []byte) {
		var p CoverageTrendPoint
		if json.Unmarshal(raw, &p) == nil {
			s.covTr = append(s.covTr, p)
		}
	})
	readJSONL(filepath.Join(s.dir, "trends", "bench.jsonl"), func(raw []byte) {
		var p BenchTrendPoint
		if json.Unmarshal(raw, &p) == nil {
			s.bench = append(s.bench, p)
		}
	})
	return nil
}

func (s *State) driverNamesLocked() []string {
	names := make([]string, 0, len(s.drivers))
	for n := range s.drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// saveCrashLocked write-throughs one crash entry (caller holds s.mu).
func (s *State) saveCrashLocked(e *CrashEntry) {
	dir := filepath.Join(s.dir, "crashes", e.Driver)
	_ = os.MkdirAll(dir, 0o755)
	_ = writeJSON(filepath.Join(dir, e.ID+".json"), e)
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

func readJSONL(path string, each func(raw []byte)) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) > 0 {
			each(line)
		}
	}
}

func appendJSONL(path string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	_, _ = f.Write(append(b, '\n'))
	_ = f.Close()
}

// sanitizeName makes an arbitrary worker-supplied name filesystem- and
// log-safe.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, s)
}
