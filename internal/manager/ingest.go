package manager

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fuzz"
)

// IngestFuzzReport folds a completed single-process campaign report
// (ddtfuzz -json output) into the store: crashes join the fleet-deduped
// crash set with their minimized reproducers, and the campaign's final
// coverage lands as one trend sample. This is how the nightly workflow
// posts its results into a ddtd state directory instead of diffing raw
// artifacts.
func (s *State) IngestFuzzReport(rep *fuzz.Report, worker string) error {
	if rep.Driver == "" {
		return fmt.Errorf("manager: fuzz report has no driver")
	}
	if worker == "" {
		worker = "ingest"
	}
	for _, c := range rep.Crashes {
		cc := *c
		if cc.Feed == nil {
			// Reports from before Crash carried its feed inline keep the
			// reproducer in the CrashFeeds map.
			cc.Feed = rep.CrashFeeds[c.Key()]
		}
		s.AddCrash(rep.Driver, worker, &cc)
	}
	pt := CoverageTrendPoint{
		Time:           s.now(),
		Driver:         rep.Driver,
		Blocks:         rep.BlocksCovered,
		Static:         rep.BlocksStatic,
		Execs:          rep.Execs,
		Instructions:   rep.Instructions,
		Source:         worker,
		SnapHits:       rep.SnapHits,
		SnapSharedHits: rep.SnapSharedHits,
		SnapMisses:     rep.SnapMisses,
	}
	s.AppendCoverageTrend(pt)
	return nil
}

// AppendCoverageTrend appends an externally produced coverage sample (an
// ingested nightly report, as opposed to a live worker merge).
func (s *State) AppendCoverageTrend(pt CoverageTrendPoint) {
	s.mu.Lock()
	s.covTr = append(s.covTr, pt)
	d := s.driver(pt.Driver)
	if pt.Static > d.static {
		d.static = pt.Static
		d.coverage.TotalStatic = pt.Static
	}
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		appendJSONL(dir+"/trends/coverage.jsonl", pt)
	}
}

// ParseBenchOutput parses `go test -bench` text output into bench trend
// points: one point per metric of each benchmark result line, e.g.
//
//	BenchmarkFuzzExecsPerSec-8   3   123456 ns/op   2861 execs/sec   4.2 ms/campaign
//
// yields points (ns/op, execs/sec, ms/campaign). Non-benchmark lines are
// skipped, so raw `go test` output pipes straight in.
func ParseBenchOutput(text string) []BenchTrendPoint {
	var out []BenchTrendPoint
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields[0] name-GOMAXPROCS, fields[1] iteration count, then
		// (value, unit) pairs.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			out = append(out, BenchTrendPoint{Name: name, Metric: fields[i+1], Value: v})
		}
	}
	return out
}

// IngestBenchOutput parses bench text output and appends it to the bench
// trend series, stamping every point with the current time. It returns how
// many points were ingested.
func (s *State) IngestBenchOutput(text string) int {
	points := ParseBenchOutput(text)
	now := s.now()
	for i := range points {
		points[i].Time = now
	}
	s.AddBench(points)
	return len(points)
}
