package manager

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// ShutdownContext returns a context canceled on SIGINT or SIGTERM, giving
// ddtd and manager-attached ddtfuzz workers one graceful-shutdown path: the
// first signal cancels (flush state, send the final report), a second
// signal force-exits with the conventional 128+SIGINT status for operators
// who will not wait for the flush.
func ShutdownContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
			return
		}
		<-ch
		os.Exit(130)
	}()
	return ctx, cancel
}
