package manager

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/fuzz"
)

// Manager glues the two halves — the durable State (results) and the
// Scheduler (work distribution) — behind one http.Handler: the worker RPC
// endpoints under /rpc/ and the human/JSON status API at /status, /corpus,
// /crashes, /crash/<id>, and /trends.
//
// The serving layer is built for many concurrent clients: every read
// handler works on an RWMutex-guarded snapshot copied out of the state
// (server_test.go hammers the handlers concurrently with live reports
// under the race detector).
type Manager struct {
	State *State
	Sched *Scheduler

	mux     *http.ServeMux
	started time.Time
}

// NewManager wires a manager from its state store and scheduler.
func NewManager(state *State, sched *Scheduler) *Manager {
	m := &Manager{State: state, Sched: sched, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathConnect, m.handleConnect)
	mux.HandleFunc("POST "+PathPoll, m.handlePoll)
	mux.HandleFunc("POST "+PathReport, m.handleReport)
	mux.HandleFunc("POST "+PathSync, m.handleSync)
	mux.HandleFunc("GET /status", m.handleStatus)
	mux.HandleFunc("GET /corpus", m.handleCorpus)
	mux.HandleFunc("GET /crashes", m.handleCrashes)
	mux.HandleFunc("GET /crash/{id}", m.handleCrash)
	mux.HandleFunc("GET /trends", m.handleTrends)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/status", http.StatusFound)
	})
	m.mux = mux
	return m
}

// Handler returns the manager's HTTP handler (RPC + status API).
func (m *Manager) Handler() http.Handler { return m.mux }

// --- worker RPC -----------------------------------------------------------

func (m *Manager) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req ConnectRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		req.Worker = "worker"
	}
	id := m.Sched.Connect(req.Worker)
	writeJSONResp(w, &ConnectResponse{
		WorkerID:       id,
		PollIntervalMS: DefaultPollInterval.Milliseconds(),
		SyncIntervalMS: DefaultSyncInterval.Milliseconds(),
	})
}

func (m *Manager) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decode(w, r, &req) {
		return
	}
	lease := m.Sched.Poll(req.WorkerID)
	if lease != nil {
		// Ship the fleet's current corpus for the driver as initial seeds:
		// a fresh worker (or a reassigned slot) starts from everything the
		// fleet already learned.
		lease.Seeds = m.State.CorpusFeeds(lease.Driver)
	}
	writeJSONResp(w, &PollResponse{Lease: lease})
}

func (m *Manager) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Driver == "" {
		httpError(w, http.StatusBadRequest, "report without driver")
		return
	}
	// Merge evidence FIRST, lease bookkeeping second: results from a stale
	// lease (a worker we presumed dead that was merely slow) are still
	// results.
	for _, cr := range req.Crashes {
		m.State.AddCrash(req.Driver, req.WorkerID, cr.Crash)
	}
	execsDelta, instrsDelta, live := m.Sched.Renew(req.WorkerID, req.LeaseID, req.Execs, req.Instructions)
	if len(req.NewBlocks) > 0 || execsDelta > 0 || instrsDelta > 0 {
		m.State.MergeCoverage(req.Driver, req.NewBlocks, req.BlocksStatic, execsDelta, instrsDelta, "worker")
	}
	if req.Final {
		m.Sched.Complete(req.WorkerID, req.LeaseID)
	}
	writeJSONResp(w, &ReportResponse{Stop: !live && !req.Final})
}

func (m *Manager) handleSync(w http.ResponseWriter, r *http.Request) {
	var req SyncRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Driver == "" {
		httpError(w, http.StatusBadRequest, "sync without driver")
		return
	}
	for _, e := range req.Added {
		m.State.AddCorpus(req.Driver, e, req.WorkerID)
	}
	live := m.Sched.Heartbeat(req.WorkerID, req.LeaseID)
	writeJSONResp(w, &SyncResponse{
		Seeds: m.State.CorpusDiff(req.Driver, req.Have),
		Stop:  !live,
	})
}

// --- status API -----------------------------------------------------------

// StatusPage is the /status document.
type StatusPage struct {
	Started   time.Time        `json:"started"`
	UptimeSec float64          `json:"uptime_sec"`
	Drivers   []DriverSummary  `json:"drivers"`
	Campaigns []CampaignStatus `json:"campaigns"`
	Workers   []WorkerStatus   `json:"workers"`
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	campaigns, workers := m.Sched.Status()
	page := StatusPage{
		Started:   m.started,
		UptimeSec: time.Since(m.started).Seconds(),
		Drivers:   m.State.Summaries(),
		Campaigns: campaigns,
		Workers:   workers,
	}
	respond(w, r, page, statusTmpl)
}

// CorpusPage is the /corpus document.
type CorpusPage struct {
	Driver  string        `json:"driver,omitempty"`
	Entries []CorpusEntry `json:"entries"`
}

func (m *Manager) handleCorpus(w http.ResponseWriter, r *http.Request) {
	driver := r.URL.Query().Get("driver")
	var entries []CorpusEntry
	if driver != "" {
		entries = m.State.CorpusEntries(driver)
	} else {
		for _, sum := range m.State.Summaries() {
			entries = append(entries, m.State.CorpusEntries(sum.Driver)...)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Gain > entries[j].Gain })
	respond(w, r, CorpusPage{Driver: driver, Entries: entries}, corpusTmpl)
}

// CrashesPage is the /crashes document.
type CrashesPage struct {
	Driver  string       `json:"driver,omitempty"`
	Crashes []CrashEntry `json:"crashes"`
}

func (m *Manager) handleCrashes(w http.ResponseWriter, r *http.Request) {
	driver := r.URL.Query().Get("driver")
	page := CrashesPage{Driver: driver, Crashes: m.State.Crashes(driver)}
	// The list view stays light: reproducer feeds are served per-entry at
	// /crash/<id>, not inlined N times here.
	for i := range page.Crashes {
		for j := range page.Crashes[i].Reproducers {
			page.Crashes[i].Reproducers[j].Feed = nil
		}
	}
	respond(w, r, page, crashesTmpl)
}

func (m *Manager) handleCrash(w http.ResponseWriter, r *http.Request) {
	e, ok := m.State.CrashByID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such crash")
		return
	}
	respond(w, r, e, crashTmpl)
}

// TrendsPage is the /trends document: coverage-over-time per driver plus
// the nightly bench series.
type TrendsPage struct {
	Driver   string               `json:"driver,omitempty"`
	Coverage []CoverageTrendPoint `json:"coverage"`
	Bench    []BenchTrendPoint    `json:"bench"`
}

func (m *Manager) handleTrends(w http.ResponseWriter, r *http.Request) {
	driver := r.URL.Query().Get("driver")
	page := TrendsPage{
		Driver:   driver,
		Coverage: m.State.CoverageTrend(driver),
		Bench:    m.State.BenchTrend(),
	}
	respond(w, r, page, trendsTmpl)
}

// --- plumbing ---------------------------------------------------------------

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSONResp(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// respond content-negotiates: browsers (Accept: text/html) get the minimal
// status page, everything else gets JSON.
func respond(w http.ResponseWriter, r *http.Request, v any, tmpl *template.Template) {
	if strings.Contains(r.Header.Get("Accept"), "text/html") {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := tmpl.Execute(w, v); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSONResp(w, v)
}

// Minimal human-readable pages. Deliberately unstyled beyond legibility —
// the JSON API is the machine interface; these are for a quick look.
var pageFuncs = template.FuncMap{
	"pct": func(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) },
	"hex": func(v uint32) string { return fmt.Sprintf("%#x", v) },
	"feedjson": func(f *fuzz.Feed) string {
		if f == nil {
			return "(none)"
		}
		b, _ := json.MarshalIndent(f, "", "  ")
		return string(b)
	},
}

var statusTmpl = template.Must(template.New("status").Funcs(pageFuncs).Parse(`<!doctype html>
<title>ddtd status</title><h1>ddtd</h1>
<p>up since {{.Started.Format "2006-01-02 15:04:05"}} ({{printf "%.0f" .UptimeSec}}s)</p>
<h2>drivers</h2>
<table border=1 cellpadding=4><tr><th>driver</th><th>corpus</th><th>crashes</th><th>coverage</th><th>execs</th><th>instructions</th></tr>
{{range .Drivers}}<tr><td>{{.Driver}}</td><td><a href="/corpus?driver={{.Driver}}">{{.CorpusSize}}</a></td><td><a href="/crashes?driver={{.Driver}}">{{.Crashes}}</a></td><td>{{.BlocksCovered}}/{{.BlocksStatic}} ({{pct .Coverage}})</td><td>{{.Execs}}</td><td>{{.Instructions}}</td></tr>{{end}}
</table>
<h2>campaigns</h2>
<table border=1 cellpadding=4><tr><th>id</th><th>driver</th><th>mode</th><th>slots</th><th>running</th><th>done</th><th>reissues</th></tr>
{{range .Campaigns}}<tr><td>{{.ID}}</td><td>{{.Driver}}</td><td>{{.Mode}}</td><td>{{.Slots}}</td><td>{{.Running}}</td><td>{{.Done}}</td><td>{{.Reissues}}</td></tr>{{end}}
</table>
<h2>workers</h2>
<table border=1 cellpadding=4><tr><th>id</th><th>last seen</th><th>lease</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{.LastSeen.Format "15:04:05"}}</td><td>{{.Lease}}</td></tr>{{end}}
</table>
<p><a href="/trends">trends</a></p>`))

var corpusTmpl = template.Must(template.New("corpus").Funcs(pageFuncs).Parse(`<!doctype html>
<title>ddtd corpus</title><h1>corpus{{with .Driver}} — {{.}}{{end}}</h1>
<table border=1 cellpadding=4><tr><th>hash</th><th>driver</th><th>gain</th><th>size</th><th>worker</th><th>added</th></tr>
{{range .Entries}}<tr><td>{{.Hash}}</td><td>{{.Driver}}</td><td>{{.Gain}}</td><td>{{.Size}}</td><td>{{.Worker}}</td><td>{{.Added.Format "15:04:05"}}</td></tr>{{end}}
</table>`))

var crashesTmpl = template.Must(template.New("crashes").Funcs(pageFuncs).Parse(`<!doctype html>
<title>ddtd crashes</title><h1>crashes{{with .Driver}} — {{.}}{{end}}</h1>
<table border=1 cellpadding=4><tr><th>id</th><th>driver</th><th>class</th><th>site</th><th>entry</th><th>reports</th><th>workers</th><th>reproducers</th></tr>
{{range .Crashes}}<tr><td><a href="/crash/{{.ID}}">{{.ID}}</a></td><td>{{.Driver}}</td><td>{{.Class}}</td><td>{{hex .Site}}</td><td>{{.Entry}}</td><td>{{.Reports}}</td><td>{{range .Workers}}{{.}} {{end}}</td><td>{{len .Reproducers}}</td></tr>{{end}}
</table>`))

var crashTmpl = template.Must(template.New("crash").Funcs(pageFuncs).Parse(`<!doctype html>
<title>crash {{.ID}}</title><h1>{{.Key}}</h1>
<p>driver {{.Driver}} · entry {{.Entry}} · pc {{hex .PC}} · first seen {{.FirstSeen.Format "2006-01-02 15:04:05"}}</p>
<p>{{.Msg}}</p>
<p>{{.Reports}} report(s) from {{len .Workers}} worker(s): {{range .Workers}}{{.}} {{end}}</p>
<h2>reproducers</h2>
{{range .Reproducers}}<h3>{{.Hash}} ({{.Worker}})</h3><pre>{{feedjson .Feed}}</pre>{{end}}`))

var trendsTmpl = template.Must(template.New("trends").Funcs(pageFuncs).Parse(`<!doctype html>
<title>ddtd trends</title><h1>trends{{with .Driver}} — {{.}}{{end}}</h1>
<h2>coverage</h2>
<table border=1 cellpadding=4><tr><th>time</th><th>driver</th><th>blocks</th><th>static</th><th>execs</th><th>source</th></tr>
{{range .Coverage}}<tr><td>{{.Time.Format "2006-01-02 15:04:05"}}</td><td>{{.Driver}}</td><td>{{.Blocks}}</td><td>{{.Static}}</td><td>{{.Execs}}</td><td>{{.Source}}</td></tr>{{end}}
</table>
<h2>bench</h2>
<table border=1 cellpadding=4><tr><th>time</th><th>benchmark</th><th>metric</th><th>value</th></tr>
{{range .Bench}}<tr><td>{{.Time.Format "2006-01-02 15:04:05"}}</td><td>{{.Name}}</td><td>{{.Metric}}</td><td>{{.Value}}</td></tr>{{end}}
</table>`))
