package manager

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/binimg"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exerciser"
	"repro/internal/fuzz"
)

// WorkerConfig configures one ddtfuzz -manager worker process.
type WorkerConfig struct {
	// Manager is the manager's base URL (http://host:port).
	Manager string
	// Name is the worker's self-chosen name (defaults to host-pid style;
	// the manager uniquifies it).
	Name string
	// Procs is the local fuzzing goroutine count per lease (default 4).
	Procs int
	// PollInterval / SyncInterval override the manager-advertised cadences
	// (tests use milliseconds; 0 keeps the server's values).
	PollInterval time.Duration
	SyncInterval time.Duration
	// MaxBackoff caps the exponential retry backoff for failed RPCs
	// (default 30s).
	MaxBackoff time.Duration
	// OneShot makes RunWorker return after the first completed lease plus
	// one idle poll — CI attaches workers for a bounded job rather than a
	// daemon.
	OneShot bool
	// Logf receives progress lines (default: drop them).
	Logf func(format string, args ...any)
	// HTTP overrides the RPC client (default: 30s timeout).
	HTTP *http.Client
}

// Client speaks the worker side of the manager RPC protocol.
type Client struct {
	base     string
	http     *http.Client
	workerID string
}

// NewClient returns an RPC client for the manager at base URL.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: hc}
}

// call POSTs one JSON RPC. Non-200 answers surface the server's error body.
func (c *Client) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var e errorResponse
		b, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return fmt.Errorf("manager: %s: %s", path, e.Error)
		}
		return fmt.Errorf("manager: %s: HTTP %d", path, hresp.StatusCode)
	}
	return json.NewDecoder(hresp.Body).Decode(resp)
}

// Connect registers with the manager and stores the assigned worker ID.
func (c *Client) Connect(ctx context.Context, name string) (*ConnectResponse, error) {
	var resp ConnectResponse
	if err := c.call(ctx, PathConnect, &ConnectRequest{Worker: name}, &resp); err != nil {
		return nil, err
	}
	c.workerID = resp.WorkerID
	return &resp, nil
}

// Poll asks for work.
func (c *Client) Poll(ctx context.Context) (*CampaignLease, error) {
	var resp PollResponse
	if err := c.call(ctx, PathPoll, &PollRequest{WorkerID: c.workerID}, &resp); err != nil {
		return nil, err
	}
	return resp.Lease, nil
}

// Report sends results; any report renews the lease.
func (c *Client) Report(ctx context.Context, req *ReportRequest) (*ReportResponse, error) {
	req.WorkerID = c.workerID
	var resp ReportResponse
	if err := c.call(ctx, PathReport, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sync exchanges corpus deltas; any sync renews the lease.
func (c *Client) Sync(ctx context.Context, req *SyncRequest) (*SyncResponse, error) {
	req.WorkerID = c.workerID
	var resp SyncResponse
	if err := c.call(ctx, PathSync, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RunWorker is the ddtfuzz -manager main loop: connect (with retry),
// poll for leases, execute them, sync and report until the context is
// canceled. Cancellation is the graceful-shutdown path: an in-flight
// campaign is stopped, its final report sent, and RunWorker returns.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Procs < 1 {
		cfg.Procs = 4
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := NewClient(cfg.Manager, cfg.HTTP)

	// Connect, with exponential backoff: the worker may start before the
	// manager finishes binding its listener.
	var conn *ConnectResponse
	err := withBackoff(ctx, cfg.MaxBackoff, func() error {
		var err error
		conn, err = c.Connect(ctx, cfg.Name)
		return err
	})
	if err != nil {
		return fmt.Errorf("manager: connect: %w", err)
	}
	poll := time.Duration(conn.PollIntervalMS) * time.Millisecond
	sync := time.Duration(conn.SyncIntervalMS) * time.Millisecond
	if cfg.PollInterval > 0 {
		poll = cfg.PollInterval
	}
	if cfg.SyncInterval > 0 {
		sync = cfg.SyncInterval
	}
	cfg.Logf("connected to %s as %s", cfg.Manager, c.workerID)

	completed := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		var lease *CampaignLease
		err := withBackoff(ctx, cfg.MaxBackoff, func() error {
			var err error
			lease, err = c.Poll(ctx)
			return err
		})
		if err != nil {
			return nil // context canceled while idle
		}
		if lease == nil {
			if cfg.OneShot && completed > 0 {
				return nil
			}
			if !sleepCtx(ctx, poll) {
				return nil
			}
			continue
		}
		cfg.Logf("lease %s: %s %s (slot %d)", lease.LeaseID, lease.Mode, lease.Driver, lease.Slot)
		var lerr error
		switch lease.Mode {
		case ModeSymbolic:
			lerr = c.runSymbolicLease(ctx, cfg, lease, sync)
		default:
			lerr = c.runFuzzLease(ctx, cfg, lease, sync)
		}
		if lerr != nil {
			// A lease this worker cannot execute (unknown driver, build
			// failure) is left to expire and be re-issued elsewhere.
			cfg.Logf("lease %s failed: %v", lease.LeaseID, lerr)
			if !sleepCtx(ctx, poll) {
				return nil
			}
			continue
		}
		completed++
	}
}

// runFuzzLease executes one fuzz-mode lease: a local campaign with the
// manager's corpus as seeds, a sync/report loop at the advertised cadence,
// and a final report carrying the full triaged crash set.
func (c *Client) runFuzzLease(ctx context.Context, cfg WorkerConfig, lease *CampaignLease, syncEvery time.Duration) error {
	img, err := corpus.Build(lease.Driver, variantOf(lease.Fixed))
	if err != nil {
		return err
	}
	fcfg := fuzz.DefaultConfig()
	fcfg.Workers = cfg.Procs
	fcfg.MaxExecs = lease.Execs
	fcfg.Duration = time.Duration(lease.DurationMS) * time.Millisecond
	fcfg.Seed = lease.Seed
	fcfg.Persist = lease.Persist
	fcfg.Dict = lease.Dict
	fcfg.Seeds = lease.Seeds
	f := fuzz.New(img, fcfg)

	// Delta bookkeeping: what this worker already exchanged with the fleet.
	have := make(map[string]bool)
	for _, s := range lease.Seeds {
		have[FeedHash(s)] = true
	}
	sentCrash := make(map[string]bool)
	sentBlocks := make(map[uint32]bool)
	static := f.Cov.TotalStatic

	// The campaign context: canceled when the manager directs a stop
	// (scheduler rebalance) or the worker itself shuts down. Cancellation is
	// the only stop path — the fuzzer quiesces and Run returns.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()

	type result struct {
		rep *fuzz.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := f.Run(runCtx)
		done <- result{rep, err}
	}()

	// interrupted is set when the worker is shut down mid-campaign: the
	// final flush then still ships every result, but without the Final flag —
	// the slot's remaining budget was not spent, so the lease is left to
	// expire and the campaign re-issued to a surviving worker.
	interrupted := false

	flush := func(ctx context.Context, final bool) error {
		// Corpus delta, both directions.
		var added []fuzz.Entry
		haveList := make([]string, 0, len(have))
		for h := range have {
			haveList = append(haveList, h)
		}
		for _, e := range f.Corpus().Export() {
			if h := FeedHash(e.Feed); !have[h] {
				have[h] = true
				haveList = append(haveList, h)
				added = append(added, e)
			}
		}
		sresp, err := c.Sync(ctx, &SyncRequest{LeaseID: lease.LeaseID, Driver: lease.Driver, Added: added, Have: haveList})
		if err != nil {
			return err
		}
		var fresh []*fuzz.Feed
		for _, s := range sresp.Seeds {
			if h := FeedHash(s); !have[h] {
				have[h] = true
				fresh = append(fresh, s)
			}
		}
		if len(fresh) > 0 && !final {
			f.InjectSeeds(fresh)
		}

		// Results: new crashes, the coverage delta, progress counters.
		var crashes []CrashReport
		for _, cr := range f.Crashes() {
			if final || !sentCrash[cr.Key()] {
				sentCrash[cr.Key()] = true
				crashes = append(crashes, CrashReport{Crash: cr})
			}
		}
		var newBlocks []uint32
		for _, pc := range f.Cov.CoveredBlocks() {
			if !sentBlocks[pc] {
				sentBlocks[pc] = true
				newBlocks = append(newBlocks, pc)
			}
		}
		execs, instrs := f.Stats()
		rresp, err := c.Report(ctx, &ReportRequest{
			LeaseID:      lease.LeaseID,
			Driver:       lease.Driver,
			Final:        final && !interrupted,
			Crashes:      crashes,
			NewBlocks:    newBlocks,
			BlocksStatic: static,
			Execs:        execs,
			Instructions: instrs,
		})
		if err != nil {
			return err
		}
		if (sresp.Stop || rresp.Stop) && !final {
			stopRun()
		}
		return nil
	}

	ticker := time.NewTicker(syncEvery)
	defer ticker.Stop()
	var res result
wait:
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: runCtx inherits the cancellation, so the
			// campaign is already quiescing — wait for the workers to drain,
			// then send the final report below.
			res = <-done
			break wait
		case <-ticker.C:
			if err := flush(ctx, false); err != nil {
				cfg.Logf("sync failed (will retry): %v", err)
			}
		case res = <-done:
			break wait
		}
	}
	// Worker shutdown, not a manager-directed stop: the select may observe
	// the drained campaign before the canceled context, so decide from the
	// context itself.
	if ctx.Err() != nil {
		interrupted = true
	}
	if res.err != nil {
		return res.err
	}
	// Campaign finished (budget exhausted, Stop, or shutdown): the final
	// report re-sends the complete crash set — mid-campaign reports carry
	// the crash as first found; by now every entry holds its minimized,
	// verification-replayed feed, which the manager attaches as an extra
	// reproducer (dedup by content hash keeps exactly the distinct ones).
	// The final flush must survive a canceled worker context.
	fctx := ctx
	if fctx.Err() != nil {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
	}
	return withBackoff(fctx, 5*time.Second, func() error {
		return flush(fctx, true)
	})
}

// runSymbolicLease executes one symbolic-mode lease: a (optionally
// pipelined, multi-worker) engine session, heartbeating while it runs, and
// a final report converting every bug into a crash entry with a
// bridge-derived reproducer feed.
func (c *Client) runSymbolicLease(ctx context.Context, cfg WorkerConfig, lease *CampaignLease, syncEvery time.Duration) error {
	img, err := corpus.Build(lease.Driver, variantOf(lease.Fixed))
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	if lease.EngineWorkers > 0 {
		opts.Workers = lease.EngineWorkers
	}
	opts.Pipeline = lease.Pipeline
	cov := exerciser.NewCoverage(len(binimg.StaticBlocks(img)))
	opts.Coverage = cov

	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		eng := core.NewEngine(img, opts)
		rep, err := eng.TestDriver(ctx)
		done <- result{rep, err}
	}()

	ticker := time.NewTicker(syncEvery)
	defer ticker.Stop()
	ctxDone := ctx.Done()
	var res result
wait:
	for {
		select {
		case <-ctxDone:
			// The engine observes the context mid-run and returns its
			// partial report; wait for that result below. Disarm the channel
			// so the wait doesn't spin on the closed Done.
			ctxDone = nil
		case <-ticker.C:
			if _, err := c.Report(ctx, &ReportRequest{LeaseID: lease.LeaseID, Driver: lease.Driver}); err != nil {
				cfg.Logf("heartbeat failed (will retry): %v", err)
			}
			continue
		case res = <-done:
			break wait
		}
	}
	if res.err != nil {
		return res.err
	}
	var crashes []CrashReport
	for _, b := range res.rep.Bugs {
		crashes = append(crashes, CrashReport{Crash: &fuzz.Crash{
			Class:       b.Class,
			PC:          b.Fault.PC,
			Site:        b.Fault.PC,
			Entry:       b.Entry,
			Msg:         b.Fault.Msg,
			InInterrupt: b.InInterrupt,
			Feed:        fuzz.FromBug(b),
			Reproduced:  true,
		}})
	}
	fctx := ctx
	if fctx.Err() != nil {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
	}
	return withBackoff(fctx, 5*time.Second, func() error {
		_, err := c.Report(fctx, &ReportRequest{
			LeaseID:      lease.LeaseID,
			Driver:       lease.Driver,
			Final:        true,
			Crashes:      crashes,
			NewBlocks:    cov.CoveredBlocks(),
			BlocksStatic: cov.TotalStatic,
			Execs:        uint64(res.rep.PathsExplored),
			Instructions: res.rep.Instructions,
		})
		return err
	})
}

func variantOf(fixed bool) corpus.Variant {
	if fixed {
		return corpus.Fixed
	}
	return corpus.Buggy
}

// withBackoff retries fn with exponential backoff (100ms doubling to max)
// until it succeeds or the context ends; the returned error is non-nil only
// when the context ended (it is the last fn error).
func withBackoff(ctx context.Context, max time.Duration, fn func() error) error {
	delay := 100 * time.Millisecond
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if !sleepCtx(ctx, delay) {
			return err
		}
		if delay *= 2; delay > max {
			delay = max
		}
	}
}

// sleepCtx sleeps d, reporting false if the context ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
