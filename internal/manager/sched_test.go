package manager

import (
	"strings"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{Campaigns: []CampaignSpec{
		{ID: "net", Driver: "rtl8029", Workers: 2, Execs: 1000, Seed: 7},
		{ID: "sym", Driver: "amd-pcnet", Mode: ModeSymbolic, Workers: 1},
	}}
}

// clock is a controllable scheduler clock.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSched(t *testing.T, cfg Config, ttl time.Duration) (*Scheduler, *clock) {
	t.Helper()
	s, err := NewScheduler(cfg, ttl)
	if err != nil {
		t.Fatal(err)
	}
	ck := &clock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
	s.now = ck.now
	return s, ck
}

func TestSchedulerValidation(t *testing.T) {
	bad := []Config{
		{Campaigns: []CampaignSpec{{Driver: "rtl8029", Execs: 1}}},                                      // no id
		{Campaigns: []CampaignSpec{{ID: "a", Execs: 1}}},                                                // no driver
		{Campaigns: []CampaignSpec{{ID: "a", Driver: "x", Execs: 1}, {ID: "a", Driver: "y", Execs: 1}}}, // dup id
		{Campaigns: []CampaignSpec{{ID: "a", Driver: "x", Mode: "turbo", Execs: 1}}},                    // bad mode
		{Campaigns: []CampaignSpec{{ID: "a", Driver: "x", Duration: "soon"}}},                           // bad duration
		{Campaigns: []CampaignSpec{{ID: "a", Driver: "x"}}},                                             // fuzz, no budget
	}
	for i, cfg := range bad {
		if _, err := NewScheduler(cfg, 0); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	// Symbolic campaigns are budgeted by the engine, not the spec.
	if _, err := NewScheduler(Config{Campaigns: []CampaignSpec{{ID: "s", Driver: "x", Mode: ModeSymbolic}}}, 0); err != nil {
		t.Errorf("budget-less symbolic campaign rejected: %v", err)
	}
}

// TestSchedulerHandout: slots hand out one lease each with per-slot seeds;
// an exhausted slot table answers nil.
func TestSchedulerHandout(t *testing.T) {
	s, _ := newTestSched(t, testConfig(), time.Minute)
	w := s.Connect("w")
	var seeds []int64
	drivers := make(map[string]int)
	for i := 0; i < 3; i++ {
		l := s.Poll(w)
		if l == nil {
			t.Fatalf("poll %d: no lease, want 3 slots", i)
		}
		drivers[l.Driver]++
		if l.Mode == ModeFuzz {
			seeds = append(seeds, l.Seed)
		}
	}
	if s.Poll(w) != nil {
		t.Fatal("4th poll handed out a lease beyond the slot table")
	}
	if drivers["rtl8029"] != 2 || drivers["amd-pcnet"] != 1 {
		t.Fatalf("driver fan-out = %v", drivers)
	}
	if len(seeds) != 2 || seeds[0] == seeds[1] {
		t.Fatalf("per-slot seeds not distinct: %v", seeds)
	}
}

// TestSchedulerRenewDeltas: workers report cumulative counters; Renew
// converts them to deltas against the previous heartbeat.
func TestSchedulerRenewDeltas(t *testing.T) {
	s, _ := newTestSched(t, testConfig(), time.Minute)
	w := s.Connect("w")
	l := s.Poll(w)
	if e, i, live := s.Renew(w, l.LeaseID, 100, 1000); e != 100 || i != 1000 || !live {
		t.Fatalf("first renew = (%d, %d, %v)", e, i, live)
	}
	if e, i, live := s.Renew(w, l.LeaseID, 250, 2500); e != 150 || i != 1500 || !live {
		t.Fatalf("second renew = (%d, %d, %v), want deltas (150, 1500, true)", e, i, live)
	}
}

// TestSchedulerLeaseReassignment is the crash-recovery core: a worker that
// stops heartbeating loses its lease, the slot is re-issued to the next
// poller with a fresh lease ID, and the dead worker's late traffic cannot
// complete the slot (its evidence still merges — that is the server's job).
func TestSchedulerLeaseReassignment(t *testing.T) {
	cfg := Config{Campaigns: []CampaignSpec{{ID: "net", Driver: "rtl8029", Workers: 1, Execs: 1000}}}
	s, ck := newTestSched(t, cfg, 10*time.Second)
	dead := s.Connect("dead")
	l1 := s.Poll(dead)
	if l1 == nil {
		t.Fatal("no initial lease")
	}

	// Within the TTL the slot is taken.
	live := s.Connect("live")
	ck.advance(5 * time.Second)
	if s.Poll(live) != nil {
		t.Fatal("slot double-leased while the first lease was live")
	}

	// Past the TTL the slot is re-issued with a fresh lease identity.
	ck.advance(6 * time.Second)
	l2 := s.Poll(live)
	if l2 == nil {
		t.Fatal("expired slot not re-issued")
	}
	if l2.LeaseID == l1.LeaseID {
		t.Fatal("re-issued lease kept the stale lease ID")
	}
	if l2.Campaign != "net" || l2.Slot != 0 {
		t.Fatalf("re-issued lease = %+v, want the same slot", l2)
	}

	// The presumed-dead worker comes back: stale (counters pass through
	// whole, live=false tells it to stop), and its Final cannot complete.
	if e, _, liveLease := s.Renew(dead, l1.LeaseID, 500, 0); liveLease || e != 500 {
		t.Fatalf("stale renew = (%d, live=%v), want (500, false)", e, liveLease)
	}
	s.Complete(dead, l1.LeaseID)
	if s.Done() {
		t.Fatal("stale lease completed the slot")
	}

	// The live replacement finishes it.
	s.Complete(live, l2.LeaseID)
	if !s.Done() {
		t.Fatal("live lease could not complete the slot")
	}

	camps, _ := s.Status()
	if len(camps) != 1 || camps[0].Reissues != 1 || camps[0].Done != 1 {
		t.Fatalf("campaign status = %+v, want 1 reissue, 1 done", camps)
	}
}

// TestSchedulerHeartbeatKeepsLease: sync-path heartbeats renew just like
// reports, so a worker between coverage finds never expires.
func TestSchedulerHeartbeatKeepsLease(t *testing.T) {
	cfg := Config{Campaigns: []CampaignSpec{{ID: "net", Driver: "rtl8029", Workers: 1, Execs: 1000}}}
	s, ck := newTestSched(t, cfg, 10*time.Second)
	w := s.Connect("w")
	l := s.Poll(w)
	for i := 0; i < 5; i++ {
		ck.advance(8 * time.Second)
		if !s.Heartbeat(w, l.LeaseID) {
			t.Fatalf("heartbeat %d lost a renewed lease", i)
		}
	}
	other := s.Connect("other")
	if s.Poll(other) != nil {
		t.Fatal("heartbeat-renewed slot was re-issued")
	}
}

// TestSchedulerStop: a stopping scheduler hands out nothing and answers
// every heartbeat with wind-down.
func TestSchedulerStop(t *testing.T) {
	s, _ := newTestSched(t, testConfig(), time.Minute)
	w := s.Connect("w")
	l := s.Poll(w)
	s.Stop()
	if s.Poll(w) != nil {
		t.Fatal("stopping scheduler handed out a lease")
	}
	if _, _, live := s.Renew(w, l.LeaseID, 1, 1); live {
		t.Fatal("stopping scheduler kept a lease live")
	}
	// Final reports still complete their slots during drain.
	s.Complete(w, l.LeaseID)
	camps, _ := s.Status()
	for _, c := range camps {
		if c.ID == l.Campaign && c.Done != 1 {
			t.Fatalf("drain completion lost: %+v", c)
		}
	}
}

// TestSchedulerWorkerIDs: connect assigns unique, sanitized IDs.
func TestSchedulerWorkerIDs(t *testing.T) {
	s, _ := newTestSched(t, Config{}, time.Minute)
	a, b := s.Connect("host:1/2"), s.Connect("host:1/2")
	if a == b {
		t.Fatalf("worker IDs collided: %s", a)
	}
	if strings.ContainsAny(a, ":/") {
		t.Fatalf("worker ID not sanitized: %s", a)
	}
}
