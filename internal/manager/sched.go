package manager

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultLeaseTTL is how long a lease survives without a heartbeat
// (report/sync both renew). Workers sync every SyncInterval — well under
// the TTL — so only a dead or partitioned worker loses its lease.
const DefaultLeaseTTL = 30 * time.Second

// Default worker cadences handed out at connect.
const (
	DefaultPollInterval = 2 * time.Second
	DefaultSyncInterval = 1 * time.Second
)

// slot is one unit of a campaign's worker fan-out.
type slot struct {
	campaign *CampaignSpec
	index    int
	done     bool
	// lease is the currently active hand-out (nil: available). A slot whose
	// lease expires goes back to available and the generation bumps, so the
	// re-issued lease has a fresh ID.
	lease      *lease
	generation int
}

// lease is one live hand-out of a slot to a worker.
type lease struct {
	id      string
	slot    *slot
	worker  string
	expires time.Time
	// progress counters from the last report, so a re-report can be merged
	// as a delta (workers send cumulative values).
	lastExecs  uint64
	lastInstrs uint64
}

// workerInfo tracks one connected worker for /status.
type workerInfo struct {
	id       string
	lastSeen time.Time
	lease    string // active lease ID, "" when idle
}

// Scheduler owns campaign slots and leases. It is the work-distribution
// half of the manager; the State is the results half.
type Scheduler struct {
	mu       sync.Mutex
	slots    []*slot
	leases   map[string]*lease
	workers  map[string]*workerInfo
	ttl      time.Duration
	seq      int
	now      func() time.Time // test hook
	stopping bool
}

// NewScheduler builds the slot table from the campaign config. ttl <= 0
// uses DefaultLeaseTTL.
func NewScheduler(cfg Config, ttl time.Duration) (*Scheduler, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	s := &Scheduler{
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerInfo),
		ttl:     ttl,
		now:     time.Now,
	}
	seen := make(map[string]bool)
	for i := range cfg.Campaigns {
		spec := &cfg.Campaigns[i]
		if spec.ID == "" {
			return nil, fmt.Errorf("manager: campaign %d has no id", i)
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("manager: duplicate campaign id %q", spec.ID)
		}
		seen[spec.ID] = true
		if spec.Driver == "" {
			return nil, fmt.Errorf("manager: campaign %q has no driver", spec.ID)
		}
		if spec.Mode == "" {
			spec.Mode = ModeFuzz
		}
		if spec.Mode != ModeFuzz && spec.Mode != ModeSymbolic {
			return nil, fmt.Errorf("manager: campaign %q: unknown mode %q", spec.ID, spec.Mode)
		}
		if _, err := spec.duration(); err != nil {
			return nil, fmt.Errorf("manager: campaign %q: %w", spec.ID, err)
		}
		if spec.Mode == ModeFuzz && spec.Execs == 0 && spec.Duration == "" {
			return nil, fmt.Errorf("manager: campaign %q needs an execs or duration budget", spec.ID)
		}
		workers := spec.Workers
		if workers < 1 {
			workers = 1
		}
		for w := 0; w < workers; w++ {
			s.slots = append(s.slots, &slot{campaign: spec, index: w})
		}
	}
	return s, nil
}

// Connect registers a worker and returns its unique ID.
func (s *Scheduler) Connect(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("%s-%d", sanitizeName(name), s.seq)
	s.workers[id] = &workerInfo{id: id, lastSeen: s.now()}
	return id
}

// Poll hands out at most one lease to the worker: the first campaign slot
// that is not done and has no live lease (never issued, completed
// abnormally, or expired — the reassignment path for crashed workers).
func (s *Scheduler) Poll(workerID string) *CampaignLease {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.touchLocked(workerID, now)
	if s.stopping {
		return nil
	}
	s.expireLocked(now)
	for _, sl := range s.slots {
		if sl.done || sl.lease != nil {
			continue
		}
		s.seq++
		l := &lease{
			id:      fmt.Sprintf("lease-%s-%d-g%d-%d", sl.campaign.ID, sl.index, sl.generation, s.seq),
			slot:    sl,
			worker:  workerID,
			expires: now.Add(s.ttl),
		}
		sl.lease = l
		s.leases[l.id] = l
		if w := s.workers[workerID]; w != nil {
			w.lease = l.id
		}
		spec := sl.campaign
		dur, _ := spec.duration()
		return &CampaignLease{
			LeaseID:       l.id,
			Campaign:      spec.ID,
			Slot:          sl.index,
			Driver:        spec.Driver,
			Fixed:         spec.Fixed,
			Mode:          spec.Mode,
			Execs:         spec.Execs,
			DurationMS:    dur.Milliseconds(),
			Seed:          spec.Seed + int64(sl.index),
			Persist:       spec.Persist,
			Dict:          spec.Dict,
			EngineWorkers: spec.EngineWorkers,
			Pipeline:      spec.Pipeline,
		}
	}
	return nil
}

// Renew extends a lease on a heartbeat (report or sync). It returns false
// when the lease is no longer live — expired and re-issued, or the manager
// is stopping — which tells the worker to wind down. The cumulative
// progress counters are converted to deltas against the last heartbeat.
func (s *Scheduler) Renew(workerID, leaseID string, execs, instrs uint64) (execsDelta, instrsDelta uint64, live bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.touchLocked(workerID, now)
	s.expireLocked(now)
	l, ok := s.leases[leaseID]
	if !ok || l.worker != workerID {
		// Stale lease: the worker was presumed dead and its slot re-issued.
		// Results are still merged by the caller, but the worker should stop.
		return execs, instrs, false
	}
	l.expires = now.Add(s.ttl)
	if execs >= l.lastExecs {
		execsDelta = execs - l.lastExecs
	}
	if instrs >= l.lastInstrs {
		instrsDelta = instrs - l.lastInstrs
	}
	l.lastExecs, l.lastInstrs = execs, instrs
	return execsDelta, instrsDelta, !s.stopping
}

// Heartbeat renews a lease without progress counters (the sync endpoint).
// It returns false when the worker should wind down.
func (s *Scheduler) Heartbeat(workerID, leaseID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.touchLocked(workerID, now)
	s.expireLocked(now)
	l, ok := s.leases[leaseID]
	if !ok || l.worker != workerID {
		return false
	}
	l.expires = now.Add(s.ttl)
	return !s.stopping
}

// Complete marks a lease's slot done (final report). A stale lease cannot
// complete a slot — its re-issued successor owns it now.
func (s *Scheduler) Complete(workerID, leaseID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked(workerID, s.now())
	l, ok := s.leases[leaseID]
	if !ok || l.worker != workerID {
		return
	}
	l.slot.done = true
	l.slot.lease = nil
	delete(s.leases, leaseID)
	if w := s.workers[workerID]; w != nil && w.lease == leaseID {
		w.lease = ""
	}
}

// expireLocked reaps leases whose workers stopped heartbeating: the slot
// returns to the available pool with a bumped generation, so the campaign
// is re-issued, not lost.
func (s *Scheduler) expireLocked(now time.Time) {
	for id, l := range s.leases {
		if now.After(l.expires) {
			l.slot.lease = nil
			l.slot.generation++
			delete(s.leases, id)
			if w := s.workers[l.worker]; w != nil && w.lease == id {
				w.lease = ""
			}
		}
	}
}

func (s *Scheduler) touchLocked(workerID string, now time.Time) {
	if w := s.workers[workerID]; w != nil {
		w.lastSeen = now
	}
}

// Stop flips the scheduler into shutdown: no new leases, and every
// heartbeat answers Stop so workers wind down and send final reports.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
}

// Done reports whether every slot has completed.
func (s *Scheduler) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sl := range s.slots {
		if !sl.done {
			return false
		}
	}
	return true
}

// CampaignStatus is the /status view of one campaign.
type CampaignStatus struct {
	ID      string `json:"id"`
	Driver  string `json:"driver"`
	Mode    string `json:"mode"`
	Slots   int    `json:"slots"`
	Running int    `json:"running"`
	Done    int    `json:"done"`
	// Reissues counts lease expirations across the campaign's slots — how
	// often a crashed worker's work had to be handed back out.
	Reissues int `json:"reissues"`
}

// WorkerStatus is the /status view of one connected worker.
type WorkerStatus struct {
	ID       string    `json:"id"`
	LastSeen time.Time `json:"last_seen"`
	Lease    string    `json:"lease,omitempty"`
}

// Status snapshots the scheduler for the HTTP layer.
func (s *Scheduler) Status() (campaigns []CampaignStatus, workers []WorkerStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byID := make(map[string]*CampaignStatus)
	var order []string
	for _, sl := range s.slots {
		cs := byID[sl.campaign.ID]
		if cs == nil {
			cs = &CampaignStatus{ID: sl.campaign.ID, Driver: sl.campaign.Driver, Mode: sl.campaign.Mode}
			byID[sl.campaign.ID] = cs
			order = append(order, sl.campaign.ID)
		}
		cs.Slots++
		cs.Reissues += sl.generation
		if sl.done {
			cs.Done++
		} else if sl.lease != nil {
			cs.Running++
		}
	}
	for _, id := range order {
		campaigns = append(campaigns, *byID[id])
	}
	for _, w := range s.workers {
		workers = append(workers, WorkerStatus{ID: w.id, LastSeen: w.lastSeen, Lease: w.lease})
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })
	return campaigns, workers
}
