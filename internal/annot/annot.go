// Package annot ships the stock interface annotations for the NDIS and WDM
// APIs (§3.4.1). Annotations are a one-time effort by OS developers; the
// paper reports two weeks for all 277 NDIS functions and one day for the 54
// WDM functions its sound drivers used. Here they are Go functions with the
// same shape as the paper's C-compiled-to-LLVM hooks: they run at API
// call/return boundaries with direct access to guest state through
// kernel.AnnotCtx.
//
// The four annotation categories of §3.4.1 appear as:
//
//   - concrete-to-symbolic conversion hints: NdisReadConfiguration returns
//     a symbolic integer; allocation APIs fork their failure alternative.
//   - symbolic-to-concrete conversion hints: argument usage rules checked
//     at call time (e.g. NdisFreeMemory length must match).
//   - resource allocation hints: built into the kernel handlers themselves
//     (grants/revokes), since our kernel is instrumented source.
//   - kernel crash handler hook: kernel.BugCheck, installed by default.
//
// Disabling annotations (DDT's default mode) still finds hardware-related
// and race bugs but loses coverage of failure paths — exactly the ablation
// reported in §5.1.
package annot

import (
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// MaxAllocFailForks bounds how many allocation-failure alternatives are
// forked per path, keeping the failure-path exploration finite.
const MaxAllocFailForks = 16

// InstallNDIS adds the network API annotation set.
func InstallNDIS(k *kernel.Kernel) {
	k.Annotate(kernel.Annotation{
		API:      "NdisReadConfiguration",
		OnReturn: ndisReadConfigurationReturn,
	})
	k.Annotate(kernel.Annotation{
		API:      "NdisAllocateMemoryWithTag",
		OnReturn: ndisAllocateMemoryWithTagReturn,
	})
	k.Annotate(kernel.Annotation{
		API:      "NdisAllocatePacket",
		OnReturn: ndisAllocatePacketReturn,
	})
	k.Annotate(kernel.Annotation{
		API:      "NdisMAllocateSharedMemory",
		OnReturn: ndisMAllocateSharedMemoryReturn,
	})
}

// InstallWDM adds the Ex/Ke/PortCls annotation set used by sound drivers.
func InstallWDM(k *kernel.Kernel) {
	k.Annotate(kernel.Annotation{
		API:      "ExAllocatePoolWithTag",
		OnReturn: exAllocatePoolWithTagReturn,
	})
	k.Annotate(kernel.Annotation{
		API:      "PcNewInterruptSync",
		OnReturn: pcNewInterruptSyncReturn,
	})
}

// InstallAll adds every stock annotation set.
func InstallAll(k *kernel.Kernel) {
	InstallNDIS(k)
	InstallWDM(k)
}

// ndisReadConfigurationReturn is the paper's flagship example (§3.4.1,
// verbatim logic): when the call succeeded and returned an integer
// parameter, replace the value with a fresh non-negative symbolic integer.
func ndisReadConfigurationReturn(ctx *kernel.AnnotCtx) {
	if !ctx.Ret().IsConst() || ctx.Ret().ConstVal() != kernel.StatusSuccess {
		return
	}
	paramPtrPtr := ctx.Arg(1)
	if !paramPtrPtr.IsConst() {
		return
	}
	blockPtr := ctx.ReadMem(paramPtrPtr.ConstVal(), 4)
	if !blockPtr.IsConst() {
		return
	}
	block := blockPtr.ConstVal()
	ptype := ctx.ReadMem(block, 4)
	if !ptype.IsConst() || ptype.ConstVal() != kernel.ParamInteger {
		return
	}
	symb := ctx.NewSymbol("registry_value", expr.OriginRegistry)
	// The paper's annotation discards states where the symbolic integer is
	// negative; the equivalent here is the path constraint symb >= 0.
	ctx.S.AddConstraint(expr.SGe(symb, expr.Const(0)))
	ctx.WriteMem(block+4, 4, symb)
}

// forkAllocFailure forks an alternative path on which the allocator failed,
// bounded by MaxAllocFailForks per path. It returns nil when the bound is
// reached.
func forkAllocFailure(ctx *kernel.AnnotCtx) *vm.State {
	ks := kernel.Of(ctx.S)
	if ks.AllocFailForks >= MaxAllocFailForks {
		return nil
	}
	ks.AllocFailForks++
	return ctx.Fork()
}

// ndisAllocateMemoryWithTagReturn forks the NDIS_STATUS_RESOURCES outcome.
func ndisAllocateMemoryWithTagReturn(ctx *kernel.AnnotCtx) {
	if !ctx.Ret().IsConst() || ctx.Ret().ConstVal() != kernel.StatusSuccess {
		return
	}
	ptrPtr := ctx.Arg(0)
	if !ptrPtr.IsConst() {
		return
	}
	ptr := ctx.ReadMem(ptrPtr.ConstVal(), 4)
	if !ptr.IsConst() {
		return
	}
	if altState := forkAllocFailure(ctx); altState != nil {
		kernel.Of(altState).HeapFree(ptr.ConstVal())
		altState.Mem.Write(ptrPtr.ConstVal(), 4, expr.Const(0))
		altState.SetReg(isa.R0, expr.Const(kernel.StatusResources))
	}
}

// ndisAllocatePacketReturn forks the packet-exhaustion outcome.
func ndisAllocatePacketReturn(ctx *kernel.AnnotCtx) {
	if !ctx.Ret().IsConst() || ctx.Ret().ConstVal() != kernel.StatusSuccess {
		return
	}
	statusPtr := ctx.Arg(0)
	pktPtr := ctx.Arg(1)
	if !statusPtr.IsConst() || !pktPtr.IsConst() {
		return
	}
	pkt := ctx.ReadMem(pktPtr.ConstVal(), 4)
	if !pkt.IsConst() {
		return
	}
	if altState := forkAllocFailure(ctx); altState != nil {
		aks := kernel.Of(altState)
		if pi, ok := aks.Packets[pkt.ConstVal()]; ok {
			delete(aks.Packets, pkt.ConstVal())
			if pool, ok := aks.PacketPools[pi.Pool]; ok {
				pool.Live--
			}
		}
		altState.Mem.Write(statusPtr.ConstVal(), 4, expr.Const(kernel.StatusResources))
		altState.Mem.Write(pktPtr.ConstVal(), 4, expr.Const(0))
		altState.SetReg(isa.R0, expr.Const(kernel.StatusResources))
	}
}

// ndisMAllocateSharedMemoryReturn forks the DMA-exhaustion outcome.
func ndisMAllocateSharedMemoryReturn(ctx *kernel.AnnotCtx) {
	if !ctx.Ret().IsConst() || ctx.Ret().ConstVal() != kernel.StatusSuccess {
		return
	}
	vaPtr := ctx.Arg(3)
	if !vaPtr.IsConst() {
		return
	}
	va := ctx.ReadMem(vaPtr.ConstVal(), 4)
	if !va.IsConst() {
		return
	}
	if altState := forkAllocFailure(ctx); altState != nil {
		kernel.Of(altState).HeapFree(va.ConstVal())
		altState.Mem.Write(vaPtr.ConstVal(), 4, expr.Const(0))
		altState.SetReg(isa.R0, expr.Const(kernel.StatusResources))
	}
}

// exAllocatePoolWithTagReturn forks the NULL-pointer outcome — the path on
// which the Ensoniq AudioPCI driver of Table 2 dereferences NULL despite
// having checked.
func exAllocatePoolWithTagReturn(ctx *kernel.AnnotCtx) {
	ret := ctx.Ret()
	if !ret.IsConst() || ret.ConstVal() == 0 {
		return
	}
	if altState := forkAllocFailure(ctx); altState != nil {
		kernel.Of(altState).HeapFree(ret.ConstVal())
		altState.SetReg(isa.R0, expr.Const(0))
	}
}

// pcNewInterruptSyncReturn forks the creation-failure outcome — the other
// Ensoniq AudioPCI crash of Table 2.
func pcNewInterruptSyncReturn(ctx *kernel.AnnotCtx) {
	if !ctx.Ret().IsConst() || ctx.Ret().ConstVal() != kernel.StatusSuccess {
		return
	}
	syncPtrPtr := ctx.Arg(0)
	if !syncPtrPtr.IsConst() {
		return
	}
	if altState := forkAllocFailure(ctx); altState != nil {
		sync := ctx.ReadMem(syncPtrPtr.ConstVal(), 4)
		if sync.IsConst() {
			delete(kernel.Of(altState).IntrSyncs, sync.ConstVal())
		}
		altState.Mem.Write(syncPtrPtr.ConstVal(), 4, expr.Const(0))
		altState.SetReg(isa.R0, expr.Const(kernel.StatusFailure))
	}
}
