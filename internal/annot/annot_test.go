package annot

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
)

func harness(t *testing.T, src string) (*kernel.Kernel, *vm.State) {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	k := kernel.New(m)
	InstallAll(k)
	s := m.NewRootState()
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{Lo: isa.ImageBase, Hi: img.LimitVA(), Kind: kernel.RegionImage, Writable: true})
	ks.Registry["Speed"] = 100
	s.Kernel = ks
	k.Invoke(s, "DriverEntry", img.Entry)
	return k, s
}

func drain(t *testing.T, k *kernel.Kernel, s *vm.State) []*vm.State {
	t.Helper()
	var finals []*vm.State
	work := []*vm.State{s}
	for len(work) > 0 {
		st := work[0]
		work = work[1:]
		final, forked, err := k.M.Run(st, 100000)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		work = append(work, forked...)
		if final.Status == vm.StatusExited {
			finals = append(finals, final)
		}
	}
	return finals
}

// TestRegistryValueBecomesSymbolic is the paper's flagship annotation
// (§3.4.1): a successful NdisReadConfiguration returns a fresh symbolic
// integer constrained non-negative, forking driver branches on it.
func TestRegistryValueBecomesSymbolic(t *testing.T) {
	k, s := harness(t, `
.import NdisOpenConfiguration
.import NdisReadConfiguration
.entry e
.text
e:
    push lr
    addi sp, sp, -12
    mov  r0, sp
    addi r1, sp, 4
    call NdisOpenConfiguration
    mov  r0, sp
    addi r1, sp, 8
    ldw  r2, [sp+4]
    movi r3, name
    call NdisReadConfiguration
    ldw  r4, [sp+8]
    ldw  r4, [r4+4]       ; IntegerData: symbolic
    movi r12, 50
    bltu r4, r12, small
    movi r5, 1
    jmp  out
small:
    movi r5, 2
out:
    addi sp, sp, 12
    pop  lr
    mov  r0, r5
    ret
.data
name: .asciz "Speed"
`)
	finals := drain(t, k, s)
	if len(finals) != 2 {
		t.Fatalf("paths = %d, want 2 (the symbolic registry value must fork the branch)", len(finals))
	}
	// The constraint symb >= 0 (signed) must be on both paths' models.
	for _, f := range finals {
		m := k.M.Solver.Model(f.Constraints)
		if m == nil {
			t.Fatal("unsolvable path")
		}
	}
}

// TestAllocFailureForkBounded: each allocation call forks at most one
// failure alternative, and the counter bounds total forks per path.
func TestAllocFailureForkBounded(t *testing.T) {
	k, s := harness(t, `
.import ExAllocatePoolWithTag
.entry e
.text
e:
    push lr
    movi r0, 0
    movi r1, 16
    movi r2, 1
    call ExAllocatePoolWithTag
    movi r0, 0
    movi r1, 16
    movi r2, 2
    call ExAllocatePoolWithTag
    pop  lr
    movi r0, 0
    ret
`)
	finals := drain(t, k, s)
	// success+success, success+fail, fail+success, fail+fail = 4 paths.
	if len(finals) != 4 {
		t.Fatalf("paths = %d, want 4", len(finals))
	}
	for _, f := range finals {
		if kernel.Of(f).AllocFailForks > MaxAllocFailForks {
			t.Error("fork bound exceeded")
		}
	}
}

// TestFailureAlternativeIsClean: on the forked failure path the allocation
// must be undone — no grant, no leak-checker food.
func TestFailureAlternativeIsClean(t *testing.T) {
	k, s := harness(t, `
.import NdisAllocateMemoryWithTag
.entry e
.text
e:
    push lr
    addi sp, sp, -4
    mov  r0, sp
    movi r1, 64
    movi r2, 7
    call NdisAllocateMemoryWithTag
    ldw  r1, [sp+0]
    addi sp, sp, 4
    pop  lr
    ret
`)
	finals := drain(t, k, s)
	if len(finals) != 2 {
		t.Fatalf("paths = %d", len(finals))
	}
	for _, f := range finals {
		status, _ := f.RegConcrete(isa.R0)
		ptr, _ := f.RegConcrete(isa.R1)
		ks := kernel.Of(f)
		switch status {
		case kernel.StatusSuccess:
			if ptr == 0 || len(ks.LiveAllocs()) != 1 {
				t.Errorf("success path: ptr=%#x allocs=%d", ptr, len(ks.LiveAllocs()))
			}
		case kernel.StatusResources:
			if ptr != 0 || len(ks.LiveAllocs()) != 0 {
				t.Errorf("failure path: ptr=%#x allocs=%d (allocation not undone)", ptr, len(ks.LiveAllocs()))
			}
		default:
			t.Errorf("status = %#x", status)
		}
	}
}

// TestPcNewInterruptSyncFailureFork: the audio sync object forks a NULL
// alternative (the Ensoniq bug's precondition).
func TestPcNewInterruptSyncFailureFork(t *testing.T) {
	k, s := harness(t, `
.import PcNewInterruptSync
.entry e
.text
e:
    push lr
    addi sp, sp, -4
    mov  r0, sp
    movi r1, 0
    call PcNewInterruptSync
    ldw  r1, [sp+0]
    addi sp, sp, 4
    pop  lr
    ret
`)
	finals := drain(t, k, s)
	if len(finals) != 2 {
		t.Fatalf("paths = %d", len(finals))
	}
	sawNull, sawValid := false, false
	for _, f := range finals {
		ptr, _ := f.RegConcrete(isa.R1)
		if ptr == 0 {
			sawNull = true
		} else {
			sawValid = true
			if !kernel.Of(f).IntrSyncs[ptr] {
				t.Error("valid sync not registered")
			}
		}
	}
	if !sawNull || !sawValid {
		t.Error("missing an outcome")
	}
}

// TestInstallersAreIdempotentEnough: installing only the NDIS set leaves
// WDM APIs un-annotated.
func TestInstallersSeparate(t *testing.T) {
	img, _ := asm.Assemble(".entry e\n.text\ne: ret\n")
	m := vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	k := kernel.New(m)
	InstallNDIS(k)
	if len(k.Annotations["ExAllocatePoolWithTag"]) != 0 {
		t.Error("NDIS installer touched WDM APIs")
	}
	if len(k.Annotations["NdisReadConfiguration"]) == 0 {
		t.Error("NDIS annotation missing")
	}
	InstallWDM(k)
	if len(k.Annotations["ExAllocatePoolWithTag"]) == 0 {
		t.Error("WDM annotation missing")
	}
}
