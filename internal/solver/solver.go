// Package solver decides satisfiability of path constraints and produces
// concrete models (assignments of symbolic inputs), standing in for the
// Klee/STP stack the paper builds on.
//
// Device-driver path constraints live in a narrow fragment: comparisons of
// symbolic inputs (hardware register reads, registry values, packet bytes)
// against constants, simple linear offsets, bit masks, and boolean
// combinations thereof. The solver is sound always (a Sat answer comes with
// a model that is verified by evaluation; an Unsat answer is only produced
// by sound interval reasoning) and complete in practice for this fragment
// via exhaustive candidate-set search and randomized probing. Answers it
// cannot decide are reported as Unknown, which DDT's exerciser treats as
// "do not explore" (a coverage loss, never a false positive — matching the
// paper's accuracy discipline).
package solver

import (
	"repro/internal/expr"
)

// Result is the outcome of a satisfiability query.
type Result int

// Query outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Stats counts solver activity for benchmark reporting.
type Stats struct {
	Queries      uint64
	CacheHits    uint64
	SatAnswers   uint64
	UnsatAnswers uint64
	UnknownAns   uint64
	Probes       uint64
}

// Solver answers satisfiability queries over sets of constraints. Each
// constraint is an expression required to evaluate to a non-zero value.
//
// A Solver itself is single-goroutine scratch (its probe RNG and Stats are
// unsynchronized); parallel exploration gives each worker its own Solver.
// The query cache behind it IS thread-safe and can be shared across workers
// with NewWithCache, so one worker's Sat/Unsat answers are hits for all.
type Solver struct {
	cache *Cache
	rng   uint64
	// MaxProbes bounds randomized probing per query.
	MaxProbes int
	// MaxProduct bounds the exhaustive candidate cross-product.
	MaxProduct int
	Stats      Stats
}

// New returns a Solver with default limits and a private query cache.
func New() *Solver {
	return NewWithCache(NewCache(0))
}

// NewWithCache returns a Solver backed by the given (possibly shared)
// query cache.
func NewWithCache(c *Cache) *Solver {
	if c == nil {
		c = NewCache(0)
	}
	return &Solver{
		cache:      c,
		rng:        0x9E3779B97F4A7C15,
		MaxProbes:  4096,
		MaxProduct: 8192,
	}
}

// Cache returns the query cache backing this solver.
func (s *Solver) Cache() *Cache { return s.cache }

func (s *Solver) rand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// Check decides whether the conjunction of cs is satisfiable. On Sat the
// returned assignment covers every symbol occurring in cs and makes every
// constraint non-zero (this is re-verified before returning).
func (s *Solver) Check(cs []*expr.Expr) (Result, expr.Assignment) {
	s.Stats.Queries++

	// Fast path: constant constraints.
	live := cs[:0:0]
	for _, c := range cs {
		if c.IsConst() {
			if c.C == 0 {
				s.Stats.UnsatAnswers++
				return Unsat, nil
			}
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		s.Stats.SatAnswers++
		return Sat, expr.Assignment{}
	}

	key := hashConstraints(live)
	if e, ok := s.cache.get(key); ok {
		s.Stats.CacheHits++
		return e.res, cloneAssignment(e.model)
	}

	res, model := s.solve(live)
	s.cache.put(key, cacheEntry{res, cloneAssignment(model)})
	switch res {
	case Sat:
		s.Stats.SatAnswers++
	case Unsat:
		s.Stats.UnsatAnswers++
	default:
		s.Stats.UnknownAns++
	}
	return res, model
}

// Feasible reports whether the conjunction of cs has at least one model.
// Unknown is conservatively reported as infeasible.
func (s *Solver) Feasible(cs []*expr.Expr) bool {
	res, _ := s.Check(cs)
	return res == Sat
}

// Model returns a satisfying assignment for cs, or nil if none was found.
func (s *Solver) Model(cs []*expr.Expr) expr.Assignment {
	res, m := s.Check(cs)
	if res != Sat {
		return nil
	}
	return m
}

func hashConstraints(cs []*expr.Expr) uint64 {
	// Order-insensitive combination: constraint sets arrive in append order,
	// but logically they are sets.
	var h uint64 = 0x8b3e5e3c9d2f1a77
	for _, c := range cs {
		h ^= c.Hash() * 0x9E3779B97F4A7C15
	}
	h ^= uint64(len(cs)) << 32
	return h
}

func cloneAssignment(a expr.Assignment) expr.Assignment {
	if a == nil {
		return nil
	}
	out := make(expr.Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

func (s *Solver) solve(cs []*expr.Expr) (Result, expr.Assignment) {
	syms := collectSymbols(cs)

	// Interval propagation: sound narrowing of per-symbol unsigned ranges.
	ivs := make(map[expr.SymID]interval, len(syms))
	for _, id := range syms {
		ivs[id] = fullInterval()
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, c := range cs {
			ok, ch := propagate(c, true, ivs)
			if !ok {
				return Unsat, nil
			}
			changed = changed || ch
		}
		if !changed {
			break
		}
	}

	// Candidate construction.
	cands := s.candidates(cs, syms, ivs)

	// Exhaustive search over the candidate cross-product when small.
	product := 1
	for _, id := range syms {
		product *= len(cands[id])
		if product > s.MaxProduct {
			product = -1
			break
		}
	}
	if product > 0 {
		if m := exhaustive(cs, syms, cands); m != nil {
			return Sat, m
		}
		// The candidate sets cover every comparison boundary. For the
		// supported fragment exhaustive failure strongly suggests Unsat,
		// but wide multiplications etc. can escape the boundaries, so fall
		// through to probing before giving up.
	}

	// Greedy repair from each candidate seed, then randomized probing.
	if m := s.greedy(cs, syms, cands); m != nil {
		return Sat, m
	}
	if m := s.probe(cs, syms, ivs, cands); m != nil {
		return Sat, m
	}
	if product > 0 {
		// Exhaustive over boundary candidates + probing both failed; for
		// the interval-comparison fragment this is a sound Unsat because
		// candidate sets include all interval endpoints and comparison
		// boundaries. Declare Unsat only when every constraint is in the
		// recognized fragment; otherwise stay Unknown.
		if allRecognized(cs) {
			return Unsat, nil
		}
	}
	return Unknown, nil
}

func collectSymbols(cs []*expr.Expr) []expr.SymID {
	set := make(map[expr.SymID]bool)
	for _, c := range cs {
		expr.CollectSyms(c, set)
	}
	out := make([]expr.SymID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func satisfies(cs []*expr.Expr, a expr.Assignment) bool {
	for _, c := range cs {
		if expr.Eval(c, a) == 0 {
			return false
		}
	}
	return true
}

func exhaustive(cs []*expr.Expr, syms []expr.SymID, cands map[expr.SymID][]uint32) expr.Assignment {
	a := make(expr.Assignment, len(syms))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(syms) {
			return satisfies(cs, a)
		}
		id := syms[i]
		for _, v := range cands[id] {
			a[id] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if rec(0) {
		return a
	}
	return nil
}

// greedy starts from seed assignments and repairs one symbol at a time,
// maximizing the number of satisfied constraints.
func (s *Solver) greedy(cs []*expr.Expr, syms []expr.SymID, cands map[expr.SymID][]uint32) expr.Assignment {
	count := func(a expr.Assignment) int {
		n := 0
		for _, c := range cs {
			if expr.Eval(c, a) != 0 {
				n++
			}
		}
		return n
	}
	seeds := []uint32{0, 1, 0xFFFFFFFF}
	for _, seed := range seeds {
		a := make(expr.Assignment, len(syms))
		for _, id := range syms {
			// Prefer an in-candidate seed value.
			vs := cands[id]
			a[id] = vs[0]
			for _, v := range vs {
				if v == seed {
					a[id] = v
					break
				}
			}
		}
		best := count(a)
		for round := 0; round < 8 && best < len(cs); round++ {
			improved := false
			for _, id := range syms {
				old := a[id]
				bestV, bestN := old, best
				for _, v := range cands[id] {
					a[id] = v
					if n := count(a); n > bestN {
						bestN, bestV = n, v
					}
				}
				a[id] = bestV
				if bestN > best {
					best = bestN
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if best == len(cs) {
			return a
		}
	}
	return nil
}

func (s *Solver) probe(cs []*expr.Expr, syms []expr.SymID, ivs map[expr.SymID]interval, cands map[expr.SymID][]uint32) expr.Assignment {
	a := make(expr.Assignment, len(syms))
	for try := 0; try < s.MaxProbes; try++ {
		s.Stats.Probes++
		for _, id := range syms {
			r := s.rand()
			var v uint32
			switch r % 4 {
			case 0: // candidate value
				vs := cands[id]
				v = vs[int(r>>8)%len(vs)]
			case 1: // small value
				v = uint32(r>>8) & 0xFF
			case 2: // medium value
				v = uint32(r>>8) & 0xFFFF
			default: // anywhere in the interval
				iv := ivs[id]
				span := uint64(iv.hi-iv.lo) + 1
				v = iv.lo + uint32(uint64(r>>8)%span)
			}
			iv := ivs[id]
			if !iv.contains(v) {
				v = iv.lo
			}
			a[id] = v
		}
		if satisfies(cs, a) {
			return a
		}
	}
	return nil
}

// candidates builds, per symbol, the set of "interesting" values: interval
// endpoints, comparison boundaries found anywhere in the constraints, and
// the usual suspects (0, 1, all-ones, sign boundaries), each with ±1
// neighbours, filtered to the symbol's interval.
func (s *Solver) candidates(cs []*expr.Expr, syms []expr.SymID, ivs map[expr.SymID]interval) map[expr.SymID][]uint32 {
	consts := make(map[uint32]bool)
	for _, c := range cs {
		collectConsts(c, consts)
	}
	base := []uint32{0, 1, 2, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	var pool []uint32
	pool = append(pool, base...)
	for v := range consts {
		pool = append(pool, v, v+1, v-1)
	}
	// Pairwise differences catch linear offsets (Eq(c, Add(k, x)) already
	// folds in the simplifier, but Sub/And compositions may not).
	if len(consts) <= 24 {
		cl := make([]uint32, 0, len(consts))
		for v := range consts {
			cl = append(cl, v)
		}
		for i := range cl {
			for j := range cl {
				if i != j {
					pool = append(pool, cl[i]-cl[j])
				}
			}
		}
	}

	out := make(map[expr.SymID][]uint32, len(syms))
	for _, id := range syms {
		iv := ivs[id]
		seen := make(map[uint32]bool)
		var vs []uint32
		add := func(v uint32) {
			if iv.contains(v) && !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
		add(iv.lo)
		add(iv.hi)
		add(iv.lo + 1)
		add(iv.hi - 1)
		for _, v := range pool {
			add(v)
		}
		if len(vs) == 0 {
			vs = append(vs, iv.lo)
		}
		out[id] = vs
	}
	return out
}

func collectConsts(e *expr.Expr, out map[uint32]bool) {
	if e == nil {
		return
	}
	// Hash-consed expressions share subtrees; above the same threshold the
	// expr package uses for symbol collection, skip already-visited
	// pointers so shared subtrees are walked once. The collected value set
	// is identical either way.
	if e.Size() > 64 {
		collectConstsDAG(e, out, make(map[*expr.Expr]struct{}, 32))
		return
	}
	collectConstsTree(e, out)
}

func collectConstsTree(e *expr.Expr, out map[uint32]bool) {
	if e == nil {
		return
	}
	if e.Op == expr.OpConst {
		out[e.C] = true
		return
	}
	collectConstsTree(e.X, out)
	collectConstsTree(e.Y, out)
	collectConstsTree(e.Z, out)
}

func collectConstsDAG(e *expr.Expr, out map[uint32]bool, seen map[*expr.Expr]struct{}) {
	if e == nil {
		return
	}
	if e.Op == expr.OpConst {
		out[e.C] = true
		return
	}
	if _, ok := seen[e]; ok {
		return
	}
	seen[e] = struct{}{}
	collectConstsDAG(e.X, out, seen)
	collectConstsDAG(e.Y, out, seen)
	collectConstsDAG(e.Z, out, seen)
}
