package solver

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// cacheShards is the shard count of a shared query cache. Sharding by key
// keeps lock contention negligible when many worker solvers share one
// cache: two workers collide only when they hash into the same shard at the
// same instant.
const cacheShards = 16

// DefaultCacheSize is the default bound on cached query results. It is
// sized so single-session runs never evict (the full evaluation corpus
// stays well under it); long fuzzing or multi-driver campaigns roll over
// via FIFO eviction instead of growing without bound.
const DefaultCacheSize = 1 << 16

// CacheStats is a point-in-time snapshot of shared-cache activity.
type CacheStats struct {
	// Hits counts queries answered from the cache, across every solver
	// attached to it.
	Hits uint64
	// Misses counts queries that had to be solved.
	Misses uint64
	// Evictions counts entries dropped by the size bound.
	Evictions uint64
	// Entries is the current number of cached results.
	Entries int
}

// Cache is a sharded, mutex-guarded, bounded store of solver query results,
// shared by the per-worker Solver instances of a parallel exploration: one
// worker's Sat/Unsat answer is a hit for every other worker. Eviction is
// coarse FIFO per shard — oldest insertions go first — which is cheap,
// deterministic, and good enough for the workload (query keys recur within
// a phase, rarely across a whole session).
type Cache struct {
	shards [cacheShards]cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[uint64]cacheEntry
	order   []uint64 // insertion order, for FIFO eviction
	max     int
}

// NewCache returns a shared query cache bounded to max entries (<=0 means
// DefaultCacheSize).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	perShard := max / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]cacheEntry)
		c.shards[i].max = perShard
	}
	return c
}

func (c *Cache) shard(key uint64) *cacheShard {
	return &c.shards[(key>>48)%cacheShards]
}

// get returns the cached result for key, counting the hit or miss.
func (c *Cache) get(key uint64) (cacheEntry, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// put stores a result, evicting the shard's oldest entries when full.
func (c *Cache) put(key uint64, e cacheEntry) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, exists := sh.entries[key]; !exists {
		for len(sh.entries) >= sh.max && len(sh.order) > 0 {
			old := sh.order[0]
			sh.order = sh.order[1:]
			if _, ok := sh.entries[old]; ok {
				delete(sh.entries, old)
				c.evictions.Add(1)
			}
		}
		sh.order = append(sh.order, key)
	}
	sh.entries[key] = e
	sh.mu.Unlock()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		s.Entries += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return s
}

// Len returns the current entry count.
func (c *Cache) Len() int { return c.Stats().Entries }

type cacheEntry struct {
	res   Result
	model expr.Assignment
}
