package solver

// interval is an inclusive unsigned 32-bit range [lo, hi]. The empty
// interval is represented by lo > hi.
type interval struct {
	lo, hi uint32
}

func fullInterval() interval { return interval{0, 0xFFFFFFFF} }

func (iv interval) empty() bool { return iv.lo > iv.hi }

func (iv interval) contains(v uint32) bool { return v >= iv.lo && v <= iv.hi }

// clampMax intersects iv with [0, max].
func (iv interval) clampMax(max uint32) interval {
	if max < iv.hi {
		iv.hi = max
	}
	return iv
}

// clampMin intersects iv with [min, 0xFFFFFFFF].
func (iv interval) clampMin(min uint32) interval {
	if min > iv.lo {
		iv.lo = min
	}
	return iv
}

// point intersects iv with the single value v.
func (iv interval) point(v uint32) interval {
	if !iv.contains(v) {
		return interval{1, 0}
	}
	return interval{v, v}
}

// exclude removes v from iv when v is an endpoint; interior exclusions are
// not representable and are left to probing (sound: the interval only ever
// over-approximates the feasible set).
func (iv interval) exclude(v uint32) interval {
	if iv.lo == v && iv.hi == v {
		return interval{1, 0}
	}
	if iv.lo == v {
		iv.lo++
	} else if iv.hi == v {
		iv.hi--
	}
	return iv
}
