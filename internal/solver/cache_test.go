package solver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
)

// TestSharedCacheCrossSolverHit: a query answered by one solver must be a
// cache hit for a different solver sharing the same cache.
func TestSharedCacheCrossSolverHit(t *testing.T) {
	cache := NewCache(0)
	a := NewWithCache(cache)
	b := NewWithCache(cache)

	x := expr.Sym(0)
	cs := []*expr.Expr{expr.Eq(x, expr.Const(7))}

	if res, _ := a.Check(cs); res != Sat {
		t.Fatalf("solver a: %v", res)
	}
	if a.Stats.CacheHits != 0 {
		t.Fatalf("first query hit the cache")
	}
	if res, m := b.Check(cs); res != Sat || m[0] != 7 {
		t.Fatalf("solver b: %v %v", res, m)
	}
	if b.Stats.CacheHits != 1 {
		t.Fatalf("cross-solver query missed the shared cache (hits=%d)", b.Stats.CacheHits)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestCacheModelIsolation: mutating a model returned from the cache must
// not corrupt the cached copy.
func TestCacheModelIsolation(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	cs := []*expr.Expr{expr.Eq(x, expr.Const(3))}
	_, m1 := s.Check(cs)
	m1[0] = 999
	_, m2 := s.Check(cs)
	if m2[0] != 3 {
		t.Fatalf("cached model was mutated through a returned copy: %v", m2)
	}
}

// TestCacheBoundAndEviction: the cache must stay within its bound and
// count evictions once distinct queries exceed it.
func TestCacheBoundAndEviction(t *testing.T) {
	const bound = 64
	cache := NewCache(bound)
	s := NewWithCache(cache)

	x := expr.Sym(0)
	const queries = bound * 4
	for i := 0; i < queries; i++ {
		// Distinct constraint sets -> distinct cache keys.
		if res, _ := s.Check([]*expr.Expr{expr.Eq(x, expr.Const(uint32(i)))}); res != Sat {
			t.Fatalf("query %d unsat", i)
		}
	}
	st := cache.Stats()
	if st.Entries > bound {
		t.Fatalf("cache holds %d entries, bound %d", st.Entries, bound)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after %d distinct queries into a %d-entry cache", queries, bound)
	}
	// Evicted or not, every answer must still be correct on re-query.
	if res, m := s.Check([]*expr.Expr{expr.Eq(x, expr.Const(0))}); res != Sat || m[0] != 0 {
		t.Fatalf("post-eviction re-query: %v %v", res, m)
	}
}

// TestCacheConcurrentSolvers hammers one shared cache from many solvers
// (run under -race): answers must stay correct and every query accounted.
func TestCacheConcurrentSolvers(t *testing.T) {
	cache := NewCache(0)
	const workers = 8
	const perWorker = 200

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewWithCache(cache)
			x := expr.Sym(0)
			for i := 0; i < perWorker; i++ {
				want := uint32(i % 50) // plenty of cross-worker overlap
				res, m := s.Check([]*expr.Expr{expr.Eq(x, expr.Const(want))})
				if res != Sat || m[0] != want {
					errs <- fmt.Errorf("worker %d query %d: %v %v", w, i, res, m)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits+st.Misses != workers*perWorker {
		t.Fatalf("hits %d + misses %d != %d queries", st.Hits, st.Misses, workers*perWorker)
	}
	if st.Entries != 50 {
		t.Fatalf("entries = %d, want 50 distinct keys", st.Entries)
	}
}
