package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func checkSat(t *testing.T, s *Solver, cs []*expr.Expr) expr.Assignment {
	t.Helper()
	res, m := s.Check(cs)
	if res != Sat {
		t.Fatalf("Check = %v, want sat (constraints: %v)", res, cs)
	}
	for _, c := range cs {
		if expr.Eval(c, m) == 0 {
			t.Fatalf("model %v does not satisfy %v", m, c)
		}
	}
	return m
}

func TestTrivial(t *testing.T) {
	s := New()
	if res, _ := s.Check([]*expr.Expr{expr.Const(1)}); res != Sat {
		t.Errorf("const true: %v", res)
	}
	if res, _ := s.Check([]*expr.Expr{expr.Const(0)}); res != Unsat {
		t.Errorf("const false: %v", res)
	}
	if res, _ := s.Check(nil); res != Sat {
		t.Errorf("empty set: %v", res)
	}
}

func TestSingleComparisons(t *testing.T) {
	s := New()
	x := expr.Sym(0)

	m := checkSat(t, s, []*expr.Expr{expr.Eq(x, expr.Const(42))})
	if m[0] != 42 {
		t.Errorf("eq model: %v", m)
	}

	m = checkSat(t, s, []*expr.Expr{expr.ULt(x, expr.Const(10))})
	if m[0] >= 10 {
		t.Errorf("ult model: %v", m)
	}

	m = checkSat(t, s, []*expr.Expr{expr.UGt(x, expr.Const(0xFFFFFF00))})
	if m[0] <= 0xFFFFFF00 {
		t.Errorf("ugt model: %v", m)
	}

	m = checkSat(t, s, []*expr.Expr{expr.SLt(x, expr.Const(0))})
	if int32(m[0]) >= 0 {
		t.Errorf("slt model: %v", m)
	}
}

func TestConjunction(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	cs := []*expr.Expr{
		expr.UGe(x, expr.Const(100)),
		expr.ULt(x, expr.Const(200)),
		expr.Ne(x, expr.Const(150)),
	}
	m := checkSat(t, s, cs)
	if m[0] < 100 || m[0] >= 200 || m[0] == 150 {
		t.Errorf("model out of range: %v", m)
	}
}

func TestUnsatByInterval(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	cs := []*expr.Expr{
		expr.ULt(x, expr.Const(10)),
		expr.UGt(x, expr.Const(20)),
	}
	if res, _ := s.Check(cs); res != Unsat {
		t.Errorf("interval contradiction: %v, want unsat", res)
	}
}

func TestUnsatEquality(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	cs := []*expr.Expr{
		expr.Eq(x, expr.Const(5)),
		expr.Eq(x, expr.Const(6)),
	}
	if res, _ := s.Check(cs); res != Unsat {
		t.Errorf("conflicting equalities: %v, want unsat", res)
	}
}

func TestOffsetConstraints(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	// x + 7 == 3 (mod 2^32) => x == 0xFFFFFFFC
	m := checkSat(t, s, []*expr.Expr{expr.Eq(expr.Add(x, expr.Const(7)), expr.Const(3))})
	if m[0] != 0xFFFFFFFC {
		t.Errorf("wraparound offset: %v", m)
	}
}

func TestTwoSymbols(t *testing.T) {
	s := New()
	x, y := expr.Sym(0), expr.Sym(1)
	cs := []*expr.Expr{
		expr.ULt(x, y),
		expr.ULt(y, expr.Const(5)),
		expr.UGt(x, expr.Const(1)),
	}
	m := checkSat(t, s, cs)
	if !(m[0] < m[1] && m[1] < 5 && m[0] > 1) {
		t.Errorf("two-symbol model: %v", m)
	}
}

func TestMaskedConstraint(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	// (x & 0xFF) == 0x7F
	m := checkSat(t, s, []*expr.Expr{expr.Eq(expr.And(x, expr.Const(0xFF)), expr.Const(0x7F))})
	if m[0]&0xFF != 0x7F {
		t.Errorf("mask model: %v", m)
	}
	// (x & 0xFF) == 0x1FF is unsat
	res, _ := s.Check([]*expr.Expr{expr.Eq(expr.And(x, expr.Const(0xFF)), expr.Const(0x1FF))})
	if res != Unsat {
		t.Errorf("impossible mask: %v, want unsat", res)
	}
}

func TestBranchBothWays(t *testing.T) {
	// The central DDT workload: given a path condition, check both the taken
	// and not-taken branch refinements.
	s := New()
	x := expr.Sym(0)
	path := []*expr.Expr{expr.ULt(x, expr.Const(100))}
	cond := expr.Eq(x, expr.Const(42))

	taken := append(append([]*expr.Expr{}, path...), cond)
	not := append(append([]*expr.Expr{}, path...), expr.LogicalNot(cond))
	checkSat(t, s, taken)
	m := checkSat(t, s, not)
	if m[0] == 42 || m[0] >= 100 {
		t.Errorf("negated-branch model: %v", m)
	}
}

func TestCaching(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	cs := []*expr.Expr{expr.ULt(x, expr.Const(10))}
	s.Check(cs)
	q0 := s.Stats.Queries
	h0 := s.Stats.CacheHits
	s.Check(cs)
	if s.Stats.Queries != q0+1 || s.Stats.CacheHits != h0+1 {
		t.Errorf("expected cache hit: %+v", s.Stats)
	}
}

func TestCachedModelIsCopied(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	cs := []*expr.Expr{expr.Eq(x, expr.Const(9))}
	_, m1 := s.Check(cs)
	m1[0] = 77 // mutate caller copy
	_, m2 := s.Check(cs)
	if m2[0] != 9 {
		t.Errorf("cache returned aliased model: %v", m2)
	}
}

func TestFeasibleAndModel(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	if !s.Feasible([]*expr.Expr{expr.ULt(x, expr.Const(2))}) {
		t.Error("feasible returned false")
	}
	if s.Feasible([]*expr.Expr{expr.ULt(x, expr.Const(0))}) {
		t.Error("x < 0 unsigned reported feasible")
	}
	if m := s.Model([]*expr.Expr{expr.Eq(x, expr.Const(3))}); m == nil || m[0] != 3 {
		t.Errorf("Model = %v", m)
	}
	if m := s.Model([]*expr.Expr{expr.Const(0)}); m != nil {
		t.Errorf("Model of false = %v, want nil", m)
	}
}

func TestBooleanCombinations(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	a := expr.ULt(x, expr.Const(10))
	b := expr.UGt(x, expr.Const(4))
	// a AND b
	m := checkSat(t, s, []*expr.Expr{expr.And(a, b)})
	if !(m[0] < 10 && m[0] > 4) {
		t.Errorf("and model: %v", m)
	}
	// NOT(a OR b) == x >= 10 && x <= 4: unsat
	res, _ := s.Check([]*expr.Expr{expr.LogicalNot(expr.Or(a, b))})
	if res != Unsat {
		t.Errorf("not(or): %v, want unsat", res)
	}
}

func TestDriverStyleMulticastBound(t *testing.T) {
	// The RTL8029 MaximumMulticastList bug shape: registry value used as an
	// array index with capacity 8; the buggy path requires value >= 8.
	s := New()
	v := expr.Sym(0)
	oob := []*expr.Expr{expr.UGe(v, expr.Const(8))}
	m := checkSat(t, s, oob)
	if m[0] < 8 {
		t.Errorf("oob model: %v", m)
	}
	ok := []*expr.Expr{expr.ULt(v, expr.Const(8))}
	m = checkSat(t, s, ok)
	if m[0] >= 8 {
		t.Errorf("in-bounds model: %v", m)
	}
}

func TestManySymbolsPacketBytes(t *testing.T) {
	// Packet-style constraints: 8 independent symbolic bytes, each bounded.
	s := New()
	var cs []*expr.Expr
	for i := 0; i < 8; i++ {
		b := expr.Sym(expr.SymID(i))
		cs = append(cs, expr.ULt(b, expr.Const(256)))
	}
	cs = append(cs, expr.Eq(expr.Sym(0), expr.Const(0x45))) // "IPv4 header"
	m := checkSat(t, s, cs)
	if m[0] != 0x45 {
		t.Errorf("packet model: %v", m)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := fullInterval()
	if iv.empty() {
		t.Fatal("full interval empty")
	}
	iv = iv.clampMax(10).clampMin(5)
	if iv.lo != 5 || iv.hi != 10 {
		t.Fatalf("clamped interval = %+v", iv)
	}
	if iv.exclude(5).lo != 6 {
		t.Errorf("exclude lo endpoint failed")
	}
	if iv.exclude(10).hi != 9 {
		t.Errorf("exclude hi endpoint failed")
	}
	if !iv.point(7).contains(7) || !iv.point(7).empty() == false && iv.point(7).lo != 7 {
		t.Errorf("point failed: %+v", iv.point(7))
	}
	if !iv.point(99).empty() {
		t.Errorf("point outside should be empty")
	}
	one := interval{3, 3}
	if !one.exclude(3).empty() {
		t.Errorf("exclude sole value should empty the interval")
	}
}

// TestQuickSatAnswersAreModels: whenever the solver answers Sat, the model
// must satisfy every constraint — the solver soundness invariant.
func TestQuickSatAnswersAreModels(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(7))
	f := func(c1, c2 uint32, k uint32) bool {
		x := expr.Sym(0)
		y := expr.Sym(1)
		cs := []*expr.Expr{
			expr.ULt(x, expr.Const(c1|1)),
			expr.UGe(y, expr.Const(c2)),
			expr.Ne(expr.Add(x, expr.Const(k)), expr.Const(c2)),
		}
		res, m := s.Check(cs)
		if res == Sat {
			for _, c := range cs {
				if expr.Eval(c, m) == 0 {
					return false
				}
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnsatIsSound: for single-symbol interval constraints we can
// decide satisfiability by brute force over a reduced domain; the solver
// must never answer Unsat when a witness exists.
func TestQuickUnsatIsSound(t *testing.T) {
	s := New()
	f := func(a, b uint8, eqv uint8) bool {
		lo, hi := uint32(a), uint32(b)
		x := expr.Sym(0)
		cs := []*expr.Expr{
			expr.UGe(x, expr.Const(lo)),
			expr.ULe(x, expr.Const(hi)),
			expr.Ne(x, expr.Const(uint32(eqv))),
		}
		res, _ := s.Check(cs)
		// Reference: witness exists iff [lo,hi] is nonempty and contains a
		// value != eqv.
		witness := false
		if lo <= hi {
			if lo != hi || lo != uint32(eqv) {
				witness = true
			}
		}
		if witness && res == Unsat {
			return false
		}
		if !witness && res == Sat {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New()
	x := expr.Sym(0)
	s.Check([]*expr.Expr{expr.Eq(x, expr.Const(1))})
	s.Check([]*expr.Expr{expr.ULt(x, expr.Const(0))})
	if s.Stats.SatAnswers == 0 || s.Stats.UnsatAnswers == 0 {
		t.Errorf("stats not counted: %+v", s.Stats)
	}
}
