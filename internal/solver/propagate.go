package solver

import "repro/internal/expr"

// propagate narrows the per-symbol intervals in ivs assuming constraint e
// evaluates to truth. It returns ok=false when the intervals become
// contradictory (sound Unsat) and changed=true when any interval narrowed.
//
// The recognized shapes cover the comparisons the d32 ISA's conditional
// branches generate (see internal/vm): equality and unsigned ordering
// against constants, possibly through a constant additive offset, plus
// boolean and/or/not combinations. Everything else is left to probing —
// skipping a constraint here is always sound because intervals only
// over-approximate.
func propagate(e *expr.Expr, truth bool, ivs map[expr.SymID]interval) (ok, changed bool) {
	switch e.Op {
	case expr.OpConst:
		if (e.C != 0) == truth {
			return true, false
		}
		return false, false

	case expr.OpSym:
		// "x" as a condition means x != 0 (truth) or x == 0 (!truth).
		iv := ivs[e.Sym]
		var niv interval
		if truth {
			niv = iv.exclude(0)
		} else {
			niv = iv.point(0)
		}
		return applyNarrowing(e.Sym, niv, ivs)

	case expr.OpEq:
		// Smart constructors canonicalize constants into X.
		if e.X.IsConst() {
			c, y := e.X.C, e.Y
			// Eq(0, bool-expr) is LogicalNot; Eq(1, bool-expr) asserts it.
			if c == 0 && isBoolShape(y) {
				return propagate(y, !truth, ivs)
			}
			if c == 1 && isBoolShape(y) {
				return propagate(y, truth, ivs)
			}
			if sym, k, isSym := addOffset(y); isSym {
				// (k + x) == c  <=>  x == c-k  (exact in modular arithmetic)
				iv := ivs[sym]
				var niv interval
				if truth {
					niv = iv.point(c - k)
				} else {
					niv = iv.exclude(c - k)
				}
				return applyNarrowing(sym, niv, ivs)
			}
		}
		return true, false

	case expr.OpULt:
		// x < y with one side a constant.
		if e.Y.IsConst() {
			c := e.Y.C
			if sym, k, isSym := addOffset(e.X); isSym && k == 0 {
				iv := ivs[sym]
				var niv interval
				if truth {
					if c == 0 {
						return false, false
					}
					niv = iv.clampMax(c - 1)
				} else {
					niv = iv.clampMin(c)
				}
				return applyNarrowing(sym, niv, ivs)
			}
		}
		if e.X.IsConst() {
			c := e.X.C
			if sym, k, isSym := addOffset(e.Y); isSym && k == 0 {
				iv := ivs[sym]
				var niv interval
				if truth {
					if c == 0xFFFFFFFF {
						return false, false
					}
					niv = iv.clampMin(c + 1)
				} else {
					niv = iv.clampMax(c)
				}
				return applyNarrowing(sym, niv, ivs)
			}
		}
		return true, false

	case expr.OpAnd:
		// Boolean conjunction under truth: both sides hold.
		if truth && isBoolShapePair(e) {
			ok1, ch1 := propagate(e.X, true, ivs)
			if !ok1 {
				return false, false
			}
			ok2, ch2 := propagate(e.Y, true, ivs)
			return ok2, ch1 || ch2
		}
		return true, false

	case expr.OpOr:
		// Boolean disjunction under falsity: both sides fail.
		if !truth && isBoolShapePair(e) {
			ok1, ch1 := propagate(e.X, false, ivs)
			if !ok1 {
				return false, false
			}
			ok2, ch2 := propagate(e.Y, false, ivs)
			return ok2, ch1 || ch2
		}
		return true, false
	}
	return true, false
}

func applyNarrowing(id expr.SymID, niv interval, ivs map[expr.SymID]interval) (ok, changed bool) {
	if niv.empty() {
		return false, false
	}
	old := ivs[id]
	if niv == old {
		return true, false
	}
	ivs[id] = niv
	return true, true
}

func isComparison(e *expr.Expr) bool {
	switch e.Op {
	case expr.OpEq, expr.OpULt, expr.OpSLt:
		return true
	}
	return false
}

// isBoolShape reports whether e always evaluates to 0 or 1 and participates
// in boolean propagation: comparisons and and/or compositions of them.
func isBoolShape(e *expr.Expr) bool {
	switch e.Op {
	case expr.OpEq, expr.OpULt, expr.OpSLt:
		return true
	case expr.OpAnd, expr.OpOr:
		return isBoolShape(e.X) && isBoolShape(e.Y)
	}
	return false
}

func isBoolShapePair(e *expr.Expr) bool {
	return isBoolShape(e.X) && isBoolShape(e.Y)
}

// addOffset matches e against the pattern (k + sym) — including the bare
// symbol, where k == 0 — and returns the symbol and offset.
func addOffset(e *expr.Expr) (expr.SymID, uint32, bool) {
	if e.Op == expr.OpSym {
		return e.Sym, 0, true
	}
	if e.Op == expr.OpAdd && e.X.IsConst() && e.Y.Op == expr.OpSym {
		return e.Y.Sym, e.X.C, true
	}
	return 0, 0, false
}

// allRecognized reports whether every constraint is in the fragment for
// which the boundary-candidate sets are exhaustive: comparisons (possibly
// negated or conjoined) of symbols/offset-symbols against constants, and
// masked-byte comparisons. For this fragment, exhaustive search failure over
// the candidate sets implies Unsat.
func allRecognized(cs []*expr.Expr) bool {
	for _, c := range cs {
		if !recognized(c, 0) {
			return false
		}
	}
	return true
}

func recognized(e *expr.Expr, depth int) bool {
	if depth > 12 {
		return false
	}
	switch e.Op {
	case expr.OpConst, expr.OpSym:
		return true
	case expr.OpEq, expr.OpULt, expr.OpSLt:
		if e.Op == expr.OpEq && e.X.IsConst() && e.X.C <= 1 && isBoolShape(e.Y) {
			return recognized(e.Y, depth+1)
		}
		return simpleOperand(e.X) && simpleOperand(e.Y)
	case expr.OpAnd, expr.OpOr:
		if isBoolShapePair(e) {
			return recognized(e.X, depth+1) && recognized(e.Y, depth+1)
		}
		return false
	case expr.OpIte:
		return recognized(e.X, depth+1) && recognized(e.Y, depth+1) && recognized(e.Z, depth+1)
	}
	return false
}

// simpleOperand matches constants, symbols, constant-offset symbols, and
// single-mask symbol patterns — operands whose comparison boundaries the
// candidate generator enumerates completely.
func simpleOperand(e *expr.Expr) bool {
	if e.IsConst() || e.Op == expr.OpSym {
		return true
	}
	if _, _, ok := addOffset(e); ok {
		return true
	}
	// (mask & sym): candidate sets include the mask constants.
	if e.Op == expr.OpAnd && e.X.IsConst() && e.Y.Op == expr.OpSym {
		// Only claim completeness for contiguous low masks, where boundary
		// candidates (mask value, 0, 1, c±1) cover the reachable set's
		// comparison outcomes.
		m := e.X.C
		return m != 0 && (m&(m+1)) == 0
	}
	return false
}
