package solver

import (
	"testing"

	"repro/internal/expr"
)

// Driver-shaped constraint regressions: the exact forms the corpus
// generates, pinned so solver changes cannot silently lose them.

func TestOIDTableIndexShape(t *testing.T) {
	// The unexpected-OID bug: oid excluded from the supported set, and the
	// masked index must escape the table (adversarial pinning shape).
	s := New()
	oid := expr.Sym(0)
	table := uint32(0x103A00)
	addr := expr.Add(expr.Const(table), expr.Shl(expr.And(oid, expr.Const(0xFFF)), expr.Const(2)))
	cs := []*expr.Expr{
		expr.Ne(oid, expr.Const(0x00010101)),
		expr.Ne(oid, expr.Const(0x00010107)),
		expr.UGe(addr, expr.Const(0x105000)), // beyond image limit
		expr.ULt(addr, expr.Const(0x3F0000)), // below stack
	}
	m := checkSat(t, s, cs)
	a := table + (m[0]&0xFFF)<<2
	if a < 0x105000 || a >= 0x3F0000 {
		t.Errorf("model address %#x not in the probe window", a)
	}
}

func TestInterruptStatusBitsShape(t *testing.T) {
	// The Pro/100 arming condition: bit 0 set AND the low byte equals the
	// event code 0x33.
	s := New()
	v := expr.Sym(0)
	cs := []*expr.Expr{
		expr.Ne(expr.And(v, expr.Const(1)), expr.Const(0)),
		expr.Eq(expr.And(v, expr.Const(0xFF)), expr.Const(0x33)),
	}
	m := checkSat(t, s, cs)
	if m[0]&0xFF != 0x33 {
		t.Errorf("model = %#x", m[0])
	}
	// The contradictory sibling path (bit 0 clear) must be unsat.
	cs2 := []*expr.Expr{
		expr.Eq(expr.And(v, expr.Const(1)), expr.Const(0)),
		expr.Eq(expr.And(v, expr.Const(0xFF)), expr.Const(0x33)),
	}
	if res, _ := s.Check(cs2); res == Sat {
		t.Error("contradictory status bits reported satisfiable")
	}
}

func TestMulticastCountChainShape(t *testing.T) {
	// The RTL8029 loop: count signed-nonnegative, count > 0..7, then the
	// OOB iteration needs count > 8 — all satisfiable together.
	s := New()
	count := expr.Sym(0)
	cs := []*expr.Expr{expr.SGe(count, expr.Const(0))}
	for i := uint32(0); i < 8; i++ {
		cs = append(cs, expr.UGt(count, expr.Const(i)))
	}
	m := checkSat(t, s, cs)
	if m[0] <= 7 {
		t.Errorf("count = %d", m[0])
	}
	// And the exact-exit path: count == 3 alongside the first three
	// iteration constraints.
	cs2 := []*expr.Expr{
		expr.SGe(count, expr.Const(0)),
		expr.UGt(count, expr.Const(0)),
		expr.UGt(count, expr.Const(1)),
		expr.UGt(count, expr.Const(2)),
		expr.ULe(count, expr.Const(3)),
	}
	m2 := checkSat(t, s, cs2)
	if m2[0] != 3 {
		t.Errorf("exact exit count = %d, want 3", m2[0])
	}
}

func TestPacketLengthShape(t *testing.T) {
	// Send workload: 14 <= len <= 64, plus the driver's runt check both ways.
	s := New()
	l := expr.Sym(0)
	base := []*expr.Expr{
		expr.UGe(l, expr.Const(14)),
		expr.ULe(l, expr.Const(64)),
	}
	ok := append(append([]*expr.Expr{}, base...), expr.UGe(l, expr.Const(14)))
	checkSat(t, s, ok)
	runt := append(append([]*expr.Expr{}, base...), expr.ULt(l, expr.Const(14)))
	if res, _ := s.Check(runt); res == Sat {
		t.Error("runt branch satisfiable despite the workload bound")
	}
}

func TestManyConstraintsPerformance(t *testing.T) {
	// A long path: 60 accumulated comparisons over 6 symbols must still
	// solve (the solver is invoked at every branch with the full set).
	s := New()
	var cs []*expr.Expr
	for i := 0; i < 60; i++ {
		x := expr.Sym(expr.SymID(i % 6))
		cs = append(cs, expr.ULt(x, expr.Const(uint32(1000-i))))
	}
	checkSat(t, s, cs)
	if s.Stats.UnknownAns != 0 {
		t.Errorf("unknown answers = %d", s.Stats.UnknownAns)
	}
}

func TestResultStrings(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("result names")
	}
}
