// Package workq provides a generic sharded work-stealing queue (after
// syzkaller's courier queues). It began life as the fuzzing campaign's
// triage queue, generalized here so DDT's parallel subsystems share one
// implementation. The fuzzer's triage queue is a thin wrapper over it;
// the symbolic engine's frontier deliberately is NOT — the frontier needs
// the global min-block-count heuristic (§4.3) over the whole queue, which
// a per-shard steal discipline cannot express, so it stays in
// exerciser.Scheduler. Future per-phase pipelines and multi-process
// distribution are the intended additional consumers.
//
// The discipline: each worker pushes follow-up work to its own shard and
// pops from it LIFO (freshest work first — locality: the item most related
// to what the worker just discovered); a worker whose shard runs dry steals
// the OLDEST item from a peer's shard (FIFO keeps stolen work fair and
// leaves the victim its fresh tail). All operations are safe for concurrent
// use; each shard has its own mutex, so workers collide only when stealing.
package workq

import "sync"

// Queue is a sharded work-stealing queue of T.
type Queue[T any] struct {
	shards []shard[T]
}

type shard[T any] struct {
	mu    sync.Mutex
	items []T
}

// New returns a queue with one shard per worker.
func New[T any](workers int) *Queue[T] {
	if workers < 1 {
		workers = 1
	}
	return &Queue[T]{shards: make([]shard[T], workers)}
}

// Shards returns the shard count.
func (q *Queue[T]) Shards() int { return len(q.shards) }

// Push enqueues an item on the given worker's shard.
func (q *Queue[T]) Push(worker int, item T) {
	sh := &q.shards[worker%len(q.shards)]
	sh.mu.Lock()
	sh.items = append(sh.items, item)
	sh.mu.Unlock()
}

// Pop takes from the worker's own shard first (LIFO: freshest first), then
// steals the oldest item from the other shards. It reports ok=false when
// every shard is empty.
func (q *Queue[T]) Pop(worker int) (T, bool) {
	n := len(q.shards)
	own := worker % n
	if item, ok := q.shards[own].popTail(); ok {
		return item, true
	}
	for i := 1; i < n; i++ {
		if item, ok := q.shards[(own+i)%n].popHead(); ok {
			return item, true
		}
	}
	var zero T
	return zero, false
}

// Len returns the total queued items across shards.
func (q *Queue[T]) Len() int {
	total := 0
	for i := range q.shards {
		q.shards[i].mu.Lock()
		total += len(q.shards[i].items)
		q.shards[i].mu.Unlock()
	}
	return total
}

func (sh *shard[T]) popTail() (T, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.items) == 0 {
		var zero T
		return zero, false
	}
	item := sh.items[len(sh.items)-1]
	var zero T
	sh.items[len(sh.items)-1] = zero // release the reference
	sh.items = sh.items[:len(sh.items)-1]
	return item, true
}

func (sh *shard[T]) popHead() (T, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.items) == 0 {
		var zero T
		return zero, false
	}
	item := sh.items[0]
	var zero T
	sh.items[0] = zero
	sh.items = sh.items[1:]
	return item, true
}
