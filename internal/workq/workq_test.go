package workq

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestOwnShardIsLIFO(t *testing.T) {
	q := New[int](2)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(0, 3)
	for _, want := range []int{3, 2, 1} {
		got, ok := q.Pop(0)
		if !ok || got != want {
			t.Fatalf("Pop(0) = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := q.Pop(0); ok {
		t.Fatal("empty queue returned an item")
	}
}

func TestStealingIsFIFO(t *testing.T) {
	q := New[int](3)
	q.Push(1, 10)
	q.Push(1, 11)
	// Worker 0's shard is empty: it must steal worker 1's OLDEST item.
	if got, ok := q.Pop(0); !ok || got != 10 {
		t.Fatalf("steal = %d,%v want 10", got, ok)
	}
	// Worker 1 keeps its fresh tail.
	if got, ok := q.Pop(1); !ok || got != 11 {
		t.Fatalf("own pop = %d,%v want 11", got, ok)
	}
}

func TestLenAcrossShards(t *testing.T) {
	q := New[string](4)
	q.Push(0, "a")
	q.Push(2, "b")
	q.Push(7, "c") // wraps to shard 3
	if q.Len() != 3 {
		t.Fatalf("Len = %d want 3", q.Len())
	}
}

func TestSingleShardFallback(t *testing.T) {
	q := New[int](0) // clamps to 1 shard
	if q.Shards() != 1 {
		t.Fatalf("shards = %d want 1", q.Shards())
	}
	q.Push(5, 42) // any worker index maps onto the single shard
	if got, ok := q.Pop(3); !ok || got != 42 {
		t.Fatalf("pop = %d,%v want 42", got, ok)
	}
}

// TestPhaseTaggedConsumer models the symbolic engine's pipelined seed
// queue — the first engine-side consumer of this package: items carry a
// workload phase tag, workers push follow-up items for the NEXT phase onto
// their own shard while peers steal, and the whole flood must drain with
// every item consumed exactly once and every consumed item's phase within
// range (run with -race; this is the consumer's race regression test).
func TestPhaseTaggedConsumer(t *testing.T) {
	type seed struct {
		phase int
		id    uint64
	}
	const (
		workers   = 4
		phases    = 5
		roots     = 64
		fanout    = 2 // children seeded into the next phase per item
		wantItems = roots * (1 + fanout + fanout*fanout + fanout*fanout*fanout + fanout*fanout*fanout*fanout)
	)
	q := New[seed](workers)
	var nextID atomic.Uint64
	for i := 0; i < roots; i++ {
		q.Push(i, seed{phase: 0, id: nextID.Add(1)})
	}

	var consumed atomic.Int64
	var inFlight atomic.Int64
	seen := make([]map[uint64]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]int)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				item, ok := q.Pop(w)
				if !ok {
					// Another worker may still be expanding an item that
					// will push phase-k+1 seeds; only stop when the queue
					// is empty AND nothing is in flight.
					if inFlight.Load() == 0 && q.Len() == 0 {
						return
					}
					continue
				}
				inFlight.Add(1)
				if item.phase < 0 || item.phase >= phases {
					t.Errorf("worker %d consumed out-of-range phase %d", w, item.phase)
				}
				seen[w][item.id]++
				consumed.Add(1)
				if item.phase+1 < phases {
					for c := 0; c < fanout; c++ {
						q.Push(w, seed{phase: item.phase + 1, id: nextID.Add(1)})
					}
				}
				inFlight.Add(-1)
			}
		}(w)
	}
	wg.Wait()

	if consumed.Load() != wantItems {
		t.Fatalf("consumed %d items, want %d", consumed.Load(), wantItems)
	}
	all := make(map[uint64]int)
	for w := range seen {
		for id, n := range seen[w] {
			all[id] += n
		}
	}
	for id, n := range all {
		if n != 1 {
			t.Fatalf("seed %d consumed %d times", id, n)
		}
	}
}

// TestConcurrentPushPopNoLoss hammers the queue from multiple goroutines
// and verifies every pushed item is popped exactly once (run with -race).
func TestConcurrentPushPopNoLoss(t *testing.T) {
	const workers = 4
	const perWorker = 1000
	q := New[int](workers)

	var wg sync.WaitGroup
	got := make([]map[int]int, workers)
	for w := 0; w < workers; w++ {
		got[w] = make(map[int]int)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q.Push(w, w*perWorker+i)
				if item, ok := q.Pop(w); ok {
					got[w][item]++
				}
			}
			// Drain whatever is left from any shard.
			for {
				item, ok := q.Pop(w)
				if !ok {
					break
				}
				got[w][item]++
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[int]int)
	for w := range got {
		for item, n := range got[w] {
			seen[item] += n
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("popped %d distinct items, want %d", len(seen), workers*perWorker)
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %d popped %d times", item, n)
		}
	}
}
