package workq

import (
	"sync"
	"testing"
)

func TestOwnShardIsLIFO(t *testing.T) {
	q := New[int](2)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(0, 3)
	for _, want := range []int{3, 2, 1} {
		got, ok := q.Pop(0)
		if !ok || got != want {
			t.Fatalf("Pop(0) = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := q.Pop(0); ok {
		t.Fatal("empty queue returned an item")
	}
}

func TestStealingIsFIFO(t *testing.T) {
	q := New[int](3)
	q.Push(1, 10)
	q.Push(1, 11)
	// Worker 0's shard is empty: it must steal worker 1's OLDEST item.
	if got, ok := q.Pop(0); !ok || got != 10 {
		t.Fatalf("steal = %d,%v want 10", got, ok)
	}
	// Worker 1 keeps its fresh tail.
	if got, ok := q.Pop(1); !ok || got != 11 {
		t.Fatalf("own pop = %d,%v want 11", got, ok)
	}
}

func TestLenAcrossShards(t *testing.T) {
	q := New[string](4)
	q.Push(0, "a")
	q.Push(2, "b")
	q.Push(7, "c") // wraps to shard 3
	if q.Len() != 3 {
		t.Fatalf("Len = %d want 3", q.Len())
	}
}

func TestSingleShardFallback(t *testing.T) {
	q := New[int](0) // clamps to 1 shard
	if q.Shards() != 1 {
		t.Fatalf("shards = %d want 1", q.Shards())
	}
	q.Push(5, 42) // any worker index maps onto the single shard
	if got, ok := q.Pop(3); !ok || got != 42 {
		t.Fatalf("pop = %d,%v want 42", got, ok)
	}
}

// TestConcurrentPushPopNoLoss hammers the queue from multiple goroutines
// and verifies every pushed item is popped exactly once (run with -race).
func TestConcurrentPushPopNoLoss(t *testing.T) {
	const workers = 4
	const perWorker = 1000
	q := New[int](workers)

	var wg sync.WaitGroup
	got := make([]map[int]int, workers)
	for w := 0; w < workers; w++ {
		got[w] = make(map[int]int)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q.Push(w, w*perWorker+i)
				if item, ok := q.Pop(w); ok {
					got[w][item]++
				}
			}
			// Drain whatever is left from any shard.
			for {
				item, ok := q.Pop(w)
				if !ok {
					break
				}
				got[w][item]++
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[int]int)
	for w := range got {
		for item, n := range got[w] {
			seen[item] += n
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("popped %d distinct items, want %d", len(seen), workers*perWorker)
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %d popped %d times", item, n)
		}
	}
}
