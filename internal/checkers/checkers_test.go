package checkers

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/vm"
)

func stateWithKernel() (*vm.State, *kernel.KState) {
	s := vm.NewState(1)
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{Lo: isa.ImageBase, Hi: isa.ImageBase + 0x1000, Kind: kernel.RegionImage, Writable: true})
	s.Kernel = ks
	return s, ks
}

func TestMemoryCheckerNullPage(t *testing.T) {
	c := NewMemoryChecker()
	s, _ := stateWithKernel()
	err := c.Check(s, 0x100000, 0x10, 4, false)
	if err == nil || !strings.Contains(err.Error(), "null-pointer") {
		t.Errorf("null read: %v", err)
	}
	if c.Vetoes.Load() != 1 {
		t.Errorf("vetoes = %d", c.Vetoes.Load())
	}
}

func TestMemoryCheckerImageGrant(t *testing.T) {
	c := NewMemoryChecker()
	s, _ := stateWithKernel()
	if err := c.Check(s, 0x100000, isa.ImageBase+0x100, 4, true); err != nil {
		t.Errorf("granted write rejected: %v", err)
	}
	if err := c.Check(s, 0x100000, isa.ImageBase+0x2000, 4, false); err == nil {
		t.Error("ungranted read accepted")
	}
}

func TestMemoryCheckerReadOnlyRegion(t *testing.T) {
	c := NewMemoryChecker()
	s, ks := stateWithKernel()
	ks.Grant(kernel.Region{Lo: 0x300000, Hi: 0x300100, Kind: kernel.RegionParam, Writable: false})
	if err := c.Check(s, 0, 0x300010, 4, false); err != nil {
		t.Errorf("read of read-only region rejected: %v", err)
	}
	err := c.Check(s, 0, 0x300010, 4, true)
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("write to read-only region: %v", err)
	}
}

func TestMemoryCheckerStackRule(t *testing.T) {
	c := NewMemoryChecker()
	s, _ := stateWithKernel()
	// SP defaults to StackBase; lower it to make room above.
	sp := isa.StackBase - 0x100
	s.SetReg(isa.SP, expr.Const(sp))
	// At/above SP: fine.
	if err := c.Check(s, 0, sp+8, 4, true); err != nil {
		t.Errorf("access above sp rejected: %v", err)
	}
	// Below SP: prohibited (§3.1.1 — interrupt handlers may clobber it).
	err := c.Check(s, 0, sp-8, 4, false)
	if err == nil || !strings.Contains(err.Error(), "below the stack pointer") {
		t.Errorf("below-sp access: %v", err)
	}
}

func TestMemoryCheckerPageableAtDispatch(t *testing.T) {
	c := NewMemoryChecker()
	s, ks := stateWithKernel()
	ks.Grant(kernel.Region{Lo: 0x400000, Hi: 0x400100, Kind: kernel.RegionAlloc, Writable: true, Pageable: true})
	if err := c.Check(s, 0, 0x400010, 4, false); err != nil {
		t.Errorf("pageable at passive rejected: %v", err)
	}
	ks.IRQL = kernel.DispatchLevel
	err := c.Check(s, 0, 0x400010, 4, false)
	if err == nil || !strings.Contains(err.Error(), "pageable") {
		t.Errorf("pageable at dispatch: %v", err)
	}
}

func TestLeakCheckerConfigHandle(t *testing.T) {
	s, ks := stateWithKernel()
	ks.ConfigHandles[1] = kernel.ConfigHandle{Label: "NdisOpenConfiguration", PC: 0x1234}
	var lc LeakChecker
	// Successful init: handles may stay open (driver keeps them... actually
	// our kernel model closes them; but the checker only gates failures).
	if err := lc.CheckEntryExit(s, "Initialize", kernel.StatusSuccess); err != nil {
		t.Errorf("success path flagged: %v", err)
	}
	err := lc.CheckEntryExit(s, "Initialize", kernel.StatusFailure)
	if err == nil || !strings.Contains(err.Error(), "configuration handle") {
		t.Errorf("failed init with open handle: %v", err)
	}
}

func TestLeakCheckerAllocsAfterHalt(t *testing.T) {
	s, ks := stateWithKernel()
	ks.HeapAlloc(64, "buf", "pool", 1, 0x2000)
	var lc LeakChecker
	err := lc.CheckEntryExit(s, "Halt", kernel.StatusSuccess)
	if err == nil || !strings.Contains(err.Error(), "not freed") {
		t.Errorf("halt with live alloc: %v", err)
	}
}

func TestLeakCheckerHeldSpinlockAnyEntry(t *testing.T) {
	s, ks := stateWithKernel()
	ks.Spinlocks[0x500] = &kernel.Spin{Held: true}
	var lc LeakChecker
	err := lc.CheckEntryExit(s, "Send", kernel.StatusSuccess)
	if err == nil || !strings.Contains(err.Error(), "spinlock") {
		t.Errorf("held lock at exit: %v", err)
	}
}

func TestLeakCheckerCleanState(t *testing.T) {
	s, _ := stateWithKernel()
	var lc LeakChecker
	for _, entry := range []string{"Initialize", "Halt", "Send"} {
		if err := lc.CheckEntryExit(s, entry, kernel.StatusSuccess); err != nil {
			t.Errorf("%s clean exit flagged: %v", entry, err)
		}
	}
}

func TestLoopChecker(t *testing.T) {
	lc := NewLoopChecker(5)
	s := vm.NewState(7)
	for i := 0; i < 4; i++ {
		if err := lc.Visit(s, 0x100100); err != nil {
			t.Fatalf("early trigger at %d: %v", i, err)
		}
	}
	err := lc.Visit(s, 0x100100)
	if err == nil || !strings.Contains(err.Error(), "infinite loop") {
		t.Errorf("threshold: %v", err)
	}
	// Distinct states count separately.
	s2 := vm.NewState(8)
	if err := lc.Visit(s2, 0x100100); err != nil {
		t.Errorf("fresh state triggered: %v", err)
	}
	// Forked children restart the count: State.Fork does not copy
	// LoopCounts (loop detection is per contiguous path segment).
	child := s.Fork(9)
	if child.LoopCounts != nil {
		t.Errorf("fork inherited loop counts: %v", child.LoopCounts)
	}
	if err := lc.Visit(child, 0x100100); err != nil {
		t.Errorf("fork triggered immediately: %v", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		class, msg string
		inIntr     bool
		want       string
	}{
		{"memory", "null-pointer dereference: write of 4 bytes", false, "segmentation fault"},
		{"memory", "write of 4 bytes at unmapped address", false, "memory corruption"},
		{"memory", "read of 4 bytes at unmapped address", false, "segmentation fault"},
		{"memory", "read of 4 bytes at unmapped address", true, "race condition"},
		{"leak", "whatever", false, "resource leak"},
		{"crash", "BSOD", false, "kernel crash"},
		{"crash", "BSOD", true, "race condition"},
		{"deadlock", "self", false, "deadlock"},
		{"irql", "x", false, "kernel crash"},
		{"spinlock", "x", false, "kernel crash"},
		{"loop", "x", false, "hang"},
	}
	for _, tc := range cases {
		s := vm.NewState(1)
		if tc.inIntr {
			s.PushInterrupt(0x100000)
		}
		f := vm.Faultf(tc.class, 0, "%s", tc.msg)
		if got := Classify(f, s); got != tc.want {
			t.Errorf("Classify(%s,%q,intr=%v) = %q, want %q", tc.class, tc.msg, tc.inIntr, got, tc.want)
		}
	}
}

func TestClassifyISREntry(t *testing.T) {
	s := vm.NewState(1)
	s.EntryName = "ISR"
	f := vm.Faultf("crash", 0, "x")
	if got := Classify(f, s); got != "race condition" {
		t.Errorf("ISR-entry fault = %q", got)
	}
}
