// Package checkers implements DDT's VM-level dynamic checkers (§3.1.1):
// the memory access verifier with region grants, the resource-leak
// detector, the infinite-loop heuristic, and the bug classifier that turns
// raw faults plus trace context into the categories of Table 2 (race
// condition, memory corruption, segmentation fault, resource leak, kernel
// crash).
//
// Guest-OS-level checks (§3.1.2) live in the kernel package: IRQL rules,
// spinlock ownership, pool sanity — our Driver Verifier analogue — and
// surface as "crash" faults through the BugCheck hook.
package checkers

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// MemoryChecker validates every driver memory access against the regions
// the kernel granted (§3.1.1's list): image, current stack above SP,
// kernel globals, dynamic allocations, packets, shared memory.
type MemoryChecker struct {
	// NullPageLimit: accesses below this address are null-pointer
	// dereferences regardless of grants.
	NullPageLimit uint32
	// Vetoes counts rejected accesses (stats); updated atomically, as
	// parallel workers share one checker.
	Vetoes atomic.Uint64
}

// NewMemoryChecker returns a checker with the conventional 4 KiB null page.
func NewMemoryChecker() *MemoryChecker {
	return &MemoryChecker{NullPageLimit: 0x1000}
}

// Check validates one access; Install wires it as the machine hook.
func (c *MemoryChecker) Check(s *vm.State, pc, addr, size uint32, write bool) error {
	if addr < c.NullPageLimit || addr+size < addr {
		c.Vetoes.Add(1)
		return vm.Faultf("memory", pc, "null-pointer dereference: %s of %d bytes at %#x",
			rw(write), size, addr)
	}
	ks := kernel.Of(s)

	// Stack rule: accesses to the stack region are legal only at or above
	// the current stack pointer — locations below SP can be overwritten by
	// an interrupt handler saving context (§3.1.1).
	stackLo := isa.StackBase - isa.StackSize
	if addr >= stackLo && addr < isa.StackBase {
		sp, ok := s.RegConcrete(isa.SP)
		if ok && addr < sp {
			c.Vetoes.Add(1)
			return vm.Faultf("memory", pc, "%s below the stack pointer (addr %#x < sp %#x)",
				rw(write), addr, sp)
		}
		return nil
	}

	r, ok := ks.FindRegion(addr, size)
	if !ok {
		c.Vetoes.Add(1)
		return vm.Faultf("memory", pc, "%s of %d bytes at unmapped address %#x (no grant covers it)",
			rw(write), size, addr)
	}
	if write && !r.Writable {
		c.Vetoes.Add(1)
		return vm.Faultf("memory", pc, "write to read-only %s region at %#x", r.Kind, addr)
	}
	if r.Pageable && ks.IRQL >= kernel.DispatchLevel {
		c.Vetoes.Add(1)
		return vm.Faultf("irql", pc, "pageable memory touched at %s (addr %#x)",
			kernel.IrqlName(ks.IRQL), addr)
	}
	return nil
}

// Install wires the checker into the machine, including the adversarial
// address pinner: a symbolic effective address is pinned, when feasible, to
// a value that escapes every grant — the way Klee validates a symbolic
// pointer against all memory objects. The subsequent access check then
// raises the bug with a concrete, solver-backed witness address.
func (c *MemoryChecker) Install(m *vm.Machine) {
	m.OnMemAccess = func(s *vm.State, pc, addr, size uint32, write bool, _ *expr.Expr) error {
		return c.Check(s, pc, addr, size, write)
	}
	m.PinAddress = func(s *vm.State, addr *expr.Expr, size uint32, write bool) (uint32, bool) {
		probe := func(lo, hi uint32) (uint32, bool) {
			if lo >= hi {
				return 0, false
			}
			cs := append(s.Constraints[:len(s.Constraints):len(s.Constraints)],
				expr.UGe(addr, expr.Const(lo)),
				expr.ULt(addr, expr.Const(hi)))
			// Route through the worker context bound to s: under parallel
			// exploration each worker probes with its own solver.
			if model := m.SolverFor(s).Model(cs); model != nil {
				return expr.Eval(addr, model), true
			}
			return 0, false
		}
		// Null page first (the classic dereference).
		if v, ok := probe(0, c.NullPageLimit); ok {
			return v, true
		}
		// The address gaps around the image: below the image, between the
		// image and the stack, between the stack and the heap, and between
		// the heap limit and the MMIO window. An address that can land in
		// any of them escapes every possible grant.
		imageHi := isa.ImageBase
		if r, ok := kernel.Of(s).FindRegion(isa.ImageBase, 4); ok {
			imageHi = r.Hi
		}
		gaps := [][2]uint32{
			{isa.KGlobals + isa.KGlobalsSz, isa.ImageBase},
			{imageHi, isa.StackBase - isa.StackSize},
			{isa.StackBase, isa.HeapBase},
			{isa.HeapLimit, isa.MMIOBase},
		}
		for _, g := range gaps {
			if v, ok := probe(g[0], g[1]); ok {
				return v, true
			}
		}
		return 0, false // fall back to benign concretization
	}
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// LeakChecker detects resources still held when they must not be: after a
// failed Initialize (the driver must undo partial setup) and after Halt
// (everything must be released). This is Table 2's resource-leak class.
type LeakChecker struct{}

// CheckEntryExit inspects the kernel state when an entry point returns.
// entry is the entry-point name; status is the driver's return value.
func (LeakChecker) CheckEntryExit(s *vm.State, entry string, status uint32) error {
	ks := kernel.Of(s)
	// Returning to the kernel with a spinlock held is always a bug,
	// whatever the entry point.
	if held := ks.HeldSpinlocks(); len(held) > 0 {
		return vm.Faultf("spinlock", s.PC,
			"entry %s returned with spinlock %#x still held", entry, held[0])
	}
	mustBeClean := entry == "Halt" || (entry == "Initialize" && status != kernel.StatusSuccess)
	if !mustBeClean {
		return nil
	}
	reason := "after Halt"
	if entry == "Initialize" {
		reason = fmt.Sprintf("after failed initialization (status %#x)", status)
	}
	if open := ks.OpenConfigHandles(); len(open) > 0 {
		h := open[0]
		return vm.Faultf("leak", h.PC, "configuration handle from %s (opened at pc %#x) not closed %s",
			h.Label, h.PC, reason)
	}
	if live := ks.LiveAllocs(); len(live) > 0 {
		a := live[0]
		return vm.Faultf("leak", a.PC, "%d allocation(s) not freed %s (first: %s %q, %d bytes, allocated at pc %#x)",
			len(live), reason, a.Kind, a.Tag, a.Size, a.PC)
	}
	if pkts := ks.LivePacketList(); len(pkts) > 0 {
		return vm.Faultf("leak", pkts[0].PC, "%d packet(s) not returned to their pool %s (first allocated at pc %#x)",
			len(pkts), reason, pkts[0].PC)
	}
	return nil
}

// LoopChecker is the path-based infinite-loop heuristic (§3.1.1 cites
// [34]): a basic block revisited far more often than any new coverage
// appears on the same path indicates the driver is stuck (polling a
// hardware register that symbolic hardware will never change, waiting on a
// flag an interrupt should set, ...).
// The visit counts live on the state itself (vm.State.LoopCounts), not in
// the checker: states migrate freely between parallel workers, and a
// terminated state's accounting dies with it — no shared map, no Forget
// bookkeeping, no cross-path attribution.
type LoopChecker struct {
	// Threshold is the per-block repeat count that triggers the report.
	Threshold uint64
}

// NewLoopChecker returns a checker with the given repeat threshold.
func NewLoopChecker(threshold uint64) *LoopChecker {
	return &LoopChecker{Threshold: threshold}
}

// Visit records a block entry and reports a fault when the threshold is
// crossed on one path. Forks reset the count (vm.State.Fork does not copy
// LoopCounts): loop detection is per contiguous path segment, which only
// delays detection.
func (c *LoopChecker) Visit(s *vm.State, pc uint32) error {
	if s.LoopCounts == nil {
		s.LoopCounts = make(map[uint32]uint64)
	}
	s.LoopCounts[pc]++
	if s.LoopCounts[pc] >= c.Threshold {
		return vm.Faultf("loop", pc, "basic block %#x executed %d times on one path without progress (infinite loop / hang)",
			pc, s.LoopCounts[pc])
	}
	return nil
}

// Classify maps a raw fault plus its execution context to the bug taxonomy
// of Table 2. Faults raised while an injected interrupt context is active
// (or while running the ISR entry) are race conditions: the failure needs a
// particular interrupt interleaving to manifest.
func Classify(f *vm.Fault, s *vm.State) string {
	if s != nil && (s.InInterrupt > 0 || s.EntryName == "ISR" || s.EntryName == "HandleInterrupt") {
		return "race condition"
	}
	switch f.Class {
	case "memory":
		// Null dereferences fault immediately (the hardware traps);
		// out-of-bounds writes silently corrupt state first.
		if strings.Contains(f.Msg, "null-pointer") {
			return "segmentation fault"
		}
		if strings.Contains(f.Msg, "write") {
			return "memory corruption"
		}
		return "segmentation fault"
	case "leak":
		return "resource leak"
	case "crash":
		return "kernel crash"
	case "deadlock":
		return "deadlock"
	case "irql":
		return "kernel crash"
	case "spinlock":
		return "kernel crash"
	case "loop":
		return "hang"
	default:
		return f.Class
	}
}
