package trace

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// findBugs runs DDT on a corpus driver and returns the engine + report.
func findBugs(t *testing.T, driver string) (*core.Engine, []*core.Bug) {
	t.Helper()
	img, err := corpus.Build(driver, corpus.Buggy)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	e := core.NewEngine(img, core.DefaultOptions())
	if _, err := e.TestDriver(context.Background()); err != nil {
		t.Fatalf("test: %v", err)
	}
	if len(e.Bugs()) == 0 {
		t.Fatalf("no bugs found in %s", driver)
	}
	return e, e.Bugs()
}

func TestTraceRoundTrip(t *testing.T) {
	e, bugs := findBugs(t, "rtl8029")
	f := New(bugs[0], "rtl8029", true, e.EffectiveRegistry())
	blob, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports traces rarely exceed 1 MB per bug.
	if len(blob) > 1<<20 {
		t.Errorf("trace size = %d bytes, want <= 1MB", len(blob))
	}
	f2, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Driver != f.Driver || f2.Bug != f.Bug || len(f2.Events) != len(f.Events) ||
		len(f2.Symbols) != len(f.Symbols) {
		t.Errorf("round trip mismatch")
	}
}

func TestTraceSaveLoad(t *testing.T) {
	e, bugs := findBugs(t, "rtl8029")
	f := New(bugs[0], "rtl8029", true, e.EffectiveRegistry())
	path := t.TempDir() + "/bug.ddtrace"
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	f2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Bug.Class != f.Bug.Class {
		t.Errorf("loaded class = %q", f2.Bug.Class)
	}
}

func TestTraceSummary(t *testing.T) {
	e, bugs := findBugs(t, "rtl8029")
	for _, b := range bugs {
		f := New(b, "rtl8029", true, e.EffectiveRegistry())
		s := f.Summary()
		if !strings.Contains(s, b.Class) {
			t.Errorf("summary missing class %q:\n%s", b.Class, s)
		}
		if !strings.Contains(s, "DriverEntry") {
			t.Errorf("summary missing entry chain:\n%s", s)
		}
	}
}

// TestReplayReproducesEveryTable2Bug is the §3.5 guarantee: every reported
// bug comes with a trace that re-executes deterministically to the same
// failure — the zero-false-positive evidence.
func TestReplayReproducesEveryTable2Bug(t *testing.T) {
	for _, driver := range []string{"rtl8029", "amd-pcnet", "intel-pro1000", "intel-pro100", "ensoniq-audiopci", "intel-ac97"} {
		e, bugs := findBugs(t, driver)
		img, _ := corpus.Build(driver, corpus.Buggy)
		for _, b := range bugs {
			f := New(b, driver, true, e.EffectiveRegistry())
			res, err := Replay(f, img)
			if err != nil {
				t.Fatalf("%s/%s: replay error: %v", driver, b.Class, err)
			}
			if !res.Reproduced {
				t.Errorf("%s: bug [%s] at %#x NOT reproduced: %s (divergences: %v)",
					driver, b.Class, b.Fault.PC, res, res.Divergences)
			}
		}
	}
}

func TestReplayRejectsWrongImage(t *testing.T) {
	e, bugs := findBugs(t, "rtl8029")
	f := New(bugs[0], "rtl8029", true, e.EffectiveRegistry())
	other, _ := corpus.Build("amd-pcnet", corpus.Buggy)
	if _, err := Replay(f, other); err == nil {
		t.Error("replay against the wrong driver image should fail")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a trace")); err == nil {
		t.Error("garbage accepted")
	}
}
