package trace

import (
	"fmt"

	"repro/internal/annot"
	"repro/internal/binimg"
	"repro/internal/checkers"
	"repro/internal/expr"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Result reports the outcome of replaying a trace.
type Result struct {
	// Reproduced is true when the replay hit the same bug (class and
	// program counter) the trace records.
	Reproduced bool
	// FaultClass / FaultPC / FaultMsg describe what the replay actually hit.
	FaultClass string
	FaultPC    uint32
	FaultMsg   string
	// Steps is the number of instructions executed.
	Steps uint64
	// Divergences lists sanity-check mismatches observed along the way
	// (empty on a clean reproduction).
	Divergences []string
}

func (r *Result) String() string {
	if r.Reproduced {
		return fmt.Sprintf("reproduced: [%s] %s at pc %#x after %d instructions",
			r.FaultClass, r.FaultMsg, r.FaultPC, r.Steps)
	}
	return fmt.Sprintf("NOT reproduced (got class %q at pc %#x, %d divergences)",
		r.FaultClass, r.FaultPC, len(r.Divergences))
}

// replayer drives a concrete re-execution from a trace's recorded inputs.
type replayer struct {
	file *File
	m    *vm.Machine
	k    *kernel.Kernel
	mem  *checkers.MemoryChecker
	leak checkers.LeakChecker

	symQueue  []SymbolRecord
	intrQueue []Record
	altQueue  []Record
	res       *Result
}

// Replay re-executes the trace against the driver image: symbolic injection
// points receive the recorded concrete inputs, annotation forks follow the
// recorded outcome, and interrupts fire at the recorded instants. Every
// value is concrete, so execution is deterministic; the replay succeeds when
// the recorded bug fires again at the same location (§3.5's irrefutable
// evidence).
func Replay(f *File, img *binimg.Image) (*Result, error) {
	if img.Name != f.Driver {
		return nil, fmt.Errorf("trace: image is %q but trace was recorded on %q", img.Name, f.Driver)
	}
	r := &replayer{
		file:      f,
		symQueue:  append([]SymbolRecord(nil), f.Symbols...),
		intrQueue: f.EventsOf(vm.EvInterrupt),
		altQueue:  f.EventsOf(vm.EvAltFork),
		res:       &Result{},
	}
	r.m = vm.NewMachine(img, expr.NewSymbolTable(), solver.New())
	r.k = kernel.New(r.m)
	r.mem = checkers.NewMemoryChecker()
	r.mem.Install(r.m)
	// The device's register reads route through the kernel's symbol policy,
	// so the replay feeds the recorded hardware values at the same points.
	dev := hw.New(img.Device)
	dev.FreshSymbol = r.k.FreshSymbol
	dev.Attach(r.m)
	if f.Annotations {
		annot.InstallAll(r.k)
	}
	r.k.SymbolPolicy = r.symbolPolicy
	r.k.ForkPolicy = r.forkPolicy

	s := r.m.NewRootState()
	ks := kernel.NewKState()
	ks.Grant(kernel.Region{
		Lo: isa.ImageBase, Hi: img.LimitVA(),
		Kind: kernel.RegionImage, Writable: true, Tag: "driver image",
	})
	for k, v := range f.Registry {
		ks.Registry[k] = v
	}
	s.Kernel = ks

	if err := r.run(s); err != nil {
		return nil, err
	}
	r.res.Steps = r.m.Steps.Load()
	return r.res, nil
}

func (r *replayer) diverge(format string, args ...any) {
	r.res.Divergences = append(r.res.Divergences, fmt.Sprintf(format, args...))
}

// symbolPolicy feeds recorded concrete inputs at would-be symbolic
// injection points, in creation order.
func (r *replayer) symbolPolicy(s *vm.State, name string, origin expr.Origin) *expr.Expr {
	if len(r.symQueue) == 0 {
		// Past the recorded horizon (e.g. the fault fires before this
		// injection on a diverged run): default to zero.
		r.diverge("symbol %q requested beyond recorded inputs", name)
		return expr.Const(0)
	}
	rec := r.symQueue[0]
	r.symQueue = r.symQueue[1:]
	if rec.Name != "" && name != "" && !samePrefix(rec.Name, name) {
		r.diverge("symbol order mismatch: recorded %q, replay wants %q", rec.Name, name)
	}
	return expr.Const(rec.Value)
}

// samePrefix compares a recorded symbol name ("registry_value#3") with the
// base name at the injection site ("registry_value").
func samePrefix(recorded, base string) bool {
	if len(recorded) < len(base) {
		return recorded == base
	}
	return recorded[:len(base)] == base
}

// forkPolicy steers annotation forks down the recorded outcome: take the
// alternative exactly when the trace recorded an EvAltFork for this API at
// this instruction count.
func (r *replayer) forkPolicy(s *vm.State, api string) bool {
	if len(r.altQueue) == 0 {
		return false
	}
	front := r.altQueue[0]
	if front.Seq == s.ICount && front.Name == api {
		r.altQueue = r.altQueue[1:]
		return true
	}
	return false
}

// maybeInject delivers a recorded interrupt when the replay reaches the
// recorded instant.
func (r *replayer) maybeInject(s *vm.State) {
	if len(r.intrQueue) == 0 {
		return
	}
	front := r.intrQueue[0]
	if front.Seq == s.ICount && front.PC == s.PC {
		r.intrQueue = r.intrQueue[1:]
		if !r.k.InjectInterrupt(s) {
			r.diverge("recorded interrupt at seq %d but no ISR registered", front.Seq)
		}
	}
}

// resolveEntry prepares the invocation of the named entry on s, mirroring
// the workload generator's conventions.
func (r *replayer) resolveEntry(s *vm.State, name string) (uint32, []*expr.Expr, bool) {
	const adapterHandle uint32 = 0x7000_0001
	ks := kernel.Of(s)
	adapter := expr.Const(adapterHandle)

	pcOf := func(mini func(*kernel.MiniportChars) uint32, audio func(*kernel.AudioChars) uint32) uint32 {
		if ks.Miniport != nil && mini != nil {
			return mini(ks.Miniport)
		}
		if ks.Audio != nil && audio != nil {
			return audio(ks.Audio)
		}
		return 0
	}

	switch name {
	case "DriverEntry":
		return r.m.Img.Entry, nil, true
	case "Initialize":
		pc := pcOf(func(m *kernel.MiniportChars) uint32 { return m.InitializePC },
			func(a *kernel.AudioChars) uint32 { return a.InitializePC })
		return pc, []*expr.Expr{adapter}, pc != 0
	case "Send":
		pc := pcOf(func(m *kernel.MiniportChars) uint32 { return m.SendPC }, nil)
		pkt := r.makePacket(s)
		return pc, []*expr.Expr{adapter, expr.Const(pkt)}, pc != 0
	case "QueryInformation":
		pc := pcOf(func(m *kernel.MiniportChars) uint32 { return m.QueryInfoPC }, nil)
		return pc, r.infoArgs(s, adapter), pc != 0
	case "SetInformation":
		pc := pcOf(func(m *kernel.MiniportChars) uint32 { return m.SetInfoPC }, nil)
		return pc, r.infoArgs(s, adapter), pc != 0
	case "Halt":
		pc := pcOf(func(m *kernel.MiniportChars) uint32 { return m.HaltPC },
			func(a *kernel.AudioChars) uint32 { return a.HaltPC })
		return pc, []*expr.Expr{adapter}, pc != 0
	case "ISR":
		if !ks.ISRRegistered {
			return 0, nil, false
		}
		ks.IRQL = kernel.DeviceLevel
		return ks.ISRPC, []*expr.Expr{adapter}, true
	case "Play":
		pc := pcOf(nil, func(a *kernel.AudioChars) uint32 { return a.PlayPC })
		buf := r.makeAudioBuffer(s)
		return pc, []*expr.Expr{adapter, expr.Const(buf), expr.Const(256)}, pc != 0
	case "Stop":
		pc := pcOf(nil, func(a *kernel.AudioChars) uint32 { return a.StopPC })
		return pc, []*expr.Expr{adapter}, pc != 0
	}
	if len(name) > 4 && name[:4] == "DPC:" {
		if len(ks.PendingDPCs) == 0 {
			return 0, nil, false
		}
		dpc := ks.PendingDPCs[0]
		ks.PendingDPCs = ks.PendingDPCs[1:]
		ks.IRQL = kernel.DispatchLevel
		ks.InDpc = true
		return dpc.FuncPC, []*expr.Expr{expr.Const(dpc.Ctx)}, true
	}
	return 0, nil, false
}

// makePacket mirrors the workload's symbolic packet, with recorded values.
func (r *replayer) makePacket(s *vm.State) uint32 {
	ks := kernel.Of(s)
	const payload = 64
	addr, err := ks.HeapAlloc(8+payload, "sendpkt", "packet", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	data := addr + 8
	s.Mem.Write(addr, 4, expr.Const(data))
	if r.file.Annotations {
		length := r.k.FreshSymbol(s, "packet_len", expr.OriginPacket)
		s.Mem.Write(addr+4, 4, length)
		for i := uint32(0); i < 16; i++ {
			b := r.k.FreshSymbol(s, fmt.Sprintf("packet_byte_%d", i), expr.OriginPacket)
			s.Mem.Write(data+i, 1, b)
		}
	} else {
		s.Mem.Write(addr+4, 4, expr.Const(42))
		for i := uint32(0); i < 16; i++ {
			s.Mem.Write(data+i, 1, expr.Const(uint32(0x40+i)))
		}
	}
	for i := uint32(16); i < payload; i++ {
		s.Mem.Write(data+i, 1, expr.Const(0))
	}
	return addr
}

func (r *replayer) infoArgs(s *vm.State, adapter *expr.Expr) []*expr.Expr {
	ks := kernel.Of(s)
	buf, err := ks.HeapAlloc(64, "infobuf", "param", s.ICount, 0)
	if err != nil {
		return []*expr.Expr{adapter, expr.Const(0), expr.Const(0), expr.Const(64)}
	}
	delete(ks.Allocs, buf)
	var oid *expr.Expr
	if r.file.Annotations {
		oid = r.k.FreshSymbol(s, "oid", expr.OriginArgument)
	} else {
		oid = expr.Const(kernel.OIDGenSupportedList)
	}
	return []*expr.Expr{adapter, oid, expr.Const(buf), expr.Const(64)}
}

func (r *replayer) makeAudioBuffer(s *vm.State) uint32 {
	ks := kernel.Of(s)
	addr, err := ks.HeapAlloc(256, "audiobuf", "param", s.ICount, 0)
	if err != nil {
		return 0
	}
	delete(ks.Allocs, addr)
	if r.file.Annotations {
		for i := uint32(0); i < 8; i++ {
			b := r.k.FreshSymbol(s, fmt.Sprintf("sample_%d", i), expr.OriginPacket)
			s.Mem.Write(addr+i, 1, b)
		}
	} else {
		for i := uint32(0); i < 8; i++ {
			s.Mem.Write(addr+i, 1, expr.Const(i*17&0xFF))
		}
	}
	return addr
}

// run executes the recorded entry chain and checks the failure.
func (r *replayer) run(s *vm.State) error {
	entries := r.file.Entries()
	for idx, entry := range entries {
		pc, args, ok := r.resolveEntry(s, entry)
		if !ok || pc == 0 {
			r.diverge("entry %q unresolvable at step %d", entry, idx)
			return nil
		}
		r.k.InvokeSym(s, entry, pc, args...)
		for s.Status == vm.StatusRunning {
			r.maybeInject(s)
			next, err := r.m.Step(s)
			if err != nil {
				r.record(err)
				return nil
			}
			switch len(next) {
			case 0:
				// terminal
			case 1:
				s = next[0]
			default:
				r.diverge("replay forked at pc %#x (inputs underdetermine the path)", s.PC)
				s = next[0]
			}
			if r.m.Steps.Load() > 5_000_000 {
				r.diverge("replay exceeded instruction budget")
				return nil
			}
		}
		if s.Status != vm.StatusExited {
			r.diverge("entry %q ended with status %v", entry, s.Status)
			return nil
		}
		// Entry-exit checks (leaks fire here, as in the live run).
		status, ok := s.RegConcrete(isa.R0)
		if !ok {
			status = 0
		}
		if err := r.leak.CheckEntryExit(s, entry, status); err != nil {
			r.record(err)
			return nil
		}
		// Reset context the way the workload does between phases.
		ks := kernel.Of(s)
		ks.InDpc = false
		ks.IRQL = kernel.PassiveLevel
		s.Status = vm.StatusRunning
	}
	r.diverge("entry chain completed without reproducing the failure")
	return nil
}

func (r *replayer) record(err error) {
	f, ok := err.(*vm.Fault)
	if !ok {
		r.diverge("non-fault error: %v", err)
		return
	}
	r.res.FaultClass = f.Class
	r.res.FaultPC = f.PC
	r.res.FaultMsg = f.Msg
	// Classification at replay time can differ (e.g. "race condition" vs
	// the raw class); compare the raw location and message family instead.
	r.res.Reproduced = f.PC == r.file.Bug.PC
}
