// Package trace implements DDT's executable traces (§3.5): self-contained
// records of a buggy execution path — every basic block, memory access,
// branch decision, symbolic-value creation site, interrupt injection point,
// and annotation fork — plus the solved concrete inputs, serialized so the
// bug can be re-executed deterministically ("replayed") on another machine
// and post-processed into human-readable reports (§3.6).
package trace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/vm"
)

// Record is the serializable form of one vm.Event.
type Record struct {
	Kind   uint8
	Seq    uint64
	PC     uint32
	Addr   uint32
	Size   uint8
	Write  bool
	Sym    int32
	Taken  bool
	Forked bool
	Name   string
	Val    string // rendered expression, for human consumption
}

// SymbolRecord describes one symbolic input with its solved value.
type SymbolRecord struct {
	ID     int32
	Name   string
	Origin string
	PC     uint32
	Seq    uint64
	Value  uint32 // solved concrete value from the path model
}

// BugRecord carries the failure the trace demonstrates.
type BugRecord struct {
	Class string
	Msg   string
	PC    uint32
	Entry string
}

// File is a complete executable trace.
type File struct {
	Version     int
	Driver      string
	Annotations bool
	Registry    map[string]uint32
	Bug         BugRecord
	Symbols     []SymbolRecord
	Events      []Record
}

// FileVersion is the current trace format version.
const FileVersion = 1

// New builds an executable trace from a DDT bug report. annotations and
// registry must reflect the options of the run that found the bug, so the
// replay recreates the identical environment.
func New(bug *core.Bug, driver string, annotations bool, registry map[string]uint32) *File {
	f := &File{
		Version:     FileVersion,
		Driver:      driver,
		Annotations: annotations,
		Registry:    make(map[string]uint32, len(registry)),
		Bug: BugRecord{
			Class: bug.Class,
			Msg:   bug.Fault.Msg,
			PC:    bug.Fault.PC,
			Entry: bug.Entry,
		},
	}
	for k, v := range registry {
		f.Registry[k] = v
	}
	for _, si := range bug.Symbols {
		f.Symbols = append(f.Symbols, SymbolRecord{
			ID:     int32(si.ID),
			Name:   si.Name,
			Origin: si.Origin.String(),
			PC:     si.PC,
			Seq:    si.Seq,
			Value:  bug.Model[si.ID],
		})
	}
	for _, ev := range bug.Trace {
		r := Record{
			Kind: uint8(ev.Kind), Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr,
			Size: ev.Size, Write: ev.Write, Sym: int32(ev.Sym),
			Taken: ev.Taken, Forked: ev.Forked, Name: ev.Name,
		}
		if ev.Val != nil {
			r.Val = ev.Val.String()
		} else if ev.Cond != nil {
			r.Val = ev.Cond.String()
		}
		f.Events = append(f.Events, r)
	}
	return f
}

// Marshal serializes the trace (gob).
func (f *File) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized trace.
func Unmarshal(b []byte) (*File, error) {
	var f File
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if f.Version != FileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", f.Version)
	}
	return &f, nil
}

// Save writes the trace to a file.
func (f *File) Save(path string) error {
	b, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a trace from a file.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(b)
}

// EventsOf returns the trace records of one event kind, in path order.
// Consumers beyond replay use this: the fuzz bridge reads EvNewSym records
// to turn a trace's solved inputs into a concrete feed.
func (f *File) EventsOf(kind vm.EventKind) []Record {
	var out []Record
	for _, r := range f.Events {
		if vm.EventKind(r.Kind) == kind {
			out = append(out, r)
		}
	}
	return out
}

// Entries returns the entry-point invocation sequence of the path.
func (f *File) Entries() []string {
	var out []string
	for _, r := range f.EventsOf(vm.EvEntry) {
		out = append(out, r.Name)
	}
	return out
}

// Summary renders the human-readable post-processed report of §3.6:
// the path's entry chain, the symbolic inputs with their provenance and
// concrete assignment, the interrupt injections, and the failure.
func (f *File) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Executable trace: driver %q\n", f.Driver)
	fmt.Fprintf(&b, "Bug: [%s] %s\n", f.Bug.Class, f.Bug.Msg)
	fmt.Fprintf(&b, "     raised at pc %#x while exercising entry %q\n", f.Bug.PC, f.Bug.Entry)
	fmt.Fprintf(&b, "Path: %s\n", strings.Join(f.Entries(), " -> "))
	if n := len(f.EventsOf(vm.EvInterrupt)); n > 0 {
		fmt.Fprintf(&b, "Symbolic interrupts injected: %d\n", n)
	}
	if len(f.Symbols) == 0 {
		b.WriteString("Inputs: none (concrete path)\n")
	} else {
		b.WriteString("Inputs (solved from path constraints):\n")
		for _, s := range f.Symbols {
			fmt.Fprintf(&b, "  %-28s %-10s created at pc %#x = %#x\n", s.Name, s.Origin, s.PC, s.Value)
		}
	}
	blocks := len(f.EventsOf(vm.EvBlock))
	mems := len(f.EventsOf(vm.EvMem))
	branches := len(f.EventsOf(vm.EvBranch))
	fmt.Fprintf(&b, "Trace: %d events (%d blocks, %d memory accesses, %d branches)\n",
		len(f.Events), blocks, mems, branches)
	return b.String()
}
