package trace

import (
	"fmt"
	"strings"

	"repro/internal/vm"
)

// Tree reconstructs the execution tree of explored paths from a set of
// traces (§3.5: "each branch instruction has a flag indicating whether it
// forked execution or not, thus enabling DDT to subsequently reconstruct an
// execution tree of the explored paths; each node in the tree corresponds
// to a machine state"). Paths that share a prefix share tree nodes; each
// leaf is one trace's failure.
type Tree struct {
	Root *TreeNode
	// Paths is the number of traces merged in.
	Paths int
}

// TreeNode is one machine state in the reconstructed tree.
type TreeNode struct {
	// Event is the control event at this node (entry, branch, interrupt,
	// API call, fork, bug).
	Event Record
	// Children are the continuations; >1 means execution forked here.
	Children []*TreeNode
	// Leaf marks a failure endpoint, with the owning trace's bug.
	Leaf *BugRecord
}

// controlKinds are the events that shape the tree (block/memory events are
// too fine-grained to display).
func isControl(k vm.EventKind) bool {
	switch k {
	case vm.EvEntry, vm.EvAPICall, vm.EvInterrupt, vm.EvAltFork, vm.EvBug:
		return true
	case vm.EvBranch:
		return true
	}
	return false
}

// BuildTree merges traces into an execution tree.
func BuildTree(files []*File) *Tree {
	root := &TreeNode{}
	for _, f := range files {
		cur := root
		for _, r := range f.Events {
			k := vm.EventKind(r.Kind)
			if !isControl(k) {
				continue
			}
			// Branches only matter for the tree when they forked.
			if k == vm.EvBranch && !r.Forked {
				continue
			}
			cur = cur.child(r)
		}
		bug := f.Bug
		cur.Leaf = &bug
	}
	return &Tree{Root: root, Paths: len(files)}
}

// child finds or creates the continuation matching event r.
func (n *TreeNode) child(r Record) *TreeNode {
	for _, c := range n.Children {
		if sameEvent(c.Event, r) {
			return c
		}
	}
	c := &TreeNode{Event: r}
	n.Children = append(n.Children, c)
	return c
}

func sameEvent(a, b Record) bool {
	return a.Kind == b.Kind && a.Seq == b.Seq && a.PC == b.PC &&
		a.Name == b.Name && a.Taken == b.Taken
}

// Leaves returns the bug endpoints in depth-first order.
func (t *Tree) Leaves() []BugRecord {
	var out []BugRecord
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.Leaf != nil {
			out = append(out, *n.Leaf)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// ForkPoints counts the internal nodes with more than one continuation —
// the states where the merged paths diverged.
func (t *Tree) ForkPoints() int {
	n := 0
	var walk func(node *TreeNode)
	walk = func(node *TreeNode) {
		if len(node.Children) > 1 {
			n++
		}
		for _, c := range node.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return n
}

// Render draws the tree as indented text, the §3.5 post-processing view:
// unwinding each leaf's path to the root, with shared prefixes shown once.
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution tree: %d path(s), %d fork point(s)\n", t.Paths, t.ForkPoints())
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.Event.Kind != 0 || n.Event.PC != 0 || n.Event.Name != "" {
			k := vm.EventKind(n.Event.Kind)
			switch k {
			case vm.EvEntry:
				fmt.Fprintf(&b, "%sentry %s\n", indent, n.Event.Name)
			case vm.EvAPICall:
				fmt.Fprintf(&b, "%scall %s\n", indent, n.Event.Name)
			case vm.EvBranch:
				dir := "not-taken"
				if n.Event.Taken {
					dir = "taken"
				}
				fmt.Fprintf(&b, "%sfork @%#x (%s)\n", indent, n.Event.PC, dir)
			case vm.EvInterrupt:
				fmt.Fprintf(&b, "%s** interrupt injected @%#x\n", indent, n.Event.PC)
			case vm.EvAltFork:
				fmt.Fprintf(&b, "%s** %s failure alternative\n", indent, n.Event.Name)
			case vm.EvBug:
				fmt.Fprintf(&b, "%sBUG %s\n", indent, n.Event.Name)
			default:
				fmt.Fprintf(&b, "%s%v @%#x\n", indent, k, n.Event.PC)
			}
		}
		if n.Leaf != nil {
			fmt.Fprintf(&b, "%s  => [%s] %s\n", indent, n.Leaf.Class, n.Leaf.Msg)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}
