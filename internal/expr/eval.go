package expr

// Assignment maps symbols to concrete values; unmapped symbols evaluate
// to zero (the solver always produces total assignments for the symbols it
// was asked about, so the zero default only matters for don't-care inputs).
type Assignment map[SymID]uint32

// Eval computes the concrete value of e under the assignment a.
func Eval(e *Expr, a Assignment) uint32 {
	switch e.Op {
	case OpConst:
		return e.C
	case OpSym:
		return a[e.Sym]
	case OpAdd:
		return Eval(e.X, a) + Eval(e.Y, a)
	case OpSub:
		return Eval(e.X, a) - Eval(e.Y, a)
	case OpMul:
		return Eval(e.X, a) * Eval(e.Y, a)
	case OpUDiv:
		d := Eval(e.Y, a)
		if d == 0 {
			return 0xFFFFFFFF
		}
		return Eval(e.X, a) / d
	case OpURem:
		d := Eval(e.Y, a)
		if d == 0 {
			return Eval(e.X, a)
		}
		return Eval(e.X, a) % d
	case OpAnd:
		return Eval(e.X, a) & Eval(e.Y, a)
	case OpOr:
		return Eval(e.X, a) | Eval(e.Y, a)
	case OpXor:
		return Eval(e.X, a) ^ Eval(e.Y, a)
	case OpShl:
		return Eval(e.X, a) << (Eval(e.Y, a) & 31)
	case OpLshr:
		return Eval(e.X, a) >> (Eval(e.Y, a) & 31)
	case OpAshr:
		return uint32(int32(Eval(e.X, a)) >> (Eval(e.Y, a) & 31))
	case OpEq:
		if Eval(e.X, a) == Eval(e.Y, a) {
			return 1
		}
		return 0
	case OpULt:
		if Eval(e.X, a) < Eval(e.Y, a) {
			return 1
		}
		return 0
	case OpSLt:
		if int32(Eval(e.X, a)) < int32(Eval(e.Y, a)) {
			return 1
		}
		return 0
	case OpIte:
		if Eval(e.X, a) != 0 {
			return Eval(e.Y, a)
		}
		return Eval(e.Z, a)
	case OpNot:
		return ^Eval(e.X, a)
	}
	panic("expr: eval of unknown op " + e.Op.String())
}

// collectSymsDAGThreshold is the tree size above which CollectSyms walks
// with a pointer-visited set. Hash-consing makes big expressions DAGs with
// heavy subtree sharing; skipping already-visited pointers turns the walk
// from O(tree) into O(distinct nodes). Small expressions stay on the plain
// recursion — the visited map would cost more than it saves.
const collectSymsDAGThreshold = 64

// CollectSyms appends every symbol referenced by e to set (a scratch map
// owned by the caller).
func CollectSyms(e *Expr, set map[SymID]bool) {
	if e == nil {
		return
	}
	if e.size > collectSymsDAGThreshold {
		collectSymsDAG(e, set, make(map[*Expr]struct{}, 32))
		return
	}
	collectSymsTree(e, set)
}

func collectSymsTree(e *Expr, set map[SymID]bool) {
	if e == nil {
		return
	}
	if e.Op == OpSym {
		set[e.Sym] = true
		return
	}
	collectSymsTree(e.X, set)
	collectSymsTree(e.Y, set)
	collectSymsTree(e.Z, set)
}

func collectSymsDAG(e *Expr, set map[SymID]bool, seen map[*Expr]struct{}) {
	if e == nil || e.Op == OpConst {
		return
	}
	if e.Op == OpSym {
		set[e.Sym] = true
		return
	}
	if _, ok := seen[e]; ok {
		return
	}
	seen[e] = struct{}{}
	collectSymsDAG(e.X, set, seen)
	collectSymsDAG(e.Y, set, seen)
	collectSymsDAG(e.Z, set, seen)
}

// Syms returns the set of symbols referenced by e, as a slice in
// ascending SymID order.
func Syms(e *Expr) []SymID {
	set := make(map[SymID]bool)
	CollectSyms(e, set)
	out := make([]SymID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	// insertion sort; symbol counts per expression are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Substitute replaces every symbol present in a with its concrete value and
// re-simplifies. Symbols absent from a are left symbolic.
func Substitute(e *Expr, a Assignment) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpSym:
		if v, ok := a[e.Sym]; ok {
			return Const(v)
		}
		return e
	}
	x := e.X
	if x != nil {
		x = Substitute(x, a)
	}
	y := e.Y
	if y != nil {
		y = Substitute(y, a)
	}
	z := e.Z
	if z != nil {
		z = Substitute(z, a)
	}
	return rebuild(e.Op, x, y, z)
}

// rebuild re-invokes the smart constructor for op over new operands.
func rebuild(op Op, x, y, z *Expr) *Expr {
	switch op {
	case OpAdd:
		return Add(x, y)
	case OpSub:
		return Sub(x, y)
	case OpMul:
		return Mul(x, y)
	case OpUDiv:
		return UDiv(x, y)
	case OpURem:
		return URem(x, y)
	case OpAnd:
		return And(x, y)
	case OpOr:
		return Or(x, y)
	case OpXor:
		return Xor(x, y)
	case OpShl:
		return Shl(x, y)
	case OpLshr:
		return Lshr(x, y)
	case OpAshr:
		return Ashr(x, y)
	case OpEq:
		return Eq(x, y)
	case OpULt:
		return ULt(x, y)
	case OpSLt:
		return SLt(x, y)
	case OpIte:
		return Ite(x, y, z)
	case OpNot:
		return Not(x)
	}
	panic("expr: rebuild of unknown op " + op.String())
}
