package expr

import "sync/atomic"

// Hash-consing tables. Beyond the static constant interning (smallConsts,
// maskConsts, pow2Consts), every node the smart constructors produce is
// looked up in a bounded, direct-mapped, lock-free table before a fresh
// allocation: compound nodes by (Op, child pointers), constants by value,
// symbols by SymID. Because children are consed before their parents,
// structurally equal subtrees built while their table entries survive
// share one pointer — which turns the simplifier's Equal fast path and
// solver cache key comparisons into pointer hits, and makes repeated
// expression construction on the hot path allocation-free.
//
// Eviction is overwrite-on-collision: a slot holds the most recent node
// that hashed to it. That bounds memory without any bookkeeping, at the
// cost of guaranteed sharing — two live expressions may still be
// structurally equal with different pointers (Equal stays structural for
// exactly this reason). Consing is an allocation/identity optimization,
// never a semantic one: hashes, sizes, and fold results are byte-for-byte
// what the unconsed constructors produced.
//
// The tables are global, not per-worker: slots are atomic.Pointer values,
// so concurrent workers race benignly (each validates the loaded node
// field-by-field before using it) and a build sequence on one goroutine
// is guaranteed to see its own stores — the property the pointer-equality
// tests rely on.
const (
	consSize  = 1 << 14 // compound nodes: 16384 slots (128 KiB of pointers)
	constSize = 1 << 12 // out-of-range constants
	symSize   = 1 << 12 // symbol references
)

var (
	consTable  [consSize]atomic.Pointer[Expr]
	constTable [constSize]atomic.Pointer[Expr]
	symTable   [symSize]atomic.Pointer[Expr]
)
