package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestConsPointerIdentity: with the hash-cons cache, building the same
// compound expression twice back-to-back returns the same node pointer —
// structural equality implies pointer equality while the entry is resident.
// This is what lets DAG-aware walks (CollectSyms, the solver's constant
// harvest) skip shared subtrees by pointer.
func TestConsPointerIdentity(t *testing.T) {
	x, y := Sym(0), Sym(1)
	if Sym(0) != x {
		t.Fatal("Sym not pointer-stable")
	}
	if Const(0x1234567) != Const(0x1234567) {
		t.Fatal("Const not pointer-stable")
	}
	a := Add(Mul(x, y), Xor(x, Const(0xDEAD)))
	b := Add(Mul(x, y), Xor(x, Const(0xDEAD)))
	if a != b {
		t.Fatalf("identical builds produced distinct nodes: %p vs %p", a, b)
	}
	// The table is direct-mapped, so two nodes of one big expression can
	// collide into the same slot and evict each other mid-build; the hard
	// guarantee is therefore immediate reconstruction: a compound node is
	// the last store to its slot, so re-invoking its constructor over the
	// same children returns the identical pointer. Pin that for random
	// expression shapes.
	f := func(seed int64) bool {
		e := randomExpr(rand.New(rand.NewSource(seed)), 4, 5)
		if e.Op == OpConst || e.Op == OpSym {
			return true
		}
		return rebuild(e.Op, e.X, e.Y, e.Z) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConsEvictionKeepsStructuralEqual: the cache is direct-mapped with
// overwrite-on-collision eviction, so pointer sharing is NOT guaranteed
// across unrelated construction traffic — Equal must stay structural and
// hashes must stay build-order independent. Flood the table between two
// builds of the same expression and check the semantic invariants hold
// whether or not the nodes were shared.
func TestConsEvictionKeepsStructuralEqual(t *testing.T) {
	build := func() *Expr {
		return Ite(ULt(Sym(2), Const(77)), Add(Sym(2), Sym(3)), Not(Sym(3)))
	}
	e1 := build()
	// Flood: enough distinct nodes to wrap every table index many times.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 4*consSize; i++ {
		_ = Add(Sym(SymID(r.Intn(64))), Const(uint32(i)*2654435761))
	}
	e2 := build()
	if !Equal(e1, e2) {
		t.Fatal("structural equality lost across cache eviction")
	}
	if e1.Hash() != e2.Hash() {
		t.Fatal("hash differs across cache eviction")
	}
	a := Assignment{2: 123, 3: 456}
	if Eval(e1, a) != Eval(e2, a) {
		t.Fatal("evaluation differs across cache eviction")
	}
}

// TestConsFoldingUnchanged: consing happens after the smart constructors'
// folds, so every algebraic rewrite fires exactly as before — a consed
// compound over constants still folds to the interned constant, and
// identity rewrites still return the operand itself.
func TestConsFoldingUnchanged(t *testing.T) {
	if got := Add(Const(3), Const(4)); !got.IsConst() || got.ConstVal() != 7 {
		t.Fatalf("constant fold broken under consing: %v", got)
	}
	x := Sym(5)
	if got := Add(x, Const(0)); got != x {
		t.Fatalf("identity rewrite broken under consing: %v", got)
	}
	if got := Xor(x, x); !got.IsConst() || got.ConstVal() != 0 {
		t.Fatalf("self-xor fold broken under consing: %v", got)
	}
}
