// Package expr implements the symbolic expression layer used by DDT's
// selective symbolic execution engine.
//
// All expressions denote 32-bit unsigned machine words. Narrower values
// (bytes read from symbolic device registers, packet bytes) are represented
// as 32-bit expressions whose upper bits are zero; comparisons produce 0 or
// 1. This flat model avoids a bitwidth system while remaining faithful to
// the d32 ISA, which is word-oriented.
//
// Expressions are immutable. Smart constructors canonicalize and
// constant-fold aggressively so that purely concrete computation stays
// concrete (a requirement for selective symbolic execution: the kernel side
// of the boundary must never observe a needlessly symbolic value).
package expr

import (
	"fmt"
	"math/bits"
	"strings"
)

// Op identifies an expression node kind.
type Op uint8

// Expression node kinds.
const (
	OpConst Op = iota // C
	OpSym             // symbol Sym
	OpAdd             // X + Y
	OpSub             // X - Y
	OpMul             // X * Y
	OpUDiv            // X / Y (unsigned; Y==0 yields all-ones, matching d32)
	OpURem            // X % Y (unsigned; Y==0 yields X, matching d32)
	OpAnd             // X & Y
	OpOr              // X | Y
	OpXor             // X ^ Y
	OpShl             // X << (Y & 31)
	OpLshr            // X >> (Y & 31) logical
	OpAshr            // X >> (Y & 31) arithmetic
	OpEq              // X == Y ? 1 : 0
	OpULt             // X < Y unsigned ? 1 : 0
	OpSLt             // X < Y signed ? 1 : 0
	OpIte             // X != 0 ? Y : Z
	OpNot             // ^X (bitwise complement)
)

var opNames = [...]string{
	OpConst: "const", OpSym: "sym", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpUDiv: "udiv", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLshr: "lshr", OpAshr: "ashr", OpEq: "eq", OpULt: "ult",
	OpSLt: "slt", OpIte: "ite", OpNot: "not",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// SymID names a symbolic variable within a SymbolTable.
type SymID int32

// Expr is an immutable symbolic expression over 32-bit words.
//
// Concrete values are Expr nodes with Op==OpConst; code that only needs the
// concrete fast path should check IsConst first.
type Expr struct {
	Op   Op
	X    *Expr
	Y    *Expr
	Z    *Expr
	C    uint32 // valid when Op==OpConst
	Sym  SymID  // valid when Op==OpSym
	hash uint64
	size int32 // node count, used to cap simplifier recursion and sort operands
}

// Small constant cache: the VM allocates constants constantly.
var smallConsts [1024]*Expr

// Interned common word values beyond the small range: contiguous low-bit
// masks (0xFFFF, 0xFFFFFFFF, 0x7FFFFFFF, ...) and powers of two (page
// sizes, alignment, single flag bits). These dominate the constants the
// step loop's ALU folding and zero/sign extension produce, so interning
// them keeps purely concrete stepping allocation-free.
var (
	maskConsts [33]*Expr // maskConsts[k] = (1<<k)-1, for values >= 1024
	pow2Consts [32]*Expr // pow2Consts[k] = 1<<k, for values >= 1024
)

func internConst(c uint32) *Expr {
	return &Expr{Op: OpConst, C: c, hash: hashNode(OpConst, uint64(c), 0, 0), size: 1}
}

func init() {
	for i := range smallConsts {
		smallConsts[i] = internConst(uint32(i))
	}
	for k := 10; k < 32; k++ {
		pow2Consts[k] = internConst(1 << k)
	}
	for k := 11; k <= 32; k++ {
		maskConsts[k] = internConst(uint32((uint64(1) << k) - 1))
	}
}

// Const returns a constant expression with value c.
func Const(c uint32) *Expr {
	if c < uint32(len(smallConsts)) {
		return smallConsts[c]
	}
	if c&(c+1) == 0 { // contiguous low mask: 2^k - 1
		return maskConsts[bits.OnesCount32(c)]
	}
	if c&(c-1) == 0 { // power of two
		return pow2Consts[bits.TrailingZeros32(c)]
	}
	// Out-of-range values go through the bounded cons table so repeated
	// materialization of the same word (device register values, packet
	// fields) yields one shared node. The slot index is the node's own
	// structural hash: cheaper index functions were measured and lost —
	// their worse slot distribution cost more in evictions (a miss pays an
	// allocation plus the hash anyway, and breaks downstream pointer
	// sharing) than they saved per hit.
	slot := &constTable[hashNode(OpConst, uint64(c), 0, 0)&(constSize-1)]
	if e := slot.Load(); e != nil && e.C == c {
		return e
	}
	e := internConst(c)
	slot.Store(e)
	return e
}

// Bool returns Const(1) if b, else Const(0).
func Bool(b bool) *Expr {
	if b {
		return smallConsts[1]
	}
	return smallConsts[0]
}

// Sym returns a reference to symbolic variable id. References are interned
// through the cons table: every read of the same symbolic device register
// returns the same node.
func Sym(id SymID) *Expr {
	slot := &symTable[uint64(uint32(id))&(symSize-1)]
	if e := slot.Load(); e != nil && e.Sym == id {
		return e
	}
	e := &Expr{Op: OpSym, Sym: id, hash: hashNode(OpSym, uint64(id), 0, 0), size: 1}
	slot.Store(e)
	return e
}

// IsConst reports whether e is a concrete constant.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// ConstVal returns the constant value; it panics if e is not constant.
func (e *Expr) ConstVal() uint32 {
	if e.Op != OpConst {
		panic("expr: ConstVal on non-constant " + e.String())
	}
	return e.C
}

// IsTrue reports whether e is the constant 1 (or any non-zero constant).
func (e *Expr) IsTrue() bool { return e.Op == OpConst && e.C != 0 }

// IsFalse reports whether e is the constant 0.
func (e *Expr) IsFalse() bool { return e.Op == OpConst && e.C == 0 }

// Size returns the number of nodes in e.
func (e *Expr) Size() int { return int(e.size) }

// Hash returns a structural hash of e.
func (e *Expr) Hash() uint64 { return e.hash }

func hashNode(op Op, a, b, c uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(op))
	mix(a)
	mix(b)
	mix(c)
	return h
}

func newNode(op Op, x, y, z *Expr) *Expr {
	var hx, hy, hz uint64
	var sz int32 = 1
	if x != nil {
		hx = x.hash
		sz += x.size
	}
	if y != nil {
		hy = y.hash
		sz += y.size
	}
	if z != nil {
		hz = z.hash
		sz += z.size
	}
	// Hash-cons: children were consed before their parent, so comparing
	// child pointers is structural identity for the whole subtree whenever
	// the slot still holds a match. The slot index is the node's structural
	// hash itself — cheap mixes of the child hashes were tried and measured
	// slower overall: worse distribution raises the miss rate, and a miss
	// pays the full hash plus an allocation and evicts a shared node.
	h := hashNode(op, hx, hy, hz)
	slot := &consTable[h&(consSize-1)]
	if e := slot.Load(); e != nil && e.Op == op && e.X == x && e.Y == y && e.Z == z {
		return e
	}
	e := &Expr{Op: op, X: x, Y: y, Z: z, hash: h, size: sz}
	slot.Store(e)
	return e
}

// Equal reports structural equality of a and b.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.hash != b.hash || a.Op != b.Op || a.C != b.C || a.Sym != b.Sym || a.size != b.size {
		return false
	}
	return Equal(a.X, b.X) && Equal(a.Y, b.Y) && Equal(a.Z, b.Z)
}

// commutative ops get canonical operand order (constants first, then by hash)
// so that structurally equal expressions built in different orders compare equal.
func canonOrder(x, y *Expr) (*Expr, *Expr) {
	if y.Op == OpConst && x.Op != OpConst {
		return y, x
	}
	if x.Op != OpConst && y.Op != OpConst && x.hash > y.hash {
		return y, x
	}
	return x, y
}

// Add returns x + y.
func Add(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C + y.C)
	}
	x, y = canonOrder(x, y)
	if x.IsConst() && x.C == 0 {
		return y
	}
	// (c + (c2 + e)) -> (c+c2) + e
	if x.IsConst() && y.Op == OpAdd && y.X.IsConst() {
		return Add(Const(x.C+y.X.C), y.Y)
	}
	// e + e -> 2*e? keep simple: skip.
	return newNode(OpAdd, x, y, nil)
}

// Sub returns x - y.
func Sub(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C - y.C)
	}
	if y.IsConst() {
		return Add(Const(-y.C), x)
	}
	if Equal(x, y) {
		return Const(0)
	}
	return newNode(OpSub, x, y, nil)
}

// Mul returns x * y.
func Mul(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C * y.C)
	}
	x, y = canonOrder(x, y)
	if x.IsConst() {
		switch x.C {
		case 0:
			return Const(0)
		case 1:
			return y
		}
	}
	return newNode(OpMul, x, y, nil)
}

// UDiv returns x / y (unsigned). Division by zero yields 0xFFFFFFFF, the
// d32 hardware convention.
func UDiv(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		if y.C == 0 {
			return Const(0xFFFFFFFF)
		}
		return Const(x.C / y.C)
	}
	if y.IsConst() && y.C == 1 {
		return x
	}
	return newNode(OpUDiv, x, y, nil)
}

// URem returns x % y (unsigned). Modulo by zero yields x, the d32 hardware
// convention.
func URem(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		if y.C == 0 {
			return x
		}
		return Const(x.C % y.C)
	}
	if y.IsConst() && y.C == 1 {
		return Const(0)
	}
	return newNode(OpURem, x, y, nil)
}

// And returns x & y.
func And(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C & y.C)
	}
	x, y = canonOrder(x, y)
	if x.IsConst() {
		switch x.C {
		case 0:
			return Const(0)
		case 0xFFFFFFFF:
			return y
		}
	}
	if Equal(x, y) {
		return x
	}
	// (c1 & (c2 & e)) -> (c1&c2) & e
	if x.IsConst() && y.Op == OpAnd && y.X.IsConst() {
		return And(Const(x.C&y.X.C), y.Y)
	}
	return newNode(OpAnd, x, y, nil)
}

// Or returns x | y.
func Or(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C | y.C)
	}
	x, y = canonOrder(x, y)
	if x.IsConst() {
		switch x.C {
		case 0:
			return y
		case 0xFFFFFFFF:
			return Const(0xFFFFFFFF)
		}
	}
	if Equal(x, y) {
		return x
	}
	return newNode(OpOr, x, y, nil)
}

// Xor returns x ^ y.
func Xor(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C ^ y.C)
	}
	x, y = canonOrder(x, y)
	if x.IsConst() && x.C == 0 {
		return y
	}
	if Equal(x, y) {
		return Const(0)
	}
	return newNode(OpXor, x, y, nil)
}

// Not returns ^x (bitwise complement).
func Not(x *Expr) *Expr {
	if x.IsConst() {
		return Const(^x.C)
	}
	if x.Op == OpNot {
		return x.X
	}
	return newNode(OpNot, x, nil, nil)
}

// Shl returns x << (y & 31).
func Shl(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C << (y.C & 31))
	}
	if y.IsConst() && y.C&31 == 0 {
		return x
	}
	if x.IsConst() && x.C == 0 {
		return Const(0)
	}
	return newNode(OpShl, x, y, nil)
}

// Lshr returns x >> (y & 31), logical.
func Lshr(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(x.C >> (y.C & 31))
	}
	if y.IsConst() && y.C&31 == 0 {
		return x
	}
	if x.IsConst() && x.C == 0 {
		return Const(0)
	}
	return newNode(OpLshr, x, y, nil)
}

// Ashr returns x >> (y & 31), arithmetic.
func Ashr(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Const(uint32(int32(x.C) >> (y.C & 31)))
	}
	if y.IsConst() && y.C&31 == 0 {
		return x
	}
	return newNode(OpAshr, x, y, nil)
}

// Eq returns x == y ? 1 : 0.
func Eq(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Bool(x.C == y.C)
	}
	x, y = canonOrder(x, y)
	if Equal(x, y) {
		return Const(1)
	}
	// (e == c) where e is (x + c2): fold to x == c-c2
	if x.IsConst() && y.Op == OpAdd && y.X.IsConst() {
		return Eq(y.Y, Const(x.C-y.X.C))
	}
	// eq(c, eq(a,b)): boolean-valued inner
	if x.IsConst() && isBoolValued(y) {
		switch x.C {
		case 0:
			return LogicalNot(y)
		case 1:
			return y
		default:
			return Const(0) // a boolean can never equal 2,3,...
		}
	}
	return newNode(OpEq, x, y, nil)
}

// Ne returns x != y ? 1 : 0.
func Ne(x, y *Expr) *Expr { return LogicalNot(Eq(x, y)) }

// ULt returns x < y (unsigned) ? 1 : 0.
func ULt(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Bool(x.C < y.C)
	}
	if Equal(x, y) {
		return Const(0)
	}
	if y.IsConst() && y.C == 0 {
		return Const(0) // nothing is unsigned-less-than 0
	}
	if x.IsConst() && x.C == 0xFFFFFFFF {
		return Const(0)
	}
	return newNode(OpULt, x, y, nil)
}

// ULe returns x <= y (unsigned) ? 1 : 0.
func ULe(x, y *Expr) *Expr { return LogicalNot(ULt(y, x)) }

// UGt returns x > y (unsigned) ? 1 : 0.
func UGt(x, y *Expr) *Expr { return ULt(y, x) }

// UGe returns x >= y (unsigned) ? 1 : 0.
func UGe(x, y *Expr) *Expr { return LogicalNot(ULt(x, y)) }

// SLt returns x < y (signed) ? 1 : 0.
func SLt(x, y *Expr) *Expr {
	if x.IsConst() && y.IsConst() {
		return Bool(int32(x.C) < int32(y.C))
	}
	if Equal(x, y) {
		return Const(0)
	}
	return newNode(OpSLt, x, y, nil)
}

// SLe returns x <= y (signed) ? 1 : 0.
func SLe(x, y *Expr) *Expr { return LogicalNot(SLt(y, x)) }

// SGt returns x > y (signed) ? 1 : 0.
func SGt(x, y *Expr) *Expr { return SLt(y, x) }

// SGe returns x >= y (signed) ? 1 : 0.
func SGe(x, y *Expr) *Expr { return LogicalNot(SLt(x, y)) }

// Ite returns cond != 0 ? then : els.
func Ite(cond, then, els *Expr) *Expr {
	if cond.IsConst() {
		if cond.C != 0 {
			return then
		}
		return els
	}
	if Equal(then, els) {
		return then
	}
	// ite(c, 1, 0) == boolify(c); if c is already boolean, it IS c.
	if then.IsConst() && els.IsConst() && then.C == 1 && els.C == 0 && isBoolValued(cond) {
		return cond
	}
	return newNode(OpIte, cond, then, els)
}

// LogicalNot returns x == 0 ? 1 : 0.
func LogicalNot(x *Expr) *Expr {
	if x.IsConst() {
		return Bool(x.C == 0)
	}
	// not(not(b)) for boolean-valued b
	if x.Op == OpEq && x.X.IsConst() && x.X.C == 0 && isBoolValued(x.Y) {
		return x.Y
	}
	return newNode(OpEq, Const(0), x, nil)
}

// isBoolValued reports whether e always evaluates to 0 or 1.
func isBoolValued(e *Expr) bool {
	switch e.Op {
	case OpEq, OpULt, OpSLt:
		return true
	case OpConst:
		return e.C <= 1
	case OpIte:
		return isBoolValued(e.Y) && isBoolValued(e.Z)
	case OpAnd, OpOr:
		return isBoolValued(e.X) && isBoolValued(e.Y)
	}
	return false
}

// ExtractByte returns byte i (0 = least significant) of x as a 32-bit value.
func ExtractByte(x *Expr, i uint) *Expr {
	return And(Lshr(x, Const(uint32(i*8))), Const(0xFF))
}

// ConcatBytes assembles a 32-bit word from four byte-valued expressions,
// b0 being the least significant.
func ConcatBytes(b0, b1, b2, b3 *Expr) *Expr {
	w := Or(b0, Shl(b1, Const(8)))
	w = Or(w, Shl(b2, Const(16)))
	return Or(w, Shl(b3, Const(24)))
}

// ZeroExt8 masks x to its low 8 bits.
func ZeroExt8(x *Expr) *Expr { return And(x, Const(0xFF)) }

// ZeroExt16 masks x to its low 16 bits.
func ZeroExt16(x *Expr) *Expr { return And(x, Const(0xFFFF)) }

// SignExt8 sign-extends the low 8 bits of x to 32 bits.
func SignExt8(x *Expr) *Expr {
	if x.IsConst() {
		return Const(uint32(int32(int8(x.C))))
	}
	return Ashr(Shl(x, Const(24)), Const(24))
}

// SignExt16 sign-extends the low 16 bits of x to 32 bits.
func SignExt16(x *Expr) *Expr {
	if x.IsConst() {
		return Const(uint32(int32(int16(x.C))))
	}
	return Ashr(Shl(x, Const(16)), Const(16))
}

// String renders e as an s-expression, for diagnostics and traces.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b, 0)
	return b.String()
}

func (e *Expr) format(b *strings.Builder, depth int) {
	if e == nil {
		b.WriteString("<nil>")
		return
	}
	if depth > 24 {
		b.WriteString("...")
		return
	}
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "%#x", e.C)
	case OpSym:
		fmt.Fprintf(b, "v%d", e.Sym)
	default:
		b.WriteByte('(')
		b.WriteString(e.Op.String())
		for _, sub := range []*Expr{e.X, e.Y, e.Z} {
			if sub == nil {
				break
			}
			b.WriteByte(' ')
			sub.format(b, depth+1)
		}
		b.WriteByte(')')
	}
}
