package expr

import (
	"fmt"
	"sync"
)

// Origin classifies where a symbolic value was injected, mirroring DDT's
// provenance tracking (§3.5–3.6 of the paper): traces record the creation
// point of every symbol so bug reports can explain what concrete input or
// hardware behaviour triggers a path.
type Origin uint8

// Symbol origins.
const (
	OriginUnknown    Origin = iota
	OriginHardware          // read from a symbolic device register (MMIO or port)
	OriginInterrupt         // symbolic interrupt arrival choice
	OriginRegistry          // configuration value from the simulated registry
	OriginPacket            // network packet contents handed to the driver
	OriginAPIReturn         // return value of an annotated kernel API
	OriginArgument          // driver entry-point argument made symbolic
	OriginAnnotation        // created explicitly by an annotation
)

var originNames = [...]string{
	OriginUnknown: "unknown", OriginHardware: "hardware", OriginInterrupt: "interrupt",
	OriginRegistry: "registry", OriginPacket: "packet", OriginAPIReturn: "api-return",
	OriginArgument: "argument", OriginAnnotation: "annotation",
}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// SymbolInfo describes one symbolic variable.
type SymbolInfo struct {
	ID     SymID
	Name   string // human-readable, e.g. "hw_read_mmio_0x10" or "registry:MaximumMulticastList"
	Origin Origin
	PC     uint32 // driver program counter at creation, 0 if not applicable
	Seq    uint64 // machine instruction count at creation (creation time)
}

// SymbolTable allocates and describes symbolic variables for one DDT run.
// It is shared by every execution context of a session and safe for
// concurrent use: parallel workers mint symbols under one mutex, so IDs
// stay dense and unique across the whole run.
type SymbolTable struct {
	mu   sync.Mutex
	syms []SymbolInfo
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{}
}

// Fresh allocates a new symbolic variable and returns an expression
// referring to it.
func (t *SymbolTable) Fresh(name string, origin Origin, pc uint32, seq uint64) *Expr {
	t.mu.Lock()
	id := SymID(len(t.syms))
	t.syms = append(t.syms, SymbolInfo{ID: id, Name: name, Origin: origin, PC: pc, Seq: seq})
	t.mu.Unlock()
	return Sym(id)
}

// Info returns the metadata for symbol id. It panics on out-of-range ids.
func (t *SymbolTable) Info(id SymID) SymbolInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syms[id]
}

// Len returns the number of allocated symbols.
func (t *SymbolTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.syms)
}

// All returns a snapshot of every allocated symbol, in creation order.
func (t *SymbolTable) All() []SymbolInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SymbolInfo(nil), t.syms...)
}
