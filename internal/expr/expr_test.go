package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		name string
		got  *Expr
		want uint32
	}{
		{"add", Add(Const(3), Const(4)), 7},
		{"add-wrap", Add(Const(0xFFFFFFFF), Const(2)), 1},
		{"sub", Sub(Const(10), Const(3)), 7},
		{"sub-wrap", Sub(Const(0), Const(1)), 0xFFFFFFFF},
		{"mul", Mul(Const(6), Const(7)), 42},
		{"udiv", UDiv(Const(42), Const(6)), 7},
		{"udiv-zero", UDiv(Const(42), Const(0)), 0xFFFFFFFF},
		{"urem", URem(Const(43), Const(6)), 1},
		{"urem-zero", URem(Const(43), Const(0)), 43},
		{"and", And(Const(0xF0F0), Const(0xFF00)), 0xF000},
		{"or", Or(Const(0xF0), Const(0x0F)), 0xFF},
		{"xor", Xor(Const(0xFF), Const(0x0F)), 0xF0},
		{"not", Not(Const(0)), 0xFFFFFFFF},
		{"shl", Shl(Const(1), Const(4)), 16},
		{"shl-mask", Shl(Const(1), Const(33)), 2},
		{"lshr", Lshr(Const(0x80000000), Const(31)), 1},
		{"ashr", Ashr(Const(0x80000000), Const(31)), 0xFFFFFFFF},
		{"eq-true", Eq(Const(5), Const(5)), 1},
		{"eq-false", Eq(Const(5), Const(6)), 0},
		{"ult", ULt(Const(3), Const(5)), 1},
		{"ult-f", ULt(Const(5), Const(3)), 0},
		{"slt-neg", SLt(Const(0xFFFFFFFF), Const(0)), 1},
		{"ite-t", Ite(Const(1), Const(11), Const(22)), 11},
		{"ite-f", Ite(Const(0), Const(11), Const(22)), 22},
		{"sext8", SignExt8(Const(0x80)), 0xFFFFFF80},
		{"sext16", SignExt16(Const(0x8000)), 0xFFFF8000},
	}
	for _, tc := range cases {
		if !tc.got.IsConst() {
			t.Errorf("%s: not folded to constant: %v", tc.name, tc.got)
			continue
		}
		if tc.got.ConstVal() != tc.want {
			t.Errorf("%s: got %#x, want %#x", tc.name, tc.got.ConstVal(), tc.want)
		}
	}
}

func TestIdentitySimplifications(t *testing.T) {
	x := Sym(0)
	cases := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"add-zero", Add(x, Const(0)), x},
		{"mul-one", Mul(x, Const(1)), x},
		{"mul-zero", Mul(x, Const(0)), Const(0)},
		{"and-ones", And(x, Const(0xFFFFFFFF)), x},
		{"and-zero", And(x, Const(0)), Const(0)},
		{"and-self", And(x, x), x},
		{"or-zero", Or(x, Const(0)), x},
		{"or-self", Or(x, x), x},
		{"xor-self", Xor(x, x), Const(0)},
		{"xor-zero", Xor(x, Const(0)), x},
		{"sub-self", Sub(x, x), Const(0)},
		{"not-not", Not(Not(x)), x},
		{"shl-zero", Shl(x, Const(0)), x},
		{"eq-self", Eq(x, x), Const(1)},
		{"ult-self", ULt(x, x), Const(0)},
		{"ult-zero", ULt(x, Const(0)), Const(0)},
		{"ite-same", Ite(x, Const(7), Const(7)), Const(7)},
		{"udiv-one", UDiv(x, Const(1)), x},
		{"urem-one", URem(x, Const(1)), Const(0)},
	}
	for _, tc := range cases {
		if !Equal(tc.got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestCommutativeCanonicalization(t *testing.T) {
	x, y := Sym(0), Sym(1)
	pairs := [][2]*Expr{
		{Add(x, y), Add(y, x)},
		{Mul(x, y), Mul(y, x)},
		{And(x, y), And(y, x)},
		{Or(x, y), Or(y, x)},
		{Xor(x, y), Xor(y, x)},
		{Eq(x, y), Eq(y, x)},
		{Add(x, Const(5)), Add(Const(5), x)},
	}
	for i, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("pair %d: %v != %v", i, p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("pair %d: hashes differ", i)
		}
	}
}

func TestLogicalNot(t *testing.T) {
	x := Sym(0)
	cond := ULt(x, Const(10))
	n := LogicalNot(cond)
	nn := LogicalNot(n)
	if !Equal(nn, cond) {
		t.Errorf("double negation: got %v, want %v", nn, cond)
	}
	if v := Eval(n, Assignment{0: 20}); v != 1 {
		t.Errorf("not(20<10) = %d, want 1", v)
	}
	if v := Eval(n, Assignment{0: 5}); v != 0 {
		t.Errorf("not(5<10) = %d, want 0", v)
	}
}

func TestEqOffsetFolding(t *testing.T) {
	x := Sym(0)
	// (x + 5) == 12  should fold to x == 7
	e := Eq(Add(x, Const(5)), Const(12))
	want := Eq(x, Const(7))
	if !Equal(e, want) {
		t.Errorf("offset folding: got %v, want %v", e, want)
	}
}

func TestBooleanEqConstant(t *testing.T) {
	x := Sym(0)
	b := ULt(x, Const(4))
	if got := Eq(b, Const(2)); !got.IsFalse() {
		t.Errorf("bool == 2: got %v, want 0", got)
	}
	if got := Eq(b, Const(1)); !Equal(got, b) {
		t.Errorf("bool == 1: got %v, want %v", got, b)
	}
}

func TestExtractConcatBytes(t *testing.T) {
	w := Const(0xAABBCCDD)
	want := []uint32{0xDD, 0xCC, 0xBB, 0xAA}
	for i := uint(0); i < 4; i++ {
		b := ExtractByte(w, i)
		if !b.IsConst() || b.ConstVal() != want[i] {
			t.Errorf("byte %d: got %v, want %#x", i, b, want[i])
		}
	}
	re := ConcatBytes(Const(0xDD), Const(0xCC), Const(0xBB), Const(0xAA))
	if !re.IsConst() || re.ConstVal() != 0xAABBCCDD {
		t.Errorf("concat: got %v", re)
	}
}

func TestSymbolTable(t *testing.T) {
	tab := NewSymbolTable()
	a := tab.Fresh("hw_read_0", OriginHardware, 0x1000, 5)
	b := tab.Fresh("registry:Foo", OriginRegistry, 0x2000, 9)
	if a.Sym == b.Sym {
		t.Fatal("Fresh returned duplicate ids")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	ia := tab.Info(a.Sym)
	if ia.Name != "hw_read_0" || ia.Origin != OriginHardware || ia.PC != 0x1000 || ia.Seq != 5 {
		t.Errorf("Info(a) = %+v", ia)
	}
	if got := tab.Info(b.Sym).Origin.String(); got != "registry" {
		t.Errorf("origin string = %q", got)
	}
}

func TestSubstitute(t *testing.T) {
	x, y := Sym(0), Sym(1)
	e := Add(Mul(x, Const(3)), y)
	got := Substitute(e, Assignment{0: 4})
	want := Add(Const(12), y)
	if !Equal(got, want) {
		t.Errorf("partial substitute: got %v, want %v", got, want)
	}
	full := Substitute(e, Assignment{0: 4, 1: 8})
	if !full.IsConst() || full.ConstVal() != 20 {
		t.Errorf("full substitute: got %v, want 20", full)
	}
}

func TestSyms(t *testing.T) {
	e := Add(Sym(3), Mul(Sym(1), Ite(Sym(7), Sym(1), Const(2))))
	got := Syms(e)
	want := []SymID{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("Syms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Syms = %v, want %v", got, want)
		}
	}
}

// randomExpr builds a random expression over nsyms symbols with the given
// node budget; used by the property tests below.
func randomExpr(r *rand.Rand, nsyms, depth int) *Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return Const(uint32(r.Int63()))
		}
		return Sym(SymID(r.Intn(nsyms)))
	}
	x := randomExpr(r, nsyms, depth-1)
	y := randomExpr(r, nsyms, depth-1)
	z := randomExpr(r, nsyms, depth-1)
	switch r.Intn(16) {
	case 0:
		return Add(x, y)
	case 1:
		return Sub(x, y)
	case 2:
		return Mul(x, y)
	case 3:
		return UDiv(x, y)
	case 4:
		return URem(x, y)
	case 5:
		return And(x, y)
	case 6:
		return Or(x, y)
	case 7:
		return Xor(x, y)
	case 8:
		return Shl(x, y)
	case 9:
		return Lshr(x, y)
	case 10:
		return Ashr(x, y)
	case 11:
		return Eq(x, y)
	case 12:
		return ULt(x, y)
	case 13:
		return SLt(x, y)
	case 14:
		return Ite(x, y, z)
	default:
		return Not(x)
	}
}

// TestQuickSimplifierSoundness: smart-constructor simplification must not
// change the value of any expression under any assignment. We rebuild each
// random expression through the constructors (which is how it was built) and
// compare against a reference bottom-up evaluation.
func TestQuickSimplifierSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(a0, a1, a2 uint32) bool {
		a := Assignment{0: a0, 1: a1, 2: a2}
		for i := 0; i < 8; i++ {
			e := randomExpr(r, 3, 4)
			// Substitute must agree with Eval.
			sub := Substitute(e, a)
			if !sub.IsConst() {
				return false
			}
			if sub.ConstVal() != Eval(e, a) {
				t.Logf("expr %v: substitute %#x != eval %#x", e, sub.ConstVal(), Eval(e, a))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashEquality: structural equality implies hash equality, and
// Equal is reflexive for random expressions.
func TestQuickHashEquality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randomExpr(rr, 4, 5)
		rr2 := rand.New(rand.NewSource(seed))
		e2 := randomExpr(rr2, 4, 5)
		if !Equal(e, e2) {
			return false
		}
		if e.Hash() != e2.Hash() {
			return false
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoolValued: expressions reported boolean-valued must evaluate to
// 0 or 1 under random assignments.
func TestQuickBoolValued(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(a0, a1 uint32) bool {
		for i := 0; i < 8; i++ {
			e := randomExpr(r, 2, 4)
			if isBoolValued(e) {
				v := Eval(e, Assignment{0: a0, 1: a1})
				if v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	e := Add(Sym(2), Const(0x10))
	s := e.String()
	if s == "" || s == "<nil>" {
		t.Fatalf("String() = %q", s)
	}
	if Const(255).String() != "0xff" {
		t.Errorf("const rendering = %q", Const(255).String())
	}
}

func TestSizeAccounting(t *testing.T) {
	x := Sym(0)
	if x.Size() != 1 {
		t.Errorf("sym size = %d", x.Size())
	}
	e := Add(x, Sym(1))
	if e.Size() != 3 {
		t.Errorf("add size = %d, want 3", e.Size())
	}
}
